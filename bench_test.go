package repro

// One testing.B benchmark per reproduced table/figure (the same code paths
// as cmd/benchfig; see DESIGN.md §3 for the experiment index). Run with:
//
//	go test -bench=. -benchmem
import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/blockdev"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/gdprdata"
	"repro/internal/kernel"
	"repro/internal/membrane"
	"repro/internal/ps"
	"repro/internal/purpose"
	"repro/internal/simclock"
	"repro/internal/typedsl"
	"repro/internal/workload"
	"repro/internal/xrand"
)

const listing1DSL = `
type user {
  fields {
    name: string,
    pwd: string sensitive,
    year_of_birthdate: int
  };
  view v_name { name };
  view v_ano { age };
  consent {
    purpose1: all,
    purpose2: none,
    purpose3: ano
  };
  collection { web_form: user_form.html };
  origin: subject;
  age: 1Y;
  sensitivity: hight;
}
`

func aliasOpts() typedsl.CompileOptions {
	return typedsl.CompileOptions{FieldAliases: map[string]string{"age": "year_of_birthdate"}}
}

// bootBench boots a machine with n user records, consenting to purpose3.
func bootBench(b *testing.B, n int) (*core.System, []string) {
	b.Helper()
	blocks := uint64(16384)
	for blocks < uint64(n)*24+4096 {
		blocks *= 2
	}
	inodes := uint64(8192)
	for inodes < uint64(n)*8+1024 {
		inodes *= 2
	}
	s, err := core.Boot(core.Options{AuthorityBits: 1024, PDDiskBlocks: blocks, NInodes: inodes})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.DeclareTypesDSL(listing1DSL, aliasOpts()); err != nil {
		b.Fatal(err)
	}
	form := collect.NewWebFormSource("user_form.html")
	s.RegisterSource("user", form)
	rng := xrand.New(1)
	subjects := workload.SubjectIDs(n)
	for _, subject := range subjects {
		form.Submit(subject, workload.UserRecord(rng, subject))
	}
	if _, err := s.Acquire("user", "web_form", subjects); err != nil {
		b.Fatal(err)
	}
	return s, subjects
}

func registerAge(b *testing.B, s *core.System) {
	b.Helper()
	decl := &purpose.Decl{Name: "purpose3", Description: "Compute the age of the input user",
		Basis: purpose.BasisConsent, Reads: []string{"user.year_of_birthdate"}}
	impl := &ded.Func{Name: "compute_age", Purpose: "purpose3",
		DeclaredReads: []string{"user.year_of_birthdate"},
		Fn: func(c *ded.Ctx) (ded.Output, error) {
			yob, err := c.Field("year_of_birthdate")
			if err != nil {
				return ded.Output{}, err
			}
			return ded.Output{NonPD: 2023 - yob.I}, nil
		}}
	if err := s.PS().Register(decl, impl, false); err != nil {
		b.Fatal(err)
	}
}

// --- Figure 1 ---

func BenchmarkFig1LeftRender(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := gdprdata.RenderLeft(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1RightRender(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := gdprdata.RenderRight(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 2 violations ---

// BenchmarkFig2JournalLeak measures the baseline insert+delete+forensic-scan
// cycle that demonstrates the F2V1 violation.
func BenchmarkFig2JournalLeak(b *testing.B) {
	dev := blockdev.MustMem(1 << 14)
	eng, err := baseline.New(dev, simclock.NewSim(simclock.Epoch))
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.CreateTable("user"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	leaks := 0
	for i := 0; i < b.N; i++ {
		secret := "secret-" + strconv.Itoa(i)
		id, err := eng.Insert("user", "s", map[string]string{"f": secret}, map[string]bool{"p": true}, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Delete(id); err != nil {
			b.Fatal(err)
		}
		if len(blockdev.FindResidue(dev, []byte(secret))) > 0 {
			leaks++
		}
	}
	if leaks == 0 {
		b.Fatal("baseline leaked nothing; experiment broken")
	}
	b.ReportMetric(float64(leaks)/float64(b.N), "leaks/op")
}

// BenchmarkFig2UAF measures the stale-pointer read in the process-centric
// heap (F2V2).
func BenchmarkFig2UAF(b *testing.B) {
	h := baseline.NewHeap(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := h.Alloc([]byte("pd1"))
		h.Free(p)
		_ = h.Alloc([]byte("pd2"))
		if _, err := h.DerefStale(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 3: the membrane decision itself ---

func BenchmarkFig3MembraneDecide(b *testing.B) {
	m := membrane.New("user/s/1", "user", "s")
	m.SetConsent("purpose3", membrane.Grant{Kind: membrane.GrantView, View: "v_ano"})
	m.CreatedAt = simclock.Epoch
	m.TTL = 365 * 24 * time.Hour
	now := simclock.Epoch.Add(time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Decide("purpose3", now); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4: the DED pipeline ---

// BenchmarkDEDStages measures one full ps_invoke over a single subject —
// the eight-stage pipeline of Fig. 4 (F4P).
func BenchmarkDEDStages(b *testing.B) {
	s, subjects := bootBench(b, 100)
	registerAge(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subject := subjects[i%len(subjects)]
		if _, err := s.PS().Invoke(ps.InvokeRequest{
			Processing: "purpose3", TypeName: "user", SubjectFilter: subject,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Listings ---

func BenchmarkListing1ParseCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := typedsl.CompileSource(listing1DSL, aliasOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkListing23Invoke measures ps_invoke across the whole user table
// (Listings 2-3, L23).
func BenchmarkListing23Invoke(b *testing.B) {
	s, _ := bootBench(b, 100)
	registerAge(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"})
		if err != nil {
			b.Fatal(err)
		}
		if res.Processed != 100 {
			b.Fatalf("processed %d", res.Processed)
		}
	}
}

// --- §4 illustrations ---

func BenchmarkRightOfAccess(b *testing.B) {
	s, subjects := bootBench(b, 100)
	registerAge(b, s)
	if _, err := s.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Rights().Access(subjects[i%len(subjects)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRightToBeForgotten(b *testing.B) {
	// Fresh records are inserted in pools outside the timed region so
	// every iteration erases a live record; when a pool is exhausted the
	// machine is rebuilt off the clock (the on-disk filesystems are fixed
	// size).
	const pool = 1024
	var (
		s     *core.System
		pdids []string
	)
	rng := xrand.New(2)
	refill := func() {
		b.StopTimer()
		s, _ = bootBench(b, 1)
		tok := s.DEDToken()
		pdids = pdids[:0]
		for i := 0; i < pool; i++ {
			subject := "es" + strconv.Itoa(i)
			pdid, err := s.DBFS().Insert(tok, "user", subject, workload.UserRecord(rng, subject), nil)
			if err != nil {
				b.Fatal(err)
			}
			pdids = append(pdids, pdid)
		}
		b.StartTimer()
	}
	refill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%pool == 0 {
			refill()
		}
		if _, err := s.Rights().EraseRecord(pdids[i%pool]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Overheads (OV1-OV6) ---

func BenchmarkOverheadRgpdOS(b *testing.B) {
	s, subjects := bootBench(b, 100)
	registerAge(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PS().Invoke(ps.InvokeRequest{
			Processing: "purpose3", TypeName: "user", SubjectFilter: subjects[i%len(subjects)],
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverheadBaseline(b *testing.B) {
	dev := blockdev.MustMem(1 << 14)
	eng, err := baseline.New(dev, simclock.NewSim(simclock.Epoch))
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.CreateTable("user"); err != nil {
		b.Fatal(err)
	}
	ids := make([]string, 100)
	for i := range ids {
		id, err := eng.Insert("user", "s"+strconv.Itoa(i), map[string]string{"yob": "1990"},
			map[string]bool{"purpose3": true}, 0)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ProcessToHeap(ids[i%len(ids)], "purpose3"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverheadRawMap(b *testing.B) {
	m := make(map[string]string, 100)
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = "s" + strconv.Itoa(i)
		m[keys[i]] = "1990"
	}
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += len(m[keys[i%len(keys)]])
	}
	if sink == 0 {
		b.Fatal("no work")
	}
}

// BenchmarkMembraneAblation compares the consented pipeline against
// maintenance mode (filter ablated) on the same store (OV2).
func BenchmarkMembraneAblation(b *testing.B) {
	s, subjects := bootBench(b, 100)
	registerAge(b, s)
	b.Run("full-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.PS().Invoke(ps.InvokeRequest{
				Processing: "purpose3", TypeName: "user", SubjectFilter: subjects[i%len(subjects)],
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("filter-ablated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.PS().Invoke(ps.InvokeRequest{
				Processing: "__builtin_restrict", TypeName: "user",
				SubjectFilter: subjects[i%len(subjects)], Maintenance: true,
				Params: map[string]any{"restricted": false},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernelIPC compares block IO through the IO-driver kernel against
// direct device access (OV3).
func BenchmarkKernelIPC(b *testing.B) {
	bus := kernel.NewBus(time.Microsecond, time.Nanosecond)
	dev := blockdev.MustMem(256)
	if _, err := kernel.NewBlockDriverKernel(bus, "io.disk0", dev); err != nil {
		b.Fatal(err)
	}
	remote, err := kernel.NewRemoteDevice(bus, "rgpdos", "io.disk0")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, blockdev.BlockSize)
	b.Run("bus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := remote.WriteBlock(uint64(i%256), buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := dev.WriteBlock(uint64(i%256), buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDBFSVsPlainFS contrasts record insertion (OV4).
func BenchmarkDBFSVsPlainFS(b *testing.B) {
	// Both sides cycle a bounded pool so b.N growth cannot exhaust the
	// fixed-size filesystems; the machine is rebuilt off the clock.
	const pool = 1024
	b.Run("dbfs-insert", func(b *testing.B) {
		s, _ := bootBench(b, 1)
		tok := s.DEDToken()
		rng := xrand.New(3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%pool == 0 {
				b.StopTimer()
				s, _ = bootBench(b, 1)
				tok = s.DEDToken()
				b.StartTimer()
			}
			subject := "bs" + strconv.Itoa(i%pool)
			if _, err := s.DBFS().Insert(tok, "user", subject, workload.UserRecord(rng, subject), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plainfs-write", func(b *testing.B) {
		s, _ := bootBench(b, 1)
		payload := []byte(`{"name":"x","yob":1990}`)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// WriteFile replaces in place, so cycling names bounds inodes.
			if err := s.NPD().WriteFile("/r"+strconv.Itoa(i%pool), payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSensitiveSplit measures the extra cost of separately stored
// sensitive fields (OV5).
func BenchmarkSensitiveSplit(b *testing.B) {
	for _, sens := range []bool{false, true} {
		name := "plain-only"
		if sens {
			name = "with-sensitive-field"
		}
		b.Run(name, func(b *testing.B) {
			const pool = 1024
			sch := &dbfs.Schema{
				Name: "rec",
				Fields: []dbfs.Field{
					{Name: "a", Type: dbfs.TypeString, Sensitive: sens},
					{Name: "b", Type: dbfs.TypeInt},
				},
				DefaultConsent: map[string]membrane.Grant{"p": {Kind: membrane.GrantAll}},
			}
			build := func() *core.System {
				s, err := core.Boot(core.Options{AuthorityBits: 1024, PDDiskBlocks: 1 << 16, NInodes: 1 << 15})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.CreateType(sch); err != nil {
					b.Fatal(err)
				}
				return s
			}
			s := build()
			tok := s.DEDToken()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%pool == 0 {
					b.StopTimer()
					s = build()
					tok = s.DEDToken()
					b.StartTimer()
				}
				if _, err := s.DBFS().Insert(tok, "rec", "s"+strconv.Itoa(i%pool), dbfs.Record{
					"a": dbfs.S("ssn"), "b": dbfs.I(int64(i)),
				}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTTLSweep measures the storage-limitation sweeper (OV6).
func BenchmarkTTLSweep(b *testing.B) {
	s, _ := bootBench(b, 100)
	clk, ok := s.SimClock()
	if !ok {
		b.Fatal("sim clock required")
	}
	clk.Advance(366 * 24 * time.Hour) // everything expired
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deleted, err := s.Rights().SweepExpired()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(deleted) != 100 {
			b.Fatalf("first sweep deleted %d", len(deleted))
		}
	}
}

// --- SC1: subject-sharded DBFS + concurrent DED executor ---

// registerScoring registers the SC1 scaling workload (shared with
// internal/bench.runSC1, which prints the same sweep as a table): a
// full-view scoring pass under purpose1 whose per-record cost is dominated
// by simulated processing latency — the part the concurrent executor
// overlaps across subjects.
func registerScoring(b *testing.B, s *core.System) {
	b.Helper()
	if err := s.PS().Register(bench.ScoreDecl(), bench.ScoreImpl(), false); err != nil {
		b.Fatal(err)
	}
}

// --- SC2: WAL group-commit + per-shard inode FS ---

// BenchmarkConcurrentInsert measures concurrent DBFS insert throughput
// under the storage-stack configurations SC2 sweeps: the PR-1 baseline
// (one FS, one txn per flush) against group commit and per-shard FS
// instances. The PD disk sleeps its flush cost so the serialization the
// refactor removes is wall-clock visible (see internal/bench.runSC2).
func BenchmarkConcurrentInsert(b *testing.B) {
	const workers = 8
	for _, cfg := range []struct {
		name  string
		fs    int
		batch int
	}{
		{"fs=1/nogroup", 1, 1},
		{"fs=1/group", 1, 0},
		{"fs=4/group", 4, 0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			// The filesystems are fixed size, so the machine is rebuilt
			// off the clock before the subject population exhausts the
			// inode tables (same pattern as BenchmarkRightToBeForgotten).
			const pool = 48 // iterations per machine
			build := func() *core.System {
				s, err := core.Boot(core.Options{
					AuthorityBits: 1024, PDDiskBlocks: 1 << 16, NInodes: 1 << 14,
					FSInstances: cfg.fs, GroupCommitMaxBatch: cfg.batch, Workers: workers,
					PDLatency: blockdev.LatencyModel{SyncCost: 50 * time.Microsecond, Sleep: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.DeclareTypesDSL(listing1DSL, aliasOpts()); err != nil {
					b.Fatal(err)
				}
				return s
			}
			s := build()
			tok := s.DEDToken()
			const n = 32 // inserts per iteration, spread over workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%pool == 0 {
					b.StopTimer()
					s = build()
					tok = s.DEDToken()
					b.StartTimer()
				}
				var wg sync.WaitGroup
				errs := make(chan error, workers)
				var next atomic.Int64
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(rng *xrand.RNG) {
						defer wg.Done()
						for {
							j := int(next.Add(1)) - 1
							if j >= n {
								return
							}
							subj := "cs" + strconv.Itoa((i%pool)*n+j)
							if _, err := s.DBFS().Insert(tok, "user", subj, workload.UserRecord(rng, subj), nil); err != nil {
								errs <- err
								return
							}
						}
					}(xrand.New(uint64(7 + w)))
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "inserts/s")
		})
	}
}

// BenchmarkInvokeBatch sweeps the DED executor pool over per-subject
// invocations: serial vs 1/4/16 workers on 64 distinct subjects. With
// subject-sharded DBFS locks the batch modes scale with workers until the
// processing latency is fully overlapped.
func BenchmarkInvokeBatch(b *testing.B) {
	const n = 64
	for _, workers := range []int{0, 1, 4, 16} {
		name := "workers=" + strconv.Itoa(workers)
		if workers == 0 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			s, subjects := bootBench(b, n)
			registerScoring(b, s)
			reqs := make([]ps.InvokeRequest, len(subjects))
			for i, subject := range subjects {
				reqs[i] = ps.InvokeRequest{Processing: "purpose1", TypeName: "user", SubjectFilter: subject}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if workers == 0 {
					for _, req := range reqs {
						if _, err := s.PS().Invoke(req); err != nil {
							b.Fatal(err)
						}
					}
					continue
				}
				for _, item := range s.PS().InvokeBatch(reqs, workers) {
					if item.Err != nil {
						b.Fatal(item.Err)
					}
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "inv/s")
		})
	}
}

// --- SC3: membrane cache x parallel rights ---

// BenchmarkMembraneRead measures the DED's ded_load_membrane primitive —
// dbfs.GetMembrane — with the decoded-membrane cache on vs off. The PD disk
// sleeps its per-block read cost, so the inode walk and device reads the
// cache removes are wall-clock visible on top of the skipped JSON decode
// (see internal/bench.runSC3 for the full contention sweep).
func BenchmarkMembraneRead(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		cache int
	}{
		{"cache", 0},
		{"nocache", -1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s, err := core.Boot(core.Options{
				AuthorityBits: 1024, PDDiskBlocks: 1 << 15, NInodes: 1 << 13,
				MembraneCache: cfg.cache,
				PDLatency:     blockdev.LatencyModel{ReadCost: 10 * time.Microsecond, Sleep: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.DeclareTypesDSL(listing1DSL, aliasOpts()); err != nil {
				b.Fatal(err)
			}
			tok := s.DEDToken()
			rng := xrand.New(9)
			const n = 64
			pdids := make([]string, 0, n)
			for i := 0; i < n; i++ {
				subject := "ms" + strconv.Itoa(i%16)
				pdid, err := s.DBFS().Insert(tok, "user", subject, workload.UserRecord(rng, subject), nil)
				if err != nil {
					b.Fatal(err)
				}
				pdids = append(pdids, pdid)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pdid := pdids[i%len(pdids)]
				m, err := s.DBFS().GetMembrane(tok, pdid)
				if err != nil {
					b.Fatal(err)
				}
				if m.PDID != pdid {
					b.Fatalf("got membrane of %s", m.PDID)
				}
			}
		})
	}
}

// BenchmarkAccessBatch sweeps the rights engine's per-subject fan-out:
// subject-access reports for 16 subjects at 1 vs 8 workers over 8 per-shard
// FS instances (reads sleep, so the overlap is wall-clock visible).
func BenchmarkAccessBatch(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			s, err := core.Boot(core.Options{
				AuthorityBits: 1024, PDDiskBlocks: 1 << 16, NInodes: 1 << 14,
				FSInstances: 8, Workers: 8,
				PDLatency: blockdev.LatencyModel{ReadCost: 10 * time.Microsecond, Sleep: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.DeclareTypesDSL(listing1DSL, aliasOpts()); err != nil {
				b.Fatal(err)
			}
			tok := s.DEDToken()
			rng := xrand.New(11)
			subjects := workload.SubjectIDs(16)
			for _, subject := range subjects {
				for j := 0; j < 4; j++ {
					if _, err := s.DBFS().Insert(tok, "user", subject, workload.UserRecord(rng, subject), nil); err != nil {
						b.Fatal(err)
					}
				}
			}
			workers := workers
			if err := s.ApplyTuning(core.Tuning{RightsWorkers: &workers}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reps, err := s.Rights().AccessBatch(subjects)
				if err != nil {
					b.Fatal(err)
				}
				if len(reps) != len(subjects) {
					b.Fatalf("got %d reports", len(reps))
				}
			}
		})
	}
}
