// Package repro is a from-scratch Go reproduction of "rgpdOS: GDPR
// Enforcement By The Operating System" (Tchana et al., DSN 2023,
// arXiv:2205.10929).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory, the storage commit path, the membrane read path, and the
// admission-and-deadlines story), the runnable entry points under cmd/
// and examples/, and the benchmark harness in bench_test.go plus
// cmd/benchfig, whose registry regenerates every reproduced artifact and
// the SC1-SC4 scaling experiments; cmd/benchgate holds CI to the
// checked-in BENCH_baseline.json floors.
package repro
