// Package repro is a from-scratch Go reproduction of "rgpdOS: GDPR
// Enforcement By The Operating System" (Tchana et al., DSN 2023,
// arXiv:2205.10929).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory, the storage commit path, the membrane read path, the
// admission-and-deadlines story, the actor FS core + block buffer cache,
// the control plane + tuning API, the content-addressed compressed
// cold tier with shred-safe membrane snapshots, the multi-node
// subject router with its durable cross-node copy ledger, and the
// deterministic macro-workload subsystem with its regulator-grade
// scenario scorecards), the runnable entry points under cmd/ and
// examples/, and the benchmark harness in bench_test.go plus
// cmd/benchfig, whose registry regenerates every reproduced artifact
// and the SC1-SC9 scaling experiments; cmd/benchgate holds CI to the
// checked-in BENCH_baseline.json floors.
//
// References:
//
//   - Tchana et al., "rgpdOS: GDPR Enforcement By The Operating System",
//     DSN 2023 (arXiv:2205.10929) — the reproduced paper.
//   - Cutler, Kaashoek, Morris, "The benefits and costs of writing a
//     POSIX kernel in a high-level language", OSDI 2018 — Biscuit, the
//     model for internal/inode's per-inode daemon actors and
//     internal/blockdev's write-back buffer cache.
//   - ext3/JBD2 journaling — the model for internal/wal's group commit
//     (multi-transaction commit records sealed by one flush barrier).
//   - djafs (SNIPPETS.md section 3) — the model for internal/coldtier's
//     content-addressed compressed archives (hash-based dedup, lazy
//     repacking of cold JSON records).
//   - Shah, Banakar, Shastri, Wasserman, Chidambaram, "Analyzing the
//     Impact of GDPR on Storage Systems" (arXiv:1903.04880) — the
//     GDPR-storage benchmark whose op classes (ordinary traffic
//     interleaved with access, erasure, consent and retention rights
//     traffic) shape internal/workload's SC9 macro scenarios.
package repro
