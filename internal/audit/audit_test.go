package audit

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

func newLog() (*Log, *simclock.Sim) {
	clk := simclock.NewSim(simclock.Epoch)
	return NewLog(clk), clk
}

func TestAppendFillsChain(t *testing.T) {
	l, clk := newLog()
	e1 := l.Append(KindCollection, "", "user/alice/1", "alice", "ok", "web_form")
	clk.Advance(time.Minute)
	e2 := l.Append(KindProcessing, "purpose3", "user/alice/1", "alice", "ok", "compute_age")
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("seqs = %d, %d", e1.Seq, e2.Seq)
	}
	if e2.PrevHash != e1.Hash {
		t.Fatal("chain not linked")
	}
	if !e2.Time.After(e1.Time) {
		t.Fatal("timestamps not ordered")
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyDetectsTamper(t *testing.T) {
	l, _ := newLog()
	l.Append(KindProcessing, "p", "pd", "s", "ok", "original")
	l.Append(KindProcessing, "p", "pd", "s", "ok", "second")
	if !l.Tamper(1, "rewritten history") {
		t.Fatal("Tamper refused valid seq")
	}
	if err := l.Verify(); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("Verify after tamper = %v, want ErrChainBroken", err)
	}
	if l.Tamper(0, "x") || l.Tamper(99, "x") {
		t.Fatal("Tamper accepted bad seq")
	}
}

func TestQueriesBySubjectAndPD(t *testing.T) {
	l, _ := newLog()
	l.Append(KindProcessing, "p1", "user/alice/1", "alice", "ok", "")
	l.Append(KindProcessing, "p2", "user/bob/1", "bob", "ok", "")
	l.Append(KindConsentChange, "p1", "user/alice/1", "alice", "ok", "withdraw")
	l.Append(KindProcessing, "p1", "user/alice/2", "alice", "denied", "")

	alice := l.BySubject("alice")
	if len(alice) != 3 {
		t.Fatalf("BySubject(alice) = %d entries, want 3", len(alice))
	}
	for i := 1; i < len(alice); i++ {
		if alice[i].Seq <= alice[i-1].Seq {
			t.Fatal("BySubject not in order")
		}
	}
	pd := l.ByPD("user/alice/1")
	if len(pd) != 2 {
		t.Fatalf("ByPD = %d entries, want 2", len(pd))
	}
	if got := l.BySubject("nobody"); len(got) != 0 {
		t.Fatalf("BySubject(nobody) = %v", got)
	}
}

func TestAllReturnsCopy(t *testing.T) {
	l, _ := newLog()
	l.Append(KindAlert, "", "", "", "raised", "purpose mismatch")
	all := l.All()
	all[0].Detail = "mutated"
	if l.All()[0].Detail != "purpose mismatch" {
		t.Fatal("All exposed internal storage")
	}
}

func TestCountByKind(t *testing.T) {
	l, _ := newLog()
	l.Append(KindProcessing, "p", "pd", "s", "ok", "")
	l.Append(KindProcessing, "p", "pd", "s", "ok", "")
	l.Append(KindErasure, "", "pd", "s", "ok", "")
	got := l.CountByKind()
	if got[KindProcessing] != 2 || got[KindErasure] != 1 {
		t.Fatalf("CountByKind = %v", got)
	}
}

func TestEmptyLogVerifies(t *testing.T) {
	l, _ := newLog()
	if err := l.Verify(); err != nil {
		t.Fatalf("empty Verify: %v", err)
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestNilClockDefaultsToReal(t *testing.T) {
	l := NewLog(nil)
	e := l.Append(KindExport, "", "", "s", "ok", "")
	if e.Time.IsZero() {
		t.Fatal("real clock produced zero time")
	}
}

func TestConcurrentAppend(t *testing.T) {
	l, _ := newLog()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Append(KindProcessing, "p", "pd", "s", "ok", "")
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 400 {
		t.Fatalf("Len = %d, want 400", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("Verify after concurrent appends: %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		KindCollection: "collection", KindProcessing: "processing",
		KindConsentChange: "consent-change", KindErasure: "erasure",
		KindDenial: "denial", KindAlert: "alert", KindExport: "export",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestByPDsBulk(t *testing.T) {
	l := NewLog(simclock.NewSim(simclock.Epoch))
	pdids := []string{"user/a/1", "user/a/2", "user/b/1"}
	for round := 0; round < 3; round++ {
		for _, pdid := range pdids {
			l.Append(KindProcessing, "p", pdid, "subj", "ok", "r")
		}
	}
	l.Append(KindExport, "", "", "subj", "ok", "no pdid") // indexed by subject only

	got := l.ByPDs([]string{"user/a/1", "user/b/1", "user/ghost/9", "user/a/1"})
	if len(got) != 2 {
		t.Fatalf("ByPDs returned %d keys, want 2: %v", len(got), got)
	}
	for _, pdid := range []string{"user/a/1", "user/b/1"} {
		want := l.ByPD(pdid)
		bulk := got[pdid]
		if len(bulk) != len(want) {
			t.Fatalf("%s: bulk %d entries, ByPD %d", pdid, len(bulk), len(want))
		}
		for i := range want {
			if bulk[i].Hash != want[i].Hash {
				t.Fatalf("%s entry %d diverged from ByPD", pdid, i)
			}
		}
	}
	if _, ok := got["user/ghost/9"]; ok {
		t.Fatal("ByPDs invented entries for an unknown pdid")
	}
}
