// Package audit is rgpdOS's processing log.
//
// The paper's right-of-access illustration (§4) requires that "the DED ...
// logs every executed processing. This log is organized so that it can give
// information about executed processings for each piece of PD." This package
// provides that log: an append-only, hash-chained sequence of entries
// indexed by subject and by PD, so a subject-access request can enumerate
// exactly which purposes touched which of their data, and a tamper check
// (Verify) can prove the history was not rewritten.
package audit

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/simclock"
)

// Kind classifies an audit entry.
type Kind int

// Entry kinds covering the PD life cycle the paper tracks: collection,
// processing, consent changes, erasure, plus enforcement denials and
// purpose-mismatch alerts.
const (
	KindCollection Kind = iota + 1
	KindProcessing
	KindConsentChange
	KindErasure
	KindDenial
	KindAlert
	KindExport
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCollection:
		return "collection"
	case KindProcessing:
		return "processing"
	case KindConsentChange:
		return "consent-change"
	case KindErasure:
		return "erasure"
	case KindDenial:
		return "denial"
	case KindAlert:
		return "alert"
	case KindExport:
		return "export"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Entry is one immutable audit record.
type Entry struct {
	Seq       uint64
	Time      time.Time
	Kind      Kind
	Purpose   string
	PDID      string
	SubjectID string
	// Outcome is "ok", "denied", or a short status.
	Outcome string
	// Detail carries free-form context (error text, field lists...).
	Detail string
	// PrevHash/Hash chain the log; Hash covers all fields plus PrevHash.
	PrevHash [sha256.Size]byte
	Hash     [sha256.Size]byte
}

// ErrChainBroken reports a failed integrity verification.
var ErrChainBroken = errors.New("audit: hash chain broken")

// Log is an append-only audit log. Safe for concurrent use.
type Log struct {
	clock simclock.Clock

	mu        sync.RWMutex
	entries   []Entry
	bySubject map[string][]int
	byPD      map[string][]int
}

// NewLog returns an empty log using clock for timestamps.
func NewLog(clock simclock.Clock) *Log {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Log{
		clock:     clock,
		bySubject: make(map[string][]int),
		byPD:      make(map[string][]int),
	}
}

// hashEntry computes the chained hash of e (Hash field excluded).
func hashEntry(e *Entry) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], e.Seq)
	_, _ = h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(e.Time.UnixNano()))
	_, _ = h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(e.Kind))
	_, _ = h.Write(buf[:])
	for _, s := range []string{e.Purpose, e.PDID, e.SubjectID, e.Outcome, e.Detail} {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		_, _ = h.Write(buf[:])
		_, _ = h.Write([]byte(s))
	}
	_, _ = h.Write(e.PrevHash[:])
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Append records a new entry, filling Seq, Time and the hash chain. It
// returns the completed entry.
func (l *Log) Append(kind Kind, purpose, pdid, subjectID, outcome, detail string) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Entry{
		Seq:       uint64(len(l.entries) + 1),
		Time:      l.clock.Now(),
		Kind:      kind,
		Purpose:   purpose,
		PDID:      pdid,
		SubjectID: subjectID,
		Outcome:   outcome,
		Detail:    detail,
	}
	if n := len(l.entries); n > 0 {
		e.PrevHash = l.entries[n-1].Hash
	}
	e.Hash = hashEntry(&e)
	idx := len(l.entries)
	l.entries = append(l.entries, e)
	if subjectID != "" {
		l.bySubject[subjectID] = append(l.bySubject[subjectID], idx)
	}
	if pdid != "" {
		l.byPD[pdid] = append(l.byPD[pdid], idx)
	}
	return e
}

// Len reports the number of entries.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// All returns a copy of every entry in order.
func (l *Log) All() []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// BySubject returns the entries touching the given subject, in order. This
// is the query behind the right of access.
func (l *Log) BySubject(subjectID string) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	idxs := l.bySubject[subjectID]
	out := make([]Entry, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, l.entries[i])
	}
	return out
}

// ByPD returns the entries touching one piece of PD, in order — "information
// about executed processings for each piece of PD" (§4).
func (l *Log) ByPD(pdid string) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	idxs := l.byPD[pdid]
	out := make([]Entry, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, l.entries[i])
	}
	return out
}

// ByPDs is the bulk form of ByPD: one lock acquisition answers the history
// query for a whole candidate list (the right-of-access report asks for
// every record of a subject at once — rescanning the log lock per record is
// the hot part of that loop). Only pdids with at least one entry appear in
// the result; duplicate pdids resolve to the same slice contents.
func (l *Log) ByPDs(pdids []string) map[string][]Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[string][]Entry, len(pdids))
	for _, pdid := range pdids {
		idxs := l.byPD[pdid]
		if len(idxs) == 0 {
			continue
		}
		es := make([]Entry, 0, len(idxs))
		for _, i := range idxs {
			es = append(es, l.entries[i])
		}
		out[pdid] = es
	}
	return out
}

// Verify walks the hash chain and returns ErrChainBroken (with position
// detail) if any entry was altered or reordered.
func (l *Log) Verify() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var prev [sha256.Size]byte
	for i := range l.entries {
		e := &l.entries[i]
		if e.PrevHash != prev {
			return fmt.Errorf("%w: entry %d prev-hash mismatch", ErrChainBroken, e.Seq)
		}
		if hashEntry(e) != e.Hash {
			return fmt.Errorf("%w: entry %d content hash mismatch", ErrChainBroken, e.Seq)
		}
		prev = e.Hash
	}
	return nil
}

// CountByKind tallies entries per kind (used by experiment reports).
func (l *Log) CountByKind() map[Kind]int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[Kind]int)
	for i := range l.entries {
		out[l.entries[i].Kind]++
	}
	return out
}

// Tamper mutates entry seq's detail WITHOUT re-hashing. It exists only so
// tests and the integrity experiment can demonstrate that Verify catches
// rewrites; production code has no path to it.
func (l *Log) Tamper(seq uint64, newDetail string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq == 0 || int(seq) > len(l.entries) {
		return false
	}
	l.entries[seq-1].Detail = newDetail
	return true
}
