package membrane

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
)

func validMembrane() *Membrane {
	m := New("user/alice/1", "user", "alice")
	m.SetConsent("purpose1", Grant{Kind: GrantAll})
	m.SetConsent("purpose2", Grant{Kind: GrantNone})
	m.SetConsent("purpose3", Grant{Kind: GrantView, View: "v_ano"})
	m.CreatedAt = simclock.Epoch
	m.TTL = 365 * 24 * time.Hour // the paper's "age: 1Y"
	return m
}

func TestValidate(t *testing.T) {
	if err := validMembrane().Validate(); err != nil {
		t.Fatalf("valid membrane rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Membrane)
	}{
		{"missing pdid", func(m *Membrane) { m.PDID = "" }},
		{"missing type", func(m *Membrane) { m.TypeName = "" }},
		{"missing subject", func(m *Membrane) { m.SubjectID = "" }},
		{"bad origin", func(m *Membrane) { m.Origin = 99 }},
		{"bad sensitivity", func(m *Membrane) { m.Sensitivity = 0 }},
		{"empty purpose", func(m *Membrane) { m.Consents[""] = Grant{Kind: GrantAll} }},
		{"view grant without view", func(m *Membrane) { m.Consents["p"] = Grant{Kind: GrantView} }},
		{"all grant with view", func(m *Membrane) { m.Consents["p"] = Grant{Kind: GrantAll, View: "v"} }},
		{"bad grant kind", func(m *Membrane) { m.Consents["p"] = Grant{Kind: 42} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := validMembrane()
			tt.mutate(m)
			if err := m.Validate(); !errors.Is(err, ErrInvalid) {
				t.Fatalf("Validate = %v, want ErrInvalid", err)
			}
		})
	}
	var nilM *Membrane
	if err := nilM.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("nil Validate = %v, want ErrInvalid", err)
	}
}

func TestDecideMatrix(t *testing.T) {
	// The paper's Listing 1 consent block: purpose1: all, purpose2: none,
	// purpose3: ano (a view).
	m := validMembrane()
	now := simclock.Epoch.Add(time.Hour)

	g, err := m.Decide("purpose1", now)
	if err != nil || g.Kind != GrantAll {
		t.Fatalf("purpose1: %+v, %v; want GrantAll", g, err)
	}
	if _, err := m.Decide("purpose2", now); !errors.Is(err, ErrConsentDenied) {
		t.Fatalf("purpose2 err = %v, want ErrConsentDenied", err)
	}
	g, err = m.Decide("purpose3", now)
	if err != nil || g.Kind != GrantView || g.View != "v_ano" {
		t.Fatalf("purpose3: %+v, %v; want view v_ano", g, err)
	}
	// Unknown purpose: deny by default.
	if _, err := m.Decide("marketing", now); !errors.Is(err, ErrConsentDenied) {
		t.Fatalf("unknown purpose err = %v, want ErrConsentDenied", err)
	}
}

func TestDecideTTL(t *testing.T) {
	m := validMembrane()
	before := simclock.Epoch.Add(364 * 24 * time.Hour)
	after := simclock.Epoch.Add(366 * 24 * time.Hour)
	if _, err := m.Decide("purpose1", before); err != nil {
		t.Fatalf("pre-TTL Decide: %v", err)
	}
	if _, err := m.Decide("purpose1", after); !errors.Is(err, ErrExpired) {
		t.Fatalf("post-TTL err = %v, want ErrExpired", err)
	}
	if !m.ExpiredAt(after) || m.ExpiredAt(before) {
		t.Fatal("ExpiredAt inconsistent with Decide")
	}
	// Zero TTL means no expiry.
	m.TTL = 0
	if m.ExpiredAt(after.Add(100 * 365 * 24 * time.Hour)) {
		t.Fatal("zero TTL expired")
	}
}

func TestDecideErasedAndRestricted(t *testing.T) {
	now := simclock.Epoch.Add(time.Hour)
	m := validMembrane()
	m.Erased = true
	if _, err := m.Decide("purpose1", now); !errors.Is(err, ErrErased) {
		t.Fatalf("erased err = %v, want ErrErased", err)
	}
	m = validMembrane()
	m.Restricted = true
	if _, err := m.Decide("purpose1", now); !errors.Is(err, ErrRestricted) {
		t.Fatalf("restricted err = %v, want ErrRestricted", err)
	}
}

func TestConsentMutationBumpsVersion(t *testing.T) {
	m := New("t/s/1", "t", "s")
	v0 := m.Version
	m.SetConsent("p", Grant{Kind: GrantAll})
	if m.Version != v0+1 {
		t.Fatalf("Version after SetConsent = %d", m.Version)
	}
	m.WithdrawConsent("p")
	if m.Version != v0+2 {
		t.Fatalf("Version after Withdraw = %d", m.Version)
	}
	if g := m.Consents["p"]; g.Kind != GrantNone {
		t.Fatalf("withdrawn grant = %+v", g)
	}
}

func TestWithdrawOnNilMap(t *testing.T) {
	m := &Membrane{PDID: "a", TypeName: "b", SubjectID: "c"}
	m.WithdrawConsent("p") // must not panic
	if g := m.Consents["p"]; g.Kind != GrantNone {
		t.Fatalf("grant = %+v", g)
	}
}

func TestPurposesSorted(t *testing.T) {
	m := New("t/s/1", "t", "s")
	for _, p := range []string{"zeta", "alpha", "mid"} {
		m.SetConsent(p, Grant{Kind: GrantAll})
	}
	got := m.Purposes()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Purposes = %v, want %v", got, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := validMembrane()
	cp := m.Clone()
	cp.SetConsent("purpose1", Grant{Kind: GrantNone})
	cp.Collection["web_form"] = "other.html"
	if g := m.Consents["purpose1"]; g.Kind != GrantAll {
		t.Fatal("Clone shares consent map")
	}
	if m.Collection["web_form"] == "other.html" {
		t.Fatal("Clone shares collection map")
	}
}

func TestCloneForCopyProvenance(t *testing.T) {
	m := validMembrane()
	c1 := m.CloneForCopy("user/alice/2")
	if c1.CopyOf != m.PDID || c1.PDID != "user/alice/2" {
		t.Fatalf("first copy: %+v", c1)
	}
	c2 := c1.CloneForCopy("user/alice/3")
	if c2.CopyOf != m.PDID {
		t.Fatalf("copy-of-copy CopyOf = %q, want root %q", c2.CopyOf, m.PDID)
	}
	// Consents travel with the copy.
	if g := c2.Consents["purpose3"]; g.View != "v_ano" {
		t.Fatalf("copy lost consents: %+v", c2.Consents)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := validMembrane()
	m.EscrowRef = "escrow-1"
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.PDID != m.PDID || got.TTL != m.TTL || got.Version != m.Version ||
		got.EscrowRef != m.EscrowRef || len(got.Consents) != len(m.Consents) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
	}
	for p, g := range m.Consents {
		if got.Consents[p] != g {
			t.Fatalf("consent %q: %+v != %+v", p, got.Consents[p], g)
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode([]byte(`{"pdid":""}`)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Decode invalid err = %v, want ErrInvalid", err)
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("Decode accepted garbage")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	err := quick.Check(func(pd, ty, subj string, ttlHours uint16, sens uint8, npurp uint8) bool {
		if pd == "" || ty == "" || subj == "" {
			return true // identity fields required; skip
		}
		m := New(pd, ty, subj)
		m.Sensitivity = Sensitivity(int(sens)%3 + 1)
		m.TTL = time.Duration(ttlHours) * time.Hour
		m.CreatedAt = simclock.Epoch
		for i := 0; i < int(npurp%8); i++ {
			kind := GrantKind(i%3 + 1)
			g := Grant{Kind: kind}
			if kind == GrantView {
				g.View = "v"
			}
			m.SetConsent("p"+string(rune('a'+i)), g)
		}
		b, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		if got.PDID != m.PDID || got.TTL != m.TTL || len(got.Consents) != len(m.Consents) {
			return false
		}
		for p, g := range m.Consents {
			if got.Consents[p] != g {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseOriginSensitivity(t *testing.T) {
	for _, s := range []string{"subject", "sysadmin", "third_party", "derived"} {
		o, err := ParseOrigin(s)
		if err != nil {
			t.Fatalf("ParseOrigin(%q): %v", s, err)
		}
		if o.String() != s {
			t.Fatalf("round trip %q -> %v -> %q", s, o, o.String())
		}
	}
	if _, err := ParseOrigin("mars"); err == nil {
		t.Fatal("ParseOrigin accepted garbage")
	}
	// The paper's Listing 1 misspells "hight"; accept it.
	s, err := ParseSensitivity("hight")
	if err != nil || s != SensitivityHigh {
		t.Fatalf("ParseSensitivity(hight) = %v, %v", s, err)
	}
	if _, err := ParseSensitivity("extreme"); err == nil {
		t.Fatal("ParseSensitivity accepted garbage")
	}
}

func TestLedgerFamilies(t *testing.T) {
	l := NewLedger()
	l.RegisterCopy("a", "b")
	l.RegisterCopy("a", "c")
	l.RegisterCopy("b", "d") // copy of a copy joins the same family

	fam := l.Family("d")
	if len(fam) != 4 {
		t.Fatalf("Family(d) = %v, want 4 members", fam)
	}
	seen := map[string]bool{}
	for _, id := range fam {
		seen[id] = true
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		if !seen[id] {
			t.Fatalf("Family(d) missing %q: %v", id, fam)
		}
	}
	// Unregistered id is its own family.
	if fam := l.Family("solo"); len(fam) != 1 || fam[0] != "solo" {
		t.Fatalf("Family(solo) = %v", fam)
	}
}

func TestLedgerDuplicateRegistration(t *testing.T) {
	l := NewLedger()
	l.RegisterCopy("a", "b")
	l.RegisterCopy("a", "b") // duplicate must not double-count
	if fam := l.Family("a"); len(fam) != 2 {
		t.Fatalf("Family after dup registration = %v", fam)
	}
}

func TestLedgerForget(t *testing.T) {
	l := NewLedger()
	l.RegisterCopy("a", "b")
	l.Forget("b")
	if fam := l.Family("a"); len(fam) != 1 {
		t.Fatalf("Family after Forget = %v", fam)
	}
	l.Forget("ghost") // no-op, must not panic
}

func TestGrantString(t *testing.T) {
	cases := map[string]Grant{
		"all":   {Kind: GrantAll},
		"none":  {Kind: GrantNone},
		"v_ano": {Kind: GrantView, View: "v_ano"},
	}
	for want, g := range cases {
		if got := g.String(); got != want {
			t.Fatalf("Grant%+v.String() = %q, want %q", g, got, want)
		}
	}
}
