package cryptoshred

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// testAuthority is shared across tests: RSA keygen dominates test time, so
// generate once.
var (
	authOnce sync.Once
	auth     *Authority
)

func testAuth(t *testing.T) *Authority {
	t.Helper()
	authOnce.Do(func() {
		a, err := NewAuthority(1024)
		if err != nil {
			t.Fatalf("NewAuthority: %v", err)
		}
		auth = a
	})
	return auth
}

func TestSealOpenRoundTrip(t *testing.T) {
	v := NewVault(testAuth(t).PublicKey())
	pt := []byte(`{"name":"Chiraz","year_of_birthdate":1990}`)
	ct, err := v.Seal("user/chiraz/1", pt)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if bytes.Contains(ct, []byte("Chiraz")) {
		t.Fatal("ciphertext leaks plaintext")
	}
	got, err := v.Open("user/chiraz/1", ct)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("round trip mismatch")
	}
}

func TestPerPDKeysAreIndependent(t *testing.T) {
	v := NewVault(testAuth(t).PublicKey())
	ct, err := v.Seal("pd-a", []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// Opening under a pdid that has no key fails with ErrNoKey — and Open
	// must not mint a key as a side effect.
	if _, err := v.Open("pd-b", ct); !errors.Is(err, ErrNoKey) {
		t.Fatalf("cross-PD Open err = %v, want ErrNoKey", err)
	}
	if v.LiveKeys() != 1 {
		t.Fatalf("LiveKeys = %d, want 1 (Open must not mint)", v.LiveKeys())
	}
	// Even once pd-b has its own key, pd-a ciphertext stays unreadable
	// under it: keys and AAD are per PD.
	if _, err := v.Seal("pd-b", []byte("other")); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Open("pd-b", ct); !errors.Is(err, ErrCiphertext) {
		t.Fatalf("wrong-key Open err = %v, want ErrCiphertext", err)
	}
	if !v.HasKey("pd-a") || !v.HasKey("pd-b") || v.LiveKeys() != 2 {
		t.Fatal("key bookkeeping wrong")
	}
}

func TestOpenWithoutKey(t *testing.T) {
	v := NewVault(testAuth(t).PublicKey())
	if _, err := v.Open("ghost", []byte("x")); !errors.Is(err, ErrNoKey) {
		t.Fatalf("Open without key err = %v, want ErrNoKey", err)
	}
}

func TestTamperDetected(t *testing.T) {
	v := NewVault(testAuth(t).PublicKey())
	ct, err := v.Seal("pd", []byte("integrity matters"))
	if err != nil {
		t.Fatal(err)
	}
	ct[len(ct)-1] ^= 0xFF
	if _, err := v.Open("pd", ct); !errors.Is(err, ErrCiphertext) {
		t.Fatalf("tampered Open err = %v, want ErrCiphertext", err)
	}
	if _, err := v.Open("pd", []byte{1, 2}); !errors.Is(err, ErrCiphertext) {
		t.Fatalf("short Open err = %v, want ErrCiphertext", err)
	}
}

func TestShredDestroysOperatorAccess(t *testing.T) {
	v := NewVault(testAuth(t).PublicKey())
	pt := []byte("to be forgotten")
	ct, err := v.Seal("pd", pt)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := v.Shred("pd")
	if err != nil {
		t.Fatalf("Shred: %v", err)
	}
	if rec.PDID != "pd" || len(rec.WrappedKey) == 0 || rec.Ref == "" {
		t.Fatalf("escrow record = %+v", rec)
	}
	// Operator: locked out.
	if _, err := v.Open("pd", ct); !errors.Is(err, ErrKeyDestroyed) {
		t.Fatalf("post-shred Open err = %v, want ErrKeyDestroyed", err)
	}
	if _, err := v.Seal("pd", pt); !errors.Is(err, ErrKeyDestroyed) {
		t.Fatalf("post-shred Seal err = %v, want ErrKeyDestroyed", err)
	}
	if v.HasKey("pd") || !v.Destroyed("pd") {
		t.Fatal("key state inconsistent after shred")
	}
}

func TestAuthorityRecovers(t *testing.T) {
	a := testAuth(t)
	v := NewVault(a.PublicKey())
	pt := []byte("evidence for the investigation")
	ct, err := v.Seal("pd", pt)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := v.Shred("pd")
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Recover(rec, ct)
	if err != nil {
		t.Fatalf("Authority.Recover: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("authority recovered wrong plaintext")
	}
}

func TestRecoverRejectsWrongAuthority(t *testing.T) {
	a := testAuth(t)
	other, err := NewAuthority(1024)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVault(a.PublicKey())
	ct, err := v.Seal("pd", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := v.Shred("pd")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Recover(rec, ct); err == nil {
		t.Fatal("wrong authority recovered the key")
	}
}

func TestShredErrors(t *testing.T) {
	v := NewVault(testAuth(t).PublicKey())
	if _, err := v.Shred("never-sealed"); !errors.Is(err, ErrNoKey) {
		t.Fatalf("Shred unknown err = %v, want ErrNoKey", err)
	}
	if _, err := v.Seal("pd", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Shred("pd"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Shred("pd"); !errors.Is(err, ErrKeyDestroyed) {
		t.Fatalf("double Shred err = %v, want ErrKeyDestroyed", err)
	}
}

func TestEscrowLookup(t *testing.T) {
	v := NewVault(testAuth(t).PublicKey())
	if _, err := v.Seal("pd", []byte("x")); err != nil {
		t.Fatal(err)
	}
	rec, err := v.Shred("pd")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.Escrow(rec.Ref)
	if err != nil || got.PDID != "pd" {
		t.Fatalf("Escrow = %+v, %v", got, err)
	}
	if _, err := v.Escrow("escrow-999"); !errors.Is(err, ErrNoEscrow) {
		t.Fatalf("missing escrow err = %v, want ErrNoEscrow", err)
	}
}

func TestNewAuthorityRejectsWeakKeys(t *testing.T) {
	if _, err := NewAuthority(512); err == nil {
		t.Fatal("NewAuthority accepted 512-bit key")
	}
}

func TestSealFreshNoncePerCall(t *testing.T) {
	v := NewVault(testAuth(t).PublicKey())
	a, err := v.Seal("pd", []byte("same plaintext"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.Seal("pd", []byte("same plaintext"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same plaintext are identical (nonce reuse)")
	}
}

func TestConcurrentSealOpen(t *testing.T) {
	v := NewVault(testAuth(t).PublicKey())
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pdid := "pd-" + string(rune('a'+w))
			for i := 0; i < 20; i++ {
				ct, err := v.Seal(pdid, []byte{byte(i)})
				if err != nil {
					errs <- err
					return
				}
				pt, err := v.Open(pdid, ct)
				if err != nil || pt[0] != byte(i) {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent seal/open: %v", err)
	}
}
