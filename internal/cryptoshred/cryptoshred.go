// Package cryptoshred implements crypto-erasure with authority escrow — the
// paper's §4 model for the right to be forgotten.
//
// Every piece of personal data is encrypted at rest under its own AES-256-GCM
// data key held in the Vault. Because only ciphertext ever reaches the inode
// layer, journal images and free-space residues are unreadable without the
// key. Erasure ("shredding") wraps the data key under the authorities' RSA
// public key and destroys the operator's copy: "the data operator will not
// be able to access the data anymore, but the authorities will be able to
// decrypt it using their private key" — the model lets data survive for
// legal investigations while being gone for every operational purpose.
package cryptoshred

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Sentinel errors.
var (
	// ErrKeyDestroyed reports use of a pdid whose key was shredded.
	ErrKeyDestroyed = errors.New("cryptoshred: data key destroyed")
	// ErrNoKey reports decryption for a pdid that never had a key.
	ErrNoKey = errors.New("cryptoshred: no data key")
	// ErrCiphertext reports malformed or tampered ciphertext.
	ErrCiphertext = errors.New("cryptoshred: invalid ciphertext")
	// ErrNoEscrow reports a recovery attempt without an escrow record.
	ErrNoEscrow = errors.New("cryptoshred: no escrow record")
)

// keySize is the AES-256 key length.
const keySize = 32

// EscrowRecord is the artifact produced by Shred: the data key wrapped
// under the authorities' public key. The operator stores it but cannot open
// it.
type EscrowRecord struct {
	// Ref names this record (referenced by the membrane's EscrowRef).
	Ref string
	// PDID identifies the shredded personal data.
	PDID string
	// WrappedKey is the RSA-OAEP encryption of the AES data key.
	WrappedKey []byte
}

// Authority models the public authority of the paper's erasure scheme. It
// generates the escrow keypair and is the only party able to unwrap escrowed
// keys. In a real deployment the private key never touches the operator's
// machine; here both live in the same process but in different types, and
// the Vault only ever sees the public half.
type Authority struct {
	priv *rsa.PrivateKey
}

// NewAuthority generates an authority with an RSA key of the given size.
// Use 2048 for realistic deployments; tests may pass 1024 for speed.
func NewAuthority(bits int) (*Authority, error) {
	if bits < 1024 {
		return nil, fmt.Errorf("cryptoshred: authority key too small (%d bits)", bits)
	}
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("cryptoshred: generate authority key: %w", err)
	}
	return &Authority{priv: priv}, nil
}

// PublicKey returns the half of the escrow keypair given to data operators.
func (a *Authority) PublicKey() *rsa.PublicKey { return &a.priv.PublicKey }

// Recover unwraps the escrowed data key and decrypts ciphertext — the legal
// investigation path. Only the Authority can do this.
func (a *Authority) Recover(rec EscrowRecord, ciphertext []byte) ([]byte, error) {
	key, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, a.priv, rec.WrappedKey, []byte(rec.PDID))
	if err != nil {
		return nil, fmt.Errorf("cryptoshred: unwrap escrowed key for %s: %w", rec.PDID, err)
	}
	return decrypt(key, rec.PDID, ciphertext)
}

// Vault holds per-PD data keys on the operator side. It is safe for
// concurrent use.
type Vault struct {
	authorityPub *rsa.PublicKey

	// randMu guards randr, the entropy source for key material and
	// nonces. Default crypto/rand.Reader; see SetRand.
	randMu sync.Mutex
	randr  io.Reader

	mu        sync.Mutex
	keys      map[string][]byte
	destroyed map[string]bool
	escrows   map[string]EscrowRecord
	escrowSeq uint64
}

// NewVault returns a vault that escrows to the given authority public key.
func NewVault(authorityPub *rsa.PublicKey) *Vault {
	return &Vault{
		authorityPub: authorityPub,
		randr:        rand.Reader,
		keys:         make(map[string][]byte),
		destroyed:    make(map[string]bool),
		escrows:      make(map[string]EscrowRecord),
	}
}

// SetRand replaces the vault's entropy source. ONLY for deterministic
// simulation (the SC7 experiment needs byte-identical ciphertext across
// runs to assert byte-identical archive output); production vaults keep
// the crypto/rand default. Set before concurrent use, or leave alone.
func (v *Vault) SetRand(r io.Reader) {
	if r == nil {
		r = rand.Reader
	}
	v.randMu.Lock()
	v.randr = r
	v.randMu.Unlock()
}

// readRand fills p from the configured entropy source.
func (v *Vault) readRand(p []byte) error {
	v.randMu.Lock()
	defer v.randMu.Unlock()
	_, err := io.ReadFull(v.randr, p)
	return err
}

// keyFor returns (creating on first use) the data key for pdid.
func (v *Vault) keyFor(pdid string) ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.destroyed[pdid] {
		return nil, fmt.Errorf("%w: %s", ErrKeyDestroyed, pdid)
	}
	if k, ok := v.keys[pdid]; ok {
		return k, nil
	}
	k := make([]byte, keySize)
	if err := v.readRand(k); err != nil {
		return nil, fmt.Errorf("cryptoshred: generate data key: %w", err)
	}
	v.keys[pdid] = k
	return k, nil
}

// Seal encrypts plaintext under pdid's data key (AES-256-GCM, random nonce,
// pdid as additional authenticated data). The first Seal for a pdid mints
// its key.
func (v *Vault) Seal(pdid string, plaintext []byte) ([]byte, error) {
	key, err := v.keyFor(pdid)
	if err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cryptoshred: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("cryptoshred: gcm: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if err := v.readRand(nonce); err != nil {
		return nil, fmt.Errorf("cryptoshred: nonce: %w", err)
	}
	out := gcm.Seal(nonce, nonce, plaintext, []byte(pdid))
	return out, nil
}

// Open decrypts ciphertext sealed for pdid. After Shred it fails with
// ErrKeyDestroyed: the operator can no longer read the data.
func (v *Vault) Open(pdid string, ciphertext []byte) ([]byte, error) {
	v.mu.Lock()
	if v.destroyed[pdid] {
		v.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrKeyDestroyed, pdid)
	}
	key, ok := v.keys[pdid]
	v.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoKey, pdid)
	}
	return decrypt(key, pdid, ciphertext)
}

func decrypt(key []byte, pdid string, ciphertext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cryptoshred: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("cryptoshred: gcm: %w", err)
	}
	if len(ciphertext) < gcm.NonceSize() {
		return nil, fmt.Errorf("%w: too short", ErrCiphertext)
	}
	nonce, body := ciphertext[:gcm.NonceSize()], ciphertext[gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, body, []byte(pdid))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCiphertext, err)
	}
	return pt, nil
}

// HasKey reports whether pdid currently has a live data key.
func (v *Vault) HasKey(pdid string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	_, ok := v.keys[pdid]
	return ok
}

// Destroyed reports whether pdid's key was shredded.
func (v *Vault) Destroyed(pdid string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.destroyed[pdid]
}

// Shred implements the erasure step: the data key is wrapped under the
// authority public key, recorded as an escrow record, and destroyed on the
// operator side. Shredding an unknown or already-shredded pdid returns
// ErrNoKey / ErrKeyDestroyed.
func (v *Vault) Shred(pdid string) (EscrowRecord, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.destroyed[pdid] {
		return EscrowRecord{}, fmt.Errorf("%w: %s", ErrKeyDestroyed, pdid)
	}
	key, ok := v.keys[pdid]
	if !ok {
		return EscrowRecord{}, fmt.Errorf("%w: %s", ErrNoKey, pdid)
	}
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, v.authorityPub, key, []byte(pdid))
	if err != nil {
		return EscrowRecord{}, fmt.Errorf("cryptoshred: wrap key for escrow: %w", err)
	}
	v.escrowSeq++
	rec := EscrowRecord{
		Ref:        fmt.Sprintf("escrow-%d", v.escrowSeq),
		PDID:       pdid,
		WrappedKey: wrapped,
	}
	v.escrows[rec.Ref] = rec
	// Destroy the operator's key: overwrite then delete.
	for i := range key {
		key[i] = 0
	}
	delete(v.keys, pdid)
	v.destroyed[pdid] = true
	return rec, nil
}

// Escrow returns the stored escrow record by ref.
func (v *Vault) Escrow(ref string) (EscrowRecord, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	rec, ok := v.escrows[ref]
	if !ok {
		return EscrowRecord{}, fmt.Errorf("%w: %s", ErrNoEscrow, ref)
	}
	return rec, nil
}

// LiveKeys reports how many data keys are currently held.
func (v *Vault) LiveKeys() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.keys)
}
