// Package cluster routes data subjects across a small fleet of in-process
// rgpdOS nodes — the paper's "GDPR-compliant-by-construction" machine,
// scaled out without weakening the per-machine guarantees. Each node is a
// full core.System (purpose kernels, DBFS, membranes, crypto-shredding,
// audit); the cluster is a thin router on top, and every GDPR property is
// still enforced by the node that holds the data.
//
// Placement is by geometry-independent subject hash: a subject's home node
// is dbfs.SubjectHash(subject) mod the node count — the raw FNV-1a hash,
// never dbfs.ShardOf, whose `hash % shards` value discards all but a few
// bits and would couple cross-node placement to each store's mount-time
// shard count. All of a subject's records are inserted on the home node;
// remounting a node with a different shard geometry never re-homes anyone.
//
// Cross-node copies are the hard part — the paper's obligation is that
// erasure and consent reach every copy. MaterializeCopy places a record on
// a non-home node only after writing a durable ledger entry (subject,
// pdid, node) on the home node's NPD filesystem (see ledger.go): the
// ledger may name a copy that never appeared, but a live copy is never
// unknown to the ledger. Consent mutations and Erase apply on the home
// node first, then fan out to exactly the nodes the ledger names, syncing
// each copy's membrane from its origin (erased origin ⇒ the copy is
// crypto-erased and the entry dropped). Per-node failures are reported,
// not hidden, and enqueued for retry: the Propagator (propagator.go)
// retries every pending sync at least once per PropagationWindow, so a
// mutation reaches every reachable copy within one window of the failure
// clearing.
//
// Fan-out reads merge deterministically: AccessBatch groups subjects by
// home node, runs the node batches concurrently (lowest-node-index error
// wins, via the same rights.ForEachIndexed contract the single-node engine
// uses), then folds each subject's remote-copy reports into the home
// report with stable sorts. SweepExpired sweeps every node and returns the
// union, sorted. PDIDs are node-scoped (each node runs its own per-type
// sequence), so merged pdid lists are multisets — the ledger triple
// (subject, pdid, node) is the globally unique name, and copies carry
// CopyOf for provenance.
//
// Lock order: per-subject op lock → node internals (rights/DBFS/PS) →
// ledger.mu → NPD plainfs. The ledger and pending-queue mutexes are leaf
// locks; nothing below them calls back up.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dbfs"
	"repro/internal/membrane"
	"repro/internal/rights"
	"repro/internal/simclock"
	"repro/internal/typedsl"
)

// MaxNodes bounds the fleet: the router is built for a handful of
// co-located nodes, not a datacenter.
const MaxNodes = 8

// DefaultPropagationWindow is the fallback retry cadence: a failed
// cross-node sync is retried at least once per window.
const DefaultPropagationWindow = time.Minute

// Sentinel errors.
var (
	// ErrBadNode reports a node index outside the fleet.
	ErrBadNode = errors.New("cluster: no such node")
	// ErrHomeNode reports a copy requested on the subject's own home node.
	ErrHomeNode = errors.New("cluster: target is the subject's home node")
	// ErrInjected is the fault-injection error (FailNode) used by tests and
	// the SC8 benchmark to exercise the partial-failure path.
	ErrInjected = errors.New("cluster: injected fault")
)

// Options configures Boot.
type Options struct {
	// Nodes is the fleet size, 1..MaxNodes (default 2). 1 is the degenerate
	// single-node cluster, kept legal so benchmarks can baseline against it.
	Nodes int
	// Node is the per-node core template. Its Clock is shared across the
	// fleet (one timebase; a single Sim at simclock.Epoch is installed when
	// nil) and its NodeName is overridden with "n<index>".
	Node core.Options
	// PropagationWindow bounds cross-node retry: a failed copy sync is
	// retried at least once per window. Default DefaultPropagationWindow.
	PropagationWindow time.Duration
}

// pendKey names one pending cross-node sync: the subject's copies on one
// node need their membranes re-synced from the home node.
type pendKey struct {
	subject string
	node    int
}

// Cluster is the router. Safe for concurrent use.
type Cluster struct {
	nodes  []*core.System
	clock  simclock.Clock
	window time.Duration
	ledger *ledger

	// subjMu serializes subject-level mutations (insert-copy vs erase vs
	// consent vs sync) per subject, so a copy can never materialize from an
	// origin that a concurrent Erase has already fanned out past.
	subjMu sync.Map // subject -> *sync.Mutex

	mu      sync.Mutex
	pending map[pendKey]time.Time // -> retry deadline
	faults  map[int]int           // node -> remaining injected failures
	kick    func()                // propagator wakeup, set while one runs
}

// Boot builds a fleet of opts.Nodes fresh nodes on one shared clock and
// returns the router over them.
func Boot(opts Options) (*Cluster, error) {
	n := opts.Nodes
	if n == 0 {
		n = 2
	}
	if n < 1 || n > MaxNodes {
		return nil, fmt.Errorf("cluster: %d nodes out of range 1..%d", opts.Nodes, MaxNodes)
	}
	tmpl := opts.Node
	if tmpl.Clock == nil {
		tmpl.Clock = simclock.NewSim(simclock.Epoch)
	}
	nodes := make([]*core.System, n)
	for i := range nodes {
		o := tmpl
		o.NodeName = fmt.Sprintf("n%d", i)
		sys, err := core.Boot(o)
		if err != nil {
			return nil, fmt.Errorf("cluster: boot node %d: %w", i, err)
		}
		nodes[i] = sys
	}
	return New(nodes, opts.PropagationWindow)
}

// New builds a router over existing nodes, reloading the durable copy
// ledger from their NPD filesystems and reconciling it: any entry whose
// origin is already erased (a propagation the previous router never
// finished) is re-queued, so restarting the router never strands an
// erasure. The nodes must share one clock; node 0's is used.
func New(nodes []*core.System, window time.Duration) (*Cluster, error) {
	if len(nodes) < 1 || len(nodes) > MaxNodes {
		return nil, fmt.Errorf("cluster: %d nodes out of range 1..%d", len(nodes), MaxNodes)
	}
	if window <= 0 {
		window = DefaultPropagationWindow
	}
	led, err := loadLedger(nodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		nodes:   nodes,
		clock:   nodes[0].Clock(),
		window:  window,
		ledger:  led,
		pending: make(map[pendKey]time.Time),
		faults:  make(map[int]int),
	}
	c.reconcile()
	return c, nil
}

// reconcile re-queues syncs the durable state proves unfinished: a ledger
// entry whose origin membrane is erased, or whose origin consents differ
// from the copy's, means a previous router died mid-fanout.
func (c *Cluster) reconcile() {
	deadline := c.clock.Now().Add(c.window)
	for _, subject := range c.ledger.subjects() {
		home := c.HomeOf(subject)
		for _, e := range c.ledger.entriesFor(subject) {
			if c.needsSync(e, home) {
				c.mu.Lock()
				k := pendKey{subject: subject, node: e.Node}
				if _, ok := c.pending[k]; !ok {
					c.pending[k] = deadline
				}
				c.mu.Unlock()
			}
		}
	}
}

// needsSync reports whether an entry's copy visibly lags its origin.
func (c *Cluster) needsSync(e Entry, home int) bool {
	hn := c.nodes[home]
	om, err := hn.DBFS().GetMembrane(hn.DEDToken(), e.Origin)
	if err != nil {
		return false // origin physically gone: the copy's own TTL governs
	}
	if e.PDID == "" {
		return om.Erased // crashed intent: only erasure must chase it
	}
	rn := c.nodes[e.Node]
	cm, err := rn.DBFS().GetMembrane(rn.DEDToken(), e.PDID)
	if err != nil {
		return false // copy gone; the sweep prune will drop the entry
	}
	if om.Erased {
		return !cm.Erased
	}
	return cm.Restricted != om.Restricted || !consentsEqual(cm.Consents, om.Consents)
}

func consentsEqual(a, b map[string]membrane.Grant) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Nodes reports the fleet size.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Node returns one node's core.System for direct (node-local) access.
func (c *Cluster) Node(i int) *core.System { return c.nodes[i] }

// Clock is the fleet's shared timebase.
func (c *Cluster) Clock() simclock.Clock { return c.clock }

// PropagationWindow reports the configured retry bound.
func (c *Cluster) PropagationWindow() time.Duration { return c.window }

// HomeOf places a subject: the raw FNV-1a subject hash mod the node count.
// A pure function of (subject, fleet size) — independent of any store's
// shard geometry, so a node remount with different Options.Shards never
// re-homes a subject.
func (c *Cluster) HomeOf(subjectID string) int {
	return int(dbfs.SubjectHash(subjectID) % uint32(len(c.nodes)))
}

// lockSubject serializes subject-level mutations. Returns the unlock.
func (c *Cluster) lockSubject(subject string) func() {
	v, _ := c.subjMu.LoadOrStore(subject, &sync.Mutex{})
	m := v.(*sync.Mutex)
	m.Lock()
	return m.Unlock
}

// CreateType declares a PD type on every node (placement needs the schema
// everywhere a record or copy may land).
func (c *Cluster) CreateType(sch *dbfs.Schema) error {
	for i, n := range c.nodes {
		if err := n.CreateType(sch); err != nil {
			return fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}
	return nil
}

// DeclareTypesDSL compiles and declares a type DSL source on every node.
func (c *Cluster) DeclareTypesDSL(src string, copts typedsl.CompileOptions) error {
	for i, n := range c.nodes {
		if err := n.DeclareTypesDSL(src, copts); err != nil {
			return fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}
	return nil
}

// Insert stores a record on the subject's home node and returns its pdid
// (node-scoped; pair it with HomeOf for the global name).
func (c *Cluster) Insert(typeName, subjectID string, rec dbfs.Record) (string, error) {
	n := c.nodes[c.HomeOf(subjectID)]
	return n.DBFS().Insert(n.DEDToken(), typeName, subjectID, rec, nil)
}

// GetRecord reads a record by pdid on its subject's home node. Copies live
// under their own node-scoped pdids; read them via Node(i) directly.
func (c *Cluster) GetRecord(pdid string) (dbfs.Record, error) {
	_, subject, _, err := dbfs.SplitPDID(pdid)
	if err != nil {
		return nil, err
	}
	n := c.nodes[c.HomeOf(subject)]
	return n.DBFS().GetRecord(n.DEDToken(), pdid)
}

// MaterializeCopy places a copy of the record pdid (which lives on its
// subject's home node) onto node target, and returns the copy's pdid on
// that node. The durable ledger entry is written BEFORE the copy is
// inserted — a crash can leave an entry without a copy (erasure tolerates
// that, subject-wide), never a copy without an entry. The copy's membrane
// is CloneForCopy of the origin's: same consents and TTL, CopyOf naming
// the origin.
func (c *Cluster) MaterializeCopy(pdid string, target int) (string, error) {
	typeName, subject, _, err := dbfs.SplitPDID(pdid)
	if err != nil {
		return "", err
	}
	if target < 0 || target >= len(c.nodes) {
		return "", fmt.Errorf("%w: %d", ErrBadNode, target)
	}
	home := c.HomeOf(subject)
	if target == home {
		return "", fmt.Errorf("%w: %s on node %d", ErrHomeNode, subject, home)
	}
	unlock := c.lockSubject(subject)
	defer unlock()

	hn := c.nodes[home]
	m, err := hn.DBFS().GetMembrane(hn.DEDToken(), pdid)
	if err != nil {
		return "", err
	}
	if m.Erased {
		return "", fmt.Errorf("cluster: copy of erased %s: %w", pdid, membrane.ErrErased)
	}
	rec, err := hn.DBFS().GetRecord(hn.DEDToken(), pdid)
	if err != nil {
		return "", err
	}
	intent := Entry{Subject: subject, Node: target, Origin: pdid, Home: home}
	if err := c.ledger.record(intent); err != nil {
		return "", err
	}
	tn := c.nodes[target]
	// Insert overrides the clone's identity fields with the pdid it
	// assigns; CopyOf and the cloned consents/TTL/CreatedAt survive.
	copyPDID, err := tn.DBFS().Insert(tn.DEDToken(), typeName, subject, rec, m.CloneForCopy(""))
	if err != nil {
		_ = c.ledger.remove(intent)
		return "", err
	}
	if err := c.ledger.setPDID(subject, home, target, pdid, copyPDID); err != nil {
		return "", err
	}
	return copyPDID, nil
}

// NodeError is one node's failure inside a fan-out.
type NodeError struct {
	Node int
	Name string
	Err  error
}

func (e NodeError) Error() string {
	return fmt.Sprintf("node %d (%s): %v", e.Node, e.Name, e.Err)
}

func (e NodeError) Unwrap() error { return e.Err }

// FanoutReport is the per-node partial-failure report of one cross-node
// mutation. The home-node op had already succeeded when the fan-out ran;
// Failed lists the remote nodes whose copy sync failed, each of which is
// queued for retry within one PropagationWindow.
type FanoutReport struct {
	Subject string
	// Nodes lists the remote nodes the ledger named, ascending.
	Nodes []int
	// Failed lists the per-node failures, ascending by node index. Every
	// failed node is also queued for Propagator retry.
	Failed []NodeError
}

// Err returns the lowest-node-index failure, or nil — the cluster's analog
// of the single-node engine's lowest-index-error merge contract.
func (r *FanoutReport) Err() error {
	if len(r.Failed) == 0 {
		return nil
	}
	return r.Failed[0]
}

// OK reports a fully-propagated fan-out.
func (r *FanoutReport) OK() bool { return len(r.Failed) == 0 }

// takeFault consumes one injected fault for node, if armed.
func (c *Cluster) takeFault(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.faults[node] > 0 {
		c.faults[node]--
		return true
	}
	return false
}

// FailNode arms fault injection: the next n cross-node syncs touching node
// fail with ErrInjected. Test and benchmark hook for the partial-failure
// path; it never affects node-local operation.
func (c *Cluster) FailNode(node, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 {
		delete(c.faults, node)
		return
	}
	c.faults[node] = n
}

// syncNode reconciles every ledger-named copy of subject on node with its
// origin on the home node: erased origin ⇒ crypto-erase the copy (through
// the node's rights engine, so the erasure is audited) and drop the entry;
// live origin ⇒ overwrite the copy's consents/restriction with the
// origin's. Caller holds the subject lock.
func (c *Cluster) syncNode(subject string, home, node int) error {
	if c.takeFault(node) {
		return ErrInjected
	}
	hn, rn := c.nodes[home], c.nodes[node]
	for _, e := range c.ledger.forNode(subject, node) {
		om, err := hn.DBFS().GetMembrane(hn.DEDToken(), e.Origin)
		if err != nil {
			continue // origin physically gone: the copy's own TTL governs
		}
		if om.Erased {
			if e.PDID == "" {
				// Crashed materialize intent: no copy pdid known, so erase
				// the subject wholesale on that node (idempotent, and every
				// record of the subject there is a copy by construction).
				if _, err := rn.Rights().Erase(subject); err != nil {
					return err
				}
				return c.ledger.removeNode(subject, home, node)
			}
			if _, err := rn.Rights().EraseRecord(e.PDID); err != nil {
				return err
			}
			if err := c.ledger.remove(e); err != nil {
				return err
			}
			continue
		}
		if e.PDID == "" {
			continue // intent without a copy and a live origin: nothing to sync
		}
		_, err = rn.DBFS().MutateMembrane(rn.DEDToken(), e.PDID, func(cm *membrane.Membrane) error {
			if cm.Erased {
				return nil // a locally-erased copy stays erased
			}
			cm.Consents = make(map[string]membrane.Grant, len(om.Consents))
			for k, v := range om.Consents {
				cm.Consents[k] = v
			}
			cm.Restricted = om.Restricted
			cm.Version = om.Version
			return nil
		})
		if err != nil {
			if errors.Is(err, dbfs.ErrNoRecord) {
				continue // copy already swept; the prune will drop the entry
			}
			return err
		}
	}
	return nil
}

// fanout syncs every ledger-named node for the subject, in ascending node
// order, reporting per-node failures and queueing each for retry. Caller
// holds the subject lock.
func (c *Cluster) fanout(subject string, home int) *FanoutReport {
	rep := &FanoutReport{Subject: subject}
	for _, node := range c.ledger.nodesFor(subject) {
		rep.Nodes = append(rep.Nodes, node)
		if err := c.syncNode(subject, home, node); err != nil {
			rep.Failed = append(rep.Failed, NodeError{Node: node, Name: c.nodes[node].NodeName(), Err: err})
			c.enqueue(subject, node)
		}
	}
	return rep
}

// enqueue schedules a (subject, node) sync for Propagator retry within one
// PropagationWindow, and wakes a running propagator.
func (c *Cluster) enqueue(subject string, node int) {
	c.mu.Lock()
	k := pendKey{subject: subject, node: node}
	if _, ok := c.pending[k]; !ok {
		c.pending[k] = c.clock.Now().Add(c.window)
	}
	kick := c.kick
	c.mu.Unlock()
	if kick != nil {
		kick()
	}
}

// PendingSyncs reports how many (subject, node) syncs await retry.
func (c *Cluster) PendingSyncs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// SetConsent records a consent grant for every record of the subject on
// its home node, then propagates it to every ledger-named copy. A home
// failure returns (nil, err) and touches nothing else; remote failures are
// reported in the FanoutReport (and retried), not returned as the error.
func (c *Cluster) SetConsent(subjectID, purposeName string, g membrane.Grant) (*FanoutReport, error) {
	unlock := c.lockSubject(subjectID)
	defer unlock()
	home := c.HomeOf(subjectID)
	if err := c.nodes[home].Rights().SetConsent(subjectID, purposeName, g); err != nil {
		return nil, err
	}
	return c.fanout(subjectID, home), nil
}

// WithdrawConsent withdraws a purpose's consent subject-wide on the home
// node and propagates the withdrawal to every ledger-named copy. Error
// semantics match SetConsent.
func (c *Cluster) WithdrawConsent(subjectID, purposeName string) (*FanoutReport, error) {
	unlock := c.lockSubject(subjectID)
	defer unlock()
	home := c.HomeOf(subjectID)
	if err := c.nodes[home].Rights().WithdrawConsent(subjectID, purposeName); err != nil {
		return nil, err
	}
	return c.fanout(subjectID, home), nil
}

// EraseReport is the cluster right-to-be-forgotten answer: the home node's
// crypto-erasure plus the cross-node fan-out outcome.
type EraseReport struct {
	SubjectID string
	// Home is the subject's home node; Erased lists the pdids shredded
	// there (the single-node report, sorted).
	Home   int
	Erased []string
	// Fanout reports the per-node propagation to ledger-named copies.
	Fanout FanoutReport
}

// Erase executes the right to be forgotten cluster-wide: crypto-shred on
// the home node, then erase every ledger-named copy. A home failure
// returns (nil, err); per-copy-node failures land in Fanout.Failed, each
// queued so the Propagator retries it within one PropagationWindow — the
// paper's erasure obligation holds for every copy within one window of the
// node being reachable again.
func (c *Cluster) Erase(subjectID string) (*EraseReport, error) {
	unlock := c.lockSubject(subjectID)
	defer unlock()
	home := c.HomeOf(subjectID)
	hr, err := c.nodes[home].Rights().Erase(subjectID)
	if err != nil {
		return nil, err
	}
	rep := &EraseReport{SubjectID: subjectID, Home: home, Erased: hr.Erased}
	rep.Fanout = *c.fanout(subjectID, home)
	return rep, nil
}

// AccessBatch builds Art. 15 access reports for many subjects: the
// subjects are grouped by home node, each node's batch runs concurrently
// through its own rights engine (lowest-node-index error, the same
// rights.ForEachIndexed merge contract as the single-node engine), and
// each subject's ledger-named remote copies are folded into its report —
// data exports appended and stably sorted by pdid within each type,
// processing history merged by time. Reports keep request order.
func (c *Cluster) AccessBatch(subjectIDs []string) ([]*rights.AccessReport, error) {
	groups := make(map[int][]int) // home node -> request indices, in order
	for i, s := range subjectIDs {
		h := c.HomeOf(s)
		groups[h] = append(groups[h], i)
	}
	homes := make([]int, 0, len(groups))
	for h := range groups {
		homes = append(homes, h)
	}
	sort.Ints(homes)
	out := make([]*rights.AccessReport, len(subjectIDs))
	err := rights.ForEachIndexed(len(homes), len(homes), func(gi int) error {
		idxs := groups[homes[gi]]
		subs := make([]string, len(idxs))
		for j, i := range idxs {
			subs[j] = subjectIDs[i]
		}
		reps, err := c.nodes[homes[gi]].Rights().AccessBatch(subs)
		if err != nil {
			return err
		}
		for j, i := range idxs {
			out[i] = reps[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Remote-copy merge, serial in request order (node order within each
	// subject) so the first error is deterministic.
	for i, subject := range subjectIDs {
		for _, node := range c.ledger.nodesFor(subject) {
			remote, err := c.nodes[node].Rights().Access(subject)
			if err != nil {
				return nil, fmt.Errorf("cluster: access %s on node %d: %w", subject, node, err)
			}
			mergeAccess(out[i], remote)
		}
		finishAccess(out[i])
	}
	return out, nil
}

// mergeAccess folds a remote node's per-subject report into the home one.
func mergeAccess(home, remote *rights.AccessReport) {
	if len(remote.Data) > 0 && home.Data == nil {
		home.Data = make(map[string][]rights.RecordExport)
	}
	for t, exps := range remote.Data {
		home.Data[t] = append(home.Data[t], exps...)
	}
	home.Processings = append(home.Processings, remote.Processings...)
	if len(remote.PerPD) > 0 && home.PerPD == nil {
		home.PerPD = make(map[string][]rights.ProcessingEntry)
	}
	for pd, es := range remote.PerPD {
		home.PerPD[pd] = append(home.PerPD[pd], es...)
	}
}

// finishAccess restores the single-node report ordering invariants after
// merging: exports sorted by pdid within each type, history by time. All
// sorts are stable, so equal keys keep home-then-ascending-node order.
func finishAccess(rep *rights.AccessReport) {
	for t := range rep.Data {
		exps := rep.Data[t]
		sort.SliceStable(exps, func(i, j int) bool { return exps[i].PDID < exps[j].PDID })
	}
	sort.SliceStable(rep.Processings, func(i, j int) bool {
		return rep.Processings[i].Time.Before(rep.Processings[j].Time)
	})
	for pd := range rep.PerPD {
		es := rep.PerPD[pd]
		sort.SliceStable(es, func(i, j int) bool { return es[i].Time.Before(es[j].Time) })
	}
}

// SweepExpired runs the retention sweep on every node concurrently and
// returns the union of deleted pdids, sorted (a multiset: pdids are
// node-scoped). Error is the lowest-node-index failure, matching the
// single-node contract. Ledger entries whose copies were swept are pruned.
func (c *Cluster) SweepExpired() ([]string, error) {
	per := make([][]string, len(c.nodes))
	err := rights.ForEachIndexed(len(c.nodes), len(c.nodes), func(i int) error {
		d, err := c.nodes[i].Rights().SweepExpired()
		per[i] = d
		return err
	})
	if err != nil {
		return nil, err
	}
	var all []string
	for _, d := range per {
		all = append(all, d...)
	}
	sort.Strings(all)
	c.pruneLedger()
	return all, nil
}

// pruneLedger drops entries whose copy no longer exists on its node (the
// record was physically deleted, e.g. by a TTL sweep). Intent entries
// (empty pdid) are kept — only erasure may resolve those.
func (c *Cluster) pruneLedger() {
	for _, e := range c.ledger.all() {
		if e.PDID == "" {
			continue
		}
		rn := c.nodes[e.Node]
		if _, err := rn.DBFS().GetMembrane(rn.DEDToken(), e.PDID); errors.Is(err, dbfs.ErrNoRecord) {
			_ = c.ledger.remove(e)
		}
	}
}

// LedgerEntries snapshots the whole copy ledger, sorted by subject then
// (node, origin, pdid).
func (c *Cluster) LedgerEntries() []Entry { return c.ledger.all() }

// LedgerFor snapshots one subject's ledger entries.
func (c *Cluster) LedgerFor(subject string) []Entry { return c.ledger.entriesFor(subject) }

// NodeStatus is one node's row in Status.
type NodeStatus struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	// Subjects counts subjects with records on the node (homes and copies).
	Subjects int `json:"subjects"`
	// CopiesHeld counts ledger entries naming this node as copy holder;
	// CopiesTracked counts entries this node tracks as home.
	CopiesHeld    int `json:"copies_held"`
	CopiesTracked int `json:"copies_tracked"`
	// PendingSyncs counts queued retries targeting this node.
	PendingSyncs int `json:"pending_syncs"`
}

// Status reports the fleet's placement and ledger shape, one row per node.
func (c *Cluster) Status() ([]NodeStatus, error) {
	out := make([]NodeStatus, len(c.nodes))
	for i, n := range c.nodes {
		subs, err := n.DBFS().Subjects(n.DEDToken())
		if err != nil {
			return nil, fmt.Errorf("cluster: status node %d: %w", i, err)
		}
		out[i] = NodeStatus{Index: i, Name: n.NodeName(), Subjects: len(subs)}
	}
	for _, e := range c.ledger.all() {
		out[e.Node].CopiesHeld++
		out[e.Home].CopiesTracked++
	}
	c.mu.Lock()
	for k := range c.pending {
		out[k.node].PendingSyncs++
	}
	c.mu.Unlock()
	return out, nil
}
