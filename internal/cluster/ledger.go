// The durable cross-node copy ledger. When a subject's record is
// materialized on a non-home node, the ledger records (subject, pdid,
// node) — plus the origin pdid and home index — so rights operations know
// exactly which nodes hold copies and must be reached. Entries live on the
// SUBJECT'S HOME NODE, as one JSON file per subject under ledgerDir on the
// node's NPD filesystem, written through BEFORE the copy becomes visible:
// the ledger can name a copy that was never created (harmless — erasure on
// the named node is subject-wide and idempotent), but a live copy is never
// invisible to the ledger. Because the files sit in node storage, a router
// rebuilt over the same nodes (New) reloads the full copy map and — via
// reconcile — resumes any propagation the old router left unfinished.
package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// ledgerDir is the per-node NPD directory holding the ledger files.
const ledgerDir = "/cluster/ledger"

// Entry records one cross-node copy: the subject's record Origin (a pdid on
// the Home node) was materialized as PDID on node Node. PDID is empty in
// the transient intent state — the entry is persisted before the copy is
// inserted, then updated with the assigned pdid (both steps under the
// subject lock, so readers outside MaterializeCopy only see it after a
// mid-call crash; erasure handles that state subject-wide).
type Entry struct {
	Subject string `json:"subject"`
	PDID    string `json:"pdid,omitempty"`
	Node    int    `json:"node"`
	Origin  string `json:"origin"`
	Home    int    `json:"home"`
}

// ledger is the in-memory index over the per-subject files. The mutex is a
// leaf lock below the per-subject op locks: ledger methods call into
// plainfs (which has its own inode locking) but never back into the
// cluster or a node's rights/DBFS layer.
type ledger struct {
	nodes []*core.System

	mu        sync.Mutex
	bySubject map[string][]Entry
}

// subjectFile maps a subject ID to its ledger file path. Subject IDs are
// hex-encoded: plainfs treats "/" as a separator and subject IDs are
// operator-chosen strings.
func subjectFile(subject string) string {
	return fmt.Sprintf("%s/%x", ledgerDir, subject)
}

// loadLedger rebuilds the index from every node's NPD ledger directory.
func loadLedger(nodes []*core.System) (*ledger, error) {
	l := &ledger{nodes: nodes, bySubject: make(map[string][]Entry)}
	for i, n := range nodes {
		fs := n.NPD()
		if !fs.Exists(ledgerDir) {
			continue
		}
		files, err := fs.List(ledgerDir)
		if err != nil {
			return nil, fmt.Errorf("cluster: load ledger on node %d: %w", i, err)
		}
		for _, f := range files {
			if f.IsDir {
				continue
			}
			b, err := fs.ReadFile(ledgerDir + "/" + f.Name)
			if err != nil {
				return nil, fmt.Errorf("cluster: load ledger %s on node %d: %w", f.Name, i, err)
			}
			var entries []Entry
			if err := json.Unmarshal(b, &entries); err != nil {
				return nil, fmt.Errorf("cluster: decode ledger %s on node %d: %w", f.Name, i, err)
			}
			for _, e := range entries {
				l.bySubject[e.Subject] = append(l.bySubject[e.Subject], e)
			}
		}
	}
	for s := range l.bySubject {
		sortEntries(l.bySubject[s])
	}
	return l, nil
}

// sortEntries orders entries deterministically: node, then origin, then
// copy pdid.
func sortEntries(es []Entry) {
	sort.SliceStable(es, func(i, j int) bool {
		if es[i].Node != es[j].Node {
			return es[i].Node < es[j].Node
		}
		if es[i].Origin != es[j].Origin {
			return es[i].Origin < es[j].Origin
		}
		return es[i].PDID < es[j].PDID
	})
}

// persistLocked writes the subject's current entries through to the home
// node's NPD (removing the file when no entries remain). Caller holds l.mu.
func (l *ledger) persistLocked(subject string, home int) error {
	fs := l.nodes[home].NPD()
	path := subjectFile(subject)
	entries := l.bySubject[subject]
	if len(entries) == 0 {
		if fs.Exists(path) {
			return fs.Remove(path)
		}
		return nil
	}
	b, err := json.Marshal(entries)
	if err != nil {
		return fmt.Errorf("cluster: encode ledger for %s: %w", subject, err)
	}
	if err := fs.MkdirAll(ledgerDir); err != nil {
		return fmt.Errorf("cluster: ledger dir on node %d: %w", home, err)
	}
	return fs.WriteFile(path, b)
}

// record adds an entry (durably, before the caller makes the copy visible).
func (l *ledger) record(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bySubject[e.Subject] = append(l.bySubject[e.Subject], e)
	sortEntries(l.bySubject[e.Subject])
	if err := l.persistLocked(e.Subject, e.Home); err != nil {
		// Keep memory and disk consistent: an unpersisted entry must not
		// admit a copy the reloaded ledger would not know about.
		l.bySubject[e.Subject] = removeEntry(l.bySubject[e.Subject], e)
		return err
	}
	return nil
}

// setPDID fills in the copy pdid of an intent entry and re-persists.
func (l *ledger) setPDID(subject string, home, node int, origin, pdid string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	es := l.bySubject[subject]
	for i := range es {
		if es[i].Node == node && es[i].Origin == origin && es[i].PDID == "" {
			es[i].PDID = pdid
			sortEntries(es)
			return l.persistLocked(subject, home)
		}
	}
	return fmt.Errorf("cluster: no intent entry for %s origin %s on node %d", subject, origin, node)
}

// remove drops one entry and re-persists.
func (l *ledger) remove(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bySubject[e.Subject] = removeEntry(l.bySubject[e.Subject], e)
	if len(l.bySubject[e.Subject]) == 0 {
		delete(l.bySubject, e.Subject)
		fs := l.nodes[e.Home].NPD()
		if p := subjectFile(e.Subject); fs.Exists(p) {
			return fs.Remove(p)
		}
		return nil
	}
	return l.persistLocked(e.Subject, e.Home)
}

// removeNode drops every entry naming node for the subject.
func (l *ledger) removeNode(subject string, home, node int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	es := l.bySubject[subject][:0]
	for _, e := range l.bySubject[subject] {
		if e.Node != node {
			es = append(es, e)
		}
	}
	if len(es) == 0 {
		delete(l.bySubject, subject)
	} else {
		l.bySubject[subject] = es
	}
	return l.persistLocked(subject, home)
}

func removeEntry(es []Entry, e Entry) []Entry {
	out := es[:0]
	for _, x := range es {
		if x != e {
			out = append(out, x)
		}
	}
	return out
}

// entriesFor returns the subject's entries, sorted (a copy).
func (l *ledger) entriesFor(subject string) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.bySubject[subject]...)
}

// forNode returns the subject's entries naming node, sorted (a copy).
func (l *ledger) forNode(subject string, node int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Entry
	for _, e := range l.bySubject[subject] {
		if e.Node == node {
			out = append(out, e)
		}
	}
	return out
}

// nodesFor returns the distinct nodes holding copies for the subject,
// ascending.
func (l *ledger) nodesFor(subject string) []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := make(map[int]bool)
	var out []int
	for _, e := range l.bySubject[subject] {
		if !seen[e.Node] {
			seen[e.Node] = true
			out = append(out, e.Node)
		}
	}
	sort.Ints(out)
	return out
}

// all returns every entry, sorted by subject then the entry order.
func (l *ledger) all() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	subjects := make([]string, 0, len(l.bySubject))
	for s := range l.bySubject {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)
	var out []Entry
	for _, s := range subjects {
		out = append(out, l.bySubject[s]...)
	}
	return out
}

// subjects returns every subject with ledger entries, sorted.
func (l *ledger) subjects() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.bySubject))
	for s := range l.bySubject {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
