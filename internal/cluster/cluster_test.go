package cluster

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dbfs"
	"repro/internal/membrane"
	"repro/internal/simclock"
	"repro/internal/typedsl"
)

// userDSL is the paper's Listing 1 type (1-year retention).
const userDSL = `
type user {
  fields {
    name: string,
    pwd: string sensitive,
    year_of_birthdate: int
  };
  view v_name { name };
  view v_ano { age };
  consent {
    purpose1: all,
    purpose2: none,
    purpose3: ano
  };
  collection {
    web_form: user_form.html,
    third_party: fetch_data.py
  };
  origin: subject;
  age: 1Y;
  sensitivity: hight;
}
`

func aliasOpts() typedsl.CompileOptions {
	return typedsl.CompileOptions{FieldAliases: map[string]string{"age": "year_of_birthdate"}}
}

// nodeOpts is a small, fast per-node template for tests.
func nodeOpts() core.Options {
	return core.Options{
		AuthorityBits: 1024,
		PDDiskBlocks:  8192,
		NPDDiskBlocks: 2048,
		NInodes:       4096,
		JournalBlocks: 128,
		Workers:       2,
	}
}

// bootCluster builds an n-node cluster on one Sim clock with the user type
// declared everywhere.
func bootCluster(t *testing.T, n int, window time.Duration) (*Cluster, *simclock.Sim) {
	t.Helper()
	clk := simclock.NewSim(simclock.Epoch)
	opts := nodeOpts()
	opts.Clock = clk
	c, err := Boot(Options{Nodes: n, Node: opts, PropagationWindow: window})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	if err := c.DeclareTypesDSL(userDSL, aliasOpts()); err != nil {
		t.Fatalf("DeclareTypesDSL: %v", err)
	}
	return c, clk
}

func rec(name string) dbfs.Record {
	return dbfs.Record{
		"name":              dbfs.S(name),
		"pwd":               dbfs.S("secret-" + name),
		"year_of_birthdate": dbfs.I(1990),
	}
}

// remoteFor picks any node that is not the subject's home.
func remoteFor(c *Cluster, subject string) int {
	h := c.HomeOf(subject)
	return (h + 1) % c.Nodes()
}

func TestPlacementGeometryIndependent(t *testing.T) {
	// HomeOf must be the raw subject hash mod node count — a pure function
	// of (subject, fleet size), never of any store's shard geometry.
	c, _ := bootCluster(t, 4, 0)
	small := nodeOpts()
	small.Clock = simclock.NewSim(simclock.Epoch)
	small.Shards = 4 // radically different shard geometry
	c2, err := Boot(Options{Nodes: 4, Node: small})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	spread := make(map[int]int)
	for i := 0; i < 64; i++ {
		s := fmt.Sprintf("subject-%03d", i)
		want := int(dbfs.SubjectHash(s) % 4)
		if got := c.HomeOf(s); got != want {
			t.Fatalf("HomeOf(%s) = %d, want SubjectHash%%4 = %d", s, got, want)
		}
		if got := c2.HomeOf(s); got != want {
			t.Fatalf("HomeOf(%s) with Shards=4 nodes = %d, want %d (placement must not see shard geometry)", s, got, want)
		}
		spread[want]++
	}
	for n, count := range spread {
		if count == 0 {
			t.Fatalf("node %d received no subjects out of 64", n)
		} else if count > 32 {
			t.Fatalf("node %d received %d/64 subjects — placement badly skewed", n, count)
		}
	}
}

func TestInsertRoutesToHome(t *testing.T) {
	c, _ := bootCluster(t, 3, 0)
	for i := 0; i < 12; i++ {
		s := fmt.Sprintf("alice-%d", i)
		pdid, err := c.Insert("user", s, rec(s))
		if err != nil {
			t.Fatalf("Insert %s: %v", s, err)
		}
		home := c.HomeOf(s)
		for n := 0; n < c.Nodes(); n++ {
			sys := c.Node(n)
			_, err := sys.DBFS().GetRecord(sys.DEDToken(), pdid)
			if n == home && err != nil {
				t.Fatalf("record %s unreadable on home node %d: %v", pdid, n, err)
			}
			if n != home && err == nil {
				t.Fatalf("record %s readable on non-home node %d", pdid, n)
			}
		}
		if got, err := c.GetRecord(pdid); err != nil || got["name"].S != s {
			t.Fatalf("GetRecord(%s) = %v, %v", pdid, got, err)
		}
	}
}

func TestMaterializeCopy(t *testing.T) {
	c, _ := bootCluster(t, 3, 0)
	subject := "carol"
	pdid, err := c.Insert("user", subject, rec(subject))
	if err != nil {
		t.Fatal(err)
	}
	home := c.HomeOf(subject)
	target := remoteFor(c, subject)

	if _, err := c.MaterializeCopy(pdid, home); !errors.Is(err, ErrHomeNode) {
		t.Fatalf("copy onto home node err = %v, want ErrHomeNode", err)
	}
	if _, err := c.MaterializeCopy(pdid, 99); !errors.Is(err, ErrBadNode) {
		t.Fatalf("copy onto node 99 err = %v, want ErrBadNode", err)
	}

	copyPDID, err := c.MaterializeCopy(pdid, target)
	if err != nil {
		t.Fatalf("MaterializeCopy: %v", err)
	}
	tn := c.Node(target)
	got, err := tn.DBFS().GetRecord(tn.DEDToken(), copyPDID)
	if err != nil || got["name"].S != subject {
		t.Fatalf("copy read = %v, %v", got, err)
	}
	cm, err := tn.DBFS().GetMembrane(tn.DEDToken(), copyPDID)
	if err != nil {
		t.Fatal(err)
	}
	if cm.CopyOf != pdid {
		t.Fatalf("copy CopyOf = %q, want origin %q", cm.CopyOf, pdid)
	}
	want := []Entry{{Subject: subject, PDID: copyPDID, Node: target, Origin: pdid, Home: home}}
	if got := c.LedgerFor(subject); !reflect.DeepEqual(got, want) {
		t.Fatalf("ledger = %+v, want %+v", got, want)
	}

	// Copying an erased record must fail.
	if _, err := c.Erase(subject); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MaterializeCopy(pdid, target); !errors.Is(err, membrane.ErrErased) {
		t.Fatalf("copy of erased err = %v, want ErrErased", err)
	}
}

func TestLedgerSurvivesRouterRestart(t *testing.T) {
	c, _ := bootCluster(t, 3, 0)
	var subjects []string
	for i := 0; i < 6; i++ {
		s := fmt.Sprintf("dora-%d", i)
		subjects = append(subjects, s)
		pdid, err := c.Insert("user", s, rec(s))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.MaterializeCopy(pdid, remoteFor(c, s)); err != nil {
			t.Fatal(err)
		}
	}
	before := c.LedgerEntries()
	if len(before) != 6 {
		t.Fatalf("ledger has %d entries, want 6", len(before))
	}

	// A new router over the same nodes must reload the full copy map from
	// node storage — the ledger is durable state, not router memory.
	nodes := make([]*core.System, c.Nodes())
	for i := range nodes {
		nodes[i] = c.Node(i)
	}
	c2, err := New(nodes, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := c2.LedgerEntries(); !reflect.DeepEqual(got, before) {
		t.Fatalf("reloaded ledger = %+v, want %+v", got, before)
	}
	if n := c2.PendingSyncs(); n != 0 {
		t.Fatalf("clean restart queued %d syncs, want 0", n)
	}
}

func TestConsentFanout(t *testing.T) {
	c, _ := bootCluster(t, 2, 0)
	subject := "erin"
	pdid, err := c.Insert("user", subject, rec(subject))
	if err != nil {
		t.Fatal(err)
	}
	target := remoteFor(c, subject)
	copyPDID, err := c.MaterializeCopy(pdid, target)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := c.SetConsent(subject, "purpose2", membrane.Grant{Kind: membrane.GrantAll})
	if err != nil {
		t.Fatalf("SetConsent: %v", err)
	}
	if !rep.OK() || !reflect.DeepEqual(rep.Nodes, []int{target}) {
		t.Fatalf("fanout report = %+v", rep)
	}
	tn := c.Node(target)
	cm, err := tn.DBFS().GetMembrane(tn.DEDToken(), copyPDID)
	if err != nil {
		t.Fatal(err)
	}
	if g := cm.Consents["purpose2"]; g.Kind != membrane.GrantAll {
		t.Fatalf("copy consent purpose2 = %v, want all", g)
	}

	if _, err := c.WithdrawConsent(subject, "purpose1"); err != nil {
		t.Fatalf("WithdrawConsent: %v", err)
	}
	cm, err = tn.DBFS().GetMembrane(tn.DEDToken(), copyPDID)
	if err != nil {
		t.Fatal(err)
	}
	if g := cm.Consents["purpose1"]; g.Kind != membrane.GrantNone {
		t.Fatalf("copy consent purpose1 after withdraw = %v, want none", g)
	}
}

func TestEraseKillsRemoteCopies(t *testing.T) {
	c, _ := bootCluster(t, 3, 0)
	subject := "frank"
	pdid, err := c.Insert("user", subject, rec(subject))
	if err != nil {
		t.Fatal(err)
	}
	target := remoteFor(c, subject)
	copyPDID, err := c.MaterializeCopy(pdid, target)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := c.Erase(subject)
	if err != nil {
		t.Fatalf("Erase: %v", err)
	}
	if !rep.Fanout.OK() {
		t.Fatalf("fanout failed: %+v", rep.Fanout)
	}
	if len(rep.Erased) != 1 || rep.Erased[0] != pdid {
		t.Fatalf("home erased = %v, want [%s]", rep.Erased, pdid)
	}
	// The origin and the copy are both crypto-erased, and the ledger is
	// drained — no node is still named as a copy holder.
	tn := c.Node(target)
	if _, err := tn.DBFS().GetRecord(tn.DEDToken(), copyPDID); err == nil {
		t.Fatal("copy still readable after cluster erase")
	}
	cm, err := tn.DBFS().GetMembrane(tn.DEDToken(), copyPDID)
	if err != nil || !cm.Erased {
		t.Fatalf("copy membrane after erase = %+v, %v, want Erased", cm, err)
	}
	if entries := c.LedgerFor(subject); len(entries) != 0 {
		t.Fatalf("ledger after erase = %+v, want empty", entries)
	}
	// Shredded everywhere: no node's disk holds the plaintext password.
	for i := 0; i < c.Nodes(); i++ {
		if hits := c.Node(i).ResidueScan([]byte("secret-" + subject)); len(hits) != 0 {
			t.Fatalf("plaintext residue on node %d: %v", i, hits)
		}
	}
}

func TestErasePartialFailureRetriesWithinWindow(t *testing.T) {
	const window = time.Minute
	c, clk := bootCluster(t, 2, window)
	subject := "grace"
	pdid, err := c.Insert("user", subject, rec(subject))
	if err != nil {
		t.Fatal(err)
	}
	target := remoteFor(c, subject)
	copyPDID, err := c.MaterializeCopy(pdid, target)
	if err != nil {
		t.Fatal(err)
	}

	c.FailNode(target, 1)
	rep, err := c.Erase(subject)
	if err != nil {
		t.Fatalf("Erase: %v", err)
	}
	if rep.Fanout.OK() || !errors.Is(rep.Fanout.Err(), ErrInjected) {
		t.Fatalf("fanout = %+v, want injected failure on node %d", rep.Fanout, target)
	}
	if n := c.PendingSyncs(); n != 1 {
		t.Fatalf("pending syncs = %d, want 1", n)
	}
	// The copy survives the failed fan-out (that is the partial failure)…
	tn := c.Node(target)
	if _, err := tn.DBFS().GetRecord(tn.DEDToken(), copyPDID); err != nil {
		t.Fatalf("copy should still be readable before retry: %v", err)
	}

	// …but the propagator erases it within one window once the node heals.
	p := c.StartPropagator()
	defer p.Stop()
	clk.Advance(window + time.Second)
	p.Sync()
	if _, err := tn.DBFS().GetRecord(tn.DEDToken(), copyPDID); err == nil {
		t.Fatal("copy still readable one window after the node healed")
	}
	if n := c.PendingSyncs(); n != 0 {
		t.Fatalf("pending syncs after retry = %d, want 0", n)
	}
	if entries := c.LedgerFor(subject); len(entries) != 0 {
		t.Fatalf("ledger after retry = %+v, want empty", entries)
	}
	st := p.Stats()
	if st.Passes == 0 || st.Retried != 1 || st.Failed != 0 {
		t.Fatalf("propagator stats = %+v", st)
	}
}

func TestPersistentFaultKeepsRetryingOncePerWindow(t *testing.T) {
	const window = time.Minute
	c, clk := bootCluster(t, 2, window)
	subject := "heidi"
	pdid, err := c.Insert("user", subject, rec(subject))
	if err != nil {
		t.Fatal(err)
	}
	target := remoteFor(c, subject)
	if _, err := c.MaterializeCopy(pdid, target); err != nil {
		t.Fatal(err)
	}
	c.FailNode(target, 3) // fan-out + two retry passes
	if _, err := c.Erase(subject); err != nil {
		t.Fatal(err)
	}
	p := c.StartPropagator()
	defer p.Stop()
	for i := 0; i < 2; i++ {
		clk.Advance(window + time.Second)
		p.Sync()
		if n := c.PendingSyncs(); n != 1 {
			t.Fatalf("retry %d: pending = %d, want 1 (fault still armed)", i, n)
		}
	}
	clk.Advance(window + time.Second)
	p.Sync()
	if n := c.PendingSyncs(); n != 0 {
		t.Fatalf("pending after fault cleared = %d, want 0", n)
	}
	st := p.Stats()
	if st.Failed != 2 {
		t.Fatalf("propagator stats = %+v, want 2 failed retries", st)
	}
}

func TestRouterRestartResumesErasure(t *testing.T) {
	const window = time.Minute
	c, clk := bootCluster(t, 2, window)
	subject := "ivan"
	pdid, err := c.Insert("user", subject, rec(subject))
	if err != nil {
		t.Fatal(err)
	}
	target := remoteFor(c, subject)
	copyPDID, err := c.MaterializeCopy(pdid, target)
	if err != nil {
		t.Fatal(err)
	}
	c.FailNode(target, 1)
	if _, err := c.Erase(subject); err != nil {
		t.Fatal(err)
	}

	// The router dies with the retry still queued. A new router over the
	// same nodes must rediscover the unfinished erasure from durable state
	// alone: the ledger still names the node, and the origin membrane is
	// marked erased.
	nodes := make([]*core.System, c.Nodes())
	for i := range nodes {
		nodes[i] = c.Node(i)
	}
	c2, err := New(nodes, window)
	if err != nil {
		t.Fatal(err)
	}
	if n := c2.PendingSyncs(); n != 1 {
		t.Fatalf("reconcile queued %d syncs, want 1", n)
	}
	p := c2.StartPropagator()
	defer p.Stop()
	clk.Advance(window + time.Second)
	p.Sync()
	tn := c2.Node(target)
	if _, err := tn.DBFS().GetRecord(tn.DEDToken(), copyPDID); err == nil {
		t.Fatal("copy still readable after restart+retry")
	}
	if entries := c2.LedgerFor(subject); len(entries) != 0 {
		t.Fatalf("ledger after restart+retry = %+v, want empty", entries)
	}
}

func TestAccessBatchMergesCopies(t *testing.T) {
	c, _ := bootCluster(t, 3, 0)
	subjects := []string{"judy", "kim", "leo", "mallory"}
	copies := make(map[string]string)
	for _, s := range subjects {
		pdid, err := c.Insert("user", s, rec(s))
		if err != nil {
			t.Fatal(err)
		}
		if s != "mallory" { // one subject with no copies
			cp, err := c.MaterializeCopy(pdid, remoteFor(c, s))
			if err != nil {
				t.Fatal(err)
			}
			copies[s] = cp
		}
	}
	reps, err := c.AccessBatch(subjects)
	if err != nil {
		t.Fatalf("AccessBatch: %v", err)
	}
	for i, s := range subjects {
		rep := reps[i]
		if rep.SubjectID != s {
			t.Fatalf("report %d subject = %s, want %s (request order)", i, rep.SubjectID, s)
		}
		exps := rep.Data["user"]
		wantN := 2
		if s == "mallory" {
			wantN = 1
		}
		if len(exps) != wantN {
			t.Fatalf("%s: %d user exports, want %d (home + copies)", s, len(exps), wantN)
		}
		var sawCopy bool
		for _, e := range exps {
			if e.CopyOf != "" {
				sawCopy = true
			}
		}
		if sawCopy == (s == "mallory") {
			t.Fatalf("%s: copy provenance wrong in %+v", s, exps)
		}
	}
	// Deterministic merge: a second run returns byte-identical data maps
	// (the processing history legitimately grows — the first batch itself
	// is audited — so only the merged Data ordering is compared).
	again, err := c.AccessBatch(subjects)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reps {
		if !reflect.DeepEqual(reps[i].Data, again[i].Data) {
			t.Fatalf("AccessBatch Data for %s not deterministic", subjects[i])
		}
	}
}

func TestSweepExpiredFansOutAndPrunes(t *testing.T) {
	c, clk := bootCluster(t, 2, 0)
	subject := "nina"
	pdid, err := c.Insert("user", subject, rec(subject))
	if err != nil {
		t.Fatal(err)
	}
	target := remoteFor(c, subject)
	copyPDID, err := c.MaterializeCopy(pdid, target)
	if err != nil {
		t.Fatal(err)
	}

	// Nothing expired yet.
	deleted, err := c.SweepExpired()
	if err != nil || len(deleted) != 0 {
		t.Fatalf("early sweep = %v, %v", deleted, err)
	}

	// Past the 1-year TTL both the original and the copy expire — the
	// sweep reaches every node, and the ledger entry is pruned with the
	// copy.
	clk.Advance(366 * 24 * time.Hour)
	deleted, err = c.SweepExpired()
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	found := map[string]bool{}
	for _, d := range deleted {
		found[d] = true
	}
	if !found[pdid] || !found[copyPDID] {
		t.Fatalf("sweep deleted %v, want both %s and %s", deleted, pdid, copyPDID)
	}
	if entries := c.LedgerFor(subject); len(entries) != 0 {
		t.Fatalf("ledger after sweep = %+v, want pruned", entries)
	}
}

func TestNodeNames(t *testing.T) {
	c, _ := bootCluster(t, 2, 0)
	for i := 0; i < c.Nodes(); i++ {
		if got, want := c.Node(i).NodeName(), fmt.Sprintf("n%d", i); got != want {
			t.Fatalf("node %d name = %q, want %q", i, got, want)
		}
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 2 || st[0].Name != "n0" || st[1].Name != "n1" {
		t.Fatalf("status = %+v", st)
	}
}

func TestBootRejectsBadFleetSize(t *testing.T) {
	if _, err := Boot(Options{Nodes: 9, Node: nodeOpts()}); err == nil {
		t.Fatal("Boot with 9 nodes should fail")
	}
	if _, err := Boot(Options{Nodes: -1, Node: nodeOpts()}); err == nil {
		t.Fatal("Boot with -1 nodes should fail")
	}
}
