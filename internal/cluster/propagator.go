// The bounded-window propagation loop. A cross-node mutation that fails on
// some copy-holding node (node briefly unreachable, injected fault) is not
// lost: the cluster queues the (subject, node) sync with a deadline one
// PropagationWindow out, and the Propagator — a background loop modeled on
// the rights.Sweeper — retries every due sync, re-arming failures for the
// next window. The guarantee is the window bound: once the node is
// reachable again, the mutation lands within one PropagationWindow. The
// loop waits on simclock.Waiter, so simulated-clock tests drive it
// deterministically: enqueue a failure, advance the clock past the window,
// Sync(), assert the copy is dead.
package cluster

import (
	"sort"
	"sync"
	"time"

	"repro/internal/simclock"
)

// retryPending runs one propagation pass: every queued sync whose deadline
// has arrived (all of them when force is set), in (subject, node) order.
// Failures stay queued with a fresh deadline one window out.
func (c *Cluster) retryPending(force bool) (retried, failed int) {
	now := c.clock.Now()
	c.mu.Lock()
	keys := make([]pendKey, 0, len(c.pending))
	for k, dl := range c.pending {
		if force || !now.Before(dl) {
			keys = append(keys, k)
		}
	}
	c.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].subject != keys[j].subject {
			return keys[i].subject < keys[j].subject
		}
		return keys[i].node < keys[j].node
	})
	for _, k := range keys {
		unlock := c.lockSubject(k.subject)
		err := c.syncNode(k.subject, c.HomeOf(k.subject), k.node)
		unlock()
		retried++
		c.mu.Lock()
		if err != nil {
			failed++
			c.pending[k] = c.clock.Now().Add(c.window)
		} else {
			delete(c.pending, k)
		}
		c.mu.Unlock()
	}
	return retried, failed
}

// earliestPending reports the soonest retry deadline in the queue.
func (c *Cluster) earliestPending() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var min time.Time
	for _, dl := range c.pending {
		if min.IsZero() || dl.Before(min) {
			min = dl
		}
	}
	return min, !min.IsZero()
}

// setKick installs (or clears) the propagator wakeup called by enqueue.
func (c *Cluster) setKick(fn func()) {
	c.mu.Lock()
	c.kick = fn
	c.mu.Unlock()
}

// PropagatorStats counts the background propagator's activity.
type PropagatorStats struct {
	// Passes counts completed retry passes; Retried / Failed accumulate
	// per-sync outcomes across passes.
	Passes  uint64
	Retried uint64
	Failed  uint64
	// LastPass is the start instant of the last completed pass.
	LastPass time.Time
}

// Propagator is the background retry loop. Start/Stop are idempotent and a
// stopped propagator can be restarted.
type Propagator struct {
	c *Cluster
	// wake is the kick channel: enqueue, Sync, Stop and a window change
	// nudge the loop out of its clock wait.
	wake chan struct{}

	mu          sync.Mutex
	cond        *sync.Cond
	running     bool
	stop        chan struct{}
	done        chan struct{}
	forced      bool
	lastCovered time.Time
	stats       PropagatorStats
}

// NewPropagator builds a propagator for the cluster. Call Start to run it.
func NewPropagator(c *Cluster) *Propagator {
	p := &Propagator{c: c, wake: make(chan struct{}, 1)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// StartPropagator builds and starts a background propagator.
func (c *Cluster) StartPropagator() *Propagator {
	p := NewPropagator(c)
	p.Start()
	return p
}

// Start launches the background loop. Starting a running propagator is a
// no-op.
func (p *Propagator) Start() {
	p.mu.Lock()
	if p.running {
		p.mu.Unlock()
		return
	}
	p.running = true
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	stop, done := p.stop, p.done
	p.mu.Unlock()
	p.c.setKick(p.kickWake)
	go p.loop(stop, done)
}

// Stop halts the loop and waits for it to exit; an in-flight pass
// finishes. Stopping a stopped propagator is a no-op.
func (p *Propagator) Stop() {
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return
	}
	p.running = false
	stop, done := p.stop, p.done
	p.mu.Unlock()
	p.c.setKick(nil)
	close(stop)
	p.kickWake()
	<-done
	p.mu.Lock()
	p.cond.Broadcast() // unblock Sync callers
	p.mu.Unlock()
}

// Running reports whether the loop is active.
func (p *Propagator) Running() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running
}

// Stats snapshots the propagator counters.
func (p *Propagator) Stats() PropagatorStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Sync forces a pass retrying every queued sync — due or not — and blocks
// until it completes (or the propagator stops): the deterministic join
// point for simclock tests.
func (p *Propagator) Sync() {
	target := p.c.clock.Now()
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return
	}
	p.forced = true
	p.mu.Unlock()
	p.kickWake()
	p.mu.Lock()
	for p.running && p.lastCovered.Before(target) {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// kickWake nudges the loop; a pending nudge is enough, extra ones drop.
func (p *Propagator) kickWake() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// loop is the propagator body: run a pass whenever a queued sync is due
// (or a Sync forces one), otherwise sleep until the earliest deadline or
// one PropagationWindow, whichever is sooner. Right after a pass the loop
// always goes through the wait path, so a sync that keeps failing is
// retried once per window instead of spinning.
func (p *Propagator) loop(stop, done chan struct{}) {
	defer close(done)
	ranPass := false
	for {
		select {
		case <-stop:
			return
		default:
		}
		now := p.c.clock.Now()
		p.mu.Lock()
		forced := p.forced
		p.forced = false
		p.mu.Unlock()
		run := forced
		if !run && !ranPass {
			if dl, ok := p.c.earliestPending(); ok && !now.Before(dl) {
				run = true
			}
		}
		if run {
			p.pass(forced)
			ranPass = true
			continue
		}
		target := now.Add(p.c.window)
		if dl, ok := p.c.earliestPending(); ok && dl.After(now) && dl.Before(target) {
			target = dl
		}
		p.waitUntil(target, stop)
		ranPass = false
	}
}

// pass runs one retry pass and records its outcome.
func (p *Propagator) pass(force bool) {
	start := p.c.clock.Now()
	retried, failed := p.c.retryPending(force)
	p.mu.Lock()
	p.stats.Passes++
	p.stats.Retried += uint64(retried)
	p.stats.Failed += uint64(failed)
	p.stats.LastPass = start
	if start.After(p.lastCovered) {
		p.lastCovered = start
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// waitUntil blocks until the shared clock reaches target, a kick arrives,
// or stop closes.
func (p *Propagator) waitUntil(target time.Time, stop chan struct{}) {
	w, ok := p.c.clock.(simclock.Waiter)
	if !ok {
		// Unknown clock implementation: poll at a coarse real-time cadence
		// so the window bound still holds approximately.
		select {
		case <-time.After(50 * time.Millisecond):
		case <-p.wake:
		case <-stop:
		}
		return
	}
	cancel := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		select {
		case <-stop:
			close(cancel)
		case <-p.wake:
			close(cancel)
		case <-finished:
		}
	}()
	w.WaitUntil(target, cancel)
	close(finished)
}
