package dbfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/cryptoshred"
	"repro/internal/inode"
	"repro/internal/lsm"
	"repro/internal/membrane"
	"repro/internal/simclock"
)

// testEnv bundles a mounted DBFS with its guard, vault and DED token.
type testEnv struct {
	dev   *blockdev.Mem
	fs    *inode.FS
	guard *lsm.Guard
	vault *cryptoshred.Vault
	auth  *cryptoshred.Authority
	clock *simclock.Sim
	store *Store
	tok   *lsm.Token
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	dev := blockdev.MustMem(4096)
	clock := simclock.NewSim(simclock.Epoch)
	fs, err := inode.Format(dev, inode.Options{NInodes: 2048, JournalBlocks: 128, Clock: clock})
	if err != nil {
		t.Fatalf("inode.Format: %v", err)
	}
	auth, err := cryptoshred.NewAuthority(1024)
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	guard := lsm.NewGuard()
	vault := cryptoshred.NewVault(auth.PublicKey())
	store, err := Create([]*inode.FS{fs}, guard, vault, clock)
	if err != nil {
		t.Fatalf("dbfs.Create: %v", err)
	}
	return &testEnv{
		dev:   dev,
		fs:    fs,
		guard: guard,
		vault: vault,
		auth:  auth,
		clock: clock,
		store: store,
		tok:   guard.Mint("ded", lsm.CapDBFS),
	}
}

func (e *testEnv) mustCreateUser(t *testing.T) {
	t.Helper()
	if err := e.store.CreateType(e.tok, userSchema()); err != nil {
		t.Fatalf("CreateType: %v", err)
	}
}

func aliceRecord() Record {
	return Record{
		"name":              S("Alice Martin"),
		"pwd":               S("correct-horse"),
		"year_of_birthdate": I(1990),
	}
}

func TestCreateTypeAndInsert(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)

	pdid, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if pdid != "user/alice/1" {
		t.Fatalf("pdid = %q", pdid)
	}
	rec, err := e.store.GetRecord(e.tok, pdid)
	if err != nil {
		t.Fatalf("GetRecord: %v", err)
	}
	if rec["name"].S != "Alice Martin" || rec["pwd"].S != "correct-horse" || rec["year_of_birthdate"].I != 1990 {
		t.Fatalf("record = %v", rec)
	}
	m, err := e.store.GetMembrane(e.tok, pdid)
	if err != nil {
		t.Fatalf("GetMembrane: %v", err)
	}
	if m.PDID != pdid || m.TypeName != "user" || m.SubjectID != "alice" {
		t.Fatalf("membrane identity = %+v", m)
	}
	if g := m.Consents["purpose3"]; g.View != "v_ano" {
		t.Fatalf("default consent not applied: %+v", m.Consents)
	}
}

func TestInsertWithoutMembraneGetsDefault(t *testing.T) {
	// Enforcement rule 3: every PD stored in DBFS has a membrane, even when
	// the caller supplies none.
	e := newEnv(t)
	e.mustCreateUser(t)
	pdid, err := e.store.Insert(e.tok, "user", "bob", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.store.GetMembrane(e.tok, pdid)
	if err != nil {
		t.Fatalf("membrane missing: %v", err)
	}
	if m.TTL == 0 || len(m.Consents) != 3 {
		t.Fatalf("default membrane incomplete: %+v", m)
	}
}

func TestInsertCustomMembraneIdentityOverridden(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	custom := membrane.New("spoofed/id/9", "spoof", "mallory")
	custom.SetConsent("purpose1", membrane.Grant{Kind: membrane.GrantAll})
	pdid, err := e.store.Insert(e.tok, "user", "carol", aliceRecord(), custom)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.store.GetMembrane(e.tok, pdid)
	if err != nil {
		t.Fatal(err)
	}
	// DBFS must fix up identity so a membrane can never point elsewhere.
	if m.PDID != pdid || m.TypeName != "user" || m.SubjectID != "carol" {
		t.Fatalf("identity not enforced: %+v", m)
	}
}

func TestTokenEnforcement(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	pdid, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// No token.
	if _, err := e.store.GetRecord(nil, pdid); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("nil token err = %v", err)
	}
	// Token without CapDBFS.
	weak := e.guard.Mint("app", lsm.CapProcessingStore)
	if _, err := e.store.GetRecord(weak, pdid); !errors.Is(err, lsm.ErrMissingCapability) {
		t.Fatalf("weak token err = %v", err)
	}
	// Every public entry point is guarded.
	if err := e.store.CreateType(nil, userSchema()); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("CreateType unguarded: %v", err)
	}
	if _, err := e.store.Insert(nil, "user", "x", nil, nil); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("Insert unguarded: %v", err)
	}
	if _, err := e.store.GetMembrane(nil, pdid); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("GetMembrane unguarded: %v", err)
	}
	if err := e.store.PutMembrane(nil, membrane.New("a", "b", "c")); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("PutMembrane unguarded: %v", err)
	}
	if err := e.store.Update(nil, pdid, nil); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("Update unguarded: %v", err)
	}
	if _, err := e.store.Erase(nil, pdid); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("Erase unguarded: %v", err)
	}
	if err := e.store.Delete(nil, pdid); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("Delete unguarded: %v", err)
	}
	if _, err := e.store.Subjects(nil); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("Subjects unguarded: %v", err)
	}
	if _, err := e.store.ListBySubject(nil, "alice"); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("ListBySubject unguarded: %v", err)
	}
	if _, err := e.store.ListByType(nil, "user"); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("ListByType unguarded: %v", err)
	}
	if _, err := e.store.Types(nil); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("Types unguarded: %v", err)
	}
	if _, err := e.store.SchemaOf(nil, "user"); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("SchemaOf unguarded: %v", err)
	}
	if _, err := e.store.RawCiphertext(nil, pdid); !errors.Is(err, lsm.ErrNoToken) {
		t.Fatalf("RawCiphertext unguarded: %v", err)
	}
	if e.guard.DenialCount() == 0 {
		t.Fatal("denials not recorded")
	}
}

func TestNoPlaintextOnDevice(t *testing.T) {
	// The heart of the rgpdOS storage design: with per-PD encryption below
	// DBFS, neither home blocks nor the journal ever hold plaintext PD.
	e := newEnv(t)
	e.mustCreateUser(t)
	if _, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil); err != nil {
		t.Fatal(err)
	}
	for _, secret := range [][]byte{[]byte("Alice Martin"), []byte("correct-horse")} {
		if hits := blockdev.FindResidue(e.dev, secret); len(hits) != 0 {
			t.Fatalf("plaintext %q found on device blocks %v", secret, hits)
		}
	}
}

func TestUpdateRecord(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	pdid, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := aliceRecord()
	rec["year_of_birthdate"] = I(1991) // rectification
	rec["pwd"] = S("new-password")
	if err := e.store.Update(e.tok, pdid, rec); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, err := e.store.GetRecord(e.tok, pdid)
	if err != nil {
		t.Fatal(err)
	}
	if got["year_of_birthdate"].I != 1991 || got["pwd"].S != "new-password" {
		t.Fatalf("after update: %v", got)
	}
}

func TestEraseCryptoShreds(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	pdid, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.store.Erase(e.tok, pdid)
	if err != nil {
		t.Fatalf("Erase: %v", err)
	}
	if ref == "" {
		t.Fatal("no escrow ref")
	}
	// Operator can no longer read the data.
	if _, err := e.store.GetRecord(e.tok, pdid); err == nil {
		t.Fatal("GetRecord succeeded after erasure")
	}
	m, err := e.store.GetMembrane(e.tok, pdid)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Erased || m.EscrowRef != ref {
		t.Fatalf("membrane not tombstoned: %+v", m)
	}
	// Idempotent: second erase returns the same ref.
	ref2, err := e.store.Erase(e.tok, pdid)
	if err != nil || ref2 != ref {
		t.Fatalf("second Erase = %q, %v", ref2, err)
	}
	// The authority can still recover via escrow (the §4 model).
	ct, err := e.store.RawCiphertext(e.tok, pdid)
	if err != nil {
		t.Fatal(err)
	}
	escrow, err := e.vault.Escrow(ref)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := e.auth.Recover(escrow, ct)
	if err != nil {
		t.Fatalf("authority Recover: %v", err)
	}
	if !bytes.Contains(pt, []byte("Alice Martin")) {
		t.Fatal("authority recovered wrong data")
	}
}

func TestDeleteRemovesRecord(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	pdid, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.store.Delete(e.tok, pdid); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := e.store.GetRecord(e.tok, pdid); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("GetRecord after delete err = %v", err)
	}
	if _, err := e.store.GetMembrane(e.tok, pdid); !errors.Is(err, ErrNoRecord) && !errors.Is(err, ErrNoMembrane) {
		t.Fatalf("GetMembrane after delete err = %v", err)
	}
	// No readable residue: blocks hold only ciphertext whose key is gone.
	for _, secret := range [][]byte{[]byte("Alice Martin"), []byte("correct-horse")} {
		if hits := blockdev.FindResidue(e.dev, secret); len(hits) != 0 {
			t.Fatalf("plaintext residue after delete: %v", hits)
		}
	}
	ids, err := e.store.ListBySubject(e.tok, "alice")
	if err != nil || len(ids) != 0 {
		t.Fatalf("ListBySubject after delete = %v, %v", ids, err)
	}
}

func TestListings(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	for _, subj := range []string{"alice", "bob"} {
		for i := 0; i < 2; i++ {
			if _, err := e.store.Insert(e.tok, "user", subj, aliceRecord(), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	subs, err := e.store.Subjects(e.tok)
	if err != nil || len(subs) != 2 || subs[0] != "alice" || subs[1] != "bob" {
		t.Fatalf("Subjects = %v, %v", subs, err)
	}
	byAlice, err := e.store.ListBySubject(e.tok, "alice")
	if err != nil || len(byAlice) != 2 {
		t.Fatalf("ListBySubject = %v, %v", byAlice, err)
	}
	byType, err := e.store.ListByType(e.tok, "user")
	if err != nil || len(byType) != 4 {
		t.Fatalf("ListByType = %v, %v", byType, err)
	}
	if _, err := e.store.ListByType(e.tok, "ghost"); !errors.Is(err, ErrNoType) {
		t.Fatalf("ListByType ghost err = %v", err)
	}
	if got, err := e.store.ListBySubject(e.tok, "nobody"); err != nil || got != nil {
		t.Fatalf("ListBySubject nobody = %v, %v", got, err)
	}
	types, err := e.store.Types(e.tok)
	if err != nil || len(types) != 1 || types[0] != "user" {
		t.Fatalf("Types = %v, %v", types, err)
	}
}

func TestDuplicateType(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	if err := e.store.CreateType(e.tok, userSchema()); !errors.Is(err, ErrTypeExists) {
		t.Fatalf("duplicate CreateType err = %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	if _, err := e.store.Insert(e.tok, "ghost", "a", aliceRecord(), nil); !errors.Is(err, ErrNoType) {
		t.Fatalf("unknown type err = %v", err)
	}
	if _, err := e.store.Insert(e.tok, "user", "", aliceRecord(), nil); !errors.Is(err, ErrBadPDID) {
		t.Fatalf("empty subject err = %v", err)
	}
	if _, err := e.store.Insert(e.tok, "user", "a/b", aliceRecord(), nil); !errors.Is(err, ErrBadPDID) {
		t.Fatalf("slash subject err = %v", err)
	}
	if _, err := e.store.Insert(e.tok, "user", "a", Record{"nope": S("x")}, nil); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("bad record err = %v", err)
	}
}

func TestSplitPDID(t *testing.T) {
	ty, subj, n, err := SplitPDID("user/alice/42")
	if err != nil || ty != "user" || subj != "alice" || n != 42 {
		t.Fatalf("SplitPDID = %q %q %d %v", ty, subj, n, err)
	}
	for _, bad := range []string{"", "user", "user/alice", "user/alice/x", "/alice/1", "user//1", "a/b/c/d"} {
		if _, _, _, err := SplitPDID(bad); !errors.Is(err, ErrBadPDID) {
			t.Fatalf("SplitPDID(%q) err = %v, want ErrBadPDID", bad, err)
		}
	}
}

func TestGetUnknownRecord(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	if _, err := e.store.GetRecord(e.tok, "user/alice/99"); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("unknown record err = %v", err)
	}
	if _, err := e.store.GetRecord(e.tok, "bad"); !errors.Is(err, ErrBadPDID) {
		t.Fatalf("bad pdid err = %v", err)
	}
}

func TestOpenReloadsState(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	pdid, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Remount the inode FS and reopen DBFS with the same vault (keys are
	// kernel state, not disk state).
	fs2, err := inode.Mount(e.dev, e.clock)
	if err != nil {
		t.Fatal(err)
	}
	store2, err := Open([]*inode.FS{fs2}, e.guard, e.vault, e.clock)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec, err := store2.GetRecord(e.tok, pdid)
	if err != nil {
		t.Fatalf("GetRecord after reopen: %v", err)
	}
	if rec["name"].S != "Alice Martin" {
		t.Fatalf("record after reopen = %v", rec)
	}
	// The sequence continues past the persisted watermark, never reusing
	// an id (leasing may skip some; see nextSeq).
	pdid2, err := store2.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, rec1, err := SplitPDID(pdid)
	if err != nil {
		t.Fatal(err)
	}
	_, _, rec2, err := SplitPDID(pdid2)
	if err != nil {
		t.Fatal(err)
	}
	if rec2 <= rec1 {
		t.Fatalf("pdid after reopen = %q, want record number > %d", pdid2, rec1)
	}
}

func TestStatsCounters(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	pdid, _ := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	_, _ = e.store.GetRecord(e.tok, pdid)
	_, _ = e.store.GetMembrane(e.tok, pdid)
	_ = e.store.Update(e.tok, pdid, aliceRecord())
	s := e.store.Stats()
	if s.TypesCreated != 1 || s.Inserts != 1 || s.DataReads != 1 || s.MembraneReads != 1 || s.Updates != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestBlockCacheCountersSurface proves the per-instance block buffer cache
// counters flow through to dbfs.Stats: a formatted FS defaults to a cache,
// and any record traffic must register hits and write-backs.
func TestBlockCacheCountersSurface(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	pdid, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := e.store.GetRecord(e.tok, pdid); err != nil {
		t.Fatalf("GetRecord: %v", err)
	}
	s := e.store.Stats()
	if s.BlockCacheHits == 0 {
		t.Fatalf("BlockCacheHits = 0; block cache not wired into stats: %+v", s)
	}
	if s.BlockWritebacks == 0 {
		t.Fatalf("BlockWritebacks = 0 after journaled inserts: %+v", s)
	}
}

func TestPerSubjectIsolation(t *testing.T) {
	// Records of different subjects live in different inode subtrees and
	// under different keys: erasing alice leaves bob intact.
	e := newEnv(t)
	e.mustCreateUser(t)
	alicePD, _ := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	bobRec := aliceRecord()
	bobRec["name"] = S("Bob Stone")
	bobPD, _ := e.store.Insert(e.tok, "user", "bob", bobRec, nil)
	if _, err := e.store.Erase(e.tok, alicePD); err != nil {
		t.Fatal(err)
	}
	got, err := e.store.GetRecord(e.tok, bobPD)
	if err != nil {
		t.Fatalf("bob unreadable after alice erasure: %v", err)
	}
	if got["name"].S != "Bob Stone" {
		t.Fatalf("bob record = %v", got)
	}
}
