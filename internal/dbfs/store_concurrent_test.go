package dbfs

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"repro/internal/membrane"
)

// TestConcurrentDisjointSubjects hammers the store from many goroutines,
// each owning a disjoint subject: the whole insert/read/update/erase cycle
// must be race-clean and every goroutine's records must come back intact.
func TestConcurrentDisjointSubjects(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	const (
		goroutines = 8
		recsEach   = 6
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			subject := "subj-" + strconv.Itoa(g)
			pdids := make([]string, 0, recsEach)
			for i := 0; i < recsEach; i++ {
				rec := Record{
					"name":              S(subject + "-rec-" + strconv.Itoa(i)),
					"pwd":               S("secret"),
					"year_of_birthdate": I(int64(1950 + g + i)),
				}
				pdid, err := e.store.Insert(e.tok, "user", subject, rec, nil)
				if err != nil {
					errs <- fmt.Errorf("insert %s/%d: %w", subject, i, err)
					return
				}
				pdids = append(pdids, pdid)
			}
			for i, pdid := range pdids {
				rec, err := e.store.GetRecord(e.tok, pdid)
				if err != nil {
					errs <- fmt.Errorf("get %s: %w", pdid, err)
					return
				}
				if want := subject + "-rec-" + strconv.Itoa(i); rec["name"].S != want {
					errs <- fmt.Errorf("get %s: name %q, want %q", pdid, rec["name"].S, want)
					return
				}
				rec["name"] = S(subject + "-updated-" + strconv.Itoa(i))
				if err := e.store.Update(e.tok, pdid, rec); err != nil {
					errs <- fmt.Errorf("update %s: %w", pdid, err)
					return
				}
			}
			listed, err := e.store.ListBySubject(e.tok, subject)
			if err != nil {
				errs <- fmt.Errorf("list %s: %w", subject, err)
				return
			}
			if len(listed) != recsEach {
				errs <- fmt.Errorf("list %s: %d records, want %d", subject, len(listed), recsEach)
				return
			}
			// Erase the first record, then confirm the tombstone.
			if _, err := e.store.Erase(e.tok, pdids[0]); err != nil {
				errs <- fmt.Errorf("erase %s: %w", pdids[0], err)
				return
			}
			m, err := e.store.GetMembrane(e.tok, pdids[0])
			if err != nil {
				errs <- fmt.Errorf("membrane %s: %w", pdids[0], err)
				return
			}
			if !m.Erased {
				errs <- fmt.Errorf("membrane %s: not erased", pdids[0])
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := e.store.Stats()
	if want := uint64(goroutines * recsEach); st.Inserts != want {
		t.Errorf("stats.Inserts = %d, want %d", st.Inserts, want)
	}
	if want := uint64(goroutines); st.Erasures != want {
		t.Errorf("stats.Erasures = %d, want %d", st.Erasures, want)
	}
}

// TestConcurrentOverlappingSubject aims every goroutine at the SAME subject:
// the shard lock must serialize the record state so reads never observe a
// partial record and concurrent erasures of one pdid stay idempotent.
func TestConcurrentOverlappingSubject(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	const subject = "shared"
	seedID, err := e.store.Insert(e.tok, "user", subject, aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := e.store.Insert(e.tok, "user", subject, aliceRecord(), nil); err != nil {
					errs <- fmt.Errorf("insert: %w", err)
					return
				}
				rec, err := e.store.GetRecord(e.tok, seedID)
				if err != nil {
					errs <- fmt.Errorf("get seed: %w", err)
					return
				}
				// The seed record is rewritten concurrently, but a read must
				// always see a complete, decryptable record.
				if rec["name"].S == "" {
					errs <- errors.New("get seed: empty name")
					return
				}
				rec["name"] = S(fmt.Sprintf("writer-%d-%d", g, i))
				if err := e.store.Update(e.tok, seedID, rec); err != nil {
					errs <- fmt.Errorf("update seed: %w", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Phase 2: concurrent erasure of the same pdid must be idempotent.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.store.Erase(e.tok, seedID); err != nil {
				errs <- fmt.Errorf("erase seed: %w", err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	listed, err := e.store.ListBySubject(e.tok, subject)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + goroutines*4; len(listed) != want {
		t.Errorf("ListBySubject: %d records, want %d", len(listed), want)
	}
	if st := e.store.Stats(); st.Erasures != 1 {
		t.Errorf("stats.Erasures = %d, want 1 (idempotent)", st.Erasures)
	}
}

// TestUpdateAfterEraseFails guards the Update/Erase serialization: once a
// record's keys are shredded, an update must fail (sealing happens under
// the shard lock, so a concurrent Erase can never be overwritten either).
func TestUpdateAfterEraseFails(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	pdid, err := e.store.Insert(e.tok, "user", "bob", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.store.Erase(e.tok, pdid); err != nil {
		t.Fatal(err)
	}
	if err := e.store.Update(e.tok, pdid, aliceRecord()); err == nil {
		t.Fatal("Update succeeded on an erased record")
	}
}

// TestUpdateNonexistentMintsNoKeys guards Update's seal ordering: the
// record must be resolved before sealing, so an update of a pdid that was
// never inserted fails without polluting the vault with live keys.
func TestUpdateNonexistentMintsNoKeys(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	const ghost = "user/alice/999"
	if err := e.store.Update(e.tok, ghost, aliceRecord()); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("Update(ghost) err = %v, want ErrNoRecord", err)
	}
	if e.vault.HasKey(ghost) {
		t.Fatal("failed Update minted a vault key for a nonexistent record")
	}
	if n := e.vault.LiveKeys(); n != 0 {
		t.Fatalf("LiveKeys = %d, want 0", n)
	}
}

// TestMutateMembraneComposes runs many concurrent consent mutations on one
// record: each read-modify-write must see the freshest stored state, so
// every purpose's grant survives (a snapshot-writeback would lose most).
func TestMutateMembraneComposes(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	pdid, err := e.store.Insert(e.tok, "user", "carol", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			purpose := "purpose-" + strconv.Itoa(g)
			if _, err := e.store.MutateMembrane(e.tok, pdid, func(m *membrane.Membrane) error {
				m.SetConsent(purpose, membrane.Grant{Kind: membrane.GrantAll})
				return nil
			}); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	m, err := e.store.GetMembrane(e.tok, pdid)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < writers; g++ {
		purpose := "purpose-" + strconv.Itoa(g)
		if grant, ok := m.Consents[purpose]; !ok || grant.Kind != membrane.GrantAll {
			t.Errorf("grant for %s lost: %+v", purpose, m.Consents)
		}
	}
	// A consent change after erasure must not resurrect the tombstone.
	if _, err := e.store.Erase(e.tok, pdid); err != nil {
		t.Fatal(err)
	}
	if _, err := e.store.MutateMembrane(e.tok, pdid, func(m *membrane.Membrane) error {
		m.SetConsent("late", membrane.Grant{Kind: membrane.GrantAll})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	m, err = e.store.GetMembrane(e.tok, pdid)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Erased || m.EscrowRef == "" {
		t.Fatalf("erasure tombstone lost: erased=%t escrow=%q", m.Erased, m.EscrowRef)
	}
}

// TestConcurrentInsertVsScan interleaves cross-subject scans with inserts:
// listings are point-in-time snapshots and must never error or return a
// half-written record (records become listable only once their membrane,
// written last, exists).
func TestConcurrentInsertVsScan(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	const writers = 4
	var writerWG, scanWG sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, writers+1)
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			subject := "scan-subj-" + strconv.Itoa(g)
			for i := 0; i < 8; i++ {
				if _, err := e.store.Insert(e.tok, "user", subject, aliceRecord(), nil); err != nil {
					errs <- fmt.Errorf("insert: %w", err)
					return
				}
			}
		}(g)
	}
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			pdids, err := e.store.ListByType(e.tok, "user")
			if err != nil {
				errs <- fmt.Errorf("scan: %w", err)
				return
			}
			for _, pdid := range pdids {
				if _, err := e.store.GetMembrane(e.tok, pdid); err != nil {
					errs <- fmt.Errorf("scan membrane %s: %w", pdid, err)
					return
				}
			}
		}
	}()
	writerWG.Wait()
	close(stop)
	scanWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	pdids, err := e.store.ListByType(e.tok, "user")
	if err != nil {
		t.Fatal(err)
	}
	if want := writers * 8; len(pdids) != want {
		t.Errorf("final ListByType: %d, want %d", len(pdids), want)
	}
}
