package dbfs

import (
	"errors"
	"strconv"
	"sync"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/cryptoshred"
	"repro/internal/inode"
	"repro/internal/lsm"
	"repro/internal/simclock"
)

// shardedEnv builds a DBFS over n inode filesystem instances, each on its
// own partition of one shared device — the same topology core.Boot wires
// for Options.FSInstances > 1.
type shardedEnv struct {
	dev   *blockdev.Mem
	fss   []*inode.FS
	store *Store
	tok   *lsm.Token
}

func newShardedEnv(t *testing.T, n int) *shardedEnv {
	t.Helper()
	const devBlocks = 8192
	dev := blockdev.MustMem(devBlocks)
	clock := simclock.NewSim(simclock.Epoch)
	per := uint64(devBlocks / n)
	fss := make([]*inode.FS, n)
	for i := range fss {
		part, err := blockdev.NewPartition(dev, uint64(i)*per, per)
		if err != nil {
			t.Fatalf("NewPartition %d: %v", i, err)
		}
		fss[i], err = inode.Format(part, inode.Options{NInodes: 1024, JournalBlocks: 64, Clock: clock})
		if err != nil {
			t.Fatalf("inode.Format %d: %v", i, err)
		}
	}
	auth, err := cryptoshred.NewAuthority(1024)
	if err != nil {
		t.Fatal(err)
	}
	guard := lsm.NewGuard()
	store, err := Create(fss, guard, cryptoshred.NewVault(auth.PublicKey()), clock)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := store.CreateType(store.guard.Mint("boot", lsm.CapDBFS), userSchema()); err != nil {
		t.Fatalf("CreateType: %v", err)
	}
	return &shardedEnv{dev: dev, fss: fss, store: store, tok: guard.Mint("ded", lsm.CapDBFS)}
}

// TestShardedInsertRoutesAcrossInstances checks that subjects land on more
// than one instance, and that every record remains reachable through the
// usual lookups and listings.
func TestShardedInsertRoutesAcrossInstances(t *testing.T) {
	e := newShardedEnv(t, 4)
	const subjects = 32
	pdids := make([]string, 0, subjects)
	for i := 0; i < subjects; i++ {
		subj := "subj" + strconv.Itoa(i)
		pdid, err := e.store.Insert(e.tok, "user", subj, Record{
			"name":              S("user " + subj),
			"pwd":               S("secret"),
			"year_of_birthdate": I(1990),
		}, nil)
		if err != nil {
			t.Fatalf("Insert %s: %v", subj, err)
		}
		pdids = append(pdids, pdid)
	}
	// Routing actually spreads: more than one instance holds subjects.
	used := 0
	for i, fs := range e.store.fss {
		ents, err := fs.Children(e.store.subjectRoots[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("only %d of %d instances hold subjects; routing broken", used, len(e.store.fss))
	}
	// Every record readable; listings see the union.
	for _, pdid := range pdids {
		if _, err := e.store.GetRecord(e.tok, pdid); err != nil {
			t.Fatalf("GetRecord %s: %v", pdid, err)
		}
	}
	all, err := e.store.ListByType(e.tok, "user")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != subjects {
		t.Fatalf("ListByType = %d records, want %d", len(all), subjects)
	}
	subs, err := e.store.Subjects(e.tok)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != subjects {
		t.Fatalf("Subjects = %d, want %d", len(subs), subjects)
	}
}

// TestShardedConcurrentInsertErase hammers a 4-instance store from
// concurrent workers (run under -race) mixing inserts, reads and erases.
func TestShardedConcurrentInsertErase(t *testing.T) {
	e := newShardedEnv(t, 4)
	const workers = 8
	const perWorker = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				subj := "w" + strconv.Itoa(w) + "n" + strconv.Itoa(i)
				pdid, err := e.store.Insert(e.tok, "user", subj, Record{
					"name":              S("user " + subj),
					"pwd":               S("secret"),
					"year_of_birthdate": I(1990),
				}, nil)
				if err != nil {
					errs <- err
					return
				}
				if _, err := e.store.GetRecord(e.tok, pdid); err != nil {
					errs <- err
					return
				}
				if i%2 == 0 {
					if _, err := e.store.Erase(e.tok, pdid); err != nil {
						errs <- err
						return
					}
					if _, err := e.store.GetRecord(e.tok, pdid); !errors.Is(err, cryptoshred.ErrKeyDestroyed) {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.store.Stats()
	if st.Inserts != workers*perWorker {
		t.Fatalf("Inserts = %d, want %d", st.Inserts, workers*perWorker)
	}
	if st.Erasures != workers*perWorker/2 {
		t.Fatalf("Erasures = %d, want %d", st.Erasures, workers*perWorker/2)
	}
}

// TestShardedReopen remounts every partition and reopens the store,
// checking records survive with the same shard → instance routing.
func TestShardedReopen(t *testing.T) {
	e := newShardedEnv(t, 2)
	pdid, err := e.store.Insert(e.tok, "user", "carol", Record{
		"name":              S("Carol"),
		"pwd":               S("pw"),
		"year_of_birthdate": I(1984),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSim(simclock.Epoch)
	per := e.dev.NumBlocks() / uint64(len(e.fss))
	fss2 := make([]*inode.FS, len(e.fss))
	for i := range fss2 {
		part, err := blockdev.NewPartition(e.dev, uint64(i)*per, per)
		if err != nil {
			t.Fatal(err)
		}
		if fss2[i], err = inode.Mount(part, clock); err != nil {
			t.Fatalf("Mount %d: %v", i, err)
		}
	}
	store2, err := Open(fss2, e.store.guard, e.store.vault, clock)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := store2.GetRecord(e.tok, pdid); err != nil {
		t.Fatalf("GetRecord after reopen: %v", err)
	}
	all, err := store2.ListByType(e.tok, "user")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0] != pdid {
		t.Fatalf("ListByType after reopen = %v, want [%s]", all, pdid)
	}
	// Reopening with a different instance count would change shard
	// routing and orphan records; the persisted shard config rejects it.
	if _, err := Open(fss2[:1], e.store.guard, e.store.vault, clock); err == nil {
		t.Fatal("Open with wrong instance count succeeded; shard config check broken")
	}
}
