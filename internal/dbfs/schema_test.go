package dbfs

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/membrane"
	"repro/internal/simclock"
)

// userSchema is the paper's Listing 1 type.
func userSchema() *Schema {
	return &Schema{
		Name: "user",
		Fields: []Field{
			{Name: "name", Type: TypeString},
			{Name: "pwd", Type: TypeString, Sensitive: true},
			{Name: "year_of_birthdate", Type: TypeInt},
		},
		Views: []View{
			{Name: "v_name", Fields: []string{"name"}},
			{Name: "v_ano", Fields: []string{"year_of_birthdate"}},
		},
		DefaultConsent: map[string]membrane.Grant{
			"purpose1": {Kind: membrane.GrantAll},
			"purpose2": {Kind: membrane.GrantNone},
			"purpose3": {Kind: membrane.GrantView, View: "v_ano"},
		},
		Collection: map[string]string{
			"web_form":    "user_form.html",
			"third_party": "fetch_data.py",
		},
		DefaultTTL:  365 * 24 * time.Hour,
		Origin:      membrane.OriginSubject,
		Sensitivity: membrane.SensitivityHigh,
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := userSchema().Validate(); err != nil {
		t.Fatalf("Listing 1 schema rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Schema)
	}{
		{"empty name", func(s *Schema) { s.Name = "" }},
		{"no fields", func(s *Schema) { s.Fields = nil }},
		{"unnamed field", func(s *Schema) { s.Fields[0].Name = "" }},
		{"dup field", func(s *Schema) { s.Fields[1].Name = "name" }},
		{"bad type", func(s *Schema) { s.Fields[0].Type = 99 }},
		{"unnamed view", func(s *Schema) { s.Views[0].Name = "" }},
		{"dup view", func(s *Schema) { s.Views[1].Name = "v_name" }},
		{"empty view", func(s *Schema) { s.Views[0].Fields = nil }},
		{"view bad field", func(s *Schema) { s.Views[0].Fields = []string{"ghost"} }},
		{"consent bad view", func(s *Schema) {
			s.DefaultConsent["p"] = membrane.Grant{Kind: membrane.GrantView, View: "ghost"}
		}},
		{"empty purpose", func(s *Schema) {
			s.DefaultConsent[""] = membrane.Grant{Kind: membrane.GrantAll}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := userSchema()
			tt.mutate(s)
			if err := s.Validate(); !errors.Is(err, ErrBadSchema) {
				t.Fatalf("Validate = %v, want ErrBadSchema", err)
			}
		})
	}
}

func TestSchemaCodec(t *testing.T) {
	s := userSchema()
	raw, err := EncodeSchema(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSchema(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || len(got.Fields) != 3 || len(got.Views) != 2 ||
		got.DefaultTTL != s.DefaultTTL || got.Sensitivity != s.Sensitivity {
		t.Fatalf("round trip: %+v", got)
	}
	if g := got.DefaultConsent["purpose3"]; g.Kind != membrane.GrantView || g.View != "v_ano" {
		t.Fatalf("consent round trip: %+v", g)
	}
	if _, err := DecodeSchema([]byte(`{"name":""}`)); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("DecodeSchema invalid = %v", err)
	}
}

func TestVisibleFields(t *testing.T) {
	s := userSchema()
	all, err := s.VisibleFields(membrane.Grant{Kind: membrane.GrantAll})
	if err != nil || len(all) != 3 {
		t.Fatalf("GrantAll fields = %v, %v", all, err)
	}
	v, err := s.VisibleFields(membrane.Grant{Kind: membrane.GrantView, View: "v_ano"})
	if err != nil || len(v) != 1 || !v["year_of_birthdate"] {
		t.Fatalf("view fields = %v, %v", v, err)
	}
	none, err := s.VisibleFields(membrane.Grant{Kind: membrane.GrantNone})
	if err != nil || len(none) != 0 {
		t.Fatalf("GrantNone fields = %v, %v", none, err)
	}
	if _, err := s.VisibleFields(membrane.Grant{Kind: membrane.GrantView, View: "nope"}); !errors.Is(err, ErrNoView) {
		t.Fatalf("unknown view err = %v, want ErrNoView", err)
	}
}

func TestDefaultMembrane(t *testing.T) {
	s := userSchema()
	now := simclock.Epoch
	m := s.DefaultMembrane("user/alice/1", "alice", now)
	if err := m.Validate(); err != nil {
		t.Fatalf("default membrane invalid: %v", err)
	}
	if m.TTL != s.DefaultTTL || m.Origin != membrane.OriginSubject || m.Sensitivity != membrane.SensitivityHigh {
		t.Fatalf("defaults not applied: %+v", m)
	}
	if m.Collection["web_form"] != "user_form.html" {
		t.Fatalf("collection not applied: %v", m.Collection)
	}
	if _, err := m.Decide("purpose1", now.Add(time.Hour)); err != nil {
		t.Fatalf("purpose1 should pass: %v", err)
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	s := userSchema()
	rec := Record{
		"name":              S("Chiraz Benamor"),
		"pwd":               S("hunter2"),
		"year_of_birthdate": I(1990),
	}
	plain, sens := partsOf(s)
	if !sens["pwd"] || sens["name"] {
		t.Fatalf("partsOf wrong: plain=%v sens=%v", plain, sens)
	}
	enc, err := encodeRecordPart(s, rec, plain)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeRecordPart(s, enc, plain)
	if err != nil {
		t.Fatal(err)
	}
	if !dec["name"].Equal(rec["name"]) || !dec["year_of_birthdate"].Equal(rec["year_of_birthdate"]) {
		t.Fatalf("decoded = %v", dec)
	}
	if _, ok := dec["pwd"]; ok {
		t.Fatal("plain part leaked sensitive field")
	}
}

func TestRecordCodecMissingFields(t *testing.T) {
	s := userSchema()
	rec := Record{"name": S("only name")}
	plain, _ := partsOf(s)
	enc, err := encodeRecordPart(s, rec, plain)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeRecordPart(s, enc, plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 1 || dec["name"].S != "only name" {
		t.Fatalf("decoded = %v", dec)
	}
}

func TestRecordValidation(t *testing.T) {
	s := userSchema()
	if err := validateRecord(s, Record{"ghost": S("x")}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("unknown field err = %v", err)
	}
	if err := validateRecord(s, Record{"name": I(42)}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("wrong type err = %v", err)
	}
}

func TestRecordCodecCorruption(t *testing.T) {
	s := userSchema()
	plain, _ := partsOf(s)
	if _, err := decodeRecordPart(s, []byte{1}, plain); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("truncated err = %v", err)
	}
	rec := Record{"name": S("x")}
	enc, err := encodeRecordPart(s, rec, plain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRecordPart(s, append(enc, 0xFF), plain); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("trailing bytes err = %v", err)
	}
}

func TestAllValueTypes(t *testing.T) {
	s := &Schema{
		Name: "every",
		Fields: []Field{
			{Name: "s", Type: TypeString},
			{Name: "i", Type: TypeInt},
			{Name: "f", Type: TypeFloat},
			{Name: "b", Type: TypeBool},
			{Name: "t", Type: TypeTime},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	when := time.Date(2022, 5, 30, 12, 0, 0, 0, time.UTC)
	rec := Record{
		"s": S("été\x00bytes"), // non-ASCII and NUL survive
		"i": I(-123456789),
		"f": F(3.14159),
		"b": B(true),
		"t": T(when),
	}
	part := map[string]bool{"s": true, "i": true, "f": true, "b": true, "t": true}
	enc, err := encodeRecordPart(s, rec, part)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeRecordPart(s, enc, part)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range rec {
		if !dec[name].Equal(v) {
			t.Fatalf("field %q: %v != %v", name, dec[name], v)
		}
	}
}

func TestRecordCodecProperty(t *testing.T) {
	s := &Schema{
		Name: "prop",
		Fields: []Field{
			{Name: "a", Type: TypeString},
			{Name: "b", Type: TypeInt},
			{Name: "c", Type: TypeFloat},
			{Name: "d", Type: TypeBool},
		},
	}
	part := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(a string, b int64, c float64, d, skipA, skipC bool) bool {
		rec := Record{"b": I(b), "d": B(d)}
		if !skipA {
			rec["a"] = S(a)
		}
		if !skipC {
			rec["c"] = F(c)
		}
		enc, err := encodeRecordPart(s, rec, part)
		if err != nil {
			return false
		}
		dec, err := decodeRecordPart(s, enc, part)
		if err != nil {
			return false
		}
		if len(dec) != len(rec) {
			return false
		}
		for k, v := range rec {
			if !dec[k].Equal(v) {
				// NaN never equals itself; treat as pass-through check.
				if v.Type == TypeFloat && v.F != v.F && dec[k].F != dec[k].F {
					continue
				}
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestProjectView(t *testing.T) {
	s := userSchema()
	rec := Record{
		"name":              S("Alice"),
		"pwd":               S("secret"),
		"year_of_birthdate": I(1985),
	}
	// Listing 2's scenario: purpose3 sees only v_ano.
	got, err := ProjectView(s, rec, membrane.Grant{Kind: membrane.GrantView, View: "v_ano"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["year_of_birthdate"].I != 1985 {
		t.Fatalf("projection = %v", got)
	}
	all, err := ProjectView(s, rec, membrane.Grant{Kind: membrane.GrantAll})
	if err != nil || len(all) != 3 {
		t.Fatalf("GrantAll projection = %v, %v", all, err)
	}
	if _, err := ProjectView(s, rec, membrane.Grant{Kind: membrane.GrantNone}); !errors.Is(err, ErrFieldHidden) {
		t.Fatalf("GrantNone projection err = %v", err)
	}
}

func TestValueHelpers(t *testing.T) {
	if S("x").String() != "x" || I(7).String() != "7" || B(true).String() != "true" {
		t.Fatal("Value.String wrong")
	}
	if F(2.5).Export() != 2.5 || I(7).Export() != int64(7) || B(false).Export() != false {
		t.Fatal("Value.Export wrong")
	}
	if S("a").Equal(I(1)) {
		t.Fatal("cross-type Equal")
	}
	r := Record{"b": I(1), "a": S("x")}
	names := r.FieldNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("FieldNames = %v", names)
	}
	cl := r.Clone()
	cl["a"] = S("mutated")
	if r["a"].S != "x" {
		t.Fatal("Clone is shallow")
	}
}

func TestParseFieldType(t *testing.T) {
	for _, name := range []string{"string", "int", "float", "bool", "time"} {
		ft, err := ParseFieldType(name)
		if err != nil || ft.String() != name {
			t.Fatalf("ParseFieldType(%q) = %v, %v", name, ft, err)
		}
	}
	if _, err := ParseFieldType("blob"); err == nil {
		t.Fatal("ParseFieldType accepted blob")
	}
}
