package dbfs

// The DBFS side of the cold tier (internal/coldtier): demotion of idle
// records into per-subject content-addressed compressed archives, an
// in-memory archive index for O(1) cold lookups, transparent promotion
// back to the hot tier on first read, and immutable membrane snapshots
// riding the same archive format.
//
// Layout: each filesystem instance carries two more root trees, "cold"
// (one archive file per subject, named by subject ID) and "snapshots"
// (one archive file per snapshot label). Records reach the archive as the
// exact ciphertext bytes the hot tier stored — crypto-shredding therefore
// covers archived copies for free — plus their plaintext membrane bytes
// (membranes are stored in clear in the hot tier too; tombstones must
// stay readable for idempotent erasure). Dedup is per subject archive by
// construction: chunks can never be shared across subjects, which keeps
// "shred the key, every copy dies" exact (see the coldtier package doc).
//
// Locking: each subject shard owns a coldShard whose mutex is a leaf
// under the shard lock — lock order shard → cold.mu → statsMu, and a
// cold section never takes metaMu. Demotion runs under the shard WRITE
// lock (it removes hot files); promotion runs under whichever side the
// triggering reader holds, serialized per shard by cold.mu (the shard
// read lock already excludes every mutator, and the inode layer is
// internally safe, so a promotion's hot-file writes cannot race a
// mutator). Crash ordering is archive-first on demote and hot-first on
// promote: a crash between the two leaves the record present in both
// tiers, and every read path prefers the hot copy, so nothing is lost and
// nothing stale is served; the next repack pass of the subject rewrites
// the archive entry.
//
// A promoted record's archive entry is retained (stale, never served —
// hot wins): if the record re-idles unchanged, re-demotion
// content-addresses onto the existing chunks and costs dedup hits instead
// of new bytes. Delete physically removes the archive entry; Erase leaves
// it, because erased ciphertext is exactly as dead as the hot tier's
// (ErrKeyDestroyed) and the tombstoned membrane overwrites the entry at
// its next demotion.

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coldtier"
	"repro/internal/cryptoshred"
	"repro/internal/inode"
	"repro/internal/lsm"
	"repro/internal/membrane"
)

// Cold-tier tree and part names.
const (
	coldRootName = "cold"
	snapRootName = "snapshots"

	coldPartData = "data"
	coldPartSens = "sens"
	coldPartMem  = "mem"
)

// Cold-tier sentinel errors.
var (
	// ErrSnapshotExists reports SnapshotMembranes over an existing label.
	ErrSnapshotExists = errors.New("dbfs: snapshot label already exists")
	// ErrNoSnapshot reports a read of an unknown snapshot label.
	ErrNoSnapshot = errors.New("dbfs: no such snapshot")
)

// coldState is the store's cold-tier state: the idle threshold (0 =
// demotion disabled; promotion and the index always work, so archives
// written under an earlier configuration stay readable) and the per-shard
// index slices.
type coldState struct {
	after  atomic.Int64 // idle threshold in nanoseconds
	shards []coldShard
	// roots / snapRoots are the per-instance cold and snapshot trees.
	roots     []inode.Ino
	snapRoots []inode.Ino
	// snapMu serializes snapshot creation (label uniqueness check +
	// write); taken without any shard lock held.
	snapMu sync.Mutex
}

// coldShard is one subject shard's slice of the cold tier. mu is a leaf
// lock under the shard lock (see the file comment).
type coldShard struct {
	mu sync.Mutex
	// touches is each hot record's last-touch instant. A hot record with
	// no entry (written before the tier was enabled, or before this
	// mount) counts as idle since forever and demotes on the next pass.
	touches map[string]time.Time
	// archived marks every pdid with an entry in its subject's archive
	// (including stale entries shadowed by a promoted hot copy).
	archived map[string]bool
	// saved is each subject's current archive saving: raw bytes of the
	// entries minus encoded archive file bytes.
	saved map[string]int64
}

// init allocates the shard's maps; caller holds mu or is single-threaded.
func (cs *coldShard) init() {
	if cs.touches == nil {
		cs.touches = make(map[string]time.Time)
		cs.archived = make(map[string]bool)
		cs.saved = make(map[string]int64)
	}
}

// ConfigureColdTier sets the cold tier's idle threshold: records untouched
// for this long are demoted into their subject's archive by the next
// repack pass. Zero (the default) disables demotion; promotion of
// already-archived records always works. Safe at runtime.
//
// Deprecated: when the store is owned by a core.System, tune it through
// System.ApplyTuning (core.Tuning.ColdAfter). Direct use remains correct
// for standalone stores.
func (s *Store) ConfigureColdTier(after time.Duration) {
	if after < 0 {
		after = 0
	}
	s.cold.after.Store(int64(after))
}

// ColdAfter reports the configured idle threshold (0 = demotion disabled).
func (s *Store) ColdAfter() time.Duration {
	return time.Duration(s.cold.after.Load())
}

// coldTouch stamps a record's last-touch instant; caller holds the
// subject's shard lock (either side). Skipped while demotion is disabled
// so the disabled tier costs one atomic load per operation.
func (s *Store) coldTouch(sr shardRef, pdid string) {
	if s.ColdAfter() == 0 {
		return
	}
	cs := &s.cold.shards[sr.idx]
	cs.mu.Lock()
	cs.init()
	cs.touches[pdid] = s.clock.Now()
	cs.mu.Unlock()
}

// ensureColdRoots resolves (creating if absent) the per-instance cold and
// snapshot trees. Called at Create and at Open — Open creates them too so
// volumes formatted before the cold tier existed mount cleanly.
func (s *Store) ensureColdRoots() error {
	s.cold.roots = make([]inode.Ino, len(s.fss))
	s.cold.snapRoots = make([]inode.Ino, len(s.fss))
	for i, fs := range s.fss {
		for _, spec := range []struct {
			name string
			dst  *inode.Ino
		}{
			{coldRootName, &s.cold.roots[i]},
			{snapRootName, &s.cold.snapRoots[i]},
		} {
			ino, err := fs.Lookup(inode.RootIno, spec.name)
			if errors.Is(err, inode.ErrChildNotFound) {
				ino, err = fs.AllocInode(inode.ModeTree, spec.name+"-root")
				if err != nil {
					return fmt.Errorf("dbfs: create %s tree on instance %d: %w", spec.name, i, err)
				}
				if err := fs.AddChild(inode.RootIno, spec.name, ino); err != nil {
					return fmt.Errorf("dbfs: link %s tree on instance %d: %w", spec.name, i, err)
				}
			} else if err != nil {
				return fmt.Errorf("dbfs: resolve %s tree on instance %d: %w", spec.name, i, err)
			}
			*spec.dst = ino
		}
	}
	return nil
}

// rebuildColdIndex reloads the in-memory archive index from the cold trees
// (the cold tier's once-per-session read, like the schema load). Called at
// Open, before concurrent use.
func (s *Store) rebuildColdIndex() error {
	for i, fs := range s.fss {
		ents, err := fs.Children(s.cold.roots[i])
		if err != nil {
			return fmt.Errorf("dbfs: list cold tree on instance %d: %w", i, err)
		}
		for _, e := range ents {
			raw, err := readAll(fs, e.Ino)
			if err != nil {
				return fmt.Errorf("dbfs: read cold archive %q: %w", e.Name, err)
			}
			arch, err := coldtier.Decode(raw)
			if err != nil {
				return fmt.Errorf("dbfs: cold archive %q: %w", e.Name, err)
			}
			cs := &s.cold.shards[s.ShardOf(e.Name)]
			cs.mu.Lock()
			cs.init()
			for _, pdid := range arch.IDs() {
				cs.archived[pdid] = true
			}
			rawSz, _ := arch.Sizes()
			cs.saved[e.Name] = int64(rawSz) - int64(len(raw))
			cs.mu.Unlock()
		}
	}
	return nil
}

// coldArchiveLoad reads and decodes a subject's archive, or returns a
// fresh one if none exists yet. Caller holds the subject's shard lock and
// the shard's cold mutex.
func (s *Store) coldArchiveLoad(sr shardRef, subjectID string) (*coldtier.Archive, error) {
	ino, err := sr.fs.Lookup(sr.coldRoot, subjectID)
	if errors.Is(err, inode.ErrChildNotFound) {
		return coldtier.New(), nil
	}
	if err != nil {
		return nil, err
	}
	raw, err := readAll(sr.fs, ino)
	if err != nil {
		return nil, fmt.Errorf("dbfs: read cold archive %q: %w", subjectID, err)
	}
	arch, err := coldtier.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("dbfs: cold archive %q: %w", subjectID, err)
	}
	return arch, nil
}

// coldArchiveStore durably (re)writes a subject's archive — or removes the
// file when the archive emptied — and refreshes the subject's saved-bytes
// accounting. Caller holds the subject's shard lock and the shard's cold
// mutex.
func (s *Store) coldArchiveStore(sr shardRef, cs *coldShard, subjectID string, arch *coldtier.Archive) error {
	cs.init()
	if arch.Len() == 0 {
		ino, err := sr.fs.Lookup(sr.coldRoot, subjectID)
		if errors.Is(err, inode.ErrChildNotFound) {
			delete(cs.saved, subjectID)
			return nil
		}
		if err != nil {
			return err
		}
		if err := sr.fs.RemoveChild(sr.coldRoot, subjectID); err != nil {
			return err
		}
		if err := sr.fs.FreeInode(ino); err != nil {
			return err
		}
		delete(cs.saved, subjectID)
		return nil
	}
	enc, err := arch.Encode()
	if err != nil {
		return err
	}
	if err := writeOrReplaceFile(sr.fs, sr.coldRoot, subjectID, "cold-archive", enc); err != nil {
		return err
	}
	rawSz, _ := arch.Sizes()
	cs.saved[subjectID] = int64(rawSz) - int64(len(enc))
	return nil
}

// writeOrReplaceFile writes contents under parent as name, creating the
// file inode or truncating an existing one.
func writeOrReplaceFile(fs *inode.FS, parent inode.Ino, name, tag string, contents []byte) error {
	ino, err := fs.Lookup(parent, name)
	if errors.Is(err, inode.ErrChildNotFound) {
		ino, err = fs.AllocInode(inode.ModeFile, tag)
		if err != nil {
			return err
		}
		if len(contents) > 0 {
			if _, err := fs.WriteAt(ino, 0, contents); err != nil {
				_ = fs.FreeInode(ino)
				return err
			}
		}
		return fs.AddChild(parent, name, ino)
	}
	if err != nil {
		return err
	}
	if err := fs.Truncate(ino, 0); err != nil {
		return err
	}
	if len(contents) > 0 {
		if _, err := fs.WriteAt(ino, 0, contents); err != nil {
			return err
		}
	}
	return nil
}

// promoteIfCold rematerializes an archived record in the hot tier —
// transparent promotion on first read. Caller holds the subject's shard
// lock (either side) and has resolved tree, the record's type tree. It
// reports whether the record was promoted (false: not archived, or
// already promoted by a racing reader). The archive entry is retained for
// re-demotion dedup; hot wins on every read path.
func (s *Store) promoteIfCold(sr shardRef, r ref, tree inode.Ino) (bool, error) {
	cs := &s.cold.shards[sr.idx]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.init()
	if !cs.archived[r.pdid] {
		return false, nil
	}
	recName := strconv.FormatUint(r.recNo, 10)
	// Recheck under the cold mutex: a racing reader may have promoted
	// this record while we waited.
	if _, err := sr.fs.Lookup(tree, recName+dataSuffix); err == nil {
		return true, nil
	} else if !errors.Is(err, inode.ErrChildNotFound) {
		return false, err
	}
	arch, err := s.coldArchiveLoad(sr, r.subjectID)
	if err != nil {
		return false, err
	}
	parts, ok := arch.Get(r.pdid)
	if !ok || parts == nil || parts[coldPartData] == nil || parts[coldPartMem] == nil {
		// Stale index entry (e.g. a crash between archive write and index
		// maintenance); drop it and let the caller report ErrNoRecord.
		delete(cs.archived, r.pdid)
		return false, nil
	}
	// Hot-first rewrite, membrane last — the same visibility rule as
	// Insert. A crash mid-promotion leaves a partial hot copy shadowed by
	// the membrane-keyed listings and a complete archive entry.
	if _, err := s.writeFileInode(sr.fs, tree, recName+dataSuffix, "record", parts[coldPartData]); err != nil {
		return false, err
	}
	if sens := parts[coldPartSens]; sens != nil {
		if _, err := s.writeFileInode(sr.fs, tree, recName+sensSuffix, "record-sens", sens); err != nil {
			return false, err
		}
	}
	if _, err := s.writeFileInode(sr.fs, tree, recName+memSuffix, "membrane", parts[coldPartMem]); err != nil {
		return false, err
	}
	cs.touches[r.pdid] = s.clock.Now()
	s.bumpStats(func(st *Stats) { st.Promotions++ })
	return true, nil
}

// coldForget physically removes a record from the cold tier — Delete's
// counterpart for the archive copy. Caller holds the subject's shard write
// lock.
func (s *Store) coldForget(sr shardRef, r ref) error {
	cs := &s.cold.shards[sr.idx]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.init()
	delete(cs.touches, r.pdid)
	if !cs.archived[r.pdid] {
		return nil
	}
	arch, err := s.coldArchiveLoad(sr, r.subjectID)
	if err != nil {
		return err
	}
	arch.Remove(r.pdid)
	if err := s.coldArchiveStore(sr, cs, r.subjectID, arch); err != nil {
		return err
	}
	delete(cs.archived, r.pdid)
	return nil
}

// coldPDIDs returns the archived pdids of one subject (sorted), for the
// listings. Caller holds the subject's shard lock (either side).
func (s *Store) coldPDIDs(sr shardRef, subjectID string) []string {
	cs := &s.cold.shards[sr.idx]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var out []string
	for pdid := range cs.archived {
		if _, subj, _, err := SplitPDID(pdid); err == nil && subj == subjectID {
			out = append(out, pdid)
		}
	}
	sort.Strings(out)
	return out
}

// RepackCold runs one demotion pass at instant now: every record untouched
// for the configured ColdAfter threshold is moved out of the hot tier into
// its subject's archive (archive written durably before the hot files are
// removed). A zero threshold makes the pass a no-op. The pass scans shard
// by shard under the shard write locks, in deterministic order; the
// background coldtier.Repacker drives it, and experiments call it
// directly for deterministic single passes.
func (s *Store) RepackCold(tok *lsm.Token, now time.Time) (coldtier.PassStats, error) {
	var ps coldtier.PassStats
	if err := s.check(tok, lsm.OpWrite, "cold/repack"); err != nil {
		return ps, err
	}
	after := s.ColdAfter()
	if after == 0 {
		return ps, nil
	}
	cutoff := now.Add(-after)

	// Point-in-time subject listing, grouped by shard (same doctrine as
	// Subjects: the scan view is racy, the per-subject work is locked).
	byShard := make(map[uint32][]string)
	for i, fs := range s.fss {
		ents, err := fs.Children(s.subjectRoots[i])
		if err != nil {
			return ps, err
		}
		for _, e := range ents {
			sh := s.ShardOf(e.Name)
			byShard[sh] = append(byShard[sh], e.Name)
		}
	}
	shards := make([]uint32, 0, len(byShard))
	for sh := range byShard {
		shards = append(shards, sh)
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i] < shards[j] })

	for _, sh := range shards {
		subjects := byShard[sh]
		sort.Strings(subjects)
		sr := s.shardAt(sh)
		sr.lk.Lock()
		err := s.repackShardLocked(sr, subjects, cutoff, &ps)
		sr.lk.Unlock()
		if err != nil {
			return ps, err
		}
	}
	return ps, nil
}

// repackShardLocked demotes one shard's idle records; caller holds the
// shard write lock.
func (s *Store) repackShardLocked(sr shardRef, subjects []string, cutoff time.Time, ps *coldtier.PassStats) error {
	cs := &s.cold.shards[sr.idx]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.init()
	for _, subject := range subjects {
		subjIno, err := sr.fs.Lookup(sr.subjRoot, subject)
		if errors.Is(err, inode.ErrChildNotFound) {
			continue // raced a concurrent view; nothing hot here
		}
		if err != nil {
			return err
		}
		typeTrees, err := sr.fs.Children(subjIno)
		if err != nil {
			return err
		}
		sort.Slice(typeTrees, func(i, j int) bool { return typeTrees[i].Name < typeTrees[j].Name })
		type candidate struct {
			r    ref
			tree inode.Ino
		}
		var cands []candidate
		for _, tt := range typeTrees {
			recs, err := sr.fs.Children(tt.Ino)
			if err != nil {
				return err
			}
			names := make([]string, 0, len(recs))
			for _, rc := range recs {
				if name, ok := strings.CutSuffix(rc.Name, memSuffix); ok {
					names = append(names, name)
				}
			}
			sort.Strings(names)
			for _, name := range names {
				recNo, err := strconv.ParseUint(name, 10, 64)
				if err != nil {
					continue // not a record file
				}
				pdid := PDID(tt.Name, subject, recNo)
				if t, ok := cs.touches[pdid]; ok && t.After(cutoff) {
					continue // still hot
				}
				cands = append(cands, candidate{
					r:    ref{pdid: pdid, typeName: tt.Name, subjectID: subject, recNo: recNo},
					tree: tt.Ino,
				})
			}
		}
		if len(cands) == 0 {
			continue
		}
		arch, err := s.coldArchiveLoad(sr, subject)
		if err != nil {
			return err
		}
		_, stored0 := arch.Sizes()
		demoted, dedup, raw := 0, 0, 0
		for _, c := range cands {
			parts, err := s.readRecordPartsLocked(sr, c.r, c.tree)
			if err != nil {
				return err
			}
			d, rw := arch.Put(c.r.pdid, parts)
			dedup += d
			raw += rw
			demoted++
		}
		// Archive lands durably BEFORE any hot file goes away: a crash
		// between the two leaves the record in both tiers, and hot wins.
		if err := s.coldArchiveStore(sr, cs, subject, arch); err != nil {
			return err
		}
		for _, c := range cands {
			if err := s.removeRecordFilesLocked(sr, c.r, c.tree); err != nil {
				return err
			}
			cs.archived[c.r.pdid] = true
			delete(cs.touches, c.r.pdid)
		}
		_, stored1 := arch.Sizes()
		ps.Demoted += demoted
		ps.DedupHits += dedup
		ps.RawBytes += int64(raw)
		ps.StoredBytes += int64(stored1 - stored0)
		ps.Subjects++
		s.bumpStats(func(st *Stats) {
			st.Demotions += uint64(demoted)
			st.ColdDedupHits += uint64(dedup)
		})
	}
	return nil
}

// readRecordPartsLocked reads a hot record's stored bytes (data and mem,
// sens when present) for archiving; caller holds the shard write lock.
func (s *Store) readRecordPartsLocked(sr shardRef, r ref, tree inode.Ino) (map[string][]byte, error) {
	recName := strconv.FormatUint(r.recNo, 10)
	parts := make(map[string][]byte, 3)
	for _, spec := range []struct {
		suffix, part string
		required     bool
	}{
		{dataSuffix, coldPartData, true},
		{sensSuffix, coldPartSens, false},
		{memSuffix, coldPartMem, true},
	} {
		ino, err := sr.fs.Lookup(tree, recName+spec.suffix)
		if errors.Is(err, inode.ErrChildNotFound) {
			if spec.required {
				return nil, fmt.Errorf("%w: %s", ErrNoRecord, r.pdid)
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		b, err := readAll(sr.fs, ino)
		if err != nil {
			return nil, fmt.Errorf("dbfs: read %s%s: %w", r.pdid, spec.suffix, err)
		}
		parts[spec.part] = b
	}
	return parts, nil
}

// removeRecordFilesLocked unlinks and frees a hot record's files, membrane
// first (Delete's visibility rule: listings key on the membrane file).
// Caller holds the shard write lock.
func (s *Store) removeRecordFilesLocked(sr shardRef, r ref, tree inode.Ino) error {
	recName := strconv.FormatUint(r.recNo, 10)
	for _, suffix := range []string{memSuffix, sensSuffix, dataSuffix} {
		ino, err := sr.fs.Lookup(tree, recName+suffix)
		if errors.Is(err, inode.ErrChildNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		if err := sr.fs.RemoveChild(tree, recName+suffix); err != nil {
			return err
		}
		if suffix == memSuffix {
			if mc := s.mcache.Load(); mc != nil {
				mc.drop(sr.idx, r.pdid)
			}
		}
		if err := sr.fs.FreeInode(ino); err != nil {
			return err
		}
	}
	return nil
}

// ColdRaw returns a record's archived bytes — the ciphertext parts and
// membrane exactly as the archive holds them. Like RawCiphertext this is
// an export-capability operation: it is how audits verify that a shredded
// record's archived copy is undecodable. Fails ErrNoRecord when the
// record has no archive entry.
func (s *Store) ColdRaw(tok *lsm.Token, pdid string) (map[string][]byte, error) {
	if err := s.check(tok, lsm.OpExport, pdid); err != nil {
		return nil, err
	}
	r, _, err := s.resolve(pdid)
	if err != nil {
		return nil, err
	}
	sr := s.shardOf(r.subjectID)
	sr.lk.RLock()
	defer sr.lk.RUnlock()
	cs := &s.cold.shards[sr.idx]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.init()
	if !cs.archived[r.pdid] {
		return nil, fmt.Errorf("%w: %s not archived", ErrNoRecord, pdid)
	}
	arch, err := s.coldArchiveLoad(sr, r.subjectID)
	if err != nil {
		return nil, err
	}
	parts, ok := arch.Get(r.pdid)
	if !ok {
		return nil, fmt.Errorf("%w: %s not archived", ErrNoRecord, pdid)
	}
	return parts, nil
}

// coldGauges sums the index gauges for Stats(): archived entry count and
// bytes saved across every subject archive.
func (s *Store) coldGauges() (records uint64, saved int64) {
	for i := range s.cold.shards {
		cs := &s.cold.shards[i]
		cs.mu.Lock()
		records += uint64(len(cs.archived))
		for _, v := range cs.saved {
			saved += v
		}
		cs.mu.Unlock()
	}
	return records, saved
}

// --- membrane snapshots ---

// SnapshotMembranes captures an immutable point-in-time image of every
// record's membrane — hot and archived alike — under the given label:
// "what did consent look like at tick T?". Each membrane is sealed under
// its record's OWN data key before archiving, so the snapshot inherits
// crypto-shredding exactly: erase the record and its snapshot entries
// decode to nothing (ErrKeyDestroyed), no resurrection path. Records
// already erased at snapshot time are stored as erased markers. It
// returns the number of records captured (markers included).
//
// The image is per-subject consistent (each subject is captured under its
// shard lock); a snapshot racing writes to other subjects captures each
// subject's state at the instant its shard was visited.
func (s *Store) SnapshotMembranes(tok *lsm.Token, label string) (int, error) {
	if err := s.check(tok, lsm.OpExport, "snapshot/"+label); err != nil {
		return 0, err
	}
	if label == "" || strings.ContainsRune(label, '/') {
		return 0, fmt.Errorf("%w: bad snapshot label %q", ErrBadPDID, label)
	}
	s.cold.snapMu.Lock()
	defer s.cold.snapMu.Unlock()
	for i, fs := range s.fss {
		if _, err := fs.Lookup(s.cold.snapRoots[i], label); err == nil {
			return 0, fmt.Errorf("%w: %q", ErrSnapshotExists, label)
		} else if !errors.Is(err, inode.ErrChildNotFound) {
			return 0, err
		}
	}
	total := 0
	for i, fs := range s.fss {
		arch := coldtier.New()
		ents, err := fs.Children(s.subjectRoots[i])
		if err != nil {
			return 0, err
		}
		subjects := make([]string, 0, len(ents))
		for _, e := range ents {
			subjects = append(subjects, e.Name)
		}
		sort.Strings(subjects)
		for _, subject := range subjects {
			sr := s.shardOf(subject)
			sr.lk.RLock()
			n, err := s.snapshotSubjectLocked(sr, subject, arch)
			sr.lk.RUnlock()
			if err != nil {
				return 0, err
			}
			total += n
		}
		enc, err := arch.Encode()
		if err != nil {
			return 0, err
		}
		if _, err := s.writeFileInode(fs, s.cold.snapRoots[i], label, "snapshot:"+clipTag(label), enc); err != nil {
			return 0, fmt.Errorf("dbfs: write snapshot %q: %w", label, err)
		}
	}
	s.bumpStats(func(st *Stats) { st.SnapshotsTaken++ })
	return total, nil
}

// snapshotSubjectLocked captures one subject's membranes (hot then
// archived) into arch; caller holds the subject's shard read lock.
func (s *Store) snapshotSubjectLocked(sr shardRef, subject string, arch *coldtier.Archive) (int, error) {
	n := 0
	put := func(pdid string, memBytes []byte) error {
		sealed, err := s.vault.Seal(pdid, memBytes)
		if errors.Is(err, cryptoshred.ErrKeyDestroyed) {
			arch.MarkErased(pdid)
			n++
			return nil
		}
		if err != nil {
			return fmt.Errorf("dbfs: snapshot seal %s: %w", pdid, err)
		}
		arch.Put(pdid, map[string][]byte{coldPartMem: sealed})
		n++
		return nil
	}
	subjIno, err := sr.fs.Lookup(sr.subjRoot, subject)
	if err != nil && !errors.Is(err, inode.ErrChildNotFound) {
		return 0, err
	}
	if err == nil {
		typeTrees, err := sr.fs.Children(subjIno)
		if err != nil {
			return 0, err
		}
		sort.Slice(typeTrees, func(i, j int) bool { return typeTrees[i].Name < typeTrees[j].Name })
		for _, tt := range typeTrees {
			recs, err := sr.fs.Children(tt.Ino)
			if err != nil {
				return 0, err
			}
			names := make([]string, 0, len(recs))
			for _, rc := range recs {
				if name, ok := strings.CutSuffix(rc.Name, memSuffix); ok {
					names = append(names, name)
				}
			}
			sort.Strings(names)
			for _, name := range names {
				memIno, err := sr.fs.Lookup(tt.Ino, name+memSuffix)
				if err != nil {
					return 0, err
				}
				memBytes, err := readAll(sr.fs, memIno)
				if err != nil {
					return 0, err
				}
				if err := put(tt.Name+"/"+subject+"/"+name, memBytes); err != nil {
					return 0, err
				}
			}
		}
	}
	// Archived records not shadowed by a hot copy (arch.Has filters the
	// stale entries of promoted records, already captured above).
	cs := &s.cold.shards[sr.idx]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.init()
	var coldIDs []string
	for pdid := range cs.archived {
		if _, subj, _, err := SplitPDID(pdid); err == nil && subj == subject && !arch.Has(pdid) {
			coldIDs = append(coldIDs, pdid)
		}
	}
	if len(coldIDs) == 0 {
		return n, nil
	}
	sort.Strings(coldIDs)
	sub, err := s.coldArchiveLoad(sr, subject)
	if err != nil {
		return 0, err
	}
	for _, pdid := range coldIDs {
		parts, ok := sub.Get(pdid)
		if !ok || parts[coldPartMem] == nil {
			continue // stale index entry
		}
		if err := put(pdid, parts[coldPartMem]); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// Snapshots lists the snapshot labels, sorted.
func (s *Store) Snapshots(tok *lsm.Token) ([]string, error) {
	if err := s.check(tok, lsm.OpScan, "snapshots"); err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for i, fs := range s.fss {
		ents, err := fs.Children(s.cold.snapRoots[i])
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			seen[e.Name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// SnapshotMembrane reads one record's membrane as it was when the labeled
// snapshot was taken. After the record is erased this fails with a
// cryptoshred.ErrKeyDestroyed-wrapped error — the snapshot holds only
// ciphertext under the record's shredded key. A record that was already
// erased when the snapshot was taken fails the same way.
func (s *Store) SnapshotMembrane(tok *lsm.Token, label, pdid string) (*membrane.Membrane, error) {
	if err := s.check(tok, lsm.OpRead, "snapshot/"+label+"/"+pdid); err != nil {
		return nil, err
	}
	r, _, err := s.resolve(pdid)
	if err != nil {
		return nil, err
	}
	sr := s.shardOf(r.subjectID)
	fi := int(sr.idx) % len(s.fss)
	snapIno, err := s.fss[fi].Lookup(s.cold.snapRoots[fi], label)
	if errors.Is(err, inode.ErrChildNotFound) {
		return nil, fmt.Errorf("%w: %q", ErrNoSnapshot, label)
	}
	if err != nil {
		return nil, err
	}
	raw, err := readAll(s.fss[fi], snapIno)
	if err != nil {
		return nil, fmt.Errorf("dbfs: read snapshot %q: %w", label, err)
	}
	arch, err := coldtier.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("dbfs: snapshot %q: %w", label, err)
	}
	entry, ok := arch.Lookup(pdid)
	if !ok {
		return nil, fmt.Errorf("%w: %s not in snapshot %q", ErrNoRecord, pdid, label)
	}
	if entry.Erased {
		return nil, fmt.Errorf("dbfs: snapshot %q: %s erased before capture: %w", label, pdid, cryptoshred.ErrKeyDestroyed)
	}
	parts, _ := arch.Get(pdid)
	sealed := parts[coldPartMem]
	sr.lk.RLock()
	memBytes, err := s.vault.Open(pdid, sealed)
	sr.lk.RUnlock()
	if err != nil {
		return nil, fmt.Errorf("dbfs: snapshot %q: unseal %s: %w", label, pdid, err)
	}
	m, err := membrane.Decode(memBytes)
	if err != nil {
		return nil, fmt.Errorf("dbfs: snapshot %q: membrane %s: %w", label, pdid, err)
	}
	return m, nil
}
