package dbfs

// Tests for the decoded-membrane cache: coherence under concurrent
// read/mutate/erase pressure (run with -race), eviction under a tiny
// capacity, the version-bump invalidation paths, and the disable switch.

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/membrane"
)

const ctrKey = "stress-ctr"

// membraneCtr reads the monotonic stress counter a writer keeps in the
// membrane's collection map.
func membraneCtr(m *membrane.Membrane) int64 {
	v := m.Collection[ctrKey]
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return -1
	}
	return n
}

// TestCacheCoherenceStress hammers a handful of records — deliberately all
// on ONE subject, so they share a lock shard and a cache shard — with one
// mutating writer and several readers per record. The writer bumps a
// monotonic counter through MutateMembrane (interleaving data Updates to
// exercise the version-bump invalidation path) and publishes each committed
// value; every reader asserts it never observes a counter below the floor
// published before its read started — i.e. the cache can never serve a
// membrane older than the last committed mutation. A final eraser checks
// tombstones are immediately visible and never resurrected.
func TestCacheCoherenceStress(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	const (
		records = 4
		rounds  = 40
		readers = 3
	)
	subject := "stress-subject"
	pdids := make([]string, records)
	floors := make([]atomic.Int64, records)
	erased := make([]atomic.Bool, records)
	for i := range pdids {
		pdid, err := e.store.Insert(e.tok, "user", subject, aliceRecord(), nil)
		if err != nil {
			t.Fatal(err)
		}
		pdids[i] = pdid
	}
	var writerWG, readerWG sync.WaitGroup
	errs := make(chan error, records*(readers+1))
	stop := make(chan struct{})
	for i := range pdids {
		writerWG.Add(1)
		go func(i int) { // the record's single writer
			defer writerWG.Done()
			pdid := pdids[i]
			for r := 1; r <= rounds; r++ {
				want := int64(r - 1)
				if _, err := e.store.MutateMembrane(e.tok, pdid, func(m *membrane.Membrane) error {
					if got := membraneCtr(m); got != want {
						return fmt.Errorf("mutate %s: stored ctr %d, want %d (stale RMW base)", pdid, got, want)
					}
					if m.Collection == nil {
						m.Collection = make(map[string]string)
					}
					m.Collection[ctrKey] = strconv.FormatInt(int64(r), 10)
					m.Version++
					return nil
				}); err != nil {
					errs <- err
					return
				}
				floors[i].Store(int64(r))
				if r%8 == 0 {
					// Data update: bumps the record's cache version without
					// touching the membrane bytes.
					if err := e.store.Update(e.tok, pdid, aliceRecord()); err != nil {
						errs <- fmt.Errorf("update %s: %w", pdid, err)
						return
					}
				}
			}
		}(i)
		for rd := 0; rd < readers; rd++ {
			readerWG.Add(1)
			go func(i int) {
				defer readerWG.Done()
				pdid := pdids[i]
				for {
					select {
					case <-stop:
						return
					default:
					}
					floor := floors[i].Load()
					wasErased := erased[i].Load()
					m, err := e.store.GetMembrane(e.tok, pdid)
					if err != nil {
						errs <- fmt.Errorf("read %s: %w", pdid, err)
						return
					}
					if got := membraneCtr(m); got < floor {
						errs <- fmt.Errorf("read %s: stale membrane ctr %d < committed floor %d", pdid, got, floor)
						return
					}
					if wasErased && !m.Erased {
						errs <- fmt.Errorf("read %s: erasure tombstone resurrected", pdid)
						return
					}
				}
			}(i)
		}
	}
	writerWG.Wait() // writers done; readers still spinning
	for i, pdid := range pdids {
		if _, err := e.store.Erase(e.tok, pdid); err != nil {
			t.Fatal(err)
		}
		erased[i].Store(true)
	}
	close(stop)
	readerWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for i, pdid := range pdids {
		m, err := e.store.GetMembrane(e.tok, pdid)
		if err != nil {
			t.Fatal(err)
		}
		if got := membraneCtr(m); got != rounds {
			t.Errorf("record %d: final ctr %d, want %d", i, got, rounds)
		}
		if !m.Erased {
			t.Errorf("record %d: tombstone missing", i)
		}
	}
	if st := e.store.Stats(); st.CacheHits == 0 {
		t.Errorf("stress produced no cache hits: %+v", st)
	}
}

// TestCacheEvictionUnderCapacity squeezes many records of one subject (one
// cache shard) through a capacity-1-per-shard cache: evictions must occur,
// every read must still return the right membrane, and the counters must
// account for hits, misses and evictions.
func TestCacheEvictionUnderCapacity(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	e.store.ConfigureMembraneCache(1) // 1 entry per shard
	const records = 10
	subject := "evict-subject"
	pdids := make([]string, records)
	for i := range pdids {
		pdid, err := e.store.Insert(e.tok, "user", subject, aliceRecord(), nil)
		if err != nil {
			t.Fatal(err)
		}
		pdids[i] = pdid
	}
	for pass := 0; pass < 3; pass++ {
		for _, pdid := range pdids {
			m, err := e.store.GetMembrane(e.tok, pdid)
			if err != nil {
				t.Fatal(err)
			}
			if m.PDID != pdid {
				t.Fatalf("read %s got membrane of %s", pdid, m.PDID)
			}
		}
	}
	st := e.store.Stats()
	if st.CacheEvictions == 0 {
		t.Errorf("no evictions under capacity pressure: %+v", st)
	}
	if st.CacheMisses == 0 {
		t.Errorf("no misses under capacity pressure: %+v", st)
	}
	if want := uint64(3 * records); st.MembraneReads != want {
		t.Errorf("MembraneReads = %d, want %d", st.MembraneReads, want)
	}
	// Same-record rereads with ample capacity must hit.
	e.store.ConfigureMembraneCache(0)
	if _, err := e.store.GetMembrane(e.tok, pdids[0]); err != nil { // fill
		t.Fatal(err)
	}
	if _, err := e.store.GetMembrane(e.tok, pdids[0]); err != nil { // hit
		t.Fatal(err)
	}
	if st := e.store.Stats(); st.CacheHits == 0 {
		t.Errorf("reread did not hit: %+v", st)
	}
}

// TestCacheDeleteDropsEntry guards the no-resurrection rule on the physical
// delete path: a cached membrane must not outlive its record.
func TestCacheDeleteDropsEntry(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	pdid, err := e.store.Insert(e.tok, "user", "dora", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.store.GetMembrane(e.tok, pdid); err != nil { // cached
		t.Fatal(err)
	}
	if err := e.store.Delete(e.tok, pdid); err != nil {
		t.Fatal(err)
	}
	if _, err := e.store.GetMembrane(e.tok, pdid); !errors.Is(err, ErrNoRecord) && !errors.Is(err, ErrNoMembrane) {
		t.Fatalf("GetMembrane after delete err = %v, want no-record (cache served a ghost?)", err)
	}
}

// TestCacheDisabled checks the ablation switch: reads still work and the
// cache counters stay zero.
func TestCacheDisabled(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	e.store.ConfigureMembraneCache(-1)
	pdid, err := e.store.Insert(e.tok, "user", "eve", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m, err := e.store.GetMembrane(e.tok, pdid)
		if err != nil {
			t.Fatal(err)
		}
		if m.PDID != pdid {
			t.Fatalf("got membrane of %s", m.PDID)
		}
	}
	st := e.store.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEvictions != 0 {
		t.Errorf("disabled cache counted activity: %+v", st)
	}
	if st.MembraneReads != 3 {
		t.Errorf("MembraneReads = %d, want 3", st.MembraneReads)
	}
}

// TestGetMembranesBatch covers the batched read path: order preserved,
// identity right, and one bad pdid fails the batch.
func TestGetMembranesBatch(t *testing.T) {
	e := newEnv(t)
	e.mustCreateUser(t)
	var pdids []string
	for _, subject := range []string{"s1", "s2", "s3"} {
		for i := 0; i < 2; i++ {
			pdid, err := e.store.Insert(e.tok, "user", subject, aliceRecord(), nil)
			if err != nil {
				t.Fatal(err)
			}
			pdids = append(pdids, pdid)
		}
	}
	ms, err := e.store.GetMembranes(e.tok, pdids)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(pdids) {
		t.Fatalf("got %d membranes, want %d", len(ms), len(pdids))
	}
	for i, m := range ms {
		if m.PDID != pdids[i] {
			t.Errorf("membrane %d: %s, want %s", i, m.PDID, pdids[i])
		}
	}
	if _, err := e.store.GetMembranes(e.tok, append(pdids, "user/ghost/99")); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("batch with ghost pdid err = %v, want ErrNoRecord", err)
	}
}
