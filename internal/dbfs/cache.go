package dbfs

// The membrane cache memoizes decoded *membrane.Membrane values so the read
// path — ded_load_membrane, the rights engine's per-record scans, and the
// consent mutators' read-modify-write — stops paying an inode walk plus a
// JSON decode for every membrane fetch. Entries are keyed by pdid and
// stamped with a per-record version; every membrane-affecting mutation bumps
// the version under the subject's shard write lock and either writes the new
// decoded value through (membrane writes) or drops the entry (data updates,
// physical deletes). Readers fill the cache under the shard read lock, so a
// fill always captures the freshest committed state: no writer can run
// concurrently, and two racing readers fill the same value. A cached
// membrane is never handed out by pointer — get returns a clone, and put
// stores one — so caller-side mutation (MutateMembrane's mutate func, the
// builtins' WriteCtx) cannot alias the cached copy.
//
// The cache is sharded like the store's lock table (one cache shard per
// subject shard, same index), so cache maintenance for a record is
// serialized by the lock its mutators already hold and a hot read path never
// funnels through one global cache mutex. Capacity is bounded per shard with
// LRU eviction; hit/miss/eviction counters surface in dbfs.Stats.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/membrane"
)

// DefaultMembraneCacheCap is the store-wide entry bound used when the cache
// capacity is left unconfigured.
const DefaultMembraneCacheCap = 8192

// cacheEntry is one cached decoded membrane with the record version it was
// captured at.
type cacheEntry struct {
	pdid string
	ver  uint64
	m    *membrane.Membrane
}

// cacheShard is the per-subject-shard slice of the cache. lru holds
// *cacheEntry values, most recently used at the front.
type cacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List
	// ver is the per-record mutation counter. It outlives evictions (an
	// evicted entry re-fills at the current version) and is deleted only
	// when the record itself is physically deleted, so it is bounded by the
	// shard's live record count.
	ver map[string]uint64
}

// membraneCache is the store-wide cache: one cache shard per subject
// shard (same count and index as the store's lock table) plus counters.
type membraneCache struct {
	shards    []cacheShard
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// newMembraneCache builds a cache bounding roughly capacity entries across
// nshards shards.
func newMembraneCache(capacity, nshards int) *membraneCache {
	if capacity <= 0 {
		capacity = DefaultMembraneCacheCap
	}
	if nshards < 1 {
		nshards = 1
	}
	per := (capacity + nshards - 1) / nshards
	if per < 1 {
		per = 1
	}
	c := &membraneCache{shards: make([]cacheShard, nshards)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap:     per,
			entries: make(map[string]*list.Element),
			lru:     list.New(),
			ver:     make(map[string]uint64),
		}
	}
	return c
}

// resize re-bounds the cache to roughly capacity entries in place,
// preserving entries, versions and counters: each shard's cap is adjusted
// under its own mutex and overflow evicts from the LRU tail. Preserving
// entries matters to the control plane — a capacity controller steering on
// hit rate would oscillate forever if every adjustment wiped the cache it
// is measuring.
func (c *membraneCache) resize(capacity int) {
	if capacity <= 0 {
		capacity = DefaultMembraneCacheCap
	}
	per := (capacity + len(c.shards) - 1) / len(c.shards)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		cs := &c.shards[i]
		cs.mu.Lock()
		cs.cap = per
		for cs.lru.Len() > cs.cap {
			cs.removeLocked(cs.lru.Back())
			c.evictions.Add(1)
		}
		cs.mu.Unlock()
	}
}

// get returns a clone of the cached membrane for pdid, or nil on a miss
// (absent, stale-versioned, or evicted). Caller holds the subject's shard
// lock (either side).
func (c *membraneCache) get(shard uint32, pdid string) *membrane.Membrane {
	cs := &c.shards[shard]
	cs.mu.Lock()
	el, ok := cs.entries[pdid]
	if ok {
		e := el.Value.(*cacheEntry)
		if e.ver == cs.ver[pdid] {
			cs.lru.MoveToFront(el)
			m := e.m
			cs.mu.Unlock()
			c.hits.Add(1)
			// Clone outside the shard mutex: cached values are immutable
			// once stored, only the pointer needs the lock.
			return m.Clone()
		}
		// Version moved under us (a mutator invalidated without writing
		// through); drop the stale entry.
		cs.removeLocked(el)
	}
	cs.mu.Unlock()
	c.misses.Add(1)
	return nil
}

// fill records a read-side miss resolution: m (already private to the
// cache's caller) is cloned in at the record's current version. Caller holds
// the subject's shard lock, so m is the freshest committed state.
func (c *membraneCache) fill(shard uint32, pdid string, m *membrane.Membrane) {
	c.store(shard, pdid, m, false)
}

// writeThrough records a committed membrane write: the record's version is
// bumped and the new value cached. Caller holds the shard write lock.
func (c *membraneCache) writeThrough(shard uint32, pdid string, m *membrane.Membrane) {
	c.store(shard, pdid, m, true)
}

func (c *membraneCache) store(shard uint32, pdid string, m *membrane.Membrane, bump bool) {
	cp := m.Clone()
	cs := &c.shards[shard]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if bump {
		cs.ver[pdid]++
	}
	e := &cacheEntry{pdid: pdid, ver: cs.ver[pdid], m: cp}
	if el, ok := cs.entries[pdid]; ok {
		el.Value = e
		cs.lru.MoveToFront(el)
		return
	}
	cs.entries[pdid] = cs.lru.PushFront(e)
	for cs.lru.Len() > cs.cap {
		cs.removeLocked(cs.lru.Back())
		c.evictions.Add(1)
	}
}

// invalidate bumps the record's version and drops any cached entry, without
// supplying a replacement (data updates, whose membrane bytes are unchanged
// but whose record state moved). Caller holds the shard write lock.
func (c *membraneCache) invalidate(shard uint32, pdid string) {
	cs := &c.shards[shard]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.ver[pdid]++
	if el, ok := cs.entries[pdid]; ok {
		cs.removeLocked(el)
	}
}

// drop forgets a physically deleted record entirely (entry and version).
// Caller holds the shard write lock.
func (c *membraneCache) drop(shard uint32, pdid string) {
	cs := &c.shards[shard]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if el, ok := cs.entries[pdid]; ok {
		cs.removeLocked(el)
	}
	delete(cs.ver, pdid)
}

func (cs *cacheShard) removeLocked(el *list.Element) {
	e := cs.lru.Remove(el).(*cacheEntry)
	delete(cs.entries, e.pdid)
}

// counters snapshots the hit/miss/eviction totals.
func (c *membraneCache) counters() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
