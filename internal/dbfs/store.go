package dbfs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cryptoshred"
	"repro/internal/inode"
	"repro/internal/lsm"
	"repro/internal/membrane"
	"repro/internal/simclock"
	"repro/internal/wal"
)

// Tree and file names inside the DBFS inode layout.
const (
	schemaRootName  = "schema"
	subjectRootName = "subjects"
	formatRootName  = "format"
	tablesRootName  = "tables"

	defFileName = "def"
	seqFileName = "seq"

	// shardCfgName is the per-instance config file at each FS root,
	// recording (instance count, instance index). Open validates it so a
	// remount with a different instance count — which would silently
	// misroute every shard (shard mod N changes) — fails loudly instead.
	shardCfgName = "shardcfg"

	dataSuffix = ".data"
	sensSuffix = ".sens"
	memSuffix  = ".mem"

	// sensKeySuffix derives the separate data key for sensitive fields.
	sensKeySuffix = "#sens"
)

// Sentinel errors.
var (
	// ErrTypeExists reports CreateType over an existing type.
	ErrTypeExists = errors.New("dbfs: type already exists")
	// ErrNoType reports an operation on an undeclared type.
	ErrNoType = errors.New("dbfs: no such type")
	// ErrNoRecord reports an unknown pdid.
	ErrNoRecord = errors.New("dbfs: no such record")
	// ErrBadPDID reports a malformed pdid.
	ErrBadPDID = errors.New("dbfs: malformed pdid")
	// ErrNoMembrane reports a record missing its membrane — forbidden by
	// enforcement rule 3; it can only arise from on-disk corruption.
	ErrNoMembrane = errors.New("dbfs: record has no membrane")
)

// Stats counts DBFS activity for the experiment harness. MembraneReads
// counts every successful membrane fetch; CacheHits/CacheMisses split those
// between cache-served and decoded-from-disk, and CacheEvictions counts
// entries displaced by the capacity bound.
type Stats struct {
	TypesCreated   uint64
	Inserts        uint64
	Updates        uint64
	DataReads      uint64
	MembraneReads  uint64
	MembraneWrites uint64
	Erasures       uint64
	Deletes        uint64
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64

	// Block buffer cache counters, summed across every backing filesystem
	// instance's blockdev.Cached wrapper; all zero when the block cache is
	// disabled.
	BlockCacheHits      uint64
	BlockCacheMisses    uint64
	BlockCacheEvictions uint64
	BlockWritebacks     uint64

	// Cold-tier counters (see cold.go): Demotions counts records repacked
	// hot → archive, Promotions records rematerialized on first read,
	// ColdDedupHits archive parts that content-addressed onto existing
	// chunks, SnapshotsTaken membrane snapshots captured. ColdRecords and
	// ColdBytesSaved are gauges snapshotted by Stats(): entries currently
	// archived, and the raw bytes those entries represent minus the
	// encoded archive bytes holding them (dedup + compression win; can go
	// negative for tiny archives, where container overhead dominates).
	Demotions      uint64
	Promotions     uint64
	ColdDedupHits  uint64
	SnapshotsTaken uint64
	ColdRecords    uint64
	ColdBytesSaved int64
}

// formatEntry is one row of the format tree: the session-loaded descriptor
// of how a type's record bytes are laid out (§3's "dedicated set of inodes
// ... accessed only once ... during a given live session").
type formatEntry struct {
	Field     string    `json:"field"`
	Type      FieldType `json:"type"`
	Sensitive bool      `json:"sensitive,omitempty"`
}

// DefaultShards sizes the subject-shard lock table when no explicit count
// is configured at Create. Subjects hash onto shards, so operations on
// distinct subjects almost never contend; the SC3 shard-collision sweep
// (TestShardBalanceSweep) picked 64 as the largest count keeping
// worst-shard skew near 1x at realistic subject populations.
const DefaultShards = 64

// hashSubject is the raw FNV-1a hash of a subject ID (inline: this runs on
// every record operation, so it must not allocate).
func hashSubject(subjectID string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(subjectID); i++ {
		h = (h ^ uint32(subjectID[i])) * 16777619
	}
	return h
}

// SubjectHash is the raw FNV-1a hash of a subject ID — a pure function of
// the ID, independent of any store's shard geometry. Cross-store placement
// (the cluster router's node choice) MUST derive from this full-entropy
// value, never from ShardOf: `hash % shards` discards all but log2(shards)
// bits and couples placement to the mount-time shard count, so a remount
// with a different Options.Shards would silently re-home subjects.
func SubjectHash(subjectID string) uint32 { return hashSubject(subjectID) }

// ShardOf reports the subject-shard index a subject ID hashes to under the
// DEFAULT geometry (DefaultShards). Stores mounted with a custom shard
// count route through the Store.ShardOf method instead; geometry-
// independent placement routes on SubjectHash.
func ShardOf(subjectID string) uint32 { return hashSubject(subjectID) % DefaultShards }

// Store is the mounted DBFS. All methods demand an LSM token carrying
// CapDBFS. Safe for concurrent use.
//
// Locking is subject-sharded: per-record state (the record inodes reachable
// through a subject's trees) is guarded by the shard lock of its subject ID,
// so the PD hot path for distinct subjects runs in parallel — subjects are
// the natural unit of parallelism because every DED executes on behalf of
// exactly one subject's data at a time. Schema, format and sequence state is
// cross-subject and stays behind a narrow global metaMu. Lock order:
// shard → metaMu → statsMu (never the reverse). Insert seals its record
// before taking any Store lock; reads, updates and erasures run their
// crypto under the subject's shard lock (blocking only that shard), because
// sealing/unsealing there must serialize with key shredding.
//
// Storage is shard-routed too: each subject shard maps to
// one of N inode filesystem instances (shard mod N), each with its own
// superblock, allocation bitmap and journal — typically one
// blockdev.Partition of the PD disk per instance. Shard-disjoint inserts
// therefore never contend on a filesystem lock or a journal, which removes
// the storage-layer serialization point left after subject sharding. Every
// instance carries its own "subjects" and "tables" trees; cross-subject
// metadata (schema defs, formats, seq counters) lives only on instance 0.
type Store struct {
	fss   []*inode.FS
	guard *lsm.Guard
	vault *cryptoshred.Vault
	clock simclock.Clock

	// metaMu guards the type-level maps and the persisted seq files.
	metaMu  sync.RWMutex
	schemas map[string]*Schema
	formats map[string][]formatEntry
	seqs    map[string]uint64
	// seqHighs is each type's durably reserved id watermark: ids up to
	// seqHighs[t] may be handed out without touching the disk. See
	// nextSeq.
	seqHighs map[string]uint64

	// nshards is the subject-shard count, fixed at Create and persisted in
	// the per-instance shard config (remounts validate it); shards is the
	// lock table it sizes. See shardOf.
	nshards uint32
	shards  []sync.RWMutex

	// mcache memoizes decoded membranes per record (see cache.go); a nil
	// pointer means caching is disabled. Entries are maintained under the
	// shard locks, so readers can never observe a membrane older than the
	// last committed mutation; the pointer itself is atomic so the cache
	// can be resized (in place, entries preserved) or enabled/disabled at
	// runtime — a swapped-in cache starts empty and refills under the
	// shard locks, which keeps the coherence argument intact. mcacheCap
	// remembers the configured capacity (-1 disabled) for snapshots.
	mcache    atomic.Pointer[membraneCache]
	mcacheCap atomic.Int64

	// expiryNote, when set, observes the retention deadline
	// (CreatedAt+TTL) of every membrane as it is persisted — the feed for
	// the rights engine's deadline-aware sweeper. Set once via
	// SetExpiryNotifier before concurrent use; called under the subject's
	// shard write lock, so it must be fast and must not call back into
	// the store.
	expiryNote func(subjectID string, expiry time.Time)

	// scanLocks counts, per subject shard, the shard-lock passes taken by
	// subject-scoped scans (ListBySubject and batched membrane fetches).
	// The retention sweeper's skip-untouched-shards property is asserted
	// against these counters.
	scanLocks []atomic.Uint64

	// cold is the cold-tier state: idle threshold, per-shard archive index
	// and touch clocks, and the per-instance cold/snapshot tree roots. See
	// cold.go; its per-shard mutex is a leaf under the shard lock (lock
	// order shard → cold.mu → statsMu).
	cold coldState

	statsMu sync.Mutex
	stats   Stats

	schemaRoot inode.Ino // on fss[0]
	formatRoot inode.Ino // on fss[0]
	// subjectRoots[i] / tablesRoots[i] are the per-instance major trees.
	subjectRoots []inode.Ino
	tablesRoots  []inode.Ino
}

// shardRef is one subject's routing: its shard index, lock shard and the
// filesystem instance (with that instance's major-tree roots) holding its
// records.
type shardRef struct {
	idx        uint32
	lk         *sync.RWMutex
	fs         *inode.FS
	subjRoot   inode.Ino
	tablesRoot inode.Ino
	coldRoot   inode.Ino
}

// NumShards reports the store's subject-shard count — the size callers
// with shard-congruent state (the rights due-index) size themselves to.
func (s *Store) NumShards() int { return int(s.nshards) }

// ShardOf reports the subject-shard index a subject ID hashes to under
// this store's geometry. Stable across remounts (the shard count is
// persisted and validated at Open).
func (s *Store) ShardOf(subjectID string) uint32 {
	return hashSubject(subjectID) % s.nshards
}

// shardAt resolves a shard index to its lock and filesystem instance.
func (s *Store) shardAt(shard uint32) shardRef {
	fi := int(shard) % len(s.fss)
	return shardRef{
		idx:        shard,
		lk:         &s.shards[shard],
		fs:         s.fss[fi],
		subjRoot:   s.subjectRoots[fi],
		tablesRoot: s.tablesRoots[fi],
		coldRoot:   s.cold.roots[fi],
	}
}

// shardOf maps a subject ID onto its lock shard and filesystem instance.
func (s *Store) shardOf(subjectID string) shardRef {
	return s.shardAt(s.ShardOf(subjectID))
}

// metaFS is the instance holding cross-subject metadata.
func (s *Store) metaFS() *inode.FS { return s.fss[0] }

// FSInstances reports how many inode filesystem instances back the store.
func (s *Store) FSInstances() int { return len(s.fss) }

// bumpStats applies a counter mutation under the stats lock.
func (s *Store) bumpStats(f func(*Stats)) {
	s.statsMu.Lock()
	f(&s.stats)
	s.statsMu.Unlock()
}

// Create formats the DBFS trees across freshly formatted inode filesystem
// instances with the default shard count. See CreateShards.
func Create(fss []*inode.FS, guard *lsm.Guard, vault *cryptoshred.Vault, clock simclock.Clock) (*Store, error) {
	return CreateShards(fss, guard, vault, clock, DefaultShards)
}

// CreateShards formats the DBFS trees across freshly formatted inode
// filesystem instances with an explicit subject-shard count (0 means
// DefaultShards). Every instance gets its own "subjects" and "tables"
// major trees; instance 0 additionally holds the schema and format trees.
// The subject-shard → instance routing is shard mod len(fss), so the shard
// and instance counts are persisted per instance and must stay the same
// across remounts of the same devices (Open validates both). shards must
// be at least len(fss), or trailing instances could never receive traffic.
func CreateShards(fss []*inode.FS, guard *lsm.Guard, vault *cryptoshred.Vault, clock simclock.Clock, shards int) (*Store, error) {
	if len(fss) == 0 {
		return nil, fmt.Errorf("dbfs: need at least one filesystem instance")
	}
	if shards == 0 {
		shards = DefaultShards
	}
	if shards < len(fss) {
		return nil, fmt.Errorf("dbfs: shard count %d below instance count %d — instances would be unreachable", shards, len(fss))
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	s := newStore(fss, guard, vault, clock, uint32(shards))
	for _, spec := range []struct {
		name string
		dst  *inode.Ino
	}{
		{schemaRootName, &s.schemaRoot},
		{formatRootName, &s.formatRoot},
	} {
		ino, err := s.metaFS().AllocInode(inode.ModeTree, spec.name+"-root")
		if err != nil {
			return nil, fmt.Errorf("dbfs: create %s tree: %w", spec.name, err)
		}
		if err := s.metaFS().AddChild(inode.RootIno, spec.name, ino); err != nil {
			return nil, fmt.Errorf("dbfs: link %s tree: %w", spec.name, err)
		}
		*spec.dst = ino
	}
	for i, fs := range fss {
		for _, spec := range []struct {
			name string
			dst  *inode.Ino
		}{
			{subjectRootName, &s.subjectRoots[i]},
			{tablesRootName, &s.tablesRoots[i]},
		} {
			ino, err := fs.AllocInode(inode.ModeTree, spec.name+"-root")
			if err != nil {
				return nil, fmt.Errorf("dbfs: create %s tree on instance %d: %w", spec.name, i, err)
			}
			if err := fs.AddChild(inode.RootIno, spec.name, ino); err != nil {
				return nil, fmt.Errorf("dbfs: link %s tree on instance %d: %w", spec.name, i, err)
			}
			*spec.dst = ino
		}
		var cfg [24]byte
		binary.LittleEndian.PutUint64(cfg[0:], uint64(len(fss)))
		binary.LittleEndian.PutUint64(cfg[8:], uint64(i))
		binary.LittleEndian.PutUint64(cfg[16:], uint64(shards))
		if _, err := s.writeFileInode(fs, inode.RootIno, shardCfgName, "shard-config", cfg[:]); err != nil {
			return nil, fmt.Errorf("dbfs: create shard config on instance %d: %w", i, err)
		}
	}
	if err := s.ensureColdRoots(); err != nil {
		return nil, err
	}
	return s, nil
}

// newStore builds the in-memory Store shell for nshards subject shards.
func newStore(fss []*inode.FS, guard *lsm.Guard, vault *cryptoshred.Vault, clock simclock.Clock, nshards uint32) *Store {
	s := &Store{
		fss:          fss,
		guard:        guard,
		vault:        vault,
		clock:        clock,
		schemas:      make(map[string]*Schema),
		formats:      make(map[string][]formatEntry),
		seqs:         make(map[string]uint64),
		seqHighs:     make(map[string]uint64),
		subjectRoots: make([]inode.Ino, len(fss)),
		tablesRoots:  make([]inode.Ino, len(fss)),
		nshards:      nshards,
		shards:       make([]sync.RWMutex, nshards),
		scanLocks:    make([]atomic.Uint64, nshards),
	}
	s.cold.shards = make([]coldShard, nshards)
	s.mcache.Store(newMembraneCache(0, int(nshards)))
	s.mcacheCap.Store(DefaultMembraneCacheCap)
	return s
}

// readShardCfg loads one instance's persisted shard config. The current
// format is 24 bytes (instance count, instance index, subject-shard
// count); 16-byte configs written before the shard count was persisted are
// accepted and mean DefaultShards.
func readShardCfg(fs *inode.FS) (count, idx, shards uint64, err error) {
	cfgIno, err := fs.Lookup(inode.RootIno, shardCfgName)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("shard config: %w", err)
	}
	raw, err := readAll(fs, cfgIno)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad shard config: %w", err)
	}
	switch len(raw) {
	case 16:
		shards = DefaultShards
	case 24:
		shards = binary.LittleEndian.Uint64(raw[16:])
		if shards == 0 {
			return 0, 0, 0, fmt.Errorf("bad shard config: zero shard count")
		}
	default:
		return 0, 0, 0, fmt.Errorf("bad shard config: %d bytes, want 16 or 24", len(raw))
	}
	return binary.LittleEndian.Uint64(raw[0:]), binary.LittleEndian.Uint64(raw[8:]), shards, nil
}

// Open mounts an existing DBFS from its mounted instances (same order and
// count as at Create): it reads the persisted shard geometry (instance
// count and subject-shard count — both fixed at Create, both validated on
// every instance so remounts can never silently re-route subjects),
// resolves the major trees on every instance, then loads every schema and
// the format descriptors from instance 0 (the once-per-session read).
func Open(fss []*inode.FS, guard *lsm.Guard, vault *cryptoshred.Vault, clock simclock.Clock) (*Store, error) {
	if len(fss) == 0 {
		return nil, fmt.Errorf("dbfs: need at least one filesystem instance")
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	_, _, nsh, err := readShardCfg(fss[0])
	if err != nil {
		return nil, fmt.Errorf("dbfs: open instance 0: %w", err)
	}
	s := newStore(fss, guard, vault, clock, uint32(nsh))
	if s.schemaRoot, err = s.metaFS().Lookup(inode.RootIno, schemaRootName); err != nil {
		return nil, fmt.Errorf("dbfs: open: %w", err)
	}
	if s.formatRoot, err = s.metaFS().Lookup(inode.RootIno, formatRootName); err != nil {
		return nil, fmt.Errorf("dbfs: open: %w", err)
	}
	for i, fs := range fss {
		if s.subjectRoots[i], err = fs.Lookup(inode.RootIno, subjectRootName); err != nil {
			return nil, fmt.Errorf("dbfs: open instance %d: %w", i, err)
		}
		if s.tablesRoots[i], err = fs.Lookup(inode.RootIno, tablesRootName); err != nil {
			return nil, fmt.Errorf("dbfs: open instance %d: %w", i, err)
		}
		count, idx, sh, err := readShardCfg(fs)
		if err != nil {
			return nil, fmt.Errorf("dbfs: open instance %d: %w", i, err)
		}
		if count != uint64(len(fss)) || idx != uint64(i) {
			return nil, fmt.Errorf("dbfs: open instance %d: shard config says instance %d of %d, got %d of %d — shard routing would change",
				i, idx, count, i, len(fss))
		}
		if sh != nsh {
			return nil, fmt.Errorf("dbfs: open instance %d: shard config says %d subject shards, instance 0 says %d — shard routing would change",
				i, sh, nsh)
		}
	}
	meta := s.metaFS()
	tables, err := meta.Children(s.schemaRoot)
	if err != nil {
		return nil, fmt.Errorf("dbfs: open: list tables: %w", err)
	}
	for _, tb := range tables {
		defIno, err := meta.Lookup(tb.Ino, defFileName)
		if err != nil {
			return nil, fmt.Errorf("dbfs: open table %q: %w", tb.Name, err)
		}
		raw, err := readAll(meta, defIno)
		if err != nil {
			return nil, fmt.Errorf("dbfs: open table %q: %w", tb.Name, err)
		}
		sch, err := DecodeSchema(raw)
		if err != nil {
			return nil, fmt.Errorf("dbfs: open table %q: %w", tb.Name, err)
		}
		s.schemas[sch.Name] = sch
		seqIno, err := meta.Lookup(tb.Ino, seqFileName)
		if err != nil {
			return nil, fmt.Errorf("dbfs: open table %q seq: %w", tb.Name, err)
		}
		seqRaw, err := readAll(meta, seqIno)
		if err != nil || len(seqRaw) != 8 {
			return nil, fmt.Errorf("dbfs: open table %q seq: %w", tb.Name, err)
		}
		// The persisted value is the reserved watermark (see nextSeq):
		// resuming from it skips unused leased ids but never reuses one.
		s.seqs[sch.Name] = binary.LittleEndian.Uint64(seqRaw)
		s.seqHighs[sch.Name] = s.seqs[sch.Name]
	}
	// Format descriptors: the single per-session read of the format tree.
	fmts, err := meta.Children(s.formatRoot)
	if err != nil {
		return nil, fmt.Errorf("dbfs: open formats: %w", err)
	}
	for _, fe := range fmts {
		raw, err := readAll(meta, fe.Ino)
		if err != nil {
			return nil, fmt.Errorf("dbfs: open format %q: %w", fe.Name, err)
		}
		var entries []formatEntry
		if err := json.Unmarshal(raw, &entries); err != nil {
			return nil, fmt.Errorf("dbfs: decode format %q: %w", fe.Name, err)
		}
		s.formats[fe.Name] = entries
	}
	// Cold tier: resolve (or, on volumes formatted before the tier
	// existed, create) the cold and snapshot trees, then rebuild the
	// in-memory archive index — the tier's once-per-session read.
	if err := s.ensureColdRoots(); err != nil {
		return nil, err
	}
	if err := s.rebuildColdIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// readAll reads the full contents of a file inode.
func readAll(fs *inode.FS, ino inode.Ino) ([]byte, error) {
	info, err := fs.Stat(ino)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, info.Size)
	if _, err := fs.ReadAt(ino, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFileInode creates a file inode on fs with contents, tagged tag,
// linked under parent as name.
func (s *Store) writeFileInode(fs *inode.FS, parent inode.Ino, name, tag string, contents []byte) (inode.Ino, error) {
	ino, err := fs.AllocInode(inode.ModeFile, tag)
	if err != nil {
		return 0, err
	}
	if len(contents) > 0 {
		if _, err := fs.WriteAt(ino, 0, contents); err != nil {
			_ = fs.FreeInode(ino)
			return 0, err
		}
	}
	if err := fs.AddChild(parent, name, ino); err != nil {
		_ = fs.FreeInode(ino)
		return 0, err
	}
	return ino, nil
}

// check mediates an access through the LSM guard.
func (s *Store) check(tok *lsm.Token, op lsm.Operation, id string) error {
	return s.guard.Check(tok, lsm.CapDBFS, op, lsm.ObjectRef{Class: "dbfs", ID: id})
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.statsMu.Lock()
	st := s.stats
	s.statsMu.Unlock()
	if mc := s.mcache.Load(); mc != nil {
		st.CacheHits, st.CacheMisses, st.CacheEvictions = mc.counters()
	}
	for _, fs := range s.fss {
		ds := fs.CacheStats()
		st.BlockCacheHits += ds.CacheHits
		st.BlockCacheMisses += ds.CacheMisses
		st.BlockCacheEvictions += ds.CacheEvictions
		st.BlockWritebacks += ds.Writebacks
	}
	st.ColdRecords, st.ColdBytesSaved = s.coldGauges()
	return st
}

// SetExpiryNotifier registers fn to observe the retention deadline
// (CreatedAt+TTL) of every membrane DBFS persists — inserts and membrane
// rewrites alike. Only membranes with a TTL are reported. fn runs under
// the subject's shard write lock: it must be fast and must not call back
// into the store. Register before concurrent use; the rights engine wires
// its retention due-index here at boot.
func (s *Store) SetExpiryNotifier(fn func(subjectID string, expiry time.Time)) {
	s.expiryNote = fn
}

// noteExpiry reports a freshly persisted membrane's retention deadline to
// the notifier; caller holds the subject's shard write lock.
func (s *Store) noteExpiry(m *membrane.Membrane) {
	if s.expiryNote != nil && m.TTL > 0 && !m.CreatedAt.IsZero() {
		s.expiryNote(m.SubjectID, m.CreatedAt.Add(m.TTL))
	}
}

// ShardScans reports, per subject shard, how many shard-locked scan
// passes (ListBySubject calls and per-shard GetMembranes groups) have
// touched it. A shard the retention sweeper skipped shows an unchanged
// counter — the observable form of "no due records ⇒ no shard lock".
func (s *Store) ShardScans() []uint64 {
	out := make([]uint64, len(s.scanLocks))
	for i := range s.scanLocks {
		out[i] = s.scanLocks[i].Load()
	}
	return out
}

// ConfigureMembraneCache resizes (or disables) the decoded-membrane cache:
// capacity 0 restores the default bound (DefaultMembraneCacheCap), a
// negative capacity disables caching entirely — the ablation configuration
// benchmarks compare against. Safe at runtime: resizing an enabled cache
// preserves its entries (per-shard cap adjustment with LRU overflow
// eviction), while disable/enable transitions swap the cache pointer —
// a freshly enabled cache starts empty and refills under the shard locks.
//
// Deprecated: when the store is owned by a core.System, tune it through
// System.ApplyTuning (core.Tuning.MembraneCache). Direct use remains
// correct for standalone stores and ablation tests.
func (s *Store) ConfigureMembraneCache(capacity int) {
	if capacity < 0 {
		s.mcacheCap.Store(-1)
		s.mcache.Store(nil)
		return
	}
	eff := capacity
	if eff == 0 {
		eff = DefaultMembraneCacheCap
	}
	s.mcacheCap.Store(int64(eff))
	if mc := s.mcache.Load(); mc != nil {
		mc.resize(eff)
		return
	}
	s.mcache.Store(newMembraneCache(eff, int(s.nshards)))
}

// MembraneCacheCap reports the configured membrane-cache capacity:
// -1 when disabled, otherwise the effective store-wide entry bound.
func (s *Store) MembraneCacheCap() int { return int(s.mcacheCap.Load()) }

// schemaFor resolves a type's schema under the meta lock. Schemas are
// immutable once created, so the returned pointer is safe to use lock-free.
func (s *Store) schemaFor(typeName string) (*Schema, error) {
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	sch, ok := s.schemas[typeName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoType, typeName)
	}
	return sch, nil
}

// CreateType declares a new PD type: it validates the schema, creates the
// table inodes in the schema tree, and records the format descriptor.
func (s *Store) CreateType(tok *lsm.Token, sch *Schema) error {
	if err := s.check(tok, lsm.OpCreate, "type/"+sch.Name); err != nil {
		return err
	}
	if err := sch.Validate(); err != nil {
		return err
	}
	if strings.ContainsRune(sch.Name, '/') {
		return fmt.Errorf("%w: type name %q contains '/'", ErrBadSchema, sch.Name)
	}
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if _, ok := s.schemas[sch.Name]; ok {
		return fmt.Errorf("%w: %q", ErrTypeExists, sch.Name)
	}
	meta := s.metaFS()
	tb, err := meta.AllocInode(inode.ModeTree, "table:"+sch.Name)
	if err != nil {
		return fmt.Errorf("dbfs: create type %q: %w", sch.Name, err)
	}
	if err := meta.AddChild(s.schemaRoot, sch.Name, tb); err != nil {
		return fmt.Errorf("dbfs: create type %q: %w", sch.Name, err)
	}
	raw, err := EncodeSchema(sch)
	if err != nil {
		return err
	}
	if _, err := s.writeFileInode(meta, tb, defFileName, "schema-def", raw); err != nil {
		return fmt.Errorf("dbfs: create type %q def: %w", sch.Name, err)
	}
	var seq [8]byte
	if _, err := s.writeFileInode(meta, tb, seqFileName, "schema-seq", seq[:]); err != nil {
		return fmt.Errorf("dbfs: create type %q seq: %w", sch.Name, err)
	}
	// Second major tree, per instance: tables/<type> links every subject's
	// record tree of this type on that instance, for fast per-table
	// enumeration without crossing filesystems.
	for i, fs := range s.fss {
		subs, err := fs.AllocInode(inode.ModeTree, "table-subjects:"+clipTag(sch.Name))
		if err != nil {
			return fmt.Errorf("dbfs: create type %q subjects on instance %d: %w", sch.Name, i, err)
		}
		if err := fs.AddChild(s.tablesRoots[i], sch.Name, subs); err != nil {
			return fmt.Errorf("dbfs: create type %q subjects on instance %d: %w", sch.Name, i, err)
		}
	}
	// Format descriptor.
	entries := make([]formatEntry, 0, len(sch.Fields))
	for _, f := range sch.Fields {
		entries = append(entries, formatEntry{Field: f.Name, Type: f.Type, Sensitive: f.Sensitive})
	}
	fraw, err := json.Marshal(entries)
	if err != nil {
		return fmt.Errorf("dbfs: encode format %q: %w", sch.Name, err)
	}
	if _, err := s.writeFileInode(meta, s.formatRoot, sch.Name, "format:"+sch.Name, fraw); err != nil {
		return fmt.Errorf("dbfs: create format %q: %w", sch.Name, err)
	}
	s.schemas[sch.Name] = sch
	s.formats[sch.Name] = entries
	s.seqs[sch.Name] = 0
	s.seqHighs[sch.Name] = 0
	s.bumpStats(func(st *Stats) { st.TypesCreated++ })
	return nil
}

// Types lists the declared type names, sorted.
func (s *Store) Types(tok *lsm.Token) ([]string, error) {
	if err := s.check(tok, lsm.OpScan, "types"); err != nil {
		return nil, err
	}
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	out := make([]string, 0, len(s.schemas))
	for name := range s.schemas {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// SchemaOf returns the schema for a type.
func (s *Store) SchemaOf(tok *lsm.Token, name string) (*Schema, error) {
	if err := s.check(tok, lsm.OpRead, "type/"+name); err != nil {
		return nil, err
	}
	sch, err := s.schemaFor(name)
	if err != nil {
		return nil, err
	}
	cp := *sch
	return &cp, nil
}

// PDID formats the identifier of a record.
func PDID(typeName, subjectID string, rec uint64) string {
	return typeName + "/" + subjectID + "/" + strconv.FormatUint(rec, 10)
}

// SplitPDID parses a pdid into its components.
func SplitPDID(pdid string) (typeName, subjectID string, rec uint64, err error) {
	parts := strings.Split(pdid, "/")
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" {
		return "", "", 0, fmt.Errorf("%w: %q", ErrBadPDID, pdid)
	}
	n, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("%w: %q", ErrBadPDID, pdid)
	}
	return parts[0], parts[1], n, nil
}

// ref is a parsed pdid, threaded through the locked helpers so the hot
// path parses (and validates) each identifier exactly once.
type ref struct {
	pdid      string
	typeName  string
	subjectID string
	recNo     uint64
}

// parseRef validates and splits a pdid.
func parseRef(pdid string) (ref, error) {
	typeName, subjectID, recNo, err := SplitPDID(pdid)
	if err != nil {
		return ref{}, err
	}
	return ref{pdid: pdid, typeName: typeName, subjectID: subjectID, recNo: recNo}, nil
}

// resolve parses a pdid and resolves its type's schema — the one metaMu
// round-trip each record operation pays. Schemas are immutable once
// created, so the pointer stays valid outside the lock.
func (s *Store) resolve(pdid string) (ref, *Schema, error) {
	r, err := parseRef(pdid)
	if err != nil {
		return ref{}, nil, err
	}
	sch, err := s.schemaFor(r.typeName)
	if err != nil {
		return ref{}, nil, err
	}
	return r, sch, nil
}

// subjectTypeTree resolves (creating if create is set) the tree inode
// holding subject's records of the given type on the subject's filesystem
// instance, maintaining both major trees: subjects/<subj>/<type> and
// tables/<type>/<subj>. Caller holds the subject's shard lock (write-side
// when create is set); the inode FS serializes the cross-shard AddChild on
// the instance's table subject list internally.
func (s *Store) subjectTypeTree(sr shardRef, typeName, subjectID string, create bool) (inode.Ino, error) {
	subjIno, err := sr.fs.Lookup(sr.subjRoot, subjectID)
	if errors.Is(err, inode.ErrChildNotFound) {
		if !create {
			return 0, fmt.Errorf("%w: subject %q", ErrNoRecord, subjectID)
		}
		subjIno, err = sr.fs.AllocInode(inode.ModeTree, "subject:"+clipTag(subjectID))
		if err != nil {
			return 0, err
		}
		if err := sr.fs.AddChild(sr.subjRoot, subjectID, subjIno); err != nil {
			return 0, err
		}
	} else if err != nil {
		return 0, err
	}
	tIno, err := sr.fs.Lookup(subjIno, typeName)
	if errors.Is(err, inode.ErrChildNotFound) {
		if !create {
			return 0, fmt.Errorf("%w: subject %q has no %q records", ErrNoRecord, subjectID, typeName)
		}
		tIno, err = sr.fs.AllocInode(inode.ModeTree, "records:"+clipTag(typeName))
		if err != nil {
			return 0, err
		}
		if err := sr.fs.AddChild(subjIno, typeName, tIno); err != nil {
			return 0, err
		}
		// Second major tree: link the subject's record tree from the
		// instance's table subject list for fast per-table enumeration.
		subs, err := sr.fs.Lookup(sr.tablesRoot, typeName)
		if err != nil {
			return 0, err
		}
		if err := sr.fs.AddChild(subs, subjectID, tIno); err != nil {
			return 0, err
		}
	} else if err != nil {
		return 0, err
	}
	return tIno, nil
}

func clipTag(s string) string {
	const max = 60
	if len(s) > max {
		return s[:max]
	}
	return s
}

// seqLease is how many record ids one durable write of a type's seq file
// reserves. The persisted value is a watermark, not an exact count: after
// a crash or remount the sequence resumes past the watermark, so up to
// seqLease-1 ids can be skipped but none is ever reused — the property
// pdids need. Leasing keeps the metaMu critical section (the one global
// serialization point of an insert) off the journal-flush path for
// seqLease-1 of every seqLease inserts.
const seqLease = 64

// nextSeq hands out the next record id for typeName under the meta lock,
// durably extending the reserved watermark by seqLease whenever the lease
// is exhausted (one 8-byte journaled write per seqLease ids).
func (s *Store) nextSeq(typeName string) (uint64, error) {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	n := s.seqs[typeName] + 1
	if n > s.seqHighs[typeName] {
		high := s.seqHighs[typeName] + seqLease
		meta := s.metaFS()
		tb, err := meta.Lookup(s.schemaRoot, typeName)
		if err != nil {
			return 0, err
		}
		seqIno, err := meta.Lookup(tb, seqFileName)
		if err != nil {
			return 0, err
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], high)
		if _, err := meta.WriteAt(seqIno, 0, buf[:]); err != nil {
			return 0, err
		}
		s.seqHighs[typeName] = high
	}
	s.seqs[typeName] = n
	return n, nil
}

// Insert stores a new record of typeName for subjectID. If m is nil the
// schema's default membrane is applied — every record always carries a
// membrane (enforcement rule 3). The plain and sensitive parts are sealed
// under separate per-PD keys. It returns the new pdid.
func (s *Store) Insert(tok *lsm.Token, typeName, subjectID string, rec Record, m *membrane.Membrane) (string, error) {
	if err := s.check(tok, lsm.OpCreate, typeName+"/"+subjectID); err != nil {
		return "", err
	}
	if subjectID == "" || strings.ContainsRune(subjectID, '/') {
		return "", fmt.Errorf("%w: bad subject id %q", ErrBadPDID, subjectID)
	}
	sch, err := s.schemaFor(typeName)
	if err != nil {
		return "", err
	}
	if err := validateRecord(sch, rec); err != nil {
		return "", err
	}
	recNo, err := s.nextSeq(typeName)
	if err != nil {
		return "", fmt.Errorf("dbfs: insert: seq: %w", err)
	}
	pdid := PDID(typeName, subjectID, recNo)
	if m == nil {
		m = sch.DefaultMembrane(pdid, subjectID, s.clock.Now())
	} else {
		m = m.Clone()
		m.PDID = pdid
		m.TypeName = typeName
		m.SubjectID = subjectID
		if m.CreatedAt.IsZero() {
			m.CreatedAt = s.clock.Now()
		}
	}
	if err := m.Validate(); err != nil {
		return "", err
	}

	// Encode and seal outside the shard lock: the crypto is the expensive
	// part of an insert and touches only the (internally locked) vault.
	// Any failure after the first Seal must shred the keys it minted: the
	// seq counter never reuses this pdid, so without cleanup the vault
	// would hold live keys for a record that never materialized.
	fail := func(err error) (string, error) {
		_, _ = s.vault.Shred(pdid)
		_, _ = s.vault.Shred(pdid + sensKeySuffix)
		return "", fmt.Errorf("dbfs: insert %s: %w", pdid, err)
	}
	plainPart, sensPart := partsOf(sch)
	plainBytes, err := encodeRecordPart(sch, rec, plainPart)
	if err != nil {
		return "", err
	}
	sealed, err := s.vault.Seal(pdid, plainBytes)
	if err != nil {
		return fail(fmt.Errorf("seal: %w", err))
	}
	var sealedSens []byte
	if len(sensPart) > 0 {
		sensBytes, err := encodeRecordPart(sch, rec, sensPart)
		if err != nil {
			return fail(err)
		}
		if sealedSens, err = s.vault.Seal(pdid+sensKeySuffix, sensBytes); err != nil {
			return fail(fmt.Errorf("seal sensitive: %w", err))
		}
	}
	memBytes, err := m.Encode()
	if err != nil {
		return fail(err)
	}
	sr := s.shardOf(subjectID)
	sr.lk.Lock()
	defer sr.lk.Unlock()
	tree, err := s.subjectTypeTree(sr, typeName, subjectID, true)
	if err != nil {
		return fail(err)
	}
	recName := strconv.FormatUint(recNo, 10)
	if _, err := s.writeFileInode(sr.fs, tree, recName+dataSuffix, "record", sealed); err != nil {
		return fail(err)
	}
	if sealedSens != nil {
		if _, err := s.writeFileInode(sr.fs, tree, recName+sensSuffix, "record-sens", sealedSens); err != nil {
			return fail(err)
		}
	}
	// The membrane lands last: a record becomes visible to listings (which
	// key on the membrane file) only once it is complete.
	if _, err := s.writeFileInode(sr.fs, tree, recName+memSuffix, "membrane", memBytes); err != nil {
		return fail(err)
	}
	if mc := s.mcache.Load(); mc != nil {
		// m is private to this insert (cloned or schema-built above), so the
		// write-through costs one clone and first reads decode nothing.
		mc.writeThrough(sr.idx, pdid, m)
	}
	s.coldTouch(sr, pdid)
	s.noteExpiry(m)
	s.bumpStats(func(st *Stats) { st.Inserts++ })
	return pdid, nil
}

// recordInos resolves the inode numbers of a record's files on its shard's
// instance. Caller holds the subject's shard lock and has already validated
// the type (resolve). The sens inode is 0 when the type has no sensitive
// part.
func (s *Store) recordInos(sr shardRef, r ref) (tree inode.Ino, data, sens, mem inode.Ino, err error) {
	tree, err = s.subjectTypeTree(sr, r.typeName, r.subjectID, false)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	recName := strconv.FormatUint(r.recNo, 10)
	data, err = sr.fs.Lookup(tree, recName+dataSuffix)
	if errors.Is(err, inode.ErrChildNotFound) {
		// Not hot — the record may live in its subject's cold archive.
		// Promote it back and retry: callers see one namespace, the first
		// read of a demoted record just pays the rematerialization.
		promoted, perr := s.promoteIfCold(sr, r, tree)
		if perr != nil {
			return 0, 0, 0, 0, perr
		}
		if !promoted {
			return 0, 0, 0, 0, fmt.Errorf("%w: %s", ErrNoRecord, r.pdid)
		}
		data, err = sr.fs.Lookup(tree, recName+dataSuffix)
	}
	if err != nil {
		return 0, 0, 0, 0, err
	}
	sens, err = sr.fs.Lookup(tree, recName+sensSuffix)
	if errors.Is(err, inode.ErrChildNotFound) {
		sens = 0
	} else if err != nil {
		return 0, 0, 0, 0, err
	}
	mem, err = sr.fs.Lookup(tree, recName+memSuffix)
	if errors.Is(err, inode.ErrChildNotFound) {
		return 0, 0, 0, 0, fmt.Errorf("%w: %s", ErrNoMembrane, r.pdid)
	}
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return tree, data, sens, mem, nil
}

// GetMembrane loads a record's membrane (the DED's ded_load_membrane step).
func (s *Store) GetMembrane(tok *lsm.Token, pdid string) (*membrane.Membrane, error) {
	if err := s.check(tok, lsm.OpRead, pdid+memSuffix); err != nil {
		return nil, err
	}
	r, _, err := s.resolve(pdid)
	if err != nil {
		return nil, err
	}
	sr := s.shardOf(r.subjectID)
	sr.lk.RLock()
	defer sr.lk.RUnlock()
	return s.getMembraneLocked(sr, r)
}

// getMembraneLocked loads a membrane, serving from the decoded-membrane
// cache when possible; caller holds the subject's shard lock (either side),
// which is what makes a cache fill here coherent — no mutator can commit
// concurrently, so the filled value is the freshest stored state.
func (s *Store) getMembraneLocked(sr shardRef, r ref) (*membrane.Membrane, error) {
	if mc := s.mcache.Load(); mc != nil {
		if m := mc.get(sr.idx, r.pdid); m != nil {
			s.coldTouch(sr, r.pdid)
			s.bumpStats(func(st *Stats) { st.MembraneReads++ })
			return m, nil
		}
	}
	_, _, _, memIno, err := s.recordInos(sr, r)
	if err != nil {
		return nil, err
	}
	raw, err := readAll(sr.fs, memIno)
	if err != nil {
		return nil, fmt.Errorf("dbfs: read membrane %s: %w", r.pdid, err)
	}
	m, err := membrane.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("dbfs: membrane %s: %w", r.pdid, err)
	}
	if mc := s.mcache.Load(); mc != nil {
		mc.fill(sr.idx, r.pdid, m)
	}
	s.coldTouch(sr, r.pdid)
	s.bumpStats(func(st *Stats) { st.MembraneReads++ })
	return m, nil
}

// GetMembranes loads many membranes in one pass, grouping the pdids by
// subject shard so each shard lock is taken once per batch instead of once
// per record (the DED's ded_load_membrane stage and the rights engine fetch
// whole candidate lists at a time). Results keep input order; the first
// failing pdid aborts the batch.
func (s *Store) GetMembranes(tok *lsm.Token, pdids []string) ([]*membrane.Membrane, error) {
	out := make([]*membrane.Membrane, len(pdids))
	type item struct {
		idx int
		r   ref
	}
	groups := make(map[uint32][]item)
	for i, pdid := range pdids {
		if err := s.check(tok, lsm.OpRead, pdid+memSuffix); err != nil {
			return nil, err
		}
		r, _, err := s.resolve(pdid)
		if err != nil {
			return nil, err
		}
		shard := s.ShardOf(r.subjectID)
		groups[shard] = append(groups[shard], item{idx: i, r: r})
	}
	for shard, items := range groups {
		sr := s.shardAt(shard)
		sr.lk.RLock()
		s.scanLocks[sr.idx].Add(1)
		for _, it := range items {
			m, err := s.getMembraneLocked(sr, it.r)
			if err != nil {
				sr.lk.RUnlock()
				return nil, err
			}
			out[it.idx] = m
		}
		sr.lk.RUnlock()
	}
	return out, nil
}

// MutateMembrane applies an atomic read-modify-write to a record's
// membrane: under the subject's shard lock it loads the freshest stored
// state, applies mutate, validates and persists. Concurrent mutations of
// the same record therefore compose instead of overwriting each other
// (and a mutation can never resurrect an erasure tombstone it did not
// see). It returns the membrane as persisted.
func (s *Store) MutateMembrane(tok *lsm.Token, pdid string, mutate func(*membrane.Membrane) error) (*membrane.Membrane, error) {
	if err := s.check(tok, lsm.OpWrite, pdid+memSuffix); err != nil {
		return nil, err
	}
	r, _, err := s.resolve(pdid)
	if err != nil {
		return nil, err
	}
	sr := s.shardOf(r.subjectID)
	sr.lk.Lock()
	defer sr.lk.Unlock()
	m, err := s.getMembraneLocked(sr, r)
	if err != nil {
		return nil, err
	}
	if err := mutate(m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := s.putMembraneLocked(sr, r, m); err != nil {
		return nil, err
	}
	return m, nil
}

// PutMembrane persists an updated membrane (consent changes, erasure marks,
// restriction flags). It writes the caller's snapshot as-is — concurrent
// writers should prefer MutateMembrane, which read-modify-writes the stored
// state atomically.
func (s *Store) PutMembrane(tok *lsm.Token, m *membrane.Membrane) error {
	if err := s.check(tok, lsm.OpWrite, m.PDID+memSuffix); err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}
	r, _, err := s.resolve(m.PDID)
	if err != nil {
		return err
	}
	sr := s.shardOf(r.subjectID)
	sr.lk.Lock()
	defer sr.lk.Unlock()
	return s.putMembraneLocked(sr, r, m)
}

// putMembraneLocked persists a membrane and writes the decoded value through
// the cache; caller holds the subject's shard write lock.
func (s *Store) putMembraneLocked(sr shardRef, r ref, m *membrane.Membrane) error {
	_, _, _, memIno, err := s.recordInos(sr, r)
	if err != nil {
		return err
	}
	raw, err := m.Encode()
	if err != nil {
		return err
	}
	// Replace contents: truncate then rewrite. A failure mid-replace leaves
	// the stored bytes torn, so the cache entry must not keep serving the
	// pre-write image — invalidate and let the next read surface the state
	// of the disk.
	if err := sr.fs.Truncate(memIno, 0); err != nil {
		s.cacheInvalidate(sr, r.pdid)
		return err
	}
	if _, err := sr.fs.WriteAt(memIno, 0, raw); err != nil {
		s.cacheInvalidate(sr, r.pdid)
		return err
	}
	if mc := s.mcache.Load(); mc != nil {
		mc.writeThrough(sr.idx, r.pdid, m)
	}
	s.coldTouch(sr, r.pdid)
	s.noteExpiry(m)
	s.bumpStats(func(st *Stats) { st.MembraneWrites++ })
	return nil
}

// cacheInvalidate bumps a record's cache version and drops its entry; caller
// holds the subject's shard write lock.
func (s *Store) cacheInvalidate(sr shardRef, pdid string) {
	if mc := s.mcache.Load(); mc != nil {
		mc.invalidate(sr.idx, pdid)
	}
}

// GetRecord loads and decrypts a record's fields (the DED's ded_load_data
// step). The caller is expected to have passed the membrane filter first;
// DBFS itself only enforces the capability check.
func (s *Store) GetRecord(tok *lsm.Token, pdid string) (Record, error) {
	if err := s.check(tok, lsm.OpRead, pdid); err != nil {
		return nil, err
	}
	r, sch, err := s.resolve(pdid)
	if err != nil {
		return nil, err
	}
	sr := s.shardOf(r.subjectID)
	sr.lk.RLock()
	defer sr.lk.RUnlock()
	return s.getRecordLocked(sr, r, sch)
}

// getRecordLocked loads and decrypts a record; caller holds the subject's
// shard lock (either side) and has resolved the schema.
func (s *Store) getRecordLocked(sr shardRef, r ref, sch *Schema) (Record, error) {
	_, dataIno, sensIno, _, err := s.recordInos(sr, r)
	if err != nil {
		return nil, err
	}
	plainPart, sensPart := partsOf(sch)
	sealed, err := readAll(sr.fs, dataIno)
	if err != nil {
		return nil, fmt.Errorf("dbfs: read %s: %w", r.pdid, err)
	}
	plainBytes, err := s.vault.Open(r.pdid, sealed)
	if err != nil {
		return nil, fmt.Errorf("dbfs: unseal %s: %w", r.pdid, err)
	}
	rec, err := decodeRecordPart(sch, plainBytes, plainPart)
	if err != nil {
		return nil, err
	}
	if sensIno != 0 && len(sensPart) > 0 {
		sealedSens, err := readAll(sr.fs, sensIno)
		if err != nil {
			return nil, fmt.Errorf("dbfs: read sensitive %s: %w", r.pdid, err)
		}
		sensBytes, err := s.vault.Open(r.pdid+sensKeySuffix, sealedSens)
		if err != nil {
			return nil, fmt.Errorf("dbfs: unseal sensitive %s: %w", r.pdid, err)
		}
		sensRec, err := decodeRecordPart(sch, sensBytes, sensPart)
		if err != nil {
			return nil, err
		}
		for k, v := range sensRec {
			rec[k] = v
		}
	}
	s.coldTouch(sr, r.pdid)
	s.bumpStats(func(st *Stats) { st.DataReads++ })
	return rec, nil
}

// Update overwrites the stored fields of pdid with rec (a full replacement
// of both parts).
func (s *Store) Update(tok *lsm.Token, pdid string, rec Record) error {
	if err := s.check(tok, lsm.OpWrite, pdid); err != nil {
		return err
	}
	r, sch, err := s.resolve(pdid)
	if err != nil {
		return err
	}
	if err := validateRecord(sch, rec); err != nil {
		return err
	}
	// Encode outside the shard lock, but seal INSIDE it: sealing must
	// serialize with a concurrent Erase's key shredding, so an update of
	// an already-erased record fails with ErrKeyDestroyed instead of
	// silently re-writing ciphertext under an escrowed key. The record is
	// resolved before sealing so a nonexistent pdid never mints keys.
	plainPart, sensPart := partsOf(sch)
	plainBytes, err := encodeRecordPart(sch, rec, plainPart)
	if err != nil {
		return err
	}
	var sensBytes []byte
	if len(sensPart) > 0 {
		if sensBytes, err = encodeRecordPart(sch, rec, sensPart); err != nil {
			return err
		}
	}
	sr := s.shardOf(r.subjectID)
	sr.lk.Lock()
	defer sr.lk.Unlock()
	_, dataIno, sensIno, _, err := s.recordInos(sr, r)
	if err != nil {
		return err
	}
	sealed, err := s.vault.Seal(pdid, plainBytes)
	if err != nil {
		return fmt.Errorf("dbfs: update %s: seal: %w", pdid, err)
	}
	var sealedSens []byte
	if sensBytes != nil {
		if sealedSens, err = s.vault.Seal(pdid+sensKeySuffix, sensBytes); err != nil {
			return fmt.Errorf("dbfs: update %s: seal sensitive: %w", pdid, err)
		}
	}
	if err := sr.fs.Truncate(dataIno, 0); err != nil {
		return err
	}
	if _, err := sr.fs.WriteAt(dataIno, 0, sealed); err != nil {
		return err
	}
	if sensIno != 0 && sealedSens != nil {
		if err := sr.fs.Truncate(sensIno, 0); err != nil {
			return err
		}
		if _, err := sr.fs.WriteAt(sensIno, 0, sealedSens); err != nil {
			return err
		}
	}
	// The membrane bytes are untouched, but the record moved: bump its
	// cache version so any cached membrane re-validates against disk.
	s.cacheInvalidate(sr, pdid)
	s.coldTouch(sr, pdid)
	s.bumpStats(func(st *Stats) { st.Updates++ })
	return nil
}

// Erase implements the crypto-erasure step of the right to be forgotten:
// the record's data keys are shredded with escrow to the authority, and its
// membrane is tombstoned (Erased + EscrowRef). The ciphertext remains on
// disk, readable only by the authority.
func (s *Store) Erase(tok *lsm.Token, pdid string) (escrowRef string, err error) {
	if err := s.check(tok, lsm.OpDelete, pdid); err != nil {
		return "", err
	}
	r, _, err := s.resolve(pdid)
	if err != nil {
		return "", err
	}
	sr := s.shardOf(r.subjectID)
	sr.lk.Lock()
	defer sr.lk.Unlock()
	m, err := s.getMembraneLocked(sr, r)
	if err != nil {
		return "", err
	}
	if m.Erased {
		return m.EscrowRef, nil // idempotent
	}
	rec, err := s.vault.Shred(pdid)
	if err != nil && !errors.Is(err, cryptoshred.ErrNoKey) {
		return "", fmt.Errorf("dbfs: erase %s: %w", pdid, err)
	}
	// The sensitive part has its own key; shred it too (ignore absence).
	if _, serr := s.vault.Shred(pdid + sensKeySuffix); serr != nil &&
		!errors.Is(serr, cryptoshred.ErrNoKey) && !errors.Is(serr, cryptoshred.ErrKeyDestroyed) {
		return "", fmt.Errorf("dbfs: erase %s sensitive: %w", pdid, serr)
	}
	m.Erased = true
	m.EscrowRef = rec.Ref
	m.Version++
	if err := s.putMembraneLocked(sr, r, m); err != nil {
		return "", err
	}
	s.bumpStats(func(st *Stats) { st.Erasures++ })
	return rec.Ref, nil
}

// Delete physically removes a record's inodes (data, sensitive part, and
// membrane) and shreds its keys without escrow. Used by the TTL sweeper for
// data whose retention basis simply ran out.
func (s *Store) Delete(tok *lsm.Token, pdid string) error {
	if err := s.check(tok, lsm.OpDelete, pdid); err != nil {
		return err
	}
	r, _, err := s.resolve(pdid)
	if err != nil {
		return err
	}
	sr := s.shardOf(r.subjectID)
	sr.lk.Lock()
	defer sr.lk.Unlock()
	tree, dataIno, sensIno, memIno, err := s.recordInos(sr, r)
	if err != nil {
		return err
	}
	recName := strconv.FormatUint(r.recNo, 10)
	// Mirror Insert's visibility rule (membrane written last): remove the
	// membrane FIRST, so the lock-free listings — which key on the
	// membrane file — never surface a record whose data is already gone.
	if err := sr.fs.RemoveChild(tree, recName+memSuffix); err != nil {
		return err
	}
	// The record is now invisible; forget it in the cache so no read can
	// resurrect the membrane of a half-deleted record.
	if mc := s.mcache.Load(); mc != nil {
		mc.drop(sr.idx, pdid)
	}
	if err := sr.fs.FreeInode(memIno); err != nil {
		return err
	}
	if sensIno != 0 {
		if err := sr.fs.RemoveChild(tree, recName+sensSuffix); err != nil {
			return err
		}
		if err := sr.fs.FreeInode(sensIno); err != nil {
			return err
		}
	}
	if err := sr.fs.RemoveChild(tree, recName+dataSuffix); err != nil {
		return err
	}
	if err := sr.fs.FreeInode(dataIno); err != nil {
		return err
	}
	// Shred keys so any residues (ciphertext) stay unreadable forever.
	if _, err := s.vault.Shred(pdid); err != nil &&
		!errors.Is(err, cryptoshred.ErrNoKey) && !errors.Is(err, cryptoshred.ErrKeyDestroyed) {
		return err
	}
	if _, err := s.vault.Shred(pdid + sensKeySuffix); err != nil &&
		!errors.Is(err, cryptoshred.ErrNoKey) && !errors.Is(err, cryptoshred.ErrKeyDestroyed) {
		return err
	}
	// Remove the archived copy too: Delete is physical removal, and a
	// stale archive entry would resurface in the listings.
	if err := s.coldForget(sr, r); err != nil {
		return err
	}
	s.bumpStats(func(st *Stats) { st.Deletes++ })
	return nil
}

// RawCiphertext returns the stored (encrypted) record bytes; together with
// the escrow record this is what a legal authority would receive.
func (s *Store) RawCiphertext(tok *lsm.Token, pdid string) ([]byte, error) {
	if err := s.check(tok, lsm.OpExport, pdid); err != nil {
		return nil, err
	}
	r, _, err := s.resolve(pdid)
	if err != nil {
		return nil, err
	}
	sr := s.shardOf(r.subjectID)
	sr.lk.RLock()
	defer sr.lk.RUnlock()
	_, dataIno, _, _, err := s.recordInos(sr, r)
	if err != nil {
		return nil, err
	}
	return readAll(sr.fs, dataIno)
}

// Subjects lists every subject with data in DBFS, sorted — the union of
// every instance's subject tree.
func (s *Store) Subjects(tok *lsm.Token) ([]string, error) {
	if err := s.check(tok, lsm.OpScan, "subjects"); err != nil {
		return nil, err
	}
	// No shard lock: the inode FS returns a consistent child snapshot, and
	// a scan concurrent with inserts is inherently a racy point-in-time view.
	var out []string
	for i, fs := range s.fss {
		ents, err := fs.Children(s.subjectRoots[i])
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			out = append(out, e.Name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// ListBySubject returns every pdid belonging to subjectID, sorted.
func (s *Store) ListBySubject(tok *lsm.Token, subjectID string) ([]string, error) {
	if err := s.check(tok, lsm.OpScan, "subject/"+subjectID); err != nil {
		return nil, err
	}
	sr := s.shardOf(subjectID)
	sr.lk.RLock()
	defer sr.lk.RUnlock()
	s.scanLocks[sr.idx].Add(1)
	subjIno, err := sr.fs.Lookup(sr.subjRoot, subjectID)
	if errors.Is(err, inode.ErrChildNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	typeTrees, err := sr.fs.Children(subjIno)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, tt := range typeTrees {
		recs, err := sr.fs.Children(tt.Ino)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if name, ok := strings.CutSuffix(r.Name, memSuffix); ok {
				out = append(out, tt.Name+"/"+subjectID+"/"+name)
			}
		}
	}
	// Archived records are part of the namespace too (reads promote them
	// transparently); a promoted record's stale archive entry is shadowed
	// by its hot copy.
	if cold := s.coldPDIDs(sr, subjectID); len(cold) != 0 {
		hot := make(map[string]bool, len(out))
		for _, p := range out {
			hot[p] = true
		}
		for _, p := range cold {
			if !hot[p] {
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// ListByType returns every pdid of a type across all subjects, sorted. It
// walks each instance's per-table subject links (the second major tree).
func (s *Store) ListByType(tok *lsm.Token, typeName string) ([]string, error) {
	if err := s.check(tok, lsm.OpScan, "type/"+typeName); err != nil {
		return nil, err
	}
	if _, err := s.schemaFor(typeName); err != nil {
		return nil, err
	}
	// Cross-subject scan: like Subjects, a point-in-time view without shard
	// locks; per-record files are only read later under their shard lock.
	var out []string
	for i, fs := range s.fss {
		subs, err := fs.Lookup(s.tablesRoots[i], typeName)
		if errors.Is(err, inode.ErrChildNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		subjects, err := fs.Children(subs)
		if err != nil {
			return nil, err
		}
		for _, sj := range subjects {
			recs, err := fs.Children(sj.Ino)
			if err != nil {
				return nil, err
			}
			for _, r := range recs {
				if name, ok := strings.CutSuffix(r.Name, memSuffix); ok {
					out = append(out, typeName+"/"+sj.Name+"/"+name)
				}
			}
		}
	}
	// Add this type's archived records, hot copies shadowing stale entries.
	hot := make(map[string]bool, len(out))
	for _, p := range out {
		hot[p] = true
	}
	prefix := typeName + "/"
	for i := range s.cold.shards {
		cs := &s.cold.shards[i]
		cs.mu.Lock()
		for pdid := range cs.archived {
			if strings.HasPrefix(pdid, prefix) && !hot[pdid] {
				out = append(out, pdid)
			}
		}
		cs.mu.Unlock()
	}
	sort.Strings(out)
	return out, nil
}

// JournalStats aggregates the WAL counters across every filesystem
// instance, so experiments can report the achieved group-commit batching.
func (s *Store) JournalStats() wal.Stats {
	var out wal.Stats
	for _, fs := range s.fss {
		st := fs.JournalStats()
		out.TxnsCommitted += st.TxnsCommitted
		out.BlocksLogged += st.BlocksLogged
		out.TxnsReplayed += st.TxnsReplayed
		out.GroupCommits += st.GroupCommits
		if st.MaxGroupTxns > out.MaxGroupTxns {
			out.MaxGroupTxns = st.MaxGroupTxns
		}
	}
	return out
}
