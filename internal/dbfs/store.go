package dbfs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cryptoshred"
	"repro/internal/inode"
	"repro/internal/lsm"
	"repro/internal/membrane"
	"repro/internal/simclock"
)

// Tree and file names inside the DBFS inode layout.
const (
	schemaRootName  = "schema"
	subjectRootName = "subjects"
	formatRootName  = "format"

	defFileName      = "def"
	seqFileName      = "seq"
	tableSubjectsDir = "subjects"

	dataSuffix = ".data"
	sensSuffix = ".sens"
	memSuffix  = ".mem"

	// sensKeySuffix derives the separate data key for sensitive fields.
	sensKeySuffix = "#sens"
)

// Sentinel errors.
var (
	// ErrTypeExists reports CreateType over an existing type.
	ErrTypeExists = errors.New("dbfs: type already exists")
	// ErrNoType reports an operation on an undeclared type.
	ErrNoType = errors.New("dbfs: no such type")
	// ErrNoRecord reports an unknown pdid.
	ErrNoRecord = errors.New("dbfs: no such record")
	// ErrBadPDID reports a malformed pdid.
	ErrBadPDID = errors.New("dbfs: malformed pdid")
	// ErrNoMembrane reports a record missing its membrane — forbidden by
	// enforcement rule 3; it can only arise from on-disk corruption.
	ErrNoMembrane = errors.New("dbfs: record has no membrane")
)

// Stats counts DBFS activity for the experiment harness.
type Stats struct {
	TypesCreated   uint64
	Inserts        uint64
	Updates        uint64
	DataReads      uint64
	MembraneReads  uint64
	MembraneWrites uint64
	Erasures       uint64
	Deletes        uint64
}

// formatEntry is one row of the format tree: the session-loaded descriptor
// of how a type's record bytes are laid out (§3's "dedicated set of inodes
// ... accessed only once ... during a given live session").
type formatEntry struct {
	Field     string    `json:"field"`
	Type      FieldType `json:"type"`
	Sensitive bool      `json:"sensitive,omitempty"`
}

// numShards sizes the subject-shard lock table. Subjects hash onto shards,
// so operations on distinct subjects almost never contend; a power of two
// keeps the modulo cheap.
const numShards = 64

// Store is the mounted DBFS. All methods demand an LSM token carrying
// CapDBFS. Safe for concurrent use.
//
// Locking is subject-sharded: per-record state (the record inodes reachable
// through a subject's trees) is guarded by the shard lock of its subject ID,
// so the PD hot path for distinct subjects runs in parallel — subjects are
// the natural unit of parallelism because every DED executes on behalf of
// exactly one subject's data at a time. Schema, format and sequence state is
// cross-subject and stays behind a narrow global metaMu. Lock order:
// shard → metaMu → statsMu (never the reverse). Insert seals its record
// before taking any Store lock; reads, updates and erasures run their
// crypto under the subject's shard lock (blocking only that shard), because
// sealing/unsealing there must serialize with key shredding.
type Store struct {
	fs    *inode.FS
	guard *lsm.Guard
	vault *cryptoshred.Vault
	clock simclock.Clock

	// metaMu guards the type-level maps and the persisted seq files.
	metaMu  sync.RWMutex
	schemas map[string]*Schema
	formats map[string][]formatEntry
	seqs    map[string]uint64

	// shards serialize per-subject record state; see shardFor.
	shards [numShards]sync.RWMutex

	statsMu sync.Mutex
	stats   Stats

	schemaRoot  inode.Ino
	subjectRoot inode.Ino
	formatRoot  inode.Ino
}

// shardFor maps a subject ID onto its lock shard (inline FNV-1a: this runs
// on every record operation, so it must not allocate).
func (s *Store) shardFor(subjectID string) *sync.RWMutex {
	h := uint32(2166136261)
	for i := 0; i < len(subjectID); i++ {
		h = (h ^ uint32(subjectID[i])) * 16777619
	}
	return &s.shards[h%numShards]
}

// bumpStats applies a counter mutation under the stats lock.
func (s *Store) bumpStats(f func(*Stats)) {
	s.statsMu.Lock()
	f(&s.stats)
	s.statsMu.Unlock()
}

// Create formats the DBFS trees on a freshly formatted inode filesystem.
func Create(fs *inode.FS, guard *lsm.Guard, vault *cryptoshred.Vault, clock simclock.Clock) (*Store, error) {
	if clock == nil {
		clock = simclock.Real{}
	}
	s := &Store{
		fs:      fs,
		guard:   guard,
		vault:   vault,
		clock:   clock,
		schemas: make(map[string]*Schema),
		formats: make(map[string][]formatEntry),
		seqs:    make(map[string]uint64),
	}
	for _, spec := range []struct {
		name string
		dst  *inode.Ino
	}{
		{schemaRootName, &s.schemaRoot},
		{subjectRootName, &s.subjectRoot},
		{formatRootName, &s.formatRoot},
	} {
		ino, err := fs.AllocInode(inode.ModeTree, spec.name+"-root")
		if err != nil {
			return nil, fmt.Errorf("dbfs: create %s tree: %w", spec.name, err)
		}
		if err := fs.AddChild(inode.RootIno, spec.name, ino); err != nil {
			return nil, fmt.Errorf("dbfs: link %s tree: %w", spec.name, err)
		}
		*spec.dst = ino
	}
	return s, nil
}

// Open mounts an existing DBFS: it resolves the three roots, then loads
// every schema and the format descriptors (the once-per-session read).
func Open(fs *inode.FS, guard *lsm.Guard, vault *cryptoshred.Vault, clock simclock.Clock) (*Store, error) {
	if clock == nil {
		clock = simclock.Real{}
	}
	s := &Store{
		fs:      fs,
		guard:   guard,
		vault:   vault,
		clock:   clock,
		schemas: make(map[string]*Schema),
		formats: make(map[string][]formatEntry),
		seqs:    make(map[string]uint64),
	}
	var err error
	if s.schemaRoot, err = fs.Lookup(inode.RootIno, schemaRootName); err != nil {
		return nil, fmt.Errorf("dbfs: open: %w", err)
	}
	if s.subjectRoot, err = fs.Lookup(inode.RootIno, subjectRootName); err != nil {
		return nil, fmt.Errorf("dbfs: open: %w", err)
	}
	if s.formatRoot, err = fs.Lookup(inode.RootIno, formatRootName); err != nil {
		return nil, fmt.Errorf("dbfs: open: %w", err)
	}
	tables, err := fs.Children(s.schemaRoot)
	if err != nil {
		return nil, fmt.Errorf("dbfs: open: list tables: %w", err)
	}
	for _, tb := range tables {
		defIno, err := fs.Lookup(tb.Ino, defFileName)
		if err != nil {
			return nil, fmt.Errorf("dbfs: open table %q: %w", tb.Name, err)
		}
		raw, err := readAll(fs, defIno)
		if err != nil {
			return nil, fmt.Errorf("dbfs: open table %q: %w", tb.Name, err)
		}
		sch, err := DecodeSchema(raw)
		if err != nil {
			return nil, fmt.Errorf("dbfs: open table %q: %w", tb.Name, err)
		}
		s.schemas[sch.Name] = sch
		seqIno, err := fs.Lookup(tb.Ino, seqFileName)
		if err != nil {
			return nil, fmt.Errorf("dbfs: open table %q seq: %w", tb.Name, err)
		}
		seqRaw, err := readAll(fs, seqIno)
		if err != nil || len(seqRaw) != 8 {
			return nil, fmt.Errorf("dbfs: open table %q seq: %w", tb.Name, err)
		}
		s.seqs[sch.Name] = binary.LittleEndian.Uint64(seqRaw)
	}
	// Format descriptors: the single per-session read of the format tree.
	fmts, err := fs.Children(s.formatRoot)
	if err != nil {
		return nil, fmt.Errorf("dbfs: open formats: %w", err)
	}
	for _, fe := range fmts {
		raw, err := readAll(fs, fe.Ino)
		if err != nil {
			return nil, fmt.Errorf("dbfs: open format %q: %w", fe.Name, err)
		}
		var entries []formatEntry
		if err := json.Unmarshal(raw, &entries); err != nil {
			return nil, fmt.Errorf("dbfs: decode format %q: %w", fe.Name, err)
		}
		s.formats[fe.Name] = entries
	}
	return s, nil
}

// readAll reads the full contents of a file inode.
func readAll(fs *inode.FS, ino inode.Ino) ([]byte, error) {
	info, err := fs.Stat(ino)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, info.Size)
	if _, err := fs.ReadAt(ino, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFileInode creates a file inode with contents, tagged tag, linked
// under parent as name.
func (s *Store) writeFileInode(parent inode.Ino, name, tag string, contents []byte) (inode.Ino, error) {
	ino, err := s.fs.AllocInode(inode.ModeFile, tag)
	if err != nil {
		return 0, err
	}
	if len(contents) > 0 {
		if _, err := s.fs.WriteAt(ino, 0, contents); err != nil {
			_ = s.fs.FreeInode(ino)
			return 0, err
		}
	}
	if err := s.fs.AddChild(parent, name, ino); err != nil {
		_ = s.fs.FreeInode(ino)
		return 0, err
	}
	return ino, nil
}

// check mediates an access through the LSM guard.
func (s *Store) check(tok *lsm.Token, op lsm.Operation, id string) error {
	return s.guard.Check(tok, lsm.CapDBFS, op, lsm.ObjectRef{Class: "dbfs", ID: id})
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// schemaFor resolves a type's schema under the meta lock. Schemas are
// immutable once created, so the returned pointer is safe to use lock-free.
func (s *Store) schemaFor(typeName string) (*Schema, error) {
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	sch, ok := s.schemas[typeName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoType, typeName)
	}
	return sch, nil
}

// CreateType declares a new PD type: it validates the schema, creates the
// table inodes in the schema tree, and records the format descriptor.
func (s *Store) CreateType(tok *lsm.Token, sch *Schema) error {
	if err := s.check(tok, lsm.OpCreate, "type/"+sch.Name); err != nil {
		return err
	}
	if err := sch.Validate(); err != nil {
		return err
	}
	if strings.ContainsRune(sch.Name, '/') {
		return fmt.Errorf("%w: type name %q contains '/'", ErrBadSchema, sch.Name)
	}
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if _, ok := s.schemas[sch.Name]; ok {
		return fmt.Errorf("%w: %q", ErrTypeExists, sch.Name)
	}
	tb, err := s.fs.AllocInode(inode.ModeTree, "table:"+sch.Name)
	if err != nil {
		return fmt.Errorf("dbfs: create type %q: %w", sch.Name, err)
	}
	if err := s.fs.AddChild(s.schemaRoot, sch.Name, tb); err != nil {
		return fmt.Errorf("dbfs: create type %q: %w", sch.Name, err)
	}
	raw, err := EncodeSchema(sch)
	if err != nil {
		return err
	}
	if _, err := s.writeFileInode(tb, defFileName, "schema-def", raw); err != nil {
		return fmt.Errorf("dbfs: create type %q def: %w", sch.Name, err)
	}
	var seq [8]byte
	if _, err := s.writeFileInode(tb, seqFileName, "schema-seq", seq[:]); err != nil {
		return fmt.Errorf("dbfs: create type %q seq: %w", sch.Name, err)
	}
	subs, err := s.fs.AllocInode(inode.ModeTree, "table-subjects:"+sch.Name)
	if err != nil {
		return fmt.Errorf("dbfs: create type %q subjects: %w", sch.Name, err)
	}
	if err := s.fs.AddChild(tb, tableSubjectsDir, subs); err != nil {
		return fmt.Errorf("dbfs: create type %q subjects: %w", sch.Name, err)
	}
	// Format descriptor.
	entries := make([]formatEntry, 0, len(sch.Fields))
	for _, f := range sch.Fields {
		entries = append(entries, formatEntry{Field: f.Name, Type: f.Type, Sensitive: f.Sensitive})
	}
	fraw, err := json.Marshal(entries)
	if err != nil {
		return fmt.Errorf("dbfs: encode format %q: %w", sch.Name, err)
	}
	if _, err := s.writeFileInode(s.formatRoot, sch.Name, "format:"+sch.Name, fraw); err != nil {
		return fmt.Errorf("dbfs: create format %q: %w", sch.Name, err)
	}
	s.schemas[sch.Name] = sch
	s.formats[sch.Name] = entries
	s.seqs[sch.Name] = 0
	s.bumpStats(func(st *Stats) { st.TypesCreated++ })
	return nil
}

// Types lists the declared type names, sorted.
func (s *Store) Types(tok *lsm.Token) ([]string, error) {
	if err := s.check(tok, lsm.OpScan, "types"); err != nil {
		return nil, err
	}
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	out := make([]string, 0, len(s.schemas))
	for name := range s.schemas {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// SchemaOf returns the schema for a type.
func (s *Store) SchemaOf(tok *lsm.Token, name string) (*Schema, error) {
	if err := s.check(tok, lsm.OpRead, "type/"+name); err != nil {
		return nil, err
	}
	sch, err := s.schemaFor(name)
	if err != nil {
		return nil, err
	}
	cp := *sch
	return &cp, nil
}

// PDID formats the identifier of a record.
func PDID(typeName, subjectID string, rec uint64) string {
	return typeName + "/" + subjectID + "/" + strconv.FormatUint(rec, 10)
}

// SplitPDID parses a pdid into its components.
func SplitPDID(pdid string) (typeName, subjectID string, rec uint64, err error) {
	parts := strings.Split(pdid, "/")
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" {
		return "", "", 0, fmt.Errorf("%w: %q", ErrBadPDID, pdid)
	}
	n, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("%w: %q", ErrBadPDID, pdid)
	}
	return parts[0], parts[1], n, nil
}

// ref is a parsed pdid, threaded through the locked helpers so the hot
// path parses (and validates) each identifier exactly once.
type ref struct {
	pdid      string
	typeName  string
	subjectID string
	recNo     uint64
}

// parseRef validates and splits a pdid.
func parseRef(pdid string) (ref, error) {
	typeName, subjectID, recNo, err := SplitPDID(pdid)
	if err != nil {
		return ref{}, err
	}
	return ref{pdid: pdid, typeName: typeName, subjectID: subjectID, recNo: recNo}, nil
}

// resolve parses a pdid and resolves its type's schema — the one metaMu
// round-trip each record operation pays. Schemas are immutable once
// created, so the pointer stays valid outside the lock.
func (s *Store) resolve(pdid string) (ref, *Schema, error) {
	r, err := parseRef(pdid)
	if err != nil {
		return ref{}, nil, err
	}
	sch, err := s.schemaFor(r.typeName)
	if err != nil {
		return ref{}, nil, err
	}
	return r, sch, nil
}

// subjectTypeTree resolves (creating if create is set) the tree inode
// holding subject's records of the given type, maintaining both major
// trees: subjects/<subj>/<type> and schema/<type>/subjects/<subj>.
// Caller holds the subject's shard lock (write-side when create is set);
// the inode FS serializes the cross-subject AddChild on the table's
// subject list internally.
func (s *Store) subjectTypeTree(typeName, subjectID string, create bool) (inode.Ino, error) {
	subjIno, err := s.fs.Lookup(s.subjectRoot, subjectID)
	if errors.Is(err, inode.ErrChildNotFound) {
		if !create {
			return 0, fmt.Errorf("%w: subject %q", ErrNoRecord, subjectID)
		}
		subjIno, err = s.fs.AllocInode(inode.ModeTree, "subject:"+clipTag(subjectID))
		if err != nil {
			return 0, err
		}
		if err := s.fs.AddChild(s.subjectRoot, subjectID, subjIno); err != nil {
			return 0, err
		}
	} else if err != nil {
		return 0, err
	}
	tIno, err := s.fs.Lookup(subjIno, typeName)
	if errors.Is(err, inode.ErrChildNotFound) {
		if !create {
			return 0, fmt.Errorf("%w: subject %q has no %q records", ErrNoRecord, subjectID, typeName)
		}
		tIno, err = s.fs.AllocInode(inode.ModeTree, "records:"+clipTag(typeName))
		if err != nil {
			return 0, err
		}
		if err := s.fs.AddChild(subjIno, typeName, tIno); err != nil {
			return 0, err
		}
		// Second major tree: link the subject's record tree from the
		// table's subject list for fast per-table enumeration.
		tb, err := s.fs.Lookup(s.schemaRoot, typeName)
		if err != nil {
			return 0, err
		}
		subs, err := s.fs.Lookup(tb, tableSubjectsDir)
		if err != nil {
			return 0, err
		}
		if err := s.fs.AddChild(subs, subjectID, tIno); err != nil {
			return 0, err
		}
	} else if err != nil {
		return 0, err
	}
	return tIno, nil
}

func clipTag(s string) string {
	const max = 60
	if len(s) > max {
		return s[:max]
	}
	return s
}

// nextSeq increments and persists the per-type record counter under the
// meta lock — the one remaining global serialization point of an insert,
// deliberately narrow (one 8-byte journaled write).
func (s *Store) nextSeq(typeName string) (uint64, error) {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	n := s.seqs[typeName] + 1
	tb, err := s.fs.Lookup(s.schemaRoot, typeName)
	if err != nil {
		return 0, err
	}
	seqIno, err := s.fs.Lookup(tb, seqFileName)
	if err != nil {
		return 0, err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], n)
	if _, err := s.fs.WriteAt(seqIno, 0, buf[:]); err != nil {
		return 0, err
	}
	s.seqs[typeName] = n
	return n, nil
}

// Insert stores a new record of typeName for subjectID. If m is nil the
// schema's default membrane is applied — every record always carries a
// membrane (enforcement rule 3). The plain and sensitive parts are sealed
// under separate per-PD keys. It returns the new pdid.
func (s *Store) Insert(tok *lsm.Token, typeName, subjectID string, rec Record, m *membrane.Membrane) (string, error) {
	if err := s.check(tok, lsm.OpCreate, typeName+"/"+subjectID); err != nil {
		return "", err
	}
	if subjectID == "" || strings.ContainsRune(subjectID, '/') {
		return "", fmt.Errorf("%w: bad subject id %q", ErrBadPDID, subjectID)
	}
	sch, err := s.schemaFor(typeName)
	if err != nil {
		return "", err
	}
	if err := validateRecord(sch, rec); err != nil {
		return "", err
	}
	recNo, err := s.nextSeq(typeName)
	if err != nil {
		return "", fmt.Errorf("dbfs: insert: seq: %w", err)
	}
	pdid := PDID(typeName, subjectID, recNo)
	if m == nil {
		m = sch.DefaultMembrane(pdid, subjectID, s.clock.Now())
	} else {
		m = m.Clone()
		m.PDID = pdid
		m.TypeName = typeName
		m.SubjectID = subjectID
		if m.CreatedAt.IsZero() {
			m.CreatedAt = s.clock.Now()
		}
	}
	if err := m.Validate(); err != nil {
		return "", err
	}

	// Encode and seal outside the shard lock: the crypto is the expensive
	// part of an insert and touches only the (internally locked) vault.
	// Any failure after the first Seal must shred the keys it minted: the
	// seq counter never reuses this pdid, so without cleanup the vault
	// would hold live keys for a record that never materialized.
	fail := func(err error) (string, error) {
		_, _ = s.vault.Shred(pdid)
		_, _ = s.vault.Shred(pdid + sensKeySuffix)
		return "", fmt.Errorf("dbfs: insert %s: %w", pdid, err)
	}
	plainPart, sensPart := partsOf(sch)
	plainBytes, err := encodeRecordPart(sch, rec, plainPart)
	if err != nil {
		return "", err
	}
	sealed, err := s.vault.Seal(pdid, plainBytes)
	if err != nil {
		return fail(fmt.Errorf("seal: %w", err))
	}
	var sealedSens []byte
	if len(sensPart) > 0 {
		sensBytes, err := encodeRecordPart(sch, rec, sensPart)
		if err != nil {
			return fail(err)
		}
		if sealedSens, err = s.vault.Seal(pdid+sensKeySuffix, sensBytes); err != nil {
			return fail(fmt.Errorf("seal sensitive: %w", err))
		}
	}
	memBytes, err := m.Encode()
	if err != nil {
		return fail(err)
	}
	shard := s.shardFor(subjectID)
	shard.Lock()
	defer shard.Unlock()
	tree, err := s.subjectTypeTree(typeName, subjectID, true)
	if err != nil {
		return fail(err)
	}
	recName := strconv.FormatUint(recNo, 10)
	if _, err := s.writeFileInode(tree, recName+dataSuffix, "record", sealed); err != nil {
		return fail(err)
	}
	if sealedSens != nil {
		if _, err := s.writeFileInode(tree, recName+sensSuffix, "record-sens", sealedSens); err != nil {
			return fail(err)
		}
	}
	// The membrane lands last: a record becomes visible to listings (which
	// key on the membrane file) only once it is complete.
	if _, err := s.writeFileInode(tree, recName+memSuffix, "membrane", memBytes); err != nil {
		return fail(err)
	}
	s.bumpStats(func(st *Stats) { st.Inserts++ })
	return pdid, nil
}

// recordInos resolves the inode numbers of a record's files. Caller holds
// the subject's shard lock and has already validated the type (resolve).
// The sens inode is 0 when the type has no sensitive part.
func (s *Store) recordInos(r ref) (tree inode.Ino, data, sens, mem inode.Ino, err error) {
	tree, err = s.subjectTypeTree(r.typeName, r.subjectID, false)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	recName := strconv.FormatUint(r.recNo, 10)
	data, err = s.fs.Lookup(tree, recName+dataSuffix)
	if errors.Is(err, inode.ErrChildNotFound) {
		return 0, 0, 0, 0, fmt.Errorf("%w: %s", ErrNoRecord, r.pdid)
	}
	if err != nil {
		return 0, 0, 0, 0, err
	}
	sens, err = s.fs.Lookup(tree, recName+sensSuffix)
	if errors.Is(err, inode.ErrChildNotFound) {
		sens = 0
	} else if err != nil {
		return 0, 0, 0, 0, err
	}
	mem, err = s.fs.Lookup(tree, recName+memSuffix)
	if errors.Is(err, inode.ErrChildNotFound) {
		return 0, 0, 0, 0, fmt.Errorf("%w: %s", ErrNoMembrane, r.pdid)
	}
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return tree, data, sens, mem, nil
}

// GetMembrane loads a record's membrane (the DED's ded_load_membrane step).
func (s *Store) GetMembrane(tok *lsm.Token, pdid string) (*membrane.Membrane, error) {
	if err := s.check(tok, lsm.OpRead, pdid+memSuffix); err != nil {
		return nil, err
	}
	r, _, err := s.resolve(pdid)
	if err != nil {
		return nil, err
	}
	shard := s.shardFor(r.subjectID)
	shard.RLock()
	defer shard.RUnlock()
	return s.getMembraneLocked(r)
}

// getMembraneLocked loads a membrane; caller holds the subject's shard lock
// (either side).
func (s *Store) getMembraneLocked(r ref) (*membrane.Membrane, error) {
	_, _, _, memIno, err := s.recordInos(r)
	if err != nil {
		return nil, err
	}
	raw, err := readAll(s.fs, memIno)
	if err != nil {
		return nil, fmt.Errorf("dbfs: read membrane %s: %w", r.pdid, err)
	}
	m, err := membrane.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("dbfs: membrane %s: %w", r.pdid, err)
	}
	s.bumpStats(func(st *Stats) { st.MembraneReads++ })
	return m, nil
}

// MutateMembrane applies an atomic read-modify-write to a record's
// membrane: under the subject's shard lock it loads the freshest stored
// state, applies mutate, validates and persists. Concurrent mutations of
// the same record therefore compose instead of overwriting each other
// (and a mutation can never resurrect an erasure tombstone it did not
// see). It returns the membrane as persisted.
func (s *Store) MutateMembrane(tok *lsm.Token, pdid string, mutate func(*membrane.Membrane) error) (*membrane.Membrane, error) {
	if err := s.check(tok, lsm.OpWrite, pdid+memSuffix); err != nil {
		return nil, err
	}
	r, _, err := s.resolve(pdid)
	if err != nil {
		return nil, err
	}
	shard := s.shardFor(r.subjectID)
	shard.Lock()
	defer shard.Unlock()
	m, err := s.getMembraneLocked(r)
	if err != nil {
		return nil, err
	}
	if err := mutate(m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := s.putMembraneLocked(r, m); err != nil {
		return nil, err
	}
	return m, nil
}

// PutMembrane persists an updated membrane (consent changes, erasure marks,
// restriction flags). It writes the caller's snapshot as-is — concurrent
// writers should prefer MutateMembrane, which read-modify-writes the stored
// state atomically.
func (s *Store) PutMembrane(tok *lsm.Token, m *membrane.Membrane) error {
	if err := s.check(tok, lsm.OpWrite, m.PDID+memSuffix); err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}
	r, _, err := s.resolve(m.PDID)
	if err != nil {
		return err
	}
	shard := s.shardFor(r.subjectID)
	shard.Lock()
	defer shard.Unlock()
	return s.putMembraneLocked(r, m)
}

// putMembraneLocked persists a membrane; caller holds the subject's shard
// write lock.
func (s *Store) putMembraneLocked(r ref, m *membrane.Membrane) error {
	tree, _, _, memIno, err := s.recordInos(r)
	if err != nil {
		return err
	}
	raw, err := m.Encode()
	if err != nil {
		return err
	}
	// Replace contents: truncate then rewrite.
	if err := s.fs.Truncate(memIno, 0); err != nil {
		return err
	}
	if _, err := s.fs.WriteAt(memIno, 0, raw); err != nil {
		return err
	}
	_ = tree
	s.bumpStats(func(st *Stats) { st.MembraneWrites++ })
	return nil
}

// GetRecord loads and decrypts a record's fields (the DED's ded_load_data
// step). The caller is expected to have passed the membrane filter first;
// DBFS itself only enforces the capability check.
func (s *Store) GetRecord(tok *lsm.Token, pdid string) (Record, error) {
	if err := s.check(tok, lsm.OpRead, pdid); err != nil {
		return nil, err
	}
	r, sch, err := s.resolve(pdid)
	if err != nil {
		return nil, err
	}
	shard := s.shardFor(r.subjectID)
	shard.RLock()
	defer shard.RUnlock()
	return s.getRecordLocked(r, sch)
}

// getRecordLocked loads and decrypts a record; caller holds the subject's
// shard lock (either side) and has resolved the schema.
func (s *Store) getRecordLocked(r ref, sch *Schema) (Record, error) {
	_, dataIno, sensIno, _, err := s.recordInos(r)
	if err != nil {
		return nil, err
	}
	plainPart, sensPart := partsOf(sch)
	sealed, err := readAll(s.fs, dataIno)
	if err != nil {
		return nil, fmt.Errorf("dbfs: read %s: %w", r.pdid, err)
	}
	plainBytes, err := s.vault.Open(r.pdid, sealed)
	if err != nil {
		return nil, fmt.Errorf("dbfs: unseal %s: %w", r.pdid, err)
	}
	rec, err := decodeRecordPart(sch, plainBytes, plainPart)
	if err != nil {
		return nil, err
	}
	if sensIno != 0 && len(sensPart) > 0 {
		sealedSens, err := readAll(s.fs, sensIno)
		if err != nil {
			return nil, fmt.Errorf("dbfs: read sensitive %s: %w", r.pdid, err)
		}
		sensBytes, err := s.vault.Open(r.pdid+sensKeySuffix, sealedSens)
		if err != nil {
			return nil, fmt.Errorf("dbfs: unseal sensitive %s: %w", r.pdid, err)
		}
		sensRec, err := decodeRecordPart(sch, sensBytes, sensPart)
		if err != nil {
			return nil, err
		}
		for k, v := range sensRec {
			rec[k] = v
		}
	}
	s.bumpStats(func(st *Stats) { st.DataReads++ })
	return rec, nil
}

// Update overwrites the stored fields of pdid with rec (a full replacement
// of both parts).
func (s *Store) Update(tok *lsm.Token, pdid string, rec Record) error {
	if err := s.check(tok, lsm.OpWrite, pdid); err != nil {
		return err
	}
	r, sch, err := s.resolve(pdid)
	if err != nil {
		return err
	}
	if err := validateRecord(sch, rec); err != nil {
		return err
	}
	// Encode outside the shard lock, but seal INSIDE it: sealing must
	// serialize with a concurrent Erase's key shredding, so an update of
	// an already-erased record fails with ErrKeyDestroyed instead of
	// silently re-writing ciphertext under an escrowed key. The record is
	// resolved before sealing so a nonexistent pdid never mints keys.
	plainPart, sensPart := partsOf(sch)
	plainBytes, err := encodeRecordPart(sch, rec, plainPart)
	if err != nil {
		return err
	}
	var sensBytes []byte
	if len(sensPart) > 0 {
		if sensBytes, err = encodeRecordPart(sch, rec, sensPart); err != nil {
			return err
		}
	}
	shard := s.shardFor(r.subjectID)
	shard.Lock()
	defer shard.Unlock()
	_, dataIno, sensIno, _, err := s.recordInos(r)
	if err != nil {
		return err
	}
	sealed, err := s.vault.Seal(pdid, plainBytes)
	if err != nil {
		return fmt.Errorf("dbfs: update %s: seal: %w", pdid, err)
	}
	var sealedSens []byte
	if sensBytes != nil {
		if sealedSens, err = s.vault.Seal(pdid+sensKeySuffix, sensBytes); err != nil {
			return fmt.Errorf("dbfs: update %s: seal sensitive: %w", pdid, err)
		}
	}
	if err := s.fs.Truncate(dataIno, 0); err != nil {
		return err
	}
	if _, err := s.fs.WriteAt(dataIno, 0, sealed); err != nil {
		return err
	}
	if sensIno != 0 && sealedSens != nil {
		if err := s.fs.Truncate(sensIno, 0); err != nil {
			return err
		}
		if _, err := s.fs.WriteAt(sensIno, 0, sealedSens); err != nil {
			return err
		}
	}
	s.bumpStats(func(st *Stats) { st.Updates++ })
	return nil
}

// Erase implements the crypto-erasure step of the right to be forgotten:
// the record's data keys are shredded with escrow to the authority, and its
// membrane is tombstoned (Erased + EscrowRef). The ciphertext remains on
// disk, readable only by the authority.
func (s *Store) Erase(tok *lsm.Token, pdid string) (escrowRef string, err error) {
	if err := s.check(tok, lsm.OpDelete, pdid); err != nil {
		return "", err
	}
	r, _, err := s.resolve(pdid)
	if err != nil {
		return "", err
	}
	shard := s.shardFor(r.subjectID)
	shard.Lock()
	defer shard.Unlock()
	m, err := s.getMembraneLocked(r)
	if err != nil {
		return "", err
	}
	if m.Erased {
		return m.EscrowRef, nil // idempotent
	}
	rec, err := s.vault.Shred(pdid)
	if err != nil && !errors.Is(err, cryptoshred.ErrNoKey) {
		return "", fmt.Errorf("dbfs: erase %s: %w", pdid, err)
	}
	// The sensitive part has its own key; shred it too (ignore absence).
	if _, serr := s.vault.Shred(pdid + sensKeySuffix); serr != nil &&
		!errors.Is(serr, cryptoshred.ErrNoKey) && !errors.Is(serr, cryptoshred.ErrKeyDestroyed) {
		return "", fmt.Errorf("dbfs: erase %s sensitive: %w", pdid, serr)
	}
	m.Erased = true
	m.EscrowRef = rec.Ref
	m.Version++
	if err := s.putMembraneLocked(r, m); err != nil {
		return "", err
	}
	s.bumpStats(func(st *Stats) { st.Erasures++ })
	return rec.Ref, nil
}

// Delete physically removes a record's inodes (data, sensitive part, and
// membrane) and shreds its keys without escrow. Used by the TTL sweeper for
// data whose retention basis simply ran out.
func (s *Store) Delete(tok *lsm.Token, pdid string) error {
	if err := s.check(tok, lsm.OpDelete, pdid); err != nil {
		return err
	}
	r, _, err := s.resolve(pdid)
	if err != nil {
		return err
	}
	shard := s.shardFor(r.subjectID)
	shard.Lock()
	defer shard.Unlock()
	tree, dataIno, sensIno, memIno, err := s.recordInos(r)
	if err != nil {
		return err
	}
	recName := strconv.FormatUint(r.recNo, 10)
	// Mirror Insert's visibility rule (membrane written last): remove the
	// membrane FIRST, so the lock-free listings — which key on the
	// membrane file — never surface a record whose data is already gone.
	if err := s.fs.RemoveChild(tree, recName+memSuffix); err != nil {
		return err
	}
	if err := s.fs.FreeInode(memIno); err != nil {
		return err
	}
	if sensIno != 0 {
		if err := s.fs.RemoveChild(tree, recName+sensSuffix); err != nil {
			return err
		}
		if err := s.fs.FreeInode(sensIno); err != nil {
			return err
		}
	}
	if err := s.fs.RemoveChild(tree, recName+dataSuffix); err != nil {
		return err
	}
	if err := s.fs.FreeInode(dataIno); err != nil {
		return err
	}
	// Shred keys so any residues (ciphertext) stay unreadable forever.
	if _, err := s.vault.Shred(pdid); err != nil &&
		!errors.Is(err, cryptoshred.ErrNoKey) && !errors.Is(err, cryptoshred.ErrKeyDestroyed) {
		return err
	}
	if _, err := s.vault.Shred(pdid + sensKeySuffix); err != nil &&
		!errors.Is(err, cryptoshred.ErrNoKey) && !errors.Is(err, cryptoshred.ErrKeyDestroyed) {
		return err
	}
	s.bumpStats(func(st *Stats) { st.Deletes++ })
	return nil
}

// RawCiphertext returns the stored (encrypted) record bytes; together with
// the escrow record this is what a legal authority would receive.
func (s *Store) RawCiphertext(tok *lsm.Token, pdid string) ([]byte, error) {
	if err := s.check(tok, lsm.OpExport, pdid); err != nil {
		return nil, err
	}
	r, _, err := s.resolve(pdid)
	if err != nil {
		return nil, err
	}
	shard := s.shardFor(r.subjectID)
	shard.RLock()
	defer shard.RUnlock()
	_, dataIno, _, _, err := s.recordInos(r)
	if err != nil {
		return nil, err
	}
	return readAll(s.fs, dataIno)
}

// Subjects lists every subject with data in DBFS, sorted.
func (s *Store) Subjects(tok *lsm.Token) ([]string, error) {
	if err := s.check(tok, lsm.OpScan, "subjects"); err != nil {
		return nil, err
	}
	// No shard lock: the inode FS returns a consistent child snapshot, and
	// a scan concurrent with inserts is inherently a racy point-in-time view.
	ents, err := s.fs.Children(s.subjectRoot)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ents))
	for _, e := range ents {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out, nil
}

// ListBySubject returns every pdid belonging to subjectID, sorted.
func (s *Store) ListBySubject(tok *lsm.Token, subjectID string) ([]string, error) {
	if err := s.check(tok, lsm.OpScan, "subject/"+subjectID); err != nil {
		return nil, err
	}
	shard := s.shardFor(subjectID)
	shard.RLock()
	defer shard.RUnlock()
	subjIno, err := s.fs.Lookup(s.subjectRoot, subjectID)
	if errors.Is(err, inode.ErrChildNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	typeTrees, err := s.fs.Children(subjIno)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, tt := range typeTrees {
		recs, err := s.fs.Children(tt.Ino)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if name, ok := strings.CutSuffix(r.Name, memSuffix); ok {
				out = append(out, tt.Name+"/"+subjectID+"/"+name)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// ListByType returns every pdid of a type across all subjects, sorted. It
// walks the schema tree's per-table subject links (the second major tree).
func (s *Store) ListByType(tok *lsm.Token, typeName string) ([]string, error) {
	if err := s.check(tok, lsm.OpScan, "type/"+typeName); err != nil {
		return nil, err
	}
	if _, err := s.schemaFor(typeName); err != nil {
		return nil, err
	}
	// Cross-subject scan: like Subjects, a point-in-time view without shard
	// locks; per-record files are only read later under their shard lock.
	tb, err := s.fs.Lookup(s.schemaRoot, typeName)
	if err != nil {
		return nil, err
	}
	subs, err := s.fs.Lookup(tb, tableSubjectsDir)
	if err != nil {
		return nil, err
	}
	subjects, err := s.fs.Children(subs)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, sj := range subjects {
		recs, err := s.fs.Children(sj.Ino)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if name, ok := strings.CutSuffix(r.Name, memSuffix); ok {
				out = append(out, typeName+"/"+sj.Name+"/"+name)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}
