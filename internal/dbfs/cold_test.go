package dbfs

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cryptoshred"
	"repro/internal/inode"
	"repro/internal/membrane"
)

// coldEnv is newEnv with the cold tier enabled: records idle for an hour
// demote on the next repack pass.
func coldEnv(t *testing.T) *testEnv {
	t.Helper()
	e := newEnv(t)
	e.store.ConfigureColdTier(time.Hour)
	e.mustCreateUser(t)
	return e
}

func TestColdDemoteThenTransparentPromote(t *testing.T) {
	e := coldEnv(t)
	p1, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Freshly touched records stay hot.
	ps, err := e.store.RepackCold(e.tok, e.clock.Now())
	if err != nil {
		t.Fatalf("RepackCold: %v", err)
	}
	if ps.Demoted != 0 {
		t.Fatalf("fresh records demoted: %+v", ps)
	}

	e.clock.Advance(2 * time.Hour)
	ps, err = e.store.RepackCold(e.tok, e.clock.Now())
	if err != nil {
		t.Fatalf("RepackCold: %v", err)
	}
	if ps.Demoted != 2 || ps.Subjects != 1 {
		t.Fatalf("PassStats = %+v, want Demoted 2 over 1 subject", ps)
	}
	if ps.RawBytes <= 0 || ps.StoredBytes <= 0 || ps.StoredBytes > ps.RawBytes {
		t.Fatalf("PassStats bytes = %+v, want 0 < stored <= raw", ps)
	}
	st := e.store.Stats()
	if st.Demotions != 2 || st.ColdRecords != 2 || st.Promotions != 0 {
		t.Fatalf("Stats = %+v, want 2 demotions, 2 cold records", st)
	}

	// First read promotes transparently — same namespace, same answer.
	rec, err := e.store.GetRecord(e.tok, p1)
	if err != nil {
		t.Fatalf("GetRecord(archived): %v", err)
	}
	if rec["name"].S != "Alice Martin" || rec["pwd"].S != "correct-horse" || rec["year_of_birthdate"].I != 1990 {
		t.Fatalf("promoted record = %v", rec)
	}
	m, err := e.store.GetMembrane(e.tok, p2)
	if err != nil {
		t.Fatalf("GetMembrane(archived): %v", err)
	}
	if m.PDID != p2 {
		t.Fatalf("membrane identity = %+v", m)
	}
	st = e.store.Stats()
	if st.Promotions != 2 {
		t.Fatalf("Stats.Promotions = %d, want 2", st.Promotions)
	}
	// Promotion retains the (now stale, never served) archive entries.
	if st.ColdRecords != 2 {
		t.Fatalf("Stats.ColdRecords = %d after promotion, want 2 (entries retained)", st.ColdRecords)
	}
}

func TestColdListingsIncludeArchived(t *testing.T) {
	e := coldEnv(t)
	pdid, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(2 * time.Hour)
	if _, err := e.store.RepackCold(e.tok, e.clock.Now()); err != nil {
		t.Fatal(err)
	}

	bySubj, err := e.store.ListBySubject(e.tok, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(bySubj) != 1 || bySubj[0] != pdid {
		t.Fatalf("ListBySubject = %v, want [%s]", bySubj, pdid)
	}
	byType, err := e.store.ListByType(e.tok, "user")
	if err != nil {
		t.Fatal(err)
	}
	if len(byType) != 1 || byType[0] != pdid {
		t.Fatalf("ListByType = %v, want [%s]", byType, pdid)
	}

	// Promote, then verify the retained archive entry does not double-list.
	if _, err := e.store.GetRecord(e.tok, pdid); err != nil {
		t.Fatal(err)
	}
	bySubj, err = e.store.ListBySubject(e.tok, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(bySubj) != 1 {
		t.Fatalf("ListBySubject after promotion = %v, want exactly one entry", bySubj)
	}
	byType, err = e.store.ListByType(e.tok, "user")
	if err != nil {
		t.Fatal(err)
	}
	if len(byType) != 1 {
		t.Fatalf("ListByType after promotion = %v, want exactly one entry", byType)
	}
}

func TestColdRedemotionDedups(t *testing.T) {
	e := coldEnv(t)
	pdid, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(2 * time.Hour)
	if _, err := e.store.RepackCold(e.tok, e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.store.GetRecord(e.tok, pdid); err != nil {
		t.Fatal(err)
	}
	// The record re-idles unchanged: re-demotion content-addresses onto the
	// retained chunks — every part is a dedup hit, no new archive bytes.
	e.clock.Advance(2 * time.Hour)
	ps, err := e.store.RepackCold(e.tok, e.clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if ps.Demoted != 1 || ps.DedupHits != 3 {
		t.Fatalf("PassStats = %+v, want 1 demoted with 3 dedup hits (data, sens, mem)", ps)
	}
	if ps.StoredBytes != 0 {
		t.Fatalf("PassStats.StoredBytes = %d on unchanged re-demotion, want 0", ps.StoredBytes)
	}
	if st := e.store.Stats(); st.ColdDedupHits != 3 {
		t.Fatalf("Stats.ColdDedupHits = %d, want 3", st.ColdDedupHits)
	}
}

func TestColdIndexSurvivesRemount(t *testing.T) {
	e := coldEnv(t)
	pdid, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(2 * time.Hour)
	if _, err := e.store.RepackCold(e.tok, e.clock.Now()); err != nil {
		t.Fatal(err)
	}

	st2, err := Open([]*inode.FS{e.fs}, e.guard, e.vault, e.clock)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if st := st2.Stats(); st.ColdRecords != 1 {
		t.Fatalf("remounted ColdRecords = %d, want 1 (index rebuilt)", st.ColdRecords)
	}
	rec, err := st2.GetRecord(e.tok, pdid)
	if err != nil {
		t.Fatalf("GetRecord after remount: %v", err)
	}
	if rec["name"].S != "Alice Martin" {
		t.Fatalf("record after remount = %v", rec)
	}
}

func TestColdDeleteRemovesArchiveEntry(t *testing.T) {
	e := coldEnv(t)
	pdid, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(2 * time.Hour)
	if _, err := e.store.RepackCold(e.tok, e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	if err := e.store.Delete(e.tok, pdid); err != nil {
		t.Fatalf("Delete(archived): %v", err)
	}
	if _, err := e.store.ColdRaw(e.tok, pdid); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("ColdRaw after Delete = %v, want ErrNoRecord", err)
	}
	if got, err := e.store.ListBySubject(e.tok, "alice"); err != nil || len(got) != 0 {
		t.Fatalf("ListBySubject after Delete = %v, %v, want empty", got, err)
	}
	if st := e.store.Stats(); st.ColdRecords != 0 {
		t.Fatalf("ColdRecords after Delete = %d, want 0", st.ColdRecords)
	}
}

func TestColdConcurrentPromotion(t *testing.T) {
	e := coldEnv(t)
	pdid, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(2 * time.Hour)
	if _, err := e.store.RepackCold(e.tok, e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec, err := e.store.GetRecord(e.tok, pdid)
			if err != nil {
				t.Errorf("GetRecord: %v", err)
				return
			}
			if rec["name"].S != "Alice Martin" {
				t.Errorf("record = %v", rec)
			}
		}()
	}
	wg.Wait()
	if st := e.store.Stats(); st.Promotions != 1 {
		t.Fatalf("Stats.Promotions = %d after racing readers, want 1", st.Promotions)
	}
}

func TestSnapshotLifecycle(t *testing.T) {
	e := coldEnv(t)
	pa, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := e.store.Insert(e.tok, "user", "bob", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Demote alice so the snapshot spans both tiers.
	e.clock.Advance(2 * time.Hour)
	if _, err := e.store.RepackCold(e.tok, e.clock.Now()); err != nil {
		t.Fatal(err)
	}

	n, err := e.store.SnapshotMembranes(e.tok, "t0")
	if err != nil {
		t.Fatalf("SnapshotMembranes: %v", err)
	}
	if n != 2 {
		t.Fatalf("snapshot captured %d records, want 2 (one hot, one archived)", n)
	}
	if _, err := e.store.SnapshotMembranes(e.tok, "t0"); !errors.Is(err, ErrSnapshotExists) {
		t.Fatalf("duplicate label = %v, want ErrSnapshotExists", err)
	}
	if _, err := e.store.SnapshotMembranes(e.tok, "bad/label"); !errors.Is(err, ErrBadPDID) {
		t.Fatalf("slashed label = %v, want ErrBadPDID", err)
	}
	labels, err := e.store.Snapshots(e.tok)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 1 || labels[0] != "t0" {
		t.Fatalf("Snapshots = %v, want [t0]", labels)
	}
	if st := e.store.Stats(); st.SnapshotsTaken != 1 {
		t.Fatalf("Stats.SnapshotsTaken = %d, want 1", st.SnapshotsTaken)
	}

	m0, err := e.store.SnapshotMembrane(e.tok, "t0", pb)
	if err != nil {
		t.Fatalf("SnapshotMembrane(hot record): %v", err)
	}
	if m0.PDID != pb {
		t.Fatalf("snapshot membrane identity = %+v", m0)
	}
	ma, err := e.store.SnapshotMembrane(e.tok, "t0", pa)
	if err != nil {
		t.Fatalf("SnapshotMembrane(archived record): %v", err)
	}
	if ma.PDID != pa {
		t.Fatalf("snapshot membrane identity = %+v", ma)
	}

	// The snapshot is immutable: mutating the live membrane does not bleed
	// into the captured image.
	if _, err := e.store.MutateMembrane(e.tok, pb, func(m *membrane.Membrane) error {
		m.TTL += 24 * time.Hour
		return nil
	}); err != nil {
		t.Fatalf("MutateMembrane: %v", err)
	}
	again, err := e.store.SnapshotMembrane(e.tok, "t0", pb)
	if err != nil {
		t.Fatal(err)
	}
	if again.TTL != m0.TTL {
		t.Fatalf("snapshot TTL drifted: %v -> %v", m0.TTL, again.TTL)
	}

	if _, err := e.store.SnapshotMembrane(e.tok, "nope", pb); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("unknown label = %v, want ErrNoSnapshot", err)
	}
}

// TestEraseKillsArchiveAndSnapshot is the cryptoshred/cold-tier interplay
// contract: after Erase, the record's archived ciphertext and its snapshot
// entries are undecodable — ErrKeyDestroyed, never plaintext.
func TestEraseKillsArchiveAndSnapshot(t *testing.T) {
	e := coldEnv(t)
	pdid, err := e.store.Insert(e.tok, "user", "alice", aliceRecord(), nil)
	if err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(2 * time.Hour)
	if _, err := e.store.RepackCold(e.tok, e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.store.SnapshotMembranes(e.tok, "pre-erase"); err != nil {
		t.Fatal(err)
	}

	if _, err := e.store.Erase(e.tok, pdid); err != nil {
		t.Fatalf("Erase(archived record): %v", err)
	}

	// The archive entry survives Erase (its ciphertext is exactly as dead
	// as the hot tier's) but no key can open it.
	parts, err := e.store.ColdRaw(e.tok, pdid)
	if err != nil {
		t.Fatalf("ColdRaw after Erase: %v", err)
	}
	for _, name := range []string{"data", "sens"} {
		ct := parts[name]
		if ct == nil {
			t.Fatalf("archived part %q missing", name)
		}
		if bytes.Contains(ct, []byte("Alice Martin")) || bytes.Contains(ct, []byte("correct-horse")) {
			t.Fatalf("archived part %q holds plaintext", name)
		}
	}
	if _, err := e.vault.Open(pdid, parts["data"]); !errors.Is(err, cryptoshred.ErrKeyDestroyed) {
		t.Fatalf("Open(archived data) after Erase = %v, want ErrKeyDestroyed", err)
	}
	if _, err := e.vault.Open(pdid+sensKeySuffix, parts["sens"]); !errors.Is(err, cryptoshred.ErrKeyDestroyed) {
		t.Fatalf("Open(archived sens) after Erase = %v, want ErrKeyDestroyed", err)
	}

	// The pre-erase snapshot's entry was sealed under the shredded key.
	if _, err := e.store.SnapshotMembrane(e.tok, "pre-erase", pdid); !errors.Is(err, cryptoshred.ErrKeyDestroyed) {
		t.Fatalf("SnapshotMembrane(pre-erase) after Erase = %v, want ErrKeyDestroyed", err)
	}
	// A snapshot taken after erasure stores an erased marker — same answer.
	if _, err := e.store.SnapshotMembranes(e.tok, "post-erase"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.store.SnapshotMembrane(e.tok, "post-erase", pdid); !errors.Is(err, cryptoshred.ErrKeyDestroyed) {
		t.Fatalf("SnapshotMembrane(post-erase) = %v, want ErrKeyDestroyed", err)
	}
}
