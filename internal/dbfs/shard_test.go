package dbfs

// Shard-geometry tests: the mount-time shard count (CreateShards /
// core.Options.Shards), its persistence in the per-instance shard config,
// the legacy 16-byte config fallback, and the shard-collision balance
// sweep the SC3 experiment left open — the measured basis for
// DefaultShards = 64.

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/cryptoshred"
	"repro/internal/inode"
	"repro/internal/lsm"
	"repro/internal/simclock"
)

// newShardedEnvShards is newShardedEnv with an explicit shard count.
func newShardedEnvShards(t *testing.T, n, shards int) *shardedEnv {
	t.Helper()
	const devBlocks = 8192
	dev := blockdev.MustMem(devBlocks)
	clock := simclock.NewSim(simclock.Epoch)
	per := uint64(devBlocks / n)
	fss := make([]*inode.FS, n)
	for i := range fss {
		part, err := blockdev.NewPartition(dev, uint64(i)*per, per)
		if err != nil {
			t.Fatalf("NewPartition %d: %v", i, err)
		}
		fss[i], err = inode.Format(part, inode.Options{NInodes: 1024, JournalBlocks: 64, Clock: clock})
		if err != nil {
			t.Fatalf("inode.Format %d: %v", i, err)
		}
	}
	auth, err := cryptoshred.NewAuthority(1024)
	if err != nil {
		t.Fatal(err)
	}
	guard := lsm.NewGuard()
	store, err := CreateShards(fss, guard, cryptoshred.NewVault(auth.PublicKey()), clock, shards)
	if err != nil {
		t.Fatalf("CreateShards: %v", err)
	}
	if err := store.CreateType(store.guard.Mint("boot", lsm.CapDBFS), userSchema()); err != nil {
		t.Fatalf("CreateType: %v", err)
	}
	return &shardedEnv{dev: dev, fss: fss, store: store, tok: guard.Mint("ded", lsm.CapDBFS)}
}

// remount re-mounts an env's device into a fresh Open.
func remount(t *testing.T, e *shardedEnv) (*Store, error) {
	t.Helper()
	clock := simclock.NewSim(simclock.Epoch)
	per := e.dev.NumBlocks() / uint64(len(e.fss))
	fss2 := make([]*inode.FS, len(e.fss))
	for i := range fss2 {
		part, err := blockdev.NewPartition(e.dev, uint64(i)*per, per)
		if err != nil {
			t.Fatal(err)
		}
		if fss2[i], err = inode.Mount(part, clock); err != nil {
			t.Fatalf("Mount %d: %v", i, err)
		}
	}
	return Open(fss2, e.store.guard, e.store.vault, clock)
}

func TestCreateShardsValidation(t *testing.T) {
	e := newShardedEnv(t, 2)
	// Fewer shards than instances would leave instances unreachable.
	if _, err := CreateShards(e.fss, e.store.guard, e.store.vault, e.store.clock, 1); err == nil {
		t.Fatal("CreateShards with shards < instances succeeded")
	}
}

func TestCustomShardCountPersistsAcrossRemount(t *testing.T) {
	e := newShardedEnvShards(t, 2, 16)
	if got := e.store.NumShards(); got != 16 {
		t.Fatalf("NumShards = %d, want 16", got)
	}
	if got := len(e.store.ShardScans()); got != 16 {
		t.Fatalf("len(ShardScans) = %d, want 16", got)
	}
	pdids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		subj := "subj" + strconv.Itoa(i)
		pdid, err := e.store.Insert(e.tok, "user", subj, Record{
			"name": S("user " + subj), "pwd": S("pw"), "year_of_birthdate": I(1990),
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		pdids = append(pdids, pdid)
		if sh := e.store.ShardOf(subj); sh >= 16 {
			t.Fatalf("ShardOf(%q) = %d, outside 16-shard geometry", subj, sh)
		}
	}
	store2, err := remount(t, e)
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	if got := store2.NumShards(); got != 16 {
		t.Fatalf("remounted NumShards = %d, want 16", got)
	}
	for _, pdid := range pdids {
		if _, err := store2.GetRecord(e.tok, pdid); err != nil {
			t.Fatalf("GetRecord %s after remount: %v", pdid, err)
		}
	}
}

// rewriteShardCfg replaces one instance's shard config file contents.
func rewriteShardCfg(t *testing.T, fs *inode.FS, raw []byte) {
	t.Helper()
	ino, err := fs.Lookup(inode.RootIno, shardCfgName)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(ino, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino, 0, raw); err != nil {
		t.Fatal(err)
	}
}

func TestLegacyShardConfigMeansDefaultShards(t *testing.T) {
	e := newShardedEnvShards(t, 2, DefaultShards)
	// Rewrite both instances' configs in the pre-shard-count 16-byte
	// format (instance count, instance index only).
	for i, fs := range e.fss {
		var cfg [16]byte
		binary.LittleEndian.PutUint64(cfg[0:], uint64(len(e.fss)))
		binary.LittleEndian.PutUint64(cfg[8:], uint64(i))
		rewriteShardCfg(t, fs, cfg[:])
	}
	store2, err := remount(t, e)
	if err != nil {
		t.Fatalf("remount with legacy config: %v", err)
	}
	if got := store2.NumShards(); got != DefaultShards {
		t.Fatalf("legacy config NumShards = %d, want %d", got, DefaultShards)
	}
}

func TestShardCountMismatchRejected(t *testing.T) {
	e := newShardedEnvShards(t, 2, 16)
	// Doctor instance 1 to claim a different shard count: remount must
	// refuse rather than silently re-route subjects.
	var cfg [24]byte
	binary.LittleEndian.PutUint64(cfg[0:], 2)
	binary.LittleEndian.PutUint64(cfg[8:], 1)
	binary.LittleEndian.PutUint64(cfg[16:], 32)
	rewriteShardCfg(t, e.fss[1], cfg[:])
	if _, err := remount(t, e); err == nil {
		t.Fatal("remount with mismatched shard counts succeeded")
	}
}

// TestShardBalanceSweep is the shard-collision sweep SC3 left open: over a
// realistic synthetic subject population (the "sNNNNNN" IDs the workload
// generator emits — workload itself imports dbfs, so the format is
// replicated here), measure per-shard load skew for candidate shard
// counts. The assertion pins the chosen default: at 64 shards the most
// loaded shard stays within 2x of the mean under FNV-1a. The logged table
// is the data recorded in DESIGN.md.
func TestShardBalanceSweep(t *testing.T) {
	subjects := make([]string, 50000)
	for i := range subjects {
		subjects[i] = fmt.Sprintf("s%06d", i+1)
	}
	for _, n := range []int{16, 32, 64, 128, 256} {
		counts := make([]int, n)
		for _, s := range subjects {
			counts[hashSubject(s)%uint32(n)]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		mean := float64(len(subjects)) / float64(n)
		skew := float64(max) / mean
		t.Logf("shards=%3d  mean=%7.1f  max=%5d  skew=%.3f", n, mean, max, skew)
		if n == DefaultShards && skew > 2.0 {
			t.Fatalf("default %d shards skew %.3f exceeds 2x", n, skew)
		}
	}
}

func TestMembraneCacheRuntimeResize(t *testing.T) {
	e := newShardedEnv(t, 2)
	subj := "resize-subj"
	pdid, err := e.store.Insert(e.tok, "user", subj, Record{
		"name": S("R"), "pwd": S("pw"), "year_of_birthdate": I(1990),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	read := func() {
		t.Helper()
		if _, err := e.store.GetMembrane(e.tok, pdid); err != nil {
			t.Fatal(err)
		}
	}
	read() // insert write-through makes this a hit already
	base := e.store.Stats()
	if base.CacheHits == 0 {
		t.Fatalf("expected warm cache, stats %+v", base)
	}
	// Growing the cache must preserve entries: the next read is a hit
	// with no new miss.
	e.store.ConfigureMembraneCache(2 * DefaultMembraneCacheCap)
	read()
	st := e.store.Stats()
	if st.CacheHits != base.CacheHits+1 || st.CacheMisses != base.CacheMisses {
		t.Fatalf("resize dropped entries: before %+v after %+v", base, st)
	}
	if got := e.store.MembraneCacheCap(); got != 2*DefaultMembraneCacheCap {
		t.Fatalf("MembraneCacheCap = %d, want %d", got, 2*DefaultMembraneCacheCap)
	}
	// Disabling swaps the cache out; reads still serve correct data.
	e.store.ConfigureMembraneCache(-1)
	if got := e.store.MembraneCacheCap(); got != -1 {
		t.Fatalf("MembraneCacheCap after disable = %d, want -1", got)
	}
	read()
	// Re-enabling starts empty and refills: one miss, then hits.
	e.store.ConfigureMembraneCache(0)
	read()
	read()
	st2 := e.store.Stats()
	if st2.CacheMisses == 0 || st2.CacheHits == 0 {
		t.Fatalf("re-enabled cache not refilling: %+v", st2)
	}
}

// TestShardScansSizedToGeometry pins ShardScans to the mounted geometry
// so shard-congruent consumers (the rights due-index) can trust its
// length.
func TestShardScansSizedToGeometry(t *testing.T) {
	for _, shards := range []int{8, 64} {
		e := newShardedEnvShards(t, 2, shards)
		if got := len(e.store.ShardScans()); got != shards {
			t.Fatalf("shards=%d: len(ShardScans) = %d", shards, got)
		}
		subj := fmt.Sprintf("scan-subj-%d", shards)
		if _, err := e.store.Insert(e.tok, "user", subj, Record{
			"name": S("X"), "pwd": S("pw"), "year_of_birthdate": I(1990),
		}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := e.store.ListBySubject(e.tok, subj); err != nil {
			t.Fatal(err)
		}
		scans := e.store.ShardScans()
		if scans[e.store.ShardOf(subj)] == 0 {
			t.Fatalf("shards=%d: subject scan not counted on its shard", shards)
		}
	}
}
