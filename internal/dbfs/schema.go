// Package dbfs implements the paper's database-oriented filesystem (Idea 3,
// §2–§3): personal data is stored not as opaque files but as typed records
// in tables, each wrapped in a membrane, organized as two major inode trees
// over the uFS-style inode layer.
//
//   - The subject tree gathers every PD from all subjects, one inode subtree
//     per subject holding both the data and its membrane.
//   - The schema tree provides the database structure: a core inode per
//     table describing the fields, plus links to the subject inodes that
//     hold records of that table.
//   - A dedicated format tree describes how record bytes are encoded; it is
//     loaded once per mount session and used to format data returned to the
//     DED, exactly as §3(1) sketches.
//
// Record payloads are encrypted at rest with per-PD keys
// (internal/cryptoshred), and fields marked sensitive are stored separately
// under their own key — the GDPR's separation requirement for sensitive
// data (§2). Every access is mediated by an LSM capability check: DBFS "is
// not visible from the outside" (§2); only a token holding CapDBFS (minted
// for the DED) passes.
package dbfs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/membrane"
)

// FieldType is the type of a schema field.
type FieldType int

// Field types supported by the record codec.
const (
	TypeString FieldType = iota + 1
	TypeInt
	TypeFloat
	TypeBool
	TypeTime
)

// String returns the DSL spelling of the type.
func (t FieldType) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeBool:
		return "bool"
	case TypeTime:
		return "time"
	default:
		return fmt.Sprintf("fieldtype(%d)", int(t))
	}
}

// ParseFieldType maps a DSL spelling to a FieldType.
func ParseFieldType(s string) (FieldType, error) {
	switch s {
	case "string":
		return TypeString, nil
	case "int":
		return TypeInt, nil
	case "float":
		return TypeFloat, nil
	case "bool":
		return TypeBool, nil
	case "time":
		return TypeTime, nil
	default:
		return 0, fmt.Errorf("dbfs: unknown field type %q", s)
	}
}

// Field is one typed column of a PD type.
type Field struct {
	Name string    `json:"name"`
	Type FieldType `json:"type"`
	// Sensitive marks fields that must be stored separately under their
	// own data key (§2's sensibility level at field granularity).
	Sensitive bool `json:"sensitive,omitempty"`
}

// View is a named projection of a type — the paper's data-minimization
// mechanism: "a specific representation or fragment of the data type".
type View struct {
	Name   string   `json:"name"`
	Fields []string `json:"fields"`
}

// Schema describes one PD type: a table in the kernel's database.
type Schema struct {
	Name   string  `json:"name"`
	Fields []Field `json:"fields"`
	Views  []View  `json:"views,omitempty"`
	// DefaultConsent is Listing 1's consent block: the grants applied when
	// data of this type is collected, backed by the operator's legitimate
	// basis.
	DefaultConsent map[string]membrane.Grant `json:"default_consent,omitempty"`
	// Collection maps collection method to interface reference (Listing
	// 1's collection block).
	Collection map[string]string `json:"collection,omitempty"`
	// DefaultTTL is Listing 1's "age" property.
	DefaultTTL time.Duration `json:"default_ttl,omitempty"`
	// Origin is the default provenance of collected records.
	Origin membrane.Origin `json:"origin,omitempty"`
	// Sensitivity is the type-level sensibility.
	Sensitivity membrane.Sensitivity `json:"sensitivity,omitempty"`
}

// Sentinel errors for schema and record validation.
var (
	// ErrBadSchema reports an invalid schema.
	ErrBadSchema = errors.New("dbfs: invalid schema")
	// ErrBadRecord reports a record not matching its schema.
	ErrBadRecord = errors.New("dbfs: record does not match schema")
	// ErrNoView reports a reference to an undeclared view.
	ErrNoView = errors.New("dbfs: no such view")
	// ErrFieldHidden reports a field access outside the granted view.
	ErrFieldHidden = errors.New("dbfs: field not visible in granted view")
)

// Validate checks structural invariants: unique names, known types, views
// referencing declared fields, default consents referencing declared views.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("%w: empty type name", ErrBadSchema)
	}
	if len(s.Fields) == 0 {
		return fmt.Errorf("%w: type %q has no fields", ErrBadSchema, s.Name)
	}
	fields := make(map[string]bool, len(s.Fields))
	for _, f := range s.Fields {
		if f.Name == "" {
			return fmt.Errorf("%w: type %q has unnamed field", ErrBadSchema, s.Name)
		}
		if fields[f.Name] {
			return fmt.Errorf("%w: duplicate field %q", ErrBadSchema, f.Name)
		}
		if f.Type < TypeString || f.Type > TypeTime {
			return fmt.Errorf("%w: field %q has unknown type", ErrBadSchema, f.Name)
		}
		fields[f.Name] = true
	}
	views := make(map[string]bool, len(s.Views))
	for _, v := range s.Views {
		if v.Name == "" {
			return fmt.Errorf("%w: unnamed view", ErrBadSchema)
		}
		if views[v.Name] {
			return fmt.Errorf("%w: duplicate view %q", ErrBadSchema, v.Name)
		}
		if len(v.Fields) == 0 {
			return fmt.Errorf("%w: view %q is empty", ErrBadSchema, v.Name)
		}
		for _, fn := range v.Fields {
			if !fields[fn] {
				return fmt.Errorf("%w: view %q references unknown field %q", ErrBadSchema, v.Name, fn)
			}
		}
		views[v.Name] = true
	}
	for purpose, g := range s.DefaultConsent {
		if purpose == "" {
			return fmt.Errorf("%w: empty purpose in default consent", ErrBadSchema)
		}
		if g.Kind == membrane.GrantView && !views[g.View] {
			return fmt.Errorf("%w: consent for %q references unknown view %q", ErrBadSchema, purpose, g.View)
		}
	}
	return nil
}

// ViewByName returns the named view.
func (s *Schema) ViewByName(name string) (View, bool) {
	for _, v := range s.Views {
		if v.Name == name {
			return v, true
		}
	}
	return View{}, false
}

// FieldByName returns the named field.
func (s *Schema) FieldByName(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// VisibleFields resolves a grant to the set of field names it exposes.
func (s *Schema) VisibleFields(g membrane.Grant) (map[string]bool, error) {
	switch g.Kind {
	case membrane.GrantAll:
		out := make(map[string]bool, len(s.Fields))
		for _, f := range s.Fields {
			out[f.Name] = true
		}
		return out, nil
	case membrane.GrantView:
		v, ok := s.ViewByName(g.View)
		if !ok {
			return nil, fmt.Errorf("%w: %q in type %q", ErrNoView, g.View, s.Name)
		}
		out := make(map[string]bool, len(v.Fields))
		for _, fn := range v.Fields {
			out[fn] = true
		}
		return out, nil
	default:
		return map[string]bool{}, nil
	}
}

// DefaultMembrane builds the membrane applied to a newly collected record of
// this type, per Listing 1's defaults.
func (s *Schema) DefaultMembrane(pdid, subjectID string, now time.Time) *membrane.Membrane {
	m := membrane.New(pdid, s.Name, subjectID)
	if s.Origin != 0 {
		m.Origin = s.Origin
	}
	if s.Sensitivity != 0 {
		m.Sensitivity = s.Sensitivity
	}
	for p, g := range s.DefaultConsent {
		m.Consents[p] = g
	}
	m.TTL = s.DefaultTTL
	m.CreatedAt = now
	for k, v := range s.Collection {
		m.Collection[k] = v
	}
	return m
}

// EncodeSchema serializes a schema for the schema tree's "def" inode.
func EncodeSchema(s *Schema) ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("dbfs: encode schema %q: %w", s.Name, err)
	}
	return b, nil
}

// DecodeSchema deserializes and validates a schema.
func DecodeSchema(b []byte) (*Schema, error) {
	var s Schema
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("dbfs: decode schema: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Value is one typed field value. Exactly the field matching Type is
// meaningful; constructors enforce this.
type Value struct {
	Type FieldType `json:"type"`
	S    string    `json:"s,omitempty"`
	I    int64     `json:"i,omitempty"`
	F    float64   `json:"f,omitempty"`
	B    bool      `json:"b,omitempty"`
	T    time.Time `json:"t,omitempty"`
}

// S constructs a string value.
func S(v string) Value { return Value{Type: TypeString, S: v} }

// I constructs an int value.
func I(v int64) Value { return Value{Type: TypeInt, I: v} }

// F constructs a float value.
func F(v float64) Value { return Value{Type: TypeFloat, F: v} }

// B constructs a bool value.
func B(v bool) Value { return Value{Type: TypeBool, B: v} }

// T constructs a time value.
func T(v time.Time) Value { return Value{Type: TypeTime, T: v} }

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case TypeString:
		return v.S == o.S
	case TypeInt:
		return v.I == o.I
	case TypeFloat:
		return v.F == o.F
	case TypeBool:
		return v.B == o.B
	case TypeTime:
		return v.T.Equal(o.T)
	default:
		return false
	}
}

// String renders the value for humans.
func (v Value) String() string {
	switch v.Type {
	case TypeString:
		return v.S
	case TypeInt:
		return fmt.Sprintf("%d", v.I)
	case TypeFloat:
		return fmt.Sprintf("%g", v.F)
	case TypeBool:
		return fmt.Sprintf("%t", v.B)
	case TypeTime:
		return v.T.UTC().Format(time.RFC3339)
	default:
		return "<invalid>"
	}
}

// Export returns the value as a plain Go value for the structured,
// machine-readable exports of the right of access.
func (v Value) Export() any {
	switch v.Type {
	case TypeString:
		return v.S
	case TypeInt:
		return v.I
	case TypeFloat:
		return v.F
	case TypeBool:
		return v.B
	case TypeTime:
		return v.T.UTC().Format(time.RFC3339)
	default:
		return nil
	}
}

// Record maps field names to values.
type Record map[string]Value

// Clone returns a copy of the record.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// FieldNames returns the record's field names, sorted.
func (r Record) FieldNames() []string {
	out := make([]string, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// validateRecord checks that every record field exists in the schema with
// the right type. Missing fields are allowed (views, partial updates).
func validateRecord(s *Schema, r Record) error {
	for name, v := range r {
		f, ok := s.FieldByName(name)
		if !ok {
			return fmt.Errorf("%w: unknown field %q in type %q", ErrBadRecord, name, s.Name)
		}
		if f.Type != v.Type {
			return fmt.Errorf("%w: field %q is %v, value is %v", ErrBadRecord, name, f.Type, v.Type)
		}
	}
	return nil
}

// encodeRecordPart serializes the subset of r covered by part (field names)
// in schema order: for each schema field in part, a presence byte then the
// value payload. Schema-ordered encoding means no field names on disk; the
// format tree carries the mapping.
func encodeRecordPart(s *Schema, r Record, part map[string]bool) ([]byte, error) {
	if err := validateRecord(s, r); err != nil {
		return nil, err
	}
	var out []byte
	var scratch [8]byte
	for _, f := range s.Fields {
		if !part[f.Name] {
			continue
		}
		v, ok := r[f.Name]
		if !ok {
			out = append(out, 0)
			continue
		}
		out = append(out, 1)
		switch f.Type {
		case TypeString:
			binary.LittleEndian.PutUint32(scratch[:4], uint32(len(v.S)))
			out = append(out, scratch[:4]...)
			out = append(out, v.S...)
		case TypeInt:
			binary.LittleEndian.PutUint64(scratch[:], uint64(v.I))
			out = append(out, scratch[:]...)
		case TypeFloat:
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v.F))
			out = append(out, scratch[:]...)
		case TypeBool:
			if v.B {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		case TypeTime:
			binary.LittleEndian.PutUint64(scratch[:], uint64(v.T.UnixNano()))
			out = append(out, scratch[:]...)
		}
	}
	return out, nil
}

// decodeRecordPart is the inverse of encodeRecordPart.
func decodeRecordPart(s *Schema, data []byte, part map[string]bool) (Record, error) {
	out := make(Record)
	off := 0
	need := func(n int) error {
		if off+n > len(data) {
			return fmt.Errorf("%w: truncated record for type %q", ErrBadRecord, s.Name)
		}
		return nil
	}
	for _, f := range s.Fields {
		if !part[f.Name] {
			continue
		}
		if err := need(1); err != nil {
			return nil, err
		}
		present := data[off] == 1
		off++
		if !present {
			continue
		}
		switch f.Type {
		case TypeString:
			if err := need(4); err != nil {
				return nil, err
			}
			n := int(binary.LittleEndian.Uint32(data[off:]))
			off += 4
			if err := need(n); err != nil {
				return nil, err
			}
			out[f.Name] = S(string(data[off : off+n]))
			off += n
		case TypeInt:
			if err := need(8); err != nil {
				return nil, err
			}
			out[f.Name] = I(int64(binary.LittleEndian.Uint64(data[off:])))
			off += 8
		case TypeFloat:
			if err := need(8); err != nil {
				return nil, err
			}
			out[f.Name] = F(math.Float64frombits(binary.LittleEndian.Uint64(data[off:])))
			off += 8
		case TypeBool:
			if err := need(1); err != nil {
				return nil, err
			}
			out[f.Name] = B(data[off] == 1)
			off++
		case TypeTime:
			if err := need(8); err != nil {
				return nil, err
			}
			out[f.Name] = T(time.Unix(0, int64(binary.LittleEndian.Uint64(data[off:]))).UTC())
			off += 8
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(data)-off)
	}
	return out, nil
}

// partsOf splits a schema's fields into the plain part and the sensitive
// part (stored separately, §2).
func partsOf(s *Schema) (plain, sensitive map[string]bool) {
	plain = make(map[string]bool)
	sensitive = make(map[string]bool)
	for _, f := range s.Fields {
		if f.Sensitive {
			sensitive[f.Name] = true
		} else {
			plain[f.Name] = true
		}
	}
	return plain, sensitive
}

// ProjectView filters rec down to the fields a grant exposes. GrantNone
// yields an error: the caller should never have reached the data.
func ProjectView(s *Schema, rec Record, g membrane.Grant) (Record, error) {
	if !g.Allows() {
		return nil, fmt.Errorf("%w: grant is none", ErrFieldHidden)
	}
	visible, err := s.VisibleFields(g)
	if err != nil {
		return nil, err
	}
	out := make(Record, len(visible))
	for name, v := range rec {
		if visible[name] {
			out[name] = v
		}
	}
	return out, nil
}
