// Package plainfs is the traditional file-based filesystem of the
// reproduction: a minimal ext4-like layer (paths, directories, whole files)
// over the journaled inode layer.
//
// In the paper's architecture it plays two roles. First, it is rgpdOS's
// second filesystem — the one holding non-personal data, "implemented with a
// traditional filesystem (e.g. ext4) which works at the file granularity"
// (§2), accessible to any process. Second, it is the substrate under the
// Fig. 2 baseline, where a userspace DB engine with GDPR logic sits on a
// general-purpose OS: because plainfs sees only bytes, its journal and free
// space retain images of records the DB engine believes it deleted — the
// right-to-be-forgotten violation the paper's introduction calls out.
package plainfs

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/blockdev"
	"repro/internal/inode"
	"repro/internal/simclock"
)

// Sentinel errors.
var (
	// ErrNotFound reports a missing path component.
	ErrNotFound = errors.New("plainfs: no such file or directory")
	// ErrExists reports a create over an existing name.
	ErrExists = errors.New("plainfs: file exists")
	// ErrNotDir reports a file used as a directory.
	ErrNotDir = errors.New("plainfs: not a directory")
	// ErrIsDir reports a directory used as a file.
	ErrIsDir = errors.New("plainfs: is a directory")
	// ErrNotEmpty reports removal of a non-empty directory.
	ErrNotEmpty = errors.New("plainfs: directory not empty")
	// ErrBadPath reports a malformed path.
	ErrBadPath = errors.New("plainfs: bad path")
)

// Entry is one directory listing row.
type Entry struct {
	Name  string
	IsDir bool
	Size  uint64
}

// FS is a mounted file-based filesystem. Safe for concurrent use (the inode
// layer serializes).
type FS struct {
	in *inode.FS
}

// Format initializes dev with an empty plainfs and returns it mounted.
func Format(dev blockdev.Device, opts inode.Options) (*FS, error) {
	in, err := inode.Format(dev, opts)
	if err != nil {
		return nil, fmt.Errorf("plainfs: format: %w", err)
	}
	return &FS{in: in}, nil
}

// Mount opens a previously formatted device, replaying the journal.
func Mount(dev blockdev.Device, clock simclock.Clock) (*FS, error) {
	in, err := inode.Mount(dev, clock)
	if err != nil {
		return nil, fmt.Errorf("plainfs: mount: %w", err)
	}
	return &FS{in: in}, nil
}

// Inode exposes the underlying inode filesystem for experiments (journal
// region attribution, residue scans).
func (f *FS) Inode() *inode.FS { return f.in }

// splitPath normalizes "/a/b/c" into components. The root is "/" or "".
func splitPath(path string) ([]string, error) {
	if strings.Contains(path, "//") {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	for _, p := range parts {
		if p == "." || p == ".." {
			return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
		}
	}
	return parts, nil
}

// walk resolves path to an inode, requiring every intermediate component to
// be a tree (directory).
func (f *FS) walk(path string) (inode.Ino, error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, err
	}
	cur := inode.RootIno
	for i, p := range parts {
		info, err := f.in.Stat(cur)
		if err != nil {
			return 0, err
		}
		if info.Mode != inode.ModeTree {
			return 0, fmt.Errorf("%w: %q", ErrNotDir, strings.Join(parts[:i], "/"))
		}
		next, err := f.in.Lookup(cur, p)
		if err != nil {
			if errors.Is(err, inode.ErrChildNotFound) {
				return 0, fmt.Errorf("%w: %q", ErrNotFound, path)
			}
			return 0, err
		}
		cur = next
	}
	return cur, nil
}

// walkParent resolves the directory containing path and returns it with the
// final component name.
func (f *FS) walkParent(path string) (inode.Ino, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, "", err
	}
	if len(parts) == 0 {
		return 0, "", fmt.Errorf("%w: root has no parent", ErrBadPath)
	}
	dir := strings.Join(parts[:len(parts)-1], "/")
	parent, err := f.walk(dir)
	if err != nil {
		return 0, "", err
	}
	info, err := f.in.Stat(parent)
	if err != nil {
		return 0, "", err
	}
	if info.Mode != inode.ModeTree {
		return 0, "", fmt.Errorf("%w: %q", ErrNotDir, dir)
	}
	return parent, parts[len(parts)-1], nil
}

// Mkdir creates a single directory; the parent must exist.
func (f *FS) Mkdir(path string) error {
	parent, name, err := f.walkParent(path)
	if err != nil {
		return err
	}
	if _, err := f.in.Lookup(parent, name); err == nil {
		return fmt.Errorf("%w: %q", ErrExists, path)
	}
	ino, err := f.in.AllocInode(inode.ModeTree, "")
	if err != nil {
		return err
	}
	if err := f.in.AddChild(parent, name, ino); err != nil {
		_ = f.in.FreeInode(ino) // best-effort rollback of the orphan
		return err
	}
	return nil
}

// MkdirAll creates path and any missing parents.
func (f *FS) MkdirAll(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, p := range parts {
		cur = cur + "/" + p
		err := f.Mkdir(cur)
		if err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	return nil
}

// WriteFile creates or replaces the file at path with data.
func (f *FS) WriteFile(path string, data []byte) error {
	parent, name, err := f.walkParent(path)
	if err != nil {
		return err
	}
	existing, err := f.in.Lookup(parent, name)
	switch {
	case err == nil:
		info, err := f.in.Stat(existing)
		if err != nil {
			return err
		}
		if info.Mode == inode.ModeTree {
			return fmt.Errorf("%w: %q", ErrIsDir, path)
		}
		if err := f.in.Truncate(existing, 0); err != nil {
			return err
		}
		_, err = f.in.WriteAt(existing, 0, data)
		return err
	case errors.Is(err, inode.ErrChildNotFound):
		ino, err := f.in.AllocInode(inode.ModeFile, "")
		if err != nil {
			return err
		}
		if _, err := f.in.WriteAt(ino, 0, data); err != nil {
			_ = f.in.FreeInode(ino)
			return err
		}
		if err := f.in.AddChild(parent, name, ino); err != nil {
			_ = f.in.FreeInode(ino)
			return err
		}
		return nil
	default:
		return err
	}
}

// AppendFile appends data to the file at path, creating it if missing.
func (f *FS) AppendFile(path string, data []byte) error {
	ino, err := f.walk(path)
	if errors.Is(err, ErrNotFound) {
		return f.WriteFile(path, data)
	}
	if err != nil {
		return err
	}
	info, err := f.in.Stat(ino)
	if err != nil {
		return err
	}
	if info.Mode == inode.ModeTree {
		return fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	_, err = f.in.WriteAt(ino, info.Size, data)
	return err
}

// ReadFile returns the full contents of the file at path.
func (f *FS) ReadFile(path string) ([]byte, error) {
	ino, err := f.walk(path)
	if err != nil {
		return nil, err
	}
	info, err := f.in.Stat(ino)
	if err != nil {
		return nil, err
	}
	if info.Mode == inode.ModeTree {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	buf := make([]byte, info.Size)
	if _, err := f.in.ReadAt(ino, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Remove deletes the file or empty directory at path. Like ext4, removal
// frees blocks without scrubbing them: the data remains in free space and in
// the journal, which is precisely the baseline's compliance gap.
func (f *FS) Remove(path string) error {
	parent, name, err := f.walkParent(path)
	if err != nil {
		return err
	}
	ino, err := f.in.Lookup(parent, name)
	if err != nil {
		if errors.Is(err, inode.ErrChildNotFound) {
			return fmt.Errorf("%w: %q", ErrNotFound, path)
		}
		return err
	}
	info, err := f.in.Stat(ino)
	if err != nil {
		return err
	}
	if info.Mode == inode.ModeTree {
		children, err := f.in.Children(ino)
		if err != nil {
			return err
		}
		if len(children) > 0 {
			return fmt.Errorf("%w: %q", ErrNotEmpty, path)
		}
	}
	if err := f.in.RemoveChild(parent, name); err != nil {
		return err
	}
	return f.in.FreeInode(ino)
}

// List returns the entries of the directory at path.
func (f *FS) List(path string) ([]Entry, error) {
	ino, err := f.walk(path)
	if err != nil {
		return nil, err
	}
	info, err := f.in.Stat(ino)
	if err != nil {
		return nil, err
	}
	if info.Mode != inode.ModeTree {
		return nil, fmt.Errorf("%w: %q", ErrNotDir, path)
	}
	dirents, err := f.in.Children(ino)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(dirents))
	for _, d := range dirents {
		ci, err := f.in.Stat(d.Ino)
		if err != nil {
			return nil, err
		}
		out = append(out, Entry{Name: d.Name, IsDir: ci.Mode == inode.ModeTree, Size: ci.Size})
	}
	return out, nil
}

// Stat returns metadata for the node at path.
func (f *FS) Stat(path string) (inode.Info, error) {
	ino, err := f.walk(path)
	if err != nil {
		return inode.Info{}, err
	}
	return f.in.Stat(ino)
}

// Exists reports whether path resolves.
func (f *FS) Exists(path string) bool {
	_, err := f.walk(path)
	return err == nil
}
