package plainfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/inode"
	"repro/internal/simclock"
)

func newFS(t *testing.T) (*blockdev.Mem, *FS) {
	t.Helper()
	dev := blockdev.MustMem(1024)
	fs, err := Format(dev, inode.Options{NInodes: 512, JournalBlocks: 64, Clock: simclock.NewSim(simclock.Epoch)})
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return dev, fs
}

func TestWriteReadFile(t *testing.T) {
	_, fs := newFS(t)
	data := []byte("non-personal data: build logs")
	if err := fs.WriteFile("/logs.txt", data); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := fs.ReadFile("/logs.txt")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: %q", got)
	}
}

func TestWriteFileReplaces(t *testing.T) {
	_, fs := newFS(t)
	if err := fs.WriteFile("/f", []byte("first version, quite long")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/f", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("after replace: %q", got)
	}
}

func TestAppendFile(t *testing.T) {
	_, fs := newFS(t)
	if err := fs.AppendFile("/log", []byte("line1\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile("/log", []byte("line2\n")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "line1\nline2\n" {
		t.Fatalf("append result: %q", got)
	}
}

func TestMkdirHierarchy(t *testing.T) {
	_, fs := newFS(t)
	if err := fs.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/data/subjects"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/data/subjects/list.csv", []byte("a,b")); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.List("/data")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "subjects" || !ents[0].IsDir {
		t.Fatalf("List(/data) = %+v", ents)
	}
	ents, err = fs.List("/data/subjects")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "list.csv" || ents[0].IsDir || ents[0].Size != 3 {
		t.Fatalf("List(/data/subjects) = %+v", ents)
	}
}

func TestMkdirAll(t *testing.T) {
	_, fs := newFS(t)
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	if !fs.Exists("/a/b/c") {
		t.Fatal("MkdirAll did not create the chain")
	}
	// Idempotent.
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatalf("repeat MkdirAll: %v", err)
	}
}

func TestMkdirErrors(t *testing.T) {
	_, fs := newFS(t)
	if err := fs.Mkdir("/x/y"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Mkdir missing parent err = %v, want ErrNotFound", err)
	}
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Mkdir err = %v, want ErrExists", err)
	}
	if err := fs.WriteFile("/file", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/file/sub"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("Mkdir under file err = %v, want ErrNotDir", err)
	}
}

func TestReadErrors(t *testing.T) {
	_, fs := newFS(t)
	if _, err := fs.ReadFile("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadFile missing err = %v, want ErrNotFound", err)
	}
	if err := fs.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/dir"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("ReadFile on dir err = %v, want ErrIsDir", err)
	}
	if err := fs.WriteFile("/dir", []byte("x")); !errors.Is(err, ErrIsDir) {
		t.Fatalf("WriteFile on dir err = %v, want ErrIsDir", err)
	}
	if err := fs.AppendFile("/dir", []byte("x")); !errors.Is(err, ErrIsDir) {
		t.Fatalf("AppendFile on dir err = %v, want ErrIsDir", err)
	}
}

func TestBadPaths(t *testing.T) {
	_, fs := newFS(t)
	for _, p := range []string{"/a//b", "/../etc", "/a/./b"} {
		if _, err := fs.ReadFile(p); !errors.Is(err, ErrBadPath) {
			t.Fatalf("ReadFile(%q) err = %v, want ErrBadPath", p, err)
		}
	}
}

func TestRemoveFile(t *testing.T) {
	_, fs := newFS(t)
	if err := fs.WriteFile("/f", []byte("bye")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/f"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if fs.Exists("/f") {
		t.Fatal("file still exists after Remove")
	}
	if err := fs.Remove("/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Remove err = %v, want ErrNotFound", err)
	}
}

func TestRemoveDir(t *testing.T) {
	_, fs := newFS(t)
	if err := fs.MkdirAll("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("Remove non-empty err = %v, want ErrNotEmpty", err)
	}
	if err := fs.Remove("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatalf("Remove empty dir: %v", err)
	}
}

func TestStatRoot(t *testing.T) {
	_, fs := newFS(t)
	info, err := fs.Stat("/")
	if err != nil {
		t.Fatalf("Stat(/): %v", err)
	}
	if info.Mode != inode.ModeTree {
		t.Fatalf("root mode = %v", info.Mode)
	}
	if _, err := fs.List("/"); err != nil {
		t.Fatalf("List(/): %v", err)
	}
}

func TestDeletedFileLeavesResidue(t *testing.T) {
	// The paper's §1 example: data deleted at a higher layer is still
	// present below. plainfs removal leaves both free-space and journal
	// residues on the raw device.
	dev, fs := newFS(t)
	secret := []byte("PATIENT:chiraz:diagnosis=depression")
	if err := fs.WriteFile("/db/row42", append([]byte(nil), secret...)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want parent missing first, got %v", err)
	}
	if err := fs.Mkdir("/db"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/db/row42", secret); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/db/row42"); err != nil {
		t.Fatal(err)
	}
	hits := blockdev.FindResidue(dev, secret)
	if len(hits) == 0 {
		t.Fatal("expected residues of deleted file, found none")
	}
}

func TestMountPersistence(t *testing.T) {
	dev, fs := newFS(t)
	if err := fs.MkdirAll("/persist/dir"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/persist/dir/f", []byte("still here")); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(dev, simclock.NewSim(simclock.Epoch))
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	got, err := fs2.ReadFile("/persist/dir/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "still here" {
		t.Fatalf("after remount: %q", got)
	}
}

func TestManyFiles(t *testing.T) {
	_, fs := newFS(t)
	if err := fs.Mkdir("/many"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		name := "/many/f" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if err := fs.WriteFile(name, []byte{byte(i)}); err != nil {
			t.Fatalf("WriteFile %d: %v", i, err)
		}
	}
	ents, err := fs.List("/many")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 100 {
		t.Fatalf("List = %d entries, want 100", len(ents))
	}
}

func TestLargeFile(t *testing.T) {
	_, fs := newFS(t)
	big := make([]byte, 300*1024) // 300 KiB: exercises indirect blocks
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := fs.WriteFile("/big", big); err != nil {
		t.Fatalf("WriteFile big: %v", err)
	}
	got, err := fs.ReadFile("/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large file round trip mismatch")
	}
}
