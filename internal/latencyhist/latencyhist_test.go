package latencyhist

import (
	"math"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 9},         // 1000µs ∈ [512, 1024)... 1000>>9 == 1 -> bucket 9
		{time.Second, 19},             // 1e6 µs
		{time.Hour, Buckets - 1},      // clamps to the last bucket
		{24 * time.Hour, Buckets - 1}, // stays clamped
	} {
		if got := BucketOf(tc.d); got != tc.want {
			t.Errorf("BucketOf(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestObserveTotalDelta(t *testing.T) {
	var h Hist
	h.Observe(3 * time.Microsecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
	if h[1] != 2 || h[BucketOf(100*time.Microsecond)] != 1 {
		t.Fatalf("hist = %v", h)
	}
	prev := h
	h.Observe(time.Millisecond)
	d := h.Delta(prev)
	if d.Total() != 1 || d[BucketOf(time.Millisecond)] != 1 {
		t.Fatalf("delta = %v", d)
	}
}

// TestQuantileClampsQ is the table test ported from internal/admission
// (where Stats.Quantile is now a thin wrapper over this package): a
// populated histogram's quantile rounds up to the containing bucket's upper
// bound, and q outside [0,1] — including NaN — clamps instead of going
// implementation-defined.
func TestQuantileClampsQ(t *testing.T) {
	// 100 samples in bucket 3 ([8,16)us), 10 in bucket 6 ([64,128)us).
	var h Hist
	h[3] = 100
	h[6] = 10
	lo := 16 * time.Microsecond
	hi := 128 * time.Microsecond
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{-1, lo},         // below range clamps to 0
		{0, lo},          // first bucket's upper bound
		{0.5, lo},        // rank 55 of 110 still in bucket 3
		{0.99, hi},       // rank 108 lands in bucket 6
		{1, hi},          // clamps to the last recorded sample
		{2, hi},          // above range clamps to 1
		{math.NaN(), lo}, // NaN counts as 0, never implementation-defined
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Empty histograms stay zero whatever q is.
	var empty Hist
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2, math.NaN()} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestUpperBound(t *testing.T) {
	if UpperBound(0) != 2*time.Microsecond || UpperBound(3) != 16*time.Microsecond {
		t.Fatalf("UpperBound wrong: %v %v", UpperBound(0), UpperBound(3))
	}
}
