// Package latencyhist is the shared power-of-two latency histogram: a
// fixed-width array of buckets where bucket i counts samples in
// [2^i, 2^(i+1)) microseconds. It exists so every per-sample-history-free
// tail estimate in the system — the admission controller's p99 signal, the
// macro-workload scorecard's per-op-class p50/p99/p99.9 — shares one bucket
// math and one conservative quantile, instead of each package growing its
// own slightly-different copy.
//
// The representation is deliberately coarse: 30 power-of-two buckets cover
// sub-microsecond to ~9 minutes, quantiles round up to the containing
// bucket's upper bound, and a histogram is a plain value (an array, not a
// struct with a mutex) so callers snapshot and diff it freely. Callers that
// need concurrency guard it with their own lock, exactly as
// internal/admission does.
package latencyhist

import (
	"math"
	"time"
)

// Buckets is the histogram width: 2^29 µs ≈ 9 minutes tops.
const Buckets = 30

// Hist is a power-of-two latency histogram: bucket i counts samples in
// [2^i, 2^(i+1)) microseconds (bucket 0 also absorbs sub-microsecond
// samples). The zero value is an empty histogram ready to use.
type Hist [Buckets]uint64

// BucketOf maps a latency to its histogram bucket.
func BucketOf(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < Buckets-1 {
		us >>= 1
		b++
	}
	return b
}

// UpperBound is the inclusive-estimate upper bound reported for bucket i —
// the value Quantile returns when the requested rank lands there.
func UpperBound(i int) time.Duration {
	return time.Duration(1<<uint(i+1)) * time.Microsecond
}

// Observe records one sample.
func (h *Hist) Observe(d time.Duration) {
	h[BucketOf(d)]++
}

// Total is the number of recorded samples.
func (h Hist) Total() uint64 {
	var total uint64
	for _, n := range h {
		total += n
	}
	return total
}

// Delta returns the bucket-wise difference h - prev: the histogram of the
// samples recorded since prev was snapshotted. Callers windowing a
// monotonically growing histogram (the control plane's p99 signal) diff
// successive snapshots with it.
func (h Hist) Delta(prev Hist) Hist {
	var out Hist
	for i := range h {
		out[i] = h[i] - prev[i]
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1], e.g. 0.99) of the recorded
// samples, taking each bucket at its upper bound (conservative: the
// estimate rounds up). Zero when empty. q is clamped to [0,1] (NaN counts
// as 0): float-to-uint conversion of a negative or NaN value is
// implementation-defined by the Go spec, and tail signals feeding feedback
// controllers or CI gates must never go undefined.
func (h Hist) Quantile(q float64) time.Duration {
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	total := h.Total()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, n := range h {
		seen += n
		if seen > rank {
			return UpperBound(i)
		}
	}
	// Unreachable: seen reaches total > rank inside the loop.
	return UpperBound(Buckets - 1)
}
