package control

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

// plant is a deterministic monotone plant: signal = gain * knob, with the
// gain adjustable mid-test to model a load step.
type plant struct {
	mu   sync.Mutex
	gain float64
	knob float64
}

func (p *plant) read() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gain * p.knob
}

func (p *plant) apply(v float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.knob = v
	return nil
}

func (p *plant) setGain(g float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gain = g
}

func newPlantController(t *testing.T, mode Mode, p *plant, initial float64) *Controller {
	t.Helper()
	c, err := New(Config{
		Name:    "test",
		Mode:    mode,
		Target:  100,
		Band:    0.1,
		Min:     1,
		Max:     1000,
		Initial: initial,
		Step:    5,
		Read:    p.read,
		Apply:   p.apply,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// run ticks until converged or maxTicks, returning ticks used.
func run(t *testing.T, c *Controller, clk *simclock.Sim, maxTicks int) int {
	t.Helper()
	for i := 0; i < maxTicks; i++ {
		clk.Advance(time.Second)
		c.Tick(clk.Now())
		if c.State().Converged {
			return i + 1
		}
	}
	t.Fatalf("not converged after %d ticks: %+v", maxTicks, c.State())
	return maxTicks
}

func TestConfigValidation(t *testing.T) {
	read := func() float64 { return 0 }
	apply := func(float64) error { return nil }
	good := Config{Name: "k", Target: 10, Band: 0.1, Min: 0, Max: 100, Initial: 5, Step: 1, Read: read, Apply: apply}
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.Read = nil },
		func(c *Config) { c.Apply = nil },
		func(c *Config) { c.Target = 0 },
		func(c *Config) { c.Band = 0 },
		func(c *Config) { c.Band = 1 },
		func(c *Config) { c.Min = 200 },
		func(c *Config) { c.Initial = -1 },
		func(c *Config) { c.Step = 0 },
		func(c *Config) { c.Backoff = 1.5 },
	}
	for i, mut := range cases {
		bad := good
		mut(&bad)
		if _, err := New(bad); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
}

// Step up: plant starts starved (knob too low), controller must climb into
// band and converge, for both modes.
func TestStepUpConverges(t *testing.T) {
	for _, mode := range []Mode{AIMD, HillClimb} {
		t.Run(mode.String(), func(t *testing.T) {
			p := &plant{gain: 1, knob: 10}
			c := newPlantController(t, mode, p, 10)
			clk := simclock.NewSim(simclock.Epoch)
			run(t, c, clk, 100)
			sig := p.read()
			if sig < 90 || sig > 110 {
				t.Fatalf("converged outside band: signal=%v", sig)
			}
		})
	}
}

// Step down: knob starts too high; both modes must back off into band.
func TestStepDownConverges(t *testing.T) {
	for _, mode := range []Mode{AIMD, HillClimb} {
		t.Run(mode.String(), func(t *testing.T) {
			p := &plant{gain: 1, knob: 400}
			c := newPlantController(t, mode, p, 400)
			clk := simclock.NewSim(simclock.Epoch)
			run(t, c, clk, 200)
			sig := p.read()
			if sig < 90 || sig > 110 {
				t.Fatalf("converged outside band: signal=%v", sig)
			}
		})
	}
}

// Load step mid-run: converge at gain 1, double the gain (2x load), and the
// controller must re-converge. Models SC6's step change.
func TestLoadStepReconverges(t *testing.T) {
	for _, mode := range []Mode{AIMD, HillClimb} {
		t.Run(mode.String(), func(t *testing.T) {
			p := &plant{gain: 1, knob: 50}
			c := newPlantController(t, mode, p, 50)
			clk := simclock.NewSim(simclock.Epoch)
			run(t, c, clk, 100)
			p.setGain(2) // load doubles: same knob now yields twice the signal
			for i := 0; i < 200; i++ {
				clk.Advance(time.Second)
				c.Tick(clk.Now())
				if c.State().Converged {
					break
				}
			}
			st := c.State()
			if !st.Converged {
				t.Fatalf("did not re-converge after load step: %+v", st)
			}
			sig := p.read()
			if sig < 90 || sig > 110 {
				t.Fatalf("re-converged outside band: signal=%v", sig)
			}
		})
	}
}

// Noisy plateau: signal oscillates inside the band; the knob must never
// move (no oscillation chasing noise).
func TestNoisyPlateauHolds(t *testing.T) {
	for _, mode := range []Mode{AIMD, HillClimb} {
		t.Run(mode.String(), func(t *testing.T) {
			i := 0
			noise := []float64{95, 105, 98, 102, 91, 109, 100}
			var applied int
			c, err := New(Config{
				Name: "noisy", Mode: mode,
				Target: 100, Band: 0.1, Min: 1, Max: 1000, Initial: 50, Step: 5,
				Read:  func() float64 { v := noise[i%len(noise)]; i++; return v },
				Apply: func(float64) error { applied++; return nil },
			})
			if err != nil {
				t.Fatal(err)
			}
			clk := simclock.NewSim(simclock.Epoch)
			for k := 0; k < 50; k++ {
				clk.Advance(time.Second)
				if c.Tick(clk.Now()) {
					t.Fatalf("tick %d moved the knob on in-band noise", k)
				}
			}
			if applied != 0 {
				t.Fatalf("Apply called %d times on in-band noise", applied)
			}
			if st := c.State(); !st.Converged {
				t.Fatalf("noisy plateau should read as converged: %+v", st)
			}
		})
	}
}

// Unreachable target: signal pinned above band even at Min. The knob must
// clamp at Min and the post-clamp amplitude must be zero — bounded
// oscillation by construction.
func TestClampedAtBoundConverges(t *testing.T) {
	p := &plant{gain: 10, knob: 50} // even knob=Min=1 gives signal 10 > hi? no: 10*1=10 < 90 band low... use high gain
	p.gain = 200                    // knob=1 -> 200 > 110: always above band
	c := newPlantController(t, AIMD, p, 50)
	clk := simclock.NewSim(simclock.Epoch)
	run(t, c, clk, 100)
	if got := c.Knob(); got != 1 {
		t.Fatalf("knob should clamp at Min=1, got %v", got)
	}
	// Post-convergence: further ticks must not move the knob at all.
	for i := 0; i < 20; i++ {
		clk.Advance(time.Second)
		if c.Tick(clk.Now()) {
			t.Fatal("knob moved after clamping at bound")
		}
	}
}

// Bounded oscillation: after convergence on a reachable target, peak-to-peak
// knob amplitude over a long tail stays within one step + one backoff.
func TestPostConvergenceAmplitudeBounded(t *testing.T) {
	for _, mode := range []Mode{AIMD, HillClimb} {
		t.Run(mode.String(), func(t *testing.T) {
			p := &plant{gain: 1, knob: 10}
			c := newPlantController(t, mode, p, 10)
			clk := simclock.NewSim(simclock.Epoch)
			run(t, c, clk, 200)
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := 0; i < 100; i++ {
				clk.Advance(time.Second)
				c.Tick(clk.Now())
				k := c.Knob()
				lo = math.Min(lo, k)
				hi = math.Max(hi, k)
			}
			// One step up (5) plus one backoff worth of swing is the
			// structural bound; a converged plant should not even do that.
			if hi-lo > 5+0.5*hi {
				t.Fatalf("post-convergence amplitude %v unbounded (lo=%v hi=%v)", hi-lo, lo, hi)
			}
		})
	}
}

// Apply errors freeze the knob and surface in State.LastErr; streak resets.
func TestApplyErrorFreezes(t *testing.T) {
	boom := errors.New("knob stuck")
	c, err := New(Config{
		Name: "stuck", Target: 100, Band: 0.1, Min: 1, Max: 1000, Initial: 10, Step: 5,
		Read:  func() float64 { return 10 }, // starved: wants to move up
		Apply: func(float64) error { return boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.NewSim(simclock.Epoch)
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		if c.Tick(clk.Now()) {
			t.Fatal("tick reported a move despite Apply error")
		}
	}
	st := c.State()
	if st.Knob != 10 {
		t.Fatalf("knob moved despite Apply error: %v", st.Knob)
	}
	if st.LastErr == "" {
		t.Fatal("Apply error not surfaced in State.LastErr")
	}
	if st.Converged {
		t.Fatal("a controller that cannot apply its move must not report converged")
	}
}

// Neutral reading (Read returns Target) holds the knob still.
func TestNeutralReadingHolds(t *testing.T) {
	var applied int
	c, err := New(Config{
		Name: "idle", Target: 100, Band: 0.1, Min: 1, Max: 1000, Initial: 10, Step: 5,
		Read:  func() float64 { return 100 },
		Apply: func(float64) error { applied++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.NewSim(simclock.Epoch)
	for i := 0; i < 5; i++ {
		clk.Advance(time.Second)
		c.Tick(clk.Now())
	}
	if applied != 0 {
		t.Fatalf("neutral readings applied %d moves", applied)
	}
}

// Group: Tick steps every controller; States snapshots in order; the
// background loop on simclock advances deterministically and Stop joins.
func TestGroupTickAndStates(t *testing.T) {
	p1 := &plant{gain: 1, knob: 10}
	p2 := &plant{gain: 1, knob: 400}
	c1 := newPlantController(t, AIMD, p1, 10)
	c2 := newPlantController(t, HillClimb, p2, 400)
	clk := simclock.NewSim(simclock.Epoch)
	g := NewGroup(clk, time.Second, c1, c2)
	for i := 0; i < 150; i++ {
		clk.Advance(time.Second)
		g.Tick()
	}
	sts := g.States()
	if len(sts) != 2 || sts[0].Name != "test" || !sts[0].Converged || !sts[1].Converged {
		t.Fatalf("group did not converge both controllers: %+v", sts)
	}
}

func TestGroupBackgroundLoopSimclock(t *testing.T) {
	p := &plant{gain: 1, knob: 10}
	c := newPlantController(t, AIMD, p, 10)
	clk := simclock.NewSim(simclock.Epoch)
	g := NewGroup(clk, time.Second, c)
	g.Start()
	defer g.Stop()
	if !g.Running() {
		t.Fatal("group not running after Start")
	}
	// Advance until the controller has climbed into band. Each Advance
	// wakes the loop's WaitUntil; poll the state to absorb scheduling.
	deadline := time.Now().Add(10 * time.Second)
	for c.State().Ticks < 30 {
		clk.Advance(time.Second)
		if time.Now().After(deadline) {
			t.Fatalf("background loop stalled: %+v", c.State())
		}
		time.Sleep(time.Millisecond)
	}
	g.Stop()
	if g.Running() {
		t.Fatal("group still running after Stop")
	}
	ticksAtStop := c.State().Ticks
	clk.Advance(10 * time.Second)
	time.Sleep(5 * time.Millisecond)
	if got := c.State().Ticks; got != ticksAtStop {
		t.Fatalf("loop ticked after Stop: %d -> %d", ticksAtStop, got)
	}
	// Idempotent Start/Stop.
	g.Stop()
	g.Start()
	g.Stop()
}

// Concurrent State/Knob readers against a ticking driver — exercised under
// -race in CI.
func TestConcurrentSnapshotsRace(t *testing.T) {
	p := &plant{gain: 1, knob: 10}
	c := newPlantController(t, AIMD, p, 10)
	clk := simclock.NewSim(simclock.Epoch)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = c.State()
					_ = c.Knob()
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		clk.Advance(time.Second)
		c.Tick(clk.Now())
	}
	close(stop)
	wg.Wait()
}
