// Package control is the self-tuning control plane: small feedback
// controllers that keep one runtime knob each near a target expressed over
// the counters the system already exports (group-commit occupancy from the
// journal stats, admitted-latency percentiles from the admission gate,
// expiry density from the sweeper, hit rate from the membrane cache).
//
// Two adjustment laws are provided, both assuming the observed signal is
// monotone non-decreasing in the knob (true of every knob wired here: a
// longer commit window coalesces more transactions per group, a deeper
// admission queue raises admitted latency, a longer sweep interval
// accumulates more expiries per pass, a bigger cache raises the hit rate):
//
//   - AIMD: signal below the target band -> knob += Step (additive
//     increase); above the band -> knob *= Backoff (multiplicative
//     decrease). The classic congestion-control law — cautious growth,
//     fast retreat — for knobs where overshoot is expensive (an admission
//     bound past the latency SLO, a commit window past the batch size).
//   - Hill-climb: fixed symmetric steps toward the band from either side.
//     For knobs where both directions cost the same (cache capacity,
//     sweep cadence) and the optimum is approached, not escaped.
//
// Controllers never free-run on goroutine timing: Tick is an explicit
// step, timestamped by the caller's clock, so simclock tests and the SC6
// experiment drive the loop deterministically. Group adds the background
// driver for production use — a loop sleeping on simclock.Waiter exactly
// like the retention sweeper — plus the States snapshot the core API and
// rgpdctl surface.
//
// Oscillation is structurally bounded: each law moves at most one step (or
// one backoff) per tick, moves only while the signal is outside the band,
// and clamps to [Min, Max] — so once the signal is reachable the knob's
// post-convergence peak-to-peak amplitude is at most one step plus one
// backoff, never a growing swing. The step-response tests and SC6 assert
// exactly that.
package control

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/simclock"
)

// Mode selects a controller's adjustment law.
type Mode int

const (
	// AIMD is additive-increase / multiplicative-decrease.
	AIMD Mode = iota
	// HillClimb is fixed symmetric stepping toward the band.
	HillClimb
)

// String names the mode for snapshots and tables.
func (m Mode) String() string {
	switch m {
	case AIMD:
		return "aimd"
	case HillClimb:
		return "hill-climb"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ErrBadConfig reports an invalid controller configuration.
var ErrBadConfig = errors.New("control: invalid controller config")

// DefaultConvergeAfter is how many consecutive no-move ticks declare
// convergence when Config.ConvergeAfter is zero.
const DefaultConvergeAfter = 3

// Config declares one feedback controller.
type Config struct {
	// Name identifies the controller (and its knob) in snapshots.
	Name string
	// Mode is the adjustment law.
	Mode Mode
	// Target is the setpoint for the observed signal; Band is the relative
	// half-width of the dead zone around it (0.1 = ±10%). Inside the band
	// the knob holds still.
	Target float64
	Band   float64
	// Min and Max clamp the knob; Initial is its starting value.
	Min, Max, Initial float64
	// Step is the additive increase (AIMD) or the symmetric step
	// (hill-climb), in knob units.
	Step float64
	// Backoff is AIMD's multiplicative decrease factor in (0, 1);
	// defaults to 0.5. Ignored by hill-climb.
	Backoff float64
	// ConvergeAfter is how many consecutive ticks without a knob move
	// declare the controller converged (default DefaultConvergeAfter).
	// A tick that holds because the signal is in band — or because the
	// knob is already clamped at the bound the signal is pushing it
	// toward — counts; any actual move resets the streak.
	ConvergeAfter int
	// Read observes the signal. Implementations that have nothing to
	// report this tick (no traffic in the window) should return Target:
	// a neutral reading holds the knob still instead of steering on
	// noise.
	Read func() float64
	// Apply pushes a new knob value into the system. An error freezes
	// the knob at its previous value (recorded in State.LastErr) rather
	// than advancing the controller's idea of it.
	Apply func(float64) error
}

func (cfg *Config) validate() error {
	switch {
	case cfg.Name == "":
		return fmt.Errorf("%w: empty name", ErrBadConfig)
	case cfg.Read == nil || cfg.Apply == nil:
		return fmt.Errorf("%w: %s: Read and Apply are required", ErrBadConfig, cfg.Name)
	case cfg.Target <= 0:
		return fmt.Errorf("%w: %s: target %v must be positive", ErrBadConfig, cfg.Name, cfg.Target)
	case cfg.Band <= 0 || cfg.Band >= 1:
		return fmt.Errorf("%w: %s: band %v must be in (0, 1)", ErrBadConfig, cfg.Name, cfg.Band)
	case cfg.Min > cfg.Max:
		return fmt.Errorf("%w: %s: min %v above max %v", ErrBadConfig, cfg.Name, cfg.Min, cfg.Max)
	case cfg.Initial < cfg.Min || cfg.Initial > cfg.Max:
		return fmt.Errorf("%w: %s: initial %v outside [%v, %v]", ErrBadConfig, cfg.Name, cfg.Initial, cfg.Min, cfg.Max)
	case cfg.Step <= 0:
		return fmt.Errorf("%w: %s: step %v must be positive", ErrBadConfig, cfg.Name, cfg.Step)
	}
	if cfg.Mode == AIMD && cfg.Backoff != 0 && (cfg.Backoff <= 0 || cfg.Backoff >= 1) {
		return fmt.Errorf("%w: %s: backoff %v must be in (0, 1)", ErrBadConfig, cfg.Name, cfg.Backoff)
	}
	return nil
}

// State is a snapshot of one controller, surfaced through
// core.System.Controllers() and rgpdctl status.
type State struct {
	Name string
	Mode Mode
	// Knob is the current knob value; Signal the last observed reading.
	Knob   float64
	Signal float64
	Target float64
	Band   float64
	// LastDelta is the knob change of the last tick that moved it (signed);
	// LastAdjust is that tick's timestamp.
	LastDelta  float64
	LastAdjust time.Time
	// Ticks counts Tick calls; Adjusts the subset that moved the knob.
	Ticks   uint64
	Adjusts uint64
	// Converged reports ConvergeAfter consecutive no-move ticks.
	Converged bool
	// LastErr is the message of the most recent Apply failure ("" = none).
	LastErr string
}

// Controller is one feedback loop. Safe for concurrent use; Tick, however,
// is typically called from a single driver (a Group or a test).
type Controller struct {
	cfg Config

	mu         sync.Mutex
	knob       float64
	signal     float64
	lastDelta  float64
	lastAdjust time.Time
	ticks      uint64
	adjusts    uint64
	holds      int // consecutive no-move ticks
	lastErr    error
}

// New validates the config and builds a controller. The Initial knob value
// is assumed to already be applied (it is read from the system, not pushed).
func New(cfg Config) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = 0.5
	}
	if cfg.ConvergeAfter <= 0 {
		cfg.ConvergeAfter = DefaultConvergeAfter
	}
	return &Controller{cfg: cfg, knob: cfg.Initial}, nil
}

// Name returns the controller's name.
func (c *Controller) Name() string { return c.cfg.Name }

// clamp bounds v to the knob range.
func (c *Controller) clamp(v float64) float64 {
	if v < c.cfg.Min {
		return c.cfg.Min
	}
	if v > c.cfg.Max {
		return c.cfg.Max
	}
	return v
}

// Tick runs one control step at instant now: observe the signal, decide,
// and apply any knob move. It reports whether the knob moved.
func (c *Controller) Tick(now time.Time) bool {
	sig := c.cfg.Read()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks++
	c.signal = sig
	lo := c.cfg.Target * (1 - c.cfg.Band)
	hi := c.cfg.Target * (1 + c.cfg.Band)
	next := c.knob
	switch {
	case sig < lo:
		// Signal starved: push the knob up (monotone plant).
		next = c.clamp(c.knob + c.cfg.Step)
	case sig > hi:
		if c.cfg.Mode == AIMD {
			next = c.clamp(c.knob * c.cfg.Backoff)
		} else {
			next = c.clamp(c.knob - c.cfg.Step)
		}
	}
	if next == c.knob {
		// In band, or clamped at the bound the signal is pushing toward —
		// either way the controller can do no better: the hold streak
		// advances toward convergence.
		c.holds++
		return false
	}
	if err := c.cfg.Apply(next); err != nil {
		// Freeze: the system rejected the move; keep the old value as the
		// truth and surface the error. The streak resets — a controller
		// that wants to move but cannot is not converged.
		c.lastErr = err
		c.holds = 0
		return false
	}
	c.lastErr = nil
	c.lastDelta = next - c.knob
	c.knob = next
	c.lastAdjust = now
	c.adjusts++
	c.holds = 0
	return true
}

// State snapshots the controller.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := State{
		Name:       c.cfg.Name,
		Mode:       c.cfg.Mode,
		Knob:       c.knob,
		Signal:     c.signal,
		Target:     c.cfg.Target,
		Band:       c.cfg.Band,
		LastDelta:  c.lastDelta,
		LastAdjust: c.lastAdjust,
		Ticks:      c.ticks,
		Adjusts:    c.adjusts,
		Converged:  c.ticks > 0 && c.holds >= c.cfg.ConvergeAfter,
	}
	if c.lastErr != nil {
		st.LastErr = c.lastErr.Error()
	}
	return st
}

// Knob returns the current knob value.
func (c *Controller) Knob() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.knob
}

// DefaultTickInterval is the Group cadence when none is configured.
const DefaultTickInterval = time.Second

// Group drives a set of controllers: explicit Tick for deterministic
// callers, or a background loop (Start/Stop) sleeping one interval at a
// time on the machine clock — simclock.Waiter when available, exactly like
// the retention sweeper, so simclock tests advance it deterministically.
type Group struct {
	clock    simclock.Clock
	interval time.Duration
	cs       []*Controller

	mu      sync.Mutex
	running bool
	stop    chan struct{}
	done    chan struct{}
}

// NewGroup builds a driver over controllers. interval <= 0 means
// DefaultTickInterval.
func NewGroup(clock simclock.Clock, interval time.Duration, cs ...*Controller) *Group {
	if clock == nil {
		clock = simclock.Real{}
	}
	if interval <= 0 {
		interval = DefaultTickInterval
	}
	return &Group{clock: clock, interval: interval, cs: cs}
}

// Controllers returns the driven controllers.
func (g *Group) Controllers() []*Controller { return g.cs }

// Interval reports the tick cadence.
func (g *Group) Interval() time.Duration { return g.interval }

// Tick steps every controller once at the current clock instant.
func (g *Group) Tick() {
	now := g.clock.Now()
	for _, c := range g.cs {
		c.Tick(now)
	}
}

// States snapshots every controller in registration order.
func (g *Group) States() []State {
	out := make([]State, len(g.cs))
	for i, c := range g.cs {
		out[i] = c.State()
	}
	return out
}

// Start launches the background tick loop. Starting a running group is a
// no-op.
func (g *Group) Start() {
	g.mu.Lock()
	if g.running {
		g.mu.Unlock()
		return
	}
	g.running = true
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	stop, done := g.stop, g.done
	g.mu.Unlock()
	go g.loop(stop, done)
}

// Stop halts the loop and waits for it to exit. Stopping a stopped group
// is a no-op.
func (g *Group) Stop() {
	g.mu.Lock()
	if !g.running {
		g.mu.Unlock()
		return
	}
	g.running = false
	stop, done := g.stop, g.done
	g.mu.Unlock()
	close(stop)
	<-done
}

// Running reports whether the background loop is active.
func (g *Group) Running() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.running
}

func (g *Group) loop(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		default:
		}
		g.waitOne(stop)
		select {
		case <-stop:
			return
		default:
		}
		g.Tick()
	}
}

// waitOne sleeps one interval on the machine clock, interruptible by stop.
func (g *Group) waitOne(stop chan struct{}) {
	target := g.clock.Now().Add(g.interval)
	w, ok := g.clock.(simclock.Waiter)
	if !ok {
		select {
		case <-time.After(g.interval):
		case <-stop:
		}
		return
	}
	cancel := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		select {
		case <-stop:
			close(cancel)
		case <-finished:
		}
	}()
	w.WaitUntil(target, cancel)
	close(finished)
}
