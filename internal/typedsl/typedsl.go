// Package typedsl implements the paper's personal-data type declaration
// language (Listing 1): the sysadmin-facing DSL in which PD types, views,
// default consents, collection interfaces, origin, retention ("age") and
// sensitivity are declared before any application may process data of that
// type.
//
// The package parses source text into an AST, compiles the AST into a
// dbfs.Schema plus membrane defaults, and can print an AST back to canonical
// source (parse∘print is the identity, property-tested).
//
// Faithfulness notes, recorded here because the L1 experiment replays the
// paper's listing verbatim:
//   - Listing 1 spells sensitivity "hight"; the parser accepts it as "high".
//   - Listing 1's consent block grants purpose3 the value "ano", an
//     abbreviation of the view "v_ano"; the compiler resolves consent values
//     to views by exact name, then by the "v_" prefix convention, then by
//     unique suffix.
//   - Listing 1's view v_ano lists the field "age", which is not declared in
//     fields (age is *derived* from year_of_birthdate by Listing 2's
//     compute_age). CompileOptions.FieldAliases lets the operator map such
//     derived names onto stored fields; the default is strict rejection.
package typedsl

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/dbfs"
	"repro/internal/membrane"
)

// Sentinel errors.
var (
	// ErrSyntax reports a lexing/parsing failure.
	ErrSyntax = errors.New("typedsl: syntax error")
	// ErrCompile reports a semantically invalid declaration.
	ErrCompile = errors.New("typedsl: compile error")
)

// FieldDecl is one declared field.
type FieldDecl struct {
	Name string
	Type string
	// Sensitive marks the field for separate storage (DSL: a trailing
	// "sensitive" keyword, an extension over Listing 1).
	Sensitive bool
}

// ViewDecl is one declared view.
type ViewDecl struct {
	Name   string
	Fields []string
}

// ConsentDecl is one default-consent row: purpose -> all|none|view.
type ConsentDecl struct {
	Purpose string
	Value   string
}

// CollectionDecl is one collection row: method -> interface reference.
type CollectionDecl struct {
	Method string
	Ref    string
}

// TypeDecl is the AST of one "type name { ... }" block.
type TypeDecl struct {
	Name        string
	Fields      []FieldDecl
	Views       []ViewDecl
	Consent     []ConsentDecl
	Collection  []CollectionDecl
	Origin      string
	Age         string
	Sensitivity string
}

// --- lexer ---

type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokLBrace
	tokRBrace
	tokColon
	tokComma
	tokSemi
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	line int
}

func isIdentRune(r byte) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		return true
	case r == '_', r == '.', r == '-', r == '/':
		return true
	default:
		return false
	}
}

// lex tokenizes src. Comments: // to end of line and /* ... */.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("%w: line %d: unterminated comment", ErrSyntax, line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", line})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", line})
			i++
		case c == ':':
			toks = append(toks, token{tokColon, ":", line})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", line})
			i++
		case c == ';':
			toks = append(toks, token{tokSemi, ";", line})
			i++
		case isIdentRune(c):
			j := i
			for j < len(src) && isIdentRune(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("%w: line %d: unexpected character %q", ErrSyntax, line, string(c))
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("%w: line %d: expected %s, got %q", ErrSyntax, t.line, what, t.text)
	}
	return t, nil
}

// accept consumes the next token if it matches kind.
func (p *parser) accept(kind tokenKind) bool {
	if p.peek().kind == kind {
		p.pos++
		return true
	}
	return false
}

// Parse parses one or more type declarations from src.
func Parse(src string) ([]*TypeDecl, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var decls []*TypeDecl
	for p.peek().kind != tokEOF {
		d, err := p.parseType()
		if err != nil {
			return nil, err
		}
		decls = append(decls, d)
	}
	if len(decls) == 0 {
		return nil, fmt.Errorf("%w: no type declarations", ErrSyntax)
	}
	return decls, nil
}

// ParseOne parses exactly one declaration.
func ParseOne(src string) (*TypeDecl, error) {
	decls, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(decls) != 1 {
		return nil, fmt.Errorf("%w: expected one type, got %d", ErrSyntax, len(decls))
	}
	return decls[0], nil
}

func (p *parser) parseType() (*TypeDecl, error) {
	kw, err := p.expect(tokIdent, `"type"`)
	if err != nil {
		return nil, err
	}
	if kw.text != "type" {
		return nil, fmt.Errorf("%w: line %d: expected \"type\", got %q", ErrSyntax, kw.line, kw.text)
	}
	name, err := p.expect(tokIdent, "type name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	d := &TypeDecl{Name: name.text}
	for {
		t := p.peek()
		if t.kind == tokRBrace {
			p.next()
			break
		}
		if t.kind == tokEOF {
			return nil, fmt.Errorf("%w: line %d: unterminated type %q", ErrSyntax, t.line, d.Name)
		}
		kw, err := p.expect(tokIdent, "section keyword")
		if err != nil {
			return nil, err
		}
		switch kw.text {
		case "fields":
			if err := p.parseFields(d); err != nil {
				return nil, err
			}
		case "view":
			if err := p.parseView(d); err != nil {
				return nil, err
			}
		case "consent":
			if err := p.parsePairs(kw.text, func(k, v string) {
				d.Consent = append(d.Consent, ConsentDecl{Purpose: k, Value: v})
			}); err != nil {
				return nil, err
			}
		case "collection":
			if err := p.parsePairs(kw.text, func(k, v string) {
				d.Collection = append(d.Collection, CollectionDecl{Method: k, Ref: v})
			}); err != nil {
				return nil, err
			}
		case "origin", "age", "sensitivity":
			if _, err := p.expect(tokColon, ":"); err != nil {
				return nil, err
			}
			val, err := p.expect(tokIdent, "value")
			if err != nil {
				return nil, err
			}
			switch kw.text {
			case "origin":
				d.Origin = val.text
			case "age":
				d.Age = val.text
			case "sensitivity":
				d.Sensitivity = val.text
			}
			if _, err := p.expect(tokSemi, ";"); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: line %d: unknown section %q", ErrSyntax, kw.line, kw.text)
		}
	}
	// Optional trailing semicolon after the closing brace.
	p.accept(tokSemi)
	return d, nil
}

// parseFields parses "{ name: type [sensitive], ... };".
func (p *parser) parseFields(d *TypeDecl) error {
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return err
	}
	for {
		if p.accept(tokRBrace) {
			break
		}
		name, err := p.expect(tokIdent, "field name")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokColon, ":"); err != nil {
			return err
		}
		typ, err := p.expect(tokIdent, "field type")
		if err != nil {
			return err
		}
		f := FieldDecl{Name: name.text, Type: typ.text}
		if p.peek().kind == tokIdent && p.peek().text == "sensitive" {
			p.next()
			f.Sensitive = true
		}
		d.Fields = append(d.Fields, f)
		if p.accept(tokComma) {
			continue
		}
		if p.accept(tokRBrace) {
			break
		}
		t := p.peek()
		return fmt.Errorf("%w: line %d: expected ',' or '}' in fields, got %q", ErrSyntax, t.line, t.text)
	}
	if _, err := p.expect(tokSemi, ";"); err != nil {
		return err
	}
	return nil
}

// parseView parses "name { field, ... };".
func (p *parser) parseView(d *TypeDecl) error {
	name, err := p.expect(tokIdent, "view name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return err
	}
	v := ViewDecl{Name: name.text}
	for {
		if p.accept(tokRBrace) {
			break
		}
		f, err := p.expect(tokIdent, "view field")
		if err != nil {
			return err
		}
		v.Fields = append(v.Fields, f.text)
		if p.accept(tokComma) {
			continue
		}
		if p.accept(tokRBrace) {
			break
		}
		t := p.peek()
		return fmt.Errorf("%w: line %d: expected ',' or '}' in view, got %q", ErrSyntax, t.line, t.text)
	}
	if _, err := p.expect(tokSemi, ";"); err != nil {
		return err
	}
	d.Views = append(d.Views, v)
	return nil
}

// parsePairs parses "{ key: value, ... };" sections (consent, collection).
func (p *parser) parsePairs(section string, emit func(k, v string)) error {
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return err
	}
	for {
		if p.accept(tokRBrace) {
			break
		}
		k, err := p.expect(tokIdent, section+" key")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokColon, ":"); err != nil {
			return err
		}
		v, err := p.expect(tokIdent, section+" value")
		if err != nil {
			return err
		}
		emit(k.text, v.text)
		if p.accept(tokComma) {
			continue
		}
		if p.accept(tokRBrace) {
			break
		}
		t := p.peek()
		return fmt.Errorf("%w: line %d: expected ',' or '}' in %s, got %q", ErrSyntax, t.line, section, t.text)
	}
	if _, err := p.expect(tokSemi, ";"); err != nil {
		return err
	}
	return nil
}

// ParseAge parses the DSL's retention spellings: 1Y, 6M (months), 2W, 30D,
// 12H, or any Go duration string.
func ParseAge(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	last := s[len(s)-1]
	head := s[:len(s)-1]
	if n, err := strconv.Atoi(head); err == nil {
		switch last {
		case 'Y', 'y':
			return time.Duration(n) * 365 * 24 * time.Hour, nil
		case 'M':
			return time.Duration(n) * 30 * 24 * time.Hour, nil
		case 'W', 'w':
			return time.Duration(n) * 7 * 24 * time.Hour, nil
		case 'D', 'd':
			return time.Duration(n) * 24 * time.Hour, nil
		case 'H', 'h':
			return time.Duration(n) * time.Hour, nil
		}
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("%w: bad age %q", ErrCompile, s)
	}
	return d, nil
}

// CompileOptions tunes Compile.
type CompileOptions struct {
	// FieldAliases maps view-field names onto declared fields, for listings
	// (like the paper's) whose views name derived fields.
	FieldAliases map[string]string
}

// Compile lowers a TypeDecl to a validated dbfs.Schema.
func Compile(d *TypeDecl, opts CompileOptions) (*dbfs.Schema, error) {
	sch := &dbfs.Schema{Name: d.Name}
	declared := make(map[string]bool, len(d.Fields))
	for _, f := range d.Fields {
		ft, err := dbfs.ParseFieldType(f.Type)
		if err != nil {
			return nil, fmt.Errorf("%w: type %q field %q: %v", ErrCompile, d.Name, f.Name, err)
		}
		sch.Fields = append(sch.Fields, dbfs.Field{Name: f.Name, Type: ft, Sensitive: f.Sensitive})
		declared[f.Name] = true
	}
	resolveField := func(name string) (string, error) {
		if declared[name] {
			return name, nil
		}
		if alias, ok := opts.FieldAliases[name]; ok && declared[alias] {
			return alias, nil
		}
		return "", fmt.Errorf("%w: type %q: view references undeclared field %q", ErrCompile, d.Name, name)
	}
	viewNames := make(map[string]bool, len(d.Views))
	for _, v := range d.Views {
		dv := dbfs.View{Name: v.Name}
		for _, f := range v.Fields {
			resolved, err := resolveField(f)
			if err != nil {
				return nil, err
			}
			dv.Fields = append(dv.Fields, resolved)
		}
		sch.Views = append(sch.Views, dv)
		viewNames[v.Name] = true
	}
	if len(d.Consent) > 0 {
		sch.DefaultConsent = make(map[string]membrane.Grant, len(d.Consent))
		for _, c := range d.Consent {
			g, err := resolveGrant(c.Value, viewNames)
			if err != nil {
				return nil, fmt.Errorf("%w: type %q purpose %q: %v", ErrCompile, d.Name, c.Purpose, err)
			}
			sch.DefaultConsent[c.Purpose] = g
		}
	}
	if len(d.Collection) > 0 {
		sch.Collection = make(map[string]string, len(d.Collection))
		for _, c := range d.Collection {
			sch.Collection[c.Method] = c.Ref
		}
	}
	if d.Origin != "" {
		o, err := membrane.ParseOrigin(d.Origin)
		if err != nil {
			return nil, fmt.Errorf("%w: type %q: %v", ErrCompile, d.Name, err)
		}
		sch.Origin = o
	}
	if d.Age != "" {
		ttl, err := ParseAge(d.Age)
		if err != nil {
			return nil, err
		}
		sch.DefaultTTL = ttl
	}
	if d.Sensitivity != "" {
		s, err := membrane.ParseSensitivity(d.Sensitivity)
		if err != nil {
			return nil, fmt.Errorf("%w: type %q: %v", ErrCompile, d.Name, err)
		}
		sch.Sensitivity = s
	}
	if err := sch.Validate(); err != nil {
		return nil, fmt.Errorf("%w: type %q: %v", ErrCompile, d.Name, err)
	}
	return sch, nil
}

// resolveGrant maps a consent value to a grant: all, none, or a view
// resolved by exact name, the v_ prefix convention, or unique suffix.
func resolveGrant(value string, views map[string]bool) (membrane.Grant, error) {
	switch value {
	case "all":
		return membrane.Grant{Kind: membrane.GrantAll}, nil
	case "none":
		return membrane.Grant{Kind: membrane.GrantNone}, nil
	}
	if views[value] {
		return membrane.Grant{Kind: membrane.GrantView, View: value}, nil
	}
	if views["v_"+value] {
		return membrane.Grant{Kind: membrane.GrantView, View: "v_" + value}, nil
	}
	var match string
	for v := range views {
		if strings.HasSuffix(v, value) {
			if match != "" {
				return membrane.Grant{}, fmt.Errorf("consent value %q is ambiguous", value)
			}
			match = v
		}
	}
	if match == "" {
		return membrane.Grant{}, fmt.Errorf("consent value %q matches no view", value)
	}
	return membrane.Grant{Kind: membrane.GrantView, View: match}, nil
}

// CompileSource parses and compiles every declaration in src.
func CompileSource(src string, opts CompileOptions) ([]*dbfs.Schema, error) {
	decls, err := Parse(src)
	if err != nil {
		return nil, err
	}
	out := make([]*dbfs.Schema, 0, len(decls))
	for _, d := range decls {
		sch, err := Compile(d, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, sch)
	}
	return out, nil
}

// Format prints a TypeDecl in canonical DSL form. Parse(Format(d)) yields d
// back (property-tested).
func Format(d *TypeDecl) string {
	var b strings.Builder
	fmt.Fprintf(&b, "type %s {\n", d.Name)
	if len(d.Fields) > 0 {
		b.WriteString("  fields {\n")
		for i, f := range d.Fields {
			sep := ","
			if i == len(d.Fields)-1 {
				sep = ""
			}
			if f.Sensitive {
				fmt.Fprintf(&b, "    %s: %s sensitive%s\n", f.Name, f.Type, sep)
			} else {
				fmt.Fprintf(&b, "    %s: %s%s\n", f.Name, f.Type, sep)
			}
		}
		b.WriteString("  };\n")
	}
	for _, v := range d.Views {
		fmt.Fprintf(&b, "  view %s {\n", v.Name)
		for i, f := range v.Fields {
			sep := ","
			if i == len(v.Fields)-1 {
				sep = ""
			}
			fmt.Fprintf(&b, "    %s%s\n", f, sep)
		}
		b.WriteString("  };\n")
	}
	writePairs := func(section string, pairs [][2]string) {
		if len(pairs) == 0 {
			return
		}
		fmt.Fprintf(&b, "  %s {\n", section)
		for i, p := range pairs {
			sep := ","
			if i == len(pairs)-1 {
				sep = ""
			}
			fmt.Fprintf(&b, "    %s: %s%s\n", p[0], p[1], sep)
		}
		b.WriteString("  };\n")
	}
	consent := make([][2]string, 0, len(d.Consent))
	for _, c := range d.Consent {
		consent = append(consent, [2]string{c.Purpose, c.Value})
	}
	writePairs("consent", consent)
	collection := make([][2]string, 0, len(d.Collection))
	for _, c := range d.Collection {
		collection = append(collection, [2]string{c.Method, c.Ref})
	}
	writePairs("collection", collection)
	if d.Origin != "" {
		fmt.Fprintf(&b, "  origin: %s;\n", d.Origin)
	}
	if d.Age != "" {
		fmt.Fprintf(&b, "  age: %s;\n", d.Age)
	}
	if d.Sensitivity != "" {
		fmt.Fprintf(&b, "  sensitivity: %s;\n", d.Sensitivity)
	}
	b.WriteString("}\n")
	return b.String()
}
