package typedsl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dbfs"
	"repro/internal/membrane"
)

// listing1 is the paper's Listing 1, verbatim (modulo code-listing line
// numbers). Note the quirks: consent value "ano" abbreviates view "v_ano",
// the view references the derived field "age", and sensitivity is spelled
// "hight".
const listing1 = `
type user {
  fields {
    name: string,
    pwd: string,
    year_of_birthdate: int
  };
  view v_name {
    name
  };
  view v_ano {
    age
  };
  consent {
    purpose1: all,
    purpose2: none,
    purpose3: ano
  };
  collection {
    web_form: user_form.html,
    third_party: fetch_data.py
  };
  origin: subject;
  age: 1Y;
  sensitivity: hight;
}
`

func TestParseListing1Verbatim(t *testing.T) {
	d, err := ParseOne(listing1)
	if err != nil {
		t.Fatalf("Parse Listing 1: %v", err)
	}
	if d.Name != "user" {
		t.Fatalf("Name = %q", d.Name)
	}
	if len(d.Fields) != 3 || d.Fields[0].Name != "name" || d.Fields[2].Type != "int" {
		t.Fatalf("Fields = %+v", d.Fields)
	}
	if len(d.Views) != 2 || d.Views[0].Name != "v_name" || d.Views[1].Fields[0] != "age" {
		t.Fatalf("Views = %+v", d.Views)
	}
	if len(d.Consent) != 3 || d.Consent[2].Value != "ano" {
		t.Fatalf("Consent = %+v", d.Consent)
	}
	if len(d.Collection) != 2 || d.Collection[0].Ref != "user_form.html" {
		t.Fatalf("Collection = %+v", d.Collection)
	}
	if d.Origin != "subject" || d.Age != "1Y" || d.Sensitivity != "hight" {
		t.Fatalf("scalars = %q %q %q", d.Origin, d.Age, d.Sensitivity)
	}
}

func TestCompileListing1WithAlias(t *testing.T) {
	d, err := ParseOne(listing1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper derives age from year_of_birthdate (Listing 2); the alias
	// maps the view's derived field onto the stored one.
	sch, err := Compile(d, CompileOptions{FieldAliases: map[string]string{"age": "year_of_birthdate"}})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if sch.Name != "user" || len(sch.Fields) != 3 {
		t.Fatalf("schema = %+v", sch)
	}
	v, ok := sch.ViewByName("v_ano")
	if !ok || v.Fields[0] != "year_of_birthdate" {
		t.Fatalf("v_ano = %+v", v)
	}
	if g := sch.DefaultConsent["purpose3"]; g.Kind != membrane.GrantView || g.View != "v_ano" {
		t.Fatalf("purpose3 grant = %+v (consent shorthand not resolved)", g)
	}
	if g := sch.DefaultConsent["purpose1"]; g.Kind != membrane.GrantAll {
		t.Fatalf("purpose1 grant = %+v", g)
	}
	if g := sch.DefaultConsent["purpose2"]; g.Kind != membrane.GrantNone {
		t.Fatalf("purpose2 grant = %+v", g)
	}
	if sch.DefaultTTL != 365*24*time.Hour {
		t.Fatalf("TTL = %v, want 1Y", sch.DefaultTTL)
	}
	if sch.Sensitivity != membrane.SensitivityHigh {
		t.Fatalf("sensitivity = %v (hight not accepted)", sch.Sensitivity)
	}
	if sch.Origin != membrane.OriginSubject {
		t.Fatalf("origin = %v", sch.Origin)
	}
	if sch.Collection["third_party"] != "fetch_data.py" {
		t.Fatalf("collection = %v", sch.Collection)
	}
}

func TestCompileListing1StrictFails(t *testing.T) {
	d, err := ParseOne(listing1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(d, CompileOptions{}); !errors.Is(err, ErrCompile) {
		t.Fatalf("strict Compile = %v, want ErrCompile (undeclared view field)", err)
	}
}

func TestSensitiveFieldExtension(t *testing.T) {
	src := `
type patient {
  fields {
    name: string,
    ssn: string sensitive,
    age: int
  };
  view v_stats { age };
  consent { research: v_stats };
  origin: sysadmin;
  age: 6M;
  sensitivity: high;
}
`
	schemas, err := CompileSource(src, CompileOptions{})
	if err != nil {
		t.Fatalf("CompileSource: %v", err)
	}
	sch := schemas[0]
	f, ok := sch.FieldByName("ssn")
	if !ok || !f.Sensitive {
		t.Fatalf("ssn field = %+v", f)
	}
	if sch.DefaultTTL != 6*30*24*time.Hour {
		t.Fatalf("6M TTL = %v", sch.DefaultTTL)
	}
	if sch.Origin != membrane.OriginSysadmin {
		t.Fatalf("origin = %v", sch.Origin)
	}
}

func TestMultipleTypes(t *testing.T) {
	src := `
type a { fields { x: int }; }
type b { fields { y: string }; consent { p: all }; }
`
	schemas, err := CompileSource(src, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(schemas) != 2 || schemas[0].Name != "a" || schemas[1].Name != "b" {
		t.Fatalf("schemas = %+v", schemas)
	}
}

func TestCommentsAndTrailingSemis(t *testing.T) {
	src := `
// leading comment
type c {
  /* block
     comment */
  fields { x: int, y: float };
};
`
	d, err := ParseOne(src)
	if err != nil {
		t.Fatalf("comments not handled: %v", err)
	}
	if len(d.Fields) != 2 {
		t.Fatalf("Fields = %+v", d.Fields)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := map[string]string{
		"not a type":            `banana user { }`,
		"missing name":          `type { }`,
		"missing brace":         `type u fields { x: int };`,
		"unterminated":          `type u { fields { x: int };`,
		"bad section":           `type u { frobnicate { }; }`,
		"field missing colon":   `type u { fields { x int }; }`,
		"field missing type":    `type u { fields { x: }; }`,
		"missing semi":          `type u { fields { x: int } }`,
		"unterminated comment":  `type u { /* fields { x: int }; }`,
		"stray char":            `type u @ { }`,
		"consent missing value": `type u { fields { x: int }; consent { p: }; }`,
		"empty input":           `   `,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(src); !errors.Is(err, ErrSyntax) {
				t.Fatalf("Parse = %v, want ErrSyntax", err)
			}
		})
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"bad field type":     `type u { fields { x: blob }; }`,
		"bad origin":         `type u { fields { x: int }; origin: mars; }`,
		"bad age":            `type u { fields { x: int }; age: soon; }`,
		"bad sensitivity":    `type u { fields { x: int }; sensitivity: extreme; }`,
		"unknown view":       `type u { fields { x: int }; consent { p: v_ghost }; }`,
		"undeclared v-field": `type u { fields { x: int }; view v { y }; }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := CompileSource(src, CompileOptions{}); !errors.Is(err, ErrCompile) {
				t.Fatalf("Compile = %v, want ErrCompile", err)
			}
		})
	}
}

func TestConsentResolutionRules(t *testing.T) {
	src := `
type u {
  fields { a: int, b: int };
  view v_one { a };
  view v_two { b };
  consent {
    exact: v_one,
    prefixed: two,
    full: all
  };
}
`
	schemas, err := CompileSource(src, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dc := schemas[0].DefaultConsent
	if dc["exact"].View != "v_one" || dc["prefixed"].View != "v_two" || dc["full"].Kind != membrane.GrantAll {
		t.Fatalf("consents = %+v", dc)
	}
}

func TestConsentAmbiguous(t *testing.T) {
	// "xo" resolves neither exactly nor via the v_ prefix, and two views
	// share the suffix: the compiler must refuse to guess.
	src := `
type u {
  fields { a: int };
  view va_xo { a };
  view vb_xo { a };
  consent { p: xo };
}
`
	if _, err := CompileSource(src, CompileOptions{}); !errors.Is(err, ErrCompile) {
		t.Fatalf("ambiguous consent = %v, want ErrCompile", err)
	}
}

func TestParseAge(t *testing.T) {
	cases := map[string]time.Duration{
		"1Y":  365 * 24 * time.Hour,
		"2y":  2 * 365 * 24 * time.Hour,
		"6M":  6 * 30 * 24 * time.Hour,
		"2W":  14 * 24 * time.Hour,
		"30D": 30 * 24 * time.Hour,
		"12H": 12 * time.Hour,
		"90m": 90 * time.Minute, // Go duration fallback
		"":    0,
	}
	for in, want := range cases {
		got, err := ParseAge(in)
		if err != nil || got != want {
			t.Fatalf("ParseAge(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseAge("forever"); !errors.Is(err, ErrCompile) {
		t.Fatalf("ParseAge(forever) err = %v", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	d, err := ParseOne(listing1)
	if err != nil {
		t.Fatal(err)
	}
	printed := Format(d)
	d2, err := ParseOne(printed)
	if err != nil {
		t.Fatalf("reparse printed form: %v\n%s", err, printed)
	}
	if !declEqual(d, d2) {
		t.Fatalf("round trip changed decl:\n%s\nvs\n%s", Format(d), Format(d2))
	}
}

func declEqual(a, b *TypeDecl) bool {
	if a.Name != b.Name || a.Origin != b.Origin || a.Age != b.Age || a.Sensitivity != b.Sensitivity {
		return false
	}
	if len(a.Fields) != len(b.Fields) || len(a.Views) != len(b.Views) ||
		len(a.Consent) != len(b.Consent) || len(a.Collection) != len(b.Collection) {
		return false
	}
	for i := range a.Fields {
		if a.Fields[i] != b.Fields[i] {
			return false
		}
	}
	for i := range a.Views {
		if a.Views[i].Name != b.Views[i].Name || len(a.Views[i].Fields) != len(b.Views[i].Fields) {
			return false
		}
		for j := range a.Views[i].Fields {
			if a.Views[i].Fields[j] != b.Views[i].Fields[j] {
				return false
			}
		}
	}
	for i := range a.Consent {
		if a.Consent[i] != b.Consent[i] {
			return false
		}
	}
	for i := range a.Collection {
		if a.Collection[i] != b.Collection[i] {
			return false
		}
	}
	return true
}

// genIdent produces a small identifier from a seed, for property tests.
func genIdent(seed uint8, prefix string) string {
	letters := "abcdefgh"
	return prefix + string(letters[int(seed)%len(letters)]) + string(letters[int(seed/8)%len(letters)])
}

func TestFormatParsePropertyRandomDecls(t *testing.T) {
	types := []string{"string", "int", "float", "bool", "time"}
	origins := []string{"", "subject", "sysadmin", "third_party", "derived"}
	cfg := &quick.Config{MaxCount: 120}
	err := quick.Check(func(nameSeed uint8, fieldSeeds []uint8, originSeed uint8, withView, withConsent bool) bool {
		if len(fieldSeeds) == 0 {
			fieldSeeds = []uint8{1}
		}
		if len(fieldSeeds) > 6 {
			fieldSeeds = fieldSeeds[:6]
		}
		d := &TypeDecl{Name: genIdent(nameSeed, "t_")}
		seen := map[string]bool{}
		for i, fs := range fieldSeeds {
			fn := genIdent(fs, "f_")
			if seen[fn] {
				continue
			}
			seen[fn] = true
			d.Fields = append(d.Fields, FieldDecl{
				Name:      fn,
				Type:      types[int(fs)%len(types)],
				Sensitive: fs%3 == 0,
			})
			_ = i
		}
		if withView && len(d.Fields) > 0 {
			d.Views = append(d.Views, ViewDecl{Name: "v_a", Fields: []string{d.Fields[0].Name}})
		}
		if withConsent && len(d.Views) > 0 {
			d.Consent = append(d.Consent, ConsentDecl{Purpose: "p_x", Value: "v_a"})
		}
		d.Origin = origins[int(originSeed)%len(origins)]
		printed := Format(d)
		d2, err := ParseOne(printed)
		if err != nil {
			t.Logf("reparse failed: %v\n%s", err, printed)
			return false
		}
		return declEqual(d, d2)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompileIntegrationWithDBFSSchema(t *testing.T) {
	// The compiled schema must satisfy dbfs validation and produce a usable
	// default membrane.
	schemas, err := CompileSource(listing1, CompileOptions{
		FieldAliases: map[string]string{"age": "year_of_birthdate"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sch := schemas[0]
	if err := sch.Validate(); err != nil {
		t.Fatalf("compiled schema invalid: %v", err)
	}
	m := sch.DefaultMembrane("user/x/1", "x", time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC))
	if err := m.Validate(); err != nil {
		t.Fatalf("default membrane invalid: %v", err)
	}
	var _ *dbfs.Schema = sch
	if !strings.Contains(Format(&TypeDecl{Name: "user", Fields: []FieldDecl{{Name: "x", Type: "int"}}}), "type user") {
		t.Fatal("Format output malformed")
	}
}
