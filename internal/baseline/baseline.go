// Package baseline implements the architecture the paper positions itself
// against (Fig. 2): GDPR compliance implemented inside a userspace database
// engine (in the style of Shastri et al. and Schwarzkopf et al.), running on
// a general-purpose OS with a traditional journaled filesystem.
//
// The engine does everything right at its own level — it records consent per
// row, checks it before processing, honours TTLs, and deletes rows on
// erasure requests. The experiments then demonstrate the paper's two §1
// criticisms:
//
//   - F2V1: the filesystem below the engine "can take actions that
//     contradict" it — the journal and the freed blocks retain plaintext
//     images of rows the engine deleted, so the right to be forgotten is
//     violated one layer down.
//   - F2V2: the OS is process-centric — rows are copied into the process
//     heap, and a function holding a stale pointer (a use-after-free, cf.
//     the paper's MineSweeper citation) can read another subject's data
//     that was never consented to it.
//
// The same scenarios run against rgpdOS return zero violations, which is
// the architectural claim of the paper in executable form.
package baseline

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/inode"
	"repro/internal/plainfs"
	"repro/internal/simclock"
)

// Sentinel errors.
var (
	// ErrNoTable reports an operation on an undeclared table.
	ErrNoTable = errors.New("baseline: no such table")
	// ErrNoRow reports an unknown row id.
	ErrNoRow = errors.New("baseline: no such row")
	// ErrConsentDenied reports the engine's own consent check failing.
	ErrConsentDenied = errors.New("baseline: consent denied")
	// ErrDangling reports a safe-mode dereference of a freed pointer.
	ErrDangling = errors.New("baseline: dangling pointer dereference")
)

// row is the on-disk JSON representation of one record — plaintext, like
// any conventional DB file format.
type row struct {
	Subject   string            `json:"subject"`
	Fields    map[string]string `json:"fields"`
	Consents  map[string]bool   `json:"consents"`
	CreatedAt time.Time         `json:"created_at"`
	TTL       time.Duration     `json:"ttl"`
}

// Engine is the GDPR-aware userspace DB engine of Fig. 2.
type Engine struct {
	fs    *plainfs.FS
	clock simclock.Clock

	mu     sync.Mutex
	tables map[string]bool
	seq    map[string]uint64
	heap   *Heap
}

// New creates an engine over a freshly formatted plain filesystem.
func New(dev blockdev.Device, clock simclock.Clock) (*Engine, error) {
	if clock == nil {
		clock = simclock.Real{}
	}
	fs, err := plainfs.Format(dev, inode.Options{NInodes: 8192, JournalBlocks: 256, Clock: clock})
	if err != nil {
		return nil, fmt.Errorf("baseline: format: %w", err)
	}
	if err := fs.Mkdir("/db"); err != nil {
		return nil, fmt.Errorf("baseline: mkdir: %w", err)
	}
	return &Engine{
		fs:     fs,
		clock:  clock,
		tables: make(map[string]bool),
		seq:    make(map[string]uint64),
		heap:   NewHeap(true),
	}, nil
}

// FS exposes the underlying filesystem (residue scans).
func (e *Engine) FS() *plainfs.FS { return e.fs }

// Heap exposes the process heap (the UAF experiment).
func (e *Engine) Heap() *Heap { return e.heap }

// CreateTable declares a table.
func (e *Engine) CreateTable(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tables[name] {
		return nil
	}
	if err := e.fs.Mkdir("/db/" + name); err != nil && !errors.Is(err, plainfs.ErrExists) {
		return err
	}
	e.tables[name] = true
	return nil
}

// rowPath builds the file path of a row id "table/n".
func rowPath(table string, n uint64) string {
	return "/db/" + table + "/" + strconv.FormatUint(n, 10) + ".json"
}

// Insert stores a row with its consent map and returns its id.
func (e *Engine) Insert(table, subject string, fields map[string]string, consents map[string]bool, ttl time.Duration) (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.tables[table] {
		return "", fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	e.seq[table]++
	n := e.seq[table]
	r := row{
		Subject:   subject,
		Fields:    fields,
		Consents:  consents,
		CreatedAt: e.clock.Now(),
		TTL:       ttl,
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return "", fmt.Errorf("baseline: marshal row: %w", err)
	}
	if err := e.fs.WriteFile(rowPath(table, n), raw); err != nil {
		return "", err
	}
	return table + "/" + strconv.FormatUint(n, 10), nil
}

// parseID splits "table/n".
func (e *Engine) parseID(id string) (string, uint64, error) {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '/' {
			n, err := strconv.ParseUint(id[i+1:], 10, 64)
			if err != nil {
				return "", 0, fmt.Errorf("%w: %q", ErrNoRow, id)
			}
			return id[:i], n, nil
		}
	}
	return "", 0, fmt.Errorf("%w: %q", ErrNoRow, id)
}

// load reads a row from disk.
func (e *Engine) load(id string) (*row, string, error) {
	table, n, err := e.parseID(id)
	if err != nil {
		return nil, "", err
	}
	path := rowPath(table, n)
	raw, err := e.fs.ReadFile(path)
	if errors.Is(err, plainfs.ErrNotFound) {
		return nil, "", fmt.Errorf("%w: %q", ErrNoRow, id)
	}
	if err != nil {
		return nil, "", err
	}
	var r row
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, "", fmt.Errorf("baseline: corrupt row %q: %w", id, err)
	}
	return &r, path, nil
}

// Get returns a row's fields after the engine-level consent check for
// purpose. This is the engine "doing GDPR right" at its own layer.
func (e *Engine) Get(id, purposeName string) (map[string]string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, _, err := e.load(id)
	if err != nil {
		return nil, err
	}
	if !r.Consents[purposeName] {
		return nil, fmt.Errorf("%w: %s on %s", ErrConsentDenied, purposeName, id)
	}
	if r.TTL > 0 && e.clock.Now().After(r.CreatedAt.Add(r.TTL)) {
		return nil, fmt.Errorf("%w: %s expired", ErrConsentDenied, id)
	}
	out := make(map[string]string, len(r.Fields))
	for k, v := range r.Fields {
		out[k] = v
	}
	return out, nil
}

// ProcessToHeap loads a consented row into the process heap and returns the
// pointer — Fig. 2's process-centric flow: "the process brings data to its
// domain (virtual address space)".
func (e *Engine) ProcessToHeap(id, purposeName string) (Ptr, error) {
	fields, err := e.Get(id, purposeName)
	if err != nil {
		return Ptr{}, err
	}
	raw, err := json.Marshal(fields)
	if err != nil {
		return Ptr{}, fmt.Errorf("baseline: marshal for heap: %w", err)
	}
	return e.heap.Alloc(raw), nil
}

// Delete removes a row: the engine's implementation of erasure. It removes
// the file — and believes the data is gone.
func (e *Engine) Delete(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, path, err := e.load(id)
	if err != nil {
		return err
	}
	return e.fs.Remove(path)
}

// EraseSubject deletes every row of a subject across all tables (the
// engine's right to be forgotten).
func (e *Engine) EraseSubject(subject string) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	deleted := 0
	for table := range e.tables {
		entries, err := e.fs.List("/db/" + table)
		if err != nil {
			return deleted, err
		}
		for _, ent := range entries {
			path := "/db/" + table + "/" + ent.Name
			raw, err := e.fs.ReadFile(path)
			if err != nil {
				return deleted, err
			}
			var r row
			if err := json.Unmarshal(raw, &r); err != nil {
				continue
			}
			if r.Subject != subject {
				continue
			}
			if err := e.fs.Remove(path); err != nil {
				return deleted, err
			}
			deleted++
		}
	}
	return deleted, nil
}

// --- process-centric heap with use-after-free semantics ---

// Ptr is a raw heap pointer: a cell index with no generation tag, exactly
// like a C pointer. Holding one after Free is the hazard.
type Ptr struct {
	idx int
}

// cell is one heap allocation slot.
type cell struct {
	data      []byte
	allocated bool
}

// Heap models a process heap. In unsafe mode (the baseline's reality),
// dereferencing a freed-and-reused pointer silently returns the *current*
// bytes of the cell — another allocation's data. In safe mode it returns
// ErrDangling, which is what a memory-safe runtime (or rgpdOS's zeroized
// domains) gives you.
type Heap struct {
	unsafe bool

	mu       sync.Mutex
	cells    []cell
	freelist []int

	uafReads uint64
}

// NewHeap creates a heap; unsafe selects C-like UAF semantics.
func NewHeap(unsafe bool) *Heap {
	return &Heap{unsafe: unsafe}
}

// Alloc stores data in a (possibly recycled) cell.
func (h *Heap) Alloc(data []byte) Ptr {
	h.mu.Lock()
	defer h.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	if n := len(h.freelist); n > 0 {
		idx := h.freelist[n-1]
		h.freelist = h.freelist[:n-1]
		// Reuse without scrubbing: the new data replaces the old, and any
		// stale pointer to this cell now sees the new allocation.
		h.cells[idx] = cell{data: cp, allocated: true}
		return Ptr{idx: idx}
	}
	h.cells = append(h.cells, cell{data: cp, allocated: true})
	return Ptr{idx: len(h.cells) - 1}
}

// Free releases the cell. The bytes are NOT zeroed (like free(3)).
func (h *Heap) Free(p Ptr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p.idx < 0 || p.idx >= len(h.cells) || !h.cells[p.idx].allocated {
		return
	}
	h.cells[p.idx].allocated = false
	h.freelist = append(h.freelist, p.idx)
}

// Deref reads through the pointer. Unsafe mode: stale pointers read
// whatever occupies the cell now (counted as a UAF read when the cell was
// recycled). Safe mode: stale pointers error.
func (h *Heap) Deref(p Ptr) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p.idx < 0 || p.idx >= len(h.cells) {
		return nil, fmt.Errorf("%w: out of range", ErrDangling)
	}
	c := h.cells[p.idx]
	out := make([]byte, len(c.data))
	copy(out, c.data)
	if !c.allocated {
		// Freed, not yet reused: unsafe mode reads the stale bytes.
		if h.unsafe {
			return out, nil
		}
		return nil, fmt.Errorf("%w: freed cell %d", ErrDangling, p.idx)
	}
	return out, nil
}

// DerefStale is Deref for a pointer the caller knows was freed; in unsafe
// mode a recycled cell yields the NEW occupant's bytes, and the read is
// counted as a use-after-free violation.
func (h *Heap) DerefStale(p Ptr) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p.idx < 0 || p.idx >= len(h.cells) {
		return nil, fmt.Errorf("%w: out of range", ErrDangling)
	}
	c := h.cells[p.idx]
	if !h.unsafe {
		return nil, fmt.Errorf("%w: freed cell %d", ErrDangling, p.idx)
	}
	h.uafReads++
	out := make([]byte, len(c.data))
	copy(out, c.data)
	return out, nil
}

// UAFReads reports how many stale dereferences happened.
func (h *Heap) UAFReads() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.uafReads
}
