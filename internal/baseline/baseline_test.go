package baseline

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/simclock"
)

func newEngine(t *testing.T) (*Engine, *blockdev.Mem, *simclock.Sim) {
	t.Helper()
	dev := blockdev.MustMem(4096)
	clock := simclock.NewSim(simclock.Epoch)
	e, err := New(dev, clock)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, dev, clock
}

func TestEngineCRUD(t *testing.T) {
	e, _, _ := newEngine(t)
	if err := e.CreateTable("user"); err != nil {
		t.Fatal(err)
	}
	id, err := e.Insert("user", "alice", map[string]string{"name": "Alice"},
		map[string]bool{"analytics": true}, 0)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	fields, err := e.Get(id, "analytics")
	if err != nil || fields["name"] != "Alice" {
		t.Fatalf("Get = %v, %v", fields, err)
	}
	if err := e.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get(id, "analytics"); !errors.Is(err, ErrNoRow) {
		t.Fatalf("Get after delete err = %v", err)
	}
}

func TestEngineConsentCheck(t *testing.T) {
	// The engine-level GDPR logic works as designed.
	e, _, clock := newEngine(t)
	_ = e.CreateTable("user")
	id, err := e.Insert("user", "bob", map[string]string{"name": "Bob"},
		map[string]bool{"analytics": false}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get(id, "analytics"); !errors.Is(err, ErrConsentDenied) {
		t.Fatalf("denied consent err = %v", err)
	}
	id2, _ := e.Insert("user", "bob", map[string]string{"name": "Bob"},
		map[string]bool{"analytics": true}, time.Hour)
	if _, err := e.Get(id2, "analytics"); err != nil {
		t.Fatalf("granted consent err = %v", err)
	}
	clock.Advance(2 * time.Hour)
	if _, err := e.Get(id2, "analytics"); !errors.Is(err, ErrConsentDenied) {
		t.Fatalf("expired TTL err = %v", err)
	}
}

func TestEngineErrors(t *testing.T) {
	e, _, _ := newEngine(t)
	if _, err := e.Insert("ghost", "s", nil, nil, 0); !errors.Is(err, ErrNoTable) {
		t.Fatalf("Insert ghost table err = %v", err)
	}
	if _, err := e.Get("nonsense", "p"); !errors.Is(err, ErrNoRow) {
		t.Fatalf("Get bad id err = %v", err)
	}
	if err := e.Delete("user/99"); !errors.Is(err, ErrNoRow) {
		t.Fatalf("Delete missing err = %v", err)
	}
}

func TestJournalLeakViolation(t *testing.T) {
	// F2V1, the paper's §1 example: the engine deletes a row, yet the
	// plaintext survives below it in the filesystem (journal/free space),
	// recoverable by scanning the raw device.
	e, dev, _ := newEngine(t)
	_ = e.CreateTable("patient")
	secret := "diagnosis=severe-condition-xyz"
	id, err := e.Insert("patient", "chiraz", map[string]string{"diagnosis": secret},
		map[string]bool{"care": true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(id); err != nil {
		t.Fatal(err)
	}
	// The engine's view: the row is gone.
	if _, err := e.Get(id, "care"); !errors.Is(err, ErrNoRow) {
		t.Fatalf("engine still sees the row: %v", err)
	}
	// The forensic view: the plaintext remains on the device.
	hits := blockdev.FindResidue(dev, []byte(secret))
	if len(hits) == 0 {
		t.Fatal("no residue found — the baseline should leak deleted data")
	}
}

func TestEraseSubjectLeavesResidue(t *testing.T) {
	e, dev, _ := newEngine(t)
	_ = e.CreateTable("user")
	for i := 0; i < 3; i++ {
		if _, err := e.Insert("user", "alice", map[string]string{"email": "alice@example.com"},
			map[string]bool{"ads": true}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Insert("user", "bob", map[string]string{"email": "bob@example.com"},
		map[string]bool{"ads": true}, 0); err != nil {
		t.Fatal(err)
	}
	n, err := e.EraseSubject("alice")
	if err != nil || n != 3 {
		t.Fatalf("EraseSubject = %d, %v", n, err)
	}
	// Bob intact, alice gone from the engine...
	if n, _ := e.EraseSubject("alice"); n != 0 {
		t.Fatal("second erase found rows")
	}
	// ...but her plaintext survives below.
	if hits := blockdev.FindResidue(dev, []byte("alice@example.com")); len(hits) == 0 {
		t.Fatal("no residue after subject erasure")
	}
}

func TestHeapUseAfterFree(t *testing.T) {
	// F2V2: process-centric memory lets a stale pointer read another
	// subject's data (Fig. 2's f2 accidentally accessing pd2).
	h := NewHeap(true)
	pd1 := h.Alloc([]byte("pd1:alice:salary=90k"))
	h.Free(pd1)
	// pd2 lands in the recycled cell.
	pd2 := h.Alloc([]byte("pd2:bob:hiv-status=positive"))
	_ = pd2
	leaked, err := h.DerefStale(pd1)
	if err != nil {
		t.Fatalf("unsafe DerefStale errored: %v", err)
	}
	if !strings.Contains(string(leaked), "bob") {
		t.Fatalf("stale read = %q, expected bob's data", leaked)
	}
	if h.UAFReads() != 1 {
		t.Fatalf("UAFReads = %d", h.UAFReads())
	}
}

func TestSafeHeapBlocksUAF(t *testing.T) {
	h := NewHeap(false)
	p := h.Alloc([]byte("pd"))
	h.Free(p)
	if _, err := h.DerefStale(p); !errors.Is(err, ErrDangling) {
		t.Fatalf("safe DerefStale err = %v", err)
	}
	if _, err := h.Deref(p); !errors.Is(err, ErrDangling) {
		t.Fatalf("safe Deref err = %v", err)
	}
	if h.UAFReads() != 0 {
		t.Fatalf("UAFReads = %d", h.UAFReads())
	}
}

func TestHeapNormalOps(t *testing.T) {
	h := NewHeap(true)
	p := h.Alloc([]byte("hello"))
	got, err := h.Deref(p)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Deref = %q, %v", got, err)
	}
	// Out-of-range pointers always error.
	if _, err := h.Deref(Ptr{idx: 999}); !errors.Is(err, ErrDangling) {
		t.Fatalf("oob Deref err = %v", err)
	}
	// Double free is a no-op.
	h.Free(p)
	h.Free(p)
	q := h.Alloc([]byte("new"))
	if q.idx != p.idx {
		t.Fatalf("freelist not reused: %d vs %d", q.idx, p.idx)
	}
}

func TestProcessToHeap(t *testing.T) {
	e, _, _ := newEngine(t)
	_ = e.CreateTable("user")
	id, _ := e.Insert("user", "alice", map[string]string{"name": "Alice"},
		map[string]bool{"analytics": true}, 0)
	ptr, err := e.ProcessToHeap(id, "analytics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := e.Heap().Deref(ptr)
	if err != nil || !strings.Contains(string(raw), "Alice") {
		t.Fatalf("heap contents = %q, %v", raw, err)
	}
	// Consent still enforced on the way in.
	if _, err := e.ProcessToHeap(id, "ads"); !errors.Is(err, ErrConsentDenied) {
		t.Fatalf("ProcessToHeap without consent err = %v", err)
	}
}
