package core

// Cross-module integration tests: full scenarios spanning the DSL, the
// Processing Store, the DED, DBFS, the rights engine and the audit log,
// exercised exactly as a data operator would drive a production system.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/collect"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/membrane"
	"repro/internal/ps"
	"repro/internal/purpose"
	"repro/internal/xrand"
)

const agePDDSL = `
type age_pd {
  fields { age: int };
  consent { purpose3: all };
  origin: derived;
  age: 1Y;
  sensitivity: low;
}
`

func TestGeneratedPDFlowThroughPS(t *testing.T) {
	s := bootTest(t)
	setupUserType(t, s)
	if err := s.DeclareTypesDSL(agePDDSL, aliasOpts()); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitForm("user", "alice", dbfs.Record{
		"name": dbfs.S("Alice"), "pwd": dbfs.S("x"), "year_of_birthdate": dbfs.I(1990),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire("user", "web_form", []string{"alice"}); err != nil {
		t.Fatal(err)
	}
	decl := &purpose.Decl{Name: "purpose3", Description: "Compute the age of the input user",
		Basis: purpose.BasisConsent, Reads: []string{"user.year_of_birthdate"}, Produces: "age_pd"}
	impl := &ded.Func{Name: "compute_age_pd", Purpose: "purpose3",
		DeclaredReads: []string{"user.year_of_birthdate"},
		Fn: func(c *ded.Ctx) (ded.Output, error) {
			yob, err := c.Field("year_of_birthdate")
			if err != nil {
				return ded.Output{}, err
			}
			return ded.Output{Generated: &ded.GeneratedPD{
				TypeName:  "age_pd",
				SubjectID: c.SubjectID(),
				Fields:    dbfs.Record{"age": dbfs.I(2023 - yob.I)},
			}}, nil
		}}
	if err := s.PS().Register(decl, impl, false); err != nil {
		t.Fatal(err)
	}
	res, err := s.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"})
	if err != nil {
		t.Fatal(err)
	}
	// The caller got a reference, never the PD (Listing 3 vs §2 rule).
	if len(res.PDRefs) != 1 || len(res.Outputs) != 0 {
		t.Fatalf("res = %+v", res)
	}
	// The generated PD shows up in the subject's access report, marked
	// derived, and is erased together with the source (same family).
	report, err := s.Rights().Access("alice")
	if err != nil {
		t.Fatal(err)
	}
	ages := report.Data["age_pd"]
	if len(ages) != 1 || ages[0].Origin != "derived" {
		t.Fatalf("derived PD in report = %+v", ages)
	}
	if ages[0].Fields["age"] != int64(33) {
		t.Fatalf("age = %v", ages[0].Fields)
	}
	erased, err := s.Rights().Erase("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(erased.Erased) != 2 {
		t.Fatalf("erasure must cover source + derived: %v", erased.Erased)
	}
}

func TestConsentWithdrawalAffectsNextInvoke(t *testing.T) {
	s := bootTest(t)
	setupUserType(t, s)
	registerComputeAge(t, s)
	rng := xrand.New(9)
	subjects := testSubjectIDs(10)
	for _, subject := range subjects {
		if err := s.SubmitForm("user", subject, testUserRecord(rng, subject)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Acquire("user", "web_form", subjects); err != nil {
		t.Fatal(err)
	}
	res, err := s.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 10 {
		t.Fatalf("initial Processed = %d", res.Processed)
	}
	for _, subject := range subjects[:4] {
		if err := s.Rights().WithdrawConsent(subject, "purpose3"); err != nil {
			t.Fatal(err)
		}
	}
	res, err = s.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 6 || res.Filtered["consent-denied"] != 4 {
		t.Fatalf("post-withdrawal res = %+v", res)
	}
	// Re-granting through the rights engine restores processing.
	if err := s.Rights().SetConsent(subjects[0], "purpose3",
		membrane.Grant{Kind: membrane.GrantView, View: "v_ano"}); err != nil {
		t.Fatal(err)
	}
	res, err = s.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 7 {
		t.Fatalf("post-regrant Processed = %d", res.Processed)
	}
}

func TestAuditChainAcrossFullScenario(t *testing.T) {
	s := bootTest(t)
	setupUserType(t, s)
	registerComputeAge(t, s)
	if err := s.SubmitForm("user", "bob", dbfs.Record{
		"name": dbfs.S("Bob"), "pwd": dbfs.S("x"), "year_of_birthdate": dbfs.I(1970),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire("user", "web_form", []string{"bob"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PS().Invoke(ps.InvokeRequest{Processing: "purpose3", TypeName: "user"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Rights().Rectify("user/bob/1", dbfs.Record{"name": dbfs.S("Robert")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rights().Erase("bob"); err != nil {
		t.Fatal(err)
	}
	// The chain covers collection, processing, consent/erasure events.
	if err := s.Audit().Verify(); err != nil {
		t.Fatalf("audit verify: %v", err)
	}
	kinds := s.Audit().CountByKind()
	for _, k := range []audit.Kind{audit.KindCollection, audit.KindProcessing, audit.KindErasure} {
		if kinds[k] == 0 {
			t.Fatalf("missing audit kind %v: %v", k, kinds)
		}
	}
	// And tampering is detected.
	if !s.Audit().Tamper(1, "history rewritten") {
		t.Fatal("tamper refused")
	}
	if err := s.Audit().Verify(); !errors.Is(err, audit.ErrChainBroken) {
		t.Fatalf("tamper not detected: %v", err)
	}
}

func TestPartitionRebalanceDuringWorkload(t *testing.T) {
	// §2: kernels "cooperate to (dynamically) partition CPU and memory".
	s := bootTest(t)
	setupUserType(t, s)
	if err := s.Machine().Partition.Rebalance(GPKernel, RgpdOSKernel, 1.0, 1000); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	var rgpd, gp float64
	for _, share := range s.Machine().Partition.Shares() {
		switch share.Kernel {
		case RgpdOSKernel:
			rgpd = share.CPUs
		case GPKernel:
			gp = share.CPUs
		}
	}
	if rgpd <= gp {
		t.Fatalf("rebalance had no effect: rgpdos=%v gp=%v", rgpd, gp)
	}
	// The machine still works after rebalancing.
	if err := s.SubmitForm("user", "carol", dbfs.Record{
		"name": dbfs.S("Carol"), "pwd": dbfs.S("x"), "year_of_birthdate": dbfs.I(2000),
	}); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Acquire("user", "web_form", []string{"carol"}); err != nil || n != 1 {
		t.Fatalf("Acquire after rebalance = %d, %v", n, err)
	}
}

func TestTTLSweepThroughSystemClock(t *testing.T) {
	s := bootTest(t)
	setupUserType(t, s)
	if err := s.SubmitForm("user", "dave", dbfs.Record{
		"name": dbfs.S("Dave"), "pwd": dbfs.S("x"), "year_of_birthdate": dbfs.I(1999),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire("user", "web_form", []string{"dave"}); err != nil {
		t.Fatal(err)
	}
	clk, ok := s.SimClock()
	if !ok {
		t.Fatal("no sim clock")
	}
	clk.Advance(400 * 24 * time.Hour) // past the 1Y TTL
	deleted, err := s.Rights().SweepExpired()
	if err != nil || len(deleted) != 1 {
		t.Fatalf("sweep = %v, %v", deleted, err)
	}
	// Fully gone, not just tombstoned: the retention basis elapsed.
	if _, err := s.DBFS().GetRecord(s.DEDToken(), deleted[0]); !errors.Is(err, dbfs.ErrNoRecord) {
		t.Fatalf("expired record readable: %v", err)
	}
}

func TestThirdPartyCollectionProvenance(t *testing.T) {
	s := bootTest(t)
	setupUserType(t, s)
	s.RegisterSource("user", collect.NewThirdPartySource("fetch_data.py",
		func(subject string) (dbfs.Record, error) {
			return dbfs.Record{
				"name": dbfs.S("Partner record for " + subject),
				"pwd":  dbfs.S("imported"), "year_of_birthdate": dbfs.I(1980),
			}, nil
		}))
	if n, err := s.Acquire("user", "third_party", []string{"erin"}); err != nil || n != 1 {
		t.Fatalf("Acquire = %d, %v", n, err)
	}
	m, err := s.DBFS().GetMembrane(s.DEDToken(), "user/erin/1")
	if err != nil {
		t.Fatal(err)
	}
	// Traceability (§2): the membrane records where the PD came from.
	if m.Origin != membrane.OriginThirdParty {
		t.Fatalf("origin = %v", m.Origin)
	}
}
