package core

// The self-tuning control plane (Options.Control): one feedback controller
// per runtime knob, each observing counters the system already exports and
// steering its knob exclusively through ApplyTuning — the controllers are
// just another client of the unified tuning API, so Tuning() always shows
// what they did and rgpdctl can override them between ticks.
//
//   commit-window    AIMD        group-commit occupancy (txns per group)
//   admission-queue  AIMD        admitted-latency p99 vs Options.ControlSLO
//   sweep-interval   hill-climb  expiries reclaimed per sweep pass
//   membrane-cache   hill-climb  membrane-cache hit rate
//   repack-interval  hill-climb  cold-tier demotions per repack pass
//
// Every signal is a windowed delta — counters since the previous tick, not
// since boot — so the controllers react to current behaviour, and every
// Read returns the controller's own target when the window saw no traffic
// (a neutral reading holds the knob instead of steering on silence).

import (
	"math"
	"sync"
	"time"

	"repro/internal/control"
	"repro/internal/latencyhist"
)

// Control-plane setpoints. Targets are behavioural, not load-dependent:
// occupancy per group, latency relative to the SLO, expiries per pass, hit
// rate — all reachable across the load range SC6 sweeps.
const (
	// ctlGroupOccupancy is the commit-window target batching factor: enough
	// coalescing to amortize the journal flush, low enough that the window
	// is not padding latency when traffic is thin.
	ctlGroupOccupancy = 4.0
	// ctlCommitWindowMaxMs bounds the commit window (in ms).
	ctlCommitWindowMaxMs = 20.0
	// ctlExpiriesPerPass is the sweep-interval target reclaim density.
	ctlExpiriesPerPass = 8.0
	// ctlDemotionsPerPass is the repack-interval target demotion density:
	// pass often enough that the hot tier sheds cold records promptly, but
	// not so often that passes scan shards to demote nothing.
	ctlDemotionsPerPass = 8.0
	// ctlCacheHitRate is the membrane-cache target hit rate.
	ctlCacheHitRate = 0.9
	// ctlCacheMin / ctlCacheMax / ctlCacheStep bound the cache capacity
	// knob (entries).
	ctlCacheMin  = 64.0
	ctlCacheMax  = 65536.0
	ctlCacheStep = 256.0
	// ctlAdmissionDefault seeds the admission bound when the machine
	// booted unbounded: the controller cannot steer "unbounded", so
	// enabling the control plane installs a finite starting bound.
	ctlAdmissionDefault = 64
)

func clampf(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}

// buildControlGroup wires the five controllers. Called once from Boot;
// controllers whose subsystem is ablated away (membrane cache disabled,
// cold-tier demotion off) are skipped rather than fighting the ablation.
func (s *System) buildControlGroup() (*control.Group, error) {
	var cs []*control.Controller

	// Commit window: knob in milliseconds, signal = windowed txns/groups
	// summed over every journal. AIMD — a too-long window pads every
	// commit's latency, so retreat is multiplicative.
	{
		var mu sync.Mutex
		var prevTxns, prevGroups uint64
		// Seed the window with the boot-time counters so the first tick
		// observes post-boot traffic, not Format's journal activity.
		for _, fs := range s.pdFSs {
			st := fs.JournalStats()
			prevTxns += st.TxnsCommitted
			prevGroups += st.GroupCommits
		}
		initial := clampf(float64(s.opts.CommitWindow)/float64(time.Millisecond), 0, ctlCommitWindowMaxMs)
		c, err := control.New(control.Config{
			Name:    "commit-window",
			Mode:    control.AIMD,
			Target:  ctlGroupOccupancy,
			Band:    0.25,
			Min:     0,
			Max:     ctlCommitWindowMaxMs,
			Initial: initial,
			Step:    0.25,
			Read: func() float64 {
				var txns, groups uint64
				for _, fs := range s.pdFSs {
					st := fs.JournalStats()
					txns += st.TxnsCommitted
					groups += st.GroupCommits
				}
				mu.Lock()
				defer mu.Unlock()
				dt, dg := txns-prevTxns, groups-prevGroups
				prevTxns, prevGroups = txns, groups
				if dg == 0 {
					return ctlGroupOccupancy
				}
				return float64(dt) / float64(dg)
			},
			Apply: func(v float64) error {
				w := time.Duration(v * float64(time.Millisecond))
				return s.ApplyTuning(Tuning{CommitWindow: &w})
			},
		})
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
	}

	// Admission bound: knob = MaxPending, signal = windowed p99 of
	// admitted latency over the SLO (target ratio 1.0). AIMD — queue depth
	// past the SLO is the overload SC4 protects against, so back off hard.
	if adm := s.ps.Admission(); adm != nil {
		initial := s.opts.AdmissionQueue
		if initial <= 0 {
			initial = ctlAdmissionDefault
			n := initial
			if err := s.ApplyTuning(Tuning{AdmissionMaxPending: &n}); err != nil {
				return nil, err
			}
		}
		var mu sync.Mutex
		var prev latencyhist.Hist
		slo := float64(s.opts.ControlSLO)
		c, err := control.New(control.Config{
			Name:    "admission-queue",
			Mode:    control.AIMD,
			Target:  1.0,
			Band:    0.2,
			Min:     1,
			Max:     math.Max(4096, float64(initial)),
			Initial: float64(initial),
			Step:    4,
			Read: func() float64 {
				st := adm.Snapshot()
				mu.Lock()
				defer mu.Unlock()
				win := st.LatencyHist.Delta(prev)
				prev = st.LatencyHist
				if win.Total() == 0 {
					return 1.0
				}
				return float64(win.Quantile(0.99)) / slo
			},
			Apply: func(v float64) error {
				n := int(math.Round(v))
				return s.ApplyTuning(Tuning{AdmissionMaxPending: &n})
			},
		})
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
	}

	// Sweep interval: knob in seconds, signal = windowed expiries deleted
	// per pass. Hill-climb — both directions cost the same (CPU spent
	// scanning vs retention slack consumed), approach the density target
	// in fixed steps.
	{
		var mu sync.Mutex
		var prevDeleted, prevPasses uint64
		const minS, maxS = 1.0, 900.0
		c, err := control.New(control.Config{
			Name:    "sweep-interval",
			Mode:    control.HillClimb,
			Target:  ctlExpiriesPerPass,
			Band:    0.5,
			Min:     minS,
			Max:     maxS,
			Initial: clampf(s.opts.SweepInterval.Seconds(), minS, maxS),
			Step:    5,
			Read: func() float64 {
				sw := s.Sweeper()
				if sw == nil {
					return ctlExpiriesPerPass
				}
				st := sw.Stats()
				mu.Lock()
				defer mu.Unlock()
				dd, dp := st.Deleted-prevDeleted, st.Passes-prevPasses
				prevDeleted, prevPasses = st.Deleted, st.Passes
				if dp == 0 {
					return ctlExpiriesPerPass
				}
				return float64(dd) / float64(dp)
			},
			Apply: func(v float64) error {
				d := time.Duration(v * float64(time.Second))
				return s.ApplyTuning(Tuning{SweepInterval: &d})
			},
		})
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
	}

	// Membrane cache: knob = capacity in entries, signal = windowed hit
	// rate. Hill-climb toward the target rate: grow while starved, shrink
	// (reclaim memory) while comfortably above it. Skipped when the boot
	// ablated the cache away — the controller must not undo an ablation.
	if cap0 := s.store.MembraneCacheCap(); cap0 >= 0 {
		var mu sync.Mutex
		boot := s.store.Stats()
		prevHits, prevMisses := boot.CacheHits, boot.CacheMisses
		c, err := control.New(control.Config{
			Name:    "membrane-cache",
			Mode:    control.HillClimb,
			Target:  ctlCacheHitRate,
			Band:    0.05,
			Min:     ctlCacheMin,
			Max:     ctlCacheMax,
			Initial: clampf(float64(cap0), ctlCacheMin, ctlCacheMax),
			Step:    ctlCacheStep,
			Read: func() float64 {
				st := s.store.Stats()
				mu.Lock()
				defer mu.Unlock()
				dh, dm := st.CacheHits-prevHits, st.CacheMisses-prevMisses
				prevHits, prevMisses = st.CacheHits, st.CacheMisses
				if dh+dm == 0 {
					return ctlCacheHitRate
				}
				return float64(dh) / float64(dh+dm)
			},
			Apply: func(v float64) error {
				n := int(math.Round(v))
				return s.ApplyTuning(Tuning{MembraneCache: &n})
			},
		})
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
	}

	// Repack interval: knob in seconds, signal = windowed cold-tier
	// demotions per pass. Hill-climb toward a target demotion density,
	// the sweeper's law: pass too often and shard scans demote nothing,
	// too rarely and the hot tier carries cold records. Skipped when
	// demotion is disabled (ColdAfter 0) — the controller must not undo
	// the ablation.
	if s.store.ColdAfter() > 0 {
		var mu sync.Mutex
		var prevDemoted, prevPasses uint64
		const minS, maxS = 1.0, 900.0
		c, err := control.New(control.Config{
			Name:    "repack-interval",
			Mode:    control.HillClimb,
			Target:  ctlDemotionsPerPass,
			Band:    0.5,
			Min:     minS,
			Max:     maxS,
			Initial: clampf(s.repackInterval.Seconds(), minS, maxS),
			Step:    5,
			Read: func() float64 {
				rp := s.Repacker()
				if rp == nil {
					return ctlDemotionsPerPass
				}
				st := rp.Stats()
				mu.Lock()
				defer mu.Unlock()
				dd, dp := st.Demoted-prevDemoted, st.Passes-prevPasses
				prevDemoted, prevPasses = st.Demoted, st.Passes
				if dp == 0 {
					return ctlDemotionsPerPass
				}
				return float64(dd) / float64(dp)
			},
			Apply: func(v float64) error {
				d := time.Duration(v * float64(time.Second))
				return s.ApplyTuning(Tuning{RepackInterval: &d})
			},
		})
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
	}

	return control.NewGroup(s.opts.Clock, s.opts.ControlInterval, cs...), nil
}

// Controllers snapshots the control plane's controllers (nil when the
// machine booted without Options.Control).
func (s *System) Controllers() []control.State {
	if s.ctl == nil {
		return nil
	}
	return s.ctl.States()
}

// ControlTick steps every controller once at the current clock instant —
// the deterministic driver simclock tests and SC6 use. No-op without
// Options.Control.
func (s *System) ControlTick() {
	if s.ctl != nil {
		s.ctl.Tick()
	}
}

// StartControl launches the control plane's background tick loop (no-op
// without Options.Control); StopControl halts it.
func (s *System) StartControl() {
	if s.ctl != nil {
		s.ctl.Start()
	}
}

// StopControl stops the background tick loop.
func (s *System) StopControl() {
	if s.ctl != nil {
		s.ctl.Stop()
	}
}
