// Package core assembles the complete rgpdOS machine — the paper's
// contribution as a bootable system.
//
// Boot builds the purpose-kernel topology of §2: two IO-driver kernels (one
// per simulated disk), the general-purpose kernel with its traditional
// filesystem for non-personal data, and the rgpdOS kernel hosting DBFS, the
// Processing Store, the DED, the built-in processings, the collection
// registry and the rights engine. CPU and memory are partitioned across the
// sub-kernels; all personal-data IO crosses the bus to its driver kernel.
//
// The System type is the public API of the reproduction: examples, the
// CLIs and the benchmark harness all program against it exactly as a data
// operator would program against rgpdOS — declare types in the DSL, feed
// collection sources, register purpose-annotated processings, ps_invoke
// them, and serve data-subject rights.
//
// Runtime knobs flow through one door: ApplyTuning applies a validated
// core.Tuning document atomically per knob (nothing applies if any knob is
// invalid) and Tuning() snapshots the live configuration. Options.Control
// starts the self-tuning control plane (control.go): five feedback
// controllers from internal/control steering the WAL commit window, the
// admission queue bound, the sweeper interval, the membrane-cache
// capacity and the cold-tier repack interval from the counters the system
// already exports — through the same ApplyTuning API an operator uses. DESIGN.md ("Control plane & tuning
// API") documents the controller law and setpoints; SC6 gates convergence.
package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/audit"
	"repro/internal/blockdev"
	"repro/internal/builtins"
	"repro/internal/coldtier"
	"repro/internal/collect"
	"repro/internal/control"
	"repro/internal/cryptoshred"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/inode"
	"repro/internal/kernel"
	"repro/internal/lsm"
	"repro/internal/membrane"
	"repro/internal/plainfs"
	"repro/internal/ps"
	"repro/internal/rights"
	"repro/internal/simclock"
	"repro/internal/typedsl"
)

// Kernel names in the machine topology.
const (
	PDDriverKernel  = "io.pd0"
	NPDDriverKernel = "io.npd0"
	GPKernel        = "gp"
	RgpdOSKernel    = "rgpdos"
)

// Options configures Boot.
type Options struct {
	// PDDiskBlocks / NPDDiskBlocks size the two simulated disks.
	PDDiskBlocks  uint64
	NPDDiskBlocks uint64
	// NInodes and JournalBlocks shape both filesystems.
	NInodes       uint64
	JournalBlocks uint64
	// Clock drives membranes, audit and TTLs. Defaults to a Sim clock at
	// the epoch so runs are reproducible.
	Clock simclock.Clock
	// AuthorityBits sizes the escrow keypair (default 2048; tests use
	// 1024).
	AuthorityBits int
	// Machine sets the kernel topology resources and IPC costs.
	Machine kernel.MachineOptions
	// DirectIO bypasses the IO-driver kernels (monolithic ablation, OV3).
	DirectIO bool
	// Workers sizes the DED executor pool used by InvokeBatch: how many
	// invocations (for distinct subjects, thanks to DBFS subject sharding)
	// run concurrently. Defaults to GOMAXPROCS.
	Workers int
	// FSInstances is how many inode filesystem instances back DBFS. Above
	// one, the PD disk is split into that many partitions (each with its
	// own journal) and subject shards are routed across them, so
	// shard-disjoint inserts never share a filesystem lock. Default 1.
	FSInstances int
	// Shards is the DBFS subject-shard count — the unit of lock
	// parallelism and of routing across FSInstances. 0 means
	// dbfs.DefaultShards (64, the shard-collision sweep's pick); it must
	// be at least FSInstances. Persisted in the store's shard config, so
	// a remount of the same devices must not change it.
	Shards int
	// CommitWindow is how long each journal's group committer waits for
	// more transactions before flushing a commit group. Default 0 (drain
	// immediately; concurrent arrivals still coalesce).
	CommitWindow time.Duration
	// GroupCommitMaxBatch bounds journal transactions per commit group
	// (0 = the wal default, 1 disables group commit — the pre-group-commit
	// baseline for ablations).
	GroupCommitMaxBatch int
	// PDLatency overrides the PD disk's latency model (zero value =
	// blockdev.DefaultLatency()). Storage-concurrency experiments set
	// Sleep to make device time wall-clock visible.
	PDLatency blockdev.LatencyModel
	// MembraneCache bounds DBFS's decoded-membrane cache (entries across
	// all shards): 0 = the dbfs default, negative disables the cache —
	// the ablation configuration SC3 compares against.
	MembraneCache int
	// BlockCache bounds each inode filesystem instance's shared write-back
	// block buffer cache (in blocks): 0 = the inode default
	// (inode.DefaultCacheBlocks), negative disables the cache — the
	// ablation configuration SC5 compares against.
	BlockCache int
	// AdmissionQueue bounds how many non-maintenance ps_invoke requests
	// may be admitted (queued or running) at once; the excess is rejected
	// with admission.ErrOverloaded instead of queueing without bound —
	// the "heavy traffic" protection SC4 measures. Zero means unbounded
	// admission: the controller still tracks depth, latency and
	// per-purpose rate limits (refilled off Clock), it just never rejects
	// on depth.
	AdmissionQueue int
	// SweepInterval is the retention sweeper's pass cadence when
	// StartSweeper runs it (0 = rights.DefaultSweepInterval). Runtime
	// adjustable via ApplyTuning.
	SweepInterval time.Duration
	// ColdAfter enables the DBFS cold tier: records untouched this long
	// are demoted into compressed per-subject content-addressed archives
	// by the repacker's next pass. 0 (the default) disables demotion;
	// promotion of already-archived records always works. Runtime
	// adjustable via ApplyTuning.
	ColdAfter time.Duration
	// ColdInterval is the cold-tier repacker's pass cadence when
	// StartRepacker runs it (0 = coldtier.DefaultRepackInterval). Runtime
	// adjustable via ApplyTuning (RepackInterval).
	ColdInterval time.Duration
	// CryptoRand overrides the vault's entropy source. ONLY for
	// deterministic experiments (SC7 asserts byte-identical archive output
	// across runs, which needs reproducible ciphertext); nil keeps the
	// crypto/rand default.
	CryptoRand io.Reader
	// Control enables the self-tuning control plane: one feedback
	// controller per runtime knob (commit window, admission bound, sweep
	// interval, membrane-cache capacity), each steering through
	// ApplyTuning off the counters the system already exports. Snapshot
	// via Controllers(); drive deterministically with ControlTick or in
	// the background with StartControl.
	Control bool
	// ControlInterval is the control plane's tick cadence (0 =
	// control.DefaultTickInterval).
	ControlInterval time.Duration
	// ControlSLO is the admitted-latency p99 objective the admission
	// controller steers MaxPending toward (0 = 50ms).
	ControlSLO time.Duration
	// NodeName labels this machine when it runs as one node of a
	// multi-node cluster (internal/cluster): it appears in the cluster's
	// status output and per-node error reports. Empty for standalone
	// machines.
	NodeName string
}

func (o *Options) withDefaults() {
	if o.PDDiskBlocks == 0 {
		o.PDDiskBlocks = 16384
	}
	if o.NPDDiskBlocks == 0 {
		o.NPDDiskBlocks = 4096
	}
	if o.NInodes == 0 {
		o.NInodes = 8192
	}
	if o.JournalBlocks == 0 {
		o.JournalBlocks = 256
	}
	if o.Clock == nil {
		o.Clock = simclock.NewSim(simclock.Epoch)
	}
	if o.AuthorityBits == 0 {
		o.AuthorityBits = 2048
	}
	if o.Machine.CPUs == 0 {
		o.Machine = kernel.DefaultMachineOptions()
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.FSInstances <= 0 {
		o.FSInstances = 1
	}
	if o.PDLatency == (blockdev.LatencyModel{}) {
		o.PDLatency = blockdev.DefaultLatency()
	}
	if o.Shards == 0 {
		o.Shards = dbfs.DefaultShards
	}
	if o.SweepInterval <= 0 {
		o.SweepInterval = rights.DefaultSweepInterval
	}
	if o.ColdInterval <= 0 {
		o.ColdInterval = coldtier.DefaultRepackInterval
	}
	if o.ControlSLO <= 0 {
		o.ControlSLO = 50 * time.Millisecond
	}
}

// System is a booted rgpdOS machine.
type System struct {
	opts Options

	machine   *kernel.Machine
	guard     *lsm.Guard
	authority *cryptoshred.Authority
	vault     *cryptoshred.Vault

	pdDev  *blockdev.Mem
	npdDev *blockdev.Mem

	pdFSs []*inode.FS
	npdFS *plainfs.FS
	store *dbfs.Store

	log     *audit.Log
	ded     *ded.DED
	ps      *ps.Store
	rights  *rights.Engine
	sources *collect.Registry
	acq     *builtins.Acquirer

	// tuneMu serializes ApplyTuning documents (individual knob writes are
	// already safe; the mutex makes multi-knob documents apply without
	// interleaving) and guards the sweeper/repacker handles + desired
	// intervals.
	tuneMu         sync.Mutex
	sweeper        *rights.Sweeper
	sweepInterval  time.Duration
	repacker       *coldtier.Repacker
	repackInterval time.Duration

	// ctl is the control plane (nil unless Options.Control).
	ctl *control.Group
}

// Boot assembles and starts a machine.
func Boot(opts Options) (*System, error) {
	opts.withDefaults()
	s := &System{opts: opts}

	// Purpose-kernel topology.
	s.machine = kernel.NewMachine(opts.Machine)
	var err error
	if s.pdDev, err = blockdev.NewMem(opts.PDDiskBlocks, opts.PDLatency); err != nil {
		return nil, fmt.Errorf("core: pd disk: %w", err)
	}
	if s.npdDev, err = blockdev.NewMem(opts.NPDDiskBlocks, blockdev.DefaultLatency()); err != nil {
		return nil, fmt.Errorf("core: npd disk: %w", err)
	}
	if _, err = kernel.NewBlockDriverKernel(s.machine.Bus, PDDriverKernel, s.pdDev); err != nil {
		return nil, fmt.Errorf("core: pd driver: %w", err)
	}
	if _, err = kernel.NewBlockDriverKernel(s.machine.Bus, NPDDriverKernel, s.npdDev); err != nil {
		return nil, fmt.Errorf("core: npd driver: %w", err)
	}
	for _, k := range []struct {
		name  string
		class kernel.Class
	}{
		{PDDriverKernel, kernel.ClassIODriver},
		{NPDDriverKernel, kernel.ClassIODriver},
		{GPKernel, kernel.ClassGeneralPurpose},
		{RgpdOSKernel, kernel.ClassGDPR},
	} {
		if err := s.machine.AddKernel(k.name, k.class); err != nil {
			return nil, fmt.Errorf("core: topology: %w", err)
		}
	}
	// Initial partition: rgpdOS gets the PD-processing share, the GP
	// kernel the bulk of the rest, drivers a sliver each. Rebalance at
	// runtime via Machine.Partition.
	cpus, pages := opts.Machine.CPUs, opts.Machine.MemPages
	assign := []struct {
		name  string
		cpu   float64
		pages uint64
	}{
		{GPKernel, cpus * 0.4, pages * 4 / 10},
		{PDDriverKernel, cpus * 0.1, pages / 10},
		{NPDDriverKernel, cpus * 0.1, pages / 10},
	}
	usedCPU, usedPages := 0.0, uint64(0)
	for _, a := range assign {
		if err := s.machine.Partition.Assign(a.name, a.cpu, a.pages); err != nil {
			return nil, fmt.Errorf("core: partition: %w", err)
		}
		usedCPU += a.cpu
		usedPages += a.pages
	}
	// rgpdOS takes the exact remainder so the machine is fully partitioned
	// regardless of integer/float rounding.
	if err := s.machine.Partition.Assign(RgpdOSKernel, cpus-usedCPU, pages-usedPages); err != nil {
		return nil, fmt.Errorf("core: partition: %w", err)
	}

	// Device views: PD IO crosses the bus to its driver kernel unless the
	// monolithic ablation is requested.
	var pdView, npdView blockdev.Device = s.pdDev, s.npdDev
	if !opts.DirectIO {
		if pdView, err = kernel.NewRemoteDevice(s.machine.Bus, RgpdOSKernel, PDDriverKernel); err != nil {
			return nil, fmt.Errorf("core: pd remote device: %w", err)
		}
		if npdView, err = kernel.NewRemoteDevice(s.machine.Bus, GPKernel, NPDDriverKernel); err != nil {
			return nil, fmt.Errorf("core: npd remote device: %w", err)
		}
	}

	// Security substrate.
	s.guard = lsm.NewGuard()
	if s.authority, err = cryptoshred.NewAuthority(opts.AuthorityBits); err != nil {
		return nil, fmt.Errorf("core: authority: %w", err)
	}
	s.vault = cryptoshred.NewVault(s.authority.PublicKey())
	if opts.CryptoRand != nil {
		s.vault.SetRand(opts.CryptoRand)
	}

	// Filesystems. DBFS sits on FSInstances inode filesystems: one over
	// the whole PD view, or — when sharding storage — one per equal
	// partition of it, each with its own journal region. Partitions wrap
	// the (possibly bus-routed) view, so split-kernel IO accounting is
	// unchanged.
	inodeOpts := inode.Options{
		NInodes:       (opts.NInodes + uint64(opts.FSInstances) - 1) / uint64(opts.FSInstances),
		JournalBlocks: opts.JournalBlocks,
		Clock:         opts.Clock,
		CommitWindow:  opts.CommitWindow,
		GroupMaxBatch: opts.GroupCommitMaxBatch,
		CacheBlocks:   opts.BlockCache,
	}
	s.pdFSs = make([]*inode.FS, opts.FSInstances)
	if opts.FSInstances == 1 {
		if s.pdFSs[0], err = inode.Format(pdView, inodeOpts); err != nil {
			return nil, fmt.Errorf("core: pd filesystem: %w", err)
		}
	} else {
		per := opts.PDDiskBlocks / uint64(opts.FSInstances)
		for i := range s.pdFSs {
			part, err := blockdev.NewPartition(pdView, uint64(i)*per, per)
			if err != nil {
				return nil, fmt.Errorf("core: pd partition %d: %w", i, err)
			}
			if s.pdFSs[i], err = inode.Format(part, inodeOpts); err != nil {
				return nil, fmt.Errorf("core: pd filesystem %d: %w", i, err)
			}
		}
	}
	if s.store, err = dbfs.CreateShards(s.pdFSs, s.guard, s.vault, opts.Clock, opts.Shards); err != nil {
		return nil, fmt.Errorf("core: dbfs: %w", err)
	}
	if s.npdFS, err = plainfs.Format(npdView, inode.Options{
		NInodes: opts.NInodes / 2, JournalBlocks: opts.JournalBlocks, Clock: opts.Clock,
	}); err != nil {
		return nil, fmt.Errorf("core: npd filesystem: %w", err)
	}

	// rgpdOS components.
	s.log = audit.NewLog(opts.Clock)
	dedTok := s.guard.Mint("ded", lsm.CapDBFS)
	s.ded = ded.New(s.store, dedTok, s.log, membrane.NewLedger(), opts.Clock)
	s.sources = collect.NewRegistry()
	s.acq = builtins.NewAcquirer(s.ded, s.sources, s.log)
	s.ps = ps.New(s.ded, s.log, s.acq.Acquire)
	s.ps.SetDefaultWorkers(opts.Workers)
	s.ps.ConfigureAdmission(admission.New(admission.Options{
		MaxPending: opts.AdmissionQueue,
		Clock:      opts.Clock,
	}))
	if err := builtins.Register(s.ps); err != nil {
		return nil, fmt.Errorf("core: builtins: %w", err)
	}
	s.rights = rights.New(s.ps, s.ded, s.log, opts.Clock)
	s.sweepInterval = opts.SweepInterval
	s.repackInterval = opts.ColdInterval
	// Boot-time knob installs go through the same door an operator uses
	// (ApplyTuning), so the tuning snapshot is coherent from tick zero.
	var boot Tuning
	if opts.MembraneCache != 0 {
		mc := opts.MembraneCache
		boot.MembraneCache = &mc
	}
	if opts.ColdAfter > 0 {
		ca := opts.ColdAfter
		boot.ColdAfter = &ca
	}
	if boot.MembraneCache != nil || boot.ColdAfter != nil {
		if err := s.ApplyTuning(boot); err != nil {
			return nil, fmt.Errorf("core: boot tuning: %w", err)
		}
	}
	if opts.Control {
		if s.ctl, err = s.buildControlGroup(); err != nil {
			return nil, fmt.Errorf("core: control plane: %w", err)
		}
	}
	return s, nil
}

// MustBoot is Boot for examples and benchmarks; it panics on error.
func MustBoot(opts Options) *System {
	s, err := Boot(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// --- component accessors ---

// PS is the Processing Store — the only rgpdOS entry point for
// applications.
func (s *System) PS() *ps.Store { return s.ps }

// Workers reports the machine's DED executor pool size.
func (s *System) Workers() int { return s.opts.Workers }

// InvokeBatch runs many ps_invoke requests concurrently on the machine's
// executor pool (Options.Workers). Outcomes keep request order; see
// ps.Store.InvokeBatch for the per-request failure semantics.
func (s *System) InvokeBatch(reqs []ps.InvokeRequest) []ded.BatchItem {
	return s.ps.InvokeBatch(reqs, 0) // 0 = the pool default set at boot
}

// InvokeAsync runs one ps_invoke request off the caller's goroutine; the
// outcome arrives on the returned channel.
func (s *System) InvokeAsync(req ps.InvokeRequest) <-chan ded.BatchItem {
	return s.ps.InvokeAsync(req)
}

// Rights is the data-subject rights engine.
func (s *System) Rights() *rights.Engine { return s.rights }

// NodeName reports the label this machine carries as a cluster node
// (Options.NodeName; empty for standalone machines).
func (s *System) NodeName() string { return s.opts.NodeName }

// Audit is the processing log.
func (s *System) Audit() *audit.Log { return s.log }

// Machine exposes the purpose-kernel topology (partition, bus stats).
func (s *System) Machine() *kernel.Machine { return s.machine }

// Guard exposes the LSM guard (denial records; experiments mint attacker
// tokens against it).
func (s *System) Guard() *lsm.Guard { return s.guard }

// Authority is the escrow authority (held off-machine in a real
// deployment; exposed here so experiments can play the investigator).
func (s *System) Authority() *cryptoshred.Authority { return s.authority }

// Vault exposes the key vault (escrow lookups).
func (s *System) Vault() *cryptoshred.Vault { return s.vault }

// NPD is the general-purpose kernel's traditional filesystem, open to any
// process — the second filesystem of §2.
func (s *System) NPD() *plainfs.FS { return s.npdFS }

// DBFS exposes the personal-data store. Callers still need the DED's
// capability token for every operation, so this accessor grants nothing by
// itself; kernel-space components (rights, benches) use it together with
// DEDToken.
func (s *System) DBFS() *dbfs.Store { return s.store }

// DEDToken returns the DED's DBFS capability for kernel-space callers
// (experiments seeding state). Application code must never hold it.
func (s *System) DEDToken() *lsm.Token { return s.ded.Token() }

// Clock returns the machine clock.
func (s *System) Clock() simclock.Clock { return s.opts.Clock }

// SimClock returns the clock as a *simclock.Sim when the machine was booted
// with one (the default), for TTL experiments.
func (s *System) SimClock() (*simclock.Sim, bool) {
	sim, ok := s.opts.Clock.(*simclock.Sim)
	return sim, ok
}

// --- sysadmin operations ---

// DeclareTypesDSL compiles Listing-1-style declarations and creates the
// types in DBFS.
func (s *System) DeclareTypesDSL(src string, copts typedsl.CompileOptions) error {
	schemas, err := typedsl.CompileSource(src, copts)
	if err != nil {
		return err
	}
	for _, sch := range schemas {
		if err := s.store.CreateType(s.ded.Token(), sch); err != nil {
			return err
		}
	}
	return nil
}

// CreateType declares a PD type from an in-memory schema.
func (s *System) CreateType(sch *dbfs.Schema) error {
	return s.store.CreateType(s.ded.Token(), sch)
}

// RegisterSource attaches a collection source to a PD type.
func (s *System) RegisterSource(typeName string, src collect.Source) {
	s.sources.Register(typeName, src)
}

// Acquire runs the acquisition builtin: collect subjects' data of typeName
// through method and store it membrane-wrapped.
func (s *System) Acquire(typeName, method string, subjects []string) (int, error) {
	return s.acq.Acquire(typeName, method, subjects)
}

// ResidueScan scans the raw PD disk for a plaintext pattern. Zero hits
// after an erasure is the right-to-be-forgotten guarantee.
func (s *System) ResidueScan(pattern []byte) []uint64 {
	return blockdev.FindResidue(s.pdDev, pattern)
}

// NPDResidueScan scans the raw NPD disk.
func (s *System) NPDResidueScan(pattern []byte) []uint64 {
	return blockdev.FindResidue(s.npdDev, pattern)
}

// ResidueScanAny counts plaintext hits of any of the patterns across both
// raw disks, one traversal per disk regardless of how many patterns are
// checked. Post-run invariant sweeps that sample many erased secrets use
// this batch form.
func (s *System) ResidueScanAny(patterns [][]byte) int {
	return blockdev.FindResidueAny(s.pdDev, patterns) + blockdev.FindResidueAny(s.npdDev, patterns)
}

// Stats aggregates machine-wide counters.
type Stats struct {
	DBFS    dbfs.Stats
	Bus     kernel.BusStats
	PDDisk  blockdev.Stats
	NPDDisk blockdev.Stats
	Audit   int
	Denials int
}

// Stats returns a snapshot across components.
func (s *System) Stats() Stats {
	return Stats{
		DBFS:    s.store.Stats(),
		Bus:     s.machine.Bus.Stats(),
		PDDisk:  s.pdDev.Stats(),
		NPDDisk: s.npdDev.Stats(),
		Audit:   s.log.Len(),
		Denials: s.guard.DenialCount(),
	}
}

// ErrNoFormSource reports SubmitForm on a type without a web form.
var ErrNoFormSource = errors.New("core: type has no web form source")

// SubmitForm queues a subject's web-form submission for the type.
func (s *System) SubmitForm(typeName, subjectID string, rec dbfs.Record) error {
	src, err := s.sources.Lookup(typeName, "web_form")
	if err != nil {
		return fmt.Errorf("%w: %s", ErrNoFormSource, typeName)
	}
	form, ok := src.(*collect.WebFormSource)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoFormSource, typeName)
	}
	form.Submit(subjectID, rec)
	return nil
}
