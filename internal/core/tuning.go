package core

// The unified runtime-tuning API. PRs 2-5 each grew a knob with its own
// setter scattered across layers (ps.ConfigureAdmission / SetRateLimit,
// dbfs.ConfigureMembraneCache, rights.SetWorkers, inode ConfigureJournal /
// SetSerialOps); this file consolidates them behind one Tuning document:
// ApplyTuning validates the whole document up front (a bad document
// applies nothing), then applies each present knob atomically, and
// Tuning() snapshots every knob's current value. The old setters remain as
// thin deprecated wrappers; the control plane (control.go) adjusts knobs
// only through this API, so a human reading System.Tuning() always sees
// what the controllers did.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/coldtier"
	"repro/internal/rights"
)

// ErrBadTuning reports a Tuning document that failed validation; nothing
// from the document was applied.
var ErrBadTuning = errors.New("core: invalid tuning")

// RateLimit is one purpose's token-bucket setting inside a Tuning
// document. RatePerSec <= 0 removes the purpose's limit.
type RateLimit struct {
	Purpose    string  `json:"purpose"`
	RatePerSec float64 `json:"rate_per_sec"`
	Burst      float64 `json:"burst"`
}

// Tuning is the machine's runtime-knob document: nil fields are "leave
// unchanged", set fields are applied by ApplyTuning and reported by
// System.Tuning(). Durations marshal as nanosecond integers.
type Tuning struct {
	// CommitWindow / GroupMaxBatch are the journals' group-commit
	// parameters, applied to every DBFS filesystem instance (setting one
	// preserves the other). GroupMaxBatch 0 restores the wal default.
	CommitWindow  *time.Duration `json:"commit_window,omitempty"`
	GroupMaxBatch *int           `json:"group_max_batch,omitempty"`
	// AdmissionMaxPending re-bounds the admission queue (0 = unbounded).
	AdmissionMaxPending *int `json:"admission_max_pending,omitempty"`
	// RateLimits installs (or, with RatePerSec <= 0, removes) per-purpose
	// token buckets. Purposes must be registered.
	RateLimits []RateLimit `json:"rate_limits,omitempty"`
	// MembraneCache re-bounds the decoded-membrane cache (0 = the dbfs
	// default, negative disables; resizes preserve entries).
	MembraneCache *int `json:"membrane_cache,omitempty"`
	// RightsWorkers overrides the rights engine's fan-out width (0 =
	// follow the executor pool).
	RightsWorkers *int `json:"rights_workers,omitempty"`
	// SerialOps toggles the inode layer's serial-ablation mode on every
	// DBFS filesystem instance.
	SerialOps *bool `json:"serial_ops,omitempty"`
	// SweepInterval re-paces the retention sweeper (applied live when the
	// sweeper is running, remembered for StartSweeper otherwise).
	SweepInterval *time.Duration `json:"sweep_interval,omitempty"`
	// ColdAfter is the cold tier's idle threshold: records untouched this
	// long demote to their subject's compressed archive on the repacker's
	// next pass (0 disables demotion; promotion always works).
	ColdAfter *time.Duration `json:"cold_after,omitempty"`
	// RepackInterval re-paces the cold-tier repacker (applied live when it
	// is running, remembered for StartRepacker otherwise).
	RepackInterval *time.Duration `json:"repack_interval,omitempty"`
}

// validateTuning checks every present field; caller holds tuneMu.
func (s *System) validateTuning(t Tuning) error {
	if t.CommitWindow != nil && *t.CommitWindow < 0 {
		return fmt.Errorf("%w: commit window %v negative", ErrBadTuning, *t.CommitWindow)
	}
	if t.GroupMaxBatch != nil && *t.GroupMaxBatch < 0 {
		return fmt.Errorf("%w: group max batch %d negative", ErrBadTuning, *t.GroupMaxBatch)
	}
	if t.AdmissionMaxPending != nil {
		if *t.AdmissionMaxPending < 0 {
			return fmt.Errorf("%w: admission max pending %d negative", ErrBadTuning, *t.AdmissionMaxPending)
		}
		if s.ps.Admission() == nil {
			return fmt.Errorf("%w: admission max pending: no admission controller configured", ErrBadTuning)
		}
	}
	for _, rl := range t.RateLimits {
		if rl.Purpose == "" {
			return fmt.Errorf("%w: rate limit with empty purpose", ErrBadTuning)
		}
		if _, err := s.ps.Get(rl.Purpose); err != nil {
			return fmt.Errorf("%w: rate limit purpose %q: %v", ErrBadTuning, rl.Purpose, err)
		}
		if rl.Burst < 0 {
			return fmt.Errorf("%w: rate limit %q: negative burst %v", ErrBadTuning, rl.Purpose, rl.Burst)
		}
		if s.ps.Admission() == nil {
			return fmt.Errorf("%w: rate limit %q: no admission controller configured", ErrBadTuning, rl.Purpose)
		}
	}
	if t.RightsWorkers != nil && *t.RightsWorkers < 0 {
		return fmt.Errorf("%w: rights workers %d negative", ErrBadTuning, *t.RightsWorkers)
	}
	if t.SweepInterval != nil && *t.SweepInterval <= 0 {
		return fmt.Errorf("%w: sweep interval %v not positive", ErrBadTuning, *t.SweepInterval)
	}
	if t.ColdAfter != nil && *t.ColdAfter < 0 {
		return fmt.Errorf("%w: cold after %v negative", ErrBadTuning, *t.ColdAfter)
	}
	if t.RepackInterval != nil && *t.RepackInterval <= 0 {
		return fmt.Errorf("%w: repack interval %v not positive", ErrBadTuning, *t.RepackInterval)
	}
	return nil
}

// ApplyTuning validates the whole document, then applies every present
// knob. Validation failures wrap ErrBadTuning and apply nothing; after
// validation each knob applies atomically (its setter is a single
// runtime-safe operation), and present knobs apply in struct order.
// Concurrent ApplyTuning calls serialize.
func (s *System) ApplyTuning(t Tuning) error {
	s.tuneMu.Lock()
	defer s.tuneMu.Unlock()
	if err := s.validateTuning(t); err != nil {
		return err
	}
	if t.CommitWindow != nil || t.GroupMaxBatch != nil {
		// One knob document must not clobber the other parameter: read
		// the current pair and overwrite only what is present.
		window, maxBatch := s.pdFSs[0].JournalConfig()
		if t.CommitWindow != nil {
			window = *t.CommitWindow
		}
		if t.GroupMaxBatch != nil {
			maxBatch = *t.GroupMaxBatch
		}
		for _, fs := range s.pdFSs {
			fs.ConfigureJournal(window, maxBatch)
		}
	}
	if t.AdmissionMaxPending != nil {
		s.ps.Admission().SetMaxPending(*t.AdmissionMaxPending)
	}
	for _, rl := range t.RateLimits {
		if err := s.ps.SetRateLimit(rl.Purpose, rl.RatePerSec, rl.Burst); err != nil {
			// Unreachable after validation unless the purpose was
			// unregistered concurrently; surface it typed either way.
			return fmt.Errorf("%w: rate limit %q: %v", ErrBadTuning, rl.Purpose, err)
		}
	}
	if t.MembraneCache != nil {
		s.store.ConfigureMembraneCache(*t.MembraneCache)
	}
	if t.RightsWorkers != nil {
		s.rights.SetWorkers(*t.RightsWorkers)
	}
	if t.SerialOps != nil {
		for _, fs := range s.pdFSs {
			fs.SetSerialOps(*t.SerialOps)
		}
	}
	if t.SweepInterval != nil {
		s.sweepInterval = *t.SweepInterval
		if s.sweeper != nil {
			s.sweeper.SetInterval(*t.SweepInterval)
		}
	}
	if t.ColdAfter != nil {
		s.store.ConfigureColdTier(*t.ColdAfter)
	}
	if t.RepackInterval != nil {
		s.repackInterval = *t.RepackInterval
		if s.repacker != nil {
			s.repacker.SetInterval(*t.RepackInterval)
		}
	}
	return nil
}

// Tuning snapshots every runtime knob's current value; all fields are
// non-nil. Round-trips through ApplyTuning.
func (s *System) Tuning() Tuning {
	s.tuneMu.Lock()
	defer s.tuneMu.Unlock()
	window, maxBatch := s.pdFSs[0].JournalConfig()
	cache := s.store.MembraneCacheCap()
	workers := s.rights.Workers()
	serial := s.pdFSs[0].SerialOps()
	sweep := s.sweepInterval
	if s.sweeper != nil {
		sweep = s.sweeper.Interval()
	}
	coldAfter := s.store.ColdAfter()
	repack := s.repackInterval
	if s.repacker != nil {
		repack = s.repacker.Interval()
	}
	t := Tuning{
		CommitWindow:   &window,
		GroupMaxBatch:  &maxBatch,
		MembraneCache:  &cache,
		RightsWorkers:  &workers,
		SerialOps:      &serial,
		SweepInterval:  &sweep,
		ColdAfter:      &coldAfter,
		RepackInterval: &repack,
	}
	if adm := s.ps.Admission(); adm != nil {
		mp := adm.MaxPending()
		t.AdmissionMaxPending = &mp
		for _, l := range adm.Limits() {
			t.RateLimits = append(t.RateLimits, RateLimit{
				Purpose: l.Purpose, RatePerSec: l.RatePerSec, Burst: l.Burst,
			})
		}
	}
	return t
}

// StartSweeper starts the machine's background retention sweeper at the
// tuned interval and returns it; if it is already running it is returned
// unchanged. The sweeper's cadence follows ApplyTuning's SweepInterval
// from then on.
func (s *System) StartSweeper() *rights.Sweeper {
	s.tuneMu.Lock()
	defer s.tuneMu.Unlock()
	if s.sweeper == nil {
		s.sweeper = rights.NewSweeper(s.rights, rights.SweeperOptions{Interval: s.sweepInterval})
	}
	s.sweeper.Start()
	return s.sweeper
}

// Sweeper returns the machine's retention sweeper, or nil before the
// first StartSweeper.
func (s *System) Sweeper() *rights.Sweeper {
	s.tuneMu.Lock()
	defer s.tuneMu.Unlock()
	return s.sweeper
}

// StartRepacker starts the machine's background cold-tier repacker at the
// tuned interval and returns it; if it is already running it is returned
// unchanged. The repacker drives dbfs.Store.RepackCold with the DED's
// capability and follows ApplyTuning's RepackInterval from then on. With
// ColdAfter unset the passes run and demote nothing.
func (s *System) StartRepacker() *coldtier.Repacker {
	s.tuneMu.Lock()
	defer s.tuneMu.Unlock()
	if s.repacker == nil {
		tok := s.ded.Token()
		s.repacker = coldtier.NewRepacker(s.opts.Clock, coldtier.TargetFunc(
			func(now time.Time) (coldtier.PassStats, error) {
				return s.store.RepackCold(tok, now)
			}), coldtier.Options{Interval: s.repackInterval})
	}
	s.repacker.Start()
	return s.repacker
}

// Repacker returns the machine's cold-tier repacker, or nil before the
// first StartRepacker.
func (s *System) Repacker() *coldtier.Repacker {
	s.tuneMu.Lock()
	defer s.tuneMu.Unlock()
	return s.repacker
}
