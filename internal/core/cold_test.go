package core

// Tests for the cold-tier wiring: boot-time knobs route through ApplyTuning,
// the tuning document validates and round-trips the cold knobs, the
// background repacker demotes on the machine clock with reads staying
// transparent, and the control plane gains (or correctly skips) the
// repack-interval controller.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/dbfs"
)

func insertUser(t *testing.T, s *System, subject string) string {
	t.Helper()
	pdid, err := s.DBFS().Insert(s.DEDToken(), "user", subject, dbfs.Record{
		"name": dbfs.S("u-" + subject), "pwd": dbfs.S("pw"), "year_of_birthdate": dbfs.I(1990),
	}, nil)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	return pdid
}

func TestBootColdTierWiring(t *testing.T) {
	s, err := Boot(Options{AuthorityBits: 1024, ColdAfter: time.Hour, ColdInterval: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	got := s.Tuning()
	if *got.ColdAfter != time.Hour {
		t.Fatalf("Tuning().ColdAfter = %v, want 1h (boot knob must route through the tuning API)", *got.ColdAfter)
	}
	if *got.RepackInterval != 30*time.Second {
		t.Fatalf("Tuning().RepackInterval = %v, want 30s", *got.RepackInterval)
	}
	if s.DBFS().ColdAfter() != time.Hour {
		t.Fatalf("store ColdAfter = %v", s.DBFS().ColdAfter())
	}
}

func TestApplyTuningColdValidation(t *testing.T) {
	s := bootTest(t)
	for _, tc := range []struct {
		name string
		doc  Tuning
	}{
		{"negative cold after", Tuning{ColdAfter: ptr(-time.Second)}},
		{"zero repack interval", Tuning{RepackInterval: ptr(time.Duration(0))}},
	} {
		if err := s.ApplyTuning(tc.doc); !errors.Is(err, ErrBadTuning) {
			t.Fatalf("%s: err = %v, want ErrBadTuning", tc.name, err)
		}
	}
}

func TestApplyTuningColdRoundTripAndLiveRepacker(t *testing.T) {
	s := bootTest(t)
	if err := s.ApplyTuning(Tuning{ColdAfter: ptr(2 * time.Hour), RepackInterval: ptr(45 * time.Second)}); err != nil {
		t.Fatal(err)
	}
	got := s.Tuning()
	if *got.ColdAfter != 2*time.Hour || *got.RepackInterval != 45*time.Second {
		t.Fatalf("cold knobs = %v/%v", *got.ColdAfter, *got.RepackInterval)
	}
	rp := s.StartRepacker()
	defer rp.Stop()
	if rp.Interval() != 45*time.Second {
		t.Fatalf("repacker started at %v, want the tuned 45s", rp.Interval())
	}
	if s.Repacker() != rp {
		t.Fatal("Repacker() does not return the started repacker")
	}
	if err := s.ApplyTuning(Tuning{RepackInterval: ptr(time.Minute)}); err != nil {
		t.Fatal(err)
	}
	if rp.Interval() != time.Minute {
		t.Fatalf("live repacker interval = %v after ApplyTuning", rp.Interval())
	}
	// ColdAfter 0 disables demotion without touching the repacker.
	if err := s.ApplyTuning(Tuning{ColdAfter: ptr(time.Duration(0))}); err != nil {
		t.Fatal(err)
	}
	if s.DBFS().ColdAfter() != 0 {
		t.Fatalf("ColdAfter = %v after disable", s.DBFS().ColdAfter())
	}
}

func TestRepackerDemotesAndReadsStayTransparent(t *testing.T) {
	s, err := Boot(Options{AuthorityBits: 1024, ColdAfter: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	setupUserType(t, s)
	pdid := insertUser(t, s, "alice")
	sim, ok := s.SimClock()
	if !ok {
		t.Fatal("default boot clock is not a simclock")
	}
	rp := s.StartRepacker()
	defer rp.Stop()

	sim.Advance(2 * time.Hour)
	rp.Sync()
	if st := rp.Stats(); st.Demoted < 1 {
		t.Fatalf("repacker Stats = %+v, want at least one demotion", st)
	}
	if st := s.DBFS().Stats(); st.Demotions < 1 || st.ColdRecords < 1 {
		t.Fatalf("store Stats = %+v, want demoted record in the cold gauge", st)
	}

	rec, err := s.DBFS().GetRecord(s.DEDToken(), pdid)
	if err != nil {
		t.Fatalf("GetRecord(archived): %v", err)
	}
	if rec["name"].S != "u-alice" {
		t.Fatalf("promoted record = %v", rec)
	}
	if st := s.DBFS().Stats(); st.Promotions != 1 {
		t.Fatalf("store Promotions = %d, want 1", st.Promotions)
	}
}

func TestControlPlaneColdController(t *testing.T) {
	s, err := Boot(Options{AuthorityBits: 1024, Control: true, ColdAfter: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]control.State{}
	for _, st := range s.Controllers() {
		byName[st.Name] = st
	}
	if _, ok := byName["repack-interval"]; !ok {
		t.Fatalf("repack-interval controller missing: %v", s.Controllers())
	}
	if len(byName) != 5 {
		t.Fatalf("len(Controllers) = %d with cold tier on, want 5", len(byName))
	}
	// Neutral ticks (no repacker running) hold the knob.
	for i := 0; i < control.DefaultConvergeAfter+1; i++ {
		s.ControlTick()
	}
	for _, st := range s.Controllers() {
		if st.Name == "repack-interval" && st.Adjusts != 0 {
			t.Fatalf("repack-interval moved on neutral signal: %+v", st)
		}
	}

	// With demotion ablated away (ColdAfter 0) the controller is skipped.
	s2, err := Boot(Options{AuthorityBits: 1024, Control: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range s2.Controllers() {
		if st.Name == "repack-interval" {
			t.Fatal("repack-interval controller present despite ColdAfter 0")
		}
	}
}
