package core

// Tests for the unified runtime-tuning API (ApplyTuning / Tuning) and the
// self-tuning control plane wiring: validation rejects whole documents,
// every knob round-trips, concurrent appliers and snapshotters are
// race-free, and the booted controllers steer their knobs only through
// the API.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/dbfs"
	"repro/internal/rights"
)

func ptr[T any](v T) *T { return &v }

func TestApplyTuningValidation(t *testing.T) {
	s := bootTest(t)
	setupUserType(t, s)
	registerComputeAge(t, s)
	before := s.Tuning()
	cases := []struct {
		name string
		doc  Tuning
	}{
		{"negative commit window", Tuning{CommitWindow: ptr(-time.Millisecond)}},
		{"negative max batch", Tuning{GroupMaxBatch: ptr(-1)}},
		{"negative admission bound", Tuning{AdmissionMaxPending: ptr(-1)}},
		{"empty rate-limit purpose", Tuning{RateLimits: []RateLimit{{Purpose: "", RatePerSec: 1}}}},
		{"unknown rate-limit purpose", Tuning{RateLimits: []RateLimit{{Purpose: "nope", RatePerSec: 1}}}},
		{"negative burst", Tuning{RateLimits: []RateLimit{{Purpose: "purpose3", RatePerSec: 1, Burst: -1}}}},
		{"negative rights workers", Tuning{RightsWorkers: ptr(-2)}},
		{"zero sweep interval", Tuning{SweepInterval: ptr(time.Duration(0))}},
		// A document with one bad field applies nothing, even when other
		// fields are valid.
		{"partial bad document", Tuning{CommitWindow: ptr(time.Millisecond), GroupMaxBatch: ptr(-1)}},
	}
	for _, tc := range cases {
		err := s.ApplyTuning(tc.doc)
		if !errors.Is(err, ErrBadTuning) {
			t.Fatalf("%s: err = %v, want ErrBadTuning", tc.name, err)
		}
	}
	if after := s.Tuning(); *after.CommitWindow != *before.CommitWindow ||
		*after.GroupMaxBatch != *before.GroupMaxBatch ||
		*after.AdmissionMaxPending != *before.AdmissionMaxPending {
		t.Fatalf("rejected documents changed state: before %+v after %+v", before, after)
	}
}

func TestApplyTuningRoundTrip(t *testing.T) {
	s := bootTest(t)
	setupUserType(t, s)
	registerComputeAge(t, s)
	doc := Tuning{
		CommitWindow:        ptr(3 * time.Millisecond),
		GroupMaxBatch:       ptr(7),
		AdmissionMaxPending: ptr(42),
		RateLimits:          []RateLimit{{Purpose: "purpose3", RatePerSec: 5, Burst: 10}},
		MembraneCache:       ptr(512),
		RightsWorkers:       ptr(3),
		SerialOps:           ptr(true),
		SweepInterval:       ptr(90 * time.Second),
	}
	if err := s.ApplyTuning(doc); err != nil {
		t.Fatalf("ApplyTuning: %v", err)
	}
	got := s.Tuning()
	if *got.CommitWindow != 3*time.Millisecond || *got.GroupMaxBatch != 7 {
		t.Fatalf("journal knobs = %v/%d", *got.CommitWindow, *got.GroupMaxBatch)
	}
	if *got.AdmissionMaxPending != 42 {
		t.Fatalf("AdmissionMaxPending = %d", *got.AdmissionMaxPending)
	}
	if len(got.RateLimits) != 1 || got.RateLimits[0] != (RateLimit{Purpose: "purpose3", RatePerSec: 5, Burst: 10}) {
		t.Fatalf("RateLimits = %+v", got.RateLimits)
	}
	if *got.MembraneCache != 512 || *got.RightsWorkers != 3 || !*got.SerialOps {
		t.Fatalf("cache/workers/serial = %d/%d/%v", *got.MembraneCache, *got.RightsWorkers, *got.SerialOps)
	}
	if *got.SweepInterval != 90*time.Second {
		t.Fatalf("SweepInterval = %v", *got.SweepInterval)
	}
	// Setting one journal parameter preserves the other.
	if err := s.ApplyTuning(Tuning{CommitWindow: ptr(time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	got = s.Tuning()
	if *got.CommitWindow != time.Millisecond || *got.GroupMaxBatch != 7 {
		t.Fatalf("partial update clobbered: %v/%d", *got.CommitWindow, *got.GroupMaxBatch)
	}
	// RatePerSec <= 0 removes the purpose's limit.
	if err := s.ApplyTuning(Tuning{RateLimits: []RateLimit{{Purpose: "purpose3"}}}); err != nil {
		t.Fatal(err)
	}
	if got = s.Tuning(); len(got.RateLimits) != 0 {
		t.Fatalf("rate limit not removed: %+v", got.RateLimits)
	}
	// Undo the serial ablation so follow-on asserts below stay meaningful.
	if err := s.ApplyTuning(Tuning{SerialOps: ptr(false)}); err != nil {
		t.Fatal(err)
	}
	if got = s.Tuning(); *got.SerialOps {
		t.Fatal("SerialOps still set")
	}
}

// TestApplyTuningDeprecatedWrappersAgree pins the consolidation contract:
// the old scattered setters and the unified API act on the same state.
func TestApplyTuningDeprecatedWrappersAgree(t *testing.T) {
	s := bootTest(t)
	s.Rights().SetWorkers(5)
	if got := *s.Tuning().RightsWorkers; got != 5 {
		t.Fatalf("Tuning().RightsWorkers = %d after deprecated SetWorkers", got)
	}
	if err := s.ApplyTuning(Tuning{RightsWorkers: ptr(2)}); err != nil {
		t.Fatal(err)
	}
	if got := s.Rights().Workers(); got != 2 {
		t.Fatalf("engine Workers() = %d after ApplyTuning", got)
	}
	s.DBFS().ConfigureMembraneCache(128)
	if got := *s.Tuning().MembraneCache; got != 128 {
		t.Fatalf("Tuning().MembraneCache = %d after deprecated setter", got)
	}
}

func TestApplyTuningSweeperLive(t *testing.T) {
	s, err := Boot(Options{AuthorityBits: 1024, SweepInterval: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if *s.Tuning().SweepInterval != 2*time.Minute {
		t.Fatalf("boot SweepInterval = %v", *s.Tuning().SweepInterval)
	}
	sw := s.StartSweeper()
	defer sw.Stop()
	if sw.Interval() != 2*time.Minute {
		t.Fatalf("sweeper started at %v", sw.Interval())
	}
	if s.Sweeper() != sw {
		t.Fatal("Sweeper() does not return the started sweeper")
	}
	if err := s.ApplyTuning(Tuning{SweepInterval: ptr(30 * time.Second)}); err != nil {
		t.Fatal(err)
	}
	if sw.Interval() != 30*time.Second {
		t.Fatalf("live sweeper interval = %v after ApplyTuning", sw.Interval())
	}
	if *s.Tuning().SweepInterval != 30*time.Second {
		t.Fatalf("Tuning().SweepInterval = %v", *s.Tuning().SweepInterval)
	}
}

// TestApplyTuningConcurrent hammers ApplyTuning, Tuning and the read paths
// from many goroutines; the race detector is the assertion.
func TestApplyTuningConcurrent(t *testing.T) {
	s := bootTest(t)
	setupUserType(t, s)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				doc := Tuning{
					CommitWindow:        ptr(time.Duration(i%4) * time.Millisecond),
					AdmissionMaxPending: ptr(16 + (g*50+i)%32),
					MembraneCache:       ptr(256 + 64*(i%3)),
					RightsWorkers:       ptr(i % 4),
					SweepInterval:       ptr(time.Duration(30+i%30) * time.Second),
				}
				if err := s.ApplyTuning(doc); err != nil {
					t.Errorf("ApplyTuning: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			got := s.Tuning()
			if got.CommitWindow == nil || got.MembraneCache == nil {
				t.Error("Tuning snapshot missing fields")
				return
			}
		}
	}()
	wg.Wait()
}

// TestControlPlaneBoot verifies Options.Control wires one controller per
// knob, that their knobs mirror the booted configuration, and that
// ControlTick steers exclusively through ApplyTuning-visible state.
func TestControlPlaneBoot(t *testing.T) {
	s, err := Boot(Options{
		AuthorityBits:  1024,
		Control:        true,
		CommitWindow:   2 * time.Millisecond,
		AdmissionQueue: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	states := s.Controllers()
	byName := map[string]control.State{}
	for _, st := range states {
		byName[st.Name] = st
	}
	for _, want := range []string{"commit-window", "admission-queue", "sweep-interval", "membrane-cache"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("controller %q missing; have %v", want, states)
		}
	}
	if len(states) != 4 {
		t.Fatalf("len(Controllers) = %d, want 4", len(states))
	}
	if k := byName["commit-window"].Knob; k != 2.0 {
		t.Fatalf("commit-window knob = %v ms, want 2", k)
	}
	if k := byName["admission-queue"].Knob; k != 32 {
		t.Fatalf("admission-queue knob = %v, want 32", k)
	}
	if k := byName["sweep-interval"].Knob; k != rights.DefaultSweepInterval.Seconds() {
		t.Fatalf("sweep-interval knob = %v s", k)
	}
	// Ticks with no traffic read neutral signals everywhere: after the
	// converge streak every controller reports Converged with zero moves.
	for i := 0; i < control.DefaultConvergeAfter+1; i++ {
		s.ControlTick()
	}
	for _, st := range s.Controllers() {
		if st.Adjusts != 0 {
			t.Fatalf("%s moved on neutral signal: %+v", st.Name, st)
		}
		if !st.Converged {
			t.Fatalf("%s not converged after neutral ticks: %+v", st.Name, st)
		}
	}
}

// TestControlPlaneUnboundedAdmission pins the seeding rule: booting the
// control plane over an unbounded admission queue installs a finite bound
// (the controller cannot steer "unbounded").
func TestControlPlaneUnboundedAdmission(t *testing.T) {
	s, err := Boot(Options{AuthorityBits: 1024, Control: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := *s.Tuning().AdmissionMaxPending; got != ctlAdmissionDefault {
		t.Fatalf("AdmissionMaxPending = %d, want seeded %d", got, ctlAdmissionDefault)
	}
}

// TestControlPlaneSkipsAblatedCache: with the membrane cache disabled at
// boot, no cache controller is created (it must not undo the ablation).
func TestControlPlaneSkipsAblatedCache(t *testing.T) {
	s, err := Boot(Options{AuthorityBits: 1024, Control: true, MembraneCache: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range s.Controllers() {
		if st.Name == "membrane-cache" {
			t.Fatal("membrane-cache controller present despite ablation")
		}
	}
	if got := *s.Tuning().MembraneCache; got != -1 {
		t.Fatalf("MembraneCache = %d, want -1", got)
	}
}

// TestControlBackgroundLoop runs the group loop on the machine simclock:
// advancing the clock drives ticks, Stop halts them.
func TestControlBackgroundLoop(t *testing.T) {
	s, err := Boot(Options{AuthorityBits: 1024, Control: true, ControlInterval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sim, ok := s.SimClock()
	if !ok {
		t.Fatal("default boot clock is not a simclock")
	}
	s.StartControl()
	defer s.StopControl()
	// Keep advancing: the loop registers its wait target off the clock it
	// reads, so each advance releases at most one pending tick.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sim.Advance(time.Second)
		ticks := uint64(0)
		for _, st := range s.Controllers() {
			ticks += st.Ticks
		}
		if ticks > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no controller ticks after advancing the simclock")
		}
		time.Sleep(time.Millisecond)
	}
	s.StopControl()
}

// TestControlConvergesOnCacheSignal drives a real signal end to end: a hot
// working set larger than a tiny cache starves the hit rate, and the
// controller grows the capacity through ApplyTuning until the rate enters
// the band.
func TestControlConvergesOnCacheSignal(t *testing.T) {
	s, err := Boot(Options{AuthorityBits: 1024, Control: true, MembraneCache: 64})
	if err != nil {
		t.Fatal(err)
	}
	setupUserType(t, s)
	tok := s.DEDToken()
	pdids := make([]string, 0, 256)
	for i := 0; i < 256; i++ {
		subj := fmt.Sprintf("c%03d", i)
		pdid, err := s.DBFS().Insert(tok, "user", subj, dbfs.Record{
			"name": dbfs.S("u" + subj), "pwd": dbfs.S("pw"), "year_of_birthdate": dbfs.I(1990),
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		pdids = append(pdids, pdid)
	}
	grew := false
	for round := 0; round < 40; round++ {
		for _, pdid := range pdids {
			if _, err := s.DBFS().GetMembrane(tok, pdid); err != nil {
				t.Fatal(err)
			}
		}
		s.ControlTick()
		for _, st := range s.Controllers() {
			if st.Name == "membrane-cache" && st.Knob > 64 {
				grew = true
			}
		}
		if grew {
			break
		}
	}
	if !grew {
		t.Fatalf("cache controller never grew a starved cache: %+v", s.Controllers())
	}
	// The move went through the tuning API: the snapshot sees it.
	if got := *s.Tuning().MembraneCache; got <= 64 {
		t.Fatalf("Tuning().MembraneCache = %d, knob move bypassed the API?", got)
	}
}
