package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/collect"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/kernel"
	"repro/internal/lsm"
	"repro/internal/ps"
	"repro/internal/purpose"
	"repro/internal/typedsl"
	"repro/internal/xrand"
)

// listing1 is the paper's type declaration (see typedsl tests for the
// verbatim quirks).
const listing1 = `
type user {
  fields {
    name: string,
    pwd: string sensitive,
    year_of_birthdate: int
  };
  view v_name { name };
  view v_ano { age };
  consent {
    purpose1: all,
    purpose2: none,
    purpose3: ano
  };
  collection {
    web_form: user_form.html,
    third_party: fetch_data.py
  };
  origin: subject;
  age: 1Y;
  sensitivity: hight;
}
`

func bootTest(t *testing.T) *System {
	t.Helper()
	s, err := Boot(Options{AuthorityBits: 1024})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	return s
}

// aliasOpts maps Listing 1's derived "age" onto the stored field.
func aliasOpts() typedsl.CompileOptions {
	return typedsl.CompileOptions{FieldAliases: map[string]string{"age": "year_of_birthdate"}}
}

func setupUserType(t *testing.T, s *System) {
	t.Helper()
	if err := s.DeclareTypesDSL(listing1, aliasOpts()); err != nil {
		t.Fatalf("DeclareTypesDSL: %v", err)
	}
	s.RegisterSource("user", collect.NewWebFormSource("user_form.html"))
}

func registerComputeAge(t *testing.T, s *System) {
	t.Helper()
	decl := &purpose.Decl{
		Name:        "purpose3",
		Description: "Compute the age of the input user",
		Basis:       purpose.BasisConsent,
		Reads:       []string{"user.year_of_birthdate"},
	}
	impl := &ded.Func{
		Name:          "compute_age",
		Purpose:       "purpose3",
		DeclaredReads: []string{"user.year_of_birthdate"},
		Fn: func(c *ded.Ctx) (ded.Output, error) {
			yob, err := c.Field("year_of_birthdate")
			if err != nil {
				return ded.Output{}, err
			}
			now, err := c.Now()
			if err != nil {
				return ded.Output{}, err
			}
			return ded.Output{NonPD: int64(now.Year()) - yob.I}, nil
		},
	}
	if err := s.PS().Register(decl, impl, false); err != nil {
		t.Fatalf("Register: %v", err)
	}
}

func TestBootTopology(t *testing.T) {
	s := bootTest(t)
	ks := s.Machine().Kernels()
	if len(ks) != 4 {
		t.Fatalf("kernels = %+v", ks)
	}
	classes := map[kernel.Class]int{}
	for _, k := range ks {
		classes[k.Class]++
	}
	if classes[kernel.ClassIODriver] != 2 || classes[kernel.ClassGDPR] != 1 || classes[kernel.ClassGeneralPurpose] != 1 {
		t.Fatalf("classes = %v", classes)
	}
	// Resources fully partitioned at boot.
	cpus, pages := s.Machine().Partition.Free()
	if cpus != 0 || pages != 0 {
		t.Fatalf("free = %v, %v", cpus, pages)
	}
	// Formatting DBFS already crossed the bus.
	if s.Stats().Bus.Messages == 0 {
		t.Fatal("no bus traffic: PD IO not routed through the driver kernel")
	}
}

func TestEndToEndListingFlow(t *testing.T) {
	// The paper's Listings 1–3 as one flow: declare the type, collect a
	// user via the web form, invoke compute_age through PS.
	s := bootTest(t)
	setupUserType(t, s)
	registerComputeAge(t, s)

	if err := s.SubmitForm("user", "chiraz", dbfs.Record{
		"name": dbfs.S("Chiraz Benamor"), "pwd": dbfs.S("secret"),
		"year_of_birthdate": dbfs.I(1990),
	}); err != nil {
		t.Fatalf("SubmitForm: %v", err)
	}
	// Listing 3: ps_invoke with collection initialization.
	res, err := s.PS().Invoke(ps.InvokeRequest{
		Processing:      "purpose3",
		TypeName:        "user",
		CollectMethod:   "web_form",
		InitCollect:     true,
		CollectSubjects: []string{"chiraz"},
	})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res.Processed != 1 || len(res.Outputs) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if age := res.Outputs[0].(int64); age != 33 { // sim epoch 2023 - 1990
		t.Fatalf("age = %d", age)
	}
	// The sensitive field and name never hit the disk in plaintext.
	for _, secret := range []string{"Chiraz Benamor", "secret"} {
		if hits := s.ResidueScan([]byte(secret)); len(hits) != 0 {
			t.Fatalf("plaintext %q on PD disk at %v", secret, hits)
		}
	}
}

func TestEnforcementInvariants(t *testing.T) {
	s := bootTest(t)
	setupUserType(t, s)

	// Rule 4: only the DED reaches DBFS — an app token is refused.
	appTok := s.Guard().Mint("app", lsm.CapProcessingStore)
	if _, err := s.DBFS().GetRecord(appTok, "user/alice/1"); !errors.Is(err, lsm.ErrMissingCapability) {
		t.Fatalf("app access err = %v", err)
	}
	// A forged token is refused.
	other := lsm.NewGuard().Mint("fake-ded", lsm.CapDBFS)
	if _, err := s.DBFS().GetRecord(other, "user/alice/1"); !errors.Is(err, lsm.ErrForgedToken) {
		t.Fatalf("forged access err = %v", err)
	}
	if s.Stats().Denials < 2 {
		t.Fatalf("denials = %d", s.Stats().Denials)
	}
}

func TestRightsThroughSystem(t *testing.T) {
	s := bootTest(t)
	setupUserType(t, s)
	registerComputeAge(t, s)
	rng := xrand.New(7)
	for _, subject := range testSubjectIDs(5) {
		if err := s.SubmitForm("user", subject, testUserRecord(rng, subject)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Acquire("user", "web_form", testSubjectIDs(5)); err != nil || n != 5 {
		t.Fatalf("Acquire = %d, %v", n, err)
	}
	report, err := s.Rights().Access("s000001")
	if err != nil {
		t.Fatalf("Access: %v", err)
	}
	if len(report.Data["user"]) != 1 {
		t.Fatalf("report data = %+v", report.Data)
	}
	erased, err := s.Rights().Erase("s000001")
	if err != nil || len(erased.Erased) != 1 {
		t.Fatalf("Erase = %+v, %v", erased, err)
	}
	// Others untouched.
	if rep2, err := s.Rights().Access("s000002"); err != nil || rep2.Data["user"][0].Erased {
		t.Fatalf("neighbour affected: %+v, %v", rep2, err)
	}
}

func TestAlertWorkflowThroughSystem(t *testing.T) {
	s := bootTest(t)
	setupUserType(t, s)
	decl := &purpose.Decl{Name: "newsletter", Description: "send product news",
		Basis: purpose.BasisConsent, Reads: []string{"user.name"}}
	greedy := &ded.Func{
		Name: "overreader", Purpose: "newsletter",
		DeclaredReads: []string{"user.name", "user.pwd"},
		Fn:            func(*ded.Ctx) (ded.Output, error) { return ded.Output{NonPD: 1}, nil },
	}
	err := s.PS().Register(decl, greedy, false)
	if !errors.Is(err, ps.ErrPendingApproval) {
		t.Fatalf("Register = %v", err)
	}
	alerts := s.PS().PendingAlerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v", alerts)
	}
	if err := s.PS().Approve(alerts[0].ID, "root"); err != nil {
		t.Fatal(err)
	}
	info, err := s.PS().Get("newsletter")
	if err != nil || info.State != ps.StateActive {
		t.Fatalf("info = %+v, %v", info, err)
	}
}

func TestDirectIOAblation(t *testing.T) {
	s, err := Boot(Options{AuthorityBits: 1024, DirectIO: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DeclareTypesDSL(listing1, aliasOpts()); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Bus.Messages; got != 0 {
		t.Fatalf("DirectIO bus messages = %d, want 0", got)
	}
}

func TestNPDFilesystemOpen(t *testing.T) {
	// The second filesystem is ordinary and unguarded (it holds NPD).
	s := bootTest(t)
	if err := s.NPD().WriteFile("/build.log", []byte("compile ok")); err != nil {
		t.Fatal(err)
	}
	got, err := s.NPD().ReadFile("/build.log")
	if err != nil || string(got) != "compile ok" {
		t.Fatalf("NPD read = %q, %v", got, err)
	}
	// And it does NOT encrypt: NPD residue is expected and harmless.
	if hits := s.NPDResidueScan([]byte("compile ok")); len(hits) == 0 {
		t.Fatal("NPD data should be stored in plaintext")
	}
}

func TestSubmitFormErrors(t *testing.T) {
	s := bootTest(t)
	err := s.SubmitForm("ghost", "a", dbfs.Record{})
	if !errors.Is(err, ErrNoFormSource) {
		t.Fatalf("SubmitForm ghost err = %v", err)
	}
}

func TestSimClockAccessor(t *testing.T) {
	s := bootTest(t)
	if _, ok := s.SimClock(); !ok {
		t.Fatal("default boot should use a sim clock")
	}
}

// testSubjectIDs and testUserRecord mirror the internal/workload
// generators. They are inlined because workload now sits above core (its
// macro targets drive core.System), so core's own tests cannot import it
// without a cycle.
func testSubjectIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%06d", i+1)
	}
	return out
}

func testUserRecord(rng *xrand.RNG, subjectID string) dbfs.Record {
	return dbfs.Record{
		"name":              dbfs.S("User " + subjectID),
		"pwd":               dbfs.S("pw-" + subjectID),
		"year_of_birthdate": dbfs.I(int64(1940 + rng.Intn(70))),
	}
}
