package sandbox

import (
	"errors"
	"sync"
	"testing"
)

func TestDEDProfileBlocksLeaks(t *testing.T) {
	m := NewMonitor(DEDProfile())
	env := NewEnv(m)

	// The paper's example: F_pd^r functions are forbidden write(2).
	if err := env.WriteFile("/tmp/exfil", []byte("pd")); !errors.Is(err, ErrSyscallDenied) {
		t.Fatalf("WriteFile err = %v, want ErrSyscallDenied", err)
	}
	if err := env.Send("evil.example:443", []byte("pd")); !errors.Is(err, ErrSyscallDenied) {
		t.Fatalf("Send err = %v, want ErrSyscallDenied", err)
	}
	if err := env.Exec("/bin/sh"); !errors.Is(err, ErrSyscallDenied) {
		t.Fatalf("Exec err = %v, want ErrSyscallDenied", err)
	}
	if err := env.Open("/etc/passwd"); !errors.Is(err, ErrSyscallDenied) {
		t.Fatalf("Open err = %v, want ErrSyscallDenied", err)
	}
	// Allowed: clock reads (compute_age needs current_year()).
	if err := env.Now(); err != nil {
		t.Fatalf("Now err = %v, want nil", err)
	}
	if m.DeniedCount() != 4 {
		t.Fatalf("DeniedCount = %d, want 4", m.DeniedCount())
	}
}

func TestUnconfinedAllowsEverything(t *testing.T) {
	m := NewMonitor(UnconfinedProfile())
	env := NewEnv(m)
	if err := env.WriteFile("/anywhere", nil); err != nil {
		t.Fatalf("unconfined WriteFile: %v", err)
	}
	if err := env.Send("anywhere:80", nil); err != nil {
		t.Fatalf("unconfined Send: %v", err)
	}
	if m.DeniedCount() != 0 {
		t.Fatalf("DeniedCount = %d", m.DeniedCount())
	}
}

func TestZeroProfileDeniesAll(t *testing.T) {
	var p Profile // zero value: deny everything
	m := NewMonitor(p)
	if err := m.Invoke(SysRead, "x"); !errors.Is(err, ErrSyscallDenied) {
		t.Fatalf("zero profile Invoke = %v", err)
	}
}

func TestAttemptsRecorded(t *testing.T) {
	m := NewMonitor(DEDProfile())
	_ = m.Invoke(SysRead, "dbfs")
	_ = m.Invoke(SysWrite, "/leak")
	at := m.Attempts()
	if len(at) != 2 {
		t.Fatalf("Attempts = %d", len(at))
	}
	if !at[0].Allowed || at[0].Sys != SysRead {
		t.Fatalf("attempt 0 = %+v", at[0])
	}
	if at[1].Allowed || at[1].Sys != SysWrite || at[1].Arg != "/leak" {
		t.Fatalf("attempt 1 = %+v", at[1])
	}
	// Returned slice is a copy.
	at[0].Arg = "mutated"
	if m.Attempts()[0].Arg != "dbfs" {
		t.Fatal("Attempts exposed internal storage")
	}
}

func TestSendMediatesSocketThenSend(t *testing.T) {
	// A profile allowing socket but not send must still block Send at the
	// second hop.
	p := NewProfile("half", SysSocket)
	m := NewMonitor(p)
	env := NewEnv(m)
	if err := env.Send("host:1", nil); !errors.Is(err, ErrSyscallDenied) {
		t.Fatalf("Send = %v", err)
	}
	at := m.Attempts()
	if len(at) != 2 || !at[0].Allowed || at[1].Allowed {
		t.Fatalf("attempts = %+v", at)
	}
}

func TestSyscallStrings(t *testing.T) {
	if SysWrite.String() != "write" || SysGetTime.String() != "gettime" {
		t.Fatal("syscall names wrong")
	}
	if Syscall(99).String() != "syscall(99)" {
		t.Fatal("unknown syscall name wrong")
	}
	if DEDProfile().Name() != "ded-fpd" {
		t.Fatal("profile name wrong")
	}
}

func TestConcurrentInvoke(t *testing.T) {
	m := NewMonitor(DEDProfile())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = m.Invoke(SysWrite, "x")
			}
		}()
	}
	wg.Wait()
	if m.DeniedCount() != 800 {
		t.Fatalf("DeniedCount = %d, want 800", m.DeniedCount())
	}
}
