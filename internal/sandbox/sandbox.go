// Package sandbox simulates the Seccomp-BPF confinement the paper applies to
// personal-data processing functions: "We leverage Linux Seccomp BPF to
// avoid functions which operate on PD to perform syscalls that can leak
// data" (§3), and "F_pd^r functions are forbidden to make syscalls that
// could leak PD (e.g., write)" (§2).
//
// Since this reproduction executes F_pd functions as Go callbacks rather
// than processes, the kernel boundary is modeled explicitly: a function
// receives an *Env and every effect it wants — file writes, network sends,
// spawning — must go through Env's syscall surface, which consults the DED
// profile and denies leak-capable calls. Denials are recorded for the audit
// log, exactly like seccomp's SECCOMP_RET_ERRNO plus logging.
package sandbox

import (
	"errors"
	"fmt"
	"sync"
)

// Syscall enumerates the mediated syscall surface.
type Syscall int

// Mediated syscalls.
const (
	SysRead Syscall = iota + 1
	SysWrite
	SysOpen
	SysClose
	SysSocket
	SysSend
	SysRecv
	SysExec
	SysFork
	SysMmap
	SysGetTime
)

var syscallNames = map[Syscall]string{
	SysRead:    "read",
	SysWrite:   "write",
	SysOpen:    "open",
	SysClose:   "close",
	SysSocket:  "socket",
	SysSend:    "send",
	SysRecv:    "recv",
	SysExec:    "exec",
	SysFork:    "fork",
	SysMmap:    "mmap",
	SysGetTime: "gettime",
}

// String names the syscall.
func (s Syscall) String() string {
	if n, ok := syscallNames[s]; ok {
		return n
	}
	return fmt.Sprintf("syscall(%d)", int(s))
}

// ErrSyscallDenied reports a blocked syscall.
var ErrSyscallDenied = errors.New("sandbox: syscall denied by profile")

// Profile is a syscall allow-list. The zero value denies everything.
type Profile struct {
	name    string
	allowed map[Syscall]bool
}

// NewProfile builds a profile allowing exactly the given syscalls.
func NewProfile(name string, allowed ...Syscall) Profile {
	m := make(map[Syscall]bool, len(allowed))
	for _, s := range allowed {
		m[s] = true
	}
	return Profile{name: name, allowed: m}
}

// Name identifies the profile in audit records.
func (p Profile) Name() string { return p.name }

// Allows reports whether the profile permits sc.
func (p Profile) Allows(sc Syscall) bool { return p.allowed[sc] }

// DEDProfile is the confinement applied to F_pd^r functions: computation
// and reading only. Everything that can move bytes out of the domain —
// write, open, socket, send, exec, fork, mmap — is denied.
func DEDProfile() Profile {
	return NewProfile("ded-fpd", SysRead, SysRecv, SysClose, SysGetTime)
}

// UnconfinedProfile allows everything; it models the baseline's userspace
// processes, which no kernel policy restrains.
func UnconfinedProfile() Profile {
	all := make([]Syscall, 0, len(syscallNames))
	for s := range syscallNames {
		all = append(all, s)
	}
	return NewProfile("unconfined", all...)
}

// Attempt records one mediated syscall.
type Attempt struct {
	Sys     Syscall
	Arg     string
	Allowed bool
}

// Monitor mediates syscalls against a profile and records attempts. Safe
// for concurrent use.
type Monitor struct {
	profile Profile

	mu       sync.Mutex
	attempts []Attempt
	denied   int
}

// NewMonitor returns a monitor enforcing profile.
func NewMonitor(profile Profile) *Monitor {
	return &Monitor{profile: profile}
}

// Invoke mediates one syscall. Denied calls return ErrSyscallDenied with
// the syscall and argument in the message.
func (m *Monitor) Invoke(sc Syscall, arg string) error {
	allowed := m.profile.Allows(sc)
	m.mu.Lock()
	m.attempts = append(m.attempts, Attempt{Sys: sc, Arg: arg, Allowed: allowed})
	if !allowed {
		m.denied++
	}
	m.mu.Unlock()
	if !allowed {
		return fmt.Errorf("%w: %v(%q) under profile %q", ErrSyscallDenied, sc, arg, m.profile.Name())
	}
	return nil
}

// Attempts returns a copy of the recorded attempts.
func (m *Monitor) Attempts() []Attempt {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Attempt, len(m.attempts))
	copy(out, m.attempts)
	return out
}

// DeniedCount reports how many attempts were blocked.
func (m *Monitor) DeniedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.denied
}

// Env is the world handed to an F_pd function: every externally visible
// effect routes through the monitor. A function that tries to exfiltrate PD
// gets ErrSyscallDenied and a durable audit record.
type Env struct {
	monitor *Monitor
}

// NewEnv wraps a monitor.
func NewEnv(m *Monitor) *Env { return &Env{monitor: m} }

// WriteFile models a write(2)-style attempt to persist bytes outside DBFS.
func (e *Env) WriteFile(path string, _ []byte) error {
	return e.monitor.Invoke(SysWrite, path)
}

// Send models a network send.
func (e *Env) Send(addr string, _ []byte) error {
	if err := e.monitor.Invoke(SysSocket, addr); err != nil {
		return err
	}
	return e.monitor.Invoke(SysSend, addr)
}

// Exec models spawning a program.
func (e *Env) Exec(cmd string) error {
	return e.monitor.Invoke(SysExec, cmd)
}

// Open models opening a file outside DBFS.
func (e *Env) Open(path string) error {
	return e.monitor.Invoke(SysOpen, path)
}

// Now models a clock read (allowed under the DED profile — Listing 2's
// compute_age needs current_year()).
func (e *Env) Now() error {
	return e.monitor.Invoke(SysGetTime, "")
}
