package purpose

import (
	"errors"
	"testing"
	"testing/quick"
)

// computeAge is the paper's Listing 2 purpose ("purpose3"): compute the age
// of the input user.
const computeAge = `
purpose compute_age "Compute the age of the input user" {
  basis: consent;
  reads: user.year_of_birthdate;
  produces: age_pd;
}
`

func TestParseComputeAge(t *testing.T) {
	d, err := ParseOne(computeAge)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Name != "compute_age" || d.Basis != BasisConsent || d.Produces != "age_pd" {
		t.Fatalf("decl = %+v", d)
	}
	if len(d.Reads) != 1 || d.Reads[0] != "user.year_of_birthdate" {
		t.Fatalf("reads = %v", d.Reads)
	}
	if d.Description != "Compute the age of the input user" {
		t.Fatalf("description = %q", d.Description)
	}
}

func TestParseMultipleAndComments(t *testing.T) {
	src := `
// marketing purposes
purpose newsletter "Send product news" {
  basis: consent;
  reads: user.name;
}
purpose fraud_check "Detect payment fraud" {
  basis: legal_obligation;
  reads: user.name, payment.amount;
}
`
	decls, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 2 || decls[1].Basis != BasisLegalObligation || len(decls[1].Reads) != 2 {
		t.Fatalf("decls = %+v", decls)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not purpose":        `porpoise x "d" { basis: consent; }`,
		"no name":            `purpose { }`,
		"unterminated descr": `purpose p "half { basis: consent; }`,
		"no brace":           `purpose p "d" basis: consent;`,
		"bad clause":         `purpose p "d" { window: big; }`,
		"bad basis":          `purpose p "d" { basis: vibes; }`,
		"missing semi":       `purpose p "d" { basis: consent }`,
		"unterminated":       `purpose p "d" { basis: consent;`,
		"empty":              `  `,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(src); !errors.Is(err, ErrSyntax) && !errors.Is(err, ErrInvalid) {
				t.Fatalf("Parse = %v, want ErrSyntax/ErrInvalid", err)
			}
		})
	}
}

func TestValidate(t *testing.T) {
	good := &Decl{Name: "p", Description: "d", Basis: BasisConsent, Reads: []string{"t.f"}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Decl{
		{Description: "d", Basis: BasisConsent},  // no name
		{Name: "p", Basis: BasisConsent},         // no description
		{Name: "p", Description: "d"},            // no basis
		{Name: "p", Description: "d", Basis: 99}, // bad basis
		{Name: "p", Description: "d", Basis: BasisConsent, // bad read
			Reads: []string{"nodot"}},
	}
	for i, d := range cases {
		if err := d.Validate(); !errors.Is(err, ErrInvalid) {
			t.Fatalf("case %d: Validate = %v, want ErrInvalid", i, err)
		}
	}
}

func TestReadsHelpers(t *testing.T) {
	d := &Decl{Name: "p", Description: "d", Basis: BasisConsent,
		Reads: []string{"user.b", "user.a", "payment.x"}}
	if got := d.ReadsOfType("user"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("ReadsOfType = %v", got)
	}
	if got := d.TypesRead(); len(got) != 2 || got[0] != "payment" || got[1] != "user" {
		t.Fatalf("TypesRead = %v", got)
	}
}

func TestMatch(t *testing.T) {
	d := &Decl{Name: "p", Description: "d", Basis: BasisConsent,
		Reads: []string{"user.year_of_birthdate", "user.name"}}

	// Implementation within its declaration.
	r := Match(d, []string{"user.year_of_birthdate"})
	if !r.OK || len(r.Undeclared) != 0 {
		t.Fatalf("subset match = %+v", r)
	}
	if len(r.Unused) != 1 || r.Unused[0] != "user.name" {
		t.Fatalf("unused = %v", r.Unused)
	}

	// Implementation reaching beyond: the §3(4) mismatch that raises an
	// alert.
	r = Match(d, []string{"user.year_of_birthdate", "user.pwd"})
	if r.OK || len(r.Undeclared) != 1 || r.Undeclared[0] != "user.pwd" {
		t.Fatalf("overreach match = %+v", r)
	}

	// Empty implementation is trivially OK.
	r = Match(d, nil)
	if !r.OK {
		t.Fatalf("empty impl = %+v", r)
	}
}

func TestMatchProperty(t *testing.T) {
	// Property: Match(d, d.Reads) is always OK with no unused/undeclared.
	cfg := &quick.Config{MaxCount: 100}
	err := quick.Check(func(fieldSeeds []uint8) bool {
		d := &Decl{Name: "p", Description: "d", Basis: BasisConsent}
		for _, s := range fieldSeeds {
			d.Reads = append(d.Reads, "t.f"+string(rune('a'+s%16)))
		}
		r := Match(d, d.Reads)
		return r.OK && len(r.Undeclared) == 0 && len(r.Unused) == 0
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	d, err := ParseOne(computeAge)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ParseOne(Format(d))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if d2.Name != d.Name || d2.Description != d.Description || d2.Basis != d.Basis ||
		d2.Produces != d.Produces || len(d2.Reads) != len(d.Reads) {
		t.Fatalf("round trip: %+v vs %+v", d, d2)
	}
}

func TestBasisRoundTrip(t *testing.T) {
	for _, name := range []string{"consent", "contract", "legal_obligation",
		"vital_interest", "public_task", "legitimate_interest"} {
		b, err := ParseBasis(name)
		if err != nil || b.String() != name {
			t.Fatalf("basis %q: %v, %v", name, b, err)
		}
	}
	if _, err := ParseBasis("vibes"); err == nil {
		t.Fatal("ParseBasis accepted garbage")
	}
}
