package kernel

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/inode"
	"repro/internal/simclock"
)

func newBusAndDriver(t *testing.T, blocks uint64) (*Bus, *blockdev.Mem) {
	t.Helper()
	bus := NewBus(time.Microsecond, time.Nanosecond)
	dev := blockdev.MustMem(blocks)
	if _, err := NewBlockDriverKernel(bus, "io.disk0", dev); err != nil {
		t.Fatalf("NewBlockDriverKernel: %v", err)
	}
	return bus, dev
}

func TestRemoteDeviceRoundTrip(t *testing.T) {
	bus, dev := newBusAndDriver(t, 32)
	rd, err := NewRemoteDevice(bus, "rgpdos", "io.disk0")
	if err != nil {
		t.Fatalf("NewRemoteDevice: %v", err)
	}
	if rd.NumBlocks() != 32 {
		t.Fatalf("NumBlocks = %d", rd.NumBlocks())
	}
	in := make([]byte, blockdev.BlockSize)
	copy(in, "through the io-driver kernel")
	if err := rd.WriteBlock(7, in); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	out := make([]byte, blockdev.BlockSize)
	if err := rd.ReadBlock(7, out); err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("remote round trip mismatch")
	}
	if err := rd.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// The real device saw the write (proof IO happened in the driver).
	direct := make([]byte, blockdev.BlockSize)
	if err := dev.ReadBlock(7, direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, direct) {
		t.Fatal("driver device does not hold the data")
	}
}

func TestBusAccounting(t *testing.T) {
	bus, _ := newBusAndDriver(t, 8)
	rd, err := NewRemoteDevice(bus, "rgpdos", "io.disk0")
	if err != nil {
		t.Fatal(err)
	}
	base := bus.Stats().Messages // NewRemoteDevice probes once
	buf := make([]byte, blockdev.BlockSize)
	if err := rd.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := rd.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	s := bus.Stats()
	if s.Messages != base+2 {
		t.Fatalf("Messages = %d, want %d", s.Messages, base+2)
	}
	if s.PerKernelOut["rgpdos"] != base+2 || s.PerKernelIn["io.disk0"] != base+2 {
		t.Fatalf("per-kernel stats = %+v", s)
	}
	if s.SimLatency <= 0 || s.Bytes < 2*blockdev.BlockSize {
		t.Fatalf("latency/bytes = %v/%d", s.SimLatency, s.Bytes)
	}
}

func TestBusUnknownEndpoint(t *testing.T) {
	bus := NewBus(0, 0)
	resp := bus.Call(Request{From: "a", To: "ghost", Op: "x"})
	if !errors.Is(resp.Err, ErrNoEndpoint) {
		t.Fatalf("err = %v, want ErrNoEndpoint", resp.Err)
	}
}

func TestBusDuplicateRegistration(t *testing.T) {
	bus := NewBus(0, 0)
	h := func(Request) Response { return Response{} }
	if err := bus.Register("k", h); err != nil {
		t.Fatal(err)
	}
	if err := bus.Register("k", h); !errors.Is(err, ErrKernelExists) {
		t.Fatalf("dup Register = %v, want ErrKernelExists", err)
	}
}

func TestDriverRejectsBadOp(t *testing.T) {
	bus, _ := newBusAndDriver(t, 8)
	resp := bus.Call(Request{From: "x", To: "io.disk0", Op: "block.format"})
	if !errors.Is(resp.Err, ErrBadOp) {
		t.Fatalf("bad op err = %v, want ErrBadOp", resp.Err)
	}
}

func TestFilesystemOverRemoteDevice(t *testing.T) {
	// The full rgpdOS storage stack must run over the split-kernel
	// topology: inode FS on a RemoteDevice on the bus.
	bus, _ := newBusAndDriver(t, 1024)
	rd, err := NewRemoteDevice(bus, "rgpdos", "io.disk0")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := inode.Format(rd, inode.Options{NInodes: 128, JournalBlocks: 32, Clock: simclock.NewSim(simclock.Epoch)})
	if err != nil {
		t.Fatalf("Format over remote device: %v", err)
	}
	ino, err := fs.AllocInode(inode.ModeFile, "pd")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino, 0, []byte("cross-kernel storage")); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 20)
	if _, err := fs.ReadAt(ino, 0, out); err != nil {
		t.Fatal(err)
	}
	if string(out) != "cross-kernel storage" {
		t.Fatalf("read = %q", out)
	}
	if bus.Stats().Messages == 0 {
		t.Fatal("no bus traffic: FS bypassed the driver kernel")
	}
}

func TestPartitionerAssignAndOverCommit(t *testing.T) {
	p := NewPartitioner(8, 1000)
	if err := p.Assign("rgpdos", 4, 600); err != nil {
		t.Fatal(err)
	}
	if err := p.Assign("gp", 3, 300); err != nil {
		t.Fatal(err)
	}
	if err := p.Assign("io.disk0", 2, 200); !errors.Is(err, ErrOverCommit) {
		t.Fatalf("over-commit err = %v", err)
	}
	if err := p.Assign("io.disk0", 1, 100); err != nil {
		t.Fatal(err)
	}
	cpus, pages := p.Free()
	if cpus != 0 || pages != 0 {
		t.Fatalf("Free = %v, %v", cpus, pages)
	}
	shares := p.Shares()
	if len(shares) != 3 || shares[0].Kernel != "gp" {
		t.Fatalf("Shares = %+v", shares)
	}
}

func TestPartitionerReassignReplaces(t *testing.T) {
	p := NewPartitioner(4, 100)
	if err := p.Assign("k", 4, 100); err != nil {
		t.Fatal(err)
	}
	// Replacing a share must not double-count the old one.
	if err := p.Assign("k", 2, 50); err != nil {
		t.Fatalf("replace share: %v", err)
	}
	cpus, pages := p.Free()
	if cpus != 2 || pages != 50 {
		t.Fatalf("Free = %v, %v", cpus, pages)
	}
}

func TestPartitionerRebalance(t *testing.T) {
	p := NewPartitioner(8, 1000)
	if err := p.Assign("rgpdos", 4, 500); err != nil {
		t.Fatal(err)
	}
	if err := p.Assign("gp", 4, 500); err != nil {
		t.Fatal(err)
	}
	// The dynamic partitioning of §2: shift capacity toward PD processing.
	if err := p.Rebalance("gp", "rgpdos", 2, 100); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	shares := p.Shares()
	for _, s := range shares {
		switch s.Kernel {
		case "rgpdos":
			if s.CPUs != 6 || s.MemPages != 600 {
				t.Fatalf("rgpdos share = %+v", s)
			}
		case "gp":
			if s.CPUs != 2 || s.MemPages != 400 {
				t.Fatalf("gp share = %+v", s)
			}
		}
	}
	if err := p.Rebalance("gp", "rgpdos", 10, 0); !errors.Is(err, ErrOverCommit) {
		t.Fatalf("over-rebalance err = %v", err)
	}
	if err := p.Rebalance("ghost", "rgpdos", 1, 0); err == nil {
		t.Fatal("rebalance from unknown kernel succeeded")
	}
	if err := p.Rebalance("gp", "ghost", 1, 0); err == nil {
		t.Fatal("rebalance to unknown kernel succeeded")
	}
}

func TestDomainLifecycle(t *testing.T) {
	d := NewDomain("user/alice/1")
	if d.Owner() != "user/alice/1" {
		t.Fatalf("Owner = %q", d.Owner())
	}
	if err := d.Put("rec", []byte("plaintext pd")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get("rec")
	if err != nil || string(got) != "plaintext pd" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := d.Get("ghost"); !errors.Is(err, ErrDomainNoEntry) {
		t.Fatalf("missing entry err = %v", err)
	}
	if d.PeakSize() != 12 {
		t.Fatalf("PeakSize = %d", d.PeakSize())
	}
	d.Zeroize()
	if !d.Sealed() {
		t.Fatal("not sealed after Zeroize")
	}
	// Idea 2's guarantee: the stale reference fails, it does not read
	// another PD's bytes.
	if _, err := d.Get("rec"); !errors.Is(err, ErrDomainSealed) {
		t.Fatalf("post-zeroize Get = %v, want ErrDomainSealed", err)
	}
	if err := d.Put("rec2", []byte("x")); !errors.Is(err, ErrDomainSealed) {
		t.Fatalf("post-zeroize Put = %v, want ErrDomainSealed", err)
	}
	d.Zeroize() // idempotent
}

func TestDomainCopiesAtBoundaries(t *testing.T) {
	d := NewDomain("x")
	buf := []byte("original")
	if err := d.Put("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	got, err := d.Get("k")
	if err != nil || string(got) != "original" {
		t.Fatalf("Put did not copy: %q", got)
	}
	got[0] = 'Y'
	again, _ := d.Get("k")
	if string(again) != "original" {
		t.Fatal("Get did not copy")
	}
}

func TestMachineInventory(t *testing.T) {
	m := NewMachine(DefaultMachineOptions())
	for _, k := range []struct {
		name  string
		class Class
	}{
		{"io.disk0", ClassIODriver},
		{"gp", ClassGeneralPurpose},
		{"rgpdos", ClassGDPR},
	} {
		if err := m.AddKernel(k.name, k.class); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AddKernel("gp", ClassGeneralPurpose); !errors.Is(err, ErrKernelExists) {
		t.Fatalf("dup AddKernel = %v", err)
	}
	ks := m.Kernels()
	if len(ks) != 3 || ks[0].Name != "gp" || ks[1].Class != ClassIODriver {
		t.Fatalf("Kernels = %+v", ks)
	}
	if ClassGDPR.String() != "rgpdos" || ClassIODriver.String() != "io-driver" {
		t.Fatal("class names wrong")
	}
}

func TestConcurrentBusCalls(t *testing.T) {
	bus, _ := newBusAndDriver(t, 64)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rd, err := NewRemoteDevice(bus, "k", "io.disk0")
			if err != nil {
				errs <- err
				return
			}
			buf := make([]byte, blockdev.BlockSize)
			for i := 0; i < 50; i++ {
				buf[0] = byte(w)
				if err := rd.WriteBlock(uint64(w), buf); err != nil {
					errs <- err
					return
				}
				if err := rd.ReadBlock(uint64(w), buf); err != nil {
					errs <- err
					return
				}
				if buf[0] != byte(w) {
					errs <- errors.New("cross-worker corruption")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
