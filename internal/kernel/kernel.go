// Package kernel implements the paper's purpose kernel model (§2): "the
// kernel is the aggregation of several sub-kernels where each sub-kernel
// achieves a specific purpose", organized into three classes —
//
//   - IO driver kernels: every IO device is managed by a dedicated
//     lightweight kernel (mainly the device driver);
//   - a general purpose kernel hosting non-personal data, with no IO
//     drivers of its own;
//   - rgpdOS, the GDPR-aware kernel hosting personal data.
//
// The sub-kernels cooperate over a message bus (the reproduction's stand-in
// for cross-kernel calls) and dynamically partition CPU and memory through
// the Partitioner. IO devices are deliberately removed from the general
// purpose kernel "because they are traversed by PD": disk access happens
// only inside IO-driver kernels, and other kernels reach devices through
// RemoteDevice, which turns every block operation into a bus message — so
// the hop count and simulated cost of the split-kernel design are
// measurable (experiment OV3).
//
// The package also provides Domain, the memory abstraction behind Idea 2
// (data-centric execution): a processing function runs inside the PD's
// domain; when the DED finishes, the domain is zeroized and any later access
// through a stale reference fails — the use-after-free accident of Fig. 2
// becomes impossible by construction.
package kernel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/blockdev"
)

// Class classifies a sub-kernel.
type Class int

// Sub-kernel classes.
const (
	ClassIODriver Class = iota + 1
	ClassGeneralPurpose
	ClassGDPR
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassIODriver:
		return "io-driver"
	case ClassGeneralPurpose:
		return "general-purpose"
	case ClassGDPR:
		return "rgpdos"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Sentinel errors.
var (
	// ErrNoEndpoint reports a bus call to an unregistered kernel.
	ErrNoEndpoint = errors.New("kernel: no such endpoint")
	// ErrBadOp reports an unsupported operation at an endpoint.
	ErrBadOp = errors.New("kernel: unsupported operation")
	// ErrKernelExists reports a duplicate kernel name.
	ErrKernelExists = errors.New("kernel: kernel already registered")
	// ErrOverCommit reports a resource assignment exceeding the machine.
	ErrOverCommit = errors.New("kernel: resource over-commit")
	// ErrDomainSealed reports access to a zeroized domain.
	ErrDomainSealed = errors.New("kernel: domain has been zeroized")
	// ErrDomainNoEntry reports a missing key in a domain.
	ErrDomainNoEntry = errors.New("kernel: no such domain entry")
)

// Request is one cross-kernel message.
type Request struct {
	From    string
	To      string
	Op      string
	Block   uint64 // block number for IO ops
	Payload []byte
}

// Response carries the reply.
type Response struct {
	Payload []byte
	Err     error
}

// Handler processes requests addressed to one kernel.
type Handler func(Request) Response

// BusStats aggregates message-bus traffic.
type BusStats struct {
	Messages     uint64
	Bytes        uint64
	SimLatency   time.Duration
	PerKernelIn  map[string]uint64
	PerKernelOut map[string]uint64
}

// Bus is the cross-kernel message transport. Calls are synchronous; each
// message is charged a simulated per-message cost plus a per-byte cost,
// modeling the IPC that a real semi-microkernel pays where a monolithic
// kernel would use a function call.
type Bus struct {
	perMsgCost  time.Duration
	perByteCost time.Duration

	mu        sync.Mutex
	endpoints map[string]Handler
	stats     BusStats
}

// NewBus creates a bus. Costs of zero are valid (an idealized transport).
func NewBus(perMsgCost, perByteCost time.Duration) *Bus {
	return &Bus{
		perMsgCost:  perMsgCost,
		perByteCost: perByteCost,
		endpoints:   make(map[string]Handler),
		stats: BusStats{
			PerKernelIn:  make(map[string]uint64),
			PerKernelOut: make(map[string]uint64),
		},
	}
}

// Register attaches a handler for kernel name.
func (b *Bus) Register(name string, h Handler) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.endpoints[name]; dup {
		return fmt.Errorf("%w: %q", ErrKernelExists, name)
	}
	b.endpoints[name] = h
	return nil
}

// Call dispatches req to its destination and returns the response. Traffic
// accounting covers both directions.
func (b *Bus) Call(req Request) Response {
	b.mu.Lock()
	h, ok := b.endpoints[req.To]
	if ok {
		b.stats.Messages++
		b.stats.Bytes += uint64(len(req.Payload))
		b.stats.SimLatency += b.perMsgCost + time.Duration(len(req.Payload))*b.perByteCost
		b.stats.PerKernelOut[req.From]++
		b.stats.PerKernelIn[req.To]++
	}
	b.mu.Unlock()
	if !ok {
		return Response{Err: fmt.Errorf("%w: %q", ErrNoEndpoint, req.To)}
	}
	resp := h(req)
	b.mu.Lock()
	b.stats.Bytes += uint64(len(resp.Payload))
	b.stats.SimLatency += time.Duration(len(resp.Payload)) * b.perByteCost
	b.mu.Unlock()
	return resp
}

// Stats returns a snapshot (maps are copied).
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.stats
	out.PerKernelIn = make(map[string]uint64, len(b.stats.PerKernelIn))
	for k, v := range b.stats.PerKernelIn {
		out.PerKernelIn[k] = v
	}
	out.PerKernelOut = make(map[string]uint64, len(b.stats.PerKernelOut))
	for k, v := range b.stats.PerKernelOut {
		out.PerKernelOut[k] = v
	}
	return out
}

// --- IO driver kernels ---

// Bus operation names for block IO.
const (
	OpBlockRead  = "block.read"
	OpBlockWrite = "block.write"
	// OpBlockWritev carries a whole batch of block writes in one message —
	// the bus-level half of the WAL group commit: a commit group that would
	// otherwise pay one IPC round trip per journal block crosses the kernel
	// boundary once. Payload: repeated [u64 block number][BlockSize bytes].
	OpBlockWritev = "block.writev"
	OpBlockSync   = "block.sync"
	OpBlockCount  = "block.count"
)

// writevEntrySize is the wire size of one OpBlockWritev entry.
const writevEntrySize = 8 + blockdev.BlockSize

// BlockDriverKernel is an IO-driver sub-kernel owning one block device. It
// is the only code that touches the device.
type BlockDriverKernel struct {
	name string
	dev  blockdev.Device
}

// NewBlockDriverKernel wraps dev in a driver kernel named name and registers
// it on the bus.
func NewBlockDriverKernel(bus *Bus, name string, dev blockdev.Device) (*BlockDriverKernel, error) {
	k := &BlockDriverKernel{name: name, dev: dev}
	if err := bus.Register(name, k.handle); err != nil {
		return nil, err
	}
	return k, nil
}

// Name returns the kernel name.
func (k *BlockDriverKernel) Name() string { return k.name }

// Class returns ClassIODriver.
func (k *BlockDriverKernel) Class() Class { return ClassIODriver }

func (k *BlockDriverKernel) handle(req Request) Response {
	switch req.Op {
	case OpBlockRead:
		buf := make([]byte, blockdev.BlockSize)
		if err := k.dev.ReadBlock(req.Block, buf); err != nil {
			return Response{Err: err}
		}
		return Response{Payload: buf}
	case OpBlockWrite:
		if err := k.dev.WriteBlock(req.Block, req.Payload); err != nil {
			return Response{Err: err}
		}
		return Response{}
	case OpBlockWritev:
		if len(req.Payload)%writevEntrySize != 0 {
			return Response{Err: fmt.Errorf("%w: writev payload %d not a multiple of %d",
				ErrBadOp, len(req.Payload), writevEntrySize)}
		}
		count := len(req.Payload) / writevEntrySize
		ns := make([]uint64, count)
		data := make([][]byte, count)
		for i := 0; i < count; i++ {
			ent := req.Payload[i*writevEntrySize:]
			ns[i] = binary.LittleEndian.Uint64(ent)
			data[i] = ent[8 : 8+blockdev.BlockSize]
		}
		return Response{Err: blockdev.WriteBlocks(k.dev, ns, data)}
	case OpBlockSync:
		return Response{Err: k.dev.Sync()}
	case OpBlockCount:
		n := k.dev.NumBlocks()
		buf := make([]byte, 8)
		for i := 0; i < 8; i++ {
			buf[i] = byte(n >> (8 * i))
		}
		return Response{Payload: buf}
	default:
		return Response{Err: fmt.Errorf("%w: %q", ErrBadOp, req.Op)}
	}
}

// RemoteDevice lets a kernel without IO drivers use a device owned by a
// driver kernel: every block operation becomes a bus round trip. It
// implements blockdev.Device, so the whole filesystem stack runs unchanged
// over the split-kernel topology.
type RemoteDevice struct {
	bus     *Bus
	from    string
	driver  string
	nblocks uint64
}

var (
	_ blockdev.Device       = (*RemoteDevice)(nil)
	_ blockdev.VectorWriter = (*RemoteDevice)(nil)
)

// NewRemoteDevice connects kernel from to the device owned by driver.
func NewRemoteDevice(bus *Bus, from, driver string) (*RemoteDevice, error) {
	resp := bus.Call(Request{From: from, To: driver, Op: OpBlockCount})
	if resp.Err != nil {
		return nil, fmt.Errorf("kernel: probe driver %q: %w", driver, resp.Err)
	}
	var n uint64
	for i := 0; i < 8; i++ {
		n |= uint64(resp.Payload[i]) << (8 * i)
	}
	return &RemoteDevice{bus: bus, from: from, driver: driver, nblocks: n}, nil
}

// ReadBlock implements blockdev.Device over the bus.
func (r *RemoteDevice) ReadBlock(n uint64, buf []byte) error {
	if len(buf) != blockdev.BlockSize {
		return blockdev.ErrBadSize
	}
	resp := r.bus.Call(Request{From: r.from, To: r.driver, Op: OpBlockRead, Block: n})
	if resp.Err != nil {
		return resp.Err
	}
	copy(buf, resp.Payload)
	return nil
}

// WriteBlock implements blockdev.Device over the bus.
func (r *RemoteDevice) WriteBlock(n uint64, data []byte) error {
	if len(data) != blockdev.BlockSize {
		return blockdev.ErrBadSize
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	resp := r.bus.Call(Request{From: r.from, To: r.driver, Op: OpBlockWrite, Block: n, Payload: cp})
	return resp.Err
}

// WriteBlocks implements blockdev.VectorWriter: the whole batch is packed
// into a single bus message, so a WAL group flush pays one cross-kernel
// round trip instead of one per journal block.
func (r *RemoteDevice) WriteBlocks(ns []uint64, data [][]byte) error {
	if len(ns) != len(data) {
		return fmt.Errorf("kernel: WriteBlocks: %d block numbers, %d buffers", len(ns), len(data))
	}
	if len(ns) == 0 {
		return nil
	}
	payload := make([]byte, len(ns)*writevEntrySize)
	for i, n := range ns {
		if len(data[i]) != blockdev.BlockSize {
			return blockdev.ErrBadSize
		}
		ent := payload[i*writevEntrySize:]
		binary.LittleEndian.PutUint64(ent, n)
		copy(ent[8:], data[i])
	}
	return r.bus.Call(Request{From: r.from, To: r.driver, Op: OpBlockWritev, Payload: payload}).Err
}

// NumBlocks implements blockdev.Device.
func (r *RemoteDevice) NumBlocks() uint64 { return r.nblocks }

// Sync implements blockdev.Device.
func (r *RemoteDevice) Sync() error {
	return r.bus.Call(Request{From: r.from, To: r.driver, Op: OpBlockSync}).Err
}

// Stats implements blockdev.Device; per-device counters live in the driver
// kernel's device, so the remote view reports zeros.
func (r *RemoteDevice) Stats() blockdev.Stats { return blockdev.Stats{} }

// --- resource partitioning ---

// Share is one kernel's resource assignment.
type Share struct {
	Kernel   string
	CPUs     float64
	MemPages uint64
}

// Partitioner tracks the dynamic CPU/memory partition across sub-kernels
// ("the different kernels cooperate to (dynamically) partition CPU and
// memory resources", §2).
type Partitioner struct {
	totalCPUs  float64
	totalPages uint64

	mu     sync.Mutex
	shares map[string]Share
}

// NewPartitioner creates a partitioner for a machine with the given
// resources.
func NewPartitioner(cpus float64, memPages uint64) *Partitioner {
	return &Partitioner{
		totalCPUs:  cpus,
		totalPages: memPages,
		shares:     make(map[string]Share),
	}
}

// Assign sets (or replaces) a kernel's share, rejecting over-commit.
func (p *Partitioner) Assign(kernel string, cpus float64, pages uint64) error {
	if cpus < 0 {
		return fmt.Errorf("kernel: negative cpu share")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var usedCPU float64
	var usedPages uint64
	for name, s := range p.shares {
		if name == kernel {
			continue
		}
		usedCPU += s.CPUs
		usedPages += s.MemPages
	}
	if usedCPU+cpus > p.totalCPUs || usedPages+pages > p.totalPages {
		return fmt.Errorf("%w: %q wants %.1f cpus / %d pages; free %.1f / %d",
			ErrOverCommit, kernel, cpus, pages, p.totalCPUs-usedCPU, p.totalPages-usedPages)
	}
	p.shares[kernel] = Share{Kernel: kernel, CPUs: cpus, MemPages: pages}
	return nil
}

// Rebalance moves resources from one kernel to another atomically.
func (p *Partitioner) Rebalance(from, to string, cpus float64, pages uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	src, ok := p.shares[from]
	if !ok {
		return fmt.Errorf("kernel: rebalance from unknown kernel %q", from)
	}
	dst, ok := p.shares[to]
	if !ok {
		return fmt.Errorf("kernel: rebalance to unknown kernel %q", to)
	}
	if src.CPUs < cpus || src.MemPages < pages {
		return fmt.Errorf("%w: %q holds %.1f cpus / %d pages", ErrOverCommit, from, src.CPUs, src.MemPages)
	}
	src.CPUs -= cpus
	src.MemPages -= pages
	dst.CPUs += cpus
	dst.MemPages += pages
	p.shares[from] = src
	p.shares[to] = dst
	return nil
}

// Shares lists the current assignment sorted by kernel name.
func (p *Partitioner) Shares() []Share {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Share, 0, len(p.shares))
	for _, s := range p.shares {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}

// Free reports unassigned resources. CPU shares are floats summed in map
// order, so a fully partitioned machine can accumulate rounding noise; free
// amounts below one part per million of a CPU collapse to exactly zero.
func (p *Partitioner) Free() (cpus float64, pages uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cpus, pages = p.totalCPUs, p.totalPages
	for _, s := range p.shares {
		cpus -= s.CPUs
		pages -= s.MemPages
	}
	if cpus < 1e-6 && cpus > -1e-6 {
		cpus = 0
	}
	return cpus, pages
}

// --- PD memory domains (Idea 2) ---

// Domain is a memory region owned by a set of personal data, in which a
// processing function executes. The power balance of Fig. 3: the function
// comes to the data's domain, not the data to the process's address space.
// After the DED completes, Zeroize scrubs the region; stale references then
// fail instead of silently reading another PD's bytes.
type Domain struct {
	owner string

	mu       sync.Mutex
	entries  map[string][]byte
	sealed   bool
	peakSize uint64
}

// NewDomain creates a domain owned by the PD set labelled owner (typically
// the pdid list digest or the invocation id).
func NewDomain(owner string) *Domain {
	return &Domain{owner: owner, entries: make(map[string][]byte)}
}

// Owner reports the owning label.
func (d *Domain) Owner() string { return d.owner }

// Put copies value into the domain under key.
func (d *Domain) Put(key string, value []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sealed {
		return fmt.Errorf("%w: put %q", ErrDomainSealed, key)
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	d.entries[key] = cp
	var size uint64
	for _, v := range d.entries {
		size += uint64(len(v))
	}
	if size > d.peakSize {
		d.peakSize = size
	}
	return nil
}

// Get copies the value stored under key out of the domain.
func (d *Domain) Get(key string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sealed {
		return nil, fmt.Errorf("%w: get %q", ErrDomainSealed, key)
	}
	v, ok := d.entries[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrDomainNoEntry, key)
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Zeroize scrubs every entry and seals the domain. Idempotent.
func (d *Domain) Zeroize() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for k, v := range d.entries {
		for i := range v {
			v[i] = 0
		}
		delete(d.entries, k)
	}
	d.sealed = true
}

// Sealed reports whether the domain has been zeroized.
func (d *Domain) Sealed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sealed
}

// PeakSize reports the high-water byte count, for the partitioner's memory
// accounting.
func (d *Domain) PeakSize() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peakSize
}

// --- machine ---

// KernelInfo describes one registered sub-kernel.
type KernelInfo struct {
	Name  string
	Class Class
}

// Machine assembles the purpose-kernel topology: a bus, the registered
// sub-kernels, and the resource partition.
type Machine struct {
	Bus       *Bus
	Partition *Partitioner

	mu      sync.Mutex
	kernels map[string]KernelInfo
}

// MachineOptions configures NewMachine.
type MachineOptions struct {
	CPUs     float64
	MemPages uint64
	// PerMsgCost and PerByteCost set the simulated IPC cost.
	PerMsgCost  time.Duration
	PerByteCost time.Duration
}

// DefaultMachineOptions models a small server: 8 CPUs, 64k pages (256 MiB),
// 1us per message and 1ns per byte of IPC.
func DefaultMachineOptions() MachineOptions {
	return MachineOptions{
		CPUs:        8,
		MemPages:    65536,
		PerMsgCost:  time.Microsecond,
		PerByteCost: time.Nanosecond,
	}
}

// NewMachine builds an empty machine.
func NewMachine(opts MachineOptions) *Machine {
	return &Machine{
		Bus:       NewBus(opts.PerMsgCost, opts.PerByteCost),
		Partition: NewPartitioner(opts.CPUs, opts.MemPages),
		kernels:   make(map[string]KernelInfo),
	}
}

// AddKernel records a sub-kernel in the machine inventory.
func (m *Machine) AddKernel(name string, class Class) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.kernels[name]; dup {
		return fmt.Errorf("%w: %q", ErrKernelExists, name)
	}
	m.kernels[name] = KernelInfo{Name: name, Class: class}
	return nil
}

// Kernels lists the registered sub-kernels sorted by name.
func (m *Machine) Kernels() []KernelInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]KernelInfo, 0, len(m.kernels))
	for _, k := range m.kernels {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
