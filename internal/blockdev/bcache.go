package blockdev

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Cached wraps a Device with an LRU-bounded, read-through, write-back block
// buffer cache — the bcdaemon of Biscuit's filesystem collapsed into a
// mutex-guarded wrapper. Reads are served from memory on a hit; writes only
// dirty the cached copy and reach the device when Sync flushes, or when a
// dirty block is evicted to make room. Sync flushes every dirty block (as
// one vectored write) and then syncs the underlying device, so the wrapper
// preserves the Device contract: after Sync returns, everything written is
// durable. That property is what lets the WAL run unmodified above a cache:
// the journal's commit-record Sync drains the cache too, and home-location
// writes only enter the cache during checkpoint, after the commit record is
// already durable — write-back can therefore never make a block durable
// ahead of its journal commit.
//
// A bypass range (SetBypass) exempts the journal region itself: journal
// blocks are written once and replayed rarely, and letting them churn the
// LRU would evict the hot metadata the cache exists to keep.
//
// The single mutex is held across miss fills, eviction writebacks and Sync
// flushes. That serializes concurrent misses, which is deliberate: it makes
// the stale-fill race (a miss fill completing after a newer write) and the
// flush/evict race impossible by construction, and the simulated devices
// sleep their latency outside their own locks, not ours.
type Cached struct {
	dev Device

	mu      sync.Mutex
	cap     int
	entries map[uint64]*centry
	// Intrusive LRU list: head is most recent, tail least.
	head, tail *centry

	bypassStart, bypassLen uint64

	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	writebacks atomic.Uint64
}

// centry is one cached block.
type centry struct {
	n          uint64
	data       []byte
	dirty      bool
	prev, next *centry
}

// NewCached wraps dev with a buffer cache bounded to capacity blocks.
func NewCached(dev Device, capacity int) (*Cached, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("blockdev: cache capacity %d < 1", capacity)
	}
	return &Cached{
		dev:     dev,
		cap:     capacity,
		entries: make(map[uint64]*centry, capacity),
	}, nil
}

// SetBypass exempts blocks in [start, start+n) from caching; reads and
// writes in the range go straight to the device. Call before concurrent use.
func (c *Cached) SetBypass(start, n uint64) {
	c.mu.Lock()
	c.bypassStart, c.bypassLen = start, n
	c.mu.Unlock()
}

func (c *Cached) bypassed(n uint64) bool {
	return n >= c.bypassStart && n < c.bypassStart+c.bypassLen
}

// touch moves e to the head of the LRU list, inserting it if new.
func (c *Cached) touch(e *centry) {
	if c.head == e {
		return
	}
	// Unlink (no-op for a fresh entry).
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the list and map.
func (c *Cached) unlink(e *centry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(c.entries, e.n)
}

// evict shrinks the cache back under capacity, writing dirty victims back
// to the device. A failed writeback keeps the victim cached and dirty (the
// data is not lost; a later Sync retries) and surfaces the error to the
// operation that forced the eviction. Caller holds c.mu.
func (c *Cached) evict() error {
	for len(c.entries) > c.cap {
		v := c.tail
		if v == nil {
			return nil
		}
		if v.dirty {
			if err := c.dev.WriteBlock(v.n, v.data); err != nil {
				// Keep the dirty block; promote it so the next eviction
				// picks a different victim instead of spinning on this one.
				c.touch(v)
				return fmt.Errorf("blockdev: cache eviction writeback block %d: %w", v.n, err)
			}
			c.writebacks.Add(1)
			v.dirty = false
		}
		c.unlink(v)
		c.evictions.Add(1)
	}
	return nil
}

// ReadBlock serves block n from the cache, filling it from the device on a
// miss. A failed device read inserts nothing (no poisoned entries).
func (c *Cached) ReadBlock(n uint64, buf []byte) error {
	if len(buf) != BlockSize {
		return fmt.Errorf("blockdev: cached read buffer is %d bytes, want %d", len(buf), BlockSize)
	}
	c.mu.Lock()
	if c.bypassed(n) {
		c.mu.Unlock()
		return c.dev.ReadBlock(n, buf)
	}
	if e, ok := c.entries[n]; ok {
		copy(buf, e.data)
		c.touch(e)
		c.mu.Unlock()
		c.hits.Add(1)
		return nil
	}
	c.misses.Add(1)
	data := make([]byte, BlockSize)
	if err := c.dev.ReadBlock(n, data); err != nil {
		c.mu.Unlock()
		return err
	}
	e := &centry{n: n, data: data}
	c.entries[n] = e
	c.touch(e)
	err := c.evict()
	c.mu.Unlock()
	copy(buf, data)
	return err
}

// WriteBlock buffers the block dirty in the cache; the device is written
// only at Sync or when the block is evicted.
func (c *Cached) WriteBlock(n uint64, data []byte) error {
	if len(data) != BlockSize {
		return fmt.Errorf("blockdev: cached write buffer is %d bytes, want %d", len(data), BlockSize)
	}
	c.mu.Lock()
	if c.bypassed(n) {
		c.mu.Unlock()
		return c.dev.WriteBlock(n, data)
	}
	err := c.upsertDirty(n, data)
	c.mu.Unlock()
	return err
}

// upsertDirty installs data as the dirty cached image of block n. Caller
// holds c.mu.
func (c *Cached) upsertDirty(n uint64, data []byte) error {
	if e, ok := c.entries[n]; ok {
		copy(e.data, data)
		e.dirty = true
		c.touch(e)
		return nil
	}
	e := &centry{n: n, data: append([]byte(nil), data...), dirty: true}
	c.entries[n] = e
	c.touch(e)
	return c.evict()
}

// WriteBlocks implements VectorWriter: the whole batch lands in the cache
// under one lock acquisition. Bypassed blocks are forwarded to the device
// in batch order.
func (c *Cached) WriteBlocks(ns []uint64, imgs [][]byte) error {
	if len(ns) != len(imgs) {
		return fmt.Errorf("blockdev: cached vector write: %d blocks, %d images", len(ns), len(imgs))
	}
	var bypassNs []uint64
	var bypassImgs [][]byte
	c.mu.Lock()
	for i, n := range ns {
		if len(imgs[i]) != BlockSize {
			c.mu.Unlock()
			return fmt.Errorf("blockdev: cached write buffer is %d bytes, want %d", len(imgs[i]), BlockSize)
		}
		if c.bypassed(n) {
			bypassNs = append(bypassNs, n)
			bypassImgs = append(bypassImgs, imgs[i])
			continue
		}
		if err := c.upsertDirty(n, imgs[i]); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	c.mu.Unlock()
	if len(bypassNs) > 0 {
		return WriteBlocks(c.dev, bypassNs, bypassImgs)
	}
	return nil
}

// Sync flushes every dirty block to the device as one vectored write, then
// syncs the device. On failure the dirty set is preserved so no buffered
// write is lost; the caller may retry.
func (c *Cached) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var flush []*centry
	for e := c.head; e != nil; e = e.next {
		if e.dirty {
			flush = append(flush, e)
		}
	}
	if len(flush) > 0 {
		ns := make([]uint64, len(flush))
		imgs := make([][]byte, len(flush))
		for i, e := range flush {
			ns[i] = e.n
			imgs[i] = e.data
		}
		if err := WriteBlocks(c.dev, ns, imgs); err != nil {
			return fmt.Errorf("blockdev: cache flush: %w", err)
		}
		for _, e := range flush {
			e.dirty = false
		}
		c.writebacks.Add(uint64(len(flush)))
	}
	return c.dev.Sync()
}

// NumBlocks reports the underlying device size.
func (c *Cached) NumBlocks() uint64 { return c.dev.NumBlocks() }

// Len reports the current number of cached blocks.
func (c *Cached) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats merges the underlying device counters with the cache counters.
func (c *Cached) Stats() Stats {
	s := c.dev.Stats()
	s.CacheHits = c.hits.Load()
	s.CacheMisses = c.misses.Load()
	s.CacheEvictions = c.evictions.Load()
	s.Writebacks = c.writebacks.Load()
	return s
}
