// Package blockdev simulates the block storage hardware under rgpdOS.
//
// The paper's prototype targets real disks through uFS; this reproduction has
// no kernel or device access, so the device is simulated: a flat array of
// fixed-size blocks with an accounting latency model (simulated nanoseconds
// are counted, never slept) and optional fault injection. Everything above —
// the inode layer, the traditional file-based filesystem, and DBFS — performs
// I/O exclusively through this interface, which is also how the purpose-kernel
// model routes device access through dedicated IO-driver kernels.
//
// The device deliberately exposes its raw contents (ReadRaw) because the
// journal-leak experiment (DESIGN.md F2V1) must scan a disk image for
// residues of "deleted" personal data, exactly as a forensic tool would.
package blockdev

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/xrand"
)

// BlockSize is the size of every device block in bytes. 4 KiB matches the
// page-sized blocks used by uFS and ext4.
const BlockSize = 4096

// Sentinel errors returned by devices.
var (
	// ErrOutOfRange reports an access beyond the end of the device.
	ErrOutOfRange = errors.New("blockdev: block number out of range")
	// ErrBadSize reports a buffer whose length is not exactly BlockSize.
	ErrBadSize = errors.New("blockdev: buffer must be exactly one block")
	// ErrIO reports an injected device-level I/O failure.
	ErrIO = errors.New("blockdev: injected I/O error")
)

// Stats aggregates the operation counters of a device. Latency is simulated
// (accounted, not slept) so experiments can report device time without
// making the test suite slow.
type Stats struct {
	Reads        uint64
	Writes       uint64
	Syncs        uint64
	BytesRead    uint64
	BytesWritten uint64
	// SimLatency is the total simulated device time consumed.
	SimLatency time.Duration
	// Cache-visible counters, filled in by the Cached wrapper's Stats()
	// (see bcache.go); always zero on raw devices.
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	Writebacks     uint64
}

// LatencyModel assigns simulated costs to device operations. The defaults
// (see DefaultLatency) approximate a datacenter NVMe device; experiments
// sweep these to model slower media.
type LatencyModel struct {
	ReadCost  time.Duration // per block read
	WriteCost time.Duration // per block write
	SyncCost  time.Duration // per sync barrier
	// Sleep makes each operation actually sleep its cost (outside the
	// device lock) in addition to accounting it. Concurrency experiments
	// use it so device time is visible to wall-clock measurements — the
	// storage-stack analogue of SC1's simulated processing pause: what
	// group commit amortizes and per-shard filesystems overlap is exactly
	// this waiting.
	Sleep bool
}

// pause sleeps d when the model is in sleeping mode. Never call it while
// holding the device lock: partitions of one device must wait in parallel.
func (l LatencyModel) pause(d time.Duration) {
	if l.Sleep && d > 0 {
		time.Sleep(d)
	}
}

// DefaultLatency approximates NVMe flash: 10us reads, 20us writes, 50us
// flush barriers.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		ReadCost:  10 * time.Microsecond,
		WriteCost: 20 * time.Microsecond,
		SyncCost:  50 * time.Microsecond,
	}
}

// Device is the block storage abstraction all filesystems in this repo sit
// on. Implementations must be safe for concurrent use.
type Device interface {
	// ReadBlock copies block n into buf (len(buf) must be BlockSize).
	ReadBlock(n uint64, buf []byte) error
	// WriteBlock replaces block n with data (len(data) must be BlockSize).
	WriteBlock(n uint64, data []byte) error
	// NumBlocks reports the device capacity in blocks.
	NumBlocks() uint64
	// Sync flushes device caches; on the simulated device it is a barrier
	// that only advances counters.
	Sync() error
	// Stats returns a snapshot of the device counters.
	Stats() Stats
}

// VectorWriter is the optional fast path for multi-block writes. The WAL
// group-commit flush submits a whole commit group at once; devices that
// implement it (Mem: one lock acquisition, kernel.RemoteDevice: one bus
// message) amortize their per-operation cost across the batch. Writes are
// applied in slice order, so a later entry for the same block wins.
type VectorWriter interface {
	// WriteBlocks writes data[i] to block ns[i] for every i. len(ns) must
	// equal len(data) and every buffer must be exactly BlockSize.
	WriteBlocks(ns []uint64, data [][]byte) error
}

// WriteBlocks writes a batch through dev's VectorWriter when it has one,
// falling back to per-block writes otherwise.
func WriteBlocks(dev Device, ns []uint64, data [][]byte) error {
	if len(ns) != len(data) {
		return fmt.Errorf("blockdev: WriteBlocks: %d block numbers, %d buffers", len(ns), len(data))
	}
	if vw, ok := dev.(VectorWriter); ok {
		return vw.WriteBlocks(ns, data)
	}
	for i := range ns {
		if err := dev.WriteBlock(ns[i], data[i]); err != nil {
			return err
		}
	}
	return nil
}

// Mem is an in-memory simulated Device.
type Mem struct {
	mu      sync.RWMutex
	blocks  []byte
	nblocks uint64
	lat     LatencyModel
	stats   Stats
}

var _ Device = (*Mem)(nil)

// NewMem returns an in-memory device with n blocks and the given latency
// model. It returns an error if n is zero.
func NewMem(n uint64, lat LatencyModel) (*Mem, error) {
	if n == 0 {
		return nil, fmt.Errorf("blockdev: device must have at least one block")
	}
	return &Mem{
		blocks:  make([]byte, n*BlockSize),
		nblocks: n,
		lat:     lat,
	}, nil
}

// MustMem is NewMem for tests and examples where the size is a constant.
// It panics on error.
func MustMem(n uint64) *Mem {
	d, err := NewMem(n, DefaultLatency())
	if err != nil {
		panic(err)
	}
	return d
}

// ReadBlock implements Device.
func (m *Mem) ReadBlock(n uint64, buf []byte) error {
	if len(buf) != BlockSize {
		return ErrBadSize
	}
	m.mu.Lock()
	if n >= m.nblocks {
		m.mu.Unlock()
		return fmt.Errorf("%w: read block %d of %d", ErrOutOfRange, n, m.nblocks)
	}
	copy(buf, m.blocks[n*BlockSize:(n+1)*BlockSize])
	m.stats.Reads++
	m.stats.BytesRead += BlockSize
	m.stats.SimLatency += m.lat.ReadCost
	m.mu.Unlock()
	m.lat.pause(m.lat.ReadCost)
	return nil
}

// WriteBlock implements Device.
func (m *Mem) WriteBlock(n uint64, data []byte) error {
	if len(data) != BlockSize {
		return ErrBadSize
	}
	m.mu.Lock()
	if n >= m.nblocks {
		m.mu.Unlock()
		return fmt.Errorf("%w: write block %d of %d", ErrOutOfRange, n, m.nblocks)
	}
	copy(m.blocks[n*BlockSize:(n+1)*BlockSize], data)
	m.stats.Writes++
	m.stats.BytesWritten += BlockSize
	m.stats.SimLatency += m.lat.WriteCost
	m.mu.Unlock()
	m.lat.pause(m.lat.WriteCost)
	return nil
}

// NumBlocks implements Device.
func (m *Mem) NumBlocks() uint64 {
	return m.nblocks
}

// Sync implements Device.
func (m *Mem) Sync() error {
	m.mu.Lock()
	m.stats.Syncs++
	m.stats.SimLatency += m.lat.SyncCost
	m.mu.Unlock()
	m.lat.pause(m.lat.SyncCost)
	return nil
}

// Stats implements Device.
func (m *Mem) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// WriteBlocks implements VectorWriter: the whole batch is applied under one
// lock acquisition, which is what makes a WAL group flush cheaper than the
// sum of its per-block writes.
func (m *Mem) WriteBlocks(ns []uint64, data [][]byte) error {
	if len(ns) != len(data) {
		return fmt.Errorf("blockdev: WriteBlocks: %d block numbers, %d buffers", len(ns), len(data))
	}
	for _, d := range data {
		if len(d) != BlockSize {
			return ErrBadSize
		}
	}
	m.mu.Lock()
	for i, n := range ns {
		if n >= m.nblocks {
			m.mu.Unlock()
			return fmt.Errorf("%w: write block %d of %d", ErrOutOfRange, n, m.nblocks)
		}
		copy(m.blocks[n*BlockSize:(n+1)*BlockSize], data[i])
		m.stats.Writes++
		m.stats.BytesWritten += BlockSize
		m.stats.SimLatency += m.lat.WriteCost
	}
	m.mu.Unlock()
	m.lat.pause(time.Duration(len(ns)) * m.lat.WriteCost)
	return nil
}

// ReadRaw copies the entire device image. It models pulling the disk out of
// the machine: no filesystem, no access control. The residue-scanning
// experiments use it to prove (or disprove) that deleted personal data is
// still recoverable from raw media.
func (m *Mem) ReadRaw() []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]byte, len(m.blocks))
	copy(out, m.blocks)
	return out
}

// FindResidue scans the raw image of dev for every occurrence of pattern and
// returns the block numbers that contain at least one match. A non-empty
// result after a GDPR erasure is a right-to-be-forgotten violation.
func FindResidue(dev *Mem, pattern []byte) []uint64 {
	if len(pattern) == 0 {
		return nil
	}
	img := dev.ReadRaw()
	var hits []uint64
	seen := make(map[uint64]bool)
	for i := 0; i+len(pattern) <= len(img); i++ {
		if img[i] != pattern[0] {
			continue
		}
		match := true
		for j := 1; j < len(pattern); j++ {
			if img[i+j] != pattern[j] {
				match = false
				break
			}
		}
		if match {
			b := uint64(i) / BlockSize
			if !seen[b] {
				seen[b] = true
				hits = append(hits, b)
			}
		}
	}
	return hits
}

// FindResidueAny scans the raw image of dev once for every pattern and
// returns the number of (pattern, block) pairs with at least one plaintext
// match. One traversal replaces len(patterns) FindResidue passes, which is
// what post-run invariant checks sampling many erased secrets need; a
// non-zero result after a GDPR erasure is a right-to-be-forgotten
// violation.
func FindResidueAny(dev *Mem, patterns [][]byte) int {
	var first [256][]int
	nonEmpty := false
	for idx, p := range patterns {
		if len(p) > 0 {
			first[p[0]] = append(first[p[0]], idx)
			nonEmpty = true
		}
	}
	if !nonEmpty {
		return 0
	}
	img := dev.ReadRaw()
	seen := make(map[[2]uint64]bool)
	hits := 0
	for i := 0; i < len(img); i++ {
		cands := first[img[i]]
		if len(cands) == 0 {
			continue
		}
		for _, idx := range cands {
			p := patterns[idx]
			if i+len(p) > len(img) {
				continue
			}
			match := true
			for j := 1; j < len(p); j++ {
				if img[i+j] != p[j] {
					match = false
					break
				}
			}
			if match {
				key := [2]uint64{uint64(idx), uint64(i) / BlockSize}
				if !seen[key] {
					seen[key] = true
					hits++
				}
			}
		}
	}
	return hits
}

// Faulty wraps a Device and injects deterministic faults: whole-operation
// read errors and torn writes (only a prefix of the block is persisted).
// Crash-consistency tests for the journaled filesystems use it.
type Faulty struct {
	mu sync.Mutex

	dev Device
	rng *xrand.RNG

	readErrProb   float64
	tornWriteProb float64

	injectedReadErrs uint64
	tornWrites       uint64
}

var _ Device = (*Faulty)(nil)

// NewFaulty wraps dev with fault injection driven by rng. readErrProb and
// tornWriteProb are per-operation probabilities in [0, 1].
func NewFaulty(dev Device, rng *xrand.RNG, readErrProb, tornWriteProb float64) *Faulty {
	return &Faulty{
		dev:           dev,
		rng:           rng,
		readErrProb:   readErrProb,
		tornWriteProb: tornWriteProb,
	}
}

// ReadBlock implements Device, possibly failing with ErrIO.
func (f *Faulty) ReadBlock(n uint64, buf []byte) error {
	f.mu.Lock()
	fail := f.rng.Bool(f.readErrProb)
	if fail {
		f.injectedReadErrs++
	}
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: read block %d", ErrIO, n)
	}
	return f.dev.ReadBlock(n, buf)
}

// WriteBlock implements Device. A torn write persists only the first half of
// the block and still reports success, modeling power loss mid-write.
func (f *Faulty) WriteBlock(n uint64, data []byte) error {
	f.mu.Lock()
	torn := f.rng.Bool(f.tornWriteProb)
	if torn {
		f.tornWrites++
	}
	f.mu.Unlock()
	if !torn {
		return f.dev.WriteBlock(n, data)
	}
	old := make([]byte, BlockSize)
	if err := f.dev.ReadBlock(n, old); err != nil {
		return err
	}
	mixed := make([]byte, BlockSize)
	copy(mixed, data[:BlockSize/2])
	copy(mixed[BlockSize/2:], old[BlockSize/2:])
	return f.dev.WriteBlock(n, mixed)
}

// NumBlocks implements Device.
func (f *Faulty) NumBlocks() uint64 { return f.dev.NumBlocks() }

// Sync implements Device.
func (f *Faulty) Sync() error { return f.dev.Sync() }

// Stats implements Device.
func (f *Faulty) Stats() Stats { return f.dev.Stats() }

// InjectedFaults reports how many read errors and torn writes were injected.
func (f *Faulty) InjectedFaults() (readErrs, tornWrites uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injectedReadErrs, f.tornWrites
}

// Partition is a window [start, start+nblocks) onto a parent device. The
// per-shard inode filesystems each format one partition of the PD disk, so
// shard-disjoint mutations never share a superblock, bitmap or journal —
// exactly like giving every shard its own disk slice. Block numbers are
// partition-relative; the view composes with any Device, including the
// bus-routed kernel.RemoteDevice, so partition IO still crosses the
// IO-driver kernel.
type Partition struct {
	dev     Device
	start   uint64
	nblocks uint64
}

var (
	_ Device       = (*Partition)(nil)
	_ VectorWriter = (*Partition)(nil)
)

// NewPartition creates a view of dev covering [start, start+nblocks).
func NewPartition(dev Device, start, nblocks uint64) (*Partition, error) {
	if nblocks == 0 {
		return nil, fmt.Errorf("blockdev: partition must have at least one block")
	}
	if start+nblocks > dev.NumBlocks() {
		return nil, fmt.Errorf("%w: partition [%d,%d) beyond device end %d",
			ErrOutOfRange, start, start+nblocks, dev.NumBlocks())
	}
	return &Partition{dev: dev, start: start, nblocks: nblocks}, nil
}

// Start reports the partition's offset on the parent device.
func (p *Partition) Start() uint64 { return p.start }

func (p *Partition) check(n uint64) error {
	if n >= p.nblocks {
		return fmt.Errorf("%w: block %d of partition size %d", ErrOutOfRange, n, p.nblocks)
	}
	return nil
}

// ReadBlock implements Device.
func (p *Partition) ReadBlock(n uint64, buf []byte) error {
	if err := p.check(n); err != nil {
		return err
	}
	return p.dev.ReadBlock(p.start+n, buf)
}

// WriteBlock implements Device.
func (p *Partition) WriteBlock(n uint64, data []byte) error {
	if err := p.check(n); err != nil {
		return err
	}
	return p.dev.WriteBlock(p.start+n, data)
}

// WriteBlocks implements VectorWriter by translating the batch onto the
// parent (which may itself batch further, e.g. into one bus message).
func (p *Partition) WriteBlocks(ns []uint64, data [][]byte) error {
	if len(ns) != len(data) {
		return fmt.Errorf("blockdev: WriteBlocks: %d block numbers, %d buffers", len(ns), len(data))
	}
	shifted := make([]uint64, len(ns))
	for i, n := range ns {
		if err := p.check(n); err != nil {
			return err
		}
		shifted[i] = p.start + n
	}
	return WriteBlocks(p.dev, shifted, data)
}

// NumBlocks implements Device.
func (p *Partition) NumBlocks() uint64 { return p.nblocks }

// Sync implements Device (a barrier on the parent device).
func (p *Partition) Sync() error { return p.dev.Sync() }

// Stats implements Device; counters live on the parent device, which all
// partitions share, so the view forwards the parent snapshot.
func (p *Partition) Stats() Stats { return p.dev.Stats() }
