// Package blockdev simulates the block storage hardware under rgpdOS.
//
// The paper's prototype targets real disks through uFS; this reproduction has
// no kernel or device access, so the device is simulated: a flat array of
// fixed-size blocks with an accounting latency model (simulated nanoseconds
// are counted, never slept) and optional fault injection. Everything above —
// the inode layer, the traditional file-based filesystem, and DBFS — performs
// I/O exclusively through this interface, which is also how the purpose-kernel
// model routes device access through dedicated IO-driver kernels.
//
// The device deliberately exposes its raw contents (ReadRaw) because the
// journal-leak experiment (DESIGN.md F2V1) must scan a disk image for
// residues of "deleted" personal data, exactly as a forensic tool would.
package blockdev

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/xrand"
)

// BlockSize is the size of every device block in bytes. 4 KiB matches the
// page-sized blocks used by uFS and ext4.
const BlockSize = 4096

// Sentinel errors returned by devices.
var (
	// ErrOutOfRange reports an access beyond the end of the device.
	ErrOutOfRange = errors.New("blockdev: block number out of range")
	// ErrBadSize reports a buffer whose length is not exactly BlockSize.
	ErrBadSize = errors.New("blockdev: buffer must be exactly one block")
	// ErrIO reports an injected device-level I/O failure.
	ErrIO = errors.New("blockdev: injected I/O error")
)

// Stats aggregates the operation counters of a device. Latency is simulated
// (accounted, not slept) so experiments can report device time without
// making the test suite slow.
type Stats struct {
	Reads        uint64
	Writes       uint64
	Syncs        uint64
	BytesRead    uint64
	BytesWritten uint64
	// SimLatency is the total simulated device time consumed.
	SimLatency time.Duration
}

// LatencyModel assigns simulated costs to device operations. The defaults
// (see DefaultLatency) approximate a datacenter NVMe device; experiments
// sweep these to model slower media.
type LatencyModel struct {
	ReadCost  time.Duration // per block read
	WriteCost time.Duration // per block write
	SyncCost  time.Duration // per sync barrier
}

// DefaultLatency approximates NVMe flash: 10us reads, 20us writes, 50us
// flush barriers.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		ReadCost:  10 * time.Microsecond,
		WriteCost: 20 * time.Microsecond,
		SyncCost:  50 * time.Microsecond,
	}
}

// Device is the block storage abstraction all filesystems in this repo sit
// on. Implementations must be safe for concurrent use.
type Device interface {
	// ReadBlock copies block n into buf (len(buf) must be BlockSize).
	ReadBlock(n uint64, buf []byte) error
	// WriteBlock replaces block n with data (len(data) must be BlockSize).
	WriteBlock(n uint64, data []byte) error
	// NumBlocks reports the device capacity in blocks.
	NumBlocks() uint64
	// Sync flushes device caches; on the simulated device it is a barrier
	// that only advances counters.
	Sync() error
	// Stats returns a snapshot of the device counters.
	Stats() Stats
}

// Mem is an in-memory simulated Device.
type Mem struct {
	mu      sync.RWMutex
	blocks  []byte
	nblocks uint64
	lat     LatencyModel
	stats   Stats
}

var _ Device = (*Mem)(nil)

// NewMem returns an in-memory device with n blocks and the given latency
// model. It returns an error if n is zero.
func NewMem(n uint64, lat LatencyModel) (*Mem, error) {
	if n == 0 {
		return nil, fmt.Errorf("blockdev: device must have at least one block")
	}
	return &Mem{
		blocks:  make([]byte, n*BlockSize),
		nblocks: n,
		lat:     lat,
	}, nil
}

// MustMem is NewMem for tests and examples where the size is a constant.
// It panics on error.
func MustMem(n uint64) *Mem {
	d, err := NewMem(n, DefaultLatency())
	if err != nil {
		panic(err)
	}
	return d
}

// ReadBlock implements Device.
func (m *Mem) ReadBlock(n uint64, buf []byte) error {
	if len(buf) != BlockSize {
		return ErrBadSize
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if n >= m.nblocks {
		return fmt.Errorf("%w: read block %d of %d", ErrOutOfRange, n, m.nblocks)
	}
	copy(buf, m.blocks[n*BlockSize:(n+1)*BlockSize])
	m.stats.Reads++
	m.stats.BytesRead += BlockSize
	m.stats.SimLatency += m.lat.ReadCost
	return nil
}

// WriteBlock implements Device.
func (m *Mem) WriteBlock(n uint64, data []byte) error {
	if len(data) != BlockSize {
		return ErrBadSize
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if n >= m.nblocks {
		return fmt.Errorf("%w: write block %d of %d", ErrOutOfRange, n, m.nblocks)
	}
	copy(m.blocks[n*BlockSize:(n+1)*BlockSize], data)
	m.stats.Writes++
	m.stats.BytesWritten += BlockSize
	m.stats.SimLatency += m.lat.WriteCost
	return nil
}

// NumBlocks implements Device.
func (m *Mem) NumBlocks() uint64 {
	return m.nblocks
}

// Sync implements Device.
func (m *Mem) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Syncs++
	m.stats.SimLatency += m.lat.SyncCost
	return nil
}

// Stats implements Device.
func (m *Mem) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// ReadRaw copies the entire device image. It models pulling the disk out of
// the machine: no filesystem, no access control. The residue-scanning
// experiments use it to prove (or disprove) that deleted personal data is
// still recoverable from raw media.
func (m *Mem) ReadRaw() []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]byte, len(m.blocks))
	copy(out, m.blocks)
	return out
}

// FindResidue scans the raw image of dev for every occurrence of pattern and
// returns the block numbers that contain at least one match. A non-empty
// result after a GDPR erasure is a right-to-be-forgotten violation.
func FindResidue(dev *Mem, pattern []byte) []uint64 {
	if len(pattern) == 0 {
		return nil
	}
	img := dev.ReadRaw()
	var hits []uint64
	seen := make(map[uint64]bool)
	for i := 0; i+len(pattern) <= len(img); i++ {
		if img[i] != pattern[0] {
			continue
		}
		match := true
		for j := 1; j < len(pattern); j++ {
			if img[i+j] != pattern[j] {
				match = false
				break
			}
		}
		if match {
			b := uint64(i) / BlockSize
			if !seen[b] {
				seen[b] = true
				hits = append(hits, b)
			}
		}
	}
	return hits
}

// Faulty wraps a Device and injects deterministic faults: whole-operation
// read errors and torn writes (only a prefix of the block is persisted).
// Crash-consistency tests for the journaled filesystems use it.
type Faulty struct {
	mu sync.Mutex

	dev Device
	rng *xrand.RNG

	readErrProb   float64
	tornWriteProb float64

	injectedReadErrs uint64
	tornWrites       uint64
}

var _ Device = (*Faulty)(nil)

// NewFaulty wraps dev with fault injection driven by rng. readErrProb and
// tornWriteProb are per-operation probabilities in [0, 1].
func NewFaulty(dev Device, rng *xrand.RNG, readErrProb, tornWriteProb float64) *Faulty {
	return &Faulty{
		dev:           dev,
		rng:           rng,
		readErrProb:   readErrProb,
		tornWriteProb: tornWriteProb,
	}
}

// ReadBlock implements Device, possibly failing with ErrIO.
func (f *Faulty) ReadBlock(n uint64, buf []byte) error {
	f.mu.Lock()
	fail := f.rng.Bool(f.readErrProb)
	if fail {
		f.injectedReadErrs++
	}
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: read block %d", ErrIO, n)
	}
	return f.dev.ReadBlock(n, buf)
}

// WriteBlock implements Device. A torn write persists only the first half of
// the block and still reports success, modeling power loss mid-write.
func (f *Faulty) WriteBlock(n uint64, data []byte) error {
	f.mu.Lock()
	torn := f.rng.Bool(f.tornWriteProb)
	if torn {
		f.tornWrites++
	}
	f.mu.Unlock()
	if !torn {
		return f.dev.WriteBlock(n, data)
	}
	old := make([]byte, BlockSize)
	if err := f.dev.ReadBlock(n, old); err != nil {
		return err
	}
	mixed := make([]byte, BlockSize)
	copy(mixed, data[:BlockSize/2])
	copy(mixed[BlockSize/2:], old[BlockSize/2:])
	return f.dev.WriteBlock(n, mixed)
}

// NumBlocks implements Device.
func (f *Faulty) NumBlocks() uint64 { return f.dev.NumBlocks() }

// Sync implements Device.
func (f *Faulty) Sync() error { return f.dev.Sync() }

// Stats implements Device.
func (f *Faulty) Stats() Stats { return f.dev.Stats() }

// InjectedFaults reports how many read errors and torn writes were injected.
func (f *Faulty) InjectedFaults() (readErrs, tornWrites uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injectedReadErrs, f.tornWrites
}
