package blockdev

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// flakyDev injects togglable read/write failures under the cache, so tests
// control exactly which operation fails (unlike Faulty's probabilistic
// injection).
type flakyDev struct {
	dev *Mem

	mu         sync.Mutex
	failReads  bool
	failWrites bool
}

func (f *flakyDev) set(reads, writes bool) {
	f.mu.Lock()
	f.failReads, f.failWrites = reads, writes
	f.mu.Unlock()
}

func (f *flakyDev) ReadBlock(n uint64, buf []byte) error {
	f.mu.Lock()
	fail := f.failReads
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: read block %d", ErrIO, n)
	}
	return f.dev.ReadBlock(n, buf)
}

func (f *flakyDev) WriteBlock(n uint64, data []byte) error {
	f.mu.Lock()
	fail := f.failWrites
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: write block %d", ErrIO, n)
	}
	return f.dev.WriteBlock(n, data)
}

func (f *flakyDev) NumBlocks() uint64 { return f.dev.NumBlocks() }
func (f *flakyDev) Sync() error       { return f.dev.Sync() }
func (f *flakyDev) Stats() Stats      { return f.dev.Stats() }

func pat(v byte) []byte {
	b := make([]byte, BlockSize)
	for i := range b {
		b[i] = v
	}
	return b
}

// TestCachedReadThrough: a miss fills from the device and counts once; the
// repeat read is a hit served from memory with no device traffic.
func TestCachedReadThrough(t *testing.T) {
	mem := MustMem(32)
	if err := mem.WriteBlock(5, pat(0xAA)); err != nil {
		t.Fatal(err)
	}
	c, err := NewCached(mem, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := mem.Stats().Reads
	buf := make([]byte, BlockSize)
	for i := 0; i < 3; i++ {
		if err := c.ReadBlock(5, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pat(0xAA)) {
			t.Fatalf("read %d returned wrong data", i)
		}
	}
	s := c.Stats()
	if s.CacheMisses != 1 || s.CacheHits != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/1", s.CacheHits, s.CacheMisses)
	}
	if got := mem.Stats().Reads - base; got != 1 {
		t.Fatalf("device reads = %d, want 1 (cache must absorb repeats)", got)
	}
}

// TestCachedWriteBackDeferred: a write dirties the cache only; the device
// sees it at Sync, after which the data is durable.
func TestCachedWriteBackDeferred(t *testing.T) {
	mem := MustMem(32)
	c, err := NewCached(mem, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBlock(7, pat(0xBB)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if err := mem.ReadBlock(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Fatal("write reached the device before Sync (write-back broken)")
	}
	// The cache itself must serve the buffered image.
	if err := c.ReadBlock(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat(0xBB)) {
		t.Fatal("cache lost the buffered write")
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := mem.ReadBlock(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat(0xBB)) {
		t.Fatal("Sync did not flush the dirty block")
	}
	if s := c.Stats(); s.Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", s.Writebacks)
	}
}

// TestCachedLRUBound: the cache never exceeds its capacity, and dirty
// victims are written back on eviction rather than dropped.
func TestCachedLRUBound(t *testing.T) {
	mem := MustMem(64)
	c, err := NewCached(mem, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		if err := c.WriteBlock(10+i, pat(byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 4 {
		t.Fatalf("cache holds %d blocks, cap 4", n)
	}
	s := c.Stats()
	if s.CacheEvictions < 4 {
		t.Fatalf("evictions = %d, want >= 4", s.CacheEvictions)
	}
	// The four oldest blocks were evicted dirty; their data must be on the
	// device already.
	got := make([]byte, BlockSize)
	for i := uint64(0); i < 4; i++ {
		if err := mem.ReadBlock(10+i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pat(byte(i+1))) {
			t.Fatalf("evicted block %d not written back", 10+i)
		}
	}
	// Everything survives a full flush.
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		if err := mem.ReadBlock(10+i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pat(byte(i+1))) {
			t.Fatalf("block %d lost", 10+i)
		}
	}
}

// TestCachedReadErrorNoPoison: a failed miss fill must not leave a cache
// entry behind; once the device recovers, the real data is served.
func TestCachedReadErrorNoPoison(t *testing.T) {
	mem := MustMem(32)
	if err := mem.WriteBlock(3, pat(0xCC)); err != nil {
		t.Fatal(err)
	}
	flaky := &flakyDev{dev: mem}
	c, err := NewCached(flaky, 8)
	if err != nil {
		t.Fatal(err)
	}
	flaky.set(true, false)
	buf := make([]byte, BlockSize)
	if err := c.ReadBlock(3, buf); !errors.Is(err, ErrIO) {
		t.Fatalf("read err = %v, want ErrIO", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed fill left %d poisoned entries", c.Len())
	}
	flaky.set(false, false)
	if err := c.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pat(0xCC)) {
		t.Fatal("recovered read returned wrong data")
	}
}

// TestCachedEvictionWritebackFailure: when evicting a dirty victim fails
// with ErrIO, the block stays cached and dirty — no buffered write is ever
// lost — and a later Sync lands it once the device recovers.
func TestCachedEvictionWritebackFailure(t *testing.T) {
	mem := MustMem(32)
	flaky := &flakyDev{dev: mem}
	c, err := NewCached(flaky, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBlock(4, pat(0x44)); err != nil {
		t.Fatal(err)
	}
	flaky.set(false, true)
	// Inserting a second block forces an eviction of dirty block 4, which
	// fails; the error surfaces and block 4 must survive in the cache.
	if err := c.WriteBlock(5, pat(0x55)); !errors.Is(err, ErrIO) {
		t.Fatalf("eviction err = %v, want ErrIO", err)
	}
	buf := make([]byte, BlockSize)
	if err := c.ReadBlock(4, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pat(0x44)) {
		t.Fatal("dirty block lost after failed eviction writeback")
	}
	// Sync also fails while the device is down, and still loses nothing.
	if err := c.Sync(); !errors.Is(err, ErrIO) {
		t.Fatalf("sync err = %v, want ErrIO", err)
	}
	flaky.set(false, false)
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, blk := range []struct {
		n uint64
		v byte
	}{{4, 0x44}, {5, 0x55}} {
		if err := mem.ReadBlock(blk.n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pat(blk.v)) {
			t.Fatalf("block %d not durable after recovery", blk.n)
		}
	}
}

// TestCachedVectorWrite: a batched write lands wholly in the cache under
// one lock and flushes correctly.
func TestCachedVectorWrite(t *testing.T) {
	mem := MustMem(32)
	c, err := NewCached(mem, 8)
	if err != nil {
		t.Fatal(err)
	}
	ns := []uint64{11, 12, 13}
	imgs := [][]byte{pat(1), pat(2), pat(3)}
	if err := c.WriteBlocks(ns, imgs); err != nil {
		t.Fatal(err)
	}
	if w := mem.Stats().Writes; w != 0 {
		t.Fatalf("device writes = %d before Sync, want 0", w)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	for i, n := range ns {
		if err := mem.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, imgs[i]) {
			t.Fatalf("block %d wrong after flush", n)
		}
	}
}

// TestCachedBypass: blocks inside the bypass range go straight to the
// device in both directions and never occupy cache slots.
func TestCachedBypass(t *testing.T) {
	mem := MustMem(64)
	c, err := NewCached(mem, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBypass(20, 10)
	if err := c.WriteBlock(25, pat(0xEE)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if err := mem.ReadBlock(25, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat(0xEE)) {
		t.Fatal("bypassed write did not reach the device immediately")
	}
	if err := c.ReadBlock(25, got); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("bypassed blocks occupy %d cache slots", c.Len())
	}
	s := c.Stats()
	if s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Fatalf("bypassed I/O counted as hits=%d misses=%d", s.CacheHits, s.CacheMisses)
	}
	// Outside the range caching still works.
	if err := c.WriteBlock(40, pat(0x40)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("cacheable block not cached (len=%d)", c.Len())
	}
}
