package blockdev

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewMemRejectsZeroBlocks(t *testing.T) {
	if _, err := NewMem(0, DefaultLatency()); err == nil {
		t.Fatal("NewMem(0) succeeded, want error")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	dev := MustMem(8)
	in := make([]byte, BlockSize)
	for i := range in {
		in[i] = byte(i % 251)
	}
	if err := dev.WriteBlock(3, in); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	out := make([]byte, BlockSize)
	if err := dev.ReadBlock(3, out); err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("read data differs from written data")
	}
}

func TestFreshBlocksAreZero(t *testing.T) {
	dev := MustMem(2)
	buf := make([]byte, BlockSize)
	if err := dev.ReadBlock(1, buf); err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("fresh block has non-zero byte at %d", i)
		}
	}
}

func TestOutOfRange(t *testing.T) {
	dev := MustMem(4)
	buf := make([]byte, BlockSize)
	if err := dev.ReadBlock(4, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ReadBlock(4) err = %v, want ErrOutOfRange", err)
	}
	if err := dev.WriteBlock(99, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("WriteBlock(99) err = %v, want ErrOutOfRange", err)
	}
}

func TestBadBufferSize(t *testing.T) {
	dev := MustMem(4)
	if err := dev.ReadBlock(0, make([]byte, 10)); !errors.Is(err, ErrBadSize) {
		t.Fatalf("short read buffer err = %v, want ErrBadSize", err)
	}
	if err := dev.WriteBlock(0, make([]byte, BlockSize+1)); !errors.Is(err, ErrBadSize) {
		t.Fatalf("long write buffer err = %v, want ErrBadSize", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	dev := MustMem(4)
	buf := make([]byte, BlockSize)
	for i := 0; i < 3; i++ {
		if err := dev.WriteBlock(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := dev.ReadBlock(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	s := dev.Stats()
	if s.Writes != 3 || s.Reads != 2 || s.Syncs != 1 {
		t.Fatalf("stats = %+v, want 3 writes / 2 reads / 1 sync", s)
	}
	lat := DefaultLatency()
	want := 3*lat.WriteCost + 2*lat.ReadCost + lat.SyncCost
	if s.SimLatency != want {
		t.Fatalf("SimLatency = %v, want %v", s.SimLatency, want)
	}
	if s.BytesWritten != 3*BlockSize || s.BytesRead != 2*BlockSize {
		t.Fatalf("byte counters = %+v", s)
	}
}

func TestFailedOpsDoNotCount(t *testing.T) {
	dev := MustMem(1)
	buf := make([]byte, BlockSize)
	_ = dev.ReadBlock(5, buf) // out of range
	if s := dev.Stats(); s.Reads != 0 {
		t.Fatalf("failed read was counted: %+v", s)
	}
}

func TestFindResidue(t *testing.T) {
	dev := MustMem(8)
	secret := []byte("SSN-123-45-6789")
	block := make([]byte, BlockSize)
	copy(block[100:], secret)
	if err := dev.WriteBlock(2, block); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteBlock(5, block); err != nil {
		t.Fatal(err)
	}
	hits := FindResidue(dev, secret)
	if len(hits) != 2 || hits[0] != 2 || hits[1] != 5 {
		t.Fatalf("FindResidue = %v, want [2 5]", hits)
	}
	if got := FindResidue(dev, []byte("absent")); got != nil {
		t.Fatalf("FindResidue(absent) = %v, want nil", got)
	}
	if got := FindResidue(dev, nil); got != nil {
		t.Fatalf("FindResidue(nil pattern) = %v, want nil", got)
	}
}

func TestFindResidueAny(t *testing.T) {
	dev := MustMem(8)
	block := make([]byte, BlockSize)
	copy(block[10:], "alpha-secret")
	copy(block[200:], "beta-secret")
	if err := dev.WriteBlock(1, block); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteBlock(4, block); err != nil {
		t.Fatal(err)
	}
	// alpha hits blocks 1 and 4, beta hits blocks 1 and 4, gamma none:
	// 4 (pattern, block) pairs total, counted in one traversal.
	got := FindResidueAny(dev, [][]byte{
		[]byte("alpha-secret"), []byte("beta-secret"), []byte("gamma-secret"),
	})
	if got != 4 {
		t.Fatalf("FindResidueAny = %d, want 4", got)
	}
	if got := FindResidueAny(dev, nil); got != 0 {
		t.Fatalf("FindResidueAny(nil) = %d, want 0", got)
	}
	if got := FindResidueAny(dev, [][]byte{nil, {}}); got != 0 {
		t.Fatalf("FindResidueAny(empty patterns) = %d, want 0", got)
	}
	// The batch count must agree with per-pattern FindResidue block counts.
	want := len(FindResidue(dev, []byte("alpha-secret"))) +
		len(FindResidue(dev, []byte("beta-secret")))
	if got := FindResidueAny(dev, [][]byte{[]byte("alpha-secret"), []byte("beta-secret")}); got != want {
		t.Fatalf("FindResidueAny = %d, FindResidue sum = %d", got, want)
	}
}

func TestFindResidueSpanningBlocks(t *testing.T) {
	dev := MustMem(4)
	// A pattern written across the block 0/1 boundary must be found and
	// attributed to the block where it begins.
	a := make([]byte, BlockSize)
	b := make([]byte, BlockSize)
	copy(a[BlockSize-3:], "SEC")
	copy(b, "RET")
	if err := dev.WriteBlock(0, a); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteBlock(1, b); err != nil {
		t.Fatal(err)
	}
	hits := FindResidue(dev, []byte("SECRET"))
	if len(hits) != 1 || hits[0] != 0 {
		t.Fatalf("FindResidue across boundary = %v, want [0]", hits)
	}
}

func TestConcurrentAccess(t *testing.T) {
	dev := MustMem(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, BlockSize)
			for i := 0; i < 100; i++ {
				n := uint64((w*100 + i) % 64)
				buf[0] = byte(w)
				if err := dev.WriteBlock(n, buf); err != nil {
					t.Errorf("WriteBlock: %v", err)
					return
				}
				if err := dev.ReadBlock(n, buf); err != nil {
					t.Errorf("ReadBlock: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := dev.Stats()
	if s.Reads != 800 || s.Writes != 800 {
		t.Fatalf("concurrent stats = %+v, want 800/800", s)
	}
}

func TestFaultyReadErrors(t *testing.T) {
	dev := MustMem(4)
	f := NewFaulty(dev, xrand.New(1), 1.0, 0)
	buf := make([]byte, BlockSize)
	if err := f.ReadBlock(0, buf); !errors.Is(err, ErrIO) {
		t.Fatalf("ReadBlock with p=1 err = %v, want ErrIO", err)
	}
	re, tw := f.InjectedFaults()
	if re != 1 || tw != 0 {
		t.Fatalf("InjectedFaults = %d,%d want 1,0", re, tw)
	}
}

func TestFaultyTornWrite(t *testing.T) {
	dev := MustMem(4)
	f := NewFaulty(dev, xrand.New(1), 0, 1.0)
	in := make([]byte, BlockSize)
	for i := range in {
		in[i] = 0xAB
	}
	if err := f.WriteBlock(0, in); err != nil {
		t.Fatalf("torn WriteBlock: %v", err)
	}
	out := make([]byte, BlockSize)
	if err := dev.ReadBlock(0, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < BlockSize/2; i++ {
		if out[i] != 0xAB {
			t.Fatalf("first half byte %d = %x, want AB", i, out[i])
		}
	}
	for i := BlockSize / 2; i < BlockSize; i++ {
		if out[i] != 0 {
			t.Fatalf("second half byte %d = %x, want 00 (old contents)", i, out[i])
		}
	}
}

func TestFaultyZeroProbIsTransparent(t *testing.T) {
	dev := MustMem(4)
	f := NewFaulty(dev, xrand.New(1), 0, 0)
	in := make([]byte, BlockSize)
	in[17] = 42
	if err := f.WriteBlock(1, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, BlockSize)
	if err := f.ReadBlock(1, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("fault-free wrapper altered data")
	}
}

func TestRoundTripProperty(t *testing.T) {
	dev := MustMem(16)
	cfg := &quick.Config{MaxCount: 50}
	err := quick.Check(func(blockSeed uint8, payload []byte) bool {
		n := uint64(blockSeed) % 16
		in := make([]byte, BlockSize)
		copy(in, payload)
		if err := dev.WriteBlock(n, in); err != nil {
			return false
		}
		out := make([]byte, BlockSize)
		if err := dev.ReadBlock(n, out); err != nil {
			return false
		}
		return bytes.Equal(in, out)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
