// Package inode implements a uFS-style inode layer over a simulated block
// device, with write-ahead journaling for crash consistency.
//
// The paper's prototype (§3) re-architects uFS, keeping "the implementation
// of the inode concept" and building two major inode trees on top of it for
// DBFS. This package is that kept layer: fixed-size on-disk inodes with
// direct, single-indirect and double-indirect block pointers, an allocation
// bitmap, and named parent→child links so inodes form trees. Both DBFS
// (internal/dbfs) and the traditional file-based filesystem
// (internal/plainfs) are built on it.
//
// Deliberate realism: freeing an inode releases its blocks but does NOT zero
// them, and every mutation's pre-/post-images flow through the journal. Both
// behaviours match production filesystems and are exactly why a file-based
// OS below a "GDPR-compliant" database can violate the right to be forgotten
// (DESIGN.md F2V1). rgpdOS's DBFS neutralizes them by storing only
// ciphertext in inodes (see internal/cryptoshred).
package inode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/simclock"
	"repro/internal/wal"
)

// Mode classifies an inode.
type Mode uint32

// Inode modes. ModeFree marks an unallocated table slot; its zero value is
// meaningful on disk, so the enum starts at zero deliberately.
const (
	ModeFree Mode = iota
	ModeFile
	ModeTree
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeFree:
		return "free"
	case ModeFile:
		return "file"
	case ModeTree:
		return "tree"
	default:
		return fmt.Sprintf("mode(%d)", uint32(m))
	}
}

// Ino is an inode number. 0 is never a valid inode; the root tree inode is 1.
type Ino uint64

// Layout constants.
const (
	magic   uint32 = 0x75465321 // "uFS!"
	version uint32 = 1

	// InodeSize is the on-disk inode record size.
	InodeSize = 256
	// InodesPerBlock is how many inodes fit in one device block.
	InodesPerBlock = blockdev.BlockSize / InodeSize

	// NumDirect is the number of direct block pointers per inode.
	NumDirect = 12
	// PtrsPerBlock is the number of block pointers in an indirect block.
	PtrsPerBlock = blockdev.BlockSize / 8

	// MaxTagLen is the longest tag string an inode can carry. DBFS uses
	// tags to label inode roles (schema, subject, record, membrane).
	MaxTagLen = 80

	// MaxFileBlocks is the per-inode capacity in blocks.
	MaxFileBlocks = NumDirect + PtrsPerBlock + PtrsPerBlock*PtrsPerBlock

	// RootIno is the inode number of the root tree, created by Format.
	RootIno Ino = 1

	// blocksPerTxnChunk bounds how many data blocks a single journal
	// transaction carries during large writes; bigger writes are split
	// into multiple transactions.
	blocksPerTxnChunk = 64
)

// Sentinel errors.
var (
	// ErrNotFormatted reports a device without a valid superblock.
	ErrNotFormatted = errors.New("inode: device is not formatted")
	// ErrBadInode reports an out-of-range or unallocated inode number.
	ErrBadInode = errors.New("inode: invalid inode")
	// ErrNoSpace reports block or inode exhaustion.
	ErrNoSpace = errors.New("inode: no space left on device")
	// ErrNotTree reports a tree operation on a non-tree inode.
	ErrNotTree = errors.New("inode: not a tree inode")
	// ErrChildExists reports an AddChild with a duplicate name.
	ErrChildExists = errors.New("inode: child name already exists")
	// ErrChildNotFound reports a missing child name.
	ErrChildNotFound = errors.New("inode: child not found")
	// ErrTagTooLong reports a tag above MaxTagLen.
	ErrTagTooLong = errors.New("inode: tag too long")
	// ErrFileTooBig reports a write beyond MaxFileBlocks.
	ErrFileTooBig = errors.New("inode: file exceeds maximum size")
	// ErrTreeNotEmpty reports freeing a tree that still has children.
	ErrTreeNotEmpty = errors.New("inode: tree has children")
)

// Info is the stat result for an inode.
type Info struct {
	Ino   Ino
	Mode  Mode
	Size  uint64
	MTime time.Time
	Tag   string
	// Links is the number of tree links pointing at this inode.
	Links uint32
}

// superblock describes the device layout. It lives in block 0.
type superblock struct {
	NBlocks       uint64
	NInodes       uint64
	BitmapStart   uint64
	BitmapBlocks  uint64
	InodeStart    uint64
	InodeBlocks   uint64
	JournalStart  uint64
	JournalBlocks uint64
	DataStart     uint64
}

// dinode is the in-memory form of an on-disk inode.
type dinode struct {
	Mode      Mode
	Links     uint32
	Size      uint64
	MTimeNano int64
	Direct    [NumDirect]uint64
	Indirect  uint64
	DblInd    uint64
	Tag       string
}

// Options configures Format.
type Options struct {
	// NInodes is the inode table capacity. Default 4096.
	NInodes uint64
	// JournalBlocks is the journal region size. Default 256.
	JournalBlocks uint64
	// Clock supplies mtimes. Default simclock.Real.
	Clock simclock.Clock
}

func (o *Options) withDefaults() {
	if o.NInodes == 0 {
		o.NInodes = 4096
	}
	if o.JournalBlocks == 0 {
		o.JournalBlocks = 256
	}
	if o.Clock == nil {
		o.Clock = simclock.Real{}
	}
}

// FS is a mounted inode filesystem. All methods are safe for concurrent use.
type FS struct {
	dev   blockdev.Device
	clock simclock.Clock

	mu     sync.Mutex
	sb     superblock
	log    *wal.Log
	bitmap []byte // in-memory block allocation bitmap, one bit per device block
	itab   []dinode
	// maxChunk bounds data blocks per journal transaction; it is derived
	// from the journal size so one transaction (data + staged metadata)
	// always fits the region.
	maxChunk int
}

// chunkLimit derives the per-transaction data-block budget from the journal
// size, reserving headroom for descriptor/commit blocks and staged metadata
// (inode table, bitmap, and indirect blocks).
func chunkLimit(journalBlocks uint64) int {
	const metaHeadroom = 10
	limit := int(journalBlocks) - metaHeadroom
	if limit < 1 {
		limit = 1
	}
	if limit > blocksPerTxnChunk {
		limit = blocksPerTxnChunk
	}
	return limit
}

// Format initializes dev with an empty filesystem and returns it mounted.
func Format(dev blockdev.Device, opts Options) (*FS, error) {
	opts.withDefaults()
	n := dev.NumBlocks()
	bitmapBlocks := (n/8 + blockdev.BlockSize - 1) / blockdev.BlockSize
	inodeBlocks := (opts.NInodes + InodesPerBlock - 1) / InodesPerBlock
	sb := superblock{
		NBlocks:       n,
		NInodes:       inodeBlocks * InodesPerBlock,
		BitmapStart:   1,
		BitmapBlocks:  bitmapBlocks,
		InodeStart:    1 + bitmapBlocks,
		InodeBlocks:   inodeBlocks,
		JournalStart:  1 + bitmapBlocks + inodeBlocks,
		JournalBlocks: opts.JournalBlocks,
	}
	sb.DataStart = sb.JournalStart + sb.JournalBlocks
	if sb.DataStart+8 > n {
		return nil, fmt.Errorf("%w: device too small (%d blocks, need > %d)", ErrNoSpace, n, sb.DataStart+8)
	}

	fs := &FS{
		dev:      dev,
		clock:    opts.Clock,
		sb:       sb,
		bitmap:   make([]byte, bitmapBlocks*blockdev.BlockSize),
		itab:     make([]dinode, sb.NInodes),
		maxChunk: chunkLimit(sb.JournalBlocks),
	}
	// Mark metadata region (everything before DataStart) as allocated.
	for b := uint64(0); b < sb.DataStart; b++ {
		fs.bitmap[b/8] |= 1 << (b % 8)
	}

	// Persist superblock directly (pre-journal bootstrap write).
	buf := make([]byte, blockdev.BlockSize)
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], version)
	enc := buf[8:]
	for i, v := range []uint64{sb.NBlocks, sb.NInodes, sb.BitmapStart, sb.BitmapBlocks,
		sb.InodeStart, sb.InodeBlocks, sb.JournalStart, sb.JournalBlocks, sb.DataStart} {
		binary.LittleEndian.PutUint64(enc[8*i:], v)
	}
	if err := dev.WriteBlock(0, buf); err != nil {
		return nil, fmt.Errorf("inode: write superblock: %w", err)
	}
	// Persist initial bitmap.
	for i := uint64(0); i < bitmapBlocks; i++ {
		if err := dev.WriteBlock(sb.BitmapStart+i, fs.bitmap[i*blockdev.BlockSize:(i+1)*blockdev.BlockSize]); err != nil {
			return nil, fmt.Errorf("inode: write bitmap: %w", err)
		}
	}
	// Persist empty inode table.
	zero := make([]byte, blockdev.BlockSize)
	for i := uint64(0); i < inodeBlocks; i++ {
		if err := dev.WriteBlock(sb.InodeStart+i, zero); err != nil {
			return nil, fmt.Errorf("inode: write inode table: %w", err)
		}
	}
	if err := dev.Sync(); err != nil {
		return nil, fmt.Errorf("inode: sync format: %w", err)
	}

	log, err := wal.Open(dev, sb.JournalStart, sb.JournalBlocks)
	if err != nil {
		return nil, fmt.Errorf("inode: open journal: %w", err)
	}
	fs.log = log

	// Create the root tree inode (ino 1) through the normal journaled path.
	root, err := fs.AllocInode(ModeTree, "root")
	if err != nil {
		return nil, fmt.Errorf("inode: create root: %w", err)
	}
	if root != RootIno {
		return nil, fmt.Errorf("inode: root allocated as %d, want %d", root, RootIno)
	}
	return fs, nil
}

// Mount opens a previously formatted device: it validates the superblock,
// replays the journal, and loads the allocation bitmap and inode table.
func Mount(dev blockdev.Device, clock simclock.Clock) (*FS, error) {
	if clock == nil {
		clock = simclock.Real{}
	}
	buf := make([]byte, blockdev.BlockSize)
	if err := dev.ReadBlock(0, buf); err != nil {
		return nil, fmt.Errorf("inode: read superblock: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != magic {
		return nil, ErrNotFormatted
	}
	var sb superblock
	enc := buf[8:]
	vals := make([]uint64, 9)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint64(enc[8*i:])
	}
	sb.NBlocks, sb.NInodes = vals[0], vals[1]
	sb.BitmapStart, sb.BitmapBlocks = vals[2], vals[3]
	sb.InodeStart, sb.InodeBlocks = vals[4], vals[5]
	sb.JournalStart, sb.JournalBlocks = vals[6], vals[7]
	sb.DataStart = vals[8]

	log, err := wal.Open(dev, sb.JournalStart, sb.JournalBlocks)
	if err != nil {
		return nil, fmt.Errorf("inode: open journal: %w", err)
	}
	if _, err := log.Recover(); err != nil {
		return nil, fmt.Errorf("inode: journal recovery: %w", err)
	}

	fs := &FS{
		dev:      dev,
		clock:    clock,
		sb:       sb,
		log:      log,
		bitmap:   make([]byte, sb.BitmapBlocks*blockdev.BlockSize),
		itab:     make([]dinode, sb.NInodes),
		maxChunk: chunkLimit(sb.JournalBlocks),
	}
	for i := uint64(0); i < sb.BitmapBlocks; i++ {
		if err := dev.ReadBlock(sb.BitmapStart+i, fs.bitmap[i*blockdev.BlockSize:(i+1)*blockdev.BlockSize]); err != nil {
			return nil, fmt.Errorf("inode: read bitmap: %w", err)
		}
	}
	for i := uint64(0); i < sb.InodeBlocks; i++ {
		if err := dev.ReadBlock(sb.InodeStart+i, buf); err != nil {
			return nil, fmt.Errorf("inode: read inode table: %w", err)
		}
		for j := 0; j < InodesPerBlock; j++ {
			idx := i*InodesPerBlock + uint64(j)
			if idx >= sb.NInodes {
				break
			}
			fs.itab[idx] = decodeInode(buf[j*InodeSize : (j+1)*InodeSize])
		}
	}
	return fs, nil
}

// Device returns the underlying block device (used by residue-scanning
// experiments and by the IO-driver kernel wiring).
func (fs *FS) Device() blockdev.Device { return fs.dev }

// JournalRegion reports the journal block range for residue attribution.
func (fs *FS) JournalRegion() (start, length uint64) {
	return fs.sb.JournalStart, fs.sb.JournalBlocks
}

// JournalStats exposes the journal counters.
func (fs *FS) JournalStats() wal.Stats { return fs.log.Stats() }

// --- inode encoding ---

func encodeInode(d dinode, out []byte) {
	binary.LittleEndian.PutUint32(out[0:], uint32(d.Mode))
	binary.LittleEndian.PutUint32(out[4:], d.Links)
	binary.LittleEndian.PutUint64(out[8:], d.Size)
	binary.LittleEndian.PutUint64(out[16:], uint64(d.MTimeNano))
	for i := 0; i < NumDirect; i++ {
		binary.LittleEndian.PutUint64(out[24+8*i:], d.Direct[i])
	}
	binary.LittleEndian.PutUint64(out[24+8*NumDirect:], d.Indirect)
	binary.LittleEndian.PutUint64(out[32+8*NumDirect:], d.DblInd)
	tagOff := 40 + 8*NumDirect
	binary.LittleEndian.PutUint16(out[tagOff:], uint16(len(d.Tag)))
	copy(out[tagOff+2:tagOff+2+MaxTagLen], d.Tag)
}

func decodeInode(in []byte) dinode {
	var d dinode
	d.Mode = Mode(binary.LittleEndian.Uint32(in[0:]))
	d.Links = binary.LittleEndian.Uint32(in[4:])
	d.Size = binary.LittleEndian.Uint64(in[8:])
	d.MTimeNano = int64(binary.LittleEndian.Uint64(in[16:]))
	for i := 0; i < NumDirect; i++ {
		d.Direct[i] = binary.LittleEndian.Uint64(in[24+8*i:])
	}
	d.Indirect = binary.LittleEndian.Uint64(in[24+8*NumDirect:])
	d.DblInd = binary.LittleEndian.Uint64(in[32+8*NumDirect:])
	tagOff := 40 + 8*NumDirect
	n := binary.LittleEndian.Uint16(in[tagOff:])
	if n > MaxTagLen {
		n = MaxTagLen
	}
	d.Tag = string(in[tagOff+2 : tagOff+2+int(n)])
	return d
}

// --- block helpers (callers hold fs.mu) ---

// readBlock reads block n, preferring the image buffered in tx so that a
// transaction observes its own writes.
func (fs *FS) readBlock(tx *wal.Txn, n uint64, buf []byte) error {
	if tx != nil {
		if img, ok := tx.Read(n); ok {
			copy(buf, img)
			return nil
		}
	}
	return fs.dev.ReadBlock(n, buf)
}

// flushInode stages inode ino's table block into tx.
func (fs *FS) flushInode(tx *wal.Txn, ino Ino) error {
	idx := uint64(ino)
	blk := fs.sb.InodeStart + idx/InodesPerBlock
	buf := make([]byte, blockdev.BlockSize)
	if err := fs.readBlock(tx, blk, buf); err != nil {
		return err
	}
	off := (idx % InodesPerBlock) * InodeSize
	encodeInode(fs.itab[idx], buf[off:off+InodeSize])
	return tx.Write(blk, buf)
}

// flushBitmapFor stages the bitmap block covering device block b into tx.
func (fs *FS) flushBitmapFor(tx *wal.Txn, b uint64) error {
	bmBlk := (b / 8) / blockdev.BlockSize
	start := bmBlk * blockdev.BlockSize
	return tx.Write(fs.sb.BitmapStart+bmBlk, fs.bitmap[start:start+blockdev.BlockSize])
}

// allocBlock finds a free data block, marks it used, and stages the bitmap.
func (fs *FS) allocBlock(tx *wal.Txn) (uint64, error) {
	for b := fs.sb.DataStart; b < fs.sb.NBlocks; b++ {
		if fs.bitmap[b/8]&(1<<(b%8)) == 0 {
			fs.bitmap[b/8] |= 1 << (b % 8)
			if err := fs.flushBitmapFor(tx, b); err != nil {
				return 0, err
			}
			return b, nil
		}
	}
	return 0, ErrNoSpace
}

// freeBlock clears a block's bitmap bit. The block contents are NOT zeroed —
// the same residue semantics as ext4.
func (fs *FS) freeBlock(tx *wal.Txn, b uint64) error {
	if b < fs.sb.DataStart || b >= fs.sb.NBlocks {
		return fmt.Errorf("inode: freeBlock %d outside data region", b)
	}
	fs.bitmap[b/8] &^= 1 << (b % 8)
	return fs.flushBitmapFor(tx, b)
}

func (fs *FS) checkIno(ino Ino) error {
	if ino == 0 || uint64(ino) >= fs.sb.NInodes {
		return fmt.Errorf("%w: %d", ErrBadInode, ino)
	}
	if fs.itab[ino].Mode == ModeFree {
		return fmt.Errorf("%w: %d is free", ErrBadInode, ino)
	}
	return nil
}

// --- public API ---

// AllocInode allocates a fresh inode of the given mode with an optional tag.
func (fs *FS) AllocInode(mode Mode, tag string) (Ino, error) {
	if mode == ModeFree {
		return 0, fmt.Errorf("%w: cannot allocate ModeFree", ErrBadInode)
	}
	if len(tag) > MaxTagLen {
		return 0, fmt.Errorf("%w: %d bytes", ErrTagTooLong, len(tag))
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i := uint64(1); i < fs.sb.NInodes; i++ {
		if fs.itab[i].Mode != ModeFree {
			continue
		}
		fs.itab[i] = dinode{
			Mode:      mode,
			MTimeNano: fs.clock.Now().UnixNano(),
			Tag:       tag,
		}
		tx := fs.log.Begin()
		if err := fs.flushInode(tx, Ino(i)); err != nil {
			tx.Abort()
			fs.itab[i] = dinode{}
			return 0, fmt.Errorf("inode: alloc %d: %w", i, err)
		}
		if err := tx.Commit(); err != nil {
			fs.itab[i] = dinode{}
			return 0, fmt.Errorf("inode: alloc %d: %w", i, err)
		}
		return Ino(i), nil
	}
	return 0, fmt.Errorf("%w: inode table full", ErrNoSpace)
}

// FreeInode releases ino and all its data blocks. Tree inodes must be empty.
// Data blocks are not zeroed; see the package comment.
func (fs *FS) FreeInode(ino Ino) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkIno(ino); err != nil {
		return err
	}
	d := &fs.itab[ino]
	if d.Mode == ModeTree && d.Size > 0 {
		return fmt.Errorf("%w: inode %d", ErrTreeNotEmpty, ino)
	}
	tx := fs.log.Begin()
	if err := fs.freeInodeBlocks(tx, ino); err != nil {
		tx.Abort()
		return err
	}
	fs.itab[ino] = dinode{}
	if err := fs.flushInode(tx, ino); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// freeInodeBlocks releases every data block mapped by ino.
func (fs *FS) freeInodeBlocks(tx *wal.Txn, ino Ino) error {
	d := &fs.itab[ino]
	for i := 0; i < NumDirect; i++ {
		if d.Direct[i] != 0 {
			if err := fs.freeBlock(tx, d.Direct[i]); err != nil {
				return err
			}
			d.Direct[i] = 0
		}
	}
	freeIndirect := func(ptrBlock uint64) error {
		buf := make([]byte, blockdev.BlockSize)
		if err := fs.readBlock(tx, ptrBlock, buf); err != nil {
			return err
		}
		for j := 0; j < PtrsPerBlock; j++ {
			p := binary.LittleEndian.Uint64(buf[8*j:])
			if p != 0 {
				if err := fs.freeBlock(tx, p); err != nil {
					return err
				}
			}
		}
		return fs.freeBlock(tx, ptrBlock)
	}
	if d.Indirect != 0 {
		if err := freeIndirect(d.Indirect); err != nil {
			return err
		}
		d.Indirect = 0
	}
	if d.DblInd != 0 {
		buf := make([]byte, blockdev.BlockSize)
		if err := fs.readBlock(tx, d.DblInd, buf); err != nil {
			return err
		}
		for j := 0; j < PtrsPerBlock; j++ {
			p := binary.LittleEndian.Uint64(buf[8*j:])
			if p != 0 {
				if err := freeIndirect(p); err != nil {
					return err
				}
			}
		}
		if err := fs.freeBlock(tx, d.DblInd); err != nil {
			return err
		}
		d.DblInd = 0
	}
	return nil
}

// SecureFreeInode zeroes every data block of ino before releasing it. This
// is the "shred" variant used in ablation experiments; it defeats free-space
// residue but NOT journal residue (old images are already logged).
func (fs *FS) SecureFreeInode(ino Ino) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkIno(ino); err != nil {
		return err
	}
	d := &fs.itab[ino]
	if d.Mode == ModeTree && d.Size > 0 {
		return fmt.Errorf("%w: inode %d", ErrTreeNotEmpty, ino)
	}
	zero := make([]byte, blockdev.BlockSize)
	nblocks := (d.Size + blockdev.BlockSize - 1) / blockdev.BlockSize
	// Zero pass: direct device writes bypass the journal on purpose — a
	// journaled zero write would log the zeros, not remove old images, and
	// the point of this variant is to scrub home locations only.
	for bi := uint64(0); bi < nblocks; bi++ {
		phys, err := fs.bmapLocked(nil, ino, bi, false)
		if err != nil {
			return err
		}
		if phys == 0 {
			continue
		}
		if err := fs.dev.WriteBlock(phys, zero); err != nil {
			return err
		}
	}
	tx := fs.log.Begin()
	if err := fs.freeInodeBlocks(tx, ino); err != nil {
		tx.Abort()
		return err
	}
	fs.itab[ino] = dinode{}
	if err := fs.flushInode(tx, ino); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// Stat returns metadata for ino.
func (fs *FS) Stat(ino Ino) (Info, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkIno(ino); err != nil {
		return Info{}, err
	}
	d := fs.itab[ino]
	return Info{
		Ino:   ino,
		Mode:  d.Mode,
		Size:  d.Size,
		MTime: time.Unix(0, d.MTimeNano).UTC(),
		Tag:   d.Tag,
		Links: d.Links,
	}, nil
}

// SetTag replaces the tag of ino.
func (fs *FS) SetTag(ino Ino, tag string) error {
	if len(tag) > MaxTagLen {
		return fmt.Errorf("%w: %d bytes", ErrTagTooLong, len(tag))
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkIno(ino); err != nil {
		return err
	}
	fs.itab[ino].Tag = tag
	tx := fs.log.Begin()
	if err := fs.flushInode(tx, ino); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// bmapLocked maps file-relative block bi of ino to a device block. With
// alloc, missing blocks (and indirect blocks) are allocated inside tx.
// Returns 0 for a hole when alloc is false.
func (fs *FS) bmapLocked(tx *wal.Txn, ino Ino, bi uint64, alloc bool) (uint64, error) {
	d := &fs.itab[ino]
	if bi < NumDirect {
		if d.Direct[bi] == 0 && alloc {
			b, err := fs.allocBlock(tx)
			if err != nil {
				return 0, err
			}
			d.Direct[bi] = b
		}
		return d.Direct[bi], nil
	}
	bi -= NumDirect

	// loadPtr reads slot within ptrBlock, allocating through it if needed.
	loadPtr := func(ptrBlock uint64, slot uint64) (uint64, error) {
		buf := make([]byte, blockdev.BlockSize)
		if err := fs.readBlock(tx, ptrBlock, buf); err != nil {
			return 0, err
		}
		p := binary.LittleEndian.Uint64(buf[8*slot:])
		if p == 0 && alloc {
			b, err := fs.allocBlock(tx)
			if err != nil {
				return 0, err
			}
			binary.LittleEndian.PutUint64(buf[8*slot:], b)
			if err := tx.Write(ptrBlock, buf); err != nil {
				return 0, err
			}
			p = b
		}
		return p, nil
	}

	if bi < PtrsPerBlock {
		if d.Indirect == 0 {
			if !alloc {
				return 0, nil
			}
			b, err := fs.allocBlock(tx)
			if err != nil {
				return 0, err
			}
			// Fresh pointer block must be zeroed in the txn image.
			if err := tx.Write(b, make([]byte, blockdev.BlockSize)); err != nil {
				return 0, err
			}
			d.Indirect = b
		}
		return loadPtr(d.Indirect, bi)
	}
	bi -= PtrsPerBlock
	if bi >= PtrsPerBlock*PtrsPerBlock {
		return 0, fmt.Errorf("%w: block index %d", ErrFileTooBig, bi)
	}
	if d.DblInd == 0 {
		if !alloc {
			return 0, nil
		}
		b, err := fs.allocBlock(tx)
		if err != nil {
			return 0, err
		}
		if err := tx.Write(b, make([]byte, blockdev.BlockSize)); err != nil {
			return 0, err
		}
		d.DblInd = b
	}
	l1Slot, l2Slot := bi/PtrsPerBlock, bi%PtrsPerBlock
	l1, err := loadPtrBlock(fs, tx, d.DblInd, l1Slot, alloc)
	if err != nil {
		return 0, err
	}
	if l1 == 0 {
		return 0, nil
	}
	return loadPtr(l1, l2Slot)
}

// loadPtrBlock resolves (and with alloc, creates) the level-1 pointer block
// at slot within the double-indirect block dbl. New pointer blocks are
// zero-initialized inside the transaction.
func loadPtrBlock(fs *FS, tx *wal.Txn, dbl, slot uint64, alloc bool) (uint64, error) {
	buf := make([]byte, blockdev.BlockSize)
	if err := fs.readBlock(tx, dbl, buf); err != nil {
		return 0, err
	}
	p := binary.LittleEndian.Uint64(buf[8*slot:])
	if p == 0 && alloc {
		b, err := fs.allocBlock(tx)
		if err != nil {
			return 0, err
		}
		if err := tx.Write(b, make([]byte, blockdev.BlockSize)); err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint64(buf[8*slot:], b)
		if err := tx.Write(dbl, buf); err != nil {
			return 0, err
		}
		p = b
	}
	return p, nil
}

// WriteAt writes p at byte offset off in ino, extending the file as needed.
// Large writes are split across multiple journal transactions, each of which
// is individually atomic.
func (fs *FS) WriteAt(ino Ino, off uint64, p []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkIno(ino); err != nil {
		return 0, err
	}
	if (off+uint64(len(p))+blockdev.BlockSize-1)/blockdev.BlockSize > MaxFileBlocks {
		return 0, ErrFileTooBig
	}
	written := 0
	for written < len(p) {
		tx := fs.log.Begin()
		chunkBlocks := 0
		for written < len(p) && chunkBlocks < fs.maxChunk {
			cur := off + uint64(written)
			bi := cur / blockdev.BlockSize
			bo := cur % blockdev.BlockSize
			n := blockdev.BlockSize - bo
			if int(n) > len(p)-written {
				n = uint64(len(p) - written)
			}
			phys, err := fs.bmapLocked(tx, ino, bi, true)
			if err != nil {
				tx.Abort()
				return written, err
			}
			buf := make([]byte, blockdev.BlockSize)
			if bo != 0 || n != blockdev.BlockSize {
				if err := fs.readBlock(tx, phys, buf); err != nil {
					tx.Abort()
					return written, err
				}
			}
			copy(buf[bo:], p[written:written+int(n)])
			if err := tx.Write(phys, buf); err != nil {
				tx.Abort()
				return written, err
			}
			written += int(n)
			chunkBlocks++
		}
		d := &fs.itab[ino]
		if end := off + uint64(written); end > d.Size {
			d.Size = end
		}
		d.MTimeNano = fs.clock.Now().UnixNano()
		if err := fs.flushInode(tx, ino); err != nil {
			tx.Abort()
			return written, err
		}
		if err := tx.Commit(); err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadAt reads into p from byte offset off. It returns the number of bytes
// read; reads beyond the file size are truncated, and a read starting at or
// past the end returns 0 with no error (the caller checks Size via Stat).
func (fs *FS) ReadAt(ino Ino, off uint64, p []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkIno(ino); err != nil {
		return 0, err
	}
	d := &fs.itab[ino]
	if off >= d.Size {
		return 0, nil
	}
	if off+uint64(len(p)) > d.Size {
		p = p[:d.Size-off]
	}
	read := 0
	buf := make([]byte, blockdev.BlockSize)
	for read < len(p) {
		cur := off + uint64(read)
		bi := cur / blockdev.BlockSize
		bo := cur % blockdev.BlockSize
		n := blockdev.BlockSize - bo
		if int(n) > len(p)-read {
			n = uint64(len(p) - read)
		}
		phys, err := fs.bmapLocked(nil, ino, bi, false)
		if err != nil {
			return read, err
		}
		if phys == 0 {
			// Hole: zeros.
			for i := uint64(0); i < n; i++ {
				p[read+int(i)] = 0
			}
		} else {
			if err := fs.dev.ReadBlock(phys, buf); err != nil {
				return read, err
			}
			copy(p[read:read+int(n)], buf[bo:bo+n])
		}
		read += int(n)
	}
	return read, nil
}

// Truncate shrinks ino to size (growing is done by WriteAt). Whole blocks
// past the new end are freed; the partial tail block is not scrubbed.
func (fs *FS) Truncate(ino Ino, size uint64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkIno(ino); err != nil {
		return err
	}
	d := &fs.itab[ino]
	if size >= d.Size {
		return nil
	}
	keep := (size + blockdev.BlockSize - 1) / blockdev.BlockSize
	total := (d.Size + blockdev.BlockSize - 1) / blockdev.BlockSize
	tx := fs.log.Begin()
	for bi := keep; bi < total; bi++ {
		phys, err := fs.bmapLocked(tx, ino, bi, false)
		if err != nil {
			tx.Abort()
			return err
		}
		if phys == 0 {
			continue
		}
		if err := fs.freeBlock(tx, phys); err != nil {
			tx.Abort()
			return err
		}
		if err := fs.clearMapping(tx, ino, bi); err != nil {
			tx.Abort()
			return err
		}
	}
	d.Size = size
	d.MTimeNano = fs.clock.Now().UnixNano()
	if err := fs.flushInode(tx, ino); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// clearMapping zeroes the pointer to file block bi (direct or indirect).
// Indirect pointer blocks are left allocated for simplicity; FreeInode
// reclaims them.
func (fs *FS) clearMapping(tx *wal.Txn, ino Ino, bi uint64) error {
	d := &fs.itab[ino]
	if bi < NumDirect {
		d.Direct[bi] = 0
		return nil
	}
	bi -= NumDirect
	clearSlot := func(ptrBlock, slot uint64) error {
		buf := make([]byte, blockdev.BlockSize)
		if err := fs.readBlock(tx, ptrBlock, buf); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf[8*slot:], 0)
		return tx.Write(ptrBlock, buf)
	}
	if bi < PtrsPerBlock {
		if d.Indirect == 0 {
			return nil
		}
		return clearSlot(d.Indirect, bi)
	}
	bi -= PtrsPerBlock
	if d.DblInd == 0 {
		return nil
	}
	l1, err := loadPtrBlock(fs, tx, d.DblInd, bi/PtrsPerBlock, false)
	if err != nil || l1 == 0 {
		return err
	}
	return clearSlot(l1, bi%PtrsPerBlock)
}

// FreeBlocks reports how many data blocks are unallocated.
func (fs *FS) FreeBlocks() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var free uint64
	for b := fs.sb.DataStart; b < fs.sb.NBlocks; b++ {
		if fs.bitmap[b/8]&(1<<(b%8)) == 0 {
			free++
		}
	}
	return free
}
