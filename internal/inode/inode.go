// Package inode implements a uFS-style inode layer over a simulated block
// device, with write-ahead journaling for crash consistency.
//
// The paper's prototype (§3) re-architects uFS, keeping "the implementation
// of the inode concept" and building two major inode trees on top of it for
// DBFS. This package is that kept layer: fixed-size on-disk inodes with
// direct, single-indirect and double-indirect block pointers, an allocation
// bitmap, and named parent→child links so inodes form trees. Both DBFS
// (internal/dbfs) and the traditional file-based filesystem
// (internal/plainfs) are built on it.
//
// Concurrency follows Biscuit's filesystem: each live inode is owned by a
// daemon goroutine (an actor) serving requests over a channel, so operations
// on different inodes run in parallel while operations on one inode
// serialize without any big lock. A shared write-back block buffer cache
// (blockdev.Cached) sits between the actors (and the journal's checkpoint
// writes) and the device, absorbing repeated block reads. See DESIGN.md
// "Actor FS core & buffer cache".
//
// Deliberate realism: freeing an inode releases its blocks but does NOT zero
// them, and every mutation's pre-/post-images flow through the journal. Both
// behaviours match production filesystems and are exactly why a file-based
// OS below a "GDPR-compliant" database can violate the right to be forgotten
// (DESIGN.md F2V1). rgpdOS's DBFS neutralizes them by storing only
// ciphertext in inodes (see internal/cryptoshred).
package inode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockdev"
	"repro/internal/simclock"
	"repro/internal/wal"
)

// Mode classifies an inode.
type Mode uint32

// Inode modes. ModeFree marks an unallocated table slot; its zero value is
// meaningful on disk, so the enum starts at zero deliberately.
const (
	ModeFree Mode = iota
	ModeFile
	ModeTree
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeFree:
		return "free"
	case ModeFile:
		return "file"
	case ModeTree:
		return "tree"
	default:
		return fmt.Sprintf("mode(%d)", uint32(m))
	}
}

// Ino is an inode number. 0 is never a valid inode; the root tree inode is 1.
type Ino uint64

// Layout constants.
const (
	magic   uint32 = 0x75465321 // "uFS!"
	version uint32 = 1

	// InodeSize is the on-disk inode record size.
	InodeSize = 256
	// InodesPerBlock is how many inodes fit in one device block.
	InodesPerBlock = blockdev.BlockSize / InodeSize

	// NumDirect is the number of direct block pointers per inode.
	NumDirect = 12
	// PtrsPerBlock is the number of block pointers in an indirect block.
	PtrsPerBlock = blockdev.BlockSize / 8

	// MaxTagLen is the longest tag string an inode can carry. DBFS uses
	// tags to label inode roles (schema, subject, record, membrane).
	MaxTagLen = 80

	// MaxFileBlocks is the per-inode capacity in blocks.
	MaxFileBlocks = NumDirect + PtrsPerBlock + PtrsPerBlock*PtrsPerBlock

	// RootIno is the inode number of the root tree, created by Format.
	RootIno Ino = 1

	// blocksPerTxnChunk bounds how many data blocks a single journal
	// transaction carries during large writes; bigger writes are split
	// into multiple transactions.
	blocksPerTxnChunk = 64

	// DefaultCacheBlocks is the buffer-cache capacity (in blocks) used
	// when Options.CacheBlocks is zero. 512 blocks = 2 MiB per FS
	// instance.
	DefaultCacheBlocks = 512
)

// Sentinel errors.
var (
	// ErrNotFormatted reports a device without a valid superblock.
	ErrNotFormatted = errors.New("inode: device is not formatted")
	// ErrBadInode reports an out-of-range or unallocated inode number.
	ErrBadInode = errors.New("inode: invalid inode")
	// ErrNoSpace reports block or inode exhaustion.
	ErrNoSpace = errors.New("inode: no space left on device")
	// ErrNotTree reports a tree operation on a non-tree inode.
	ErrNotTree = errors.New("inode: not a tree inode")
	// ErrChildExists reports an AddChild with a duplicate name.
	ErrChildExists = errors.New("inode: child name already exists")
	// ErrChildNotFound reports a missing child name.
	ErrChildNotFound = errors.New("inode: child not found")
	// ErrTagTooLong reports a tag above MaxTagLen.
	ErrTagTooLong = errors.New("inode: tag too long")
	// ErrFileTooBig reports a write beyond MaxFileBlocks.
	ErrFileTooBig = errors.New("inode: file exceeds maximum size")
	// ErrTreeNotEmpty reports freeing a tree that still has children.
	ErrTreeNotEmpty = errors.New("inode: tree has children")
)

// Info is the stat result for an inode.
type Info struct {
	Ino   Ino
	Mode  Mode
	Size  uint64
	MTime time.Time
	Tag   string
	// Links is the number of tree links pointing at this inode.
	Links uint32
}

// superblock describes the device layout. It lives in block 0.
type superblock struct {
	NBlocks       uint64
	NInodes       uint64
	BitmapStart   uint64
	BitmapBlocks  uint64
	InodeStart    uint64
	InodeBlocks   uint64
	JournalStart  uint64
	JournalBlocks uint64
	DataStart     uint64
}

// dinode is the in-memory form of an on-disk inode.
type dinode struct {
	Mode      Mode
	Links     uint32
	Size      uint64
	MTimeNano int64
	Direct    [NumDirect]uint64
	Indirect  uint64
	DblInd    uint64
	Tag       string
}

// Options configures Format.
type Options struct {
	// NInodes is the inode table capacity. Default 4096.
	NInodes uint64
	// JournalBlocks is the journal region size. Default 256.
	JournalBlocks uint64
	// Clock supplies mtimes. Default simclock.Real.
	Clock simclock.Clock
	// CommitWindow is how long the journal committer waits for more
	// transactions before flushing a commit group (0 drains immediately;
	// see wal.Log.Configure).
	CommitWindow time.Duration
	// GroupMaxBatch bounds transactions per commit group (0 = the wal
	// default, 1 disables group commit).
	GroupMaxBatch int
	// CacheBlocks bounds the shared write-back block buffer cache placed
	// between the inode layer (journal included) and the device, in
	// blocks. 0 selects DefaultCacheBlocks; negative disables the cache
	// entirely (the SC5 ablation baseline).
	CacheBlocks int
	// SerialOps starts the filesystem in the pre-actor serial ablation
	// mode (see SetSerialOps) — the SC5 baseline configures it here
	// instead of flipping the mode after Format.
	SerialOps bool
}

func (o *Options) withDefaults() {
	if o.NInodes == 0 {
		o.NInodes = 4096
	}
	if o.JournalBlocks == 0 {
		o.JournalBlocks = 256
	}
	if o.Clock == nil {
		o.Clock = simclock.Real{}
	}
}

// FS is a mounted inode filesystem. All methods are safe for concurrent
// use.
//
// Ownership model (Biscuit idaemon style): every operation on an inode runs
// as a request served by that inode's daemon goroutine, so per-inode state
// (the working dinode copy, its block pointers, its data blocks) has exactly
// one writer at a time with no lock held across device I/O. Metadata shared
// between inodes — the allocation bitmap and the inode table array — is
// guarded by metaMu; helpers suffixed *Locked require it, and the suffix is
// deliberate so a call site without the lock reads as wrong in review.
// metaMu is only ever held for in-memory staging (bitmap scans, table
// publishes, encoding blocks into a transaction), never across device
// reads, device writes, or durability waits.
//
// Durability: mutations stage a journal transaction under actor ownership,
// enqueue it inside one metaMu critical section (see mtx.enqueue for why
// snapshot order must equal enqueue order), and wait for the commit group
// outside every lock — which is what lets concurrent writers coalesce into
// WAL commit groups. Reads go through the journal's in-flight overlay
// (wal.Log.ReadThrough), then the block buffer cache, then the device.
//
// Lock ordering: actor ownership (or serialMu in the ablation mode) →
// metaMu → wal internals → buffer cache. Multi-inode operations acquire
// actors in ascending inode order only (see exec2), so ownership cycles
// cannot form.
type FS struct {
	dev   blockdev.Device // I/O path: the buffer cache when enabled, else raw
	raw   blockdev.Device // the device handed to Format/Mount, below the cache
	clock simclock.Clock
	sb    superblock
	log   *wal.Log
	// maxChunk bounds data blocks per journal transaction; it is derived
	// from the journal size so one transaction (data + staged metadata)
	// always fits the region.
	maxChunk int

	// metaMu guards the shared metadata mirrors: bitmap, itab, and every
	// transaction's stage-and-enqueue critical section.
	metaMu sync.Mutex
	bitmap []byte // in-memory block allocation bitmap, one bit per device block
	itab   []dinode

	// actorsMu guards the live-actor registry and each daemon's inflight
	// count.
	actorsMu sync.Mutex
	actors   map[Ino]*idaemon

	// serialOps switches every operation onto one big mutex instead of
	// the actors — the pre-actor behaviour, kept as a measurable ablation
	// baseline for SC5.
	serialOps atomic.Bool
	serialMu  sync.Mutex
}

// chunkLimit derives the per-transaction data-block budget from the journal
// size, reserving headroom for descriptor/commit blocks and staged metadata
// (inode table, bitmap, and indirect blocks).
func chunkLimit(journalBlocks uint64) int {
	const metaHeadroom = 10
	limit := int(journalBlocks) - metaHeadroom
	if limit < 1 {
		limit = 1
	}
	if limit > blocksPerTxnChunk {
		limit = blocksPerTxnChunk
	}
	return limit
}

// wrapCache places the buffer cache over dev according to opts.CacheBlocks,
// exempting the journal region (journal blocks are written once and
// replayed rarely; letting them churn the LRU would evict the hot metadata
// the cache exists to keep).
func wrapCache(dev blockdev.Device, cacheBlocks int, sb superblock) (blockdev.Device, error) {
	if cacheBlocks < 0 {
		return dev, nil
	}
	if cacheBlocks == 0 {
		cacheBlocks = DefaultCacheBlocks
	}
	bc, err := blockdev.NewCached(dev, cacheBlocks)
	if err != nil {
		return nil, err
	}
	bc.SetBypass(sb.JournalStart, sb.JournalBlocks)
	return bc, nil
}

// Format initializes dev with an empty filesystem and returns it mounted.
func Format(dev blockdev.Device, opts Options) (*FS, error) {
	opts.withDefaults()
	n := dev.NumBlocks()
	bitmapBlocks := (n/8 + blockdev.BlockSize - 1) / blockdev.BlockSize
	inodeBlocks := (opts.NInodes + InodesPerBlock - 1) / InodesPerBlock
	sb := superblock{
		NBlocks:       n,
		NInodes:       inodeBlocks * InodesPerBlock,
		BitmapStart:   1,
		BitmapBlocks:  bitmapBlocks,
		InodeStart:    1 + bitmapBlocks,
		InodeBlocks:   inodeBlocks,
		JournalStart:  1 + bitmapBlocks + inodeBlocks,
		JournalBlocks: opts.JournalBlocks,
	}
	sb.DataStart = sb.JournalStart + sb.JournalBlocks
	if sb.DataStart+8 > n {
		return nil, fmt.Errorf("%w: device too small (%d blocks, need > %d)", ErrNoSpace, n, sb.DataStart+8)
	}

	io, err := wrapCache(dev, opts.CacheBlocks, sb)
	if err != nil {
		return nil, fmt.Errorf("inode: buffer cache: %w", err)
	}
	fs := &FS{
		dev:      io,
		raw:      dev,
		clock:    opts.Clock,
		sb:       sb,
		bitmap:   make([]byte, bitmapBlocks*blockdev.BlockSize),
		itab:     make([]dinode, sb.NInodes),
		maxChunk: chunkLimit(sb.JournalBlocks),
		actors:   make(map[Ino]*idaemon),
	}
	fs.serialOps.Store(opts.SerialOps)
	// Mark metadata region (everything before DataStart) as allocated.
	for b := uint64(0); b < sb.DataStart; b++ {
		fs.bitmap[b/8] |= 1 << (b % 8)
	}

	// Persist superblock directly (pre-journal bootstrap write).
	buf := make([]byte, blockdev.BlockSize)
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], version)
	enc := buf[8:]
	for i, v := range []uint64{sb.NBlocks, sb.NInodes, sb.BitmapStart, sb.BitmapBlocks,
		sb.InodeStart, sb.InodeBlocks, sb.JournalStart, sb.JournalBlocks, sb.DataStart} {
		binary.LittleEndian.PutUint64(enc[8*i:], v)
	}
	if err := io.WriteBlock(0, buf); err != nil {
		return nil, fmt.Errorf("inode: write superblock: %w", err)
	}
	// Persist initial bitmap.
	for i := uint64(0); i < bitmapBlocks; i++ {
		if err := io.WriteBlock(sb.BitmapStart+i, fs.bitmap[i*blockdev.BlockSize:(i+1)*blockdev.BlockSize]); err != nil {
			return nil, fmt.Errorf("inode: write bitmap: %w", err)
		}
	}
	// Persist empty inode table.
	zero := make([]byte, blockdev.BlockSize)
	for i := uint64(0); i < inodeBlocks; i++ {
		if err := io.WriteBlock(sb.InodeStart+i, zero); err != nil {
			return nil, fmt.Errorf("inode: write inode table: %w", err)
		}
	}
	if err := io.Sync(); err != nil {
		return nil, fmt.Errorf("inode: sync format: %w", err)
	}

	log, err := wal.Open(io, sb.JournalStart, sb.JournalBlocks)
	if err != nil {
		return nil, fmt.Errorf("inode: open journal: %w", err)
	}
	log.Configure(opts.CommitWindow, opts.GroupMaxBatch)
	fs.log = log

	// Create the root tree inode (ino 1) through the normal journaled path.
	root, err := fs.AllocInode(ModeTree, "root")
	if err != nil {
		return nil, fmt.Errorf("inode: create root: %w", err)
	}
	if root != RootIno {
		return nil, fmt.Errorf("inode: root allocated as %d, want %d", root, RootIno)
	}
	return fs, nil
}

// Mount opens a previously formatted device: it validates the superblock,
// replays the journal, and loads the allocation bitmap and inode table. The
// buffer cache is enabled at DefaultCacheBlocks (Mount predates the cache
// option and keeps its signature).
func Mount(dev blockdev.Device, clock simclock.Clock) (*FS, error) {
	if clock == nil {
		clock = simclock.Real{}
	}
	buf := make([]byte, blockdev.BlockSize)
	if err := dev.ReadBlock(0, buf); err != nil {
		return nil, fmt.Errorf("inode: read superblock: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != magic {
		return nil, ErrNotFormatted
	}
	var sb superblock
	enc := buf[8:]
	vals := make([]uint64, 9)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint64(enc[8*i:])
	}
	sb.NBlocks, sb.NInodes = vals[0], vals[1]
	sb.BitmapStart, sb.BitmapBlocks = vals[2], vals[3]
	sb.InodeStart, sb.InodeBlocks = vals[4], vals[5]
	sb.JournalStart, sb.JournalBlocks = vals[6], vals[7]
	sb.DataStart = vals[8]

	io, err := wrapCache(dev, 0, sb)
	if err != nil {
		return nil, fmt.Errorf("inode: buffer cache: %w", err)
	}
	log, err := wal.Open(io, sb.JournalStart, sb.JournalBlocks)
	if err != nil {
		return nil, fmt.Errorf("inode: open journal: %w", err)
	}
	// Recovery replays through the cache; wal.Recover ends with a device
	// Sync, which flushes the replayed home images to the raw device
	// before Mount returns.
	if _, err := log.Recover(); err != nil {
		return nil, fmt.Errorf("inode: journal recovery: %w", err)
	}

	fs := &FS{
		dev:      io,
		raw:      dev,
		clock:    clock,
		sb:       sb,
		log:      log,
		bitmap:   make([]byte, sb.BitmapBlocks*blockdev.BlockSize),
		itab:     make([]dinode, sb.NInodes),
		maxChunk: chunkLimit(sb.JournalBlocks),
		actors:   make(map[Ino]*idaemon),
	}
	for i := uint64(0); i < sb.BitmapBlocks; i++ {
		if err := io.ReadBlock(sb.BitmapStart+i, fs.bitmap[i*blockdev.BlockSize:(i+1)*blockdev.BlockSize]); err != nil {
			return nil, fmt.Errorf("inode: read bitmap: %w", err)
		}
	}
	for i := uint64(0); i < sb.InodeBlocks; i++ {
		if err := io.ReadBlock(sb.InodeStart+i, buf); err != nil {
			return nil, fmt.Errorf("inode: read inode table: %w", err)
		}
		for j := 0; j < InodesPerBlock; j++ {
			idx := i*InodesPerBlock + uint64(j)
			if idx >= sb.NInodes {
				break
			}
			fs.itab[idx] = decodeInode(buf[j*InodeSize : (j+1)*InodeSize])
		}
	}
	return fs, nil
}

// Device returns the raw underlying block device, below the buffer cache
// (used by residue-scanning experiments and by the IO-driver kernel
// wiring).
func (fs *FS) Device() blockdev.Device { return fs.raw }

// JournalRegion reports the journal block range for residue attribution.
func (fs *FS) JournalRegion() (start, length uint64) {
	return fs.sb.JournalStart, fs.sb.JournalBlocks
}

// JournalStats exposes the journal counters.
func (fs *FS) JournalStats() wal.Stats { return fs.log.Stats() }

// CacheStats reports the device counters as seen through the buffer cache:
// hit/miss/eviction/writeback counts merged with the underlying device
// stats. With the cache disabled the cache counters are zero.
func (fs *FS) CacheStats() blockdev.Stats { return fs.dev.Stats() }

// ConfigureJournal sets the group-commit parameters on a mounted
// filesystem (see wal.Log.Configure). Format applies Options.CommitWindow
// and GroupMaxBatch itself; Mount cannot take options without breaking its
// signature, so remount paths that need a tuned window — or the
// group-commit-disabled ablation baseline — call this right after Mount.
// Safe at runtime: the journal re-reads both parameters per commit group.
//
// Deprecated: when the filesystem is owned by a core.System, tune it
// through System.ApplyTuning (core.Tuning.CommitWindow/GroupMaxBatch) so
// the tuning snapshot and the control plane stay coherent. Direct use
// remains correct for standalone FS instances.
func (fs *FS) ConfigureJournal(window time.Duration, maxBatch int) {
	fs.log.Configure(window, maxBatch)
}

// JournalConfig reports the current group-commit parameters.
func (fs *FS) JournalConfig() (window time.Duration, maxBatch int) {
	return fs.log.Config()
}

// SetSerialOps switches the filesystem into the pre-actor ablation mode:
// every operation's staging phase (device reads included) serializes under
// one mutex, reproducing the old single-fs.mu behaviour for baseline
// measurements (SC5). Durability waits still happen outside the lock, as
// they always did. Switch only while the filesystem is idle.
//
// Deprecated: when the filesystem is owned by a core.System, toggle it
// through System.ApplyTuning (core.Tuning.SerialOps); a standalone
// instance that wants the mode from the start sets Options.SerialOps at
// Format instead of flipping it afterwards.
func (fs *FS) SetSerialOps(on bool) { fs.serialOps.Store(on) }

// SerialOps reports whether the serial-ablation mode is on.
func (fs *FS) SerialOps() bool { return fs.serialOps.Load() }

// UsedBlocks reports how many device blocks are currently allocated
// (metadata region included) — the footprint number the cold-tier
// experiment compares across configurations.
func (fs *FS) UsedBlocks() uint64 {
	fs.metaMu.Lock()
	defer fs.metaMu.Unlock()
	var n uint64
	for _, b := range fs.bitmap {
		n += uint64(bits.OnesCount8(b))
	}
	return n
}

// --- actor machinery ---

// idaemon is one live inode's daemon goroutine: requests arrive over ch and
// are served strictly in order, so the daemon's inode has exactly one
// mutator at a time. inflight counts requests that have claimed the daemon
// (ensured) but not yet finished; it is guarded by fs.actorsMu.
type idaemon struct {
	ino      Ino
	ch       chan *ireq
	inflight int
}

// ireq is one request to an inode daemon.
type ireq struct {
	fn   func()
	done chan struct{}
}

// ensure returns ino's daemon, spawning one if the inode has no live actor,
// and claims one inflight slot so the daemon cannot park before this
// request is served (Biscuit's idaemon_ensure).
func (fs *FS) ensure(ino Ino) *idaemon {
	fs.actorsMu.Lock()
	d := fs.actors[ino]
	if d == nil {
		d = &idaemon{ino: ino, ch: make(chan *ireq)}
		fs.actors[ino] = d
		go fs.serve(d)
	}
	d.inflight++
	fs.actorsMu.Unlock()
	return d
}

// serve is the daemon loop: serve a request, release its claim, and park
// (deregister and exit) once no claimed requests remain. Claims are taken
// under actorsMu before the send, so a parked daemon can never strand a
// claimant: either the claim lands before the park decision (inflight > 0,
// the daemon keeps serving) or after the deregistration (the claimant
// spawns a fresh daemon).
func (fs *FS) serve(d *idaemon) {
	for req := range d.ch {
		req.fn()
		fs.actorsMu.Lock()
		d.inflight--
		parked := d.inflight == 0
		if parked {
			if fs.actors[d.ino] == d {
				delete(fs.actors, d.ino)
			}
		}
		fs.actorsMu.Unlock()
		// Park bookkeeping happens before the completion signal so a
		// sequential caller observes a fully drained registry.
		close(req.done)
		if parked {
			return
		}
	}
}

// exec runs fn under ino's actor (or under serialMu in the ablation mode)
// and returns when it has completed.
func (fs *FS) exec(ino Ino, fn func()) {
	if fs.serialOps.Load() {
		fs.serialMu.Lock()
		fn()
		fs.serialMu.Unlock()
		return
	}
	d := fs.ensure(ino)
	req := &ireq{fn: fn, done: make(chan struct{})}
	d.ch <- req
	<-req.done
}

// exec2 runs fn while holding BOTH inodes' actors. Ownership is always
// acquired in ascending inode order — the lower actor's request forwards
// into the higher actor — so a daemon only ever waits on a strictly higher
// inode and ownership cycles (deadlocks) cannot form, whatever the callers'
// argument order.
func (fs *FS) exec2(a, b Ino, fn func()) {
	if a == b {
		fs.exec(a, fn)
		return
	}
	if fs.serialOps.Load() {
		fs.serialMu.Lock()
		fn()
		fs.serialMu.Unlock()
		return
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	fs.exec(lo, func() { fs.exec(hi, fn) })
}

// LiveActors reports how many inode daemons are currently running (test and
// introspection hook for the park lifecycle).
func (fs *FS) LiveActors() int {
	fs.actorsMu.Lock()
	defer fs.actorsMu.Unlock()
	return len(fs.actors)
}

// --- inode encoding ---

func encodeInode(d dinode, out []byte) {
	binary.LittleEndian.PutUint32(out[0:], uint32(d.Mode))
	binary.LittleEndian.PutUint32(out[4:], d.Links)
	binary.LittleEndian.PutUint64(out[8:], d.Size)
	binary.LittleEndian.PutUint64(out[16:], uint64(d.MTimeNano))
	for i := 0; i < NumDirect; i++ {
		binary.LittleEndian.PutUint64(out[24+8*i:], d.Direct[i])
	}
	binary.LittleEndian.PutUint64(out[24+8*NumDirect:], d.Indirect)
	binary.LittleEndian.PutUint64(out[32+8*NumDirect:], d.DblInd)
	tagOff := 40 + 8*NumDirect
	binary.LittleEndian.PutUint16(out[tagOff:], uint16(len(d.Tag)))
	copy(out[tagOff+2:tagOff+2+MaxTagLen], d.Tag)
}

func decodeInode(in []byte) dinode {
	var d dinode
	d.Mode = Mode(binary.LittleEndian.Uint32(in[0:]))
	d.Links = binary.LittleEndian.Uint32(in[4:])
	d.Size = binary.LittleEndian.Uint64(in[8:])
	d.MTimeNano = int64(binary.LittleEndian.Uint64(in[16:]))
	for i := 0; i < NumDirect; i++ {
		d.Direct[i] = binary.LittleEndian.Uint64(in[24+8*i:])
	}
	d.Indirect = binary.LittleEndian.Uint64(in[24+8*NumDirect:])
	d.DblInd = binary.LittleEndian.Uint64(in[32+8*NumDirect:])
	tagOff := 40 + 8*NumDirect
	n := binary.LittleEndian.Uint16(in[tagOff:])
	if n > MaxTagLen {
		n = MaxTagLen
	}
	d.Tag = string(in[tagOff+2 : tagOff+2+int(n)])
	return d
}

// --- shared-metadata helpers ---
//
// Helpers suffixed *Locked require fs.metaMu; everything else here takes
// and releases it internally. None of them touch the device: metaMu covers
// in-memory staging only.

// rangeCheck rejects inode numbers outside the table. The superblock is
// immutable after mount, so no lock is needed.
func (fs *FS) rangeCheck(ino Ino) error {
	if ino == 0 || uint64(ino) >= fs.sb.NInodes {
		return fmt.Errorf("%w: %d", ErrBadInode, ino)
	}
	return nil
}

// loadInode snapshots ino's table slot. Every table-slot write happens
// under metaMu, so the copy is taken under it too; within an actor-owned
// operation the copy is then private until it is published back at enqueue.
func (fs *FS) loadInode(ino Ino) dinode {
	fs.metaMu.Lock()
	d := fs.itab[ino]
	fs.metaMu.Unlock()
	return d
}

// loadAlive snapshots ino's slot and rejects free slots.
func (fs *FS) loadAlive(ino Ino) (dinode, error) {
	d := fs.loadInode(ino)
	if d.Mode == ModeFree {
		return d, fmt.Errorf("%w: %d is free", ErrBadInode, ino)
	}
	return d, nil
}

// stageItabBlockLocked encodes inode-table block ib wholly from the
// in-memory table into tx. Unlike the old read-modify-write flush, no
// device read is needed: the table mirror is authoritative, and because
// every stage-and-enqueue happens in one metaMu critical section, snapshot
// order equals commit order — the journal can never flush a newer image of
// the block before an older one (see mtx.enqueue).
func (fs *FS) stageItabBlockLocked(tx *wal.Txn, ib uint64) error {
	buf := make([]byte, blockdev.BlockSize)
	base := ib * InodesPerBlock
	for j := uint64(0); j < InodesPerBlock; j++ {
		idx := base + j
		if idx >= fs.sb.NInodes {
			break
		}
		encodeInode(fs.itab[idx], buf[j*InodeSize:(j+1)*InodeSize])
	}
	return tx.Write(fs.sb.InodeStart+ib, buf)
}

// readBlock reads block n, preferring the image buffered in tx (a
// transaction observes its own writes), then any enqueued-but-not-yet-
// checkpointed image in the journal overlay, then the buffer cache, then
// the device. Runs without locks; the caller owns the relevant inode.
func (fs *FS) readBlock(tx *wal.Txn, n uint64, buf []byte) error {
	if tx != nil {
		if img, ok := tx.Read(n); ok {
			copy(buf, img)
			return nil
		}
	}
	return fs.log.ReadThrough(n, buf)
}

// --- metadata transactions ---

// pub is one working inode copy to publish into the table at enqueue.
type pub struct {
	ino Ino
	d   *dinode
}

// mtx wraps one journal transaction with the deferred shared-metadata
// bookkeeping that replaces staging under a big lock: block allocations
// claim their bitmap bit immediately (under a brief metaMu) so no
// concurrent transaction can hand the same block out twice, while block
// frees — the direction that can corrupt, not merely leak — are deferred
// entirely to the enqueue critical section.
type mtx struct {
	fs     *FS
	tx     *wal.Txn
	allocs []uint64
	frees  []uint64
}

func (fs *FS) begin() *mtx { return &mtx{fs: fs, tx: fs.log.Begin()} }

func (m *mtx) readBlock(n uint64, buf []byte) error { return m.fs.readBlock(m.tx, n, buf) }

// alloc claims a free data block. The bit is set in memory now, but the
// bitmap block is staged only at enqueue and the bit is released again if
// the transaction aborts. A crash can therefore expose a durable set bit
// whose transaction never committed — a space leak, never corruption.
func (m *mtx) alloc() (uint64, error) {
	fs := m.fs
	fs.metaMu.Lock()
	for b := fs.sb.DataStart; b < fs.sb.NBlocks; b++ {
		if fs.bitmap[b/8]&(1<<(b%8)) == 0 {
			fs.bitmap[b/8] |= 1 << (b % 8)
			fs.metaMu.Unlock()
			m.allocs = append(m.allocs, b)
			return b, nil
		}
	}
	fs.metaMu.Unlock()
	return 0, ErrNoSpace
}

// free schedules block b for release. Both the in-memory bit clear and the
// bitmap staging are deferred to enqueue: if the clear were visible
// earlier, a concurrent transaction could commit a bitmap image showing
// the block free while the transaction justifying the free is still torn,
// and a remount would double-allocate the block. The block contents are
// NOT zeroed — the same residue semantics as ext4.
func (m *mtx) free(b uint64) error {
	if b < m.fs.sb.DataStart || b >= m.fs.sb.NBlocks {
		return fmt.Errorf("inode: freeBlock %d outside data region", b)
	}
	m.frees = append(m.frees, b)
	return nil
}

// enqueue is the commit point of an operation: one metaMu critical section
// applies the deferred frees, stages every touched bitmap block and inode
// table block from the in-memory mirrors, publishes the working inode
// copies, and enqueues the transaction. Fusing snapshot and enqueue makes
// snapshot order equal commit order: the WAL flushes groups strictly in
// enqueue order and aborts wholesale on failure, so the newest durable
// image of a shared block always reflects every earlier published update,
// and an image captured "too early" by a later transaction can never
// become durable before its own transaction. On error the deferred frees
// are rolled back (still allocated, worst case a leak) and the returned
// error is the operation's outcome.
func (m *mtx) enqueue(pubs ...pub) (*wal.Ticket, error) {
	fs := m.fs
	fs.metaMu.Lock()
	defer fs.metaMu.Unlock()
	for _, b := range m.frees {
		fs.bitmap[b/8] &^= 1 << (b % 8)
	}
	rollbackFrees := func() {
		for _, b := range m.frees {
			fs.bitmap[b/8] |= 1 << (b % 8)
		}
	}
	bmBlocks := make(map[uint64]struct{})
	for _, b := range m.allocs {
		bmBlocks[(b/8)/blockdev.BlockSize] = struct{}{}
	}
	for _, b := range m.frees {
		bmBlocks[(b/8)/blockdev.BlockSize] = struct{}{}
	}
	for bm := range bmBlocks {
		start := bm * blockdev.BlockSize
		if err := m.tx.Write(fs.sb.BitmapStart+bm, fs.bitmap[start:start+blockdev.BlockSize]); err != nil {
			rollbackFrees()
			return nil, err
		}
	}
	itabBlocks := make(map[uint64]struct{})
	for _, p := range pubs {
		fs.itab[p.ino] = *p.d
		itabBlocks[uint64(p.ino)/InodesPerBlock] = struct{}{}
	}
	for ib := range itabBlocks {
		if err := fs.stageItabBlockLocked(m.tx, ib); err != nil {
			rollbackFrees()
			return nil, err
		}
	}
	tk, err := m.tx.Enqueue()
	if err != nil {
		rollbackFrees()
		return nil, err
	}
	return tk, nil
}

// abort abandons the transaction and releases any blocks it allocated.
func (m *mtx) abort() {
	m.tx.Abort()
	if len(m.allocs) > 0 {
		m.fs.metaMu.Lock()
		for _, b := range m.allocs {
			m.fs.bitmap[b/8] &^= 1 << (b % 8)
		}
		m.fs.metaMu.Unlock()
	}
	m.allocs, m.frees = nil, nil
}

// waitTickets waits for every enqueued chunk of a multi-transaction
// mutation, returning the first error. Must be called outside every lock
// and actor.
func waitTickets(tks []*wal.Ticket) error {
	_, err := waitChunks(tks)
	return err
}

// waitChunks waits for enqueued chunk tickets in order and reports how many
// flushed durably before the first failure (draining the rest so journal
// accounting stays consistent). Must be called outside every lock and
// actor.
func waitChunks(tks []*wal.Ticket) (ok int, err error) {
	for i, tk := range tks {
		if tk != nil {
			if werr := tk.Wait(); werr != nil {
				for _, rest := range tks[i+1:] {
					if rest != nil {
						_ = rest.Wait()
					}
				}
				return ok, werr
			}
		}
		ok = i + 1
	}
	return ok, nil
}

// --- public API ---

// AllocInode allocates a fresh inode of the given mode with an optional
// tag. The whole claim — slot scan, table write, staging, enqueue — is one
// metaMu critical section; no actor is involved because the slot has no
// owner until this returns.
func (fs *FS) AllocInode(mode Mode, tag string) (Ino, error) {
	if mode == ModeFree {
		return 0, fmt.Errorf("%w: cannot allocate ModeFree", ErrBadInode)
	}
	if len(tag) > MaxTagLen {
		return 0, fmt.Errorf("%w: %d bytes", ErrTagTooLong, len(tag))
	}
	serial := fs.serialOps.Load()
	if serial {
		fs.serialMu.Lock()
	}
	ino, tk, err := fs.claimInode(mode, tag)
	if serial {
		fs.serialMu.Unlock()
	}
	if err != nil {
		return 0, err
	}
	if err := tk.Wait(); err != nil {
		// Roll the in-memory allocation back so the slot is not leaked
		// for the rest of the mount — unless something linked the failed
		// inode while we waited.
		fs.metaMu.Lock()
		if fs.itab[ino].Links == 0 {
			fs.itab[ino] = dinode{}
		}
		fs.metaMu.Unlock()
		return 0, fmt.Errorf("inode: alloc %d: %w", ino, err)
	}
	return ino, nil
}

// claimInode scans for a free slot, claims it, and enqueues its table
// block. The durability wait is the caller's.
func (fs *FS) claimInode(mode Mode, tag string) (Ino, *wal.Ticket, error) {
	fs.metaMu.Lock()
	defer fs.metaMu.Unlock()
	for i := uint64(1); i < fs.sb.NInodes; i++ {
		if fs.itab[i].Mode != ModeFree {
			continue
		}
		fs.itab[i] = dinode{
			Mode:      mode,
			MTimeNano: fs.clock.Now().UnixNano(),
			Tag:       tag,
		}
		tx := fs.log.Begin()
		if err := fs.stageItabBlockLocked(tx, i/InodesPerBlock); err != nil {
			tx.Abort()
			fs.itab[i] = dinode{}
			return 0, nil, fmt.Errorf("inode: alloc %d: %w", i, err)
		}
		tk, err := tx.Enqueue()
		if err != nil {
			fs.itab[i] = dinode{}
			return 0, nil, fmt.Errorf("inode: alloc %d: %w", i, err)
		}
		return Ino(i), tk, nil
	}
	return 0, nil, fmt.Errorf("%w: inode table full", ErrNoSpace)
}

// FreeInode releases ino and all its data blocks. Tree inodes must be empty.
// Data blocks are not zeroed; see the package comment.
func (fs *FS) FreeInode(ino Ino) error {
	if err := fs.rangeCheck(ino); err != nil {
		return err
	}
	var (
		tk    *wal.Ticket
		opErr error
	)
	fs.exec(ino, func() {
		d, err := fs.loadAlive(ino)
		if err != nil {
			opErr = err
			return
		}
		if d.Mode == ModeTree && d.Size > 0 {
			opErr = fmt.Errorf("%w: inode %d", ErrTreeNotEmpty, ino)
			return
		}
		m := fs.begin()
		if err := fs.freeInodeBlocks(m, &d); err != nil {
			m.abort()
			opErr = err
			return
		}
		d = dinode{}
		tk, opErr = m.enqueue(pub{ino, &d})
		if opErr != nil {
			m.abort()
		}
	})
	if opErr != nil {
		return opErr
	}
	if tk != nil {
		return tk.Wait()
	}
	return nil
}

// freeInodeBlocks releases every data block mapped by the working copy d,
// clearing its pointers. The frees are deferred inside m; reads go through
// the transaction so the walk observes its own structure edits.
func (fs *FS) freeInodeBlocks(m *mtx, d *dinode) error {
	for i := 0; i < NumDirect; i++ {
		if d.Direct[i] != 0 {
			if err := m.free(d.Direct[i]); err != nil {
				return err
			}
			d.Direct[i] = 0
		}
	}
	freeIndirect := func(ptrBlock uint64) error {
		buf := make([]byte, blockdev.BlockSize)
		if err := m.readBlock(ptrBlock, buf); err != nil {
			return err
		}
		for j := 0; j < PtrsPerBlock; j++ {
			p := binary.LittleEndian.Uint64(buf[8*j:])
			if p != 0 {
				if err := m.free(p); err != nil {
					return err
				}
			}
		}
		return m.free(ptrBlock)
	}
	if d.Indirect != 0 {
		if err := freeIndirect(d.Indirect); err != nil {
			return err
		}
		d.Indirect = 0
	}
	if d.DblInd != 0 {
		buf := make([]byte, blockdev.BlockSize)
		if err := m.readBlock(d.DblInd, buf); err != nil {
			return err
		}
		for j := 0; j < PtrsPerBlock; j++ {
			p := binary.LittleEndian.Uint64(buf[8*j:])
			if p != 0 {
				if err := freeIndirect(p); err != nil {
					return err
				}
			}
		}
		if err := m.free(d.DblInd); err != nil {
			return err
		}
		d.DblInd = 0
	}
	return nil
}

// SecureFreeInode zeroes every data block of ino before releasing it. This
// is the "shred" variant used in ablation experiments; it defeats free-space
// residue but NOT journal residue (old images are already logged).
func (fs *FS) SecureFreeInode(ino Ino) error {
	if err := fs.rangeCheck(ino); err != nil {
		return err
	}
	var (
		tk    *wal.Ticket
		opErr error
	)
	fs.exec(ino, func() {
		// Drain the commit queue first: a queued checkpoint landing after
		// the zero pass would resurrect the very bytes this variant
		// scrubs. (The committer never needs this actor, so waiting here
		// cannot deadlock.)
		fs.log.Barrier()
		d, err := fs.loadAlive(ino)
		if err != nil {
			opErr = err
			return
		}
		if d.Mode == ModeTree && d.Size > 0 {
			opErr = fmt.Errorf("%w: inode %d", ErrTreeNotEmpty, ino)
			return
		}
		zero := make([]byte, blockdev.BlockSize)
		nblocks := (d.Size + blockdev.BlockSize - 1) / blockdev.BlockSize
		// Zero pass: direct device writes bypass the journal on purpose —
		// a journaled zero write would log the zeros, not remove old
		// images, and the point of this variant is to scrub home
		// locations only. Through the buffer cache these zeros are dirty
		// until the freeing transaction's commit group flushes; that
		// flush ends with a device Sync, which drains them to the raw
		// device before the durability wait below returns.
		for bi := uint64(0); bi < nblocks; bi++ {
			phys, err := fs.bmap(nil, &d, bi, false)
			if err != nil {
				opErr = err
				return
			}
			if phys == 0 {
				continue
			}
			if err := fs.dev.WriteBlock(phys, zero); err != nil {
				opErr = err
				return
			}
		}
		m := fs.begin()
		if err := fs.freeInodeBlocks(m, &d); err != nil {
			m.abort()
			opErr = err
			return
		}
		d = dinode{}
		tk, opErr = m.enqueue(pub{ino, &d})
		if opErr != nil {
			m.abort()
		}
	})
	if opErr != nil {
		return opErr
	}
	if tk != nil {
		return tk.Wait()
	}
	return nil
}

// Stat returns metadata for ino. It reads the table mirror directly (one
// metaMu snapshot) rather than queueing on the inode's actor: slot
// publishes are atomic under metaMu, so the snapshot is always a committed
// operation boundary.
func (fs *FS) Stat(ino Ino) (Info, error) {
	if err := fs.rangeCheck(ino); err != nil {
		return Info{}, err
	}
	d, err := fs.loadAlive(ino)
	if err != nil {
		return Info{}, err
	}
	return Info{
		Ino:   ino,
		Mode:  d.Mode,
		Size:  d.Size,
		MTime: time.Unix(0, d.MTimeNano).UTC(),
		Tag:   d.Tag,
		Links: d.Links,
	}, nil
}

// SetTag replaces the tag of ino.
func (fs *FS) SetTag(ino Ino, tag string) error {
	if len(tag) > MaxTagLen {
		return fmt.Errorf("%w: %d bytes", ErrTagTooLong, len(tag))
	}
	if err := fs.rangeCheck(ino); err != nil {
		return err
	}
	var (
		tk    *wal.Ticket
		opErr error
	)
	fs.exec(ino, func() {
		d, err := fs.loadAlive(ino)
		if err != nil {
			opErr = err
			return
		}
		d.Tag = tag
		m := fs.begin()
		tk, opErr = m.enqueue(pub{ino, &d})
		if opErr != nil {
			m.abort()
		}
	})
	if opErr != nil {
		return opErr
	}
	if tk != nil {
		return tk.Wait()
	}
	return nil
}

// bmap maps file-relative block bi of the working copy d to a device
// block. With alloc, missing blocks (and indirect blocks) are allocated
// inside m's transaction (m may be nil only when alloc is false). Returns
// 0 for a hole when alloc is false. The caller owns d's inode.
func (fs *FS) bmap(m *mtx, d *dinode, bi uint64, alloc bool) (uint64, error) {
	var tx *wal.Txn
	if m != nil {
		tx = m.tx
	}
	if bi < NumDirect {
		if d.Direct[bi] == 0 && alloc {
			b, err := m.alloc()
			if err != nil {
				return 0, err
			}
			d.Direct[bi] = b
		}
		return d.Direct[bi], nil
	}
	bi -= NumDirect

	// loadPtr reads slot within ptrBlock, allocating through it if needed.
	loadPtr := func(ptrBlock uint64, slot uint64) (uint64, error) {
		buf := make([]byte, blockdev.BlockSize)
		if err := fs.readBlock(tx, ptrBlock, buf); err != nil {
			return 0, err
		}
		p := binary.LittleEndian.Uint64(buf[8*slot:])
		if p == 0 && alloc {
			b, err := m.alloc()
			if err != nil {
				return 0, err
			}
			binary.LittleEndian.PutUint64(buf[8*slot:], b)
			if err := tx.Write(ptrBlock, buf); err != nil {
				return 0, err
			}
			p = b
		}
		return p, nil
	}

	if bi < PtrsPerBlock {
		if d.Indirect == 0 {
			if !alloc {
				return 0, nil
			}
			b, err := m.alloc()
			if err != nil {
				return 0, err
			}
			// Fresh pointer block must be zeroed in the txn image.
			if err := tx.Write(b, make([]byte, blockdev.BlockSize)); err != nil {
				return 0, err
			}
			d.Indirect = b
		}
		return loadPtr(d.Indirect, bi)
	}
	bi -= PtrsPerBlock
	if bi >= PtrsPerBlock*PtrsPerBlock {
		return 0, fmt.Errorf("%w: block index %d", ErrFileTooBig, bi)
	}
	if d.DblInd == 0 {
		if !alloc {
			return 0, nil
		}
		b, err := m.alloc()
		if err != nil {
			return 0, err
		}
		if err := tx.Write(b, make([]byte, blockdev.BlockSize)); err != nil {
			return 0, err
		}
		d.DblInd = b
	}
	l1Slot, l2Slot := bi/PtrsPerBlock, bi%PtrsPerBlock
	l1, err := fs.loadPtrBlock(m, d.DblInd, l1Slot, alloc)
	if err != nil {
		return 0, err
	}
	if l1 == 0 {
		return 0, nil
	}
	return loadPtr(l1, l2Slot)
}

// loadPtrBlock resolves (and with alloc, creates) the level-1 pointer
// block at slot within the double-indirect block dbl. New pointer blocks
// are zero-initialized inside the transaction. m may be nil only when
// alloc is false.
func (fs *FS) loadPtrBlock(m *mtx, dbl, slot uint64, alloc bool) (uint64, error) {
	var tx *wal.Txn
	if m != nil {
		tx = m.tx
	}
	buf := make([]byte, blockdev.BlockSize)
	if err := fs.readBlock(tx, dbl, buf); err != nil {
		return 0, err
	}
	p := binary.LittleEndian.Uint64(buf[8*slot:])
	if p == 0 && alloc {
		b, err := m.alloc()
		if err != nil {
			return 0, err
		}
		if err := tx.Write(b, make([]byte, blockdev.BlockSize)); err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint64(buf[8*slot:], b)
		if err := tx.Write(dbl, buf); err != nil {
			return 0, err
		}
		p = b
	}
	return p, nil
}

// WriteAt writes p at byte offset off in ino, extending the file as needed.
// Large writes are split across multiple journal transactions, each of which
// is individually atomic. All chunks are staged (and enqueued) under the
// inode's actor, then awaited together after ownership is released, so a
// large write's own chunks form natural commit groups.
func (fs *FS) WriteAt(ino Ino, off uint64, p []byte) (int, error) {
	if err := fs.rangeCheck(ino); err != nil {
		return 0, err
	}
	if (off+uint64(len(p))+blockdev.BlockSize-1)/blockdev.BlockSize > MaxFileBlocks {
		return 0, ErrFileTooBig
	}
	var (
		tickets []*wal.Ticket
		ends    []int // bytes staged through each enqueued chunk
		opErr   error
	)
	fs.exec(ino, func() {
		d, err := fs.loadAlive(ino)
		if err != nil {
			opErr = err
			return
		}
		written := 0
		for written < len(p) {
			m := fs.begin()
			chunkBlocks := 0
			for written < len(p) && chunkBlocks < fs.maxChunk {
				cur := off + uint64(written)
				bi := cur / blockdev.BlockSize
				bo := cur % blockdev.BlockSize
				n := blockdev.BlockSize - bo
				if int(n) > len(p)-written {
					n = uint64(len(p) - written)
				}
				phys, err := fs.bmap(m, &d, bi, true)
				if err != nil {
					m.abort()
					opErr = err
					return
				}
				buf := make([]byte, blockdev.BlockSize)
				if bo != 0 || n != blockdev.BlockSize {
					if err := m.readBlock(phys, buf); err != nil {
						m.abort()
						opErr = err
						return
					}
				}
				copy(buf[bo:], p[written:written+int(n)])
				if err := m.tx.Write(phys, buf); err != nil {
					m.abort()
					opErr = err
					return
				}
				written += int(n)
				chunkBlocks++
			}
			if end := off + uint64(written); end > d.Size {
				d.Size = end
			}
			d.MTimeNano = fs.clock.Now().UnixNano()
			tk, err := m.enqueue(pub{ino, &d})
			if err != nil {
				m.abort()
				opErr = err
				return
			}
			tickets = append(tickets, tk)
			ends = append(ends, written)
		}
	})
	// The returned byte count reflects only what actually became durable;
	// a durability failure supersedes a staging error.
	okN, werr := waitChunks(tickets)
	durable := 0
	if okN > 0 {
		durable = ends[okN-1]
	}
	if werr != nil {
		return durable, werr
	}
	if opErr != nil {
		return durable, opErr
	}
	return durable, nil
}

// ReadAt reads into p from byte offset off. It returns the number of bytes
// read; reads beyond the file size are truncated, and a read starting at or
// past the end returns 0 with no error (the caller checks Size via Stat).
// The read runs under the inode's actor, so it never observes a torn
// multi-block write on its inode — but reads of different inodes proceed
// in parallel.
func (fs *FS) ReadAt(ino Ino, off uint64, p []byte) (int, error) {
	if err := fs.rangeCheck(ino); err != nil {
		return 0, err
	}
	var (
		read  int
		opErr error
	)
	fs.exec(ino, func() {
		d, err := fs.loadAlive(ino)
		if err != nil {
			opErr = err
			return
		}
		if off >= d.Size {
			return
		}
		if off+uint64(len(p)) > d.Size {
			p = p[:d.Size-off]
		}
		buf := make([]byte, blockdev.BlockSize)
		for read < len(p) {
			cur := off + uint64(read)
			bi := cur / blockdev.BlockSize
			bo := cur % blockdev.BlockSize
			n := blockdev.BlockSize - bo
			if int(n) > len(p)-read {
				n = uint64(len(p) - read)
			}
			phys, err := fs.bmap(nil, &d, bi, false)
			if err != nil {
				opErr = err
				return
			}
			if phys == 0 {
				// Hole: zeros.
				for i := uint64(0); i < n; i++ {
					p[read+int(i)] = 0
				}
			} else {
				if err := fs.readBlock(nil, phys, buf); err != nil {
					opErr = err
					return
				}
				copy(p[read:read+int(n)], buf[bo:bo+n])
			}
			read += int(n)
		}
	})
	return read, opErr
}

// Truncate shrinks ino to size (growing is done by WriteAt). Whole blocks
// past the new end are freed; the partial tail block is not scrubbed.
func (fs *FS) Truncate(ino Ino, size uint64) error {
	if err := fs.rangeCheck(ino); err != nil {
		return err
	}
	var (
		tk    *wal.Ticket
		opErr error
	)
	fs.exec(ino, func() {
		d, err := fs.loadAlive(ino)
		if err != nil {
			opErr = err
			return
		}
		if size >= d.Size {
			return
		}
		keep := (size + blockdev.BlockSize - 1) / blockdev.BlockSize
		total := (d.Size + blockdev.BlockSize - 1) / blockdev.BlockSize
		m := fs.begin()
		for bi := keep; bi < total; bi++ {
			phys, err := fs.bmap(m, &d, bi, false)
			if err != nil {
				m.abort()
				opErr = err
				return
			}
			if phys == 0 {
				continue
			}
			if err := m.free(phys); err != nil {
				m.abort()
				opErr = err
				return
			}
			if err := fs.clearMapping(m, &d, bi); err != nil {
				m.abort()
				opErr = err
				return
			}
		}
		d.Size = size
		d.MTimeNano = fs.clock.Now().UnixNano()
		tk, opErr = m.enqueue(pub{ino, &d})
		if opErr != nil {
			m.abort()
		}
	})
	if opErr != nil {
		return opErr
	}
	if tk != nil {
		return tk.Wait()
	}
	return nil
}

// clearMapping zeroes the pointer to file block bi (direct or indirect) in
// the working copy d. Indirect pointer blocks are left allocated for
// simplicity; FreeInode reclaims them.
func (fs *FS) clearMapping(m *mtx, d *dinode, bi uint64) error {
	if bi < NumDirect {
		d.Direct[bi] = 0
		return nil
	}
	bi -= NumDirect
	clearSlot := func(ptrBlock, slot uint64) error {
		buf := make([]byte, blockdev.BlockSize)
		if err := m.readBlock(ptrBlock, buf); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf[8*slot:], 0)
		return m.tx.Write(ptrBlock, buf)
	}
	if bi < PtrsPerBlock {
		if d.Indirect == 0 {
			return nil
		}
		return clearSlot(d.Indirect, bi)
	}
	bi -= PtrsPerBlock
	if d.DblInd == 0 {
		return nil
	}
	l1, err := fs.loadPtrBlock(m, d.DblInd, bi/PtrsPerBlock, false)
	if err != nil || l1 == 0 {
		return err
	}
	return clearSlot(l1, bi%PtrsPerBlock)
}

// FreeBlocks reports how many data blocks are unallocated.
func (fs *FS) FreeBlocks() uint64 {
	fs.metaMu.Lock()
	defer fs.metaMu.Unlock()
	var free uint64
	for b := fs.sb.DataStart; b < fs.sb.NBlocks; b++ {
		if fs.bitmap[b/8]&(1<<(b%8)) == 0 {
			free++
		}
	}
	return free
}
