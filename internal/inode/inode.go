// Package inode implements a uFS-style inode layer over a simulated block
// device, with write-ahead journaling for crash consistency.
//
// The paper's prototype (§3) re-architects uFS, keeping "the implementation
// of the inode concept" and building two major inode trees on top of it for
// DBFS. This package is that kept layer: fixed-size on-disk inodes with
// direct, single-indirect and double-indirect block pointers, an allocation
// bitmap, and named parent→child links so inodes form trees. Both DBFS
// (internal/dbfs) and the traditional file-based filesystem
// (internal/plainfs) are built on it.
//
// Deliberate realism: freeing an inode releases its blocks but does NOT zero
// them, and every mutation's pre-/post-images flow through the journal. Both
// behaviours match production filesystems and are exactly why a file-based
// OS below a "GDPR-compliant" database can violate the right to be forgotten
// (DESIGN.md F2V1). rgpdOS's DBFS neutralizes them by storing only
// ciphertext in inodes (see internal/cryptoshred).
package inode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/simclock"
	"repro/internal/wal"
)

// Mode classifies an inode.
type Mode uint32

// Inode modes. ModeFree marks an unallocated table slot; its zero value is
// meaningful on disk, so the enum starts at zero deliberately.
const (
	ModeFree Mode = iota
	ModeFile
	ModeTree
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeFree:
		return "free"
	case ModeFile:
		return "file"
	case ModeTree:
		return "tree"
	default:
		return fmt.Sprintf("mode(%d)", uint32(m))
	}
}

// Ino is an inode number. 0 is never a valid inode; the root tree inode is 1.
type Ino uint64

// Layout constants.
const (
	magic   uint32 = 0x75465321 // "uFS!"
	version uint32 = 1

	// InodeSize is the on-disk inode record size.
	InodeSize = 256
	// InodesPerBlock is how many inodes fit in one device block.
	InodesPerBlock = blockdev.BlockSize / InodeSize

	// NumDirect is the number of direct block pointers per inode.
	NumDirect = 12
	// PtrsPerBlock is the number of block pointers in an indirect block.
	PtrsPerBlock = blockdev.BlockSize / 8

	// MaxTagLen is the longest tag string an inode can carry. DBFS uses
	// tags to label inode roles (schema, subject, record, membrane).
	MaxTagLen = 80

	// MaxFileBlocks is the per-inode capacity in blocks.
	MaxFileBlocks = NumDirect + PtrsPerBlock + PtrsPerBlock*PtrsPerBlock

	// RootIno is the inode number of the root tree, created by Format.
	RootIno Ino = 1

	// blocksPerTxnChunk bounds how many data blocks a single journal
	// transaction carries during large writes; bigger writes are split
	// into multiple transactions.
	blocksPerTxnChunk = 64
)

// Sentinel errors.
var (
	// ErrNotFormatted reports a device without a valid superblock.
	ErrNotFormatted = errors.New("inode: device is not formatted")
	// ErrBadInode reports an out-of-range or unallocated inode number.
	ErrBadInode = errors.New("inode: invalid inode")
	// ErrNoSpace reports block or inode exhaustion.
	ErrNoSpace = errors.New("inode: no space left on device")
	// ErrNotTree reports a tree operation on a non-tree inode.
	ErrNotTree = errors.New("inode: not a tree inode")
	// ErrChildExists reports an AddChild with a duplicate name.
	ErrChildExists = errors.New("inode: child name already exists")
	// ErrChildNotFound reports a missing child name.
	ErrChildNotFound = errors.New("inode: child not found")
	// ErrTagTooLong reports a tag above MaxTagLen.
	ErrTagTooLong = errors.New("inode: tag too long")
	// ErrFileTooBig reports a write beyond MaxFileBlocks.
	ErrFileTooBig = errors.New("inode: file exceeds maximum size")
	// ErrTreeNotEmpty reports freeing a tree that still has children.
	ErrTreeNotEmpty = errors.New("inode: tree has children")
)

// Info is the stat result for an inode.
type Info struct {
	Ino   Ino
	Mode  Mode
	Size  uint64
	MTime time.Time
	Tag   string
	// Links is the number of tree links pointing at this inode.
	Links uint32
}

// superblock describes the device layout. It lives in block 0.
type superblock struct {
	NBlocks       uint64
	NInodes       uint64
	BitmapStart   uint64
	BitmapBlocks  uint64
	InodeStart    uint64
	InodeBlocks   uint64
	JournalStart  uint64
	JournalBlocks uint64
	DataStart     uint64
}

// dinode is the in-memory form of an on-disk inode.
type dinode struct {
	Mode      Mode
	Links     uint32
	Size      uint64
	MTimeNano int64
	Direct    [NumDirect]uint64
	Indirect  uint64
	DblInd    uint64
	Tag       string
}

// Options configures Format.
type Options struct {
	// NInodes is the inode table capacity. Default 4096.
	NInodes uint64
	// JournalBlocks is the journal region size. Default 256.
	JournalBlocks uint64
	// Clock supplies mtimes. Default simclock.Real.
	Clock simclock.Clock
	// CommitWindow is how long the journal committer waits for more
	// transactions before flushing a commit group (0 drains immediately;
	// see wal.Log.Configure).
	CommitWindow time.Duration
	// GroupMaxBatch bounds transactions per commit group (0 = the wal
	// default, 1 disables group commit).
	GroupMaxBatch int
}

func (o *Options) withDefaults() {
	if o.NInodes == 0 {
		o.NInodes = 4096
	}
	if o.JournalBlocks == 0 {
		o.JournalBlocks = 256
	}
	if o.Clock == nil {
		o.Clock = simclock.Real{}
	}
}

// FS is a mounted inode filesystem. All methods are safe for concurrent
// use.
//
// Locking and durability: helpers suffixed *Locked require fs.mu — holding
// it is part of their contract, and the suffix is deliberate so a future
// lock split cannot silently call them unlocked. Mutating methods stage a
// journal transaction under fs.mu, enqueue it, RELEASE the lock, and only
// then wait for the commit group to become durable. fs.mu therefore covers
// staging but not device flushing, which lets concurrent writers coalesce
// into WAL commit groups; reads go through the journal's in-flight overlay
// (wal.Log.ReadThrough) so a transaction staged after its predecessor
// always observes the predecessor's writes even before they checkpoint.
type FS struct {
	dev   blockdev.Device
	clock simclock.Clock

	mu     sync.Mutex
	sb     superblock
	log    *wal.Log
	bitmap []byte // in-memory block allocation bitmap, one bit per device block
	itab   []dinode
	// maxChunk bounds data blocks per journal transaction; it is derived
	// from the journal size so one transaction (data + staged metadata)
	// always fits the region.
	maxChunk int
}

// chunkLimit derives the per-transaction data-block budget from the journal
// size, reserving headroom for descriptor/commit blocks and staged metadata
// (inode table, bitmap, and indirect blocks).
func chunkLimit(journalBlocks uint64) int {
	const metaHeadroom = 10
	limit := int(journalBlocks) - metaHeadroom
	if limit < 1 {
		limit = 1
	}
	if limit > blocksPerTxnChunk {
		limit = blocksPerTxnChunk
	}
	return limit
}

// Format initializes dev with an empty filesystem and returns it mounted.
func Format(dev blockdev.Device, opts Options) (*FS, error) {
	opts.withDefaults()
	n := dev.NumBlocks()
	bitmapBlocks := (n/8 + blockdev.BlockSize - 1) / blockdev.BlockSize
	inodeBlocks := (opts.NInodes + InodesPerBlock - 1) / InodesPerBlock
	sb := superblock{
		NBlocks:       n,
		NInodes:       inodeBlocks * InodesPerBlock,
		BitmapStart:   1,
		BitmapBlocks:  bitmapBlocks,
		InodeStart:    1 + bitmapBlocks,
		InodeBlocks:   inodeBlocks,
		JournalStart:  1 + bitmapBlocks + inodeBlocks,
		JournalBlocks: opts.JournalBlocks,
	}
	sb.DataStart = sb.JournalStart + sb.JournalBlocks
	if sb.DataStart+8 > n {
		return nil, fmt.Errorf("%w: device too small (%d blocks, need > %d)", ErrNoSpace, n, sb.DataStart+8)
	}

	fs := &FS{
		dev:      dev,
		clock:    opts.Clock,
		sb:       sb,
		bitmap:   make([]byte, bitmapBlocks*blockdev.BlockSize),
		itab:     make([]dinode, sb.NInodes),
		maxChunk: chunkLimit(sb.JournalBlocks),
	}
	// Mark metadata region (everything before DataStart) as allocated.
	for b := uint64(0); b < sb.DataStart; b++ {
		fs.bitmap[b/8] |= 1 << (b % 8)
	}

	// Persist superblock directly (pre-journal bootstrap write).
	buf := make([]byte, blockdev.BlockSize)
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], version)
	enc := buf[8:]
	for i, v := range []uint64{sb.NBlocks, sb.NInodes, sb.BitmapStart, sb.BitmapBlocks,
		sb.InodeStart, sb.InodeBlocks, sb.JournalStart, sb.JournalBlocks, sb.DataStart} {
		binary.LittleEndian.PutUint64(enc[8*i:], v)
	}
	if err := dev.WriteBlock(0, buf); err != nil {
		return nil, fmt.Errorf("inode: write superblock: %w", err)
	}
	// Persist initial bitmap.
	for i := uint64(0); i < bitmapBlocks; i++ {
		if err := dev.WriteBlock(sb.BitmapStart+i, fs.bitmap[i*blockdev.BlockSize:(i+1)*blockdev.BlockSize]); err != nil {
			return nil, fmt.Errorf("inode: write bitmap: %w", err)
		}
	}
	// Persist empty inode table.
	zero := make([]byte, blockdev.BlockSize)
	for i := uint64(0); i < inodeBlocks; i++ {
		if err := dev.WriteBlock(sb.InodeStart+i, zero); err != nil {
			return nil, fmt.Errorf("inode: write inode table: %w", err)
		}
	}
	if err := dev.Sync(); err != nil {
		return nil, fmt.Errorf("inode: sync format: %w", err)
	}

	log, err := wal.Open(dev, sb.JournalStart, sb.JournalBlocks)
	if err != nil {
		return nil, fmt.Errorf("inode: open journal: %w", err)
	}
	log.Configure(opts.CommitWindow, opts.GroupMaxBatch)
	fs.log = log

	// Create the root tree inode (ino 1) through the normal journaled path.
	root, err := fs.AllocInode(ModeTree, "root")
	if err != nil {
		return nil, fmt.Errorf("inode: create root: %w", err)
	}
	if root != RootIno {
		return nil, fmt.Errorf("inode: root allocated as %d, want %d", root, RootIno)
	}
	return fs, nil
}

// Mount opens a previously formatted device: it validates the superblock,
// replays the journal, and loads the allocation bitmap and inode table.
func Mount(dev blockdev.Device, clock simclock.Clock) (*FS, error) {
	if clock == nil {
		clock = simclock.Real{}
	}
	buf := make([]byte, blockdev.BlockSize)
	if err := dev.ReadBlock(0, buf); err != nil {
		return nil, fmt.Errorf("inode: read superblock: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != magic {
		return nil, ErrNotFormatted
	}
	var sb superblock
	enc := buf[8:]
	vals := make([]uint64, 9)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint64(enc[8*i:])
	}
	sb.NBlocks, sb.NInodes = vals[0], vals[1]
	sb.BitmapStart, sb.BitmapBlocks = vals[2], vals[3]
	sb.InodeStart, sb.InodeBlocks = vals[4], vals[5]
	sb.JournalStart, sb.JournalBlocks = vals[6], vals[7]
	sb.DataStart = vals[8]

	log, err := wal.Open(dev, sb.JournalStart, sb.JournalBlocks)
	if err != nil {
		return nil, fmt.Errorf("inode: open journal: %w", err)
	}
	if _, err := log.Recover(); err != nil {
		return nil, fmt.Errorf("inode: journal recovery: %w", err)
	}

	fs := &FS{
		dev:      dev,
		clock:    clock,
		sb:       sb,
		log:      log,
		bitmap:   make([]byte, sb.BitmapBlocks*blockdev.BlockSize),
		itab:     make([]dinode, sb.NInodes),
		maxChunk: chunkLimit(sb.JournalBlocks),
	}
	for i := uint64(0); i < sb.BitmapBlocks; i++ {
		if err := dev.ReadBlock(sb.BitmapStart+i, fs.bitmap[i*blockdev.BlockSize:(i+1)*blockdev.BlockSize]); err != nil {
			return nil, fmt.Errorf("inode: read bitmap: %w", err)
		}
	}
	for i := uint64(0); i < sb.InodeBlocks; i++ {
		if err := dev.ReadBlock(sb.InodeStart+i, buf); err != nil {
			return nil, fmt.Errorf("inode: read inode table: %w", err)
		}
		for j := 0; j < InodesPerBlock; j++ {
			idx := i*InodesPerBlock + uint64(j)
			if idx >= sb.NInodes {
				break
			}
			fs.itab[idx] = decodeInode(buf[j*InodeSize : (j+1)*InodeSize])
		}
	}
	return fs, nil
}

// Device returns the underlying block device (used by residue-scanning
// experiments and by the IO-driver kernel wiring).
func (fs *FS) Device() blockdev.Device { return fs.dev }

// JournalRegion reports the journal block range for residue attribution.
func (fs *FS) JournalRegion() (start, length uint64) {
	return fs.sb.JournalStart, fs.sb.JournalBlocks
}

// JournalStats exposes the journal counters.
func (fs *FS) JournalStats() wal.Stats { return fs.log.Stats() }

// ConfigureJournal sets the group-commit parameters on a mounted
// filesystem (see wal.Log.Configure). Format applies Options.CommitWindow
// and GroupMaxBatch itself; Mount cannot take options without breaking its
// signature, so remount paths that need a tuned window — or the
// group-commit-disabled ablation baseline — call this right after Mount,
// before concurrent use.
func (fs *FS) ConfigureJournal(window time.Duration, maxBatch int) {
	fs.log.Configure(window, maxBatch)
}

// --- inode encoding ---

func encodeInode(d dinode, out []byte) {
	binary.LittleEndian.PutUint32(out[0:], uint32(d.Mode))
	binary.LittleEndian.PutUint32(out[4:], d.Links)
	binary.LittleEndian.PutUint64(out[8:], d.Size)
	binary.LittleEndian.PutUint64(out[16:], uint64(d.MTimeNano))
	for i := 0; i < NumDirect; i++ {
		binary.LittleEndian.PutUint64(out[24+8*i:], d.Direct[i])
	}
	binary.LittleEndian.PutUint64(out[24+8*NumDirect:], d.Indirect)
	binary.LittleEndian.PutUint64(out[32+8*NumDirect:], d.DblInd)
	tagOff := 40 + 8*NumDirect
	binary.LittleEndian.PutUint16(out[tagOff:], uint16(len(d.Tag)))
	copy(out[tagOff+2:tagOff+2+MaxTagLen], d.Tag)
}

func decodeInode(in []byte) dinode {
	var d dinode
	d.Mode = Mode(binary.LittleEndian.Uint32(in[0:]))
	d.Links = binary.LittleEndian.Uint32(in[4:])
	d.Size = binary.LittleEndian.Uint64(in[8:])
	d.MTimeNano = int64(binary.LittleEndian.Uint64(in[16:]))
	for i := 0; i < NumDirect; i++ {
		d.Direct[i] = binary.LittleEndian.Uint64(in[24+8*i:])
	}
	d.Indirect = binary.LittleEndian.Uint64(in[24+8*NumDirect:])
	d.DblInd = binary.LittleEndian.Uint64(in[32+8*NumDirect:])
	tagOff := 40 + 8*NumDirect
	n := binary.LittleEndian.Uint16(in[tagOff:])
	if n > MaxTagLen {
		n = MaxTagLen
	}
	d.Tag = string(in[tagOff+2 : tagOff+2+int(n)])
	return d
}

// --- block helpers ---
//
// Every helper below is suffixed *Locked: the caller MUST hold fs.mu. The
// naming is the enforcement mechanism — a call site without the lock reads
// as wrong in review, and the public API wraps them without exception.

// readBlockLocked reads block n, preferring the image buffered in tx (a
// transaction observes its own writes), then any enqueued-but-not-yet-
// checkpointed image in the journal overlay, then the device.
func (fs *FS) readBlockLocked(tx *wal.Txn, n uint64, buf []byte) error {
	if tx != nil {
		if img, ok := tx.Read(n); ok {
			copy(buf, img)
			return nil
		}
	}
	return fs.log.ReadThrough(n, buf)
}

// flushInodeLocked stages inode ino's table block into tx.
func (fs *FS) flushInodeLocked(tx *wal.Txn, ino Ino) error {
	idx := uint64(ino)
	blk := fs.sb.InodeStart + idx/InodesPerBlock
	buf := make([]byte, blockdev.BlockSize)
	if err := fs.readBlockLocked(tx, blk, buf); err != nil {
		return err
	}
	off := (idx % InodesPerBlock) * InodeSize
	encodeInode(fs.itab[idx], buf[off:off+InodeSize])
	return tx.Write(blk, buf)
}

// flushBitmapForLocked stages the bitmap block covering device block b into
// tx.
func (fs *FS) flushBitmapForLocked(tx *wal.Txn, b uint64) error {
	bmBlk := (b / 8) / blockdev.BlockSize
	start := bmBlk * blockdev.BlockSize
	return tx.Write(fs.sb.BitmapStart+bmBlk, fs.bitmap[start:start+blockdev.BlockSize])
}

// allocBlockLocked finds a free data block, marks it used, and stages the
// bitmap.
func (fs *FS) allocBlockLocked(tx *wal.Txn) (uint64, error) {
	for b := fs.sb.DataStart; b < fs.sb.NBlocks; b++ {
		if fs.bitmap[b/8]&(1<<(b%8)) == 0 {
			fs.bitmap[b/8] |= 1 << (b % 8)
			if err := fs.flushBitmapForLocked(tx, b); err != nil {
				return 0, err
			}
			return b, nil
		}
	}
	return 0, ErrNoSpace
}

// freeBlockLocked clears a block's bitmap bit. The block contents are NOT
// zeroed — the same residue semantics as ext4.
func (fs *FS) freeBlockLocked(tx *wal.Txn, b uint64) error {
	if b < fs.sb.DataStart || b >= fs.sb.NBlocks {
		return fmt.Errorf("inode: freeBlock %d outside data region", b)
	}
	fs.bitmap[b/8] &^= 1 << (b % 8)
	return fs.flushBitmapForLocked(tx, b)
}

func (fs *FS) checkInoLocked(ino Ino) error {
	if ino == 0 || uint64(ino) >= fs.sb.NInodes {
		return fmt.Errorf("%w: %d", ErrBadInode, ino)
	}
	if fs.itab[ino].Mode == ModeFree {
		return fmt.Errorf("%w: %d is free", ErrBadInode, ino)
	}
	return nil
}

// commitUnlock enqueues tx, releases fs.mu, and waits for tx's commit
// group to become durable. The caller must hold fs.mu, must have finished
// all staging, and must not touch FS state afterwards: the lock is gone by
// the time the wait starts, which is exactly what lets concurrent writers
// coalesce into one WAL group.
func (fs *FS) commitUnlock(tx *wal.Txn) error {
	tk, err := tx.Enqueue()
	fs.mu.Unlock()
	if err != nil || tk == nil {
		return err
	}
	return tk.Wait()
}

// waitTickets waits for every enqueued chunk of a multi-transaction
// mutation, returning the first error. Must be called without fs.mu.
func waitTickets(tks []*wal.Ticket) error {
	_, err := waitChunks(tks)
	return err
}

// waitChunks waits for enqueued chunk tickets in order and reports how many
// flushed durably before the first failure (draining the rest so journal
// accounting stays consistent). Must be called without fs.mu.
func waitChunks(tks []*wal.Ticket) (ok int, err error) {
	for i, tk := range tks {
		if tk != nil {
			if werr := tk.Wait(); werr != nil {
				for _, rest := range tks[i+1:] {
					if rest != nil {
						_ = rest.Wait()
					}
				}
				return ok, werr
			}
		}
		ok = i + 1
	}
	return ok, nil
}

// unlockWait releases fs.mu, waits for the enqueued tickets, and merges a
// durability failure over err (the staging outcome). The caller must hold
// fs.mu and must not touch FS state afterwards.
func (fs *FS) unlockWait(tickets []*wal.Ticket, err error) error {
	fs.mu.Unlock()
	if werr := waitTickets(tickets); werr != nil {
		return werr
	}
	return err
}

// --- public API ---

// AllocInode allocates a fresh inode of the given mode with an optional tag.
func (fs *FS) AllocInode(mode Mode, tag string) (Ino, error) {
	if mode == ModeFree {
		return 0, fmt.Errorf("%w: cannot allocate ModeFree", ErrBadInode)
	}
	if len(tag) > MaxTagLen {
		return 0, fmt.Errorf("%w: %d bytes", ErrTagTooLong, len(tag))
	}
	fs.mu.Lock()
	for i := uint64(1); i < fs.sb.NInodes; i++ {
		if fs.itab[i].Mode != ModeFree {
			continue
		}
		fs.itab[i] = dinode{
			Mode:      mode,
			MTimeNano: fs.clock.Now().UnixNano(),
			Tag:       tag,
		}
		tx := fs.log.Begin()
		if err := fs.flushInodeLocked(tx, Ino(i)); err != nil {
			tx.Abort()
			fs.itab[i] = dinode{}
			fs.mu.Unlock()
			return 0, fmt.Errorf("inode: alloc %d: %w", i, err)
		}
		if err := fs.commitUnlock(tx); err != nil {
			// Roll the in-memory allocation back so the slot is not
			// leaked for the rest of the mount. The lock was released
			// for the wait, so only reclaim the slot if nothing linked
			// the failed inode in the meantime.
			fs.mu.Lock()
			if fs.itab[i].Links == 0 {
				fs.itab[i] = dinode{}
			}
			fs.mu.Unlock()
			return 0, fmt.Errorf("inode: alloc %d: %w", i, err)
		}
		return Ino(i), nil
	}
	fs.mu.Unlock()
	return 0, fmt.Errorf("%w: inode table full", ErrNoSpace)
}

// FreeInode releases ino and all its data blocks. Tree inodes must be empty.
// Data blocks are not zeroed; see the package comment.
func (fs *FS) FreeInode(ino Ino) error {
	fs.mu.Lock()
	if err := fs.checkInoLocked(ino); err != nil {
		fs.mu.Unlock()
		return err
	}
	d := &fs.itab[ino]
	if d.Mode == ModeTree && d.Size > 0 {
		fs.mu.Unlock()
		return fmt.Errorf("%w: inode %d", ErrTreeNotEmpty, ino)
	}
	tx := fs.log.Begin()
	if err := fs.freeInodeBlocksLocked(tx, ino); err != nil {
		tx.Abort()
		fs.mu.Unlock()
		return err
	}
	fs.itab[ino] = dinode{}
	if err := fs.flushInodeLocked(tx, ino); err != nil {
		tx.Abort()
		fs.mu.Unlock()
		return err
	}
	return fs.commitUnlock(tx)
}

// freeInodeBlocksLocked releases every data block mapped by ino.
func (fs *FS) freeInodeBlocksLocked(tx *wal.Txn, ino Ino) error {
	d := &fs.itab[ino]
	for i := 0; i < NumDirect; i++ {
		if d.Direct[i] != 0 {
			if err := fs.freeBlockLocked(tx, d.Direct[i]); err != nil {
				return err
			}
			d.Direct[i] = 0
		}
	}
	freeIndirect := func(ptrBlock uint64) error {
		buf := make([]byte, blockdev.BlockSize)
		if err := fs.readBlockLocked(tx, ptrBlock, buf); err != nil {
			return err
		}
		for j := 0; j < PtrsPerBlock; j++ {
			p := binary.LittleEndian.Uint64(buf[8*j:])
			if p != 0 {
				if err := fs.freeBlockLocked(tx, p); err != nil {
					return err
				}
			}
		}
		return fs.freeBlockLocked(tx, ptrBlock)
	}
	if d.Indirect != 0 {
		if err := freeIndirect(d.Indirect); err != nil {
			return err
		}
		d.Indirect = 0
	}
	if d.DblInd != 0 {
		buf := make([]byte, blockdev.BlockSize)
		if err := fs.readBlockLocked(tx, d.DblInd, buf); err != nil {
			return err
		}
		for j := 0; j < PtrsPerBlock; j++ {
			p := binary.LittleEndian.Uint64(buf[8*j:])
			if p != 0 {
				if err := freeIndirect(p); err != nil {
					return err
				}
			}
		}
		if err := fs.freeBlockLocked(tx, d.DblInd); err != nil {
			return err
		}
		d.DblInd = 0
	}
	return nil
}

// SecureFreeInode zeroes every data block of ino before releasing it. This
// is the "shred" variant used in ablation experiments; it defeats free-space
// residue but NOT journal residue (old images are already logged).
func (fs *FS) SecureFreeInode(ino Ino) error {
	fs.mu.Lock()
	// Drain the commit queue first: a queued checkpoint landing after the
	// zero pass would resurrect the very bytes this variant scrubs.
	fs.log.Barrier()
	if err := fs.checkInoLocked(ino); err != nil {
		fs.mu.Unlock()
		return err
	}
	d := &fs.itab[ino]
	if d.Mode == ModeTree && d.Size > 0 {
		fs.mu.Unlock()
		return fmt.Errorf("%w: inode %d", ErrTreeNotEmpty, ino)
	}
	zero := make([]byte, blockdev.BlockSize)
	nblocks := (d.Size + blockdev.BlockSize - 1) / blockdev.BlockSize
	// Zero pass: direct device writes bypass the journal on purpose — a
	// journaled zero write would log the zeros, not remove old images, and
	// the point of this variant is to scrub home locations only.
	for bi := uint64(0); bi < nblocks; bi++ {
		phys, err := fs.bmapLocked(nil, ino, bi, false)
		if err != nil {
			fs.mu.Unlock()
			return err
		}
		if phys == 0 {
			continue
		}
		if err := fs.dev.WriteBlock(phys, zero); err != nil {
			fs.mu.Unlock()
			return err
		}
	}
	tx := fs.log.Begin()
	if err := fs.freeInodeBlocksLocked(tx, ino); err != nil {
		tx.Abort()
		fs.mu.Unlock()
		return err
	}
	fs.itab[ino] = dinode{}
	if err := fs.flushInodeLocked(tx, ino); err != nil {
		tx.Abort()
		fs.mu.Unlock()
		return err
	}
	return fs.commitUnlock(tx)
}

// Stat returns metadata for ino.
func (fs *FS) Stat(ino Ino) (Info, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkInoLocked(ino); err != nil {
		return Info{}, err
	}
	d := fs.itab[ino]
	return Info{
		Ino:   ino,
		Mode:  d.Mode,
		Size:  d.Size,
		MTime: time.Unix(0, d.MTimeNano).UTC(),
		Tag:   d.Tag,
		Links: d.Links,
	}, nil
}

// SetTag replaces the tag of ino.
func (fs *FS) SetTag(ino Ino, tag string) error {
	if len(tag) > MaxTagLen {
		return fmt.Errorf("%w: %d bytes", ErrTagTooLong, len(tag))
	}
	fs.mu.Lock()
	if err := fs.checkInoLocked(ino); err != nil {
		fs.mu.Unlock()
		return err
	}
	fs.itab[ino].Tag = tag
	tx := fs.log.Begin()
	if err := fs.flushInodeLocked(tx, ino); err != nil {
		tx.Abort()
		fs.mu.Unlock()
		return err
	}
	return fs.commitUnlock(tx)
}

// bmapLocked maps file-relative block bi of ino to a device block. With
// alloc, missing blocks (and indirect blocks) are allocated inside tx.
// Returns 0 for a hole when alloc is false.
func (fs *FS) bmapLocked(tx *wal.Txn, ino Ino, bi uint64, alloc bool) (uint64, error) {
	d := &fs.itab[ino]
	if bi < NumDirect {
		if d.Direct[bi] == 0 && alloc {
			b, err := fs.allocBlockLocked(tx)
			if err != nil {
				return 0, err
			}
			d.Direct[bi] = b
		}
		return d.Direct[bi], nil
	}
	bi -= NumDirect

	// loadPtr reads slot within ptrBlock, allocating through it if needed.
	loadPtr := func(ptrBlock uint64, slot uint64) (uint64, error) {
		buf := make([]byte, blockdev.BlockSize)
		if err := fs.readBlockLocked(tx, ptrBlock, buf); err != nil {
			return 0, err
		}
		p := binary.LittleEndian.Uint64(buf[8*slot:])
		if p == 0 && alloc {
			b, err := fs.allocBlockLocked(tx)
			if err != nil {
				return 0, err
			}
			binary.LittleEndian.PutUint64(buf[8*slot:], b)
			if err := tx.Write(ptrBlock, buf); err != nil {
				return 0, err
			}
			p = b
		}
		return p, nil
	}

	if bi < PtrsPerBlock {
		if d.Indirect == 0 {
			if !alloc {
				return 0, nil
			}
			b, err := fs.allocBlockLocked(tx)
			if err != nil {
				return 0, err
			}
			// Fresh pointer block must be zeroed in the txn image.
			if err := tx.Write(b, make([]byte, blockdev.BlockSize)); err != nil {
				return 0, err
			}
			d.Indirect = b
		}
		return loadPtr(d.Indirect, bi)
	}
	bi -= PtrsPerBlock
	if bi >= PtrsPerBlock*PtrsPerBlock {
		return 0, fmt.Errorf("%w: block index %d", ErrFileTooBig, bi)
	}
	if d.DblInd == 0 {
		if !alloc {
			return 0, nil
		}
		b, err := fs.allocBlockLocked(tx)
		if err != nil {
			return 0, err
		}
		if err := tx.Write(b, make([]byte, blockdev.BlockSize)); err != nil {
			return 0, err
		}
		d.DblInd = b
	}
	l1Slot, l2Slot := bi/PtrsPerBlock, bi%PtrsPerBlock
	l1, err := fs.loadPtrBlockLocked(tx, d.DblInd, l1Slot, alloc)
	if err != nil {
		return 0, err
	}
	if l1 == 0 {
		return 0, nil
	}
	return loadPtr(l1, l2Slot)
}

// loadPtrBlockLocked resolves (and with alloc, creates) the level-1 pointer
// block at slot within the double-indirect block dbl. New pointer blocks
// are zero-initialized inside the transaction.
func (fs *FS) loadPtrBlockLocked(tx *wal.Txn, dbl, slot uint64, alloc bool) (uint64, error) {
	buf := make([]byte, blockdev.BlockSize)
	if err := fs.readBlockLocked(tx, dbl, buf); err != nil {
		return 0, err
	}
	p := binary.LittleEndian.Uint64(buf[8*slot:])
	if p == 0 && alloc {
		b, err := fs.allocBlockLocked(tx)
		if err != nil {
			return 0, err
		}
		if err := tx.Write(b, make([]byte, blockdev.BlockSize)); err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint64(buf[8*slot:], b)
		if err := tx.Write(dbl, buf); err != nil {
			return 0, err
		}
		p = b
	}
	return p, nil
}

// WriteAt writes p at byte offset off in ino, extending the file as needed.
// Large writes are split across multiple journal transactions, each of which
// is individually atomic. All chunks are staged (and enqueued) under fs.mu,
// then awaited together after the lock is released, so a large write's own
// chunks form natural commit groups.
func (fs *FS) WriteAt(ino Ino, off uint64, p []byte) (int, error) {
	fs.mu.Lock()
	if err := fs.checkInoLocked(ino); err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	if (off+uint64(len(p))+blockdev.BlockSize-1)/blockdev.BlockSize > MaxFileBlocks {
		fs.mu.Unlock()
		return 0, ErrFileTooBig
	}
	var (
		written int
		tickets []*wal.Ticket
		ends    []int // bytes staged through each enqueued chunk
	)
	// fail finalizes an error mid-write: the current txn (if any) is
	// aborted, the lock dropped, and already-enqueued chunks awaited so
	// the returned byte count reflects only what actually became durable.
	// A durability failure supersedes the staging error.
	fail := func(tx *wal.Txn, err error) (int, error) {
		if tx != nil {
			tx.Abort()
		}
		fs.mu.Unlock()
		okN, werr := waitChunks(tickets)
		if werr != nil {
			err = werr
		}
		durable := 0
		if okN > 0 {
			durable = ends[okN-1]
		}
		return durable, err
	}
	for written < len(p) {
		tx := fs.log.Begin()
		chunkBlocks := 0
		for written < len(p) && chunkBlocks < fs.maxChunk {
			cur := off + uint64(written)
			bi := cur / blockdev.BlockSize
			bo := cur % blockdev.BlockSize
			n := blockdev.BlockSize - bo
			if int(n) > len(p)-written {
				n = uint64(len(p) - written)
			}
			phys, err := fs.bmapLocked(tx, ino, bi, true)
			if err != nil {
				return fail(tx, err)
			}
			buf := make([]byte, blockdev.BlockSize)
			if bo != 0 || n != blockdev.BlockSize {
				if err := fs.readBlockLocked(tx, phys, buf); err != nil {
					return fail(tx, err)
				}
			}
			copy(buf[bo:], p[written:written+int(n)])
			if err := tx.Write(phys, buf); err != nil {
				return fail(tx, err)
			}
			written += int(n)
			chunkBlocks++
		}
		d := &fs.itab[ino]
		if end := off + uint64(written); end > d.Size {
			d.Size = end
		}
		d.MTimeNano = fs.clock.Now().UnixNano()
		if err := fs.flushInodeLocked(tx, ino); err != nil {
			return fail(tx, err)
		}
		tk, err := tx.Enqueue()
		if err != nil {
			return fail(nil, err)
		}
		tickets = append(tickets, tk)
		ends = append(ends, written)
	}
	fs.mu.Unlock()
	if okN, err := waitChunks(tickets); err != nil {
		durable := 0
		if okN > 0 {
			durable = ends[okN-1]
		}
		return durable, err
	}
	return written, nil
}

// ReadAt reads into p from byte offset off. It returns the number of bytes
// read; reads beyond the file size are truncated, and a read starting at or
// past the end returns 0 with no error (the caller checks Size via Stat).
func (fs *FS) ReadAt(ino Ino, off uint64, p []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkInoLocked(ino); err != nil {
		return 0, err
	}
	d := &fs.itab[ino]
	if off >= d.Size {
		return 0, nil
	}
	if off+uint64(len(p)) > d.Size {
		p = p[:d.Size-off]
	}
	read := 0
	buf := make([]byte, blockdev.BlockSize)
	for read < len(p) {
		cur := off + uint64(read)
		bi := cur / blockdev.BlockSize
		bo := cur % blockdev.BlockSize
		n := blockdev.BlockSize - bo
		if int(n) > len(p)-read {
			n = uint64(len(p) - read)
		}
		phys, err := fs.bmapLocked(nil, ino, bi, false)
		if err != nil {
			return read, err
		}
		if phys == 0 {
			// Hole: zeros.
			for i := uint64(0); i < n; i++ {
				p[read+int(i)] = 0
			}
		} else {
			if err := fs.readBlockLocked(nil, phys, buf); err != nil {
				return read, err
			}
			copy(p[read:read+int(n)], buf[bo:bo+n])
		}
		read += int(n)
	}
	return read, nil
}

// Truncate shrinks ino to size (growing is done by WriteAt). Whole blocks
// past the new end are freed; the partial tail block is not scrubbed.
func (fs *FS) Truncate(ino Ino, size uint64) error {
	fs.mu.Lock()
	if err := fs.checkInoLocked(ino); err != nil {
		fs.mu.Unlock()
		return err
	}
	d := &fs.itab[ino]
	if size >= d.Size {
		fs.mu.Unlock()
		return nil
	}
	keep := (size + blockdev.BlockSize - 1) / blockdev.BlockSize
	total := (d.Size + blockdev.BlockSize - 1) / blockdev.BlockSize
	tx := fs.log.Begin()
	for bi := keep; bi < total; bi++ {
		phys, err := fs.bmapLocked(tx, ino, bi, false)
		if err != nil {
			tx.Abort()
			fs.mu.Unlock()
			return err
		}
		if phys == 0 {
			continue
		}
		if err := fs.freeBlockLocked(tx, phys); err != nil {
			tx.Abort()
			fs.mu.Unlock()
			return err
		}
		if err := fs.clearMappingLocked(tx, ino, bi); err != nil {
			tx.Abort()
			fs.mu.Unlock()
			return err
		}
	}
	d.Size = size
	d.MTimeNano = fs.clock.Now().UnixNano()
	if err := fs.flushInodeLocked(tx, ino); err != nil {
		tx.Abort()
		fs.mu.Unlock()
		return err
	}
	return fs.commitUnlock(tx)
}

// clearMappingLocked zeroes the pointer to file block bi (direct or
// indirect). Indirect pointer blocks are left allocated for simplicity;
// FreeInode reclaims them.
func (fs *FS) clearMappingLocked(tx *wal.Txn, ino Ino, bi uint64) error {
	d := &fs.itab[ino]
	if bi < NumDirect {
		d.Direct[bi] = 0
		return nil
	}
	bi -= NumDirect
	clearSlot := func(ptrBlock, slot uint64) error {
		buf := make([]byte, blockdev.BlockSize)
		if err := fs.readBlockLocked(tx, ptrBlock, buf); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf[8*slot:], 0)
		return tx.Write(ptrBlock, buf)
	}
	if bi < PtrsPerBlock {
		if d.Indirect == 0 {
			return nil
		}
		return clearSlot(d.Indirect, bi)
	}
	bi -= PtrsPerBlock
	if d.DblInd == 0 {
		return nil
	}
	l1, err := fs.loadPtrBlockLocked(tx, d.DblInd, bi/PtrsPerBlock, false)
	if err != nil || l1 == 0 {
		return err
	}
	return clearSlot(l1, bi%PtrsPerBlock)
}

// FreeBlocks reports how many data blocks are unallocated.
func (fs *FS) FreeBlocks() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var free uint64
	for b := fs.sb.DataStart; b < fs.sb.NBlocks; b++ {
		if fs.bitmap[b/8]&(1<<(b%8)) == 0 {
			free++
		}
	}
	return free
}
