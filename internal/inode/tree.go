package inode

import (
	"encoding/binary"
	"fmt"

	"repro/internal/wal"
)

// This file implements named tree links between inodes. The paper's DBFS is
// organized as "two major inode trees" (§3): tree inodes here hold a packed
// list of (name, child-ino) entries in their data bytes, exactly like a
// minimal directory format. plainfs reuses the same links as directories.

// Dirent is one (name, ino) link inside a tree inode.
type Dirent struct {
	Name string
	Ino  Ino
}

// maxNameLen bounds link names; DBFS uses names like record ids and field
// names, plainfs uses path components.
const maxNameLen = 255

// encodeDirents packs entries into the on-disk format:
// repeated [u16 len][name bytes][u64 ino].
func encodeDirents(ents []Dirent) []byte {
	size := 0
	for _, e := range ents {
		size += 2 + len(e.Name) + 8
	}
	out := make([]byte, size)
	off := 0
	for _, e := range ents {
		binary.LittleEndian.PutUint16(out[off:], uint16(len(e.Name)))
		off += 2
		copy(out[off:], e.Name)
		off += len(e.Name)
		binary.LittleEndian.PutUint64(out[off:], uint64(e.Ino))
		off += 8
	}
	return out
}

// decodeDirents unpacks tree content; a truncated tail is an error because
// tree mutations are journaled and must never be torn.
func decodeDirents(b []byte) ([]Dirent, error) {
	var ents []Dirent
	off := 0
	for off < len(b) {
		if off+2 > len(b) {
			return nil, fmt.Errorf("inode: corrupt tree entry header at %d", off)
		}
		n := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if off+n+8 > len(b) {
			return nil, fmt.Errorf("inode: corrupt tree entry body at %d", off)
		}
		name := string(b[off : off+n])
		off += n
		ino := Ino(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		ents = append(ents, Dirent{Name: name, Ino: ino})
	}
	return ents, nil
}

// loadTree reads and decodes the entries of tree inode t. Caller holds fs.mu.
func (fs *FS) loadTreeLocked(t Ino) ([]Dirent, error) {
	d := &fs.itab[t]
	if d.Mode != ModeTree {
		return nil, fmt.Errorf("%w: inode %d is %v", ErrNotTree, t, d.Mode)
	}
	buf := make([]byte, d.Size)
	// Inline read to avoid re-entering the public locked API.
	read := 0
	blk := make([]byte, 4096)
	for read < len(buf) {
		cur := uint64(read)
		bi := cur / 4096
		bo := cur % 4096
		n := 4096 - bo
		if int(n) > len(buf)-read {
			n = uint64(len(buf) - read)
		}
		phys, err := fs.bmapLocked(nil, t, bi, false)
		if err != nil {
			return nil, err
		}
		if phys == 0 {
			for i := uint64(0); i < n; i++ {
				buf[read+int(i)] = 0
			}
		} else {
			if err := fs.readBlockLocked(nil, phys, blk); err != nil {
				return nil, err
			}
			copy(buf[read:read+int(n)], blk[bo:bo+n])
		}
		read += int(n)
	}
	return decodeDirents(buf)
}

// storeTreeLocked rewrites the full entry list of tree inode t. Caller
// holds fs.mu. The rewrite shares the WriteAt/Truncate implementations'
// journaled path by calling their internals directly; its transactions are
// enqueued, not awaited — the returned tickets are waited on by the caller
// AFTER fs.mu is released, so tree mutations group-commit like everything
// else. On error, the caller still owns the returned tickets.
func (fs *FS) storeTreeLocked(t Ino, ents []Dirent) ([]*wal.Ticket, error) {
	payload := encodeDirents(ents)
	d := &fs.itab[t]
	oldSize := d.Size
	var tickets []*wal.Ticket

	// Write new payload (if any), then shrink if the tree got smaller.
	written := 0
	for written < len(payload) {
		tx := fs.log.Begin()
		chunk := 0
		for written < len(payload) && chunk < fs.maxChunk {
			cur := uint64(written)
			bi := cur / 4096
			bo := cur % 4096
			n := uint64(4096 - bo)
			if int(n) > len(payload)-written {
				n = uint64(len(payload) - written)
			}
			phys, err := fs.bmapLocked(tx, t, bi, true)
			if err != nil {
				tx.Abort()
				return tickets, err
			}
			buf := make([]byte, 4096)
			if bo != 0 || n != 4096 {
				if err := fs.readBlockLocked(tx, phys, buf); err != nil {
					tx.Abort()
					return tickets, err
				}
			}
			copy(buf[bo:], payload[written:written+int(n)])
			if err := tx.Write(phys, buf); err != nil {
				tx.Abort()
				return tickets, err
			}
			written += int(n)
			chunk++
		}
		d.Size = maxU64(d.Size, uint64(written))
		d.MTimeNano = fs.clock.Now().UnixNano()
		if err := fs.flushInodeLocked(tx, t); err != nil {
			tx.Abort()
			return tickets, err
		}
		tk, err := tx.Enqueue()
		if err != nil {
			return tickets, err
		}
		tickets = append(tickets, tk)
	}
	newSize := uint64(len(payload))
	tx := fs.log.Begin()
	if newSize < oldSize {
		// Shrink: free whole blocks past the new end.
		keep := (newSize + 4095) / 4096
		total := (oldSize + 4095) / 4096
		for bi := keep; bi < total; bi++ {
			phys, err := fs.bmapLocked(tx, t, bi, false)
			if err != nil {
				tx.Abort()
				return tickets, err
			}
			if phys == 0 {
				continue
			}
			if err := fs.freeBlockLocked(tx, phys); err != nil {
				tx.Abort()
				return tickets, err
			}
			if err := fs.clearMappingLocked(tx, t, bi); err != nil {
				tx.Abort()
				return tickets, err
			}
		}
		d.MTimeNano = fs.clock.Now().UnixNano()
	}
	d.Size = newSize
	if err := fs.flushInodeLocked(tx, t); err != nil {
		tx.Abort()
		return tickets, err
	}
	tk, err := tx.Enqueue()
	if err != nil {
		return tickets, err
	}
	tickets = append(tickets, tk)
	return tickets, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// AddChild links child under parent with the given name. The name must be
// unique within parent.
func (fs *FS) AddChild(parent Ino, name string, child Ino) error {
	if name == "" || len(name) > maxNameLen {
		return fmt.Errorf("inode: invalid child name %q", name)
	}
	fs.mu.Lock()
	if err := fs.checkInoLocked(parent); err != nil {
		fs.mu.Unlock()
		return err
	}
	if err := fs.checkInoLocked(child); err != nil {
		fs.mu.Unlock()
		return err
	}
	ents, err := fs.loadTreeLocked(parent)
	if err != nil {
		fs.mu.Unlock()
		return err
	}
	for _, e := range ents {
		if e.Name == name {
			fs.mu.Unlock()
			return fmt.Errorf("%w: %q under inode %d", ErrChildExists, name, parent)
		}
	}
	ents = append(ents, Dirent{Name: name, Ino: child})
	tickets, err := fs.storeTreeLocked(parent, ents)
	if err != nil {
		return fs.unlockWait(tickets, err)
	}
	fs.itab[child].Links++
	tx := fs.log.Begin()
	if err := fs.flushInodeLocked(tx, child); err != nil {
		tx.Abort()
		return fs.unlockWait(tickets, err)
	}
	tk, err := tx.Enqueue()
	return fs.unlockWait(append(tickets, tk), err)
}

// RemoveChild unlinks the named child from parent. The child inode itself is
// not freed; callers decide (FreeInode) once Links drops to zero.
func (fs *FS) RemoveChild(parent Ino, name string) error {
	fs.mu.Lock()
	if err := fs.checkInoLocked(parent); err != nil {
		fs.mu.Unlock()
		return err
	}
	ents, err := fs.loadTreeLocked(parent)
	if err != nil {
		fs.mu.Unlock()
		return err
	}
	idx := -1
	for i, e := range ents {
		if e.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %q under inode %d", ErrChildNotFound, name, parent)
	}
	child := ents[idx].Ino
	ents = append(ents[:idx], ents[idx+1:]...)
	tickets, err := fs.storeTreeLocked(parent, ents)
	if err != nil {
		return fs.unlockWait(tickets, err)
	}
	if uint64(child) < fs.sb.NInodes && fs.itab[child].Mode != ModeFree && fs.itab[child].Links > 0 {
		fs.itab[child].Links--
		tx := fs.log.Begin()
		if err := fs.flushInodeLocked(tx, child); err != nil {
			tx.Abort()
			return fs.unlockWait(tickets, err)
		}
		tk, err := tx.Enqueue()
		return fs.unlockWait(append(tickets, tk), err)
	}
	return fs.unlockWait(tickets, nil)
}

// Lookup resolves the named child of parent.
func (fs *FS) Lookup(parent Ino, name string) (Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkInoLocked(parent); err != nil {
		return 0, err
	}
	ents, err := fs.loadTreeLocked(parent)
	if err != nil {
		return 0, err
	}
	for _, e := range ents {
		if e.Name == name {
			return e.Ino, nil
		}
	}
	return 0, fmt.Errorf("%w: %q under inode %d", ErrChildNotFound, name, parent)
}

// Children lists the links of a tree inode in insertion order.
func (fs *FS) Children(parent Ino) ([]Dirent, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkInoLocked(parent); err != nil {
		return nil, err
	}
	return fs.loadTreeLocked(parent)
}
