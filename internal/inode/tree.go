package inode

import (
	"encoding/binary"
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/wal"
)

// This file implements named tree links between inodes. The paper's DBFS is
// organized as "two major inode trees" (§3): tree inodes here hold a packed
// list of (name, child-ino) entries in their data bytes, exactly like a
// minimal directory format. plainfs reuses the same links as directories.
//
// Two-inode operations (link and unlink touch both the parent tree and the
// child's link count) hold both actors via exec2, which always forwards
// from the lower inode into the higher — the ordered-forwarding rule that
// makes deadlock impossible. RemoveChild only learns the child inode from
// the parent's entry list, so it peeks under the parent alone, then
// retakes both actors in order and revalidates (Biscuit's lock-in-order +
// recheck pattern), retrying if a concurrent mutation moved the name.

// Dirent is one (name, ino) link inside a tree inode.
type Dirent struct {
	Name string
	Ino  Ino
}

// maxNameLen bounds link names; DBFS uses names like record ids and field
// names, plainfs uses path components.
const maxNameLen = 255

// encodeDirents packs entries into the on-disk format:
// repeated [u16 len][name bytes][u64 ino].
func encodeDirents(ents []Dirent) []byte {
	size := 0
	for _, e := range ents {
		size += 2 + len(e.Name) + 8
	}
	out := make([]byte, size)
	off := 0
	for _, e := range ents {
		binary.LittleEndian.PutUint16(out[off:], uint16(len(e.Name)))
		off += 2
		copy(out[off:], e.Name)
		off += len(e.Name)
		binary.LittleEndian.PutUint64(out[off:], uint64(e.Ino))
		off += 8
	}
	return out
}

// decodeDirents unpacks tree content; a truncated tail is an error because
// tree mutations are journaled and must never be torn. Hot DBFS subject
// trees hold hundreds of entries and are re-decoded on every lookup, so the
// decode counts entries first (one exact allocation, no growslice) and
// carves all names out of a single string conversion of the payload.
func decodeDirents(b []byte) ([]Dirent, error) {
	count := 0
	for off := 0; off < len(b); count++ {
		if off+2 > len(b) {
			return nil, fmt.Errorf("inode: corrupt tree entry header at %d", off)
		}
		n := int(binary.LittleEndian.Uint16(b[off:]))
		if off+2+n+8 > len(b) {
			return nil, fmt.Errorf("inode: corrupt tree entry body at %d", off+2)
		}
		off += 2 + n + 8
	}
	s := string(b)
	ents := make([]Dirent, 0, count)
	off := 0
	for off < len(b) {
		n := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		name := s[off : off+n]
		off += n
		ino := Ino(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		ents = append(ents, Dirent{Name: name, Ino: ino})
	}
	return ents, nil
}

// findDirent scans packed tree content for one name without materializing
// the entry list — the Lookup fast path allocates nothing beyond the
// payload read itself.
func findDirent(b []byte, name string) (Ino, bool, error) {
	off := 0
	for off < len(b) {
		if off+2 > len(b) {
			return 0, false, fmt.Errorf("inode: corrupt tree entry header at %d", off)
		}
		n := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if off+n+8 > len(b) {
			return 0, false, fmt.Errorf("inode: corrupt tree entry body at %d", off)
		}
		if n == len(name) && string(b[off:off+n]) == name {
			return Ino(binary.LittleEndian.Uint64(b[off+n:])), true, nil
		}
		off += n + 8
	}
	return 0, false, nil
}

// loadTree reads and decodes the entries of the working tree copy d. The
// caller owns d's inode (actor or serial mode).
func (fs *FS) loadTree(d *dinode, t Ino) ([]Dirent, error) {
	buf, err := fs.loadTreeBytes(d, t)
	if err != nil {
		return nil, err
	}
	return decodeDirents(buf)
}

// loadTreeBytes reads the packed entry payload of the working tree copy d
// without decoding it. The caller owns d's inode.
func (fs *FS) loadTreeBytes(d *dinode, t Ino) ([]byte, error) {
	if d.Mode != ModeTree {
		return nil, fmt.Errorf("%w: inode %d is %v", ErrNotTree, t, d.Mode)
	}
	buf := make([]byte, d.Size)
	read := 0
	blk := make([]byte, blockdev.BlockSize)
	for read < len(buf) {
		cur := uint64(read)
		bi := cur / blockdev.BlockSize
		bo := cur % blockdev.BlockSize
		n := blockdev.BlockSize - bo
		if int(n) > len(buf)-read {
			n = uint64(len(buf) - read)
		}
		phys, err := fs.bmap(nil, d, bi, false)
		if err != nil {
			return nil, err
		}
		if phys == 0 {
			for i := uint64(0); i < n; i++ {
				buf[read+int(i)] = 0
			}
		} else {
			if err := fs.readBlock(nil, phys, blk); err != nil {
				return nil, err
			}
			copy(buf[read:read+int(n)], blk[bo:bo+n])
		}
		read += int(n)
	}
	return buf, nil
}

// storeTree rewrites the full entry list of tree inode t through its
// working copy d. The caller owns t's actor. Transactions are enqueued, not
// awaited — the returned tickets are waited on by the caller AFTER actor
// ownership is released, so tree mutations group-commit like everything
// else. On error, the caller still owns the returned tickets.
func (fs *FS) storeTree(d *dinode, t Ino, ents []Dirent) ([]*wal.Ticket, error) {
	payload := encodeDirents(ents)
	oldSize := d.Size
	var tickets []*wal.Ticket

	// Write new payload (if any), then shrink if the tree got smaller.
	written := 0
	for written < len(payload) {
		m := fs.begin()
		chunk := 0
		for written < len(payload) && chunk < fs.maxChunk {
			cur := uint64(written)
			bi := cur / blockdev.BlockSize
			bo := cur % blockdev.BlockSize
			n := uint64(blockdev.BlockSize - bo)
			if int(n) > len(payload)-written {
				n = uint64(len(payload) - written)
			}
			phys, err := fs.bmap(m, d, bi, true)
			if err != nil {
				m.abort()
				return tickets, err
			}
			buf := make([]byte, blockdev.BlockSize)
			if bo != 0 || n != blockdev.BlockSize {
				if err := m.readBlock(phys, buf); err != nil {
					m.abort()
					return tickets, err
				}
			}
			copy(buf[bo:], payload[written:written+int(n)])
			if err := m.tx.Write(phys, buf); err != nil {
				m.abort()
				return tickets, err
			}
			written += int(n)
			chunk++
		}
		d.Size = maxU64(d.Size, uint64(written))
		d.MTimeNano = fs.clock.Now().UnixNano()
		tk, err := m.enqueue(pub{t, d})
		if err != nil {
			m.abort()
			return tickets, err
		}
		tickets = append(tickets, tk)
	}
	newSize := uint64(len(payload))
	m := fs.begin()
	if newSize < oldSize {
		// Shrink: free whole blocks past the new end.
		keep := (newSize + blockdev.BlockSize - 1) / blockdev.BlockSize
		total := (oldSize + blockdev.BlockSize - 1) / blockdev.BlockSize
		for bi := keep; bi < total; bi++ {
			phys, err := fs.bmap(m, d, bi, false)
			if err != nil {
				m.abort()
				return tickets, err
			}
			if phys == 0 {
				continue
			}
			if err := m.free(phys); err != nil {
				m.abort()
				return tickets, err
			}
			if err := fs.clearMapping(m, d, bi); err != nil {
				m.abort()
				return tickets, err
			}
		}
		d.MTimeNano = fs.clock.Now().UnixNano()
	}
	d.Size = newSize
	tk, err := m.enqueue(pub{t, d})
	if err != nil {
		m.abort()
		return tickets, err
	}
	tickets = append(tickets, tk)
	return tickets, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// AddChild links child under parent with the given name. The name must be
// unique within parent. Both actors are held (in ascending inode order) so
// the parent's entry rewrite and the child's link-count bump are one
// atomic step with respect to other tree operations.
func (fs *FS) AddChild(parent Ino, name string, child Ino) error {
	if name == "" || len(name) > maxNameLen {
		return fmt.Errorf("inode: invalid child name %q", name)
	}
	if err := fs.rangeCheck(parent); err != nil {
		return err
	}
	if err := fs.rangeCheck(child); err != nil {
		return err
	}
	var (
		tickets []*wal.Ticket
		opErr   error
	)
	fs.exec2(parent, child, func() {
		pd, err := fs.loadAlive(parent)
		if err != nil {
			opErr = err
			return
		}
		if _, err := fs.loadAlive(child); err != nil {
			opErr = err
			return
		}
		ents, err := fs.loadTree(&pd, parent)
		if err != nil {
			opErr = err
			return
		}
		for _, e := range ents {
			if e.Name == name {
				opErr = fmt.Errorf("%w: %q under inode %d", ErrChildExists, name, parent)
				return
			}
		}
		ents = append(ents, Dirent{Name: name, Ino: child})
		tickets, opErr = fs.storeTree(&pd, parent, ents)
		if opErr != nil {
			return
		}
		// Reload the child AFTER the store so that when parent == child
		// (a tree linked to itself) the bump applies to the freshly
		// published copy, not a pre-store snapshot.
		cd := fs.loadInode(child)
		cd.Links++
		m := fs.begin()
		tk, err := m.enqueue(pub{child, &cd})
		if err != nil {
			m.abort()
			opErr = err
			return
		}
		tickets = append(tickets, tk)
	})
	if werr := waitTickets(tickets); werr != nil {
		return werr
	}
	return opErr
}

// RemoveChild unlinks the named child from parent. The child inode itself is
// not freed; callers decide (FreeInode) once Links drops to zero.
//
// The child inode is only discoverable from the parent's entries, so the
// operation peeks under the parent's actor alone, then retakes parent AND
// child in ascending order and revalidates that the name still maps to the
// same child — retrying if a concurrent mutation won the race. Forwarding
// stays ascending-only in both phases, so no cycle can form.
func (fs *FS) RemoveChild(parent Ino, name string) error {
	if err := fs.rangeCheck(parent); err != nil {
		return err
	}
	for {
		var (
			child Ino
			found bool
			opErr error
		)
		fs.exec(parent, func() {
			pd, err := fs.loadAlive(parent)
			if err != nil {
				opErr = err
				return
			}
			ents, err := fs.loadTree(&pd, parent)
			if err != nil {
				opErr = err
				return
			}
			for _, e := range ents {
				if e.Name == name {
					child, found = e.Ino, true
					return
				}
			}
		})
		if opErr != nil {
			return opErr
		}
		if !found {
			return fmt.Errorf("%w: %q under inode %d", ErrChildNotFound, name, parent)
		}

		// A corrupt entry can name an out-of-range child; fall back to
		// parent-only ownership and skip the link-count update, exactly
		// like the pre-actor code's range guard.
		target := parent
		if child != 0 && uint64(child) < fs.sb.NInodes {
			target = child
		}
		var (
			tickets []*wal.Ticket
			done    bool
		)
		fs.exec2(parent, target, func() {
			pd, err := fs.loadAlive(parent)
			if err != nil {
				opErr = err
				return
			}
			ents, err := fs.loadTree(&pd, parent)
			if err != nil {
				opErr = err
				return
			}
			idx := -1
			for i, e := range ents {
				if e.Name == name && e.Ino == child {
					idx = i
					break
				}
			}
			if idx < 0 {
				// Lost the race between peek and retake; retry.
				return
			}
			done = true
			ents = append(ents[:idx], ents[idx+1:]...)
			tickets, opErr = fs.storeTree(&pd, parent, ents)
			if opErr != nil {
				return
			}
			if target != child {
				return
			}
			cd := fs.loadInode(child)
			if cd.Mode != ModeFree && cd.Links > 0 {
				cd.Links--
				m := fs.begin()
				tk, err := m.enqueue(pub{child, &cd})
				if err != nil {
					m.abort()
					opErr = err
					return
				}
				tickets = append(tickets, tk)
			}
		})
		if werr := waitTickets(tickets); werr != nil {
			return werr
		}
		if opErr != nil {
			return opErr
		}
		if done {
			return nil
		}
	}
}

// Lookup resolves the named child of parent.
func (fs *FS) Lookup(parent Ino, name string) (Ino, error) {
	if err := fs.rangeCheck(parent); err != nil {
		return 0, err
	}
	var (
		child Ino
		found bool
		opErr error
	)
	fs.exec(parent, func() {
		pd, err := fs.loadAlive(parent)
		if err != nil {
			opErr = err
			return
		}
		buf, err := fs.loadTreeBytes(&pd, parent)
		if err != nil {
			opErr = err
			return
		}
		child, found, opErr = findDirent(buf, name)
	})
	if opErr != nil {
		return 0, opErr
	}
	if !found {
		return 0, fmt.Errorf("%w: %q under inode %d", ErrChildNotFound, name, parent)
	}
	return child, nil
}

// Children lists the links of a tree inode in insertion order.
func (fs *FS) Children(parent Ino) ([]Dirent, error) {
	if err := fs.rangeCheck(parent); err != nil {
		return nil, err
	}
	var (
		ents  []Dirent
		opErr error
	)
	fs.exec(parent, func() {
		pd, err := fs.loadAlive(parent)
		if err != nil {
			opErr = err
			return
		}
		ents, opErr = fs.loadTree(&pd, parent)
	})
	return ents, opErr
}
