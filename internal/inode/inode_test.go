package inode

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/blockdev"
	"repro/internal/simclock"
)

// newFS formats a fresh filesystem on an in-memory device.
func newFS(t *testing.T, blocks uint64) (*blockdev.Mem, *FS) {
	t.Helper()
	dev := blockdev.MustMem(blocks)
	fs, err := Format(dev, Options{NInodes: 256, JournalBlocks: 64, Clock: simclock.NewSim(simclock.Epoch)})
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return dev, fs
}

func TestFormatCreatesRoot(t *testing.T) {
	_, fs := newFS(t, 512)
	info, err := fs.Stat(RootIno)
	if err != nil {
		t.Fatalf("Stat(root): %v", err)
	}
	if info.Mode != ModeTree || info.Tag != "root" {
		t.Fatalf("root info = %+v", info)
	}
}

func TestFormatTooSmall(t *testing.T) {
	dev := blockdev.MustMem(16)
	if _, err := Format(dev, Options{NInodes: 256, JournalBlocks: 64}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Format on tiny device err = %v, want ErrNoSpace", err)
	}
}

func TestAllocFreeInode(t *testing.T) {
	_, fs := newFS(t, 512)
	ino, err := fs.AllocInode(ModeFile, "pd")
	if err != nil {
		t.Fatalf("AllocInode: %v", err)
	}
	info, err := fs.Stat(ino)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != ModeFile || info.Tag != "pd" || info.Size != 0 {
		t.Fatalf("info = %+v", info)
	}
	if err := fs.FreeInode(ino); err != nil {
		t.Fatalf("FreeInode: %v", err)
	}
	if _, err := fs.Stat(ino); !errors.Is(err, ErrBadInode) {
		t.Fatalf("Stat after free err = %v, want ErrBadInode", err)
	}
}

func TestAllocModeFreeRejected(t *testing.T) {
	_, fs := newFS(t, 512)
	if _, err := fs.AllocInode(ModeFree, ""); !errors.Is(err, ErrBadInode) {
		t.Fatalf("AllocInode(ModeFree) err = %v, want ErrBadInode", err)
	}
}

func TestTagLimits(t *testing.T) {
	_, fs := newFS(t, 512)
	long := string(make([]byte, MaxTagLen+1))
	if _, err := fs.AllocInode(ModeFile, long); !errors.Is(err, ErrTagTooLong) {
		t.Fatalf("long tag err = %v, want ErrTagTooLong", err)
	}
	ino, err := fs.AllocInode(ModeFile, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.SetTag(ino, "schema:user"); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat(ino)
	if info.Tag != "schema:user" {
		t.Fatalf("Tag = %q", info.Tag)
	}
}

func TestWriteReadSmall(t *testing.T) {
	_, fs := newFS(t, 512)
	ino, err := fs.AllocInode(ModeFile, "")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, dbfs")
	n, err := fs.WriteAt(ino, 0, data)
	if err != nil || n != len(data) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	out := make([]byte, len(data))
	n, err = fs.ReadAt(ino, 0, out)
	if err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(data, out) {
		t.Fatalf("round trip: %q != %q", out, data)
	}
}

func TestWriteReadOffsets(t *testing.T) {
	_, fs := newFS(t, 1024)
	ino, _ := fs.AllocInode(ModeFile, "")
	// Write a pattern spanning three blocks at an unaligned offset.
	data := make([]byte, 3*blockdev.BlockSize)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	off := uint64(blockdev.BlockSize/2 + 17)
	if _, err := fs.WriteAt(ino, off, data); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	info, _ := fs.Stat(ino)
	if want := off + uint64(len(data)); info.Size != want {
		t.Fatalf("Size = %d, want %d", info.Size, want)
	}
	out := make([]byte, len(data))
	if _, err := fs.ReadAt(ino, off, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, out) {
		t.Fatal("unaligned round trip mismatch")
	}
	// The hole before off reads as zeros.
	hole := make([]byte, off)
	if _, err := fs.ReadAt(ino, 0, hole); err != nil {
		t.Fatal(err)
	}
	for i, b := range hole {
		if b != 0 {
			t.Fatalf("hole byte %d = %d, want 0", i, b)
		}
	}
}

func TestReadPastEnd(t *testing.T) {
	_, fs := newFS(t, 512)
	ino, _ := fs.AllocInode(ModeFile, "")
	if _, err := fs.WriteAt(ino, 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 10)
	n, err := fs.ReadAt(ino, 0, out)
	if err != nil || n != 3 {
		t.Fatalf("ReadAt over end = %d, %v; want 3, nil", n, err)
	}
	n, err = fs.ReadAt(ino, 100, out)
	if err != nil || n != 0 {
		t.Fatalf("ReadAt past end = %d, %v; want 0, nil", n, err)
	}
}

func TestIndirectBlocks(t *testing.T) {
	_, fs := newFS(t, 2048)
	ino, _ := fs.AllocInode(ModeFile, "")
	// Past the 12 direct blocks into single-indirect territory.
	size := (NumDirect + 5) * blockdev.BlockSize
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i % 249)
	}
	if _, err := fs.WriteAt(ino, 0, data); err != nil {
		t.Fatalf("indirect WriteAt: %v", err)
	}
	out := make([]byte, size)
	if _, err := fs.ReadAt(ino, 0, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, out) {
		t.Fatal("indirect round trip mismatch")
	}
}

func TestDoubleIndirectBlocks(t *testing.T) {
	_, fs := newFS(t, 2048)
	ino, _ := fs.AllocInode(ModeFile, "")
	// One write landing in double-indirect range: block index > 12 + 512.
	off := uint64(NumDirect+PtrsPerBlock+3) * blockdev.BlockSize
	data := []byte("deep block")
	if _, err := fs.WriteAt(ino, off, data); err != nil {
		t.Fatalf("double-indirect WriteAt: %v", err)
	}
	out := make([]byte, len(data))
	if _, err := fs.ReadAt(ino, off, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, out) {
		t.Fatal("double-indirect round trip mismatch")
	}
}

func TestTruncateShrinks(t *testing.T) {
	_, fs := newFS(t, 1024)
	ino, _ := fs.AllocInode(ModeFile, "")
	data := make([]byte, 5*blockdev.BlockSize)
	if _, err := fs.WriteAt(ino, 0, data); err != nil {
		t.Fatal(err)
	}
	before := fs.FreeBlocks()
	if err := fs.Truncate(ino, blockdev.BlockSize); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	info, _ := fs.Stat(ino)
	if info.Size != blockdev.BlockSize {
		t.Fatalf("Size after truncate = %d", info.Size)
	}
	if after := fs.FreeBlocks(); after != before+4 {
		t.Fatalf("FreeBlocks = %d, want %d", after, before+4)
	}
}

func TestFreeInodeReleasesBlocks(t *testing.T) {
	_, fs := newFS(t, 1024)
	before := fs.FreeBlocks()
	ino, _ := fs.AllocInode(ModeFile, "")
	data := make([]byte, 20*blockdev.BlockSize) // uses indirect too
	if _, err := fs.WriteAt(ino, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := fs.FreeInode(ino); err != nil {
		t.Fatal(err)
	}
	if after := fs.FreeBlocks(); after != before {
		t.Fatalf("FreeBlocks after free = %d, want %d", after, before)
	}
}

func TestFreeLeavesResidue(t *testing.T) {
	// The ext4-like residue semantics the GDPR experiments rely on:
	// deleting a file leaves its plaintext in free space.
	dev, fs := newFS(t, 512)
	ino, _ := fs.AllocInode(ModeFile, "")
	secret := []byte("residue:alice:hiv-positive")
	if _, err := fs.WriteAt(ino, 0, secret); err != nil {
		t.Fatal(err)
	}
	if err := fs.FreeInode(ino); err != nil {
		t.Fatal(err)
	}
	if hits := blockdev.FindResidue(dev, secret); len(hits) == 0 {
		t.Fatal("expected residue after FreeInode, found none")
	}
}

func TestSecureFreeScrubsHomeBlocks(t *testing.T) {
	dev, fs := newFS(t, 512)
	ino, _ := fs.AllocInode(ModeFile, "")
	secret := []byte("scrubme:bob:criminal-record")
	if _, err := fs.WriteAt(ino, 0, secret); err != nil {
		t.Fatal(err)
	}
	if err := fs.SecureFreeInode(ino); err != nil {
		t.Fatal(err)
	}
	// Home blocks are scrubbed, but the journal still holds the old image:
	// SecureFree alone is NOT enough for the right to be forgotten.
	hits := blockdev.FindResidue(dev, secret)
	jStart, jLen := fs.JournalRegion()
	for _, h := range hits {
		if h < jStart || h >= jStart+jLen {
			t.Fatalf("residue outside journal at block %d after SecureFree", h)
		}
	}
	if len(hits) == 0 {
		t.Fatal("journal should still hold the old image (redo logging)")
	}
}

func TestMountRecoversState(t *testing.T) {
	dev, fs := newFS(t, 512)
	ino, err := fs.AllocInode(ModeFile, "persist")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino, 0, []byte("durable data")); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(dev, simclock.NewSim(simclock.Epoch))
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	info, err := fs2.Stat(ino)
	if err != nil {
		t.Fatal(err)
	}
	if info.Tag != "persist" {
		t.Fatalf("Tag after mount = %q", info.Tag)
	}
	out := make([]byte, 12)
	if _, err := fs2.ReadAt(ino, 0, out); err != nil {
		t.Fatal(err)
	}
	if string(out) != "durable data" {
		t.Fatalf("data after mount = %q", out)
	}
}

func TestMountUnformatted(t *testing.T) {
	dev := blockdev.MustMem(64)
	if _, err := Mount(dev, nil); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("Mount unformatted err = %v, want ErrNotFormatted", err)
	}
}

func TestTreeAddLookupRemove(t *testing.T) {
	_, fs := newFS(t, 512)
	child, _ := fs.AllocInode(ModeFile, "")
	if err := fs.AddChild(RootIno, "alice", child); err != nil {
		t.Fatalf("AddChild: %v", err)
	}
	got, err := fs.Lookup(RootIno, "alice")
	if err != nil || got != child {
		t.Fatalf("Lookup = %d, %v", got, err)
	}
	if err := fs.AddChild(RootIno, "alice", child); !errors.Is(err, ErrChildExists) {
		t.Fatalf("duplicate AddChild err = %v, want ErrChildExists", err)
	}
	info, _ := fs.Stat(child)
	if info.Links != 1 {
		t.Fatalf("Links = %d, want 1", info.Links)
	}
	if err := fs.RemoveChild(RootIno, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(RootIno, "alice"); !errors.Is(err, ErrChildNotFound) {
		t.Fatalf("Lookup after remove err = %v, want ErrChildNotFound", err)
	}
	info, _ = fs.Stat(child)
	if info.Links != 0 {
		t.Fatalf("Links after remove = %d, want 0", info.Links)
	}
}

func TestTreeManyChildren(t *testing.T) {
	_, fs := newFS(t, 2048)
	names := make(map[string]Ino)
	for i := 0; i < 200; i++ {
		ino, err := fs.AllocInode(ModeFile, "")
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		name := "subject-" + string(rune('a'+i%26)) + "-" + string(rune('0'+i%10)) + "-" + itoa(i)
		if err := fs.AddChild(RootIno, name, ino); err != nil {
			t.Fatalf("AddChild %d: %v", i, err)
		}
		names[name] = ino
	}
	ents, err := fs.Children(RootIno)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 200 {
		t.Fatalf("Children = %d, want 200", len(ents))
	}
	for name, want := range names {
		got, err := fs.Lookup(RootIno, name)
		if err != nil || got != want {
			t.Fatalf("Lookup(%q) = %d, %v; want %d", name, got, err, want)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestTreeOnFileRejected(t *testing.T) {
	_, fs := newFS(t, 512)
	f, _ := fs.AllocInode(ModeFile, "")
	c, _ := fs.AllocInode(ModeFile, "")
	if err := fs.AddChild(f, "x", c); !errors.Is(err, ErrNotTree) {
		t.Fatalf("AddChild on file err = %v, want ErrNotTree", err)
	}
}

func TestFreeNonEmptyTreeRejected(t *testing.T) {
	_, fs := newFS(t, 512)
	tree, _ := fs.AllocInode(ModeTree, "")
	c, _ := fs.AllocInode(ModeFile, "")
	if err := fs.AddChild(tree, "x", c); err != nil {
		t.Fatal(err)
	}
	if err := fs.FreeInode(tree); !errors.Is(err, ErrTreeNotEmpty) {
		t.Fatalf("FreeInode(non-empty tree) err = %v, want ErrTreeNotEmpty", err)
	}
}

func TestInodeExhaustion(t *testing.T) {
	dev := blockdev.MustMem(4096)
	fs, err := Format(dev, Options{NInodes: 16, JournalBlocks: 16, Clock: simclock.NewSim(simclock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	// Root uses ino 1; the table holds 16, so 14 more allocs succeed.
	for i := 0; i < 14; i++ {
		if _, err := fs.AllocInode(ModeFile, ""); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := fs.AllocInode(ModeFile, ""); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("exhausted alloc err = %v, want ErrNoSpace", err)
	}
}

func TestBlockExhaustion(t *testing.T) {
	dev := blockdev.MustMem(96)
	fs, err := Format(dev, Options{NInodes: 32, JournalBlocks: 16, Clock: simclock.NewSim(simclock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	ino, _ := fs.AllocInode(ModeFile, "")
	big := make([]byte, 100*blockdev.BlockSize)
	if _, err := fs.WriteAt(ino, 0, big); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversized write err = %v, want ErrNoSpace", err)
	}
}

func TestInodeCodecRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(mode uint8, links uint32, size uint64, mtime int64, tagBytes []byte) bool {
		if len(tagBytes) > MaxTagLen {
			tagBytes = tagBytes[:MaxTagLen]
		}
		in := dinode{
			Mode:      Mode(mode%3 + 1),
			Links:     links,
			Size:      size,
			MTimeNano: mtime,
			Tag:       string(tagBytes),
		}
		for i := range in.Direct {
			in.Direct[i] = size + uint64(i)
		}
		in.Indirect = size ^ 0xdead
		in.DblInd = size ^ 0xbeef
		buf := make([]byte, InodeSize)
		encodeInode(in, buf)
		out := decodeInode(buf)
		return in.Mode == out.Mode && in.Links == out.Links && in.Size == out.Size &&
			in.MTimeNano == out.MTimeNano && in.Tag == out.Tag &&
			in.Direct == out.Direct && in.Indirect == out.Indirect && in.DblInd == out.DblInd
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDirentCodecRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	err := quick.Check(func(names []string, inos []uint64) bool {
		n := len(names)
		if len(inos) < n {
			n = len(inos)
		}
		in := make([]Dirent, 0, n)
		for i := 0; i < n; i++ {
			name := names[i]
			if len(name) > maxNameLen {
				name = name[:maxNameLen]
			}
			in = append(in, Dirent{Name: name, Ino: Ino(inos[i])})
		}
		out, err := decodeDirents(encodeDirents(in))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDirentDecodeCorrupt(t *testing.T) {
	if _, err := decodeDirents([]byte{5}); err == nil {
		t.Fatal("decodeDirents accepted truncated header")
	}
	// Header claims 10-byte name but body is short.
	if _, err := decodeDirents([]byte{10, 0, 'a', 'b'}); err == nil {
		t.Fatal("decodeDirents accepted truncated body")
	}
}
