package inode

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/simclock"
)

// TestActorSerializesOneInode hammers a single inode from many goroutines,
// each doing read-modify-write cycles on its own 64-byte slot of the SAME
// device block. A partial-block write reads the block image and rewrites it
// whole, so any two interleaved cycles that are not serialized lose one
// slot's update. The actor must serialize them: every slot ends at exactly
// its round count.
func TestActorSerializesOneInode(t *testing.T) {
	_, fs := newFS(t, 1024)
	ino, err := fs.AllocInode(ModeFile, "shared")
	if err != nil {
		t.Fatal(err)
	}
	// Materialize the block so every cycle is a partial overwrite.
	if _, err := fs.WriteAt(ino, 0, make([]byte, blockdev.BlockSize)); err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		rounds  = 25
		slot    = 64
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			off := uint64(w * slot)
			buf := make([]byte, slot)
			for r := 0; r < rounds; r++ {
				if _, err := fs.ReadAt(ino, off, buf); err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				buf[0]++
				if _, err := fs.WriteAt(ino, off, buf); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	final := make([]byte, workers*slot)
	if _, err := fs.ReadAt(ino, 0, final); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		if got := final[w*slot]; got != rounds {
			t.Fatalf("worker %d slot = %d, want %d (lost updates: ops not serialized)", w, got, rounds)
		}
	}
}

// TestActorParkAndReEnsure checks the idaemon lifecycle: the registry
// drains to empty after sequential operations (daemons park on idle), and
// a parked inode's next operation re-ensures a fresh daemon that serves
// correctly — over many churn cycles.
func TestActorParkAndReEnsure(t *testing.T) {
	_, fs := newFS(t, 1024)
	ino, err := fs.AllocInode(ModeFile, "churn")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("park and re-ensure")
	for cycle := 0; cycle < 50; cycle++ {
		if _, err := fs.WriteAt(ino, 0, payload); err != nil {
			t.Fatalf("cycle %d write: %v", cycle, err)
		}
		got := make([]byte, len(payload))
		if _, err := fs.ReadAt(ino, 0, got); err != nil {
			t.Fatalf("cycle %d read: %v", cycle, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("cycle %d data corrupted", cycle)
		}
		if n := fs.LiveActors(); n != 0 {
			t.Fatalf("cycle %d: %d live actors after sequential op, want 0 (park broken)", cycle, n)
		}
	}
}

// TestTwoInodeOpsNoDeadlock cross-links two trees from two goroutines in
// opposite argument orders. Naive lock-in-argument-order would deadlock;
// the ascending-inode forwarding rule in exec2 must not. The test fails by
// timeout if ownership ever cycles.
func TestTwoInodeOpsNoDeadlock(t *testing.T) {
	_, fs := newFS(t, 2048)
	t1, err := fs.AllocInode(ModeTree, "t1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := fs.AllocInode(ModeTree, "t2")
	if err != nil {
		t.Fatal(err)
	}
	if t1 >= t2 {
		t.Fatalf("expected ascending allocation, got %d >= %d", t1, t2)
	}

	const rounds = 40
	run := func(parent, child Ino, name string) error {
		for i := 0; i < rounds; i++ {
			if err := fs.AddChild(parent, name, child); err != nil {
				return fmt.Errorf("add %s: %w", name, err)
			}
			if err := fs.RemoveChild(parent, name); err != nil {
				return fmt.Errorf("remove %s: %w", name, err)
			}
		}
		return nil
	}
	errs := make(chan error, 2)
	go func() { errs <- run(t1, t2, "fwd") }()
	go func() { errs <- run(t2, t1, "rev") }()
	timeout := time.After(60 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-timeout:
			t.Fatal("deadlock: cross-order two-inode ops did not finish")
		}
	}
	for _, ino := range []Ino{t1, t2} {
		info, err := fs.Stat(ino)
		if err != nil {
			t.Fatal(err)
		}
		if info.Links != 0 {
			t.Fatalf("inode %d Links = %d after balanced add/remove, want 0", ino, info.Links)
		}
		kids, err := fs.Children(ino)
		if err != nil {
			t.Fatal(err)
		}
		if len(kids) != 0 {
			t.Fatalf("inode %d has %d children left", ino, len(kids))
		}
	}
}

// TestConcurrentRemoveSameName races two removers of one name; exactly one
// must win and the loser must see ErrChildNotFound (exercising the
// peek/retake revalidation path in RemoveChild).
func TestConcurrentRemoveSameName(t *testing.T) {
	_, fs := newFS(t, 1024)
	dir, err := fs.AllocInode(ModeTree, "dir")
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		child, err := fs.AllocInode(ModeFile, "c")
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.AddChild(dir, "victim", child); err != nil {
			t.Fatal(err)
		}
		errs := make(chan error, 2)
		go func() { errs <- fs.RemoveChild(dir, "victim") }()
		go func() { errs <- fs.RemoveChild(dir, "victim") }()
		var wins, misses int
		for i := 0; i < 2; i++ {
			switch err := <-errs; {
			case err == nil:
				wins++
			case errors.Is(err, ErrChildNotFound):
				misses++
			default:
				t.Fatalf("round %d: unexpected error %v", round, err)
			}
		}
		if wins != 1 || misses != 1 {
			t.Fatalf("round %d: wins=%d misses=%d, want exactly one winner", round, wins, misses)
		}
		if err := fs.FreeInode(child); err != nil {
			t.Fatalf("round %d: free child: %v", round, err)
		}
	}
}

// TestSerialOpsAblation runs the same workload with the pre-actor serial
// mode on: results must be identical, only the concurrency differs. This
// keeps the SC5 baseline configuration honest.
func TestSerialOpsAblation(t *testing.T) {
	_, fs := newFS(t, 1024)
	fs.SetSerialOps(true)
	ino, err := fs.AllocInode(ModeFile, "serial")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := []byte{byte(w + 1)}
			for r := 0; r < 10; r++ {
				if _, err := fs.WriteAt(ino, uint64(w), buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got := make([]byte, 4)
	if _, err := fs.ReadAt(ino, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("serial-mode result = %v", got)
	}
	if n := fs.LiveActors(); n != 0 {
		t.Fatalf("serial mode spawned %d actors", n)
	}
}

// cuttableDev passes writes through until its budget is spent, then fails
// them — pulling the power cord mid commit. Like the WAL tests' cutoffDev
// it deliberately does not implement VectorWriter, so batched journal
// writes degrade to per-block writes and the cut lands on a block boundary.
type cuttableDev struct {
	dev blockdev.Device

	mu     sync.Mutex
	budget int // negative = unlimited
}

func (c *cuttableDev) ReadBlock(n uint64, buf []byte) error { return c.dev.ReadBlock(n, buf) }
func (c *cuttableDev) NumBlocks() uint64                    { return c.dev.NumBlocks() }
func (c *cuttableDev) Stats() blockdev.Stats                { return c.dev.Stats() }

func (c *cuttableDev) setBudget(n int) {
	c.mu.Lock()
	c.budget = n
	c.mu.Unlock()
}

func (c *cuttableDev) WriteBlock(n uint64, data []byte) error {
	c.mu.Lock()
	ok := c.budget != 0
	if c.budget > 0 {
		c.budget--
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: power cut", blockdev.ErrIO)
	}
	return c.dev.WriteBlock(n, data)
}

func (c *cuttableDev) Sync() error {
	c.mu.Lock()
	ok := c.budget != 0
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: power cut", blockdev.ErrIO)
	}
	return c.dev.Sync()
}

// TestCacheWriteBackCrashOrdering is the write-back crash-injection
// contract: with a deliberately tiny buffer cache (evictions churning
// throughout) the power is cut after a transaction's journal data blocks
// but before its commit record. No home block of the torn transaction may
// be durable — write-back must never reorder a block ahead of its commit
// record — and a fresh mount must recover exactly the pre-cut state.
func TestCacheWriteBackCrashOrdering(t *testing.T) {
	mem := blockdev.MustMem(512)
	cut := &cuttableDev{dev: mem, budget: -1}
	fs, err := Format(cut, Options{
		NInodes:       64,
		JournalBlocks: 64,
		Clock:         simclock.NewSim(simclock.Epoch),
		CacheBlocks:   4, // tiny: every operation forces evictions
	})
	if err != nil {
		t.Fatal(err)
	}
	ino, err := fs.AllocInode(ModeFile, "crash")
	if err != nil {
		t.Fatal(err)
	}
	committed := bytes.Repeat([]byte{0xA5}, blockdev.BlockSize)
	if _, err := fs.WriteAt(ino, 0, committed); err != nil {
		t.Fatal(err)
	}

	// Locate the data block that holds the file so the post-cut assertions
	// can watch it on the raw device.
	var info Info
	if info, err = fs.Stat(ino); err != nil || info.Size != blockdev.BlockSize {
		t.Fatalf("stat: %v %+v", err, info)
	}

	// The overwrite transaction journals [desc][data][itab] then the
	// commit record. Budget 2 lets desc+data through and cuts before the
	// commit block can land.
	cut.setBudget(2)
	torn := bytes.Repeat([]byte{0x5A}, blockdev.BlockSize)
	if _, err := fs.WriteAt(ino, 0, torn); err == nil {
		t.Fatal("cut write reported success")
	} else if !errors.Is(err, blockdev.ErrIO) {
		t.Fatalf("cut write err = %v, want injected IO error", err)
	}

	// "Reboot": mount a fresh filesystem over the raw device and verify
	// the committed image survived and the torn image never became
	// durable anywhere outside the journal region.
	fs2, err := Mount(mem, simclock.NewSim(simclock.Epoch))
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	got := make([]byte, blockdev.BlockSize)
	if _, err := fs2.ReadAt(ino, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, committed) {
		t.Fatal("committed pre-cut image lost after recovery")
	}
	jStart, jLen := fs2.JournalRegion()
	for _, b := range blockdev.FindResidue(mem, torn[:16]) {
		if b < jStart || b >= jStart+jLen {
			t.Fatalf("torn write became durable at home block %d (write-back reordered around the WAL)", b)
		}
	}
}
