// The macro scorecard: per-op-class throughput and tail latency (shared
// power-of-two histogram from internal/latencyhist) plus the regulator
// invariants, serialized deterministically for benchgate and narrated for
// humans by WriteScorecard.

package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/latencyhist"
)

// ClassStats is one op class's scorecard row.
type ClassStats struct {
	Class string `json:"class"`
	// Issued counts generated ops; the four outcomes partition them.
	Issued   uint64 `json:"issued"`
	OK       uint64 `json:"ok"`
	Rejected uint64 `json:"rejected"`
	Denied   uint64 `json:"denied"`
	Failed   uint64 `json:"failed"`
	// OpsPerSec is successful ops per simulated second.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Latency tails in microseconds, from the simulated device-op cost
	// model (conservative bucket upper bounds).
	P50us  int64 `json:"p50_us"`
	P99us  int64 `json:"p99_us"`
	P999us int64 `json:"p999_us"`
}

// InvariantReport carries the model-vs-machine checks. The first three
// must be exactly zero; AccessChecked proves the consent check actually
// ran.
type InvariantReport struct {
	// ResidueHits counts raw-device plaintext hits of erased secrets over
	// a deterministic sample of ResidueChecked secrets.
	ResidueHits    int `json:"residue_hits"`
	ResidueChecked int `json:"residue_checked"`
	// ErasedReadable counts erased pdids that still serve reads.
	ErasedReadable int `json:"erased_readable"`
	// ConsentMismatches counts access-report exports whose consents
	// disagree with the shadow model.
	ConsentMismatches int `json:"consent_mismatches"`
	// AccessChecked counts records the consent-consistency check
	// compared (must be > 0 for the check to mean anything).
	AccessChecked int `json:"access_checked"`
	// ErasedSubjects / ErasedRecords / SweptRecords / SeededSubjects are
	// context counters, reported but not gated exactly.
	ErasedSubjects int `json:"erased_subjects"`
	ErasedRecords  int `json:"erased_records"`
	SweptRecords   int `json:"swept_records"`
	SeededSubjects int `json:"seeded_subjects"`
}

// Scorecard is one scenario run's full result.
type Scorecard struct {
	Scenario    string          `json:"scenario"`
	Title       string          `json:"title"`
	Target      string          `json:"target"`
	Mix         string          `json:"mix"`
	Seed        uint64          `json:"seed"`
	Small       bool            `json:"small"`
	Subjects    int             `json:"subjects"`
	DurationSec float64         `json:"duration_sec"`
	Ops         int             `json:"ops"`
	Classes     []ClassStats    `json:"classes"`
	Invariants  InvariantReport `json:"invariants"`

	hists  map[OpClass]*latencyhist.Hist
	counts map[OpClass]*ClassStats
}

func newScorecard(sc Scenario, target string, mix MacroMix, cfg RunConfig) *Scorecard {
	card := &Scorecard{
		Scenario:    sc.Name,
		Title:       sc.Title,
		Target:      target,
		Mix:         mix.Name,
		Seed:        cfg.Seed,
		Small:       cfg.Small,
		Subjects:    mix.Subjects,
		DurationSec: mix.Duration.Seconds(),
		hists:       make(map[OpClass]*latencyhist.Hist),
		counts:      make(map[OpClass]*ClassStats),
	}
	for _, c := range Classes {
		card.hists[c] = &latencyhist.Hist{}
		card.counts[c] = &ClassStats{Class: c.String()}
	}
	return card
}

// observe folds one executed op into the card.
func (s *Scorecard) observe(c OpClass, out outcome, lat time.Duration) {
	row := s.counts[c]
	row.Issued++
	switch out {
	case outcomeOK:
		row.OK++
	case outcomeRejected:
		row.Rejected++
	case outcomeDenied:
		row.Denied++
	default:
		row.Failed++
	}
	s.hists[c].Observe(lat)
	s.Ops++
}

// finish freezes the per-class rows in canonical class order, dropping
// classes the mix never issued.
func (s *Scorecard) finish(mix MacroMix) {
	s.Classes = s.Classes[:0]
	for _, c := range Classes {
		row := s.counts[c]
		if row.Issued == 0 {
			continue
		}
		row.OpsPerSec = float64(row.OK) / mix.Duration.Seconds()
		h := s.hists[c]
		row.P50us = h.Quantile(0.50).Microseconds()
		row.P99us = h.Quantile(0.99).Microseconds()
		row.P999us = h.Quantile(0.999).Microseconds()
		s.Classes = append(s.Classes, *row)
	}
}

// Clean reports whether every exact invariant holds.
func (s *Scorecard) Clean() bool {
	inv := s.Invariants
	return inv.ResidueHits == 0 && inv.ErasedReadable == 0 &&
		inv.ConsentMismatches == 0 && inv.AccessChecked > 0
}

// JSON serializes the scorecard deterministically (fixed field order,
// canonical class order, trailing newline) — the byte-identity witness.
func (s *Scorecard) JSON() ([]byte, error) {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// WriteScorecard narrates the card for humans (examples, rgpdctl macro).
func WriteScorecard(w io.Writer, s *Scorecard) {
	fmt.Fprintf(w, "scenario %s (%s) on %s: %d subjects, %.0fs simulated, %d ops\n",
		s.Scenario, s.Title, s.Target, s.Subjects, s.DurationSec, s.Ops)
	fmt.Fprintf(w, "  %-13s %8s %8s %8s %8s %8s %10s %8s %8s %8s\n",
		"class", "issued", "ok", "rejected", "denied", "failed", "ok-ops/s", "p50us", "p99us", "p99.9us")
	for _, row := range s.Classes {
		fmt.Fprintf(w, "  %-13s %8d %8d %8d %8d %8d %10.2f %8d %8d %8d\n",
			row.Class, row.Issued, row.OK, row.Rejected, row.Denied, row.Failed,
			row.OpsPerSec, row.P50us, row.P99us, row.P999us)
	}
	inv := s.Invariants
	fmt.Fprintf(w, "  invariants: residue=%d/%d erased-readable=%d consent-mismatch=%d (checked %d)",
		inv.ResidueHits, inv.ResidueChecked, inv.ErasedReadable, inv.ConsentMismatches, inv.AccessChecked)
	fmt.Fprintf(w, " | erased %d subjects / %d records, swept %d expired\n",
		inv.ErasedSubjects, inv.ErasedRecords, inv.SweptRecords)
	if s.Clean() {
		fmt.Fprintln(w, "  all exact invariants hold")
	} else {
		fmt.Fprintln(w, "  INVARIANT VIOLATION — see counters above")
	}
}
