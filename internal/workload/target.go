// Target abstracts the machine a macro workload runs against, so one
// runner drives both a single core.System and an internal/cluster fleet.
// Every method maps to the system entry point its op class exercises; the
// two extras — CostOps and SimClock — exist for determinism: per-op
// latency is measured in simulated device operations (the SC8 idiom, not
// wall clock), and pacing advances the shared simulated clock so admission
// token buckets refill identically on every run.

package workload

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/membrane"
	"repro/internal/ps"
	"repro/internal/purpose"
	"repro/internal/rights"
	"repro/internal/simclock"
	"repro/internal/typedsl"
)

// Target is the machine under macro load.
type Target interface {
	// Name labels the target in the scorecard ("system", "cluster-2", ...).
	Name() string

	// Setup surface, used by the runner's prepare phase.
	DeclareTypesDSL(src string, copts typedsl.CompileOptions) error
	CreateType(sch *dbfs.Schema) error
	Register(decl *purpose.Decl, impl *ded.Func) error
	SetRateLimit(purposeName string, ratePerSec, burst float64) error

	// Op surface, one entry point per op class.
	Insert(typeName, subjectID string, rec dbfs.Record) (string, error)
	Update(pdid string, rec dbfs.Record) error
	Invoke(req ps.InvokeRequest) (*ded.Result, error)
	Access(subjectID string) (*rights.AccessReport, error)
	AccessBatch(subjectIDs []string) ([]*rights.AccessReport, error)
	Erase(subjectID string) ([]string, error)
	SetConsent(subjectID, purposeName string, g membrane.Grant) error
	WithdrawConsent(subjectID, purposeName string) error
	SweepExpired() ([]string, error)

	// Invariant surface, used by the post-run checks. ResidueScan is
	// batch-form: one raw-device traversal covers every sampled pattern.
	GetRecord(pdid string) (dbfs.Record, error)
	ResidueScan(patterns [][]byte) int

	// CostOps is the deterministic cost counter: total simulated device
	// operations (PD + NPD reads and writes) across the whole target.
	CostOps() uint64
	// SimClock returns the target's simulated clock, nil when it runs on
	// wall time (pacing is then skipped and runs are not byte-identical).
	SimClock() *simclock.Sim
}

// SystemTarget adapts one core.System.
type SystemTarget struct{ Sys *core.System }

// NewSystemTarget wraps a booted system.
func NewSystemTarget(s *core.System) *SystemTarget { return &SystemTarget{Sys: s} }

// Name labels the target.
func (t *SystemTarget) Name() string { return "system" }

// DeclareTypesDSL declares the scenario's types.
func (t *SystemTarget) DeclareTypesDSL(src string, copts typedsl.CompileOptions) error {
	return t.Sys.DeclareTypesDSL(src, copts)
}

// CreateType declares one schema directly.
func (t *SystemTarget) CreateType(sch *dbfs.Schema) error { return t.Sys.CreateType(sch) }

// Register installs a query processing.
func (t *SystemTarget) Register(decl *purpose.Decl, impl *ded.Func) error {
	return t.Sys.PS().Register(decl, impl, false)
}

// SetRateLimit installs a per-purpose admission token bucket.
func (t *SystemTarget) SetRateLimit(purposeName string, ratePerSec, burst float64) error {
	return t.Sys.PS().SetRateLimit(purposeName, ratePerSec, burst)
}

// Insert stores one record.
func (t *SystemTarget) Insert(typeName, subjectID string, rec dbfs.Record) (string, error) {
	return t.Sys.DBFS().Insert(t.Sys.DEDToken(), typeName, subjectID, rec, nil)
}

// Update replaces one record's fields.
func (t *SystemTarget) Update(pdid string, rec dbfs.Record) error {
	return t.Sys.DBFS().Update(t.Sys.DEDToken(), pdid, rec)
}

// Invoke runs a purpose-bound processing through ps_invoke.
func (t *SystemTarget) Invoke(req ps.InvokeRequest) (*ded.Result, error) {
	return t.Sys.PS().Invoke(req)
}

// Access serves one Article 15 report.
func (t *SystemTarget) Access(subjectID string) (*rights.AccessReport, error) {
	return t.Sys.Rights().Access(subjectID)
}

// AccessBatch serves a bulk Article 15 request.
func (t *SystemTarget) AccessBatch(subjectIDs []string) ([]*rights.AccessReport, error) {
	return t.Sys.Rights().AccessBatch(subjectIDs)
}

// Erase executes the right to be forgotten; returns the shredded pdids.
func (t *SystemTarget) Erase(subjectID string) ([]string, error) {
	rep, err := t.Sys.Rights().Erase(subjectID)
	if err != nil {
		return nil, err
	}
	return rep.Erased, nil
}

// SetConsent grants (or changes) one purpose's consent.
func (t *SystemTarget) SetConsent(subjectID, purposeName string, g membrane.Grant) error {
	return t.Sys.Rights().SetConsent(subjectID, purposeName, g)
}

// WithdrawConsent revokes one purpose's consent.
func (t *SystemTarget) WithdrawConsent(subjectID, purposeName string) error {
	return t.Sys.Rights().WithdrawConsent(subjectID, purposeName)
}

// SweepExpired runs one storage-limitation pass.
func (t *SystemTarget) SweepExpired() ([]string, error) { return t.Sys.Rights().SweepExpired() }

// GetRecord reads one record by pdid.
func (t *SystemTarget) GetRecord(pdid string) (dbfs.Record, error) {
	return t.Sys.DBFS().GetRecord(t.Sys.DEDToken(), pdid)
}

// ResidueScan counts plaintext hits of any pattern on the raw devices.
func (t *SystemTarget) ResidueScan(patterns [][]byte) int {
	return t.Sys.ResidueScanAny(patterns)
}

// CostOps sums simulated device operations.
func (t *SystemTarget) CostOps() uint64 {
	st := t.Sys.Stats()
	return st.PDDisk.Reads + st.PDDisk.Writes + st.NPDDisk.Reads + st.NPDDisk.Writes
}

// SimClock exposes the system's simulated clock when it has one.
func (t *SystemTarget) SimClock() *simclock.Sim {
	sim, _ := t.Sys.SimClock()
	return sim
}

// ClusterTarget adapts an internal/cluster fleet: subject-routed ops go
// through the router (which homes them by subject hash), setup fans out to
// every node, and invariant scans sum across nodes.
type ClusterTarget struct{ C *cluster.Cluster }

// NewClusterTarget wraps a booted cluster.
func NewClusterTarget(c *cluster.Cluster) *ClusterTarget { return &ClusterTarget{C: c} }

// Name labels the target with its node count.
func (t *ClusterTarget) Name() string { return fmt.Sprintf("cluster-%d", t.C.Nodes()) }

// DeclareTypesDSL declares the scenario's types on every node.
func (t *ClusterTarget) DeclareTypesDSL(src string, copts typedsl.CompileOptions) error {
	return t.C.DeclareTypesDSL(src, copts)
}

// CreateType declares one schema on every node.
func (t *ClusterTarget) CreateType(sch *dbfs.Schema) error { return t.C.CreateType(sch) }

// Register installs a query processing on every node's Processing Store.
func (t *ClusterTarget) Register(decl *purpose.Decl, impl *ded.Func) error {
	for i := 0; i < t.C.Nodes(); i++ {
		if err := t.C.Node(i).PS().Register(decl, impl, false); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	return nil
}

// SetRateLimit installs the token bucket on every node.
func (t *ClusterTarget) SetRateLimit(purposeName string, ratePerSec, burst float64) error {
	for i := 0; i < t.C.Nodes(); i++ {
		if err := t.C.Node(i).PS().SetRateLimit(purposeName, ratePerSec, burst); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	return nil
}

// Insert stores one record on the subject's home node.
func (t *ClusterTarget) Insert(typeName, subjectID string, rec dbfs.Record) (string, error) {
	return t.C.Insert(typeName, subjectID, rec)
}

// Update replaces one record's fields on the subject's home node.
func (t *ClusterTarget) Update(pdid string, rec dbfs.Record) error {
	_, subject, _, err := dbfs.SplitPDID(pdid)
	if err != nil {
		return err
	}
	n := t.C.Node(t.C.HomeOf(subject))
	return n.DBFS().Update(n.DEDToken(), pdid, rec)
}

// Invoke routes the processing to the filtered subject's home node.
func (t *ClusterTarget) Invoke(req ps.InvokeRequest) (*ded.Result, error) {
	node := 0
	if req.SubjectFilter != "" {
		node = t.C.HomeOf(req.SubjectFilter)
	}
	return t.C.Node(node).PS().Invoke(req)
}

// Access serves one Article 15 report, merged across nodes.
func (t *ClusterTarget) Access(subjectID string) (*rights.AccessReport, error) {
	reps, err := t.C.AccessBatch([]string{subjectID})
	if err != nil {
		return nil, err
	}
	return reps[0], nil
}

// AccessBatch serves a bulk Article 15 request across the fleet.
func (t *ClusterTarget) AccessBatch(subjectIDs []string) ([]*rights.AccessReport, error) {
	return t.C.AccessBatch(subjectIDs)
}

// Erase shreds the subject cluster-wide (home records + ledger-named
// copies).
func (t *ClusterTarget) Erase(subjectID string) ([]string, error) {
	rep, err := t.C.Erase(subjectID)
	if err != nil {
		return nil, err
	}
	return rep.Erased, nil
}

// SetConsent changes one purpose's consent, fanned out to copies.
func (t *ClusterTarget) SetConsent(subjectID, purposeName string, g membrane.Grant) error {
	_, err := t.C.SetConsent(subjectID, purposeName, g)
	return err
}

// WithdrawConsent revokes one purpose's consent, fanned out to copies.
func (t *ClusterTarget) WithdrawConsent(subjectID, purposeName string) error {
	_, err := t.C.WithdrawConsent(subjectID, purposeName)
	return err
}

// SweepExpired runs one storage-limitation pass over every node.
func (t *ClusterTarget) SweepExpired() ([]string, error) { return t.C.SweepExpired() }

// GetRecord reads one record on its subject's home node.
func (t *ClusterTarget) GetRecord(pdid string) (dbfs.Record, error) { return t.C.GetRecord(pdid) }

// ResidueScan counts plaintext hits of any pattern across every node's
// devices.
func (t *ClusterTarget) ResidueScan(patterns [][]byte) int {
	total := 0
	for i := 0; i < t.C.Nodes(); i++ {
		total += t.C.Node(i).ResidueScanAny(patterns)
	}
	return total
}

// CostOps sums simulated device operations across the fleet.
func (t *ClusterTarget) CostOps() uint64 {
	var total uint64
	for i := 0; i < t.C.Nodes(); i++ {
		st := t.C.Node(i).Stats()
		total += st.PDDisk.Reads + st.PDDisk.Writes + st.NPDDisk.Reads + st.NPDDisk.Writes
	}
	return total
}

// SimClock exposes the fleet's shared simulated clock when it has one.
func (t *ClusterTarget) SimClock() *simclock.Sim {
	sim, _ := t.C.Clock().(*simclock.Sim)
	return sim
}
