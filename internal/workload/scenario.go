// The macro scenario library: three regulator-grade seeds, each a typed
// declaration (DSL + query purposes + rate limits + mix) the runner can
// point at any Target. Shapes follow the mHealth-violations and
// enforcement-fines studies in PAPERS.md:
//
//   - health-records: a clinic under purpose-limitation stress — care
//     queries are consented, marketing queries never are, so a third of
//     the DED traffic must be denied by membranes, not by code review.
//   - regulator-audit: a bulk Article-15 sweep (AccessBatch over the whole
//     population in rotation) under sustained, rate-limited foreground
//     load — the admission controller must shed query bursts while the
//     rights path stays unthrottled.
//   - breach-response: a breach notification triggers a mass
//     consent-withdrawal burst and an erasure wave; the machine must keep
//     serving foreground traffic and leave zero residue.

package workload

import (
	"time"

	"repro/internal/dbfs"
	"repro/internal/membrane"
)

// QuerySpec declares one purpose-bound query processing a scenario
// registers: the runner builds a matching purpose.Decl + ded.Func whose
// declared reads are exactly Reads.
type QuerySpec struct {
	Purpose     string
	Description string
	Reads       []string
}

// LimitSpec declares one per-purpose admission rate limit.
type LimitSpec struct {
	Purpose    string
	RatePerSec float64
	Burst      float64
}

// Scenario is one macro workload seed. Mix and SmallMix are the full-scale
// and CI-scale declarations of the same shape.
type Scenario struct {
	Name  string
	Title string
	// DSL declares the scenario's PD type; TypeName names it.
	DSL      string
	TypeName string
	// SecretField is the sensitive field the runner plants per-record
	// secrets in — the residue-scan witness after erasure waves.
	SecretField string
	// Defaults mirrors the DSL's consent block as grant spellings
	// (purpose -> "all" | view name | "none"): the runner's
	// consent-consistency model starts from it for every inserted record,
	// and any drift between this map and the DSL shows up as a
	// consent-mismatch invariant failure.
	Defaults map[string]string
	// Queries are the processings registered for DEDQuery traffic.
	Queries []QuerySpec
	// Mix and SmallMix declare the traffic at full and CI scale.
	Mix      MacroMix
	SmallMix MacroMix
}

// MixFor selects the scale.
func (s Scenario) MixFor(small bool) MacroMix {
	if small {
		return s.SmallMix
	}
	return s.Mix
}

// Record builds the scenario's PD record for a subject: deterministic from
// its arguments alone (no RNG), with the runner-chosen secret in the
// sensitive field.
func (s Scenario) Record(subject, secret string, seq int) dbfs.Record {
	return dbfs.Record{
		"name":              dbfs.S("Subject " + subject + " r" + itoa(seq)),
		s.SecretField:       dbfs.S(secret),
		"year_of_birthdate": dbfs.I(int64(1940 + seq%70)),
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// SessionTTL is the retention-churn type's time to live — short enough
// that sessions created early in a run expire (and are swept) before it
// ends, in small mode too.
const SessionTTL = 10 * time.Second

// SessionSchema is the retention-churn type: ephemeral session records
// with a TTL far below the scenario duration, created directly (the DSL's
// age unit bottoms out at hours).
func SessionSchema() *dbfs.Schema {
	return &dbfs.Schema{
		Name: "session",
		Fields: []dbfs.Field{
			{Name: "token", Type: dbfs.TypeString},
			{Name: "seen", Type: dbfs.TypeInt},
		},
		DefaultConsent: map[string]membrane.Grant{
			"ops": {Kind: membrane.GrantAll},
		},
		DefaultTTL:  SessionTTL,
		Origin:      membrane.OriginSubject,
		Sensitivity: membrane.SensitivityLow,
	}
}

// SessionRecord builds one ephemeral session record.
func SessionRecord(seq int) dbfs.Record {
	return dbfs.Record{
		"token": dbfs.S("tok-" + itoa(seq)),
		"seen":  dbfs.I(int64(seq)),
	}
}

// Scenarios lists the library in canonical order.
func Scenarios() []Scenario {
	return []Scenario{healthRecords(), regulatorAudit(), breachResponse()}
}

// LookupScenario finds a scenario by name.
func LookupScenario(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

func healthRecords() Scenario {
	return Scenario{
		Name:  "health-records",
		Title: "clinic under purpose-limitation stress",
		DSL: `
type hrecord {
  fields {
    name: string,
    diagnosis: string sensitive,
    year_of_birthdate: int
  };
  view v_stats { year_of_birthdate };
  consent {
    care: all,
    research: v_stats,
    marketing: none
  };
  collection { web_form: intake_form.html };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}
`,
		TypeName:    "hrecord",
		SecretField: "diagnosis",
		Defaults:    map[string]string{"care": "all", "research": "v_stats", "marketing": "none"},
		Queries: []QuerySpec{
			{Purpose: "care", Description: "treatment lookup", Reads: []string{"hrecord.name", "hrecord.diagnosis", "hrecord.year_of_birthdate"}},
			{Purpose: "research", Description: "cohort statistics", Reads: []string{"hrecord.year_of_birthdate"}},
			{Purpose: "marketing", Description: "wellness upsell (never consented)", Reads: []string{"hrecord.name"}},
		},
		Mix: MacroMix{
			Name: "health-records", Duration: 120 * time.Second, Subjects: 10000, Skew: 1.2,
			Rates: map[OpClass]Rate{
				ClassInsert:      {PerSec: 20, BurstEvery: 10 * time.Second, BurstLen: 2 * time.Second, BurstFactor: 5},
				ClassUpdate:      {PerSec: 10},
				ClassDEDQuery:    {PerSec: 50},
				ClassAccess:      {PerSec: 2},
				ClassAccessBatch: {PerSec: 0.1},
				ClassErase:       {PerSec: 1},
				ClassConsent:     {PerSec: 2},
				ClassRetention:   {PerSec: 8},
			},
			BatchSize:       25,
			QueryPurposes:   []string{"care", "marketing", "research"},
			ConsentPurposes: []string{"research", "marketing"},
			WithdrawProb:    0.5,
		},
		SmallMix: MacroMix{
			Name: "health-records-small", Duration: 20 * time.Second, Subjects: 400, Skew: 1.2,
			Rates: map[OpClass]Rate{
				ClassInsert:      {PerSec: 4, BurstEvery: 5 * time.Second, BurstLen: 1 * time.Second, BurstFactor: 5},
				ClassUpdate:      {PerSec: 3},
				ClassDEDQuery:    {PerSec: 10},
				ClassAccess:      {PerSec: 1},
				ClassAccessBatch: {PerSec: 0.2},
				ClassErase:       {PerSec: 0.5},
				ClassConsent:     {PerSec: 1},
				ClassRetention:   {PerSec: 2},
			},
			BatchSize:       10,
			QueryPurposes:   []string{"care", "marketing", "research"},
			ConsentPurposes: []string{"research", "marketing"},
			WithdrawProb:    0.5,
		},
	}
}

func regulatorAudit() Scenario {
	return Scenario{
		Name:  "regulator-audit",
		Title: "bulk Article-15 audit under rate-limited foreground load",
		DSL: `
type account {
  fields {
    name: string,
    iban: string sensitive,
    year_of_birthdate: int
  };
  view v_kyc { name };
  consent {
    service: all,
    analytics: v_kyc
  };
  collection { web_form: account_form.html };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}
`,
		TypeName:    "account",
		SecretField: "iban",
		Defaults:    map[string]string{"service": "all", "analytics": "v_kyc"},
		Queries: []QuerySpec{
			{Purpose: "service", Description: "account servicing", Reads: []string{"account.name", "account.iban", "account.year_of_birthdate"}},
			{Purpose: "analytics", Description: "product analytics", Reads: []string{"account.name"}},
		},
		Mix: MacroMix{
			Name: "regulator-audit", Duration: 120 * time.Second, Subjects: 10000, Skew: 1.1,
			Rates: map[OpClass]Rate{
				ClassInsert:      {PerSec: 10},
				ClassUpdate:      {PerSec: 8},
				ClassDEDQuery:    {PerSec: 40, BurstEvery: 15 * time.Second, BurstLen: 3 * time.Second, BurstFactor: 4},
				ClassAccess:      {PerSec: 1},
				ClassAccessBatch: {PerSec: 1},
				ClassErase:       {PerSec: 0.5},
				ClassConsent:     {PerSec: 1},
				ClassRetention:   {PerSec: 5},
			},
			BatchSize:       100,
			QueryPurposes:   []string{"service", "service", "analytics"},
			ConsentPurposes: []string{"analytics"},
			WithdrawProb:    0.3,
			// Throttled below the burst peak (~107 service queries/s in
			// bursts vs 50/s refill): the token bucket must shed the
			// bursts deterministically while the rights path — which
			// never passes admission — keeps serving the audit.
			Limits: []LimitSpec{{Purpose: "service", RatePerSec: 50, Burst: 60}},
		},
		SmallMix: MacroMix{
			Name: "regulator-audit-small", Duration: 20 * time.Second, Subjects: 400, Skew: 1.1,
			Rates: map[OpClass]Rate{
				ClassInsert:      {PerSec: 3},
				ClassUpdate:      {PerSec: 2},
				ClassDEDQuery:    {PerSec: 12, BurstEvery: 5 * time.Second, BurstLen: 1 * time.Second, BurstFactor: 6},
				ClassAccess:      {PerSec: 0.5},
				ClassAccessBatch: {PerSec: 0.5},
				ClassErase:       {PerSec: 0.3},
				ClassConsent:     {PerSec: 0.5},
				ClassRetention:   {PerSec: 2},
			},
			BatchSize:       20,
			QueryPurposes:   []string{"service", "service", "analytics"},
			ConsentPurposes: []string{"analytics"},
			WithdrawProb:    0.3,
			// Same shape at CI scale: base service load (~8/s) sits at
			// the refill rate, the x6 bursts must be shed.
			Limits: []LimitSpec{{Purpose: "service", RatePerSec: 8, Burst: 10}},
		},
	}
}

func breachResponse() Scenario {
	return Scenario{
		Name:  "breach-response",
		Title: "mass consent revocation + erasure wave after a breach",
		DSL: `
type profile {
  fields {
    name: string,
    contact: string sensitive,
    year_of_birthdate: int
  };
  view v_min { name };
  consent {
    service: all,
    sharing: all,
    research: v_min
  };
  collection { web_form: signup_form.html };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}
`,
		TypeName:    "profile",
		SecretField: "contact",
		Defaults:    map[string]string{"service": "all", "sharing": "all", "research": "v_min"},
		Queries: []QuerySpec{
			{Purpose: "service", Description: "serve the product", Reads: []string{"profile.name", "profile.contact", "profile.year_of_birthdate"}},
			{Purpose: "sharing", Description: "partner data sharing", Reads: []string{"profile.name", "profile.contact"}},
		},
		Mix: MacroMix{
			Name: "breach-response", Duration: 120 * time.Second, Subjects: 10000, Skew: 1.1,
			Rates: map[OpClass]Rate{
				ClassInsert:   {PerSec: 10},
				ClassUpdate:   {PerSec: 5},
				ClassDEDQuery: {PerSec: 30},
				ClassAccess:   {PerSec: 2},
				// The breach news cycle: withdrawal and erasure arrive in
				// waves, not a trickle.
				ClassConsent:   {PerSec: 2, BurstEvery: 30 * time.Second, BurstLen: 5 * time.Second, BurstFactor: 20},
				ClassErase:     {PerSec: 1, BurstEvery: 30 * time.Second, BurstLen: 5 * time.Second, BurstFactor: 10},
				ClassRetention: {PerSec: 5},
			},
			QueryPurposes:   []string{"service", "sharing"},
			ConsentPurposes: []string{"sharing", "research"},
			WithdrawProb:    0.9,
		},
		SmallMix: MacroMix{
			Name: "breach-response-small", Duration: 20 * time.Second, Subjects: 400, Skew: 1.1,
			Rates: map[OpClass]Rate{
				ClassInsert:    {PerSec: 3},
				ClassUpdate:    {PerSec: 2},
				ClassDEDQuery:  {PerSec: 8},
				ClassAccess:    {PerSec: 1},
				ClassConsent:   {PerSec: 1, BurstEvery: 8 * time.Second, BurstLen: 2 * time.Second, BurstFactor: 10},
				ClassErase:     {PerSec: 0.5, BurstEvery: 8 * time.Second, BurstLen: 2 * time.Second, BurstFactor: 8},
				ClassRetention: {PerSec: 2},
			},
			QueryPurposes:   []string{"service", "sharing"},
			ConsentPurposes: []string{"sharing", "research"},
			WithdrawProb:    0.9,
		},
	}
}
