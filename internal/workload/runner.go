// The macro runner: executes a generated op trace against a Target in
// trace order, paced on the target's simulated clock, and folds the
// outcomes into a Scorecard. Determinism is the whole design:
//
//   - per-op latency is the delta of the target's simulated device-op
//     counter scaled by a nominal per-op cost (the SC8 idiom) — never wall
//     clock — so the per-class histograms are byte-identical across runs;
//   - pacing sets the simulated clock to each op's arrival offset, so
//     admission token buckets refill (and reject bursts) identically;
//   - the runner keeps a shadow model of every live record's expected
//     consent map and erased secrets, and the post-run invariants check
//     the machine against the model: zero plaintext residue of erased
//     secrets, zero erased-but-readable records, zero consent-inconsistent
//     access exports.

package workload

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/admission"
	"repro/internal/cryptoshred"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/membrane"
	"repro/internal/ps"
	"repro/internal/purpose"
	"repro/internal/rights"
	"repro/internal/typedsl"
)

// CostOpLatency is the nominal simulated latency of one device operation:
// per-op latency = device-op delta x CostOpLatency. The absolute value is
// a modeling constant (NVMe-ish); only ratios between op classes matter.
const CostOpLatency = 25 * time.Microsecond

// RunConfig tunes one scenario run.
type RunConfig struct {
	// Seed drives the trace generation.
	Seed uint64
	// Small selects the scenario's CI-scale mix.
	Small bool
	// Pace advances the target's simulated clock to each op's arrival
	// offset (required for byte-identical scorecards; leave false only
	// for soak tests that execute the trace concurrently).
	Pace bool
}

// BootSizing returns PD-disk block, NPD-disk block and inode counts large
// enough for the mix's seeded population plus every insert the trace will
// issue, doubling from the usual probe-machine floor. The NPD disk must at
// least hold its half-share inode table (inodes/2 at 16 per block) plus the
// audit trail the run appends. The SC9 bench, rgpdctl macro and the scenario
// examples all size their machines with it.
func BootSizing(mix MacroMix, ops []Op) (blocks, npdBlocks, inodes uint64) {
	inserts := 0
	for _, op := range ops {
		if op.Class == ClassInsert || op.Class == ClassRetention {
			inserts++
		}
	}
	n := uint64(mix.Subjects + inserts + 64)
	blocks, npdBlocks, inodes = 16384, 4096, 8192
	for blocks < n*24+4096 {
		blocks *= 2
	}
	for inodes < n*8+1024 {
		inodes *= 2
	}
	for npdBlocks < inodes/32+n*4+512 {
		npdBlocks *= 2
	}
	return blocks, npdBlocks, inodes
}

// liveRec is the runner's shadow of one inserted record.
type liveRec struct {
	pdid     string
	secret   string
	consents map[string]string // purpose -> expected grant spelling
}

// runState carries the shadow model across ops.
type runState struct {
	live        map[string][]*liveRec // subject -> live records, insert order
	mustBeGone  []string              // secrets of erased records
	erasedPDs   []string              // pdids of erased records
	erasedSubjs int                   // distinct subjects erased while live
	seeded      int
	retN        int // retention ops seen (every 8th sweeps)
}

// outcome classifies one executed op.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeRejected
	outcomeDenied
	outcomeFailed
)

// classify maps an op error to its outcome: admission shedding is
// Rejected, GDPR enforcement (consent, erasure, restriction, expiry, gone
// records) is Denied, anything else is a genuine Failure.
func classify(err error) outcome {
	switch {
	case err == nil:
		return outcomeOK
	case errors.Is(err, admission.ErrOverloaded):
		return outcomeRejected
	case errors.Is(err, membrane.ErrErased),
		errors.Is(err, membrane.ErrConsentDenied),
		errors.Is(err, membrane.ErrRestricted),
		errors.Is(err, membrane.ErrExpired),
		errors.Is(err, cryptoshred.ErrKeyDestroyed),
		errors.Is(err, dbfs.ErrNoRecord):
		return outcomeDenied
	default:
		return outcomeFailed
	}
}

// secretOf derives the unique per-record secret planted in the sensitive
// field: unique per (subject, seq) so an erased record's secret never
// reappears through a later re-insert and the residue invariant stays
// exact.
func secretOf(scenario, subject string, seq int) string {
	return "sx-" + scenario + "-" + subject + "-" + itoa(seq)
}

// Prepare declares the scenario on the target and seeds its population:
// types, query processings, rate limits, one PD record per subject. The
// seeded inserts are setup, not workload — they never enter the scorecard.
func Prepare(t Target, sc Scenario, mix MacroMix) (*runState, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	if err := t.DeclareTypesDSL(sc.DSL, typedsl.CompileOptions{}); err != nil {
		return nil, fmt.Errorf("workload: declare %s: %w", sc.Name, err)
	}
	if mix.rate(ClassRetention) > 0 {
		if err := t.CreateType(SessionSchema()); err != nil {
			return nil, fmt.Errorf("workload: session type: %w", err)
		}
	}
	for _, q := range sc.Queries {
		decl := &purpose.Decl{
			Name:        q.Purpose,
			Description: q.Description,
			Basis:       purpose.BasisConsent,
			Reads:       q.Reads,
		}
		reads := q.Reads
		impl := &ded.Func{
			Name:          "macro_" + q.Purpose,
			Purpose:       q.Purpose,
			DeclaredReads: reads,
			Fn: func(c *ded.Ctx) (ded.Output, error) {
				// Touch every visible declared field; the output is a
				// count so the pipeline has something non-PD to return.
				n := int64(0)
				for _, r := range reads {
					field := r[len(sc.TypeName)+1:]
					if c.Has(field) {
						if _, err := c.Field(field); err != nil {
							return ded.Output{}, err
						}
						n++
					}
				}
				return ded.Output{NonPD: n}, nil
			},
		}
		if err := t.Register(decl, impl); err != nil {
			return nil, fmt.Errorf("workload: register %s: %w", q.Purpose, err)
		}
	}
	for _, l := range mix.Limits {
		if err := t.SetRateLimit(l.Purpose, l.RatePerSec, l.Burst); err != nil {
			return nil, fmt.Errorf("workload: limit %s: %w", l.Purpose, err)
		}
	}
	st := &runState{live: make(map[string][]*liveRec, mix.Subjects)}
	for i, subject := range SubjectIDs(mix.Subjects) {
		secret := secretOf(sc.Name, subject, 0)
		pdid, err := t.Insert(sc.TypeName, subject, sc.Record(subject, secret, 0))
		if err != nil {
			return nil, fmt.Errorf("workload: seed subject %d: %w", i, err)
		}
		st.live[subject] = append(st.live[subject], &liveRec{
			pdid: pdid, secret: secret, consents: cloneConsents(sc.Defaults),
		})
		st.seeded++
	}
	return st, nil
}

func cloneConsents(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// RunScenario generates the trace, prepares the target and executes the
// whole scenario, returning its scorecard. The target must be freshly
// booted (no scenario types declared yet).
func RunScenario(t Target, sc Scenario, cfg RunConfig) (*Scorecard, error) {
	mix := sc.MixFor(cfg.Small)
	ops, err := Generate(mix, cfg.Seed)
	if err != nil {
		return nil, err
	}
	st, err := Prepare(t, sc, mix)
	if err != nil {
		return nil, err
	}
	card := newScorecard(sc, t.Name(), mix, cfg)
	sim := t.SimClock()
	var start time.Time
	if sim != nil {
		start = sim.Now()
	}
	for i := range ops {
		op := &ops[i]
		if cfg.Pace && sim != nil {
			sim.Set(start.Add(op.At))
		}
		c0 := t.CostOps()
		out := execOp(t, sc, st, card, op)
		cost := t.CostOps() - c0
		card.observe(op.Class, out, time.Duration(cost)*CostOpLatency)
	}
	if err := checkInvariants(t, sc, st, card); err != nil {
		return nil, err
	}
	card.finish(mix)
	return card, nil
}

// execOp executes one op and updates the shadow model. Only genuine
// machine errors surface as Failed outcomes; enforcement denials and
// admission rejects are expected traffic.
func execOp(t Target, sc Scenario, st *runState, card *Scorecard, op *Op) outcome {
	switch op.Class {
	case ClassInsert:
		secret := secretOf(sc.Name, op.Subject, op.Seq)
		pdid, err := t.Insert(sc.TypeName, op.Subject, sc.Record(op.Subject, secret, op.Seq))
		if err != nil {
			return classify(err)
		}
		st.live[op.Subject] = append(st.live[op.Subject], &liveRec{
			pdid: pdid, secret: secret, consents: cloneConsents(sc.Defaults),
		})
		return outcomeOK

	case ClassUpdate:
		recs := st.live[op.Subject]
		if len(recs) == 0 {
			// Nothing left to update (erased subject): the op denies
			// without touching the machine, like a 404 on a gone profile.
			return outcomeDenied
		}
		r := recs[op.Seq%len(recs)]
		return classify(t.Update(r.pdid, sc.Record(op.Subject, r.secret, op.Seq)))

	case ClassDEDQuery:
		res, err := t.Invoke(ps.InvokeRequest{
			Processing:    op.Purpose,
			TypeName:      sc.TypeName,
			SubjectFilter: op.Subject,
		})
		if err != nil {
			return classify(err)
		}
		if res.Processed == 0 && filteredTotal(res) > 0 {
			return outcomeDenied
		}
		return outcomeOK

	case ClassAccess:
		rep, err := t.Access(op.Subject)
		if err != nil {
			return classify(err)
		}
		checkAccessReport(sc, st, card, rep)
		return outcomeOK

	case ClassAccessBatch:
		reps, err := t.AccessBatch(op.Batch)
		if err != nil {
			return classify(err)
		}
		for _, rep := range reps {
			checkAccessReport(sc, st, card, rep)
		}
		return outcomeOK

	case ClassErase:
		erased, err := t.Erase(op.Subject)
		if err != nil {
			return classify(err)
		}
		if len(st.live[op.Subject]) > 0 {
			st.erasedSubjs++
		}
		for _, r := range st.live[op.Subject] {
			st.mustBeGone = append(st.mustBeGone, r.secret)
			st.erasedPDs = append(st.erasedPDs, r.pdid)
		}
		delete(st.live, op.Subject)
		card.Invariants.ErasedRecords += len(erased)
		return outcomeOK

	case ClassConsent:
		var err error
		var want string
		if op.Withdraw {
			err = t.WithdrawConsent(op.Subject, op.Purpose)
			want = "none"
		} else {
			err = t.SetConsent(op.Subject, op.Purpose, membrane.Grant{Kind: membrane.GrantAll})
			want = "all"
		}
		if err != nil {
			return classify(err)
		}
		for _, r := range st.live[op.Subject] {
			r.consents[op.Purpose] = want
		}
		return outcomeOK

	case ClassRetention:
		st.retN++
		if st.retN%8 == 0 {
			swept, err := t.SweepExpired()
			if err != nil {
				return classify(err)
			}
			card.Invariants.SweptRecords += len(swept)
			return outcomeOK
		}
		_, err := t.Insert("session", op.Subject, SessionRecord(op.Seq))
		return classify(err)

	default:
		return outcomeFailed
	}
}

func filteredTotal(res *ded.Result) int {
	n := 0
	for _, v := range res.Filtered {
		n += v
	}
	return n
}

// checkAccessReport verifies one Article-15 report against the shadow
// model: every non-erased export of the scenario type must carry exactly
// the consents the model expects for that record. Art. 15(1) makes the
// report the subject's view of their consents — an inconsistent report is
// a compliance bug, not a performance number.
func checkAccessReport(sc Scenario, st *runState, card *Scorecard, rep *rights.AccessReport) {
	if rep == nil {
		return
	}
	exports := make(map[string]*rights.RecordExport)
	for i := range rep.Data[sc.TypeName] {
		e := &rep.Data[sc.TypeName][i]
		exports[e.PDID] = e
	}
	for _, r := range st.live[rep.SubjectID] {
		e, ok := exports[r.pdid]
		if !ok || e.Erased {
			card.Invariants.ConsentMismatches++
			continue
		}
		for p, want := range r.consents {
			if e.Consents[p] != want {
				card.Invariants.ConsentMismatches++
			}
		}
		card.Invariants.AccessChecked++
	}
}

// maxResidueScans bounds the post-run raw-device residue sample: the
// batch scan makes one device traversal regardless of pattern count, but
// the per-position candidate checks still grow with the sample, so the
// check takes a deterministic prefix of the erased secrets.
// ResidueChecked reports the sample size; live secrets never appear in
// plaintext anyway (everything is sealed), so the sample is a witness of
// shredding, not a coverage count.
const maxResidueScans = 64

// checkInvariants runs the post-run model-vs-machine checks.
func checkInvariants(t Target, sc Scenario, st *runState, card *Scorecard) error {
	scans := st.mustBeGone
	if len(scans) > maxResidueScans {
		scans = scans[:maxResidueScans]
	}
	if len(scans) > 0 {
		patterns := make([][]byte, len(scans))
		for i, secret := range scans {
			patterns[i] = []byte(secret)
		}
		card.Invariants.ResidueHits = t.ResidueScan(patterns)
	}
	card.Invariants.ResidueChecked = len(scans)
	for _, pdid := range st.erasedPDs {
		if _, err := t.GetRecord(pdid); err == nil {
			card.Invariants.ErasedReadable++
		}
	}
	card.Invariants.ErasedSubjects = st.erasedSubjs
	card.Invariants.SeededSubjects = st.seeded
	return nil
}

// Soak executes a pre-generated trace concurrently over workers goroutines
// with no pacing, no shadow model and no scorecard — the -race harness for
// the macro path. Every op hits the machine directly (updates target the
// seeded record, which a concurrent erase may legitimately deny), and the
// summed outcome counts come back unordered so tests can assert the
// machine survived without genuine failures.
func Soak(t Target, sc Scenario, mix MacroMix, ops []Op, workers int) (ok, rejected, denied, failed int, err error) {
	st, err := Prepare(t, sc, mix)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	// Read-only snapshot of the seeded population: the only state workers
	// share besides the machine itself.
	seeded := make(map[string]string, len(st.live))
	for subject, recs := range st.live {
		seeded[subject] = recs[0].pdid
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan *Op, workers)
	results := make(chan outcome, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for op := range ch {
				results <- soakOp(t, sc, seeded, op)
			}
		}()
	}
	go func() {
		for i := range ops {
			ch <- &ops[i]
		}
		close(ch)
	}()
	for range ops {
		switch <-results {
		case outcomeOK:
			ok++
		case outcomeRejected:
			rejected++
		case outcomeDenied:
			denied++
		default:
			failed++
		}
	}
	return ok, rejected, denied, failed, nil
}

// soakOp is execOp without the shadow model: raw machine traffic.
func soakOp(t Target, sc Scenario, seeded map[string]string, op *Op) outcome {
	switch op.Class {
	case ClassInsert:
		_, err := t.Insert(sc.TypeName, op.Subject,
			sc.Record(op.Subject, secretOf(sc.Name, op.Subject, op.Seq), op.Seq))
		return classify(err)
	case ClassUpdate:
		pdid, ok := seeded[op.Subject]
		if !ok {
			return outcomeDenied
		}
		return classify(t.Update(pdid, sc.Record(op.Subject, secretOf(sc.Name, op.Subject, 0), op.Seq)))
	case ClassDEDQuery:
		res, err := t.Invoke(ps.InvokeRequest{
			Processing: op.Purpose, TypeName: sc.TypeName, SubjectFilter: op.Subject,
		})
		if err == nil && res.Processed == 0 && filteredTotal(res) > 0 {
			return outcomeDenied
		}
		return classify(err)
	case ClassAccess:
		_, err := t.Access(op.Subject)
		return classify(err)
	case ClassAccessBatch:
		_, err := t.AccessBatch(op.Batch)
		return classify(err)
	case ClassErase:
		_, err := t.Erase(op.Subject)
		return classify(err)
	case ClassConsent:
		if op.Withdraw {
			return classify(t.WithdrawConsent(op.Subject, op.Purpose))
		}
		return classify(t.SetConsent(op.Subject, op.Purpose, membrane.Grant{Kind: membrane.GrantAll}))
	case ClassRetention:
		if op.Seq%8 == 0 {
			_, err := t.SweepExpired()
			return classify(err)
		}
		_, err := t.Insert("session", op.Subject, SessionRecord(op.Seq))
		return classify(err)
	default:
		return outcomeFailed
	}
}
