package workload

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/membrane"
	"repro/internal/ps"
	"repro/internal/purpose"
	"repro/internal/rights"
	"repro/internal/simclock"
	"repro/internal/typedsl"
	"repro/internal/xrand"
)

func bootMacroSystem(t *testing.T, mix MacroMix, ops []Op, seed uint64) *core.System {
	t.Helper()
	blocks, npdBlocks, inodes := BootSizing(mix, ops)
	sys, err := core.Boot(core.Options{
		Clock:         simclock.NewSim(simclock.Epoch),
		CryptoRand:    xrand.NewReader(seed),
		AuthorityBits: 1024,
		PDDiskBlocks:  blocks,
		NPDDiskBlocks: npdBlocks,
		NInodes:       inodes,
		JournalBlocks: 256,
		Workers:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestGenerateDeterministic(t *testing.T) {
	sc, ok := LookupScenario("health-records")
	if !ok {
		t.Fatal("health-records scenario missing")
	}
	mix := sc.MixFor(true)
	a, err := Generate(mix, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	b, err := Generate(mix, 7)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := EncodeTrace(a), EncodeTrace(b)
	if !bytes.Equal(ta, tb) {
		t.Fatal("same seed produced different traces")
	}
	c, err := Generate(mix, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ta, EncodeTrace(c)) {
		t.Fatal("different seeds produced identical traces")
	}
	// The merged trace is in arrival order with dense sequence numbers, and
	// every enabled class actually shows up.
	seen := make(map[OpClass]bool)
	for i, op := range a {
		if op.Seq != i {
			t.Fatalf("op %d has Seq %d", i, op.Seq)
		}
		if i > 0 && op.At < a[i-1].At {
			t.Fatalf("op %d arrives before op %d", i, i-1)
		}
		seen[op.Class] = true
	}
	for _, class := range Classes {
		if mix.rate(class) > 0 && !seen[class] {
			t.Fatalf("class %s enabled but absent from trace", class)
		}
	}
}

// countingTarget counts every Target call, to prove a malformed mix
// applies nothing.
type countingTarget struct{ calls int }

func (t *countingTarget) Name() string { t.calls++; return "counting" }
func (t *countingTarget) DeclareTypesDSL(string, typedsl.CompileOptions) error {
	t.calls++
	return nil
}
func (t *countingTarget) CreateType(*dbfs.Schema) error { t.calls++; return nil }
func (t *countingTarget) Register(*purpose.Decl, *ded.Func) error {
	t.calls++
	return nil
}
func (t *countingTarget) SetRateLimit(string, float64, float64) error { t.calls++; return nil }
func (t *countingTarget) Insert(string, string, dbfs.Record) (string, error) {
	t.calls++
	return "", nil
}
func (t *countingTarget) Update(string, dbfs.Record) error { t.calls++; return nil }
func (t *countingTarget) Invoke(ps.InvokeRequest) (*ded.Result, error) {
	t.calls++
	return &ded.Result{}, nil
}
func (t *countingTarget) Access(string) (*rights.AccessReport, error) { t.calls++; return nil, nil }
func (t *countingTarget) AccessBatch([]string) ([]*rights.AccessReport, error) {
	t.calls++
	return nil, nil
}
func (t *countingTarget) Erase(string) ([]string, error)                  { t.calls++; return nil, nil }
func (t *countingTarget) SetConsent(string, string, membrane.Grant) error { t.calls++; return nil }
func (t *countingTarget) WithdrawConsent(string, string) error            { t.calls++; return nil }
func (t *countingTarget) SweepExpired() ([]string, error)                 { t.calls++; return nil, nil }
func (t *countingTarget) GetRecord(string) (dbfs.Record, error)           { t.calls++; return nil, nil }
func (t *countingTarget) ResidueScan([][]byte) int                        { t.calls++; return 0 }
func (t *countingTarget) CostOps() uint64                                 { t.calls++; return 0 }
func (t *countingTarget) SimClock() *simclock.Sim                         { t.calls++; return nil }

func TestValidateMalformedMix(t *testing.T) {
	sc, _ := LookupScenario("health-records")
	base := sc.MixFor(true)
	cloneMix := func() MacroMix {
		m := base
		m.Rates = make(map[OpClass]Rate, len(base.Rates))
		for c, r := range base.Rates {
			m.Rates[c] = r
		}
		m.Limits = append([]LimitSpec(nil), base.Limits...)
		return m
	}
	cases := []struct {
		name   string
		mutate func(*MacroMix)
	}{
		{"empty name", func(m *MacroMix) { m.Name = "" }},
		{"zero duration", func(m *MacroMix) { m.Duration = 0 }},
		{"zero subjects", func(m *MacroMix) { m.Subjects = 0 }},
		{"negative skew", func(m *MacroMix) { m.Skew = -1 }},
		{"withdraw prob > 1", func(m *MacroMix) { m.WithdrawProb = 1.5 }},
		{"negative rate", func(m *MacroMix) { m.Rates[ClassInsert] = Rate{PerSec: -1} }},
		{"burst length exceeds period", func(m *MacroMix) {
			m.Rates[ClassInsert] = Rate{PerSec: 1, BurstEvery: time.Second, BurstLen: 2 * time.Second, BurstFactor: 2}
		}},
		{"burst period without length", func(m *MacroMix) {
			m.Rates[ClassInsert] = Rate{PerSec: 1, BurstEvery: time.Second, BurstFactor: 2}
		}},
		{"burst factor below 1", func(m *MacroMix) {
			m.Rates[ClassInsert] = Rate{PerSec: 1, BurstEvery: time.Second, BurstLen: time.Second, BurstFactor: 0.5}
		}},
		{"unknown class", func(m *MacroMix) { m.Rates[OpClass(99)] = Rate{PerSec: 1} }},
		{"runaway expected ops", func(m *MacroMix) { m.Rates[ClassInsert] = Rate{PerSec: 1e9} }},
		{"batch rate without size", func(m *MacroMix) { m.BatchSize = 0 }},
		{"query rate without purposes", func(m *MacroMix) { m.QueryPurposes = nil }},
		{"consent rate without purposes", func(m *MacroMix) { m.ConsentPurposes = nil }},
		{"limit with empty purpose", func(m *MacroMix) { m.Limits = []LimitSpec{{Purpose: "", RatePerSec: 1, Burst: 1}} }},
		{"limit with zero rate", func(m *MacroMix) { m.Limits = []LimitSpec{{Purpose: "care", RatePerSec: 0, Burst: 1}} }},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base mix invalid: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := cloneMix()
			tc.mutate(&m)
			err := m.Validate()
			if !errors.Is(err, ErrBadMix) {
				t.Fatalf("Validate = %v, want ErrBadMix", err)
			}
			if ops, err := Generate(m, 1); err == nil || ops != nil {
				t.Fatalf("Generate on bad mix returned %d ops, err %v", len(ops), err)
			}
			// A malformed mix must apply nothing: Prepare fails before a
			// single target call.
			ct := &countingTarget{}
			if _, err := Prepare(ct, sc, m); !errors.Is(err, ErrBadMix) {
				t.Fatalf("Prepare = %v, want ErrBadMix", err)
			}
			if ct.calls != 0 {
				t.Fatalf("Prepare on bad mix made %d target calls", ct.calls)
			}
		})
	}
}

// TestScorecardByteIdentical is the determinism witness for the whole
// pipeline: two fresh machines, same seed, byte-identical scorecard JSON.
func TestScorecardByteIdentical(t *testing.T) {
	run := func() []byte {
		sc, _ := LookupScenario("health-records")
		mix := sc.MixFor(true)
		ops, err := Generate(mix, 42)
		if err != nil {
			t.Fatal(err)
		}
		sys := bootMacroSystem(t, mix, ops, 42)
		card, err := RunScenario(NewSystemTarget(sys), sc,
			RunConfig{Seed: 42, Small: true, Pace: true})
		if err != nil {
			t.Fatal(err)
		}
		if !card.Clean() {
			t.Fatalf("invariants violated: %+v", card.Invariants)
		}
		j, err := card.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("scorecards differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestSoakCluster2 drives the mixed breach-response trace concurrently
// over a 2-node fleet — the -race harness for the macro path. Outcomes are
// unordered, but nothing may genuinely fail.
func TestSoakCluster2(t *testing.T) {
	sc, _ := LookupScenario("breach-response")
	mix := sc.MixFor(true)
	ops, err := Generate(mix, 11)
	if err != nil {
		t.Fatal(err)
	}
	blocks, npdBlocks, inodes := BootSizing(mix, ops)
	cl, err := cluster.Boot(cluster.Options{
		Nodes: 2,
		Node: core.Options{
			AuthorityBits: 1024,
			PDDiskBlocks:  blocks,
			NPDDiskBlocks: npdBlocks,
			NInodes:       inodes,
			JournalBlocks: 256,
			Workers:       2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, rejected, denied, failed, err := Soak(NewClusterTarget(cl), sc, mix, ops, 8)
	if err != nil {
		t.Fatal(err)
	}
	if total := ok + rejected + denied + failed; total != len(ops) {
		t.Fatalf("outcomes %d != ops %d", total, len(ops))
	}
	if failed != 0 {
		t.Fatalf("%d genuine failures under concurrent load (ok=%d rejected=%d denied=%d)",
			failed, ok, rejected, denied)
	}
	if ok == 0 {
		t.Fatal("no op succeeded")
	}
}
