package workload

import (
	"testing"

	"repro/internal/membrane"
	"repro/internal/xrand"
)

func TestSubjectIDsDeterministic(t *testing.T) {
	a := SubjectIDs(100)
	b := SubjectIDs(100)
	if len(a) != 100 || a[0] != "s000001" || a[99] != "s000100" {
		t.Fatalf("ids = %v...", a[:3])
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SubjectIDs not deterministic")
		}
	}
	seen := map[string]bool{}
	for _, id := range a {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestUserRecordShape(t *testing.T) {
	rng := xrand.New(1)
	rec := UserRecord(rng, "s000042")
	if rec["name"].S == "" || rec["pwd"].S != "pw-s000042" {
		t.Fatalf("rec = %v", rec)
	}
	yob := rec["year_of_birthdate"].I
	if yob < 1940 || yob >= 2010 {
		t.Fatalf("yob = %d", yob)
	}
	// Determinism.
	rec2 := UserRecord(xrand.New(1), "s000042")
	if rec["name"].S != rec2["name"].S {
		t.Fatal("UserRecord not deterministic")
	}
}

func TestConsentProfile(t *testing.T) {
	rng := xrand.New(2)
	purposes := []string{"p1", "p2", "p3"}
	all := ConsentProfile(rng, purposes, "v", 1.0, 0.0)
	for _, p := range purposes {
		if all[p].Kind != membrane.GrantAll {
			t.Fatalf("grant = %+v", all[p])
		}
	}
	none := ConsentProfile(rng, purposes, "v", 0.0, 0.0)
	for _, p := range purposes {
		if none[p].Kind != membrane.GrantNone {
			t.Fatalf("grant = %+v", none[p])
		}
	}
	views := ConsentProfile(rng, purposes, "v", 1.0, 1.0)
	for _, p := range purposes {
		if views[p].Kind != membrane.GrantView || views[p].View != "v" {
			t.Fatalf("grant = %+v", views[p])
		}
	}
}

func TestMixDraw(t *testing.T) {
	rng := xrand.New(3)
	m := MixD()
	counts := map[OpKind]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[m.Draw(rng)]++
	}
	frac := func(k OpKind) float64 { return float64(counts[k]) / n }
	if f := frac(OpRead); f < 0.88 || f > 0.92 {
		t.Fatalf("read frac = %.3f", f)
	}
	if f := frac(OpUpdate); f < 0.04 || f > 0.06 {
		t.Fatalf("update frac = %.3f", f)
	}
	if counts[OpErase] == 0 || counts[OpAccessReport] == 0 {
		t.Fatalf("counts = %v", counts)
	}
	// Read-only mix C never yields anything else.
	c := MixC()
	for i := 0; i < 1000; i++ {
		if k := c.Draw(rng); k != OpRead {
			t.Fatalf("mix C drew %v", k)
		}
	}
}

func TestPickerZipfSkew(t *testing.T) {
	rng := xrand.New(4)
	ids := SubjectIDs(1000)
	p := NewPicker(rng, ids, 1.2)
	counts := map[string]int{}
	for i := 0; i < 50000; i++ {
		counts[p.Pick()]++
	}
	// The head subject must dominate the median one.
	if counts[ids[0]] < 50*counts[ids[500]]/10 && counts[ids[0]] < 100 {
		t.Fatalf("no skew: head=%d mid=%d", counts[ids[0]], counts[ids[500]])
	}
}

func TestPickerUniform(t *testing.T) {
	rng := xrand.New(5)
	ids := SubjectIDs(10)
	p := NewPicker(rng, ids, 0)
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[p.Pick()]++
	}
	for _, id := range ids {
		if counts[id] < 800 || counts[id] > 1200 {
			t.Fatalf("uniform counts = %v", counts)
		}
	}
}

func TestPickerEmpty(t *testing.T) {
	p := NewPicker(xrand.New(1), nil, 1.5)
	if got := p.Pick(); got != "" {
		t.Fatalf("empty Pick = %q", got)
	}
}

func TestOpKindStrings(t *testing.T) {
	if OpRead.String() != "read" || OpAccessReport.String() != "access-report" {
		t.Fatal("names wrong")
	}
	if MixA().Name != "A" || MixB().Read != 0.95 {
		t.Fatal("mix definitions wrong")
	}
}
