// Package workload generates the deterministic populations and operation
// mixes driving the benchmark harness: synthetic subjects, Listing-1-style
// user records, consent distributions, and YCSB-like read/update/erase
// mixes with Zipf-skewed subject popularity.
package workload

import (
	"fmt"
	"strconv"

	"repro/internal/dbfs"
	"repro/internal/membrane"
	"repro/internal/xrand"
)

// firstNames and lastNames seed the synthetic identities.
var (
	firstNames = []string{
		"Alice", "Bob", "Chiraz", "David", "Emma", "Farid", "Grace", "Hugo",
		"Ines", "Jules", "Karim", "Lea", "Mohamed", "Nora", "Omar", "Paula",
		"Quentin", "Rania", "Sofia", "Thomas", "Uma", "Victor", "Wassim", "Yara",
	}
	lastNames = []string{
		"Martin", "Benamor", "Bernard", "Dubois", "Durand", "Garcia", "Khelifi",
		"Laurent", "Lefebvre", "Moreau", "Nguyen", "Petit", "Richard", "Robert",
		"Rossi", "Silva", "Stone", "Tchana", "Weber", "Zidane",
	}
)

// SubjectIDs generates n deterministic subject identifiers.
func SubjectIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "s" + pad6(i+1)
	}
	return out
}

func pad6(n int) string {
	s := strconv.Itoa(n)
	for len(s) < 6 {
		s = "0" + s
	}
	return s
}

// UserRecord generates a Listing-1-style user record for a subject.
func UserRecord(rng *xrand.RNG, subjectID string) dbfs.Record {
	first := xrand.Pick(rng, firstNames)
	last := xrand.Pick(rng, lastNames)
	return dbfs.Record{
		"name":              dbfs.S(first + " " + last + " (" + subjectID + ")"),
		"pwd":               dbfs.S("pw-" + subjectID),
		"year_of_birthdate": dbfs.I(int64(1940 + rng.Intn(70))),
	}
}

// ConsentProfile draws a consent map: each purpose is granted with
// probability grantProb, as GrantAll or (viewProb of the time) the view.
func ConsentProfile(rng *xrand.RNG, purposes []string, view string, grantProb, viewProb float64) map[string]membrane.Grant {
	out := make(map[string]membrane.Grant, len(purposes))
	for _, p := range purposes {
		switch {
		case !rng.Bool(grantProb):
			out[p] = membrane.Grant{Kind: membrane.GrantNone}
		case view != "" && rng.Bool(viewProb):
			out[p] = membrane.Grant{Kind: membrane.GrantView, View: view}
		default:
			out[p] = membrane.Grant{Kind: membrane.GrantAll}
		}
	}
	return out
}

// OpKind is one operation type in a mix.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota + 1
	OpUpdate
	OpErase
	OpAccessReport
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpErase:
		return "erase"
	case OpAccessReport:
		return "access-report"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Mix is a normalized operation mix.
type Mix struct {
	Name   string
	Read   float64
	Update float64
	Erase  float64
	Access float64
}

// Standard mixes, YCSB-flavoured with a GDPR twist: mix D adds the
// rights traffic (erasures and access reports) a regulated operator sees.
func MixA() Mix { return Mix{Name: "A", Read: 0.50, Update: 0.50} }

// MixB is read-mostly.
func MixB() Mix { return Mix{Name: "B", Read: 0.95, Update: 0.05} }

// MixC is read-only.
func MixC() Mix { return Mix{Name: "C", Read: 1.00} }

// MixD models GDPR operations traffic.
func MixD() Mix {
	return Mix{Name: "D", Read: 0.90, Update: 0.05, Erase: 0.025, Access: 0.025}
}

// Draw picks an operation kind according to the mix.
func (m Mix) Draw(rng *xrand.RNG) OpKind {
	f := rng.Float64()
	switch {
	case f < m.Read:
		return OpRead
	case f < m.Read+m.Update:
		return OpUpdate
	case f < m.Read+m.Update+m.Erase:
		return OpErase
	default:
		return OpAccessReport
	}
}

// Picker selects subjects with Zipf skew (hot subjects exist in every real
// population) or uniformly when skew <= 1.
type Picker struct {
	subjects []string
	zipf     *xrand.Zipf
	rng      *xrand.RNG
}

// NewPicker builds a subject picker over ids with the given skew.
func NewPicker(rng *xrand.RNG, ids []string, skew float64) *Picker {
	p := &Picker{subjects: ids, rng: rng}
	if skew > 1 && len(ids) > 1 {
		p.zipf = xrand.NewZipf(rng, skew, 1, uint64(len(ids)-1))
	}
	return p
}

// Pick returns a subject id.
func (p *Picker) Pick() string {
	if len(p.subjects) == 0 {
		return ""
	}
	if p.zipf != nil {
		return p.subjects[int(p.zipf.Uint64())]
	}
	return p.subjects[p.rng.Intn(len(p.subjects))]
}
