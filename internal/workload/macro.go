// Macro workload generator: the deterministic, seeded open-loop traffic
// source behind SC9. A MacroMix declares per-op-class arrival rates, burst
// envelopes and subject-population skew; Generate expands it into a typed
// op trace (exponential inter-arrivals, merged across classes in time
// order) that is byte-identical for a given (mix, seed) pair. The trace is
// pure data — pacing it onto a machine is the runner's job — so the same
// trace can drive a single core.System, an internal/cluster fleet, or a
// -race soak.
//
// The op classes follow the GDPR-storage benchmark in "Analyzing the
// Impact of GDPR on Storage Systems" (PAPERS.md): ordinary traffic
// (inserts, updates, purpose-bound queries) interleaved with the rights
// traffic a regulated operator actually serves — Article 15 access (single
// and bulk), Article 17 erasure, consent changes, and retention churn.
package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/xrand"
)

// OpClass is one class of macro-workload operation. Distinct from OpKind
// (the YCSB-style micro mixes above): a macro class maps to a whole system
// entry point, not a storage primitive.
type OpClass int

// Macro op classes, in canonical order.
const (
	ClassInsert OpClass = iota + 1
	ClassUpdate
	ClassDEDQuery
	ClassAccess
	ClassAccessBatch
	ClassErase
	ClassConsent
	ClassRetention
)

// Classes lists every op class in canonical order. Generation, RNG
// splitting and scorecard rows all iterate this slice, never a map, so
// runs are deterministic.
var Classes = []OpClass{
	ClassInsert, ClassUpdate, ClassDEDQuery, ClassAccess,
	ClassAccessBatch, ClassErase, ClassConsent, ClassRetention,
}

// String names the class as it appears in traces and scorecards.
func (c OpClass) String() string {
	switch c {
	case ClassInsert:
		return "insert"
	case ClassUpdate:
		return "update"
	case ClassDEDQuery:
		return "ded-query"
	case ClassAccess:
		return "access"
	case ClassAccessBatch:
		return "access-batch"
	case ClassErase:
		return "erase"
	case ClassConsent:
		return "consent"
	case ClassRetention:
		return "retention"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Rate is one op class's open-loop arrival spec: a base Poisson rate plus
// an optional periodic burst envelope (rate multiplied by BurstFactor for
// BurstLen out of every BurstEvery). PerSec 0 disables the class.
type Rate struct {
	PerSec      float64
	BurstEvery  time.Duration
	BurstLen    time.Duration
	BurstFactor float64
}

// mean is the envelope-weighted average arrival rate, used to bound trace
// size at validation time.
func (r Rate) mean() float64 {
	if r.PerSec <= 0 {
		return 0
	}
	if r.BurstEvery <= 0 || r.BurstFactor <= 1 {
		return r.PerSec
	}
	frac := float64(r.BurstLen) / float64(r.BurstEvery)
	return r.PerSec * (1 + (r.BurstFactor-1)*frac)
}

// at is the effective arrival rate at offset t within the envelope.
func (r Rate) at(t time.Duration) float64 {
	if r.BurstEvery > 0 && r.BurstFactor > 1 && t%r.BurstEvery < r.BurstLen {
		return r.PerSec * r.BurstFactor
	}
	return r.PerSec
}

// MacroMix declares a macro workload: how long, over how many subjects,
// with what skew, and at what rate per op class. A mix is pure
// declaration; Validate rejects malformed mixes with typed errors before
// anything touches a machine.
type MacroMix struct {
	// Name labels the mix in traces and scorecards.
	Name string
	// Duration is the simulated length of the run.
	Duration time.Duration
	// Subjects sizes the synthetic population (SubjectIDs order).
	Subjects int
	// Skew is the Zipf exponent of subject popularity; <= 1 is uniform.
	Skew float64
	// Rates gives each class its arrival spec. Classes absent from the
	// map are disabled; iteration is always over Classes order.
	Rates map[OpClass]Rate
	// BatchSize is the number of subjects per AccessBatch op.
	BatchSize int
	// QueryPurposes rotates round-robin across DEDQuery ops, so a mix
	// listing one denied purpose gets an exact share of
	// purpose-limitation pressure.
	QueryPurposes []string
	// ConsentPurposes rotates round-robin across Consent ops.
	ConsentPurposes []string
	// WithdrawProb is the probability a Consent op withdraws (vs
	// re-grants) its purpose.
	WithdrawProb float64
	// Limits are the per-purpose admission rate limits installed before
	// the run. They live on the mix, not the scenario, because a limit
	// only means something relative to the offered rate at that scale.
	Limits []LimitSpec
}

// ErrBadMix is the umbrella validation error: every malformed-mix error
// wraps it, and a mix that fails validation applies nothing.
var ErrBadMix = errors.New("workload: bad macro mix")

// maxTraceOps bounds the expected trace size a mix may declare — a
// runaway-rate backstop, not a tuning knob.
const maxTraceOps = 2_000_000

// Validate checks the mix declaration. All failures wrap ErrBadMix.
func (m MacroMix) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadMix)
	}
	if m.Duration <= 0 {
		return fmt.Errorf("%w %q: duration %v not positive", ErrBadMix, m.Name, m.Duration)
	}
	if m.Subjects <= 0 {
		return fmt.Errorf("%w %q: %d subjects", ErrBadMix, m.Name, m.Subjects)
	}
	if m.Skew < 0 {
		return fmt.Errorf("%w %q: negative skew %v", ErrBadMix, m.Name, m.Skew)
	}
	if m.WithdrawProb < 0 || m.WithdrawProb > 1 {
		return fmt.Errorf("%w %q: withdraw probability %v outside [0,1]", ErrBadMix, m.Name, m.WithdrawProb)
	}
	var expected float64
	for _, c := range Classes {
		r, ok := m.Rates[c]
		if !ok {
			continue
		}
		if r.PerSec < 0 {
			return fmt.Errorf("%w %q: class %s: negative rate %v", ErrBadMix, m.Name, c, r.PerSec)
		}
		if r.BurstEvery < 0 || r.BurstLen < 0 {
			return fmt.Errorf("%w %q: class %s: negative burst envelope", ErrBadMix, m.Name, c)
		}
		if r.BurstEvery > 0 && r.BurstLen > r.BurstEvery {
			return fmt.Errorf("%w %q: class %s: burst length %v exceeds period %v",
				ErrBadMix, m.Name, c, r.BurstLen, r.BurstEvery)
		}
		if (r.BurstEvery > 0) != (r.BurstLen > 0) {
			return fmt.Errorf("%w %q: class %s: burst envelope needs both period and length",
				ErrBadMix, m.Name, c)
		}
		if r.BurstEvery > 0 && r.BurstFactor < 1 {
			return fmt.Errorf("%w %q: class %s: burst factor %v below 1",
				ErrBadMix, m.Name, c, r.BurstFactor)
		}
		expected += r.mean() * m.Duration.Seconds()
	}
	for c := range m.Rates {
		if c < ClassInsert || c > ClassRetention {
			return fmt.Errorf("%w %q: unknown op class %d", ErrBadMix, m.Name, int(c))
		}
	}
	if expected > maxTraceOps {
		return fmt.Errorf("%w %q: ~%.0f expected ops exceeds the %d cap",
			ErrBadMix, m.Name, expected, maxTraceOps)
	}
	if m.rate(ClassAccessBatch) > 0 && m.BatchSize <= 0 {
		return fmt.Errorf("%w %q: access-batch rate set but batch size %d", ErrBadMix, m.Name, m.BatchSize)
	}
	if m.rate(ClassDEDQuery) > 0 && len(m.QueryPurposes) == 0 {
		return fmt.Errorf("%w %q: ded-query rate set but no query purposes", ErrBadMix, m.Name)
	}
	if m.rate(ClassConsent) > 0 && len(m.ConsentPurposes) == 0 {
		return fmt.Errorf("%w %q: consent rate set but no consent purposes", ErrBadMix, m.Name)
	}
	for _, l := range m.Limits {
		if l.Purpose == "" {
			return fmt.Errorf("%w %q: rate limit with empty purpose", ErrBadMix, m.Name)
		}
		if l.RatePerSec <= 0 || l.Burst <= 0 {
			return fmt.Errorf("%w %q: rate limit for %s not positive", ErrBadMix, m.Name, l.Purpose)
		}
	}
	return nil
}

func (m MacroMix) rate(c OpClass) float64 { return m.Rates[c].PerSec }

// Op is one generated operation. The trace is fully materialized data:
// executing it requires no further randomness.
type Op struct {
	// Seq is the op's position in the merged trace.
	Seq int
	// At is the arrival offset from the start of the run.
	At time.Duration
	// Class selects the entry point.
	Class OpClass
	// Subject targets one subject (empty only for class bookkeeping that
	// needs none).
	Subject string
	// Batch lists the subjects of an AccessBatch op.
	Batch []string
	// Purpose names the query or consent purpose.
	Purpose string
	// Withdraw marks a Consent op as a withdrawal (vs a re-grant).
	Withdraw bool
}

// Generate expands the mix into its op trace for one seed. The trace is
// deterministic: per-class RNG streams are split from the seed in Classes
// order, arrivals are exponential against the burst envelope, and the
// merged order breaks time ties by (class, per-class index). A mix that
// fails Validate generates nothing.
func Generate(m MacroMix, seed uint64) ([]Op, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	subjects := SubjectIDs(m.Subjects)
	root := xrand.New(seed)
	var ops []Op
	cursor := 0 // access-batch rotation over the population
	for _, class := range Classes {
		rng := root.Split() // every class consumes one split, rate or not
		r, ok := m.Rates[class]
		if !ok || r.PerSec <= 0 {
			continue
		}
		picker := NewPicker(rng, subjects, m.Skew)
		t := time.Duration(0)
		idx := 0
		for {
			// Exponential inter-arrival at the envelope's current rate.
			u := rng.Float64()
			dt := -math.Log(1-u) / r.at(t)
			t += time.Duration(dt * float64(time.Second))
			if t >= m.Duration {
				break
			}
			op := Op{At: t, Class: class}
			switch class {
			case ClassAccessBatch:
				op.Batch = make([]string, 0, m.BatchSize)
				for j := 0; j < m.BatchSize; j++ {
					op.Batch = append(op.Batch, subjects[(cursor+j)%len(subjects)])
				}
				cursor = (cursor + m.BatchSize) % len(subjects)
			case ClassDEDQuery:
				op.Subject = picker.Pick()
				op.Purpose = m.QueryPurposes[idx%len(m.QueryPurposes)]
			case ClassConsent:
				op.Subject = picker.Pick()
				op.Purpose = m.ConsentPurposes[idx%len(m.ConsentPurposes)]
				op.Withdraw = rng.Bool(m.WithdrawProb)
			default:
				op.Subject = picker.Pick()
			}
			ops = append(ops, op)
			idx++
		}
	}
	// Stable sort by arrival time only: ops were appended class-block by
	// class-block in canonical order, in time order within each block, so
	// equal arrivals keep (class order, per-class index) — a fully
	// deterministic merge with no explicit tie-break bookkeeping.
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].At < ops[j].At })
	for i := range ops {
		ops[i].Seq = i
	}
	return ops, nil
}

// EncodeTrace renders the trace in a canonical line format, one op per
// line — the byte-identity witness for determinism tests and `rgpdctl
// macro -trace`.
func EncodeTrace(ops []Op) []byte {
	var out []byte
	for _, op := range ops {
		out = append(out, strconv.Itoa(op.Seq)...)
		out = append(out, ' ')
		out = append(out, strconv.FormatInt(op.At.Microseconds(), 10)...)
		out = append(out, "us "...)
		out = append(out, op.Class.String()...)
		if op.Subject != "" {
			out = append(out, ' ')
			out = append(out, op.Subject...)
		}
		for _, s := range op.Batch {
			out = append(out, ' ')
			out = append(out, s...)
		}
		if op.Purpose != "" {
			out = append(out, " purpose="...)
			out = append(out, op.Purpose...)
		}
		if op.Withdraw {
			out = append(out, " withdraw"...)
		}
		out = append(out, '\n')
	}
	return out
}
