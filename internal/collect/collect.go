// Package collect implements rgpdOS's data collection interfaces.
//
// The membrane of every PD type names the interface to use for collection
// (Listing 1's collection block: a web form for data gathered directly from
// the subject, a third-party fetch script for data from another operator).
// The acquisition builtin asks this package for the actual data; collection
// is also where "rgpdOS requests the needed metadata to fill the membrane
// with" (§2) — each source reports the provenance that seeds the membrane's
// origin field, so every record enters DBFS correctly wrapped from the
// first byte.
//
// Real deployments would render user_form.html or run fetch_data.py; the
// reproduction simulates both: a web-form source fed by queued submissions
// and a third-party source backed by a deterministic generator.
package collect

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/dbfs"
	"repro/internal/membrane"
)

// Sentinel errors.
var (
	// ErrNoSource reports an unregistered collection method.
	ErrNoSource = errors.New("collect: no such collection source")
	// ErrNoData reports a source with nothing (pending) for the subject.
	ErrNoData = errors.New("collect: no data available for subject")
)

// Source is one collection interface.
type Source interface {
	// Method names the collection method ("web_form", "third_party").
	Method() string
	// Ref is the interface reference from the type declaration
	// ("user_form.html", "fetch_data.py").
	Ref() string
	// Collect produces the subject's record and its provenance.
	Collect(subjectID string) (dbfs.Record, membrane.Origin, error)
}

// WebFormSource simulates a web form: subjects submit their own data, which
// queues until acquisition collects it. Origin is the subject.
type WebFormSource struct {
	ref string

	mu      sync.Mutex
	pending map[string]dbfs.Record
}

var _ Source = (*WebFormSource)(nil)

// NewWebFormSource creates a form source with the given interface ref.
func NewWebFormSource(ref string) *WebFormSource {
	return &WebFormSource{ref: ref, pending: make(map[string]dbfs.Record)}
}

// Method implements Source.
func (w *WebFormSource) Method() string { return "web_form" }

// Ref implements Source.
func (w *WebFormSource) Ref() string { return w.ref }

// Submit queues a subject's form submission (the subject filling the form).
func (w *WebFormSource) Submit(subjectID string, rec dbfs.Record) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pending[subjectID] = rec.Clone()
}

// Collect implements Source: it consumes the queued submission.
func (w *WebFormSource) Collect(subjectID string) (dbfs.Record, membrane.Origin, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec, ok := w.pending[subjectID]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q via web form %s", ErrNoData, subjectID, w.ref)
	}
	delete(w.pending, subjectID)
	return rec, membrane.OriginSubject, nil
}

// Pending reports how many submissions await collection.
func (w *WebFormSource) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// ThirdPartySource simulates fetching from another data operator. Origin is
// third_party, which the membrane records for traceability.
type ThirdPartySource struct {
	ref   string
	fetch func(subjectID string) (dbfs.Record, error)
}

var _ Source = (*ThirdPartySource)(nil)

// NewThirdPartySource creates a third-party source with a fetch function
// (the stand-in for fetch_data.py).
func NewThirdPartySource(ref string, fetch func(subjectID string) (dbfs.Record, error)) *ThirdPartySource {
	return &ThirdPartySource{ref: ref, fetch: fetch}
}

// Method implements Source.
func (t *ThirdPartySource) Method() string { return "third_party" }

// Ref implements Source.
func (t *ThirdPartySource) Ref() string { return t.ref }

// Collect implements Source.
func (t *ThirdPartySource) Collect(subjectID string) (dbfs.Record, membrane.Origin, error) {
	rec, err := t.fetch(subjectID)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %q via %s: %v", ErrNoData, subjectID, t.ref, err)
	}
	return rec, membrane.OriginThirdParty, nil
}

// Registry maps collection methods to sources, per PD type.
type Registry struct {
	mu      sync.RWMutex
	sources map[string]map[string]Source // typeName -> method -> source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]map[string]Source)}
}

// Register attaches a source to (typeName, source.Method()).
func (r *Registry) Register(typeName string, src Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	byMethod, ok := r.sources[typeName]
	if !ok {
		byMethod = make(map[string]Source)
		r.sources[typeName] = byMethod
	}
	byMethod[src.Method()] = src
}

// Lookup resolves the source for (typeName, method).
func (r *Registry) Lookup(typeName, method string) (Source, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if src, ok := r.sources[typeName][method]; ok {
		return src, nil
	}
	return nil, fmt.Errorf("%w: %s via %q", ErrNoSource, typeName, method)
}
