package collect

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/dbfs"
	"repro/internal/membrane"
)

func TestWebFormLifecycle(t *testing.T) {
	w := NewWebFormSource("user_form.html")
	if w.Method() != "web_form" || w.Ref() != "user_form.html" {
		t.Fatalf("identity = %q %q", w.Method(), w.Ref())
	}
	// Nothing queued yet.
	if _, _, err := w.Collect("alice"); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty Collect err = %v", err)
	}
	w.Submit("alice", dbfs.Record{"name": dbfs.S("Alice")})
	if w.Pending() != 1 {
		t.Fatalf("Pending = %d", w.Pending())
	}
	rec, origin, err := w.Collect("alice")
	if err != nil {
		t.Fatal(err)
	}
	if origin != membrane.OriginSubject {
		t.Fatalf("origin = %v, want subject", origin)
	}
	if rec["name"].S != "Alice" {
		t.Fatalf("rec = %v", rec)
	}
	// Consumed: second collect finds nothing.
	if _, _, err := w.Collect("alice"); !errors.Is(err, ErrNoData) {
		t.Fatalf("re-Collect err = %v", err)
	}
}

func TestWebFormCopiesRecord(t *testing.T) {
	w := NewWebFormSource("f.html")
	rec := dbfs.Record{"name": dbfs.S("X")}
	w.Submit("s", rec)
	rec["name"] = dbfs.S("mutated")
	got, _, err := w.Collect("s")
	if err != nil {
		t.Fatal(err)
	}
	if got["name"].S != "X" {
		t.Fatal("Submit did not copy the record")
	}
}

func TestThirdPartySource(t *testing.T) {
	tp := NewThirdPartySource("fetch_data.py", func(subjectID string) (dbfs.Record, error) {
		if subjectID == "missing" {
			return nil, fmt.Errorf("not in partner dataset")
		}
		return dbfs.Record{"name": dbfs.S("From partner: " + subjectID)}, nil
	})
	if tp.Method() != "third_party" {
		t.Fatalf("Method = %q", tp.Method())
	}
	rec, origin, err := tp.Collect("bob")
	if err != nil {
		t.Fatal(err)
	}
	if origin != membrane.OriginThirdParty {
		t.Fatalf("origin = %v, want third_party (traceability)", origin)
	}
	if rec["name"].S != "From partner: bob" {
		t.Fatalf("rec = %v", rec)
	}
	if _, _, err := tp.Collect("missing"); !errors.Is(err, ErrNoData) {
		t.Fatalf("missing Collect err = %v", err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	w := NewWebFormSource("user_form.html")
	tp := NewThirdPartySource("fetch_data.py", func(string) (dbfs.Record, error) { return dbfs.Record{}, nil })
	r.Register("user", w)
	r.Register("user", tp)

	got, err := r.Lookup("user", "web_form")
	if err != nil || got != Source(w) {
		t.Fatalf("Lookup web_form = %v, %v", got, err)
	}
	got, err = r.Lookup("user", "third_party")
	if err != nil || got != Source(tp) {
		t.Fatalf("Lookup third_party = %v, %v", got, err)
	}
	if _, err := r.Lookup("user", "carrier_pigeon"); !errors.Is(err, ErrNoSource) {
		t.Fatalf("unknown method err = %v", err)
	}
	if _, err := r.Lookup("ghost", "web_form"); !errors.Is(err, ErrNoSource) {
		t.Fatalf("unknown type err = %v", err)
	}
}
