package gdprdata

import (
	"strings"
	"testing"
)

func TestCheckShape(t *testing.T) {
	if err := CheckShape(); err != nil {
		t.Fatalf("CheckShape: %v", err)
	}
}

func TestPenaltiesMatchPaperClaims(t *testing.T) {
	years := Penalties()
	if len(years) != 4 || years[0].Year != 2018 || years[3].Year != 2021 {
		t.Fatalf("years = %+v", years)
	}
	// "topping 1.2 billion euros in 2021"
	if years[3].MEuros < 1200 {
		t.Fatalf("2021 = %.0f M€", years[3].MEuros)
	}
	// "increases every year"
	for i := 1; i < len(years); i++ {
		if years[i].MEuros <= years[i-1].MEuros {
			t.Fatalf("not increasing at %d", years[i].Year)
		}
	}
}

func TestCumulative(t *testing.T) {
	cum := CumulativePenalties()
	if cum[0].MEuros != 0.4 {
		t.Fatalf("cum 2018 = %v", cum[0])
	}
	want := 0.4 + 72 + 171 + 1200
	if got := cum[len(cum)-1].MEuros; got != want {
		t.Fatalf("cum 2021 = %v, want %v", got, want)
	}
}

func TestSectorsTop5(t *testing.T) {
	sectors := Sectors()
	if len(sectors) != 5 {
		t.Fatalf("sectors = %d", len(sectors))
	}
	names := []string{"Markets", "Medias", "Transport", "IT", "Tourism"}
	for i, s := range sectors {
		if s.Sector != names[i] {
			t.Fatalf("sector %d = %q, want %q", i, s.Sector, names[i])
		}
	}
}

func TestRenderPanels(t *testing.T) {
	var left, right strings.Builder
	if err := RenderLeft(&left); err != nil {
		t.Fatal(err)
	}
	if err := RenderRight(&right); err != nil {
		t.Fatal(err)
	}
	l := left.String()
	if !strings.Contains(l, "2021") || !strings.Contains(l, "1200.0") {
		t.Fatalf("left panel:\n%s", l)
	}
	// 2021's bar must dominate 2019's.
	if strings.Count(lineOf(l, "2021"), "#") <= strings.Count(lineOf(l, "2019"), "#") {
		t.Fatalf("bar proportions wrong:\n%s", l)
	}
	r := right.String()
	if !strings.Contains(r, "Markets") || !strings.Contains(r, "Tourism") {
		t.Fatalf("right panel:\n%s", r)
	}
}

func lineOf(s, substr string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			return line
		}
	}
	return ""
}

func TestBarEdgeCases(t *testing.T) {
	if bar(0, 0, 10) != "" {
		t.Fatal("zero max should render empty")
	}
	if got := bar(0.1, 1000, 50); got != "#" {
		t.Fatalf("tiny value bar = %q, want single #", got)
	}
}
