// Package gdprdata reproduces Figure 1 of the paper: the GDPR penalty
// statistics that motivate rgpdOS. The paper plots data from Data Legal
// Drive's sanction map (reference [2]): total penalties per year
// (2018–2021, "topping 1.2 billion euros in 2021") and the five most
// sanctioned business sectors.
//
// The paper prints charts without a numeric table, so the values here are
// read off the figure and cross-checked against public GDPR enforcement
// trackers for the same period; they preserve the figure's shape (strict
// yearly growth on the left, the sector ordering on the right), which is
// what the reproduction must regenerate. The renderer produces the two
// panels as ASCII bar charts.
package gdprdata

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// YearlyPenalty is one bar of Fig. 1 (left).
type YearlyPenalty struct {
	Year int
	// MEuros is the total penalties that year, in millions of euros.
	MEuros float64
}

// SectorPenalty is one bar of Fig. 1 (right).
type SectorPenalty struct {
	Sector string
	MEuros float64
}

// Penalties returns the Fig. 1 (left) series: total GDPR penalties per
// year in millions of euros. 2018 was the ramp-up (≈0.4M across the EU);
// 2021 tops 1.2 billion as the paper highlights (driven by the Luxembourg
// and Irish decisions).
func Penalties() []YearlyPenalty {
	return []YearlyPenalty{
		{Year: 2018, MEuros: 0.4},
		{Year: 2019, MEuros: 72},
		{Year: 2020, MEuros: 171},
		{Year: 2021, MEuros: 1200},
	}
}

// CumulativePenalties integrates Penalties over time.
func CumulativePenalties() []YearlyPenalty {
	in := Penalties()
	out := make([]YearlyPenalty, len(in))
	total := 0.0
	for i, p := range in {
		total += p.MEuros
		out[i] = YearlyPenalty{Year: p.Year, MEuros: total}
	}
	return out
}

// Sectors returns the Fig. 1 (right) series: the five most sanctioned
// business sectors, in millions of euros, matching the figure's order
// (Markets, Medias, Transport, IT, Tourism).
func Sectors() []SectorPenalty {
	return []SectorPenalty{
		{Sector: "Markets", MEuros: 750},
		{Sector: "Medias", MEuros: 230},
		{Sector: "Transport", MEuros: 150},
		{Sector: "IT", MEuros: 90},
		{Sector: "Tourism", MEuros: 55},
	}
}

// CheckShape validates the figure-shape invariants the reproduction relies
// on: yearly totals strictly increase, 2021 tops 1.2 B€, and the sectors
// are in descending order with Markets first.
func CheckShape() error {
	years := Penalties()
	for i := 1; i < len(years); i++ {
		if years[i].MEuros <= years[i-1].MEuros {
			return fmt.Errorf("gdprdata: penalties not increasing at %d", years[i].Year)
		}
	}
	last := years[len(years)-1]
	if last.Year != 2021 || last.MEuros < 1200 {
		return fmt.Errorf("gdprdata: 2021 total %.0f M€ does not top 1.2 B€", last.MEuros)
	}
	sectors := Sectors()
	if sectors[0].Sector != "Markets" {
		return fmt.Errorf("gdprdata: top sector is %q, want Markets", sectors[0].Sector)
	}
	if !sort.SliceIsSorted(sectors, func(i, j int) bool { return sectors[i].MEuros > sectors[j].MEuros }) {
		return fmt.Errorf("gdprdata: sectors not in descending order")
	}
	return nil
}

// bar renders a value as a proportional bar of at most width runes.
func bar(value, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n < 1 && value > 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// RenderLeft writes the Fig. 1 (left) panel.
func RenderLeft(w io.Writer) error {
	data := Penalties()
	max := 0.0
	for _, p := range data {
		if p.MEuros > max {
			max = p.MEuros
		}
	}
	if _, err := fmt.Fprintln(w, "Fig.1 (left) — total GDPR penalties per year (M euros)"); err != nil {
		return err
	}
	for _, p := range data {
		if _, err := fmt.Fprintf(w, "  %d | %-50s %8.1f\n", p.Year, bar(p.MEuros, max, 50), p.MEuros); err != nil {
			return err
		}
	}
	return nil
}

// RenderRight writes the Fig. 1 (right) panel.
func RenderRight(w io.Writer) error {
	data := Sectors()
	max := 0.0
	for _, s := range data {
		if s.MEuros > max {
			max = s.MEuros
		}
	}
	if _, err := fmt.Fprintln(w, "Fig.1 (right) — top 5 most sanctioned business sectors (M euros)"); err != nil {
		return err
	}
	for _, s := range data {
		if _, err := fmt.Fprintf(w, "  %-10s | %-50s %8.1f\n", s.Sector, bar(s.MEuros, max, 50), s.MEuros); err != nil {
			return err
		}
	}
	return nil
}
