package lsm

import (
	"errors"
	"testing"
)

func obj() ObjectRef { return ObjectRef{Class: "dbfs", ID: "user/alice/1"} }

func TestMintedTokenPasses(t *testing.T) {
	g := NewGuard()
	tok := g.Mint("ded-1", CapDBFS)
	if err := g.Check(tok, CapDBFS, OpRead, obj()); err != nil {
		t.Fatalf("Check minted token: %v", err)
	}
	if tok.Holder() != "ded-1" {
		t.Fatalf("Holder = %q", tok.Holder())
	}
}

func TestNilTokenDenied(t *testing.T) {
	g := NewGuard()
	if err := g.Check(nil, CapDBFS, OpRead, obj()); !errors.Is(err, ErrNoToken) {
		t.Fatalf("nil token err = %v, want ErrNoToken", err)
	}
	if g.DenialCount() != 1 {
		t.Fatalf("DenialCount = %d, want 1", g.DenialCount())
	}
}

func TestForgedTokenDenied(t *testing.T) {
	// A component constructing its own token must be blocked: this is the
	// "direct access attempt from the outside" of §2.
	g := NewGuard()
	forged := &Token{holder: "attacker", caps: map[Capability]bool{CapDBFS: true}}
	if err := g.Check(forged, CapDBFS, OpRead, obj()); !errors.Is(err, ErrForgedToken) {
		t.Fatalf("forged token err = %v, want ErrForgedToken", err)
	}
}

func TestTokenFromAnotherGuardDenied(t *testing.T) {
	g1, g2 := NewGuard(), NewGuard()
	tok := g1.Mint("ded", CapDBFS)
	if err := g2.Check(tok, CapDBFS, OpRead, obj()); !errors.Is(err, ErrForgedToken) {
		t.Fatalf("cross-guard token err = %v, want ErrForgedToken", err)
	}
}

func TestMissingCapabilityDenied(t *testing.T) {
	g := NewGuard()
	tok := g.Mint("ps", CapProcessingStore)
	if err := g.Check(tok, CapDBFS, OpRead, obj()); !errors.Is(err, ErrMissingCapability) {
		t.Fatalf("missing cap err = %v, want ErrMissingCapability", err)
	}
}

func TestRevokedTokenDenied(t *testing.T) {
	g := NewGuard()
	tok := g.Mint("ded", CapDBFS)
	g.Revoke(tok)
	if err := g.Check(tok, CapDBFS, OpRead, obj()); !errors.Is(err, ErrForgedToken) {
		t.Fatalf("revoked token err = %v, want ErrForgedToken", err)
	}
}

func TestHookDeny(t *testing.T) {
	g := NewGuard()
	tok := g.Mint("ded", CapDBFS)
	g.RegisterHook(func(holder string, op Operation, o ObjectRef) Decision {
		if op == OpDelete {
			return DecisionDeny
		}
		return DecisionAbstain
	})
	if err := g.Check(tok, CapDBFS, OpRead, obj()); err != nil {
		t.Fatalf("hook abstain still denied: %v", err)
	}
	if err := g.Check(tok, CapDBFS, OpDelete, obj()); !errors.Is(err, ErrDeniedByHook) {
		t.Fatalf("hook deny err = %v, want ErrDeniedByHook", err)
	}
}

func TestOneDenyWins(t *testing.T) {
	g := NewGuard()
	tok := g.Mint("ded", CapDBFS)
	g.RegisterHook(func(string, Operation, ObjectRef) Decision { return DecisionAllow })
	g.RegisterHook(func(string, Operation, ObjectRef) Decision { return DecisionDeny })
	if err := g.Check(tok, CapDBFS, OpRead, obj()); !errors.Is(err, ErrDeniedByHook) {
		t.Fatalf("allow+deny err = %v, want ErrDeniedByHook", err)
	}
}

func TestDenialRecords(t *testing.T) {
	g := NewGuard()
	_ = g.Check(nil, CapDBFS, OpScan, ObjectRef{Class: "dbfs", ID: "user"})
	forged := &Token{holder: "mallory"}
	_ = g.Check(forged, CapDBFS, OpWrite, obj())
	ds := g.Denials()
	if len(ds) != 2 {
		t.Fatalf("Denials = %d, want 2", len(ds))
	}
	if ds[0].Reason != "no-token" || ds[1].Reason != "forged" || ds[1].Holder != "mallory" {
		t.Fatalf("denials = %+v", ds)
	}
}

func TestCapabilityAndOperationStrings(t *testing.T) {
	if CapDBFS.String() != "dbfs" || CapProcessingStore.String() != "processing-store" || CapMintDED.String() != "mint-ded" {
		t.Fatal("capability names wrong")
	}
	names := map[Operation]string{
		OpRead: "read", OpWrite: "write", OpCreate: "create",
		OpDelete: "delete", OpScan: "scan", OpExport: "export",
	}
	for op, want := range names {
		if op.String() != want {
			t.Fatalf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}
