// Package lsm simulates the Linux Security Module mediation layer the
// paper's prototype relies on (§3: "we rely on the Linux Security Module
// (LSM) framework... SELinux and Smack can do the job").
//
// Its job in rgpdOS is to make DBFS invisible from the outside: "DBFS can
// only be accessed through the components of rgpdOS... every direct access
// attempt from the outside is blocked" (§2). The reproduction models this
// with unforgeable capability tokens: the kernel mints a token for the DED
// (and one for the PS), and every DBFS entry point demands a minted token
// carrying the right capability. Tokens are compared by identity against
// the guard's mint registry, so constructing a look-alike token does not
// grant access — the same property a kernel gets from holding object
// references in kernel memory.
//
// Additional policy hooks can be registered, mirroring LSM's stacked hooks:
// each hook may allow, deny, or abstain; one deny wins.
package lsm

import (
	"errors"
	"fmt"
	"sync"
)

// Capability is a right a token can carry.
type Capability int

// Capabilities.
const (
	// CapDBFS allows direct DBFS access (held only by the DED,
	// enforcement rule 4).
	CapDBFS Capability = iota + 1
	// CapProcessingStore allows access to stored processings (held only
	// by the PS, enforcement rule 1).
	CapProcessingStore
	// CapMintDED allows instantiating DEDs (held by the PS, which is the
	// only invocation entry point, enforcement rule 2).
	CapMintDED
)

// String names the capability.
func (c Capability) String() string {
	switch c {
	case CapDBFS:
		return "dbfs"
	case CapProcessingStore:
		return "processing-store"
	case CapMintDED:
		return "mint-ded"
	default:
		return fmt.Sprintf("capability(%d)", int(c))
	}
}

// Operation classifies a mediated access.
type Operation int

// Operations checked by hooks.
const (
	OpRead Operation = iota + 1
	OpWrite
	OpCreate
	OpDelete
	OpScan
	OpExport
)

// String names the operation.
func (o Operation) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCreate:
		return "create"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpExport:
		return "export"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// ObjectRef identifies the object of a mediated access.
type ObjectRef struct {
	// Class is a coarse object class such as "dbfs", "membrane",
	// "processing".
	Class string
	// ID is the object identifier (pdid, table name, processing name...).
	ID string
}

// Decision is a hook verdict.
type Decision int

// Hook decisions.
const (
	// DecisionAbstain defers to other hooks.
	DecisionAbstain Decision = iota + 1
	// DecisionAllow votes to allow (but any deny wins).
	DecisionAllow
	// DecisionDeny blocks the access.
	DecisionDeny
)

// Hook is a stacked policy callback, LSM-style.
type Hook func(holder string, op Operation, obj ObjectRef) Decision

// Sentinel errors.
var (
	// ErrNoToken reports a mediated call without a token.
	ErrNoToken = errors.New("lsm: access without capability token")
	// ErrForgedToken reports a token the guard never minted (or revoked).
	ErrForgedToken = errors.New("lsm: token not minted by this guard")
	// ErrMissingCapability reports a minted token lacking the capability.
	ErrMissingCapability = errors.New("lsm: token lacks capability")
	// ErrDeniedByHook reports a policy hook denial.
	ErrDeniedByHook = errors.New("lsm: denied by policy hook")
)

// Token is an unforgeable capability handle. Its fields are unexported;
// validity is established solely by the guard that minted it.
type Token struct {
	holder string
	caps   map[Capability]bool
}

// Holder names the component the token was minted for.
func (t *Token) Holder() string {
	if t == nil {
		return ""
	}
	return t.holder
}

// DenialRecord describes one blocked access, for the audit trail.
type DenialRecord struct {
	Holder string
	Op     Operation
	Obj    ObjectRef
	Reason string
}

// Guard is the mediation authority. The machine kernel creates one guard and
// every protected component checks tokens against it.
type Guard struct {
	mu      sync.Mutex
	minted  map[*Token]bool
	hooks   []Hook
	denials []DenialRecord
}

// NewGuard returns an empty guard.
func NewGuard() *Guard {
	return &Guard{minted: make(map[*Token]bool)}
}

// Mint creates a token for holder carrying caps. Only boot-time wiring
// (the kernel) should call this.
func (g *Guard) Mint(holder string, caps ...Capability) *Token {
	t := &Token{holder: holder, caps: make(map[Capability]bool, len(caps))}
	for _, c := range caps {
		t.caps[c] = true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.minted[t] = true
	return t
}

// Revoke invalidates a token.
func (g *Guard) Revoke(t *Token) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.minted, t)
}

// RegisterHook stacks an additional policy hook.
func (g *Guard) RegisterHook(h Hook) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.hooks = append(g.hooks, h)
}

// Check mediates an access: the token must be minted by this guard and
// carry cap, and no stacked hook may deny. On failure the denial is recorded
// and a sentinel error returned.
func (g *Guard) Check(t *Token, cap Capability, op Operation, obj ObjectRef) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	deny := func(holder, reason string) error {
		g.denials = append(g.denials, DenialRecord{Holder: holder, Op: op, Obj: obj, Reason: reason})
		switch reason {
		case "no-token":
			return fmt.Errorf("%w: %s on %s/%s", ErrNoToken, op, obj.Class, obj.ID)
		case "forged":
			return fmt.Errorf("%w: holder %q, %s on %s/%s", ErrForgedToken, holder, op, obj.Class, obj.ID)
		case "missing-capability":
			return fmt.Errorf("%w: holder %q needs %v for %s on %s/%s",
				ErrMissingCapability, holder, cap, op, obj.Class, obj.ID)
		default:
			return fmt.Errorf("%w: holder %q, %s on %s/%s", ErrDeniedByHook, holder, op, obj.Class, obj.ID)
		}
	}
	if t == nil {
		return deny("", "no-token")
	}
	if !g.minted[t] {
		return deny(t.holder, "forged")
	}
	if !t.caps[cap] {
		return deny(t.holder, "missing-capability")
	}
	for _, h := range g.hooks {
		if h(t.holder, op, obj) == DecisionDeny {
			return deny(t.holder, "hook")
		}
	}
	return nil
}

// Denials returns a copy of the recorded denials.
func (g *Guard) Denials() []DenialRecord {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]DenialRecord, len(g.denials))
	copy(out, g.denials)
	return out
}

// DenialCount reports how many accesses were blocked.
func (g *Guard) DenialCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.denials)
}
