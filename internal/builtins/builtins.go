// Package builtins provides the F_pd^w functions that rgpdOS supplies
// natively (§2): update, delete (erasure), copy, and acquisition, plus the
// consent and restriction mutators the rights engine drives. "F_pd^w
// functions are natively provided by rgpdOS (they are built-in) ... built-in
// functions ensure that every PD is correctly wrapped, that is it always
// includes a membrane."
//
// Each builtin is an ordinary Processing Store registration — a purpose
// declaration (legal-obligation basis: these operations execute data-subject
// rights and retention duties, not operator interests) paired with a WriteFn
// executed inside the DED. Builtins therefore enjoy no special path around
// the enforcement architecture; they differ from operator processings only
// in being pre-registered and invocable in maintenance mode.
package builtins

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/collect"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/membrane"
	"repro/internal/ps"
	"repro/internal/purpose"
)

// Reserved names of the built-in processings.
const (
	UpdateName   = "__builtin_update"
	EraseName    = "__builtin_erase"
	DeleteName   = "__builtin_delete"
	CopyName     = "__builtin_copy"
	ConsentName  = "__builtin_consent"
	RestrictName = "__builtin_restrict"
	AcquireName  = "__builtin_acquire"
)

// Param keys understood by the builtins.
const (
	// ParamFields carries a dbfs.Record of replacement values (update).
	ParamFields = "fields"
	// ParamPurpose names the purpose whose consent is being changed.
	ParamPurpose = "purpose"
	// ParamGrant carries a membrane.Grant (consent). Absent means
	// withdraw.
	ParamGrant = "grant"
	// ParamRestricted carries the bool for the restriction builtin.
	ParamRestricted = "restricted"
)

// ErrBadParams reports missing or mistyped builtin parameters.
var ErrBadParams = errors.New("builtins: bad parameters")

// Register installs every builtin into the Processing Store.
func Register(store *ps.Store) error {
	for _, b := range []struct {
		decl *purpose.Decl
		impl *ded.Func
	}{
		{updateDecl(), updateImpl()},
		{eraseDecl(), eraseImpl()},
		{deleteDecl(), deleteImpl()},
		{copyDecl(), copyImpl()},
		{consentDecl(), consentImpl()},
		{restrictDecl(), restrictImpl()},
	} {
		if err := store.Register(b.decl, b.impl, true); err != nil {
			return fmt.Errorf("builtins: register %s: %w", b.decl.Name, err)
		}
	}
	return nil
}

func updateDecl() *purpose.Decl {
	return &purpose.Decl{
		Name:        UpdateName,
		Description: "Rectify stored personal data at the subject's or operator's request (GDPR Art. 16)",
		Basis:       purpose.BasisLegalObligation,
	}
}

func updateImpl() *ded.Func {
	return &ded.Func{
		Name:    "update",
		Purpose: UpdateName,
		WriteFn: func(w *ded.WriteCtx) error {
			raw, ok := w.Params()[ParamFields]
			if !ok {
				return fmt.Errorf("%w: update needs %q", ErrBadParams, ParamFields)
			}
			fields, ok := raw.(dbfs.Record)
			if !ok {
				return fmt.Errorf("%w: %q must be a dbfs.Record", ErrBadParams, ParamFields)
			}
			rec, err := w.Record()
			if err != nil {
				return err
			}
			for k, v := range fields {
				rec[k] = v
			}
			return w.Update(rec)
		},
	}
}

func eraseDecl() *purpose.Decl {
	return &purpose.Decl{
		Name:        EraseName,
		Description: "Erase personal data with escrow to the authorities (GDPR Art. 17, right to be forgotten)",
		Basis:       purpose.BasisLegalObligation,
	}
}

func eraseImpl() *ded.Func {
	return &ded.Func{
		Name:    "erase",
		Purpose: EraseName,
		WriteFn: func(w *ded.WriteCtx) error {
			_, err := w.Erase()
			return err
		},
	}
}

func deleteDecl() *purpose.Decl {
	return &purpose.Decl{
		Name:        DeleteName,
		Description: "Physically remove personal data whose retention period elapsed (storage limitation)",
		Basis:       purpose.BasisLegalObligation,
	}
}

func deleteImpl() *ded.Func {
	return &ded.Func{
		Name:    "delete",
		Purpose: DeleteName,
		WriteFn: func(w *ded.WriteCtx) error {
			return w.Delete()
		},
	}
}

func copyDecl() *purpose.Decl {
	return &purpose.Decl{
		Name:        CopyName,
		Description: "Copy personal data with membrane consistency across all copies",
		Basis:       purpose.BasisLegalObligation,
	}
}

func copyImpl() *ded.Func {
	return &ded.Func{
		Name:    "copy",
		Purpose: CopyName,
		WriteFn: func(w *ded.WriteCtx) error {
			_, err := w.Copy()
			return err
		},
	}
}

func consentDecl() *purpose.Decl {
	return &purpose.Decl{
		Name:        ConsentName,
		Description: "Record or withdraw a subject's consent decision (GDPR Art. 7)",
		Basis:       purpose.BasisLegalObligation,
	}
}

func consentImpl() *ded.Func {
	return &ded.Func{
		Name:    "consent",
		Purpose: ConsentName,
		WriteFn: func(w *ded.WriteCtx) error {
			pRaw, ok := w.Params()[ParamPurpose]
			if !ok {
				return fmt.Errorf("%w: consent needs %q", ErrBadParams, ParamPurpose)
			}
			purposeName, ok := pRaw.(string)
			if !ok || purposeName == "" {
				return fmt.Errorf("%w: %q must be a non-empty string", ErrBadParams, ParamPurpose)
			}
			gRaw, ok := w.Params()[ParamGrant]
			if !ok {
				return w.WithdrawConsent(purposeName)
			}
			grant, ok := gRaw.(membrane.Grant)
			if !ok {
				return fmt.Errorf("%w: %q must be a membrane.Grant", ErrBadParams, ParamGrant)
			}
			return w.SetConsent(purposeName, grant)
		},
	}
}

func restrictDecl() *purpose.Decl {
	return &purpose.Decl{
		Name:        RestrictName,
		Description: "Toggle the restriction-of-processing mark (GDPR Art. 18)",
		Basis:       purpose.BasisLegalObligation,
	}
}

func restrictImpl() *ded.Func {
	return &ded.Func{
		Name:    "restrict",
		Purpose: RestrictName,
		WriteFn: func(w *ded.WriteCtx) error {
			raw, ok := w.Params()[ParamRestricted]
			if !ok {
				return fmt.Errorf("%w: restrict needs %q", ErrBadParams, ParamRestricted)
			}
			restricted, ok := raw.(bool)
			if !ok {
				return fmt.Errorf("%w: %q must be a bool", ErrBadParams, ParamRestricted)
			}
			return w.SetRestricted(restricted)
		},
	}
}

// Acquirer is the acquisition builtin: it pulls subject data from the
// registered collection interface and inserts it into DBFS with a complete
// membrane — provenance from the source, consents/TTL/sensitivity from the
// type's declaration. "rgpdOS requests the needed metadata to fill the
// membrane with at data collection time... each entry in DBFS is always
// correctly wrapped with its membrane" (§2).
//
// It runs inside the DED trust domain (it holds no token of its own; it
// borrows the DED's), and it is the AcquireFunc the Processing Store calls
// for ps_invoke's InitCollect flag.
type Acquirer struct {
	d   *ded.DED
	reg *collect.Registry
	log *audit.Log
}

// NewAcquirer wires the acquisition builtin.
func NewAcquirer(d *ded.DED, reg *collect.Registry, log *audit.Log) *Acquirer {
	return &Acquirer{d: d, reg: reg, log: log}
}

// Acquire collects data for the given subjects of typeName through method
// and stores each record with its membrane. It returns how many records
// entered DBFS; subjects with no pending data are skipped, not fatal.
func (a *Acquirer) Acquire(typeName, method string, subjects []string) (int, error) {
	src, err := a.reg.Lookup(typeName, method)
	if err != nil {
		return 0, err
	}
	store, tok := a.d.Store(), a.d.Token()
	sch, err := store.SchemaOf(tok, typeName)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, subject := range subjects {
		rec, origin, err := src.Collect(subject)
		if errors.Is(err, collect.ErrNoData) {
			continue
		}
		if err != nil {
			return n, fmt.Errorf("builtins: acquire %s/%s: %w", typeName, subject, err)
		}
		// CreatedAt is left zero; Insert stamps it with the kernel clock.
		m := sch.DefaultMembrane("pending", subject, time.Time{})
		m.Origin = origin
		pdid, err := store.Insert(tok, typeName, subject, rec, m)
		if err != nil {
			return n, fmt.Errorf("builtins: acquire insert %s/%s: %w", typeName, subject, err)
		}
		a.log.Append(audit.KindCollection, AcquireName, pdid, subject, "ok",
			"method="+method+" ref="+src.Ref()+" origin="+origin.String())
		n++
	}
	return n, nil
}
