package builtins

import (
	"errors"
	"testing"

	"repro/internal/audit"
	"repro/internal/blockdev"
	"repro/internal/collect"
	"repro/internal/cryptoshred"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/inode"
	"repro/internal/lsm"
	"repro/internal/membrane"
	"repro/internal/ps"
	"repro/internal/simclock"
)

type rig struct {
	store *dbfs.Store
	log   *audit.Log
	d     *ded.DED
	ps    *ps.Store
	tok   *lsm.Token
	reg   *collect.Registry
	acq   *Acquirer
}

func newRig(t *testing.T) *rig {
	t.Helper()
	dev := blockdev.MustMem(4096)
	clock := simclock.NewSim(simclock.Epoch)
	fs, err := inode.Format(dev, inode.Options{NInodes: 2048, JournalBlocks: 128, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	auth, err := cryptoshred.NewAuthority(1024)
	if err != nil {
		t.Fatal(err)
	}
	guard := lsm.NewGuard()
	store, err := dbfs.Create([]*inode.FS{fs}, guard, cryptoshred.NewVault(auth.PublicKey()), clock)
	if err != nil {
		t.Fatal(err)
	}
	tok := guard.Mint("ded", lsm.CapDBFS)
	log := audit.NewLog(clock)
	d := ded.New(store, tok, log, membrane.NewLedger(), clock)
	reg := collect.NewRegistry()
	p := ps.New(d, log, nil)
	if err := Register(p); err != nil {
		t.Fatalf("Register builtins: %v", err)
	}
	return &rig{store: store, log: log, d: d, ps: p, tok: tok, reg: reg,
		acq: NewAcquirer(d, reg, log)}
}

func (r *rig) declareUser(t *testing.T) {
	t.Helper()
	sch := &dbfs.Schema{
		Name: "user",
		Fields: []dbfs.Field{
			{Name: "name", Type: dbfs.TypeString},
			{Name: "year_of_birthdate", Type: dbfs.TypeInt},
		},
		DefaultConsent: map[string]membrane.Grant{"p": {Kind: membrane.GrantAll}},
		Collection:     map[string]string{"web_form": "user_form.html"},
	}
	if err := r.store.CreateType(r.tok, sch); err != nil {
		t.Fatal(err)
	}
}

func TestAllBuiltinsRegistered(t *testing.T) {
	r := newRig(t)
	names := r.ps.List()
	want := []string{ConsentName, CopyName, DeleteName, EraseName, RestrictName, UpdateName}
	if len(names) != len(want) {
		t.Fatalf("List = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("List[%d] = %s, want %s", i, names[i], n)
		}
		info, err := r.ps.Get(n)
		if err != nil || !info.Builtin || info.State != ps.StateActive {
			t.Fatalf("builtin %s info = %+v, %v", n, info, err)
		}
	}
}

func TestAcquirerWrapsMembraneWithProvenance(t *testing.T) {
	r := newRig(t)
	r.declareUser(t)
	form := collect.NewWebFormSource("user_form.html")
	r.reg.Register("user", form)
	tp := collect.NewThirdPartySource("fetch_data.py", func(subject string) (dbfs.Record, error) {
		return dbfs.Record{"name": dbfs.S("partner-" + subject), "year_of_birthdate": dbfs.I(1970)}, nil
	})
	r.reg.Register("user", tp)

	form.Submit("alice", dbfs.Record{"name": dbfs.S("Alice"), "year_of_birthdate": dbfs.I(1990)})
	n, err := r.acq.Acquire("user", "web_form", []string{"alice", "ghost"})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if n != 1 { // ghost had no pending submission: skipped, not fatal
		t.Fatalf("Acquire n = %d", n)
	}
	m, err := r.store.GetMembrane(r.tok, "user/alice/1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Origin != membrane.OriginSubject {
		t.Fatalf("web form origin = %v", m.Origin)
	}
	if m.CreatedAt.IsZero() {
		t.Fatal("CreatedAt not stamped")
	}
	if g := m.Consents["p"]; g.Kind != membrane.GrantAll {
		t.Fatalf("default consent missing: %+v", m.Consents)
	}

	// Third-party provenance is recorded differently.
	if _, err := r.acq.Acquire("user", "third_party", []string{"bob"}); err != nil {
		t.Fatal(err)
	}
	m2, err := r.store.GetMembrane(r.tok, "user/bob/2")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Origin != membrane.OriginThirdParty {
		t.Fatalf("third-party origin = %v", m2.Origin)
	}
	// Collection is in the audit trail.
	if got := r.log.CountByKind()[audit.KindCollection]; got != 2 {
		t.Fatalf("collection audit entries = %d", got)
	}
}

func TestAcquirerErrors(t *testing.T) {
	r := newRig(t)
	r.declareUser(t)
	if _, err := r.acq.Acquire("user", "carrier_pigeon", []string{"a"}); !errors.Is(err, collect.ErrNoSource) {
		t.Fatalf("unknown method err = %v", err)
	}
	form := collect.NewWebFormSource("user_form.html")
	r.reg.Register("ghost-type", form)
	if _, err := r.acq.Acquire("ghost-type", "web_form", []string{"a"}); !errors.Is(err, dbfs.ErrNoType) {
		t.Fatalf("unknown type err = %v", err)
	}
}

func TestUpdateBuiltinThroughPS(t *testing.T) {
	r := newRig(t)
	r.declareUser(t)
	pdid, err := r.store.Insert(r.tok, "user", "alice",
		dbfs.Record{"name": dbfs.S("Alice"), "year_of_birthdate": dbfs.I(1990)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ps.Invoke(ps.InvokeRequest{
		Processing: UpdateName, PDRef: pdid, Maintenance: true,
		Params: map[string]any{ParamFields: dbfs.Record{"year_of_birthdate": dbfs.I(1991)}},
	}); err != nil {
		t.Fatal(err)
	}
	rec, err := r.store.GetRecord(r.tok, pdid)
	if err != nil || rec["year_of_birthdate"].I != 1991 || rec["name"].S != "Alice" {
		t.Fatalf("rec = %v, %v", rec, err)
	}
	// Wrong param type is rejected.
	if _, err := r.ps.Invoke(ps.InvokeRequest{
		Processing: UpdateName, PDRef: pdid, Maintenance: true,
		Params: map[string]any{ParamFields: "not-a-record"},
	}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("bad fields err = %v", err)
	}
}

func TestConsentBuiltinGrantAndWithdraw(t *testing.T) {
	r := newRig(t)
	r.declareUser(t)
	pdid, err := r.store.Insert(r.tok, "user", "a",
		dbfs.Record{"name": dbfs.S("A"), "year_of_birthdate": dbfs.I(1980)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Grant.
	if _, err := r.ps.Invoke(ps.InvokeRequest{
		Processing: ConsentName, PDRef: pdid, Maintenance: true,
		Params: map[string]any{ParamPurpose: "newsletter", ParamGrant: membrane.Grant{Kind: membrane.GrantAll}},
	}); err != nil {
		t.Fatal(err)
	}
	m, _ := r.store.GetMembrane(r.tok, pdid)
	if m.Consents["newsletter"].Kind != membrane.GrantAll {
		t.Fatalf("consents = %+v", m.Consents)
	}
	// Withdraw (no grant param).
	if _, err := r.ps.Invoke(ps.InvokeRequest{
		Processing: ConsentName, PDRef: pdid, Maintenance: true,
		Params: map[string]any{ParamPurpose: "newsletter"},
	}); err != nil {
		t.Fatal(err)
	}
	m, _ = r.store.GetMembrane(r.tok, pdid)
	if m.Consents["newsletter"].Kind != membrane.GrantNone {
		t.Fatalf("consents after withdraw = %+v", m.Consents)
	}
	// Version advanced with each change (2 mutations + insert baseline).
	if m.Version < 2 {
		t.Fatalf("version = %d", m.Version)
	}
}

func TestDeleteBuiltinRemoves(t *testing.T) {
	r := newRig(t)
	r.declareUser(t)
	pdid, err := r.store.Insert(r.tok, "user", "a",
		dbfs.Record{"name": dbfs.S("A"), "year_of_birthdate": dbfs.I(1980)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ps.Invoke(ps.InvokeRequest{Processing: DeleteName, PDRef: pdid, Maintenance: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.store.GetRecord(r.tok, pdid); !errors.Is(err, dbfs.ErrNoRecord) {
		t.Fatalf("record survives delete: %v", err)
	}
}
