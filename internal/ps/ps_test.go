package ps

import (
	"errors"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/blockdev"
	"repro/internal/cryptoshred"
	"repro/internal/dbfs"
	"repro/internal/ded"
	"repro/internal/inode"
	"repro/internal/lsm"
	"repro/internal/membrane"
	"repro/internal/purpose"
	"repro/internal/simclock"
)

type env struct {
	store *dbfs.Store
	log   *audit.Log
	clock *simclock.Sim
	ps    *Store
	tok   *lsm.Token
}

func newEnv(t *testing.T, acquire AcquireFunc) *env {
	t.Helper()
	dev := blockdev.MustMem(4096)
	clock := simclock.NewSim(simclock.Epoch)
	fs, err := inode.Format(dev, inode.Options{NInodes: 2048, JournalBlocks: 128, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	auth, err := cryptoshred.NewAuthority(1024)
	if err != nil {
		t.Fatal(err)
	}
	guard := lsm.NewGuard()
	vault := cryptoshred.NewVault(auth.PublicKey())
	store, err := dbfs.Create([]*inode.FS{fs}, guard, vault, clock)
	if err != nil {
		t.Fatal(err)
	}
	tok := guard.Mint("ded", lsm.CapDBFS)
	log := audit.NewLog(clock)
	d := ded.New(store, tok, log, membrane.NewLedger(), clock)
	return &env{store: store, log: log, clock: clock, ps: New(d, log, acquire), tok: tok}
}

func userSchema() *dbfs.Schema {
	return &dbfs.Schema{
		Name: "user",
		Fields: []dbfs.Field{
			{Name: "name", Type: dbfs.TypeString},
			{Name: "year_of_birthdate", Type: dbfs.TypeInt},
		},
		Views: []dbfs.View{{Name: "v_ano", Fields: []string{"year_of_birthdate"}}},
		DefaultConsent: map[string]membrane.Grant{
			"purpose3": {Kind: membrane.GrantView, View: "v_ano"},
		},
		DefaultTTL: 365 * 24 * time.Hour,
	}
}

func (e *env) seed(t *testing.T) string {
	t.Helper()
	if err := e.store.CreateType(e.tok, userSchema()); err != nil {
		t.Fatal(err)
	}
	pdid, err := e.store.Insert(e.tok, "user", "alice", dbfs.Record{
		"name": dbfs.S("Alice"), "year_of_birthdate": dbfs.I(1990),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pdid
}

func decl3() *purpose.Decl {
	return &purpose.Decl{
		Name:        "purpose3",
		Description: "Compute the age of the input user",
		Basis:       purpose.BasisConsent,
		Reads:       []string{"user.year_of_birthdate"},
	}
}

func ageImpl() *ded.Func {
	return &ded.Func{
		Name:          "compute_age",
		Purpose:       "purpose3",
		DeclaredReads: []string{"user.year_of_birthdate"},
		Fn: func(c *ded.Ctx) (ded.Output, error) {
			yob, err := c.Field("year_of_birthdate")
			if err != nil {
				return ded.Output{}, err
			}
			return ded.Output{NonPD: 2023 - yob.I}, nil
		},
	}
}

func TestRegisterAndInvoke(t *testing.T) {
	e := newEnv(t, nil)
	e.seed(t)
	if err := e.ps.Register(decl3(), ageImpl(), false); err != nil {
		t.Fatalf("Register: %v", err)
	}
	res, err := e.ps.Invoke(InvokeRequest{Processing: "purpose3", TypeName: "user"})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res.Processed != 1 || res.Outputs[0].(int64) != 33 {
		t.Fatalf("result = %+v", res)
	}
	if e.ps.Invocations() != 1 {
		t.Fatalf("Invocations = %d", e.ps.Invocations())
	}
}

func TestRegisterRejectsNoPurpose(t *testing.T) {
	// "if the function has no specified purpose, it is rejected"
	e := newEnv(t, nil)
	if err := e.ps.Register(nil, ageImpl(), false); !errors.Is(err, ErrNoPurpose) {
		t.Fatalf("nil decl err = %v", err)
	}
	bad := &purpose.Decl{Name: "p"} // no description/basis
	if err := e.ps.Register(bad, ageImpl(), false); !errors.Is(err, ErrNoPurpose) {
		t.Fatalf("invalid decl err = %v", err)
	}
	impl := ageImpl()
	impl.Purpose = ""
	d := decl3()
	if err := e.ps.Register(d, impl, false); !errors.Is(err, ErrNoPurpose) {
		t.Fatalf("unclaimed impl err = %v", err)
	}
	impl2 := ageImpl()
	impl2.Purpose = "other"
	if err := e.ps.Register(decl3(), impl2, false); !errors.Is(err, ErrPurposeMismatch) {
		t.Fatalf("name mismatch err = %v", err)
	}
}

func TestRegisterMismatchRaisesAlert(t *testing.T) {
	// "if the specified purpose does not match with the corresponding
	// implementation, PS raises an alert that requires an explicit
	// sysadmin approval"
	e := newEnv(t, nil)
	e.seed(t)
	greedy := ageImpl()
	greedy.DeclaredReads = []string{"user.year_of_birthdate", "user.name"} // beyond the purpose
	err := e.ps.Register(decl3(), greedy, false)
	if !errors.Is(err, ErrPendingApproval) {
		t.Fatalf("Register err = %v, want ErrPendingApproval", err)
	}
	// Not invocable while pending.
	if _, err := e.ps.Invoke(InvokeRequest{Processing: "purpose3", TypeName: "user"}); !errors.Is(err, ErrNotActive) {
		t.Fatalf("pending Invoke err = %v", err)
	}
	alerts := e.ps.PendingAlerts()
	if len(alerts) != 1 || alerts[0].Phase != "register" || alerts[0].Report.Undeclared[0] != "user.name" {
		t.Fatalf("alerts = %+v", alerts)
	}
	// Sysadmin approves: processing becomes active.
	if err := e.ps.Approve(alerts[0].ID, "root"); err != nil {
		t.Fatalf("Approve: %v", err)
	}
	if _, err := e.ps.Invoke(InvokeRequest{Processing: "purpose3", TypeName: "user"}); err != nil {
		t.Fatalf("post-approval Invoke: %v", err)
	}
	if len(e.ps.PendingAlerts()) != 0 {
		t.Fatal("alert not resolved")
	}
}

func TestRejectAlert(t *testing.T) {
	e := newEnv(t, nil)
	e.seed(t)
	greedy := ageImpl()
	greedy.DeclaredReads = []string{"user.name"}
	_ = e.ps.Register(decl3(), greedy, false)
	alerts := e.ps.PendingAlerts()
	if err := e.ps.Reject(alerts[0].ID, "root"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ps.Invoke(InvokeRequest{Processing: "purpose3", TypeName: "user"}); !errors.Is(err, ErrNotActive) {
		t.Fatalf("rejected Invoke err = %v", err)
	}
	info, err := e.ps.Get("purpose3")
	if err != nil || info.State != StateRejected {
		t.Fatalf("info = %+v, %v", info, err)
	}
	// Resolving twice fails.
	if err := e.ps.Approve(alerts[0].ID, "root"); !errors.Is(err, ErrNoAlert) {
		t.Fatalf("double resolve err = %v", err)
	}
	if err := e.ps.Approve(999, "root"); !errors.Is(err, ErrNoAlert) {
		t.Fatalf("unknown alert err = %v", err)
	}
}

func TestDynamicAlert(t *testing.T) {
	// An implementation that *declares* compliant reads but *performs*
	// broader ones is caught after the run by the dynamic check.
	e := newEnv(t, nil)
	e.seed(t)
	sneaky := &ded.Func{
		Name:          "sneaky",
		Purpose:       "purpose3",
		DeclaredReads: []string{"user.year_of_birthdate"},
		Fn: func(c *ded.Ctx) (ded.Output, error) {
			_ = c.Has("name") // probe outside the declaration (and the view)
			yob, err := c.Field("year_of_birthdate")
			if err != nil {
				return ded.Output{}, err
			}
			return ded.Output{NonPD: yob.I}, nil
		},
	}
	if err := e.ps.Register(decl3(), sneaky, false); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := e.ps.Invoke(InvokeRequest{Processing: "purpose3", TypeName: "user"}); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	alerts := e.ps.Alerts()
	if len(alerts) != 1 || alerts[0].Phase != "dynamic" {
		t.Fatalf("alerts = %+v", alerts)
	}
	if alerts[0].Report.Undeclared[0] != "user.name" {
		t.Fatalf("report = %+v", alerts[0].Report)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	e := newEnv(t, nil)
	if err := e.ps.Register(decl3(), ageImpl(), false); err != nil {
		t.Fatal(err)
	}
	if err := e.ps.Register(decl3(), ageImpl(), false); !errors.Is(err, ErrAlreadyRegistered) {
		t.Fatalf("dup Register err = %v", err)
	}
}

func TestInvokeUnknown(t *testing.T) {
	e := newEnv(t, nil)
	if _, err := e.ps.Invoke(InvokeRequest{Processing: "ghost"}); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("unknown Invoke err = %v", err)
	}
}

func TestMaintenanceReservedForBuiltins(t *testing.T) {
	e := newEnv(t, nil)
	e.seed(t)
	if err := e.ps.Register(decl3(), ageImpl(), false); err != nil {
		t.Fatal(err)
	}
	_, err := e.ps.Invoke(InvokeRequest{Processing: "purpose3", TypeName: "user", Maintenance: true})
	if !errors.Is(err, ErrMaintenanceReserved) {
		t.Fatalf("maintenance err = %v", err)
	}
}

func TestInitCollect(t *testing.T) {
	e := newEnv(t, nil)
	e.seed(t)
	// Without a collector wired, InitCollect fails.
	if err := e.ps.Register(decl3(), ageImpl(), false); err != nil {
		t.Fatal(err)
	}
	_, err := e.ps.Invoke(InvokeRequest{Processing: "purpose3", TypeName: "user",
		InitCollect: true, CollectMethod: "web_form"})
	if !errors.Is(err, ErrNoCollector) {
		t.Fatalf("no collector err = %v", err)
	}

	// With a collector: acquisition runs before processing. The closure
	// captures e2 by reference, so it can insert through the env even
	// though it is wired at construction time.
	collected := 0
	var e2 *env
	e2 = newEnv(t, func(typeName, method string, subjects []string) (int, error) {
		collected = len(subjects)
		for _, s := range subjects {
			if _, err := e2.store.Insert(e2.tok, typeName, s, dbfs.Record{
				"name": dbfs.S("Collected " + s), "year_of_birthdate": dbfs.I(1980),
			}, nil); err != nil {
				return 0, err
			}
		}
		return len(subjects), nil
	})
	_ = e2.seed(t)
	if err := e2.ps.Register(decl3(), ageImpl(), false); err != nil {
		t.Fatal(err)
	}
	res, err := e2.ps.Invoke(InvokeRequest{Processing: "purpose3", TypeName: "user",
		InitCollect: true, CollectMethod: "web_form", CollectSubjects: []string{"bob"}})
	if err != nil {
		t.Fatalf("Invoke with collect: %v", err)
	}
	if collected != 1 {
		t.Fatalf("collector saw %d subjects", collected)
	}
	if res.Processed != 2 { // alice (seed) + bob (collected)
		t.Fatalf("Processed = %d, want 2", res.Processed)
	}
}

func TestGetNeverExposesImpl(t *testing.T) {
	e := newEnv(t, nil)
	if err := e.ps.Register(decl3(), ageImpl(), true); err != nil {
		t.Fatal(err)
	}
	info, err := e.ps.Get("purpose3")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "purpose3" || !info.Builtin || info.State != StateActive {
		t.Fatalf("info = %+v", info)
	}
	// Mutating the returned reads must not affect the store.
	info.Reads[0] = "tampered"
	info2, _ := e.ps.Get("purpose3")
	if info2.Reads[0] != "user.year_of_birthdate" {
		t.Fatal("Get exposed internal slice")
	}
	if _, err := e.ps.Get("ghost"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("Get ghost err = %v", err)
	}
	names := e.ps.List()
	if len(names) != 1 || names[0] != "purpose3" {
		t.Fatalf("List = %v", names)
	}
}

func TestStateStrings(t *testing.T) {
	if StateActive.String() != "active" || StatePending.String() != "pending-approval" ||
		StateRejected.String() != "rejected" {
		t.Fatal("state names wrong")
	}
}
