// Package ps implements the Processing Store, the second component of
// rgpdOS and its only entry point (§2): "Its public interface consists of
// two functions: ps_register and ps_invoke."
//
// Register enforces the paper's checks: a function with no specified
// purpose is rejected outright; a function whose declared accesses do not
// match its purpose raises an alert that requires explicit sysadmin
// approval before the processing becomes invocable. Invoke is the only way
// to run a processing: it instantiates a DED (enforcement rules 1 and 2 —
// the PS alone holds stored processings and alone mints invocations), and
// after the run it re-checks the purpose against the *observed* field
// accesses, raising a dynamic alert on divergence (the runtime half of the
// §3(4) purpose-matching problem).
package ps

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/audit"
	"repro/internal/ded"
	"repro/internal/purpose"
)

// State is a processing's registration state.
type State int

// Processing states.
const (
	// StateActive processings can be invoked.
	StateActive State = iota + 1
	// StatePending processings await sysadmin approval of an alert.
	StatePending
	// StateRejected processings were refused by the sysadmin.
	StateRejected
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StatePending:
		return "pending-approval"
	case StateRejected:
		return "rejected"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Sentinel errors.
var (
	// ErrNoPurpose reports registration without a (valid) purpose.
	ErrNoPurpose = errors.New("ps: function has no specified purpose")
	// ErrPurposeMismatch reports an implementation wired to a different
	// purpose name than its declaration.
	ErrPurposeMismatch = errors.New("ps: implementation purpose does not name the declaration")
	// ErrAlreadyRegistered reports a duplicate processing name.
	ErrAlreadyRegistered = errors.New("ps: processing already registered")
	// ErrPendingApproval reports a registration held for sysadmin review.
	ErrPendingApproval = errors.New("ps: registration pending sysadmin approval")
	// ErrNotRegistered reports an invoke of an unknown processing.
	ErrNotRegistered = errors.New("ps: no such processing")
	// ErrNotActive reports an invoke of a pending/rejected processing.
	ErrNotActive = errors.New("ps: processing is not active")
	// ErrNoAlert reports an unknown alert id.
	ErrNoAlert = errors.New("ps: no such alert")
	// ErrMaintenanceReserved reports a maintenance invoke of a
	// non-builtin processing.
	ErrMaintenanceReserved = errors.New("ps: maintenance mode is reserved for built-in processings")
	// ErrNoCollector reports InitCollect without a wired collector.
	ErrNoCollector = errors.New("ps: no collector wired")
)

// Processing is one stored (purpose, implementation) pair.
type Processing struct {
	Decl    *purpose.Decl
	Impl    *ded.Func
	Builtin bool
	State   State
}

// Info is the externally visible description of a processing — the
// implementation itself never leaves the PS (enforcement rule 1).
type Info struct {
	Name        string
	Description string
	Basis       purpose.Basis
	Reads       []string
	Produces    string
	Builtin     bool
	State       State
}

// Alert is a purpose-mismatch report requiring sysadmin attention.
type Alert struct {
	ID         uint64
	Processing string
	// Phase is "register" (static check) or "dynamic" (post-run check).
	Phase    string
	Report   purpose.MatchReport
	Resolved bool
	Approved bool
}

// AcquireFunc populates DBFS from a collection source before an invocation
// (ps_invoke's data-collection boolean). Wired by the kernel at boot.
type AcquireFunc func(typeName, method string, subjects []string) (int, error)

// Store is the Processing Store.
type Store struct {
	d       *ded.DED
	log     *audit.Log
	acquire AcquireFunc

	mu       sync.Mutex
	procs    map[string]*Processing
	alerts   []*Alert
	alertSeq uint64
	invoked  uint64
	// defaultWorkers is the executor pool size InvokeBatch falls back to
	// when the caller passes workers <= 0; set by the kernel at boot.
	defaultWorkers int
}

// New wires a Processing Store to its DED instance. acquire may be nil if
// collection-on-invoke is not used.
func New(d *ded.DED, log *audit.Log, acquire AcquireFunc) *Store {
	return &Store{d: d, log: log, acquire: acquire, procs: make(map[string]*Processing)}
}

// SetDefaultWorkers sets the executor pool size used when InvokeBatch is
// called with workers <= 0. Values below one reset to the serial default.
func (s *Store) SetDefaultWorkers(workers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if workers < 1 {
		workers = 1
	}
	s.defaultWorkers = workers
}

// DefaultWorkers reports the executor pool size InvokeBatch falls back to —
// the machine-level concurrency the rights engine sizes its own sweeps with.
func (s *Store) DefaultWorkers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.defaultWorkers
}

// Register is ps_register. It validates the declaration, requires the
// implementation to name its purpose, and statically matches declared
// accesses against the purpose. A mismatch parks the processing as
// StatePending behind an alert and returns ErrPendingApproval.
func (s *Store) Register(decl *purpose.Decl, impl *ded.Func, builtin bool) error {
	if decl == nil {
		return fmt.Errorf("%w: nil declaration", ErrNoPurpose)
	}
	if err := decl.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrNoPurpose, err)
	}
	if impl == nil {
		return ded.ErrNotFunc
	}
	if err := impl.Validate(); err != nil {
		return err
	}
	if impl.Purpose == "" {
		return fmt.Errorf("%w: implementation %q", ErrNoPurpose, impl.Name)
	}
	if impl.Purpose != decl.Name {
		return fmt.Errorf("%w: impl %q claims %q, declaration is %q",
			ErrPurposeMismatch, impl.Name, impl.Purpose, decl.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.procs[decl.Name]; dup {
		return fmt.Errorf("%w: %q", ErrAlreadyRegistered, decl.Name)
	}
	p := &Processing{Decl: decl, Impl: impl, Builtin: builtin, State: StateActive}
	report := purpose.Match(decl, impl.DeclaredReads)
	if !report.OK {
		p.State = StatePending
		s.alertSeq++
		s.alerts = append(s.alerts, &Alert{
			ID:         s.alertSeq,
			Processing: decl.Name,
			Phase:      "register",
			Report:     report,
		})
		s.procs[decl.Name] = p
		s.log.Append(audit.KindAlert, decl.Name, "", "", "pending",
			"undeclared reads: "+strings.Join(report.Undeclared, ","))
		return fmt.Errorf("%w: %q accesses %v beyond its purpose", ErrPendingApproval,
			decl.Name, report.Undeclared)
	}
	s.procs[decl.Name] = p
	return nil
}

// Approve resolves an alert in favour of the processing (explicit sysadmin
// approval, as the paper requires).
func (s *Store) Approve(alertID uint64, sysadmin string) error {
	return s.resolve(alertID, sysadmin, true)
}

// Reject resolves an alert against the processing.
func (s *Store) Reject(alertID uint64, sysadmin string) error {
	return s.resolve(alertID, sysadmin, false)
}

func (s *Store) resolve(alertID uint64, sysadmin string, approve bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var alert *Alert
	for _, a := range s.alerts {
		if a.ID == alertID {
			alert = a
			break
		}
	}
	if alert == nil || alert.Resolved {
		return fmt.Errorf("%w: %d", ErrNoAlert, alertID)
	}
	alert.Resolved = true
	alert.Approved = approve
	p, ok := s.procs[alert.Processing]
	if ok && p.State == StatePending {
		if approve {
			p.State = StateActive
		} else {
			p.State = StateRejected
		}
	}
	outcome := "rejected"
	if approve {
		outcome = "approved"
	}
	s.log.Append(audit.KindAlert, alert.Processing, "", "", outcome, "sysadmin="+sysadmin)
	return nil
}

// Alerts returns copies of all alerts.
func (s *Store) Alerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Alert, 0, len(s.alerts))
	for _, a := range s.alerts {
		out = append(out, *a)
	}
	return out
}

// PendingAlerts returns unresolved alerts.
func (s *Store) PendingAlerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Alert
	for _, a := range s.alerts {
		if !a.Resolved {
			out = append(out, *a)
		}
	}
	return out
}

// Get returns the metadata of a processing (never the implementation).
func (s *Store) Get(name string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.procs[name]
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrNotRegistered, name)
	}
	return Info{
		Name:        p.Decl.Name,
		Description: p.Decl.Description,
		Basis:       p.Decl.Basis,
		Reads:       append([]string(nil), p.Decl.Reads...),
		Produces:    p.Decl.Produces,
		Builtin:     p.Builtin,
		State:       p.State,
	}, nil
}

// List returns the registered processing names, sorted.
func (s *Store) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.procs))
	for name := range s.procs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Invocations reports how many ps_invoke calls ran.
func (s *Store) Invocations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.invoked
}

// InvokeRequest mirrors ps_invoke's parameters: "the reference of a data
// processing operation, optionally a reference to PD, a data collection
// method and a boolean indicating whether or not the data collection
// function is to be called to initialize DBFS."
type InvokeRequest struct {
	// Processing names the registered processing.
	Processing string
	// PDRef optionally targets one record.
	PDRef string
	// TypeName targets all records of a type when PDRef is empty.
	TypeName string
	// SubjectFilter optionally restricts to one subject.
	SubjectFilter string
	// Params carries arguments for write builtins.
	Params map[string]any
	// CollectMethod and InitCollect trigger acquisition before the run.
	CollectMethod string
	InitCollect   bool
	// CollectSubjects lists the subjects to acquire for.
	CollectSubjects []string
	// Maintenance bypasses consent for rights execution; reserved for
	// built-in processings.
	Maintenance bool
}

// prepare validates an invoke request against the registry, runs the
// optional collection step, and lowers the request to a DED invocation. It
// is the shared front half of Invoke and InvokeBatch.
func (s *Store) prepare(req InvokeRequest) (*Processing, ded.Invocation, error) {
	s.mu.Lock()
	p, ok := s.procs[req.Processing]
	if !ok {
		s.mu.Unlock()
		return nil, ded.Invocation{}, fmt.Errorf("%w: %q", ErrNotRegistered, req.Processing)
	}
	if p.State != StateActive {
		s.mu.Unlock()
		return nil, ded.Invocation{}, fmt.Errorf("%w: %q is %v", ErrNotActive, req.Processing, p.State)
	}
	if req.Maintenance && !p.Builtin {
		s.mu.Unlock()
		return nil, ded.Invocation{}, fmt.Errorf("%w: %q", ErrMaintenanceReserved, req.Processing)
	}
	acquire := s.acquire
	s.mu.Unlock()

	if req.InitCollect {
		if acquire == nil {
			return nil, ded.Invocation{}, ErrNoCollector
		}
		ty := req.TypeName
		if ty == "" && p.Decl.Produces != "" {
			ty = p.Decl.Produces
		}
		if _, err := acquire(ty, req.CollectMethod, req.CollectSubjects); err != nil {
			return nil, ded.Invocation{}, fmt.Errorf("ps: collection before invoke: %w", err)
		}
	}
	return p, ded.Invocation{
		Purpose:       p.Decl,
		Impl:          p.Impl,
		PDRef:         req.PDRef,
		TypeName:      req.TypeName,
		SubjectFilter: req.SubjectFilter,
		Params:        req.Params,
		Maintenance:   req.Maintenance,
	}, nil
}

// finish is the shared back half of an invocation: it counts the run and
// re-checks the purpose against the observed field accesses, raising a
// dynamic alert on divergence.
func (s *Store) finish(p *Processing, res *ded.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invoked++
	// Dynamic purpose check: observed accesses vs declaration.
	if report := purpose.Match(p.Decl, res.DynamicReads); !report.OK {
		s.alertSeq++
		s.alerts = append(s.alerts, &Alert{
			ID:         s.alertSeq,
			Processing: p.Decl.Name,
			Phase:      "dynamic",
			Report:     report,
		})
		s.log.Append(audit.KindAlert, p.Decl.Name, "", "", "raised",
			"dynamic undeclared reads: "+strings.Join(report.Undeclared, ","))
	}
}

// Invoke is ps_invoke.
func (s *Store) Invoke(req InvokeRequest) (*ded.Result, error) {
	p, inv, err := s.prepare(req)
	if err != nil {
		return nil, err
	}
	res, err := s.d.Run(inv)
	if err != nil {
		return nil, err
	}
	s.finish(p, res)
	return res, nil
}

// InvokeBatch is the concurrent form of ps_invoke: the requests are
// validated and collection-initialized one by one (approval state and
// maintenance rules apply exactly as in Invoke), then the admitted
// invocations run on the DED's worker-pool executor. Outcomes keep request
// order and are per-request — one failure never aborts its siblings. Every
// successful run still passes the dynamic purpose check and counts toward
// Invocations.
func (s *Store) InvokeBatch(reqs []InvokeRequest, workers int) []ded.BatchItem {
	if workers <= 0 {
		s.mu.Lock()
		workers = s.defaultWorkers
		s.mu.Unlock()
		if workers <= 0 {
			workers = 1
		}
	}
	out := make([]ded.BatchItem, len(reqs))
	procs := make([]*Processing, len(reqs))
	invs := make([]ded.Invocation, 0, len(reqs))
	idx := make([]int, 0, len(reqs)) // batch position of each admitted request
	for i, req := range reqs {
		p, inv, err := s.prepare(req)
		if err != nil {
			out[i].Err = err
			continue
		}
		procs[i] = p
		invs = append(invs, inv)
		idx = append(idx, i)
	}
	for j, item := range s.d.RunBatch(invs, workers) {
		i := idx[j]
		out[i] = item
		if item.Err == nil {
			s.finish(procs[i], item.Res)
		}
	}
	return out
}

// InvokeAsync is ps_invoke detached from the caller: the invocation runs on
// its own goroutine and the single outcome is delivered on the returned
// channel, which is closed afterwards.
func (s *Store) InvokeAsync(req InvokeRequest) <-chan ded.BatchItem {
	ch := make(chan ded.BatchItem, 1)
	go func() {
		defer close(ch)
		res, err := s.Invoke(req)
		ch <- ded.BatchItem{Res: res, Err: err}
	}()
	return ch
}
