// Package ps implements the Processing Store, the second component of
// rgpdOS and its only entry point (§2): "Its public interface consists of
// two functions: ps_register and ps_invoke."
//
// Register enforces the paper's checks: a function with no specified
// purpose is rejected outright; a function whose declared accesses do not
// match its purpose raises an alert that requires explicit sysadmin
// approval before the processing becomes invocable. Invoke is the only way
// to run a processing: it instantiates a DED (enforcement rules 1 and 2 —
// the PS alone holds stored processings and alone mints invocations), and
// after the run it re-checks the purpose against the *observed* field
// accesses, raising a dynamic alert on divergence (the runtime half of the
// §3(4) purpose-matching problem).
package ps

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/audit"
	"repro/internal/ded"
	"repro/internal/purpose"
)

// State is a processing's registration state.
type State int

// Processing states.
const (
	// StateActive processings can be invoked.
	StateActive State = iota + 1
	// StatePending processings await sysadmin approval of an alert.
	StatePending
	// StateRejected processings were refused by the sysadmin.
	StateRejected
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StatePending:
		return "pending-approval"
	case StateRejected:
		return "rejected"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Sentinel errors.
var (
	// ErrNoPurpose reports registration without a (valid) purpose.
	ErrNoPurpose = errors.New("ps: function has no specified purpose")
	// ErrPurposeMismatch reports an implementation wired to a different
	// purpose name than its declaration.
	ErrPurposeMismatch = errors.New("ps: implementation purpose does not name the declaration")
	// ErrAlreadyRegistered reports a duplicate processing name.
	ErrAlreadyRegistered = errors.New("ps: processing already registered")
	// ErrPendingApproval reports a registration held for sysadmin review.
	ErrPendingApproval = errors.New("ps: registration pending sysadmin approval")
	// ErrNotRegistered reports an invoke of an unknown processing.
	ErrNotRegistered = errors.New("ps: no such processing")
	// ErrNotActive reports an invoke of a pending/rejected processing.
	ErrNotActive = errors.New("ps: processing is not active")
	// ErrNoAlert reports an unknown alert id.
	ErrNoAlert = errors.New("ps: no such alert")
	// ErrMaintenanceReserved reports a maintenance invoke of a
	// non-builtin processing.
	ErrMaintenanceReserved = errors.New("ps: maintenance mode is reserved for built-in processings")
	// ErrNoCollector reports InitCollect without a wired collector.
	ErrNoCollector = errors.New("ps: no collector wired")
)

// Processing is one stored (purpose, implementation) pair.
type Processing struct {
	Decl    *purpose.Decl
	Impl    *ded.Func
	Builtin bool
	State   State
}

// Info is the externally visible description of a processing — the
// implementation itself never leaves the PS (enforcement rule 1).
type Info struct {
	Name        string
	Description string
	Basis       purpose.Basis
	Reads       []string
	Produces    string
	Builtin     bool
	State       State
}

// Alert is a purpose-mismatch report requiring sysadmin attention.
type Alert struct {
	ID         uint64
	Processing string
	// Phase is "register" (static check) or "dynamic" (post-run check).
	Phase    string
	Report   purpose.MatchReport
	Resolved bool
	Approved bool
}

// AcquireFunc populates DBFS from a collection source before an invocation
// (ps_invoke's data-collection boolean). Wired by the kernel at boot.
type AcquireFunc func(typeName, method string, subjects []string) (int, error)

// Store is the Processing Store.
type Store struct {
	d       *ded.DED
	log     *audit.Log
	acquire AcquireFunc

	mu       sync.Mutex
	procs    map[string]*Processing
	alerts   []*Alert
	alertSeq uint64
	invoked  uint64
	// defaultWorkers is the executor pool size InvokeBatch falls back to
	// when the caller passes workers <= 0; set by the kernel at boot.
	defaultWorkers int
	// adm is the admission controller gating non-maintenance invokes;
	// nil means no admission control (everything is admitted, nothing is
	// counted). Set once at boot via ConfigureAdmission.
	adm *admission.Controller
}

// Stats is a snapshot of Processing Store load counters: how many
// invocations ran, and — when an admission controller is configured — the
// queue depth, rejection and latency counters of the admission gate.
type Stats struct {
	Invocations uint64
	Admission   admission.Stats
}

// New wires a Processing Store to its DED instance. acquire may be nil if
// collection-on-invoke is not used.
func New(d *ded.DED, log *audit.Log, acquire AcquireFunc) *Store {
	return &Store{d: d, log: log, acquire: acquire, procs: make(map[string]*Processing)}
}

// SetDefaultWorkers sets the executor pool size used when InvokeBatch is
// called with workers <= 0. Values below one reset to the serial default.
func (s *Store) SetDefaultWorkers(workers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if workers < 1 {
		workers = 1
	}
	s.defaultWorkers = workers
}

// DefaultWorkers reports the executor pool size InvokeBatch falls back to —
// the machine-level concurrency the rights engine sizes its own sweeps with.
func (s *Store) DefaultWorkers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.defaultWorkers
}

// ConfigureAdmission installs the admission controller gating Invoke and
// InvokeBatch. Admission applies at submission time to non-maintenance
// requests; maintenance invocations (rights execution — a legal
// obligation) are never shed. Passing nil removes admission control.
//
// Deprecated: core.Boot installs the controller; runtime changes to its
// parameters go through System.ApplyTuning (core.Tuning.AdmissionMaxPending)
// rather than swapping the controller, which would discard its counters.
func (s *Store) ConfigureAdmission(c *admission.Controller) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.adm = c
}

// Admission returns the installed admission controller (nil when
// admission control is off) — the handle the core tuning API adjusts
// bounds and rate limits through.
func (s *Store) Admission() *admission.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adm
}

// SetRateLimit installs a token-bucket rate limit (ratePerSec, burst) for
// one purpose, keyed by the purpose registry: the purpose must name a
// registered processing, so limits cannot silently target a typo. A rate
// <= 0 removes the limit. Requires a configured admission controller.
//
// Deprecated: when the store is owned by a core.System, set limits through
// System.ApplyTuning (core.Tuning.RateLimits) so the tuning snapshot stays
// coherent. The registry validation lives here either way.
func (s *Store) SetRateLimit(purposeName string, ratePerSec, burst float64) error {
	s.mu.Lock()
	c := s.adm
	_, known := s.procs[purposeName]
	s.mu.Unlock()
	if c == nil {
		return fmt.Errorf("ps: rate limit for %q: no admission controller configured", purposeName)
	}
	if !known {
		return fmt.Errorf("%w: %q", ErrNotRegistered, purposeName)
	}
	c.SetPurposeLimit(purposeName, ratePerSec, burst)
	return nil
}

// Stats snapshots the load counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{Invocations: s.invoked}
	c := s.adm
	s.mu.Unlock()
	if c != nil {
		st.Admission = c.Snapshot()
	}
	return st
}

// admit runs the admission gate for one request. It returns a non-nil
// release exactly when the request was admitted by a configured
// controller; the caller must invoke release once with the request's
// completion latency. A nil, nil return means "no admission control
// applies" (no controller, or a maintenance request).
func (s *Store) admit(req InvokeRequest) (func(time.Duration), error) {
	s.mu.Lock()
	c := s.adm
	s.mu.Unlock()
	if c == nil || req.Maintenance {
		return nil, nil
	}
	return c.Admit(req.Processing)
}

// Register is ps_register. It validates the declaration, requires the
// implementation to name its purpose, and statically matches declared
// accesses against the purpose. A mismatch parks the processing as
// StatePending behind an alert and returns ErrPendingApproval.
func (s *Store) Register(decl *purpose.Decl, impl *ded.Func, builtin bool) error {
	if decl == nil {
		return fmt.Errorf("%w: nil declaration", ErrNoPurpose)
	}
	if err := decl.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrNoPurpose, err)
	}
	if impl == nil {
		return ded.ErrNotFunc
	}
	if err := impl.Validate(); err != nil {
		return err
	}
	if impl.Purpose == "" {
		return fmt.Errorf("%w: implementation %q", ErrNoPurpose, impl.Name)
	}
	if impl.Purpose != decl.Name {
		return fmt.Errorf("%w: impl %q claims %q, declaration is %q",
			ErrPurposeMismatch, impl.Name, impl.Purpose, decl.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.procs[decl.Name]; dup {
		return fmt.Errorf("%w: %q", ErrAlreadyRegistered, decl.Name)
	}
	p := &Processing{Decl: decl, Impl: impl, Builtin: builtin, State: StateActive}
	report := purpose.Match(decl, impl.DeclaredReads)
	if !report.OK {
		p.State = StatePending
		s.alertSeq++
		s.alerts = append(s.alerts, &Alert{
			ID:         s.alertSeq,
			Processing: decl.Name,
			Phase:      "register",
			Report:     report,
		})
		s.procs[decl.Name] = p
		s.log.Append(audit.KindAlert, decl.Name, "", "", "pending",
			"undeclared reads: "+strings.Join(report.Undeclared, ","))
		return fmt.Errorf("%w: %q accesses %v beyond its purpose", ErrPendingApproval,
			decl.Name, report.Undeclared)
	}
	s.procs[decl.Name] = p
	return nil
}

// Approve resolves an alert in favour of the processing (explicit sysadmin
// approval, as the paper requires).
func (s *Store) Approve(alertID uint64, sysadmin string) error {
	return s.resolve(alertID, sysadmin, true)
}

// Reject resolves an alert against the processing.
func (s *Store) Reject(alertID uint64, sysadmin string) error {
	return s.resolve(alertID, sysadmin, false)
}

func (s *Store) resolve(alertID uint64, sysadmin string, approve bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var alert *Alert
	for _, a := range s.alerts {
		if a.ID == alertID {
			alert = a
			break
		}
	}
	if alert == nil || alert.Resolved {
		return fmt.Errorf("%w: %d", ErrNoAlert, alertID)
	}
	alert.Resolved = true
	alert.Approved = approve
	p, ok := s.procs[alert.Processing]
	if ok && p.State == StatePending {
		if approve {
			p.State = StateActive
		} else {
			p.State = StateRejected
		}
	}
	outcome := "rejected"
	if approve {
		outcome = "approved"
	}
	s.log.Append(audit.KindAlert, alert.Processing, "", "", outcome, "sysadmin="+sysadmin)
	return nil
}

// Alerts returns copies of all alerts.
func (s *Store) Alerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Alert, 0, len(s.alerts))
	for _, a := range s.alerts {
		out = append(out, *a)
	}
	return out
}

// PendingAlerts returns unresolved alerts.
func (s *Store) PendingAlerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Alert
	for _, a := range s.alerts {
		if !a.Resolved {
			out = append(out, *a)
		}
	}
	return out
}

// Get returns the metadata of a processing (never the implementation).
func (s *Store) Get(name string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.procs[name]
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrNotRegistered, name)
	}
	return Info{
		Name:        p.Decl.Name,
		Description: p.Decl.Description,
		Basis:       p.Decl.Basis,
		Reads:       append([]string(nil), p.Decl.Reads...),
		Produces:    p.Decl.Produces,
		Builtin:     p.Builtin,
		State:       p.State,
	}, nil
}

// List returns the registered processing names, sorted.
func (s *Store) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.procs))
	for name := range s.procs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Invocations reports how many ps_invoke calls ran.
func (s *Store) Invocations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.invoked
}

// InvokeRequest mirrors ps_invoke's parameters: "the reference of a data
// processing operation, optionally a reference to PD, a data collection
// method and a boolean indicating whether or not the data collection
// function is to be called to initialize DBFS."
type InvokeRequest struct {
	// Processing names the registered processing.
	Processing string
	// PDRef optionally targets one record.
	PDRef string
	// TypeName targets all records of a type when PDRef is empty.
	TypeName string
	// SubjectFilter optionally restricts to one subject.
	SubjectFilter string
	// Params carries arguments for write builtins.
	Params map[string]any
	// CollectMethod and InitCollect trigger acquisition before the run.
	CollectMethod string
	InitCollect   bool
	// CollectSubjects lists the subjects to acquire for.
	CollectSubjects []string
	// Maintenance bypasses consent for rights execution; reserved for
	// built-in processings.
	Maintenance bool
}

// prepare validates an invoke request against the registry, runs the
// optional collection step, and lowers the request to a DED invocation. It
// is the shared front half of Invoke and InvokeBatch.
func (s *Store) prepare(req InvokeRequest) (*Processing, ded.Invocation, error) {
	s.mu.Lock()
	p, ok := s.procs[req.Processing]
	if !ok {
		s.mu.Unlock()
		return nil, ded.Invocation{}, fmt.Errorf("%w: %q", ErrNotRegistered, req.Processing)
	}
	if p.State != StateActive {
		s.mu.Unlock()
		return nil, ded.Invocation{}, fmt.Errorf("%w: %q is %v", ErrNotActive, req.Processing, p.State)
	}
	if req.Maintenance && !p.Builtin {
		s.mu.Unlock()
		return nil, ded.Invocation{}, fmt.Errorf("%w: %q", ErrMaintenanceReserved, req.Processing)
	}
	acquire := s.acquire
	s.mu.Unlock()

	if req.InitCollect {
		if acquire == nil {
			return nil, ded.Invocation{}, ErrNoCollector
		}
		ty := req.TypeName
		if ty == "" && p.Decl.Produces != "" {
			ty = p.Decl.Produces
		}
		if _, err := acquire(ty, req.CollectMethod, req.CollectSubjects); err != nil {
			return nil, ded.Invocation{}, fmt.Errorf("ps: collection before invoke: %w", err)
		}
	}
	return p, ded.Invocation{
		Purpose:       p.Decl,
		Impl:          p.Impl,
		PDRef:         req.PDRef,
		TypeName:      req.TypeName,
		SubjectFilter: req.SubjectFilter,
		Params:        req.Params,
		Maintenance:   req.Maintenance,
	}, nil
}

// finish is the shared back half of an invocation: it counts the run and
// re-checks the purpose against the observed field accesses, raising a
// dynamic alert on divergence.
func (s *Store) finish(p *Processing, res *ded.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invoked++
	// Dynamic purpose check: observed accesses vs declaration.
	if report := purpose.Match(p.Decl, res.DynamicReads); !report.OK {
		s.alertSeq++
		s.alerts = append(s.alerts, &Alert{
			ID:         s.alertSeq,
			Processing: p.Decl.Name,
			Phase:      "dynamic",
			Report:     report,
		})
		s.log.Append(audit.KindAlert, p.Decl.Name, "", "", "raised",
			"dynamic undeclared reads: "+strings.Join(report.Undeclared, ","))
	}
}

// Invoke is ps_invoke. When an admission controller is configured the
// request passes the admission gate first (queue bound, then the
// purpose's token bucket); a rejection returns an error wrapping
// admission.ErrOverloaded without touching the DED.
func (s *Store) Invoke(req InvokeRequest) (*ded.Result, error) {
	release, err := s.admit(req)
	if err != nil {
		return nil, err
	}
	var start time.Time
	if release != nil {
		start = time.Now()
		defer func() { release(time.Since(start)) }()
	}
	p, inv, err := s.prepare(req)
	if err != nil {
		return nil, err
	}
	res, err := s.d.Run(inv)
	if err != nil {
		return nil, err
	}
	s.finish(p, res)
	return res, nil
}

// InvokeBatch is the concurrent form of ps_invoke: the requests pass the
// admission gate and are validated and collection-initialized one by one,
// in request order (approval state and maintenance rules apply exactly as
// in Invoke), then the admitted invocations run on a worker pool through
// the DED. Outcomes keep request order and are per-request — one failure
// never aborts its siblings, and an admission rejection is a typed outcome
// (Rejected set, Err wrapping admission.ErrOverloaded), never a silent
// drop. Every successful run still passes the dynamic purpose check and
// counts toward Invocations.
//
// The whole batch is admitted up front: a batch is a burst arrival, so a
// batch larger than the admission queue's free capacity sheds its tail.
// Each admitted request occupies queue depth from submission until its
// invocation completes.
func (s *Store) InvokeBatch(reqs []InvokeRequest, workers int) []ded.BatchItem {
	if workers <= 0 {
		s.mu.Lock()
		workers = s.defaultWorkers
		s.mu.Unlock()
		if workers <= 0 {
			workers = 1
		}
	}
	out := make([]ded.BatchItem, len(reqs))
	type job struct {
		i       int
		p       *Processing
		inv     ded.Invocation
		release func(time.Duration)
		start   time.Time
	}
	jobs := make([]job, 0, len(reqs))
	for i, req := range reqs {
		release, err := s.admit(req)
		if err != nil {
			out[i] = ded.BatchItem{Err: err, Rejected: true}
			continue
		}
		var start time.Time
		if release != nil {
			start = time.Now()
		}
		p, inv, err := s.prepare(req)
		if err != nil {
			if release != nil {
				release(time.Since(start))
			}
			out[i].Err = err
			continue
		}
		jobs = append(jobs, job{i: i, p: p, inv: inv, release: release, start: start})
	}
	if len(jobs) == 0 {
		return out
	}
	// The DED executor runs the admitted invocations; the completion hook
	// releases each request's admission slot the moment it finishes, so
	// queue depth stays truthful. The dynamic purpose check and the
	// invocation count run afterwards in request order, so alert IDs and
	// audit entries for a batch stay deterministic exactly as in the
	// serial path.
	invs := make([]ded.Invocation, len(jobs))
	for j, jb := range jobs {
		invs[j] = jb.inv
	}
	items := s.d.RunBatchFunc(invs, workers, func(j int, _ ded.BatchItem) {
		if jobs[j].release != nil {
			jobs[j].release(time.Since(jobs[j].start))
		}
	})
	for j, item := range items {
		out[jobs[j].i] = item
		if item.Err == nil {
			s.finish(jobs[j].p, item.Res)
		}
	}
	return out
}

// InvokeAsync is ps_invoke detached from the caller: the invocation runs on
// its own goroutine and the single outcome is delivered on the returned
// channel, which is closed afterwards.
func (s *Store) InvokeAsync(req InvokeRequest) <-chan ded.BatchItem {
	ch := make(chan ded.BatchItem, 1)
	go func() {
		defer close(ch)
		res, err := s.Invoke(req)
		ch <- ded.BatchItem{Res: res, Err: err}
	}()
	return ch
}
