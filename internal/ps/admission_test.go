package ps

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/ded"
	"repro/internal/purpose"
)

// TestInvokeBatchQueueSaturationStress is the -race saturation soak for the
// admission gate: N producer goroutines hammer InvokeBatch far past the
// admission queue's capacity K. Every offered request must come back as
// exactly one of accepted or rejected (no silent drops), the accepted set
// must keep the full invoke semantics (results, dynamic alerts,
// Invocations), and draining the load must leave no goroutine behind.
func TestInvokeBatchQueueSaturationStress(t *testing.T) {
	e := newEnv(t, nil)
	subjects := e.seedSubjects(t, 16)
	// The impl probes an undeclared field, so every ACCEPTED invocation
	// raises exactly one dynamic alert — the accepted-set semantics probe.
	impl := ageImpl()
	inner := impl.Fn
	impl.Fn = func(c *ded.Ctx) (ded.Output, error) {
		c.Has("name")
		return inner(c)
	}
	if err := e.ps.Register(decl3(), impl, false); err != nil {
		t.Fatal(err)
	}
	const capK = 6
	e.ps.ConfigureAdmission(admission.New(admission.Options{MaxPending: capK}))

	beforeGoroutines := runtime.NumGoroutine()
	const (
		producers = 8
		rounds    = 4
	)
	var accepted, rejected atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			reqs := make([]InvokeRequest, len(subjects))
			for i, s := range subjects {
				reqs[i] = InvokeRequest{Processing: "purpose3", TypeName: "user", SubjectFilter: s}
			}
			for round := 0; round < rounds; round++ {
				out := e.ps.InvokeBatch(reqs, 4)
				if len(out) != len(reqs) {
					errCh <- fmt.Errorf("producer %d: %d outcomes for %d requests", p, len(out), len(reqs))
					return
				}
				for i, item := range out {
					switch {
					case item.Rejected:
						if !errors.Is(item.Err, admission.ErrOverloaded) {
							errCh <- fmt.Errorf("producer %d req %d: rejected with %v, want ErrOverloaded", p, i, item.Err)
							return
						}
						if item.Res != nil {
							errCh <- fmt.Errorf("producer %d req %d: rejected but has a result", p, i)
							return
						}
						rejected.Add(1)
					case item.Err != nil:
						errCh <- fmt.Errorf("producer %d req %d: %w", p, i, item.Err)
						return
					default:
						if item.Res.Processed != 1 {
							errCh <- fmt.Errorf("producer %d req %d: processed %d, want 1", p, i, item.Res.Processed)
							return
						}
						accepted.Add(1)
					}
				}
			}
		}(p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	offered := int64(producers * rounds * len(subjects))
	if got := accepted.Load() + rejected.Load(); got != offered {
		t.Fatalf("accepted %d + rejected %d = %d, want offered %d (a request was dropped or double-counted)",
			accepted.Load(), rejected.Load(), got, offered)
	}
	if rejected.Load() == 0 {
		t.Fatalf("no rejections at %dx oversubscription of capacity %d — the queue bound did not bite", producers, capK)
	}
	if accepted.Load() < int64(capK) {
		t.Fatalf("accepted %d < capacity %d", accepted.Load(), capK)
	}

	// Accepted-set semantics: every accepted run counted and raised its
	// dynamic alert.
	if got := e.ps.Invocations(); got != uint64(accepted.Load()) {
		t.Fatalf("Invocations = %d, want accepted %d", got, accepted.Load())
	}
	dynamic := 0
	for _, a := range e.ps.PendingAlerts() {
		if a.Phase == "dynamic" && a.Processing == "purpose3" {
			dynamic++
		}
	}
	if dynamic != int(accepted.Load()) {
		t.Fatalf("dynamic alerts = %d, want one per accepted invocation (%d)", dynamic, accepted.Load())
	}

	// The ps.Stats snapshot agrees, and the queue fully drained.
	st := e.ps.Stats()
	if st.Admission.Admitted != uint64(accepted.Load()) || st.Admission.Completed != uint64(accepted.Load()) {
		t.Fatalf("admission stats admitted/completed = %d/%d, want %d", st.Admission.Admitted, st.Admission.Completed, accepted.Load())
	}
	if st.Admission.Rejected() != uint64(rejected.Load()) || st.Admission.RejectedQueue != uint64(rejected.Load()) {
		t.Fatalf("admission stats rejected = %+v, want %d queue rejections", st.Admission, rejected.Load())
	}
	if st.Admission.Depth != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", st.Admission.Depth)
	}
	if st.Admission.PeakDepth > capK {
		t.Fatalf("peak depth %d exceeded capacity %d", st.Admission.PeakDepth, capK)
	}

	// No goroutine leak after drain: the worker pools and admission gate
	// must not strand anything. Settle briefly — the runtime reaps worker
	// goroutines asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= beforeGoroutines+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after drain = %d, was %d before load", runtime.NumGoroutine(), beforeGoroutines)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInvokeAdmissionApprovalFlow checks that the sysadmin approval state
// machine composes with admission: a pending processing stays uninvocable
// (ErrNotActive, which must NOT consume queue slots permanently), and after
// approval the same request is admitted and runs.
func TestInvokeAdmissionApprovalFlow(t *testing.T) {
	e := newEnv(t, nil)
	e.seedSubjects(t, 1)
	e.ps.ConfigureAdmission(admission.New(admission.Options{MaxPending: 1}))

	// Declared reads beyond the purpose: parked pending approval.
	decl := &purpose.Decl{Name: "purpose3", Description: "age", Basis: purpose.BasisConsent,
		Reads: []string{"user.year_of_birthdate"}}
	impl := ageImpl()
	impl.DeclaredReads = []string{"user.year_of_birthdate", "user.name"}
	if err := e.ps.Register(decl, impl, false); !errors.Is(err, ErrPendingApproval) {
		t.Fatalf("register err = %v, want ErrPendingApproval", err)
	}
	req := InvokeRequest{Processing: "purpose3", TypeName: "user"}
	for i := 0; i < 3; i++ {
		if _, err := e.ps.Invoke(req); !errors.Is(err, ErrNotActive) {
			t.Fatalf("invoke %d of pending processing err = %v, want ErrNotActive", i, err)
		}
	}
	// Each failed attempt released its slot: depth is 0, not pinned at 1.
	if st := e.ps.Stats(); st.Admission.Depth != 0 {
		t.Fatalf("depth after failed invokes = %d, want 0", st.Admission.Depth)
	}
	alerts := e.ps.PendingAlerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v", alerts)
	}
	if err := e.ps.Approve(alerts[0].ID, "root"); err != nil {
		t.Fatal(err)
	}
	res, err := e.ps.Invoke(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 1 {
		t.Fatalf("processed = %d", res.Processed)
	}
}

// TestSetRateLimitKeyedByRegistry checks the registry coupling: limits can
// only target registered purposes, and an installed limit sheds Invoke
// traffic with the typed error.
func TestSetRateLimitKeyedByRegistry(t *testing.T) {
	e := newEnv(t, nil)
	e.seedSubjects(t, 1)
	if err := e.ps.Register(decl3(), ageImpl(), false); err != nil {
		t.Fatal(err)
	}
	if err := e.ps.SetRateLimit("purpose3", 1, 1); err == nil {
		t.Fatal("SetRateLimit without a controller succeeded")
	}
	e.ps.ConfigureAdmission(admission.New(admission.Options{Clock: e.clock}))
	if err := e.ps.SetRateLimit("ghost", 1, 1); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("unknown purpose err = %v, want ErrNotRegistered", err)
	}
	if err := e.ps.SetRateLimit("purpose3", 1, 1); err != nil {
		t.Fatal(err)
	}
	req := InvokeRequest{Processing: "purpose3", TypeName: "user"}
	if _, err := e.ps.Invoke(req); err != nil {
		t.Fatalf("burst invoke: %v", err)
	}
	if _, err := e.ps.Invoke(req); !errors.Is(err, admission.ErrRateLimited) {
		t.Fatalf("over-rate invoke err = %v, want ErrRateLimited", err)
	}
	e.clock.Advance(time.Second)
	if _, err := e.ps.Invoke(req); err != nil {
		t.Fatalf("post-refill invoke: %v", err)
	}
	st := e.ps.Stats()
	if st.Admission.RejectedRate != 1 {
		t.Fatalf("RejectedRate = %d, want 1", st.Admission.RejectedRate)
	}
}
