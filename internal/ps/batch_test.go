package ps

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"repro/internal/dbfs"
	"repro/internal/ded"
)

// seedSubjects inserts one user record per subject and returns the subject
// IDs.
func (e *env) seedSubjects(t *testing.T, n int) []string {
	t.Helper()
	if err := e.store.CreateType(e.tok, userSchema()); err != nil {
		t.Fatal(err)
	}
	subjects := make([]string, n)
	for i := range subjects {
		subjects[i] = "subj-" + strconv.Itoa(i)
		if _, err := e.store.Insert(e.tok, "user", subjects[i], dbfs.Record{
			"name": dbfs.S("User " + strconv.Itoa(i)), "year_of_birthdate": dbfs.I(int64(1960 + i%40)),
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	return subjects
}

func TestInvokeBatchDistinctSubjects(t *testing.T) {
	e := newEnv(t, nil)
	subjects := e.seedSubjects(t, 24)
	if err := e.ps.Register(decl3(), ageImpl(), false); err != nil {
		t.Fatal(err)
	}
	reqs := make([]InvokeRequest, len(subjects))
	for i, s := range subjects {
		reqs[i] = InvokeRequest{Processing: "purpose3", TypeName: "user", SubjectFilter: s}
	}
	out := e.ps.InvokeBatch(reqs, 8)
	if len(out) != len(reqs) {
		t.Fatalf("outcomes = %d, want %d", len(out), len(reqs))
	}
	for i, item := range out {
		if item.Err != nil {
			t.Fatalf("req %d: %v", i, item.Err)
		}
		if item.Res.Processed != 1 {
			t.Fatalf("req %d: processed %d, want 1", i, item.Res.Processed)
		}
	}
	if got := e.ps.Invocations(); got != uint64(len(reqs)) {
		t.Fatalf("Invocations = %d, want %d", got, len(reqs))
	}
}

// TestInvokeBatchPerRequestFailure mixes valid requests with an unknown
// processing: outcomes stay positional and the failure never aborts
// siblings.
func TestInvokeBatchPerRequestFailure(t *testing.T) {
	e := newEnv(t, nil)
	subjects := e.seedSubjects(t, 3)
	if err := e.ps.Register(decl3(), ageImpl(), false); err != nil {
		t.Fatal(err)
	}
	reqs := []InvokeRequest{
		{Processing: "purpose3", TypeName: "user", SubjectFilter: subjects[0]},
		{Processing: "ghost", TypeName: "user"},
		{Processing: "purpose3", TypeName: "user", SubjectFilter: subjects[2]},
	}
	out := e.ps.InvokeBatch(reqs, 4)
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("valid requests failed: %v / %v", out[0].Err, out[2].Err)
	}
	if !errors.Is(out[1].Err, ErrNotRegistered) {
		t.Fatalf("ghost err = %v", out[1].Err)
	}
	if out[1].Res != nil {
		t.Fatalf("ghost has a result: %+v", out[1].Res)
	}
	if got := e.ps.Invocations(); got != 2 {
		t.Fatalf("Invocations = %d, want 2", got)
	}
}

// TestInvokeBatchDynamicAlert checks that the dynamic purpose check fires
// for batched invocations exactly as for serial ones.
func TestInvokeBatchDynamicAlert(t *testing.T) {
	e := newEnv(t, nil)
	subjects := e.seedSubjects(t, 4)
	impl := ageImpl()
	inner := impl.Fn
	impl.Fn = func(c *ded.Ctx) (ded.Output, error) {
		c.Has("name") // undeclared probe: traced, raises the dynamic alert
		return inner(c)
	}
	if err := e.ps.Register(decl3(), impl, false); err != nil {
		t.Fatal(err)
	}
	reqs := make([]InvokeRequest, len(subjects))
	for i, s := range subjects {
		reqs[i] = InvokeRequest{Processing: "purpose3", TypeName: "user", SubjectFilter: s}
	}
	for i, item := range e.ps.InvokeBatch(reqs, 4) {
		if item.Err != nil {
			t.Fatalf("req %d: %v", i, item.Err)
		}
	}
	alerts := e.ps.PendingAlerts()
	if len(alerts) != len(reqs) {
		t.Fatalf("pending alerts = %d, want %d", len(alerts), len(reqs))
	}
	for _, a := range alerts {
		if a.Phase != "dynamic" || a.Processing != "purpose3" {
			t.Fatalf("alert = %+v", a)
		}
	}
}

func TestInvokeAsync(t *testing.T) {
	e := newEnv(t, nil)
	e.seed(t)
	if err := e.ps.Register(decl3(), ageImpl(), false); err != nil {
		t.Fatal(err)
	}
	item := <-e.ps.InvokeAsync(InvokeRequest{Processing: "purpose3", TypeName: "user"})
	if item.Err != nil {
		t.Fatal(item.Err)
	}
	if item.Res.Processed != 1 {
		t.Fatalf("processed = %d", item.Res.Processed)
	}
	if e.ps.Invocations() != 1 {
		t.Fatalf("Invocations = %d", e.ps.Invocations())
	}
}

// TestInvokeBatchStress hammers InvokeBatch from several client goroutines
// over both disjoint and overlapping subjects; run with -race this is the
// end-to-end concurrency soak for the PD hot path (ps → ded → dbfs).
func TestInvokeBatchStress(t *testing.T) {
	e := newEnv(t, nil)
	subjects := e.seedSubjects(t, 16)
	if err := e.ps.Register(decl3(), ageImpl(), false); err != nil {
		t.Fatal(err)
	}
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client batches over ALL subjects, so every subject is
			// processed by every client concurrently (overlap), while
			// within one batch the subjects are disjoint.
			reqs := make([]InvokeRequest, len(subjects))
			for i, s := range subjects {
				reqs[i] = InvokeRequest{Processing: "purpose3", TypeName: "user", SubjectFilter: s}
			}
			for round := 0; round < 3; round++ {
				for i, item := range e.ps.InvokeBatch(reqs, 8) {
					if item.Err != nil {
						errs <- fmt.Errorf("client %d round %d req %d: %w", c, round, i, item.Err)
						return
					}
					if item.Res.Processed != 1 {
						errs <- fmt.Errorf("client %d round %d req %d: processed %d", c, round, i, item.Res.Processed)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if want := uint64(clients * 3 * len(subjects)); e.ps.Invocations() != want {
		t.Errorf("Invocations = %d, want %d", e.ps.Invocations(), want)
	}
}
