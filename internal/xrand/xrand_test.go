package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided %d/1000 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	if parent == child {
		t.Fatal("Split returned the same RNG")
	}
	// The child stream must not replay the parent stream.
	p := New(7)
	p.Uint64() // account for the advance Split performed
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			// A single collision is possible but 100 successive ones are not;
			// any mismatch breaks the loop implicitly via the counter below.
			continue
		}
		return // diverged: independent
	}
	t.Fatal("child stream replays parent stream")
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	if err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(4)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	trues := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	frac := float64(trues) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("Bool(0.25) frequency = %.3f, want ~0.25", frac)
	}
}

func TestBytesFills(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 7, 8, 9, 31, 64} {
		p := make([]byte, n)
		r.Bytes(p)
		if n >= 16 {
			zero := 0
			for _, b := range p {
				if b == 0 {
					zero++
				}
			}
			if zero == n {
				t.Fatalf("Bytes(%d) left buffer all zero", n)
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	p := r.Perm(50)
	seen := make(map[int]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPickPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick on empty slice did not panic")
		}
	}()
	Pick(New(1), []int(nil))
}

func TestZipfSkew(t *testing.T) {
	r := New(11)
	z := NewZipf(r, 1.2, 1, 999)
	if z == nil {
		t.Fatal("NewZipf returned nil for valid params")
	}
	counts := make([]int, 1000)
	const n = 50000
	for i := 0; i < n; i++ {
		v := z.Uint64()
		if v > 999 {
			t.Fatalf("Zipf value %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate the tail: the head of a Zipf(1.2) distribution
	// over 1000 items receives far more mass than items ranked >= 500.
	tail := 0
	for _, c := range counts[500:] {
		tail += c
	}
	if counts[0] < tail {
		t.Fatalf("Zipf head count %d < tail mass %d; distribution not skewed", counts[0], tail)
	}
}

func TestZipfRejectsBadParams(t *testing.T) {
	r := New(1)
	if z := NewZipf(r, 1.0, 1, 10); z != nil {
		t.Fatal("NewZipf accepted s=1.0")
	}
	if z := NewZipf(r, 2.0, 0.5, 10); z != nil {
		t.Fatal("NewZipf accepted v=0.5")
	}
	if z := NewZipf(nil, 2.0, 1, 10); z != nil {
		t.Fatal("NewZipf accepted nil RNG")
	}
}
