// Package xrand provides the deterministic random number generator used by
// every stochastic component of the reproduction: workload generators, fault
// injectors, and benchmark parameter sweeps.
//
// All randomness in the simulation flows from explicitly seeded RNG values so
// that experiments are reproducible bit for bit. The generator is SplitMix64,
// which is small, fast, and passes BigCrush; it is not cryptographic and must
// never be used for key material outside deterministic simulation
// (internal/cryptoshred defaults to crypto/rand; experiments that must
// produce byte-identical ciphertext across runs inject NewReader via
// Vault.SetRand, trading security for reproducibility inside the sandbox).
package xrand

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator. It is not safe
// for concurrent use; give each goroutine its own RNG (use Split).
type RNG struct {
	state uint64
}

// New returns an RNG seeded with seed. Distinct seeds yield independent
// streams for practical purposes.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, independent RNG from r. It advances r once, so the
// parent stream is not replayed by the child.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns an int in [0, n). It panics if n <= 0, matching math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns an int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n called with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Bytes fills p with pseudo-random bytes.
func (r *RNG) Bytes(p []byte) {
	i := 0
	for i+8 <= len(p) {
		v := r.Uint64()
		for j := 0; j < 8; j++ {
			p[i+j] = byte(v >> (8 * j))
		}
		i += 8
	}
	if i < len(p) {
		v := r.Uint64()
		for ; i < len(p); i++ {
			p[i] = byte(v)
			v >>= 8
		}
	}
}

// Reader adapts an RNG to io.Reader (never errors). Like the RNG it is
// not safe for concurrent use.
type Reader struct {
	r *RNG
}

// NewReader returns a deterministic byte stream seeded with seed, for
// injecting into components that take an entropy source (e.g.
// cryptoshred.Vault.SetRand in the SC7 determinism harness).
func NewReader(seed uint64) *Reader {
	return &Reader{r: New(seed)}
}

// Read fills p from the stream; it always returns len(p), nil.
func (rd *Reader) Read(p []byte) (int, error) {
	rd.r.Bytes(p)
	return len(p), nil
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pick returns a pseudo-random element of xs. It panics on an empty slice.
func Pick[T any](r *RNG, xs []T) T {
	if len(xs) == 0 {
		panic("xrand: Pick from empty slice")
	}
	return xs[r.Intn(len(xs))]
}

// Zipf generates Zipf-distributed values in [0, n) with skew s > 1, using
// rejection-inversion sampling (the same algorithm as math/rand.Zipf). Skewed
// access to personal-data records is the standard model for the hot-subject
// workloads in the benchmark harness.
type Zipf struct {
	r                *RNG
	imax             float64
	v                float64
	q                float64
	s                float64
	oneminusQ        float64
	oneminusQinv     float64
	hxm              float64
	hx0minusHxm      float64
	hInvX0minusHInvM float64
}

// NewZipf returns a Zipf sampler over [0, imax] with parameters s > 1 and
// v >= 1. It returns nil if the parameters are out of range.
func NewZipf(r *RNG, s, v float64, imax uint64) *Zipf {
	if s <= 1.0 || v < 1 || r == nil {
		return nil
	}
	z := &Zipf{r: r, imax: float64(imax), v: v, q: s}
	z.oneminusQ = 1.0 - z.q
	z.oneminusQinv = 1.0 / z.oneminusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	z.s = 1 - z.hinv(z.h(1.5)-math.Exp(-z.q*math.Log(z.v+1.0)))
	z.hInvX0minusHInvM = z.s
	return z
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneminusQ*math.Log(z.v+x)) * z.oneminusQinv
}

func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(z.oneminusQinv*math.Log(z.oneminusQ*x)) - z.v
}

// Uint64 returns a Zipf-distributed value in [0, imax].
func (z *Zipf) Uint64() uint64 {
	if z == nil {
		return 0
	}
	for {
		r := z.r.Float64()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.s {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}
