package ded

// The batch executor runs many DED pipelines concurrently. Subjects are the
// natural unit of parallelism in rgpdOS — every DED instance executes on one
// subject's data inside its own zeroized kernel.Domain, and DBFS shards its
// record locks by subject — so invocations targeting distinct subjects never
// contend on shared mutable state and scale with workers. Invocations that
// touch the same subject are race-free at the record level: the subject's
// DBFS shard lock serializes each access, and membrane mutations are atomic
// read-modify-writes of the stored state (dbfs.MutateMembrane). Between
// whole invocations the ordering is last-writer-wins, exactly as for two
// independent clients invoking serially in an unspecified order.

import (
	"sync"
)

// BatchItem pairs one invocation's result with its error; exactly one of
// Res/Err is set. Results keep the order of the submitted invocations.
type BatchItem struct {
	Res *Result
	Err error
}

// RunBatch executes the invocations on a pool of workers goroutines, each
// invocation through the full eight-stage pipeline in its own domain. A
// workers value below one, or above the batch size, is clamped. Failures
// are per-invocation: one failing run never aborts its siblings.
func (d *DED) RunBatch(invs []Invocation, workers int) []BatchItem {
	out := make([]BatchItem, len(invs))
	if len(invs) == 0 {
		return out
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(invs) {
		workers = len(invs)
	}
	if workers == 1 {
		for i, inv := range invs {
			out[i].Res, out[i].Err = d.Run(inv)
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i].Res, out[i].Err = d.Run(invs[i])
			}
		}()
	}
	for i := range invs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
