package ded

// The batch executor runs many DED pipelines concurrently. Subjects are the
// natural unit of parallelism in rgpdOS — every DED instance executes on one
// subject's data inside its own zeroized kernel.Domain, and DBFS shards its
// record locks by subject — so invocations targeting distinct subjects never
// contend on shared mutable state and scale with workers. Invocations that
// touch the same subject are race-free at the record level: the subject's
// DBFS shard lock serializes each access, and membrane mutations are atomic
// read-modify-writes of the stored state (dbfs.MutateMembrane). Between
// whole invocations the ordering is last-writer-wins, exactly as for two
// independent clients invoking serially in an unspecified order.

import (
	"sync"
)

// BatchItem pairs one invocation's result with its error; exactly one of
// Res/Err is set. Results keep the order of the submitted invocations.
type BatchItem struct {
	Res *Result
	Err error
	// Rejected marks an invocation shed by admission control before it
	// reached the DED (Err wraps admission.ErrOverloaded): deliberate
	// load shedding the caller may retry, not a processing failure — and
	// never a silent drop, since the rejected slot keeps its position.
	Rejected bool
}

// RunBatch executes the invocations on a pool of workers goroutines, each
// invocation through the full eight-stage pipeline in its own domain. A
// workers value below one, or above the batch size, is clamped. Failures
// are per-invocation: one failing run never aborts its siblings.
func (d *DED) RunBatch(invs []Invocation, workers int) []BatchItem {
	return d.RunBatchFunc(invs, workers, nil)
}

// RunBatchFunc is RunBatch with a per-invocation completion hook: when
// non-nil, onDone(i, item) runs on the executing worker the moment
// invocation i completes, before the batch returns. The Processing Store
// uses it to release each request's admission-queue slot at its true
// completion instant rather than at the end of the whole batch.
func (d *DED) RunBatchFunc(invs []Invocation, workers int, onDone func(i int, item BatchItem)) []BatchItem {
	out := make([]BatchItem, len(invs))
	if len(invs) == 0 {
		return out
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(invs) {
		workers = len(invs)
	}
	run := func(i int) {
		out[i].Res, out[i].Err = d.Run(invs[i])
		if onDone != nil {
			onDone(i, out[i])
		}
	}
	if workers == 1 {
		for i := range invs {
			run(i)
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				run(i)
			}
		}()
	}
	for i := range invs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
