package ded

import (
	"errors"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/blockdev"
	"repro/internal/cryptoshred"
	"repro/internal/dbfs"
	"repro/internal/inode"
	"repro/internal/lsm"
	"repro/internal/membrane"
	"repro/internal/purpose"
	"repro/internal/simclock"
)

// env is a full DED test rig over a real DBFS.
type env struct {
	dev   *blockdev.Mem
	store *dbfs.Store
	guard *lsm.Guard
	vault *cryptoshred.Vault
	log   *audit.Log
	clock *simclock.Sim
	ded   *DED
	tok   *lsm.Token
}

func newEnv(t *testing.T) *env {
	t.Helper()
	dev := blockdev.MustMem(4096)
	clock := simclock.NewSim(simclock.Epoch)
	fs, err := inode.Format(dev, inode.Options{NInodes: 2048, JournalBlocks: 128, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	auth, err := cryptoshred.NewAuthority(1024)
	if err != nil {
		t.Fatal(err)
	}
	guard := lsm.NewGuard()
	vault := cryptoshred.NewVault(auth.PublicKey())
	store, err := dbfs.Create([]*inode.FS{fs}, guard, vault, clock)
	if err != nil {
		t.Fatal(err)
	}
	tok := guard.Mint("ded", lsm.CapDBFS)
	log := audit.NewLog(clock)
	d := New(store, tok, log, membrane.NewLedger(), clock)
	return &env{dev: dev, store: store, guard: guard, vault: vault, log: log, clock: clock, ded: d, tok: tok}
}

// userSchema mirrors the paper's Listing 1 (with the age alias resolved).
func userSchema() *dbfs.Schema {
	return &dbfs.Schema{
		Name: "user",
		Fields: []dbfs.Field{
			{Name: "name", Type: dbfs.TypeString},
			{Name: "pwd", Type: dbfs.TypeString, Sensitive: true},
			{Name: "year_of_birthdate", Type: dbfs.TypeInt},
		},
		Views: []dbfs.View{
			{Name: "v_name", Fields: []string{"name"}},
			{Name: "v_ano", Fields: []string{"year_of_birthdate"}},
		},
		DefaultConsent: map[string]membrane.Grant{
			"purpose1": {Kind: membrane.GrantAll},
			"purpose2": {Kind: membrane.GrantNone},
			"purpose3": {Kind: membrane.GrantView, View: "v_ano"},
		},
		DefaultTTL: 365 * 24 * time.Hour,
		Origin:     membrane.OriginSubject,
	}
}

func (e *env) seedUsers(t *testing.T) (alice, bob string) {
	t.Helper()
	if err := e.store.CreateType(e.tok, userSchema()); err != nil {
		t.Fatal(err)
	}
	alice, err := e.store.Insert(e.tok, "user", "alice", dbfs.Record{
		"name": dbfs.S("Alice"), "pwd": dbfs.S("pw-a"), "year_of_birthdate": dbfs.I(1990),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bob, err = e.store.Insert(e.tok, "user", "bob", dbfs.Record{
		"name": dbfs.S("Bob"), "pwd": dbfs.S("pw-b"), "year_of_birthdate": dbfs.I(1975),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Bob withdraws purpose3: his membrane must block compute_age.
	m, err := e.store.GetMembrane(e.tok, bob)
	if err != nil {
		t.Fatal(err)
	}
	m.WithdrawConsent("purpose3")
	if err := e.store.PutMembrane(e.tok, m); err != nil {
		t.Fatal(err)
	}
	return alice, bob
}

// purpose3 is Listing 2's purpose.
func purpose3() *purpose.Decl {
	return &purpose.Decl{
		Name:        "purpose3",
		Description: "Compute the age of the input user",
		Basis:       purpose.BasisConsent,
		Reads:       []string{"user.year_of_birthdate"},
		Produces:    "age_pd",
	}
}

// computeAge is Listing 2 translated to the reproduction's function shape,
// including the "is age allowed to be seen?" guard.
func computeAge() *Func {
	return &Func{
		Name:          "compute_age",
		Purpose:       "purpose3",
		DeclaredReads: []string{"user.year_of_birthdate"},
		Fn: func(c *Ctx) (Output, error) {
			if !c.Has("year_of_birthdate") {
				return Output{}, errors.New("age not visible")
			}
			yob, err := c.Field("year_of_birthdate")
			if err != nil {
				return Output{}, err
			}
			now, err := c.Now()
			if err != nil {
				return Output{}, err
			}
			age := int64(now.Year()) - yob.I
			return Output{NonPD: age}, nil
		},
	}
}

func TestComputeAgeOverType(t *testing.T) {
	e := newEnv(t)
	e.seedUsers(t)
	res, err := e.ded.Run(Invocation{Purpose: purpose3(), Impl: computeAge(), TypeName: "user"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Alice passes (consent view v_ano), Bob is filtered (withdrawn).
	if res.Processed != 1 {
		t.Fatalf("Processed = %d, want 1", res.Processed)
	}
	if res.Filtered["consent-denied"] != 1 {
		t.Fatalf("Filtered = %v", res.Filtered)
	}
	if len(res.Outputs) != 1 || res.Outputs[0].(int64) != 33 { // 2023 - 1990
		t.Fatalf("Outputs = %v", res.Outputs)
	}
	if len(res.DynamicReads) != 1 || res.DynamicReads[0] != "user.year_of_birthdate" {
		t.Fatalf("DynamicReads = %v", res.DynamicReads)
	}
}

func TestViewHidesFields(t *testing.T) {
	e := newEnv(t)
	alice, _ := e.seedUsers(t)
	nosy := &Func{
		Name:    "nosy",
		Purpose: "purpose3",
		Fn: func(c *Ctx) (Output, error) {
			// purpose3's grant is view v_ano: name must be invisible.
			if c.Has("name") {
				return Output{}, errors.New("name visible under v_ano")
			}
			_, err := c.Field("name")
			if !errors.Is(err, ErrFieldHidden) {
				return Output{}, errors.New("Field(name) did not fail")
			}
			return Output{NonPD: true}, nil
		},
	}
	res, err := e.ded.Run(Invocation{Purpose: purpose3(), Impl: nosy, PDRef: alice})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Processed != 1 {
		t.Fatalf("Processed = %d", res.Processed)
	}
	// The attempted access was traced, enabling the dynamic purpose check.
	found := false
	for _, r := range res.DynamicReads {
		if r == "user.name" {
			found = true
		}
	}
	if !found {
		t.Fatalf("hidden-field probe not traced: %v", res.DynamicReads)
	}
}

func TestSandboxBlocksExfiltration(t *testing.T) {
	e := newEnv(t)
	alice, _ := e.seedUsers(t)
	leaky := &Func{
		Name:    "leaky",
		Purpose: "purpose3",
		Fn: func(c *Ctx) (Output, error) {
			if err := c.Env().WriteFile("/tmp/steal", []byte("pd")); err != nil {
				return Output{}, err // propagate the denial
			}
			return Output{NonPD: "leaked"}, nil
		},
	}
	_, err := e.ded.Run(Invocation{Purpose: purpose3(), Impl: leaky, PDRef: alice})
	if err == nil {
		t.Fatal("exfiltrating function succeeded")
	}
	if got := err.Error(); got == "" {
		t.Fatal("empty error")
	}
}

func TestReturnScrubBlocksRawPD(t *testing.T) {
	e := newEnv(t)
	e.seedUsers(t)
	thief := &Func{
		Name:    "thief",
		Purpose: "purpose1", // GrantAll: all fields visible
		Fn: func(c *Ctx) (Output, error) {
			v, err := c.Field("name")
			if err != nil {
				return Output{}, err
			}
			return Output{NonPD: v.S}, nil // raw PD in the non-PD slot
		},
	}
	decl := &purpose.Decl{Name: "purpose1", Description: "full access op",
		Basis: purpose.BasisLegitimateInterest, Reads: []string{"user.name"}}
	_, err := e.ded.Run(Invocation{Purpose: decl, Impl: thief, TypeName: "user", SubjectFilter: "alice"})
	if !errors.Is(err, ErrPDInOutput) {
		t.Fatalf("err = %v, want ErrPDInOutput", err)
	}
}

func TestGeneratedPDGetsMembraneAndRef(t *testing.T) {
	e := newEnv(t)
	alice, _ := e.seedUsers(t)
	// age_pd type must exist for ded_store.
	ageSchema := &dbfs.Schema{
		Name:   "age_pd",
		Fields: []dbfs.Field{{Name: "age", Type: dbfs.TypeInt}},
	}
	if err := e.store.CreateType(e.tok, ageSchema); err != nil {
		t.Fatal(err)
	}
	gen := &Func{
		Name:    "compute_age_pd",
		Purpose: "purpose3",
		Fn: func(c *Ctx) (Output, error) {
			yob, err := c.Field("year_of_birthdate")
			if err != nil {
				return Output{}, err
			}
			return Output{Generated: &GeneratedPD{
				TypeName:  "age_pd",
				SubjectID: c.SubjectID(),
				Fields:    dbfs.Record{"age": dbfs.I(2023 - yob.I)},
			}}, nil
		},
	}
	res, err := e.ded.Run(Invocation{Purpose: purpose3(), Impl: gen, PDRef: alice})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// ded_return gave a reference, not PD.
	if len(res.PDRefs) != 1 || len(res.Outputs) != 0 {
		t.Fatalf("refs/outputs = %v / %v", res.PDRefs, res.Outputs)
	}
	gm, err := e.store.GetMembrane(e.tok, res.PDRefs[0])
	if err != nil {
		t.Fatalf("generated membrane: %v", err)
	}
	if gm.Origin != membrane.OriginDerived {
		t.Fatalf("origin = %v, want derived", gm.Origin)
	}
	if gm.SubjectID != "alice" || gm.TypeName != "age_pd" {
		t.Fatalf("identity = %+v", gm)
	}
	// Derived PD inherits the source's consents (conservative policy).
	if g := gm.Consents["purpose3"]; g.View != "v_ano" {
		t.Fatalf("inherited consents = %+v", gm.Consents)
	}
	// The copy family links source and derived PD.
	fam := e.ded.Ledger().Family(alice)
	if len(fam) != 2 {
		t.Fatalf("family = %v", fam)
	}
}

func TestFilterReasons(t *testing.T) {
	e := newEnv(t)
	alice, bob := e.seedUsers(t)
	// Erase alice, expire nothing yet; bob already lacks consent.
	if _, err := e.store.Erase(e.tok, alice); err != nil {
		t.Fatal(err)
	}
	res, err := e.ded.Run(Invocation{Purpose: purpose3(), Impl: computeAge(), TypeName: "user"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 0 || res.Filtered["erased"] != 1 || res.Filtered["consent-denied"] != 1 {
		t.Fatalf("res = %+v", res)
	}
	_ = bob

	// TTL expiry: advance past 1 year.
	e.clock.Advance(366 * 24 * time.Hour)
	carol, err := e.store.Insert(e.tok, "user", "carol", dbfs.Record{
		"name": dbfs.S("Carol"), "year_of_birthdate": dbfs.I(2000),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = carol
	e.clock.Advance(366 * 24 * time.Hour)
	res, err = e.ded.Run(Invocation{Purpose: purpose3(), Impl: computeAge(), TypeName: "user"})
	if err != nil {
		t.Fatal(err)
	}
	// Both bob (created at epoch; expiry outranks his withdrawn consent in
	// the Decide order) and carol (created a year in) are now expired.
	if res.Filtered["expired"] != 2 {
		t.Fatalf("expired not detected: %+v", res.Filtered)
	}

	// Restriction (Art. 18).
	dave, err := e.store.Insert(e.tok, "user", "dave", dbfs.Record{"name": dbfs.S("Dave"), "year_of_birthdate": dbfs.I(1999)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := e.store.GetMembrane(e.tok, dave)
	m.Restricted = true
	if err := e.store.PutMembrane(e.tok, m); err != nil {
		t.Fatal(err)
	}
	res, err = e.ded.Run(Invocation{Purpose: purpose3(), Impl: computeAge(), PDRef: dave})
	if err != nil {
		t.Fatal(err)
	}
	if res.Filtered["restricted"] != 1 {
		t.Fatalf("restricted not detected: %+v", res.Filtered)
	}
}

func TestMaintenanceBypassesConsent(t *testing.T) {
	e := newEnv(t)
	_, bob := e.seedUsers(t)
	upd := &Func{
		Name:    "update",
		Purpose: "__builtin_update",
		WriteFn: func(w *WriteCtx) error {
			rec, err := w.Record()
			if err != nil {
				return err
			}
			rec["name"] = dbfs.S("Robert")
			return w.Update(rec)
		},
	}
	decl := &purpose.Decl{Name: "__builtin_update", Description: "rectification",
		Basis: purpose.BasisLegalObligation}
	res, err := e.ded.Run(Invocation{Purpose: decl, Impl: upd, PDRef: bob, Maintenance: true})
	if err != nil {
		t.Fatalf("maintenance Run: %v", err)
	}
	if res.Processed != 1 {
		t.Fatalf("Processed = %d", res.Processed)
	}
	rec, err := e.store.GetRecord(e.tok, bob)
	if err != nil {
		t.Fatal(err)
	}
	if rec["name"].S != "Robert" {
		t.Fatalf("rectification lost: %v", rec)
	}
}

func TestWriteCtxCopyAndLedger(t *testing.T) {
	e := newEnv(t)
	alice, _ := e.seedUsers(t)
	var copied string
	cp := &Func{
		Name:    "copy",
		Purpose: "__builtin_copy",
		WriteFn: func(w *WriteCtx) error {
			ref, err := w.Copy()
			copied = ref
			return err
		},
	}
	decl := &purpose.Decl{Name: "__builtin_copy", Description: "copy builtin",
		Basis: purpose.BasisLegalObligation}
	res, err := e.ded.Run(Invocation{Purpose: decl, Impl: cp, PDRef: alice, Maintenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PDRefs) != 1 || res.PDRefs[0] != copied {
		t.Fatalf("PDRefs = %v, copied = %q", res.PDRefs, copied)
	}
	// The copy's membrane traces provenance and shares consents.
	cm, err := e.store.GetMembrane(e.tok, copied)
	if err != nil {
		t.Fatal(err)
	}
	if cm.CopyOf != alice {
		t.Fatalf("CopyOf = %q, want %q", cm.CopyOf, alice)
	}
	fam := e.ded.Ledger().Family(alice)
	if len(fam) != 2 {
		t.Fatalf("family = %v", fam)
	}
	// The copied record's data matches.
	rec, err := e.store.GetRecord(e.tok, copied)
	if err != nil {
		t.Fatal(err)
	}
	if rec["name"].S != "Alice" {
		t.Fatalf("copied record = %v", rec)
	}
}

func TestWriteCtxEraseAndConsent(t *testing.T) {
	e := newEnv(t)
	alice, _ := e.seedUsers(t)
	decl := &purpose.Decl{Name: "__builtin_delete", Description: "right to be forgotten",
		Basis: purpose.BasisLegalObligation}
	var escrow string
	erase := &Func{
		Name:    "delete",
		Purpose: "__builtin_delete",
		WriteFn: func(w *WriteCtx) error {
			ref, err := w.Erase()
			escrow = ref
			return err
		},
	}
	if _, err := e.ded.Run(Invocation{Purpose: decl, Impl: erase, PDRef: alice, Maintenance: true}); err != nil {
		t.Fatal(err)
	}
	if escrow == "" {
		t.Fatal("no escrow ref")
	}
	m, err := e.store.GetMembrane(e.tok, alice)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Erased || m.EscrowRef != escrow {
		t.Fatalf("membrane = %+v", m)
	}
	// Audit captured the erasure.
	kinds := e.log.CountByKind()
	if kinds[audit.KindErasure] != 1 {
		t.Fatalf("audit kinds = %v", kinds)
	}
}

func TestInvocationValidation(t *testing.T) {
	e := newEnv(t)
	e.seedUsers(t)
	p := purpose3()
	if _, err := e.ded.Run(Invocation{Purpose: p, Impl: computeAge()}); !errors.Is(err, ErrNoTarget) {
		t.Fatalf("no target err = %v", err)
	}
	if _, err := e.ded.Run(Invocation{Impl: computeAge(), TypeName: "user"}); !errors.Is(err, ErrNotFunc) {
		t.Fatalf("no purpose err = %v", err)
	}
	if _, err := e.ded.Run(Invocation{Purpose: p, TypeName: "user"}); !errors.Is(err, ErrNotFunc) {
		t.Fatalf("no impl err = %v", err)
	}
	both := &Func{Name: "x", Purpose: "p",
		Fn:      func(*Ctx) (Output, error) { return Output{}, nil },
		WriteFn: func(*WriteCtx) error { return nil },
	}
	if _, err := e.ded.Run(Invocation{Purpose: p, Impl: both, TypeName: "user"}); !errors.Is(err, ErrNotFunc) {
		t.Fatalf("both bodies err = %v", err)
	}
}

func TestSubjectFilterTargeting(t *testing.T) {
	e := newEnv(t)
	e.seedUsers(t)
	decl := &purpose.Decl{Name: "purpose1", Description: "op", Basis: purpose.BasisLegitimateInterest}
	count := &Func{
		Name:    "count",
		Purpose: "purpose1",
		Fn:      func(c *Ctx) (Output, error) { return Output{NonPD: 1}, nil },
	}
	res, err := e.ded.Run(Invocation{Purpose: decl, Impl: count, TypeName: "user", SubjectFilter: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 1 {
		t.Fatalf("Processed = %d, want only alice", res.Processed)
	}
}

func TestAuditTrailOfRun(t *testing.T) {
	e := newEnv(t)
	e.seedUsers(t)
	if _, err := e.ded.Run(Invocation{Purpose: purpose3(), Impl: computeAge(), TypeName: "user"}); err != nil {
		t.Fatal(err)
	}
	if err := e.log.Verify(); err != nil {
		t.Fatalf("audit chain: %v", err)
	}
	kinds := e.log.CountByKind()
	if kinds[audit.KindProcessing] != 1 || kinds[audit.KindDenial] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
	// Per-PD query (the §4 right-of-access path) sees the processing.
	byPD := e.log.ByPD("user/alice/1")
	if len(byPD) != 1 || byPD[0].Purpose != "purpose3" {
		t.Fatalf("ByPD = %+v", byPD)
	}
}

func TestStageTimingsPopulated(t *testing.T) {
	e := newEnv(t)
	e.seedUsers(t)
	res, err := e.ded.Run(Invocation{Purpose: purpose3(), Impl: computeAge(), TypeName: "user"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.Total() <= 0 {
		t.Fatalf("timings = %+v", res.Timings)
	}
}
