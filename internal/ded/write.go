package ded

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/dbfs"
	"repro/internal/membrane"
)

// WriteCtx is the controlled mutation surface handed to F_pd^w functions —
// the built-ins natively provided by rgpdOS (update, delete, copy,
// acquisition). Each instance is bound to one admitted record; every
// mutation keeps the membrane invariant (rule 3) and flows through the
// DED's DBFS token, so built-ins enjoy no path around the enforcement
// architecture.
type WriteCtx struct {
	d    *DED
	inv  *Invocation
	pdid string
	m    *membrane.Membrane

	generated []string
}

// PDID identifies the record being mutated.
func (w *WriteCtx) PDID() string { return w.pdid }

// SubjectID identifies the data subject.
func (w *WriteCtx) SubjectID() string { return w.m.SubjectID }

// Membrane returns a copy of the record's membrane as admitted by
// ded_filter (a snapshot; consent mutations below re-read the stored state
// atomically rather than writing this snapshot back).
func (w *WriteCtx) Membrane() *membrane.Membrane { return w.m.Clone() }

// Params returns the operator-supplied arguments of the invocation.
func (w *WriteCtx) Params() map[string]any { return w.inv.Params }

// Record loads the record's current fields.
func (w *WriteCtx) Record() (dbfs.Record, error) {
	return w.d.store.GetRecord(w.d.tok, w.pdid)
}

// Update replaces the record's fields (the update builtin; also the
// rectification right).
func (w *WriteCtx) Update(rec dbfs.Record) error {
	if err := w.d.store.Update(w.d.tok, w.pdid, rec); err != nil {
		return err
	}
	w.d.log.Append(audit.KindProcessing, w.inv.Purpose.Name, w.pdid, w.m.SubjectID, "ok", "update")
	return nil
}

// Copy duplicates the record for the same subject. The copy's membrane is
// derived with CloneForCopy and the family is registered in the ledger so
// consent changes and erasures reach every copy — the paper's membrane
// consistency obligation for the copy builtin.
func (w *WriteCtx) Copy() (string, error) {
	rec, err := w.Record()
	if err != nil {
		return "", err
	}
	cm := w.m.CloneForCopy("pending") // identity fixed by Insert
	ref, err := w.d.store.Insert(w.d.tok, w.m.TypeName, w.m.SubjectID, rec, cm)
	if err != nil {
		return "", fmt.Errorf("ded: copy %s: %w", w.pdid, err)
	}
	w.d.ledger.RegisterCopy(w.pdid, ref)
	w.generated = append(w.generated, ref)
	w.d.log.Append(audit.KindProcessing, w.inv.Purpose.Name, w.pdid, w.m.SubjectID, "ok", "copy -> "+ref)
	return ref, nil
}

// Erase crypto-shreds the record with authority escrow and tombstones its
// membrane (the delete builtin implementing the right to be forgotten, §4).
func (w *WriteCtx) Erase() (string, error) {
	ref, err := w.d.store.Erase(w.d.tok, w.pdid)
	if err != nil {
		return "", err
	}
	w.d.log.Append(audit.KindErasure, w.inv.Purpose.Name, w.pdid, w.m.SubjectID, "ok", "escrow="+ref)
	return ref, nil
}

// Delete physically removes the record (retention-expired cleanup).
func (w *WriteCtx) Delete() error {
	if err := w.d.store.Delete(w.d.tok, w.pdid); err != nil {
		return err
	}
	w.d.log.Append(audit.KindErasure, w.inv.Purpose.Name, w.pdid, w.m.SubjectID, "ok", "deleted")
	return nil
}

// SetConsent records a consent decision on the membrane. The mutation is
// an atomic read-modify-write of the stored membrane, so concurrent
// consent changes on the same record compose instead of overwriting each
// other with stale snapshots.
func (w *WriteCtx) SetConsent(purposeName string, g membrane.Grant) error {
	m, err := w.d.store.MutateMembrane(w.d.tok, w.pdid, func(m *membrane.Membrane) error {
		m.SetConsent(purposeName, g)
		return nil
	})
	if err != nil {
		return err
	}
	w.m = m
	w.d.log.Append(audit.KindConsentChange, purposeName, w.pdid, w.m.SubjectID, "ok", "grant="+g.String())
	return nil
}

// WithdrawConsent revokes a purpose's grant (Art. 7(3)).
func (w *WriteCtx) WithdrawConsent(purposeName string) error {
	m, err := w.d.store.MutateMembrane(w.d.tok, w.pdid, func(m *membrane.Membrane) error {
		m.WithdrawConsent(purposeName)
		return nil
	})
	if err != nil {
		return err
	}
	w.m = m
	w.d.log.Append(audit.KindConsentChange, purposeName, w.pdid, w.m.SubjectID, "ok", "withdrawn")
	return nil
}

// SetRestricted toggles the Art. 18 restriction flag.
func (w *WriteCtx) SetRestricted(restricted bool) error {
	m, err := w.d.store.MutateMembrane(w.d.tok, w.pdid, func(m *membrane.Membrane) error {
		m.Restricted = restricted
		m.Version++
		return nil
	})
	if err != nil {
		return err
	}
	w.m = m
	w.d.log.Append(audit.KindConsentChange, w.inv.Purpose.Name, w.pdid, w.m.SubjectID, "ok",
		fmt.Sprintf("restricted=%t", restricted))
	return nil
}
