// Package ded implements the Data Execution Domain, the third component of
// rgpdOS (§2): "Any F_pd function is always executed as an instance of the
// DED, an environment that ensures GDPR compliance on manipulated PD."
//
// A DED run follows the paper's eight named steps:
//
//	ded_type2req       translate the input PD/type reference into DBFS requests
//	ded_load_membrane  fetch the membranes of the involved PD first
//	ded_filter         keep only PD whose membrane approves the purpose
//	ded_load_data      fetch the data for the surviving PD
//	ded_execute        run the processing on the fetched data
//	ded_build_membrane wrap any generated PD in a membrane
//	ded_store          persist generated PD in DBFS
//	ded_return         return non-PD values and references to PD — never PD
//
// Execution is data-centric (Idea 2): for each invocation, the records are
// staged into a kernel.Domain owned by the PD, the function runs against
// that domain under a seccomp-style sandbox profile, and the domain is
// zeroized when the DED completes, so no stale reference can reach another
// subject's bytes. Field accesses are traced and compared against the
// purpose declaration, providing the dynamic half of the §3(4)
// purpose-matching check.
package ded

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/dbfs"
	"repro/internal/lsm"
	"repro/internal/membrane"
	"repro/internal/purpose"
	"repro/internal/sandbox"
	"repro/internal/simclock"
)

// Sentinel errors.
var (
	// ErrNoTarget reports an invocation with neither a PD ref nor a type.
	ErrNoTarget = errors.New("ded: invocation has no PD reference or type")
	// ErrNotFunc reports an invocation whose implementation has no body.
	ErrNotFunc = errors.New("ded: implementation has no function body")
	// ErrFieldHidden re-exports the view violation for Ctx.Field callers.
	ErrFieldHidden = dbfs.ErrFieldHidden
	// ErrPDInOutput reports a processing returning raw PD in its non-PD
	// output slot (caught by the return-scrubbing check).
	ErrPDInOutput = errors.New("ded: processing attempted to return raw personal data")
)

// Output is what an F_pd^r function produces for one record.
type Output struct {
	// NonPD is a non-personal result handed back to the caller (counts,
	// booleans, aggregates). The DED scrubs it: if it matches a raw field
	// value of the record, the run fails with ErrPDInOutput.
	NonPD any
	// Generated, if non-nil, is a new piece of PD produced by the
	// processing; the DED wraps it in a membrane (ded_build_membrane),
	// stores it (ded_store) and returns only its reference.
	Generated *GeneratedPD
}

// GeneratedPD describes PD produced by a processing.
type GeneratedPD struct {
	TypeName  string
	SubjectID string
	Fields    dbfs.Record
}

// Ctx is the window an F_pd^r function gets onto one PD record: only the
// fields exposed by the granted view are reachable, every access is traced,
// and all side effects must go through the sandboxed Env.
type Ctx struct {
	env       *sandbox.Env
	clock     simclock.Clock
	pdid      string
	typeName  string
	subjectID string
	view      dbfs.Record

	mu       sync.Mutex
	accessed map[string]bool
}

// PDID identifies the record being processed.
func (c *Ctx) PDID() string { return c.pdid }

// SubjectID identifies the data subject.
func (c *Ctx) SubjectID() string { return c.subjectID }

// TypeName is the record's PD type.
func (c *Ctx) TypeName() string { return c.typeName }

// Env exposes the sandboxed effect surface.
func (c *Ctx) Env() *sandbox.Env { return c.env }

// Now returns the current instant, mediated as a gettime syscall (Listing 2
// needs current_year()).
func (c *Ctx) Now() (time.Time, error) {
	if err := c.env.Now(); err != nil {
		return time.Time{}, err
	}
	return c.clock.Now(), nil
}

// Has reports whether a field is visible under the granted view — Listing
// 2's "is age allowed to be seen?" check. The probe is traced like a read.
func (c *Ctx) Has(field string) bool {
	c.trace(field)
	_, ok := c.view[field]
	return ok
}

// Field returns a visible field's value; fields outside the granted view
// yield ErrFieldHidden.
func (c *Ctx) Field(field string) (dbfs.Value, error) {
	c.trace(field)
	v, ok := c.view[field]
	if !ok {
		return dbfs.Value{}, fmt.Errorf("%w: %q on %s", ErrFieldHidden, field, c.pdid)
	}
	return v, nil
}

func (c *Ctx) trace(field string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accessed[c.typeName+"."+field] = true
}

func (c *Ctx) accessedRefs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.accessed))
	for ref := range c.accessed {
		out = append(out, ref)
	}
	sort.Strings(out)
	return out
}

// Func is the implementation half of a data processing. Exactly one of Fn
// (F_pd^r, developer-written) or WriteFn (F_pd^w, natively provided by
// rgpdOS) must be set.
type Func struct {
	// Name identifies the implementation.
	Name string
	// Purpose names the purpose this function implements; "every F_pd
	// function is the implementation of a unique data processing purpose".
	Purpose string
	// DeclaredReads lists the "type.field" references the implementation
	// statically declares; the PS checks them against the purpose at
	// registration, the DED verifies them dynamically.
	DeclaredReads []string
	// Fn is the read-only processing body.
	Fn func(*Ctx) (Output, error)
	// WriteFn is the state-mutating body used by built-in functions.
	WriteFn func(*WriteCtx) error
}

// Validate checks the function shape.
func (f *Func) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("%w: unnamed function", ErrNotFunc)
	}
	if (f.Fn == nil) == (f.WriteFn == nil) {
		return fmt.Errorf("%w: %q must set exactly one of Fn/WriteFn", ErrNotFunc, f.Name)
	}
	return nil
}

// Invocation is one ps_invoke request lowered to the DED.
type Invocation struct {
	// Purpose is the declared purpose being exercised.
	Purpose *purpose.Decl
	// Impl is the registered implementation.
	Impl *Func
	// PDRef targets one record; when empty, TypeName targets all records
	// of a type (ded_type2req expands it).
	PDRef    string
	TypeName string
	// SubjectFilter optionally restricts the expansion to one subject.
	SubjectFilter string
	// Params carries operator-supplied arguments to write builtins
	// (e.g. replacement field values for update).
	Params map[string]any
	// Maintenance marks runs executing a data-subject right or legal
	// obligation: the membrane's consent/TTL checks are bypassed (the
	// legal basis is the request itself), while identity checks remain.
	Maintenance bool
}

// StageTimings records wall-clock time per pipeline stage (measurement
// instrumentation for the F4P experiment; not simulation state).
type StageTimings struct {
	Type2Req      time.Duration
	LoadMembrane  time.Duration
	Filter        time.Duration
	LoadData      time.Duration
	Execute       time.Duration
	BuildMembrane time.Duration
	Store         time.Duration
	Return        time.Duration
}

// Total sums the stage timings.
func (st StageTimings) Total() time.Duration {
	return st.Type2Req + st.LoadMembrane + st.Filter + st.LoadData +
		st.Execute + st.BuildMembrane + st.Store + st.Return
}

// Result is what ded_return hands back: non-PD values and PD references
// only.
type Result struct {
	// Outputs collects the non-PD outputs of each processed record.
	Outputs []any
	// PDRefs references PD generated by the processing.
	PDRefs []string
	// Processed counts records that passed the filter and were executed.
	Processed int
	// Filtered counts records rejected by their membranes, by reason.
	Filtered map[string]int
	// DynamicReads lists the observed "type.field" accesses.
	DynamicReads []string
	// Timings breaks the run down by pipeline stage.
	Timings StageTimings
}

// DED executes invocations against DBFS. It holds the CapDBFS token —
// enforcement rule 4: "DED is the only component that is able to access
// DBFS directly".
//
// A DED is safe for concurrent use: each Run stages its records into a
// private zeroized kernel.Domain, and DBFS serializes per-subject state
// behind subject-sharded locks, so invocations for distinct subjects
// execute in parallel (see RunBatch).
type DED struct {
	store  *dbfs.Store
	tok    *lsm.Token
	log    *audit.Log
	clock  simclock.Clock
	ledger *membrane.Ledger

	invSeq atomic.Uint64
}

// New wires a DED. The token must carry lsm.CapDBFS (minted by the kernel
// at boot); the ledger tracks copy families for consent propagation.
func New(store *dbfs.Store, tok *lsm.Token, log *audit.Log, ledger *membrane.Ledger, clock simclock.Clock) *DED {
	if clock == nil {
		clock = simclock.Real{}
	}
	if ledger == nil {
		ledger = membrane.NewLedger()
	}
	return &DED{store: store, tok: tok, log: log, clock: clock, ledger: ledger}
}

// Ledger exposes the copy ledger (used by the rights engine).
func (d *DED) Ledger() *membrane.Ledger { return d.ledger }

// Store exposes the underlying DBFS for components that legitimately run
// inside the DED's trust domain (the rights engine); external callers have
// no token and are rejected by DBFS anyway.
func (d *DED) Store() *dbfs.Store { return d.store }

// Token returns the DED's DBFS capability (needed by in-domain components).
func (d *DED) Token() *lsm.Token { return d.tok }

// expandTargets implements ded_type2req.
func (d *DED) expandTargets(inv Invocation) ([]string, error) {
	if inv.PDRef != "" {
		return []string{inv.PDRef}, nil
	}
	if inv.TypeName == "" {
		return nil, ErrNoTarget
	}
	if inv.SubjectFilter != "" {
		all, err := d.store.ListBySubject(d.tok, inv.SubjectFilter)
		if err != nil {
			return nil, err
		}
		var out []string
		for _, pdid := range all {
			if ty, _, _, err := dbfs.SplitPDID(pdid); err == nil && ty == inv.TypeName {
				out = append(out, pdid)
			}
		}
		return out, nil
	}
	return d.store.ListByType(d.tok, inv.TypeName)
}

// decide applies the membrane decision, honoring maintenance mode.
func (d *DED) decide(m *membrane.Membrane, inv Invocation, now time.Time) (membrane.Grant, error) {
	if inv.Maintenance {
		// Rights execution: the membrane's consent matrix does not gate a
		// legal obligation, but identity still must match.
		return membrane.Grant{Kind: membrane.GrantAll}, nil
	}
	return m.Decide(inv.Purpose.Name, now)
}

// buildMembrane implements ded_build_membrane for generated PD: derived
// origin, inherited consents, TTL and sensitivity from the source membrane
// (the conservative policy: derived data is no more permissive than its
// source).
func (d *DED) buildMembrane(g *GeneratedPD, src *membrane.Membrane, now time.Time) *membrane.Membrane {
	gm := membrane.New("", g.TypeName, g.SubjectID) // identity fixed by Insert
	gm.PDID = "pending"                             // placeholder; Insert overrides
	gm.Origin = membrane.OriginDerived
	gm.Sensitivity = src.Sensitivity
	gm.TTL = src.TTL
	gm.CreatedAt = now
	for p, grant := range src.Consents {
		gm.Consents[p] = grant
	}
	return gm
}

// scrubOutput is the ded_return guard: a non-PD output that equals a raw
// string field value of the processed view is treated as attempted PD
// leakage. (Heuristic, like any taint check; the paper's stronger answer is
// the F_npd/F_pd split itself.)
func scrubOutput(out any, view dbfs.Record) error {
	s, ok := out.(string)
	if !ok || s == "" {
		return nil
	}
	for name, v := range view {
		if v.Type == dbfs.TypeString && v.S == s {
			return fmt.Errorf("%w: output equals field %q", ErrPDInOutput, name)
		}
	}
	return nil
}

func filterReason(err error) string {
	switch {
	case errors.Is(err, membrane.ErrErased):
		return "erased"
	case errors.Is(err, membrane.ErrRestricted):
		return "restricted"
	case errors.Is(err, membrane.ErrExpired):
		return "expired"
	case errors.Is(err, membrane.ErrConsentDenied):
		return "consent-denied"
	default:
		return "other"
	}
}

// candidate pairs a pdid with its loaded membrane (post ded_load_membrane).
type candidate struct {
	pdid string
	m    *membrane.Membrane
}

// admitted is a candidate that passed ded_filter, with its granted view.
type admitted struct {
	pdid  string
	m     *membrane.Membrane
	grant membrane.Grant
}

// loaded is an admitted record with its view-projected data.
type loaded struct {
	admitted
	view dbfs.Record
}

// schemaName picks the schema to project with: the invocation type, or the
// type of the first admitted record for single-PD invocations.
func schemaName(inv Invocation, pass []admitted) string {
	if inv.TypeName != "" {
		return inv.TypeName
	}
	if len(pass) > 0 {
		return pass[0].m.TypeName
	}
	if ty, _, _, err := dbfs.SplitPDID(inv.PDRef); err == nil {
		return ty
	}
	return ""
}

func keysSorted(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
