package ded

// The eight ded_* steps of a DED run as an explicit pipeline: each stage is
// a named function over the run's state, and Run drives the stage list,
// timing every step into Result.Timings. Keeping the stages first-class
// (rather than one long function body) is what lets the executor reason
// about runs uniformly — RunBatch schedules whole pipelines across workers,
// and instrumentation/auditing hooks attach per stage.

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/audit"
	"repro/internal/dbfs"
	"repro/internal/kernel"
	"repro/internal/sandbox"
)

// runState carries one invocation through the pipeline. Each stage consumes
// the fields earlier stages produced.
type runState struct {
	inv   Invocation
	invID uint64
	now   time.Time
	res   *Result

	pdids      []string        // after ded_type2req
	candidates []candidate     // after ded_load_membrane
	pass       []admitted      // after ded_filter
	sch        *dbfs.Schema    // after ded_load_data
	rows       []loaded        // after ded_load_data
	outputs    []Output        // after ded_execute
	dynamic    map[string]bool // observed reads, after ded_execute
}

// stage is one named pipeline step. timing selects the StageTimings slot the
// driver accumulates into; stages that split their own time across several
// slots (build_membrane + store) leave it nil and account internally.
type stage struct {
	name   string
	timing func(*StageTimings) *time.Duration
	run    func(*DED, *runState) error
}

// readPipeline is the full eight-step pipeline for F_pd^r processings.
var readPipeline = []stage{
	{"ded_type2req", func(t *StageTimings) *time.Duration { return &t.Type2Req }, (*DED).stageType2Req},
	{"ded_load_membrane", func(t *StageTimings) *time.Duration { return &t.LoadMembrane }, (*DED).stageLoadMembrane},
	{"ded_filter", func(t *StageTimings) *time.Duration { return &t.Filter }, (*DED).stageFilter},
	{"ded_load_data", func(t *StageTimings) *time.Duration { return &t.LoadData }, (*DED).stageLoadData},
	{"ded_execute", func(t *StageTimings) *time.Duration { return &t.Execute }, (*DED).stageExecute},
	{"ded_build_membrane+ded_store", nil, (*DED).stageBuildAndStore},
	{"ded_return", func(t *StageTimings) *time.Duration { return &t.Return }, (*DED).stageReturn},
}

// writePipeline is the F_pd^w variant: ded_load_data and ded_execute merge
// (built-ins load what they need through their WriteCtx), and generated refs
// flow to ded_return as usual.
var writePipeline = []stage{
	{"ded_type2req", func(t *StageTimings) *time.Duration { return &t.Type2Req }, (*DED).stageType2Req},
	{"ded_load_membrane", func(t *StageTimings) *time.Duration { return &t.LoadMembrane }, (*DED).stageLoadMembrane},
	{"ded_filter", func(t *StageTimings) *time.Duration { return &t.Filter }, (*DED).stageFilter},
	{"ded_execute", func(t *StageTimings) *time.Duration { return &t.Execute }, (*DED).stageWriteExecute},
}

// Run executes one invocation through the eight-stage pipeline.
func (d *DED) Run(inv Invocation) (*Result, error) {
	if inv.Purpose == nil {
		return nil, fmt.Errorf("%w: invocation without purpose", ErrNotFunc)
	}
	if inv.Impl == nil {
		return nil, fmt.Errorf("%w: invocation without implementation", ErrNotFunc)
	}
	if err := inv.Impl.Validate(); err != nil {
		return nil, err
	}
	st := &runState{
		inv:   inv,
		invID: d.invSeq.Add(1),
		now:   d.clock.Now(),
		res:   &Result{Filtered: make(map[string]int)},
	}
	pipe := readPipeline
	if inv.Impl.WriteFn != nil {
		pipe = writePipeline
	}
	for _, stg := range pipe {
		start := time.Now()
		err := stg.run(d, st)
		if stg.timing != nil {
			*stg.timing(&st.res.Timings) += time.Since(start)
		}
		if err != nil {
			return nil, err
		}
	}
	return st.res, nil
}

// stageType2Req translates the input PD/type reference into DBFS requests.
func (d *DED) stageType2Req(st *runState) error {
	pdids, err := d.expandTargets(st.inv)
	if err != nil {
		return err
	}
	st.pdids = pdids
	return nil
}

// stageLoadMembrane fetches the membranes of the involved PD first — as one
// batch, so DBFS takes each subject-shard lock once per invocation instead
// of once per record (and serves repeat fetches from its membrane cache).
func (d *DED) stageLoadMembrane(st *runState) error {
	ms, err := d.store.GetMembranes(d.tok, st.pdids)
	if err != nil {
		return fmt.Errorf("ded: load membrane: %w", err)
	}
	st.candidates = make([]candidate, 0, len(st.pdids))
	for i, pdid := range st.pdids {
		st.candidates = append(st.candidates, candidate{pdid: pdid, m: ms[i]})
	}
	return nil
}

// stageFilter keeps only PD whose membrane approves the purpose.
func (d *DED) stageFilter(st *runState) error {
	for _, c := range st.candidates {
		grant, err := d.decide(c.m, st.inv, st.now)
		if err != nil {
			st.res.Filtered[filterReason(err)]++
			d.log.Append(audit.KindDenial, st.inv.Purpose.Name, c.pdid, c.m.SubjectID, "filtered", err.Error())
			continue
		}
		st.pass = append(st.pass, admitted{pdid: c.pdid, m: c.m, grant: grant})
	}
	return nil
}

// stageLoadData fetches the data for the surviving PD and projects the
// granted views.
func (d *DED) stageLoadData(st *runState) error {
	if len(st.pass) > 0 {
		sch, err := d.store.SchemaOf(d.tok, schemaName(st.inv, st.pass))
		if err != nil {
			return err
		}
		st.sch = sch
	}
	for _, a := range st.pass {
		rec, err := d.store.GetRecord(d.tok, a.pdid)
		if err != nil {
			return fmt.Errorf("ded: load data %s: %w", a.pdid, err)
		}
		view, err := dbfs.ProjectView(st.sch, rec, a.grant)
		if err != nil {
			return fmt.Errorf("ded: project %s: %w", a.pdid, err)
		}
		st.rows = append(st.rows, loaded{admitted: a, view: view})
	}
	return nil
}

// stageExecute runs the processing on the fetched data inside a zeroized
// kernel domain under the sandbox profile.
func (d *DED) stageExecute(st *runState) error {
	domain := kernel.NewDomain("ded-" + strconv.FormatUint(st.invID, 10))
	defer domain.Zeroize()
	monitor := sandbox.NewMonitor(sandbox.DEDProfile())
	env := sandbox.NewEnv(monitor)
	st.dynamic = make(map[string]bool)
	for _, row := range st.rows {
		// Stage the record into the PD's domain: the function executes in
		// the data's world, not its own (Idea 2).
		if err := domain.Put(row.pdid, []byte(fmt.Sprint(row.view))); err != nil {
			return err
		}
		ctx := &Ctx{
			env:       env,
			clock:     d.clock,
			pdid:      row.pdid,
			typeName:  row.m.TypeName,
			subjectID: row.m.SubjectID,
			view:      row.view,
			accessed:  make(map[string]bool),
		}
		out, err := st.inv.Impl.Fn(ctx)
		for _, ref := range ctx.accessedRefs() {
			st.dynamic[ref] = true
		}
		if err != nil {
			d.log.Append(audit.KindProcessing, st.inv.Purpose.Name, row.pdid, row.m.SubjectID, "error", err.Error())
			return fmt.Errorf("ded: execute %s on %s: %w", st.inv.Impl.Name, row.pdid, err)
		}
		if err := scrubOutput(out.NonPD, row.view); err != nil {
			d.log.Append(audit.KindAlert, st.inv.Purpose.Name, row.pdid, row.m.SubjectID, "blocked", err.Error())
			return err
		}
		st.outputs = append(st.outputs, out)
		st.res.Processed++
		d.log.Append(audit.KindProcessing, st.inv.Purpose.Name, row.pdid, row.m.SubjectID, "ok", st.inv.Impl.Name)
	}
	return nil
}

// stageBuildAndStore wraps any generated PD in a membrane (ded_build_membrane)
// and persists it in DBFS (ded_store), splitting its own time across the two
// timing slots.
func (d *DED) stageBuildAndStore(st *runState) error {
	for i, out := range st.outputs {
		if out.NonPD != nil {
			st.res.Outputs = append(st.res.Outputs, out.NonPD)
		}
		if out.Generated == nil {
			continue
		}
		bmStart := time.Now()
		src := st.rows[i].m
		gm := d.buildMembrane(out.Generated, src, st.now)
		st.res.Timings.BuildMembrane += time.Since(bmStart)

		stStart := time.Now()
		ref, err := d.store.Insert(d.tok, out.Generated.TypeName, out.Generated.SubjectID, out.Generated.Fields, gm)
		if err != nil {
			return fmt.Errorf("ded: store generated PD: %w", err)
		}
		d.ledger.RegisterCopy(st.rows[i].pdid, ref)
		st.res.PDRefs = append(st.res.PDRefs, ref)
		st.res.Timings.Store += time.Since(stStart)
	}
	return nil
}

// stageReturn hands back non-PD values and references to PD — never PD.
func (d *DED) stageReturn(st *runState) error {
	st.res.DynamicReads = keysSorted(st.dynamic)
	return nil
}

// stageWriteExecute is the F_pd^w tail of the pipeline: per admitted record,
// the builtin mutates DBFS through its WriteCtx.
func (d *DED) stageWriteExecute(st *runState) error {
	for _, a := range st.pass {
		w := &WriteCtx{d: d, inv: &st.inv, pdid: a.pdid, m: a.m.Clone()}
		if err := st.inv.Impl.WriteFn(w); err != nil {
			d.log.Append(audit.KindProcessing, st.inv.Purpose.Name, a.pdid, a.m.SubjectID, "error", err.Error())
			return fmt.Errorf("ded: %s on %s: %w", st.inv.Impl.Name, a.pdid, err)
		}
		st.res.PDRefs = append(st.res.PDRefs, w.generated...)
		st.res.Processed++
	}
	return nil
}
