package admission

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/simclock"
)

func TestQueueBound(t *testing.T) {
	c := New(Options{MaxPending: 2})
	r1, err := c.Admit("p")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Admit("p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit("p"); !errors.Is(err, ErrQueueFull) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third admit err = %v, want ErrQueueFull wrapping ErrOverloaded", err)
	}
	st := c.Snapshot()
	if st.Depth != 2 || st.PeakDepth != 2 || st.Admitted != 2 || st.RejectedQueue != 1 {
		t.Fatalf("stats = %+v", st)
	}
	r1(3 * time.Millisecond)
	if _, err := c.Admit("p"); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	r2(5 * time.Millisecond)
	st = c.Snapshot()
	if st.Depth != 1 || st.Completed != 2 {
		t.Fatalf("stats after releases = %+v", st)
	}
	if st.LatencyTotal != 8*time.Millisecond || st.LatencyMax != 5*time.Millisecond {
		t.Fatalf("latency counters = total %v max %v", st.LatencyTotal, st.LatencyMax)
	}
}

func TestUnboundedNeverRejectsOnDepth(t *testing.T) {
	c := New(Options{})
	for i := 0; i < 100; i++ {
		if _, err := c.Admit("p"); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	st := c.Snapshot()
	if st.Depth != 100 || st.PeakDepth != 100 || st.Rejected() != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTokenBucketRefill(t *testing.T) {
	clk := simclock.NewSim(simclock.Epoch)
	c := New(Options{Clock: clk})
	c.SetPurposeLimit("scoring", 10, 2) // 10/sec, burst 2

	// The bucket starts full: the burst is admitted, the next is not.
	for i := 0; i < 2; i++ {
		if _, err := c.Admit("scoring"); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	if _, err := c.Admit("scoring"); !errors.Is(err, ErrRateLimited) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-burst err = %v, want ErrRateLimited wrapping ErrOverloaded", err)
	}

	// 100ms at 10/sec refills exactly one token.
	clk.Advance(100 * time.Millisecond)
	if _, err := c.Admit("scoring"); err != nil {
		t.Fatalf("post-refill admit: %v", err)
	}
	if _, err := c.Admit("scoring"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second post-refill admit err = %v", err)
	}

	// Refill caps at the burst, no matter how long the idle gap.
	clk.Advance(time.Hour)
	for i := 0; i < 2; i++ {
		if _, err := c.Admit("scoring"); err != nil {
			t.Fatalf("capped-burst admit %d: %v", i, err)
		}
	}
	if _, err := c.Admit("scoring"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-capped-burst err = %v", err)
	}

	// Other purposes are unlimited.
	if _, err := c.Admit("other"); err != nil {
		t.Fatalf("unlimited purpose: %v", err)
	}
	st := c.Snapshot()
	if st.RejectedRate != 3 {
		t.Fatalf("RejectedRate = %d, want 3", st.RejectedRate)
	}
}

func TestQueueRejectionKeepsToken(t *testing.T) {
	clk := simclock.NewSim(simclock.Epoch)
	c := New(Options{MaxPending: 1, Clock: clk})
	c.SetPurposeLimit("p", 1, 1)
	rel, err := c.Admit("p")
	if err != nil {
		t.Fatal(err)
	}
	// Bucket refills while the queue is full; the queue rejection must not
	// consume the refilled token.
	clk.Advance(2 * time.Second)
	if _, err := c.Admit("p"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full-queue err = %v, want ErrQueueFull", err)
	}
	rel(0)
	if _, err := c.Admit("p"); err != nil {
		t.Fatalf("admit after drain should spend the kept token: %v", err)
	}
}

func TestRemoveLimit(t *testing.T) {
	c := New(Options{Clock: simclock.NewSim(simclock.Epoch)})
	c.SetPurposeLimit("p", 1, 1)
	if _, err := c.Admit("p"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit("p"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v", err)
	}
	c.SetPurposeLimit("p", 0, 0) // rate <= 0 removes the bucket
	for i := 0; i < 10; i++ {
		if _, err := c.Admit("p"); err != nil {
			t.Fatalf("admit %d after removal: %v", i, err)
		}
	}
}

func TestQuantileClampsQ(t *testing.T) {
	// A populated histogram: 100 completions in bucket 3 ([8,16)us), 10 in
	// bucket 6 ([64,128)us). Bucket upper bounds: 16us and 128us.
	var s Stats
	s.LatencyHist[3] = 100
	s.LatencyHist[6] = 10
	s.LatencyMax = 100 * time.Microsecond
	lo := 16 * time.Microsecond
	hi := 128 * time.Microsecond
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{-1, lo},         // below range clamps to 0
		{0, lo},          // first bucket's upper bound
		{0.5, lo},        // rank 55 of 110 still in bucket 3
		{0.99, hi},       // rank 108 lands in bucket 6
		{1, hi},          // clamps to the last recorded sample
		{2, hi},          // above range clamps to 1
		{math.NaN(), lo}, // NaN counts as 0, never implementation-defined
	} {
		if got := s.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Empty stats stay zero whatever q is.
	var empty Stats
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2, math.NaN()} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}
