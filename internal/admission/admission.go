// Package admission implements load control for the Processing Store —
// the "heavy traffic" half of the north star. rgpdOS's GDPR guarantees are
// runtime properties: purposes are only enforced on invocations that
// actually execute, and retention deadlines are only met if the machine is
// not drowning in a backlog. The admission controller therefore bounds
// what ps_invoke accepts instead of queueing without limit, and rejects
// the excess explicitly — a rejected invocation is a visible, typed
// outcome the caller can retry, never a silent drop and never an unbounded
// latency tail.
//
// Two mechanisms compose, both checked at submission time:
//
//   - a bounded admission queue: at most MaxPending invocations may be
//     admitted-but-unfinished at once (queued or running on the DED
//     executor). Beyond that, Admit fails with ErrQueueFull.
//   - per-purpose token buckets: each registered purpose may carry a
//     rate limit (tokens/sec with a burst bound), keyed by the purpose
//     registry in the Processing Store. An empty bucket fails Admit with
//     ErrRateLimited.
//
// Both rejection errors wrap ErrOverloaded, so callers shed load with one
// errors.Is check. Refill time comes from a simclock.Clock so tests drive
// the buckets deterministically.
package admission

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/latencyhist"
	"repro/internal/simclock"
)

// Sentinel errors. Both concrete rejections wrap ErrOverloaded.
var (
	// ErrOverloaded is the umbrella rejection: the machine refused to
	// admit the invocation right now. Retry later, with backoff.
	ErrOverloaded = errors.New("admission: overloaded")
	// ErrQueueFull reports the bounded admission queue at capacity.
	ErrQueueFull = fmt.Errorf("%w: admission queue full", ErrOverloaded)
	// ErrRateLimited reports an empty token bucket for the purpose.
	ErrRateLimited = fmt.Errorf("%w: purpose rate limit exceeded", ErrOverloaded)
)

// Options configures a Controller.
type Options struct {
	// MaxPending bounds how many invocations may be admitted but not yet
	// finished (queued or running). Zero or negative means unbounded —
	// the controller still counts depth and latency, it just never
	// rejects on queue depth.
	MaxPending int
	// Clock is the token-bucket refill time source. Nil means the wall
	// clock.
	Clock simclock.Clock
}

// Stats is a snapshot of the controller's counters, surfaced through
// ps.Stats.
type Stats struct {
	// MaxPending echoes the configured queue bound (0 = unbounded).
	MaxPending int
	// Depth is the number of currently admitted-but-unfinished
	// invocations; PeakDepth is its high-water mark.
	Depth     int
	PeakDepth int
	// Admitted / Completed count invocations through the queue;
	// RejectedQueue / RejectedRate count the two rejection paths.
	Admitted      uint64
	Completed     uint64
	RejectedQueue uint64
	RejectedRate  uint64
	// LatencyTotal sums the admit-to-release latency of completed
	// invocations; LatencyMax is the slowest single one. Wall-clock
	// measured by the caller, independent of the refill clock.
	LatencyTotal time.Duration
	LatencyMax   time.Duration
	// LatencyHist buckets completed-invocation latencies by power of two
	// (see internal/latencyhist). Coarse by design — it exists so the
	// control plane can estimate a p99 without per-sample history.
	LatencyHist latencyhist.Hist
}

// LatencyBuckets is the histogram width: 2^29 µs ≈ 9 minutes tops.
// (Deprecated alias for latencyhist.Buckets, kept for callers that size
// windows off the admission stats.)
const LatencyBuckets = latencyhist.Buckets

// Quantile estimates the q-quantile (q in [0,1], e.g. 0.99) of the
// latencies recorded in the histogram — a thin wrapper over
// latencyhist.Hist.Quantile, which takes each bucket at its upper bound
// (conservative), returns zero when empty, and clamps q to [0,1] (NaN
// counts as 0) so the p99 signal feeding the admission controller never
// goes undefined.
func (s Stats) Quantile(q float64) time.Duration {
	return s.LatencyHist.Quantile(q)
}

// Rejected reports the total invocations shed by either mechanism.
func (s Stats) Rejected() uint64 { return s.RejectedQueue + s.RejectedRate }

// bucket is one purpose's token bucket. tokens refills at rate/sec up to
// burst, timed by the controller's clock.
type bucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// Controller is the admission gate in front of ps_invoke. Safe for
// concurrent use.
type Controller struct {
	clock simclock.Clock

	mu         sync.Mutex
	maxPending int
	pending    int
	stats      Stats
	buckets    map[string]*bucket
}

// New builds a Controller.
func New(opts Options) *Controller {
	clock := opts.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	max := opts.MaxPending
	if max < 0 {
		max = 0
	}
	return &Controller{
		clock:      clock,
		maxPending: max,
		buckets:    make(map[string]*bucket),
	}
}

// MaxPending reports the configured queue bound (0 = unbounded).
func (c *Controller) MaxPending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxPending
}

// SetMaxPending changes the queue bound at runtime (n <= 0 means
// unbounded). Lowering the bound below the current depth rejects new
// admissions until enough in-flight invocations release — nothing already
// admitted is cancelled.
func (c *Controller) SetMaxPending(n int) {
	if n < 0 {
		n = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxPending = n
}

// Limit is one purpose's configured rate limit, as reported by Limits.
type Limit struct {
	Purpose    string
	RatePerSec float64
	Burst      float64
}

// Limits snapshots every configured per-purpose rate limit, sorted by
// purpose name.
func (c *Controller) Limits() []Limit {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Limit, 0, len(c.buckets))
	for p, b := range c.buckets {
		out = append(out, Limit{Purpose: p, RatePerSec: b.rate, Burst: b.burst})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Purpose < out[j].Purpose })
	return out
}

// SetPurposeLimit installs (or replaces) the token bucket for a purpose:
// ratePerSec tokens per second, holding at most burst. A rate <= 0 removes
// the limit. The bucket starts full, so a fresh limit admits one burst
// immediately.
func (c *Controller) SetPurposeLimit(purpose string, ratePerSec, burst float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ratePerSec <= 0 {
		delete(c.buckets, purpose)
		return
	}
	if burst < 1 {
		burst = 1
	}
	c.buckets[purpose] = &bucket{
		rate:   ratePerSec,
		burst:  burst,
		tokens: burst,
		last:   c.clock.Now(),
	}
}

// Admit asks to admit one invocation for the purpose. On success it
// returns a release function that MUST be called exactly once when the
// invocation finishes (however it finishes), with the wall-clock latency
// from admission to completion; release keeps the queue depth and the
// latency counters truthful. On rejection the error wraps ErrOverloaded
// (ErrRateLimited or ErrQueueFull) and nothing is held.
//
// Order matters: the rate check runs first so a purpose over its budget
// never consumes queue capacity, and a full queue never burns the
// purpose's tokens.
func (c *Controller) Admit(purpose string) (release func(latency time.Duration), err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.buckets[purpose]; ok {
		now := c.clock.Now()
		if dt := now.Sub(b.last); dt > 0 {
			b.tokens += b.rate * dt.Seconds()
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
		b.last = now
		if b.tokens < 1 {
			c.stats.RejectedRate++
			return nil, fmt.Errorf("%w: purpose %q", ErrRateLimited, purpose)
		}
		if c.maxPending > 0 && c.pending >= c.maxPending {
			// Queue rejection must not consume the token: the purpose
			// did nothing wrong, the machine is just full.
			c.stats.RejectedQueue++
			return nil, fmt.Errorf("%w: %d pending", ErrQueueFull, c.pending)
		}
		b.tokens--
	} else if c.maxPending > 0 && c.pending >= c.maxPending {
		c.stats.RejectedQueue++
		return nil, fmt.Errorf("%w: %d pending", ErrQueueFull, c.pending)
	}
	c.pending++
	c.stats.Admitted++
	if c.pending > c.stats.PeakDepth {
		c.stats.PeakDepth = c.pending
	}
	return c.release, nil
}

// release is the completion half of Admit.
func (c *Controller) release(latency time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending--
	c.stats.Completed++
	c.stats.LatencyTotal += latency
	if latency > c.stats.LatencyMax {
		c.stats.LatencyMax = latency
	}
	c.stats.LatencyHist.Observe(latency)
}

// Snapshot returns the current counters.
func (c *Controller) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.MaxPending = c.maxPending
	st.Depth = c.pending
	return st
}
