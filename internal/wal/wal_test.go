package wal

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/blockdev"
)

// fill returns a block-sized buffer whose bytes all equal v.
func fill(v byte) []byte {
	b := make([]byte, blockdev.BlockSize)
	for i := range b {
		b[i] = v
	}
	return b
}

func newLog(t *testing.T, devBlocks, start, length uint64) (*blockdev.Mem, *Log) {
	t.Helper()
	dev := blockdev.MustMem(devBlocks)
	l, err := Open(dev, start, length)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return dev, l
}

func TestOpenValidation(t *testing.T) {
	dev := blockdev.MustMem(10)
	if _, err := Open(dev, 0, 2); !errors.Is(err, ErrBadRegion) {
		t.Fatalf("Open with 2 blocks err = %v, want ErrBadRegion", err)
	}
	if _, err := Open(dev, 8, 3); !errors.Is(err, ErrBadRegion) {
		t.Fatalf("Open beyond device err = %v, want ErrBadRegion", err)
	}
}

func TestCommitAppliesToHome(t *testing.T) {
	dev, l := newLog(t, 32, 0, 16)
	tx := l.Begin()
	if err := tx.Write(20, fill(0xAA)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(21, fill(0xBB)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	got := make([]byte, blockdev.BlockSize)
	if err := dev.ReadBlock(20, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(0xAA)) {
		t.Fatal("block 20 not checkpointed")
	}
	if err := dev.ReadBlock(21, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(0xBB)) {
		t.Fatal("block 21 not checkpointed")
	}
	s := l.Stats()
	if s.TxnsCommitted != 1 || s.BlocksLogged != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEmptyCommitIsNoop(t *testing.T) {
	dev, l := newLog(t, 16, 0, 8)
	if err := l.Begin().Commit(); err != nil {
		t.Fatalf("empty Commit: %v", err)
	}
	if s := dev.Stats(); s.Writes != 0 {
		t.Fatalf("empty commit wrote %d blocks", s.Writes)
	}
}

func TestTxnReuseFails(t *testing.T) {
	_, l := newLog(t, 16, 0, 8)
	tx := l.Begin()
	if err := tx.Write(10, fill(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double Commit err = %v, want ErrTxnDone", err)
	}
	if err := tx.Write(11, fill(2)); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Write after Commit err = %v, want ErrTxnDone", err)
	}
}

func TestAbortDiscards(t *testing.T) {
	dev, l := newLog(t, 16, 0, 8)
	tx := l.Begin()
	if err := tx.Write(12, fill(7)); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Commit after Abort err = %v, want ErrTxnDone", err)
	}
	got := make([]byte, blockdev.BlockSize)
	if err := dev.ReadBlock(12, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, blockdev.BlockSize)) {
		t.Fatal("aborted txn reached home location")
	}
}

func TestReadYourWrites(t *testing.T) {
	_, l := newLog(t, 16, 0, 8)
	tx := l.Begin()
	if err := tx.Write(13, fill(9)); err != nil {
		t.Fatal(err)
	}
	img, ok := tx.Read(13)
	if !ok || !bytes.Equal(img, fill(9)) {
		t.Fatal("Read did not observe buffered write")
	}
	if _, ok := tx.Read(14); ok {
		t.Fatal("Read observed a block never written")
	}
}

func TestRewriteSameBlockInTxn(t *testing.T) {
	dev, l := newLog(t, 16, 0, 8)
	tx := l.Begin()
	if err := tx.Write(13, fill(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(13, fill(2)); err != nil {
		t.Fatal(err)
	}
	if tx.Len() != 1 {
		t.Fatalf("Len = %d after rewriting same block, want 1", tx.Len())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.BlockSize)
	if err := dev.ReadBlock(13, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(2)) {
		t.Fatal("latest image did not win")
	}
}

func TestJournalRetainsOldImages(t *testing.T) {
	// The motivating GDPR violation: after the higher layer overwrites a
	// record, the journal region still holds the old plaintext image.
	dev, l := newLog(t, 64, 0, 32)
	secret := []byte("pd:alice:medical")
	img := make([]byte, blockdev.BlockSize)
	copy(img, secret)

	tx := l.Begin()
	if err := tx.Write(40, img); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// "Delete" by overwriting home with zeros in a new transaction.
	tx = l.Begin()
	if err := tx.Write(40, make([]byte, blockdev.BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	hits := blockdev.FindResidue(dev, secret)
	if len(hits) == 0 {
		t.Fatal("expected journal residue of deleted data, found none")
	}
	start, length := l.Region()
	inJournal := false
	for _, h := range hits {
		if h >= start && h < start+length {
			inJournal = true
		}
		if h == 40 {
			t.Fatal("home block still holds the secret after overwrite")
		}
	}
	if !inJournal {
		t.Fatalf("residue hits %v not attributed to journal region [%d,%d)", hits, start, start+length)
	}
}

func TestRecoverReplaysCommitted(t *testing.T) {
	dev, l := newLog(t, 64, 0, 32)
	tx := l.Begin()
	if err := tx.Write(50, fill(0x5A)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Simulate crash before checkpoint reached home: clobber home block.
	if err := dev.WriteBlock(50, make([]byte, blockdev.BlockSize)); err != nil {
		t.Fatal(err)
	}
	// Remount: a fresh Log over the same region must replay the txn.
	l2, err := Open(dev, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	n, err := l2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if n != 1 {
		t.Fatalf("Recover replayed %d txns, want 1", n)
	}
	got := make([]byte, blockdev.BlockSize)
	if err := dev.ReadBlock(50, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(0x5A)) {
		t.Fatal("recovery did not restore committed image")
	}
}

func TestRecoverSkipsTornTxn(t *testing.T) {
	dev, l := newLog(t, 64, 0, 32)
	tx := l.Begin()
	if err := tx.Write(50, fill(0x5A)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the commit block (journal block index 2 for the first txn).
	if err := dev.WriteBlock(2, make([]byte, blockdev.BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteBlock(50, make([]byte, blockdev.BlockSize)); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dev, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	n, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Recover replayed %d torn txns, want 0", n)
	}
	got := make([]byte, blockdev.BlockSize)
	if err := dev.ReadBlock(50, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, blockdev.BlockSize)) {
		t.Fatal("torn txn was replayed")
	}
}

func TestRecoverOrdersByTxid(t *testing.T) {
	dev, l := newLog(t, 64, 0, 32)
	for i, v := range []byte{1, 2, 3} {
		tx := l.Begin()
		if err := tx.Write(60, fill(v)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if err := dev.WriteBlock(60, make([]byte, blockdev.BlockSize)); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dev, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Recover(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.BlockSize)
	if err := dev.ReadBlock(60, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(3)) {
		t.Fatalf("replay order wrong: block 60 byte0 = %d, want 3", got[0])
	}
}

func TestRecoverAdvancesSeq(t *testing.T) {
	dev, l := newLog(t, 64, 0, 32)
	tx := l.Begin()
	if err := tx.Write(60, fill(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dev, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Recover(); err != nil {
		t.Fatal(err)
	}
	// A new transaction after recovery must not collide with the replayed
	// txid: commit one and recover again — both must survive ordering.
	tx = l2.Begin()
	if err := tx.Write(60, fill(9)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dev, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l3.Recover(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.BlockSize)
	if err := dev.ReadBlock(60, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Fatalf("post-recovery txn lost: byte0 = %d, want 9", got[0])
	}
}

func TestWrapAround(t *testing.T) {
	dev, l := newLog(t, 64, 0, 8) // tiny journal: 8 blocks
	// Each txn uses 3 journal blocks; the third txn forces a wrap.
	for i := byte(1); i <= 5; i++ {
		tx := l.Begin()
		if err := tx.Write(uint64(50+i), fill(i)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	got := make([]byte, blockdev.BlockSize)
	for i := byte(1); i <= 5; i++ {
		if err := dev.ReadBlock(uint64(50+i), got); err != nil {
			t.Fatal(err)
		}
		if got[0] != i {
			t.Fatalf("block %d byte0 = %d, want %d", 50+i, got[0], i)
		}
	}
}

func TestTxnTooLargeForJournal(t *testing.T) {
	_, l := newLog(t, 600, 0, 4)
	tx := l.Begin()
	for i := uint64(0); i < 3; i++ {
		if err := tx.Write(100+i, fill(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); !errors.Is(err, ErrJournalFull) {
		t.Fatalf("oversized txn err = %v, want ErrJournalFull", err)
	}
}

func TestMaxBlocksPerTxnEnforced(t *testing.T) {
	_, l := newLog(t, 1024, 0, 600)
	tx := l.Begin()
	for i := 0; i < MaxBlocksPerTxn; i++ {
		if err := tx.Write(uint64(600+i), fill(1)); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	err := tx.Write(9999, fill(1))
	if !errors.Is(err, ErrTxnTooLarge) {
		t.Fatalf("over-limit Write err = %v, want ErrTxnTooLarge", err)
	}
}
