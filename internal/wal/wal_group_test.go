package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
)

// cutoffDev passes writes through to an underlying device until its budget
// of block writes is spent, then fails every write — the device equivalent
// of pulling the power cord mid commit. It deliberately does not implement
// blockdev.VectorWriter so the WAL's batched writes degrade to per-block
// writes and the cut lands at an exact block boundary.
type cutoffDev struct {
	dev blockdev.Device

	mu     sync.Mutex
	budget int
}

func (c *cutoffDev) ReadBlock(n uint64, buf []byte) error { return c.dev.ReadBlock(n, buf) }
func (c *cutoffDev) NumBlocks() uint64                    { return c.dev.NumBlocks() }
func (c *cutoffDev) Sync() error                          { return c.dev.Sync() }
func (c *cutoffDev) Stats() blockdev.Stats                { return c.dev.Stats() }

func (c *cutoffDev) WriteBlock(n uint64, data []byte) error {
	c.mu.Lock()
	ok := c.budget > 0
	if ok {
		c.budget--
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: power cut", blockdev.ErrIO)
	}
	return c.dev.WriteBlock(n, data)
}

// enqueueOne seals a one-block transaction writing fill(v) to home block n.
func enqueueOne(t *testing.T, l *Log, n uint64, v byte) *Ticket {
	t.Helper()
	tx := l.Begin()
	if err := tx.Write(n, fill(v)); err != nil {
		t.Fatal(err)
	}
	tk, err := tx.Enqueue()
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

// TestGroupCommitCoalesces verifies that transactions enqueued within the
// commit window share one commit group (and one flush), and that every
// image still reaches its home block.
func TestGroupCommitCoalesces(t *testing.T) {
	dev := blockdev.MustMem(64)
	l, err := Open(dev, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	l.Configure(50*time.Millisecond, 8)

	tickets := make([]*Ticket, 4)
	for i := range tickets {
		tickets[i] = enqueueOne(t, l, uint64(50+i), byte(i+1))
	}
	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}

	s := l.Stats()
	if s.TxnsCommitted != 4 {
		t.Fatalf("TxnsCommitted = %d, want 4", s.TxnsCommitted)
	}
	if s.GroupCommits != 1 {
		t.Fatalf("GroupCommits = %d, want 1 (all txns inside the window)", s.GroupCommits)
	}
	if s.MaxGroupTxns != 4 {
		t.Fatalf("MaxGroupTxns = %d, want 4", s.MaxGroupTxns)
	}
	got := make([]byte, blockdev.BlockSize)
	for i := 0; i < 4; i++ {
		if err := dev.ReadBlock(uint64(50+i), got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(byte(i+1))) {
			t.Fatalf("block %d not checkpointed", 50+i)
		}
	}
}

// TestGroupReplayRestoresAllTxns scrubs the home blocks of a multi-txn
// group and checks recovery replays every member from the shared commit
// record.
func TestGroupReplayRestoresAllTxns(t *testing.T) {
	dev := blockdev.MustMem(64)
	l, err := Open(dev, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	l.Configure(50*time.Millisecond, 8)
	tk1 := enqueueOne(t, l, 50, 0xA1)
	tk2 := enqueueOne(t, l, 51, 0xB2)
	if err := tk1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := tk2.Wait(); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.GroupCommits != 1 {
		t.Fatalf("GroupCommits = %d, want 1", s.GroupCommits)
	}
	// Crash before checkpoint reached home: clobber both home blocks.
	zero := make([]byte, blockdev.BlockSize)
	if err := dev.WriteBlock(50, zero); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteBlock(51, zero); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dev, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	n, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Recover replayed %d txns, want 2 (whole group)", n)
	}
	got := make([]byte, blockdev.BlockSize)
	if err := dev.ReadBlock(50, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(0xA1)) {
		t.Fatal("first group member not replayed")
	}
	if err := dev.ReadBlock(51, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(0xB2)) {
		t.Fatal("second group member not replayed")
	}
}

// TestCrashMidGroupCommit is the crash-injection contract: the device dies
// after a group's descriptors and data blocks are on disk but before its
// commit marker. Replay must discard the torn group entirely while keeping
// every earlier sealed group.
func TestCrashMidGroupCommit(t *testing.T) {
	mem := blockdev.MustMem(64)
	// Earlier group: one txn, one data block = 3 journal writes + 1
	// checkpoint write.
	cut := &cutoffDev{dev: mem, budget: 4}
	l, err := Open(cut, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	l.Configure(50*time.Millisecond, 8)
	if err := enqueueOne(t, l, 40, 0x40).Wait(); err != nil {
		t.Fatalf("earlier group: %v", err)
	}

	// Torn group: two txns, one data block each. Journal layout is
	// [desc1][data1][desc2][data2][commit]; a budget of 4 cuts the power
	// after data2, before the commit marker.
	cut.mu.Lock()
	cut.budget = 4
	cut.mu.Unlock()
	tk1 := enqueueOne(t, l, 50, 0x51)
	tk2 := enqueueOne(t, l, 51, 0x52)
	err1, err2 := tk1.Wait(), tk2.Wait()
	if err1 == nil || err2 == nil {
		t.Fatalf("cut group committed: err1=%v err2=%v", err1, err2)
	}
	if !errors.Is(err1, blockdev.ErrIO) {
		t.Fatalf("err1 = %v, want injected IO error", err1)
	}
	// The log is now aborted: further commits must refuse instead of
	// persisting transactions that may depend on the failed group.
	tx := l.Begin()
	if err := tx.Write(52, fill(0x53)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrJournalAborted) {
		t.Fatalf("commit after abort err = %v, want ErrJournalAborted", err)
	}

	// "Reboot": recover a fresh log over the raw device.
	l2, err := Open(mem, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	n, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Recover replayed %d txns, want 1 (earlier group only)", n)
	}
	got := make([]byte, blockdev.BlockSize)
	if err := mem.ReadBlock(40, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(0x40)) {
		t.Fatal("earlier group lost")
	}
	zero := make([]byte, blockdev.BlockSize)
	for _, b := range []uint64{50, 51} {
		if err := mem.ReadBlock(b, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, zero) {
			t.Fatalf("torn group leaked into home block %d", b)
		}
	}
}

// gatedDev blocks every write until the gate channel is closed, freezing
// the committer mid flush so tests can observe the pre-checkpoint state.
type gatedDev struct {
	dev  blockdev.Device
	gate chan struct{}
}

func (g *gatedDev) ReadBlock(n uint64, buf []byte) error { return g.dev.ReadBlock(n, buf) }
func (g *gatedDev) NumBlocks() uint64                    { return g.dev.NumBlocks() }
func (g *gatedDev) Sync() error                          { return g.dev.Sync() }
func (g *gatedDev) Stats() blockdev.Stats                { return g.dev.Stats() }
func (g *gatedDev) WriteBlock(n uint64, data []byte) error {
	<-g.gate
	return g.dev.WriteBlock(n, data)
}

// TestReadThroughOverlay checks that an enqueued-but-not-checkpointed image
// is visible through ReadThrough, and that the overlay drains after the
// group lands.
func TestReadThroughOverlay(t *testing.T) {
	mem := blockdev.MustMem(64)
	gate := make(chan struct{})
	l, err := Open(&gatedDev{dev: mem, gate: gate}, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	tx := l.Begin()
	if err := tx.Write(40, fill(0xCD)); err != nil {
		t.Fatal(err)
	}
	tk, err := tx.Enqueue()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockdev.BlockSize)
	if err := l.ReadThrough(40, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fill(0xCD)) {
		t.Fatal("ReadThrough missed the in-flight image")
	}
	if err := mem.ReadBlock(40, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, blockdev.BlockSize)) {
		t.Fatal("device already holds the image; gate broken")
	}
	close(gate)
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	l.Barrier()
	if err := l.ReadThrough(40, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fill(0xCD)) {
		t.Fatal("image lost after checkpoint")
	}
}

// TestConcurrentCommitStress hammers the log from many goroutines; every
// image must land, and batching must actually occur (fewer groups than
// transactions) without any ordering violation on a shared block.
func TestConcurrentCommitStress(t *testing.T) {
	dev := blockdev.MustMem(256)
	l, err := Open(dev, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := l.Begin()
				if err := tx.Write(uint64(200+w), fill(byte(w+1))); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := l.Stats()
	if s.TxnsCommitted != workers*perWorker {
		t.Fatalf("TxnsCommitted = %d, want %d", s.TxnsCommitted, workers*perWorker)
	}
	if s.GroupCommits == 0 || s.GroupCommits > s.TxnsCommitted {
		t.Fatalf("GroupCommits = %d out of range (1..%d)", s.GroupCommits, s.TxnsCommitted)
	}
	got := make([]byte, blockdev.BlockSize)
	for w := 0; w < workers; w++ {
		if err := dev.ReadBlock(uint64(200+w), got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(byte(w+1))) {
			t.Fatalf("worker %d block corrupted", w)
		}
	}
}
